package vit

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/video"
)

func testCfg() Config {
	space := embed.NewSpace(64, 32, 42)
	return Config{Encoder: &embed.VisionEncoder{Space: space}}
}

func TestPatchesDefaultGrid(t *testing.T) {
	if n := (Config{}).Patches(); n != 16*9 {
		t.Fatalf("default patches = %d", n)
	}
}

func TestAnchorTiling(t *testing.T) {
	cfg := Config{}.withDefaults()
	a0 := anchor(cfg, 0)
	if a0.X != 0 || a0.Y != 0 {
		t.Fatalf("anchor 0 = %+v", a0)
	}
	last := anchor(cfg, cfg.GridW*cfg.GridH-1)
	if last.X+last.W < 0.999 || last.Y+last.H < 0.999 {
		t.Fatalf("last anchor must touch the bottom-right corner: %+v", last)
	}
}

func TestEncodeFrameEmptyScene(t *testing.T) {
	f := &video.Frame{VideoID: 1, Context: []string{"road"}}
	tokens := EncodeFrame(testCfg(), f)
	if len(tokens) != 0 {
		t.Fatalf("object-free frame must yield no foreground tokens, got %d", len(tokens))
	}
}

func TestEncodeFrameProducesTokensPerObject(t *testing.T) {
	f := &video.Frame{
		VideoID: 1, Index: 3, Context: []string{"road"},
		Objects: []video.Object{
			{Track: 10, Class: "car", Attrs: []string{"red"}, Box: video.Box{X: 0.40, Y: 0.40, W: 0.14, H: 0.12}},
			{Track: 11, Class: "bus", Attrs: []string{"green"}, Box: video.Box{X: 0.05, Y: 0.05, W: 0.22, H: 0.15}},
		},
	}
	tokens := EncodeFrame(testCfg(), f)
	if len(tokens) == 0 {
		t.Fatal("no tokens")
	}
	tracks := map[int64]int{}
	for _, tok := range tokens {
		tracks[tok.Track]++
		if len(tok.Embedding) != 64 || len(tok.Class) != 32 {
			t.Fatalf("token dims: %d/%d", len(tok.Embedding), len(tok.Class))
		}
		if tok.Objectness < 0.5 {
			t.Fatalf("foreground token below threshold: %v", tok.Objectness)
		}
	}
	if tracks[10] == 0 || tracks[11] == 0 {
		t.Fatalf("both objects must yield tokens: %v", tracks)
	}
}

func TestPredictedBoxesNearTruth(t *testing.T) {
	truth := video.Box{X: 0.40, Y: 0.40, W: 0.16, H: 0.12}
	f := &video.Frame{
		VideoID: 2, Index: 7, Context: []string{"road"},
		Objects: []video.Object{{Track: 20, Class: "car", Box: truth}},
	}
	tokens := EncodeFrame(testCfg(), f)
	if len(tokens) == 0 {
		t.Fatal("no tokens")
	}
	for _, tok := range tokens {
		if iou := tok.Box.IoU(truth); iou < 0.5 {
			t.Fatalf("refined box IoU = %v below detection threshold", iou)
		}
	}
}

func TestSmallestObjectWins(t *testing.T) {
	// A small dog inside a large truck's box: patches on the dog must
	// belong to the dog.
	dogBox := video.Box{X: 0.45, Y: 0.45, W: 0.08, H: 0.08}
	f := &video.Frame{
		VideoID: 1, Index: 0,
		Objects: []video.Object{
			{Track: 1, Class: "truck", Box: video.Box{X: 0.2, Y: 0.2, W: 0.6, H: 0.6}},
			{Track: 2, Class: "dog", Attrs: []string{"white"}, Box: dogBox},
		},
	}
	tokens := EncodeFrame(testCfg(), f)
	foundDog := false
	for _, tok := range tokens {
		if tok.Track == 2 {
			foundDog = true
			if tok.Box.IoU(dogBox) < 0.5 {
				t.Fatalf("dog token box should be near the dog: %+v", tok.Box)
			}
		}
	}
	if !foundDog {
		t.Fatal("small object lost to the large one")
	}
}

func TestEncodeFrameDeterministic(t *testing.T) {
	f := &video.Frame{
		VideoID: 1, Index: 3, Context: []string{"road"},
		Objects: []video.Object{{Track: 10, Class: "car", Box: video.Box{X: 0.4, Y: 0.4, W: 0.14, H: 0.12}}},
	}
	cfg := testCfg()
	a := EncodeFrame(cfg, f)
	b := EncodeFrame(cfg, f)
	if len(a) != len(b) {
		t.Fatal("token counts differ")
	}
	for i := range a {
		if a[i].Patch != b[i].Patch || a[i].Box != b[i].Box || !mat.AlmostEqual(a[i].Embedding, b[i].Embedding, 0) {
			t.Fatal("tokens differ between runs")
		}
	}
}

func TestClassEmbeddingIsProjection(t *testing.T) {
	space := embed.NewSpace(64, 32, 42)
	cfg := Config{Encoder: &embed.VisionEncoder{Space: space}}
	f := &video.Frame{
		VideoID: 1, Index: 0,
		Objects: []video.Object{{Track: 1, Class: "car", Box: video.Box{X: 0.4, Y: 0.4, W: 0.2, H: 0.2}}},
	}
	tokens := EncodeFrame(cfg, f)
	if len(tokens) == 0 {
		t.Fatal("no tokens")
	}
	want := space.Project(tokens[0].Embedding)
	if !mat.AlmostEqual(tokens[0].Class, want, 1e-5) {
		t.Fatal("Class must be the projection of Embedding")
	}
}

func TestHigherResolutionGridMoreTokens(t *testing.T) {
	f := &video.Frame{
		VideoID: 1, Index: 0,
		Objects: []video.Object{{Track: 1, Class: "bus", Box: video.Box{X: 0.2, Y: 0.2, W: 0.5, H: 0.4}}},
	}
	space := embed.NewSpace(64, 32, 42)
	lo := Config{GridW: 8, GridH: 6, Encoder: &embed.VisionEncoder{Space: space}}
	hi := Config{GridW: 32, GridH: 18, Encoder: &embed.VisionEncoder{Space: space}}
	if len(EncodeFrame(hi, f)) <= len(EncodeFrame(lo, f)) {
		t.Fatal("finer grids must produce more tokens for the same object")
	}
}
