// Package vit implements the visual-patch processing and object
// localisation pipeline of Sections IV-B and IV-C: each keyframe is divided
// into an S×S patch grid, every patch is encoded into a D-dim embedding,
// lightweight heads predict a refined bounding box (anchor + offset) and a
// reduced D′ class embedding per patch token, and low-objectness background
// tokens are filtered before indexing.
//
// The box-refinement MLP stands in for Owl-ViT's trained localisation head:
// its predictions equal the true object box plus bounded, deterministic
// jitter (a calibrated trained-head error model), because an untrained
// random MLP would predict noise and no retrieval experiment could run.
// DESIGN.md documents this substitution.
package vit

import (
	"math/rand/v2"

	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/simwork"
	"repro/internal/video"
)

// Config parameterises frame encoding.
type Config struct {
	// GridW, GridH give the patch grid resolution. Zero values default
	// to 16×9 (a 32-pixel patch size at 512×288 analysis resolution).
	GridW, GridH int
	// Encoder is the vision encoder producing patch embeddings.
	Encoder *embed.VisionEncoder
	// MinObjectness filters background tokens; zero defaults to 0.5.
	MinObjectness float32
	// BoxJitter is the localisation error σ as a fraction of object size;
	// zero defaults to 0.05.
	BoxJitter float64
	// EncodeCost is the simulated ViT forward-pass cost per patch in
	// simwork units; zero defaults to 220 (calibrated so one-time video
	// processing dominates query latency the way the paper's Fig. 9
	// time distribution shows). Negative disables.
	EncodeCost int
}

func (c Config) withDefaults() Config {
	if c.GridW == 0 {
		c.GridW = 16
	}
	if c.GridH == 0 {
		c.GridH = 9
	}
	if c.MinObjectness == 0 {
		c.MinObjectness = 0.5
	}
	if c.BoxJitter == 0 {
		c.BoxJitter = 0.05
	}
	if c.EncodeCost == 0 {
		c.EncodeCost = 220
	}
	return c
}

// Patches returns the total patch count per frame.
func (c Config) Patches() int {
	c = c.withDefaults()
	return c.GridW * c.GridH
}

// Token is one foreground patch token: the per-patch output of the encoder
// plus the localisation heads, ready for indexing.
type Token struct {
	// Patch is the patch index within the frame (row-major).
	Patch int
	// Embedding is the D-dim patch embedding z_jk.
	Embedding mat.Vec
	// Class is the D′-dim projected class embedding c_jk that the vector
	// database indexes.
	Class mat.Vec
	// Box is the predicted bounding box (anchor refined by the MLP head).
	Box video.Box
	// Objectness is the confidence that the patch covers an object.
	Objectness float32
	// Track records which ground-truth object produced the token; it is
	// used only by evaluation code, never by retrieval.
	Track int64
}

// anchor returns the default box b^default for a patch (the patch's own
// spatial extent), per Section IV-C.
func anchor(cfg Config, patch int) video.Box {
	px := patch % cfg.GridW
	py := patch / cfg.GridW
	return video.Box{
		X: float64(px) / float64(cfg.GridW),
		Y: float64(py) / float64(cfg.GridH),
		W: 1 / float64(cfg.GridW),
		H: 1 / float64(cfg.GridH),
	}
}

// EncodeFrame runs the full patch pipeline on a frame and returns the
// foreground tokens. Work is proportional to the total patch count — the
// per-frame processing cost the paper measures at ~constant seconds/frame —
// because background patches are encoded before being filtered.
func EncodeFrame(cfg Config, f *video.Frame) []Token {
	cfg = cfg.withDefaults()
	if cfg.EncodeCost > 0 {
		simwork.Burn(cfg.GridW * cfg.GridH * cfg.EncodeCost)
	}
	tokens := make([]Token, 0, len(f.Objects)*2)
	covered := make([]bool, len(f.Objects))
	emit := func(p int, objIdx int, rng *rand.Rand) {
		o := &f.Objects[objIdx]
		emb := cfg.Encoder.ObjectEmbedding(f, objIdx)
		objness := float32(0.75 + 0.2*rng.Float64())
		if objness < cfg.MinObjectness {
			return
		}
		covered[objIdx] = true
		tokens = append(tokens, Token{
			Patch:      p,
			Embedding:  emb,
			Class:      cfg.Encoder.Space.Project(emb),
			Box:        refineBox(o.Box, cfg.BoxJitter, rng),
			Objectness: objness,
			Track:      o.Track,
		})
	}
	for p := 0; p < cfg.GridW*cfg.GridH; p++ {
		a := anchor(cfg, p)
		cx, cy := a.Center()
		// Assign the patch to the smallest object whose box contains
		// the patch centre (most specific wins).
		best := -1
		bestArea := 2.0
		for i := range f.Objects {
			b := f.Objects[i].Box
			if cx >= b.X && cx <= b.X+b.W && cy >= b.Y && cy <= b.Y+b.H {
				if area := b.Area(); area < bestArea {
					best, bestArea = i, area
				}
			}
		}
		seed := obsSeed(f, p)
		rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
		if best < 0 {
			// Background: encode (cost parity), then filter.
			emb := cfg.Encoder.BackgroundEmbedding(f, p)
			objness := float32(0.08 + 0.1*rng.Float64())
			if objness >= cfg.MinObjectness {
				_ = emb // below threshold in practice; kept for clarity
			}
			continue
		}
		emit(p, best, rng)
	}
	// Centre sampling: an object smaller than a patch cell can straddle
	// the grid so that no patch centre falls inside its box, making it
	// permanently invisible. Detection heads anchor every object to the
	// patch containing its centre (FCOS-style centre sampling); the
	// anchor token is distinguished by an offset patch index so its join
	// key stays unique.
	usedAnchors := make(map[int]bool)
	for i := range f.Objects {
		if covered[i] {
			continue
		}
		cx, cy := f.Objects[i].Box.Center()
		px := int(cx * float64(cfg.GridW))
		py := int(cy * float64(cfg.GridH))
		if px >= cfg.GridW {
			px = cfg.GridW - 1
		}
		if py >= cfg.GridH {
			py = cfg.GridH - 1
		}
		p := py*cfg.GridW + px + centerAnchorOffset
		// Two sub-cell objects can share a centre cell; probe to the
		// next free anchor slot so patch IDs stay unique.
		for usedAnchors[p] {
			p++
			if p >= 2*centerAnchorOffset {
				p = centerAnchorOffset
			}
		}
		usedAnchors[p] = true
		seed := obsSeed(f, p)
		rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
		emit(p, i, rng)
	}
	return tokens
}

// centerAnchorOffset displaces the patch index of centre-sampled anchor
// tokens past the regular grid range so patch IDs remain unique. It stays
// within the 12-bit patch field of core.PackPatchID.
const centerAnchorOffset = 2048

// MaxGridPatches is the largest GridW*GridH a Config may use: regular patch
// indices must stay below centerAnchorOffset so centre-sampled anchor tokens
// cannot collide with them, and the anchor range itself tops out at
// 2*centerAnchorOffset-1, the last value of the 12-bit packed patch field.
const MaxGridPatches = centerAnchorOffset

// refineBox applies the trained-head error model: the true box perturbed by
// bounded jitter proportional to its size, clipped to the frame.
func refineBox(b video.Box, jitter float64, rng *rand.Rand) video.Box {
	j := func(scale float64) float64 { return rng.NormFloat64() * jitter * scale }
	out := video.Box{
		X: b.X + j(b.W),
		Y: b.Y + j(b.H),
		W: b.W * (1 + j(1)),
		H: b.H * (1 + j(1)),
	}
	if out.W < 0.004 {
		out.W = 0.004
	}
	if out.H < 0.004 {
		out.H = 0.004
	}
	return out.Clip()
}

func obsSeed(f *video.Frame, patch int) uint64 {
	return uint64(f.VideoID)<<40 ^ uint64(uint32(f.Index))<<12 ^ uint64(uint32(patch)) ^ 0x9e37
}
