package vectordb

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

const dim = 16

func unit(seed uint64) mat.Vec { return mat.UnitGaussianVec(dim, seed) }

func fill(t *testing.T, c *Collection, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateAndFetchCollection(t *testing.T) {
	db := New()
	c, err := db.CreateCollection("patches", Schema{Dim: dim, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "patches" || c.Schema().Dim != dim {
		t.Fatalf("collection metadata: %+v", c.Schema())
	}
	got, err := db.Collection("patches")
	if err != nil || got != c {
		t.Fatal("fetch must return the same collection")
	}
	if _, err := db.CreateCollection("patches", Schema{Dim: dim}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := db.Collection("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing fetch: %v", err)
	}
	if _, err := db.CreateCollection("bad", Schema{Dim: 0}); !errors.Is(err, ErrDimension) {
		t.Fatalf("zero-dim create: %v", err)
	}
}

func TestDropAndNames(t *testing.T) {
	db := New()
	_, _ = db.CreateCollection("b", Schema{Dim: dim})
	_, _ = db.CreateCollection("a", Schema{Dim: dim})
	names := db.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim})
	if err := c.Insert(1, mat.Vec{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if err := c.Insert(1, unit(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(1, unit(2)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate id: %v", err)
	}
}

func TestNormalizeOnInsert(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim, Normalize: true})
	v := mat.Scale(unit(3), 5)
	if err := c.Insert(1, v); err != nil {
		t.Fatal(err)
	}
	got, err := c.Vector(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := mat.Norm(got); n < 0.999 || n > 1.001 {
		t.Fatalf("stored norm = %v", n)
	}
	// The caller's slice must not be mutated.
	if n := mat.Norm(v); n < 4.9 {
		t.Fatalf("caller's vector mutated: %v", n)
	}
}

func TestUnindexedSearchIsExact(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim, Normalize: true})
	fill(t, c, 200)
	q := unit(50)
	res, err := c.Search(q, 5, ann.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || res[0].ID != 51 { // vector 51 was built from seed 50
		t.Fatalf("res = %v", res)
	}
}

func TestBuildIndexKinds(t *testing.T) {
	for _, kind := range []IndexKind{IndexFlat, IndexIVFPQ, IndexIMI, IndexHNSW} {
		t.Run(string(kind), func(t *testing.T) {
			db := New()
			c, _ := db.CreateCollection("x", Schema{Dim: dim, Normalize: true})
			fill(t, c, 300)
			err := c.BuildIndex(kind, IndexOptions{P: 4, M: 16, NList: 8, KeepRaw: true, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if c.IndexKind() != kind {
				t.Fatalf("kind = %q", c.IndexKind())
			}
			res, err := c.Search(unit(123), 10, ann.Params{NProbe: 8, Ef: 64})
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 10 {
				t.Fatalf("got %d results", len(res))
			}
			st := c.Stats()
			if st.IndexBytes <= 0 || st.RawBytes <= 0 || st.Count != 300 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestBuildIndexErrors(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim})
	if err := c.BuildIndex(IndexFlat, IndexOptions{}); !errors.Is(err, ErrEmptyBuild) {
		t.Fatalf("empty build: %v", err)
	}
	fill(t, c, 10)
	if err := c.BuildIndex("bogus", IndexOptions{}); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestInsertAfterBuildFlowsToIndex(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim, Normalize: true})
	fill(t, c, 150)
	if err := c.BuildIndex(IndexIMI, IndexOptions{P: 4, M: 16, KeepRaw: true, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	nv := unit(777)
	if err := c.Insert(9999, nv); err != nil {
		t.Fatal(err)
	}
	res, err := c.Search(nv, 1, ann.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 9999 {
		t.Fatalf("post-build insert not searchable: %v", res)
	}
}

func TestVectorFetch(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim})
	fill(t, c, 5)
	if _, err := c.Vector(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing vector: %v", err)
	}
	v, err := c.Vector(3)
	if err != nil || len(v) != dim {
		t.Fatalf("fetch: %v %d", err, len(v))
	}
}

func TestSearchValidation(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim})
	if _, err := c.Search(mat.Vec{1}, 3, ann.Params{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("query dim: %v", err)
	}
	res, err := c.Search(unit(1), 3, ann.Params{})
	if err != nil || res != nil {
		t.Fatalf("empty search: %v %v", res, err)
	}
}

func TestConcurrentInsertAndSearch(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: dim, Normalize: true})
	fill(t, c, 100)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Insert(int64(1000+g*100+i), unit(uint64(g*1000+i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Search(unit(uint64(g*7+i)), 5, ann.Params{}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Len() != 300 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	c, _ := db.CreateCollection("patches", Schema{Dim: dim, Normalize: true})
	fill(t, c, 200)
	if err := c.BuildIndex(IndexIMI, IndexOptions{P: 4, M: 16, KeepRaw: true, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	c2, _ := db.CreateCollection("frames", Schema{Dim: dim})
	fill(t, c2, 20)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := loaded.Collection("patches")
	if err != nil {
		t.Fatal(err)
	}
	if lc.Len() != 200 || lc.IndexKind() != IndexIMI {
		t.Fatalf("loaded: len=%d kind=%q", lc.Len(), lc.IndexKind())
	}
	// Same query must return the same results before and after.
	q := unit(42)
	a, _ := c.Search(q, 5, ann.Params{NProbe: 16})
	b, _ := lc.Search(q, 5, ann.Params{NProbe: 16})
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("rank %d differs: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
	lc2, err := loaded.Collection("frames")
	if err != nil || lc2.Len() != 20 || lc2.IndexKind() != "" {
		t.Fatalf("frames collection: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage must not load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty must not load")
	}
}

func TestStatsShrinkWithQuantization(t *testing.T) {
	// The keyframe ablation reports large raw storage vs compact index
	// storage; IMI codes must be far smaller than raw vectors.
	db := New()
	c, _ := db.CreateCollection("x", Schema{Dim: 64, Normalize: true})
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		v := make(mat.Vec, 64)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		if err := c.Insert(int64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BuildIndex(IndexIMI, IndexOptions{P: 4, M: 32, KeepRaw: false, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.IndexBytes >= st.RawBytes {
		t.Fatalf("quantized index (%d B) should undercut raw storage (%d B)", st.IndexBytes, st.RawBytes)
	}
}
