package vectordb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Snapshot format: a little-endian binary stream.
//
//	magic "LOVODB1\n"
//	uint32 collection count
//	per collection:
//	  uint16 name length, name bytes
//	  uint32 dim, uint8 normalize
//	  uint16 index-kind length, kind bytes (may be empty)
//	  index options: 6×int64 (NList, P, M, M0, EfConstruction, Seed) + uint8 KeepRaw
//	  uint64 vector count
//	  per vector: int64 id, dim×float32
//
// Raw vectors are persisted; indexes are rebuilt on load from the recorded
// kind and options — the same segment-load-then-index recovery model a
// cloud-native vector database uses.
const magic = "LOVODB1\n"

// Save writes a snapshot of the database.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names) // stable snapshot order
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := db.collections[n].save(bw); err != nil {
			return fmt.Errorf("vectordb: saving %q: %w", n, err)
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (c *Collection) save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := writeString(w, c.name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(c.schema.Dim)); err != nil {
		return err
	}
	norm := uint8(0)
	if c.schema.Normalize {
		norm = 1
	}
	if err := binary.Write(w, binary.LittleEndian, norm); err != nil {
		return err
	}
	if err := writeString(w, string(c.kind)); err != nil {
		return err
	}
	opts := []int64{
		int64(c.options.NList), int64(c.options.P), int64(c.options.M),
		int64(c.options.M0), int64(c.options.EfConstruction), int64(c.options.Seed),
	}
	for _, o := range opts {
		if err := binary.Write(w, binary.LittleEndian, o); err != nil {
			return err
		}
	}
	keep := uint8(0)
	if c.options.KeepRaw {
		keep = 1
	}
	if err := binary.Write(w, binary.LittleEndian, keep); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(c.ids))); err != nil {
		return err
	}
	for i, id := range c.ids {
		if err := binary.Write(w, binary.LittleEndian, id); err != nil {
			return err
		}
		row := c.vector(i)
		for _, f := range row {
			if err := binary.Write(w, binary.LittleEndian, math.Float32bits(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Segmented snapshot format: the same little-endian stream model, one
// record per frozen segment so a streaming collection restores with its
// segment structure — and therefore its identity-derived index seeds —
// intact.
//
//	magic "LOVOSG1\n"
//	uint16 name length, name bytes
//	uint32 dim, uint8 normalize
//	uint16 index-kind length, kind bytes
//	index options: 6×int64 (NList, P, M, M0, EfConstruction, Seed) + uint8 KeepRaw
//	int64 sealThreshold, int64 compactFanIn, int64 seq
//	uint32 frozen-segment count (ascending identity order)
//	per segment: int64 lo, int64 hi, uint64 count, per vector: int64 id, dim×float32
//	uint64 growing count, per vector: int64 id, dim×float32
//
// Indexes are rebuilt on load from each segment's [lo, hi] identity seed —
// the segment-load-then-index recovery model — so a restored replica
// serves byte-identical approximate answers to the one that saved.
const segMagic = "LOVOSG1\n"

// Save writes a snapshot of the segmented collection. Safe to call
// mid-stream: segments whose background index build is still pending are
// persisted like sealed ones (the load path rebuilds every frozen
// segment's index anyway). Inserts and seals are blocked for the duration
// of the write.
func (s *SegmentedCollection) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(segMagic); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := writeString(bw, s.name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(s.schema.Dim)); err != nil {
		return err
	}
	norm := uint8(0)
	if s.schema.Normalize {
		norm = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, norm); err != nil {
		return err
	}
	if err := writeString(bw, string(s.kind)); err != nil {
		return err
	}
	opts := []int64{
		int64(s.opts.NList), int64(s.opts.P), int64(s.opts.M),
		int64(s.opts.M0), int64(s.opts.EfConstruction), int64(s.opts.Seed),
	}
	for _, o := range opts {
		if err := binary.Write(bw, binary.LittleEndian, o); err != nil {
			return err
		}
	}
	keep := uint8(0)
	if s.opts.KeepRaw {
		keep = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, keep); err != nil {
		return err
	}
	for _, v := range []int64{int64(s.sealThreshold), int64(s.compactFanIn), int64(s.seq)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	frozen := make([]*segment, 0, len(s.sealed)+len(s.building))
	frozen = append(frozen, s.sealed...)
	frozen = append(frozen, s.building...)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(frozen))); err != nil {
		return err
	}
	for _, seg := range frozen {
		for _, v := range []int64{int64(seg.lo), int64(seg.hi)} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := saveVectors(bw, seg.col); err != nil {
			return fmt.Errorf("vectordb: saving segment %q: %w", seg.col.name, err)
		}
	}
	if err := saveVectors(bw, s.growing); err != nil {
		return fmt.Errorf("vectordb: saving growing segment: %w", err)
	}
	return bw.Flush()
}

// saveVectors writes one segment's (count, id+vector…) record.
func (c *Collection) saveVectorsLocked(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(c.ids))); err != nil {
		return err
	}
	for i, id := range c.ids {
		if err := binary.Write(w, binary.LittleEndian, id); err != nil {
			return err
		}
		for _, f := range c.vector(i) {
			if err := binary.Write(w, binary.LittleEndian, math.Float32bits(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

func saveVectors(w io.Writer, c *Collection) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.saveVectorsLocked(w)
}

// loadVectors reads one segment's record into col, bypassing normalisation
// (vectors were normalised before the save).
func loadVectors(r io.Reader, col *Collection, dim int) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	vec := make([]float32, dim)
	for vi := uint64(0); vi < n; vi++ {
		var id int64
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return err
		}
		for d := range vec {
			var bits uint32
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return err
			}
			vec[d] = math.Float32frombits(bits)
		}
		col.byID[id] = len(col.ids)
		col.ids = append(col.ids, id)
		col.data = append(col.data, vec...)
	}
	return nil
}

// LoadSegmented reads a segmented snapshot and rebuilds every frozen
// segment's index synchronously from its identity-derived seed, restoring
// byte-identical approximate answers.
func LoadSegmented(r io.Reader) (*SegmentedCollection, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("vectordb: reading segmented magic: %w", err)
	}
	if string(head) != segMagic {
		return nil, fmt.Errorf("vectordb: bad segmented magic %q", head)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var dim uint32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	var norm uint8
	if err := binary.Read(br, binary.LittleEndian, &norm); err != nil {
		return nil, err
	}
	kind, err := readString(br)
	if err != nil {
		return nil, err
	}
	raw := make([]int64, 6)
	for i := range raw {
		if err := binary.Read(br, binary.LittleEndian, &raw[i]); err != nil {
			return nil, err
		}
	}
	var keep uint8
	if err := binary.Read(br, binary.LittleEndian, &keep); err != nil {
		return nil, err
	}
	opts := IndexOptions{
		NList: int(raw[0]), P: int(raw[1]), M: int(raw[2]),
		M0: int(raw[3]), EfConstruction: int(raw[4]), Seed: uint64(raw[5]),
		KeepRaw: keep == 1,
	}
	meta := make([]int64, 3)
	for i := range meta {
		if err := binary.Read(br, binary.LittleEndian, &meta[i]); err != nil {
			return nil, err
		}
	}
	s, err := NewSegmented(name, Schema{Dim: int(dim), Normalize: norm == 1}, IndexKind(kind), opts, int(meta[0]))
	if err != nil {
		return nil, err
	}
	s.compactFanIn = int(meta[1])
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	for si := uint32(0); si < count; si++ {
		lohi := make([]int64, 2)
		for i := range lohi {
			if err := binary.Read(br, binary.LittleEndian, &lohi[i]); err != nil {
				return nil, err
			}
		}
		lo, hi := int(lohi[0]), int(lohi[1])
		colName := fmt.Sprintf("%s/seg-%d", name, lo)
		if hi != lo {
			colName = fmt.Sprintf("%s/seg-%d-%d", name, lo, hi)
		}
		col := &Collection{name: colName, schema: s.schema, byID: make(map[int64]int)}
		if err := loadVectors(br, col, int(dim)); err != nil {
			return nil, err
		}
		segOpts := opts
		segOpts.Seed = segSeed(opts.Seed, lo, hi)
		if err := col.BuildIndex(s.kind, segOpts); err != nil {
			return nil, fmt.Errorf("vectordb: rebuilding segment [%d,%d] index: %w", lo, hi, err)
		}
		s.sealed = append(s.sealed, &segment{col: col, lo: lo, hi: hi})
	}
	if err := loadVectors(br, s.growing, int(dim)); err != nil {
		return nil, err
	}
	// Restore the seal sequence last: the growing segment NewSegmented
	// created consumed seq 1, but the saver's counter wins.
	s.seq = int(meta[2])
	s.growing.name = fmt.Sprintf("%s/seg-%d", name, s.seq)
	return s, nil
}

// Load reads a snapshot and rebuilds indexes.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("vectordb: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("vectordb: bad magic %q", head)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	db := New()
	for ci := uint32(0); ci < count; ci++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var dim uint32
		if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
			return nil, err
		}
		var norm uint8
		if err := binary.Read(br, binary.LittleEndian, &norm); err != nil {
			return nil, err
		}
		kind, err := readString(br)
		if err != nil {
			return nil, err
		}
		raw := make([]int64, 6)
		for i := range raw {
			if err := binary.Read(br, binary.LittleEndian, &raw[i]); err != nil {
				return nil, err
			}
		}
		var keep uint8
		if err := binary.Read(br, binary.LittleEndian, &keep); err != nil {
			return nil, err
		}
		opts := IndexOptions{
			NList: int(raw[0]), P: int(raw[1]), M: int(raw[2]),
			M0: int(raw[3]), EfConstruction: int(raw[4]), Seed: uint64(raw[5]),
			KeepRaw: keep == 1,
		}
		col, err := db.CreateCollection(name, Schema{Dim: int(dim), Normalize: norm == 1})
		if err != nil {
			return nil, err
		}
		var n uint64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		vec := make([]float32, dim)
		for vi := uint64(0); vi < n; vi++ {
			var id int64
			if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
				return nil, err
			}
			for d := range vec {
				var bits uint32
				if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
					return nil, err
				}
				vec[d] = math.Float32frombits(bits)
			}
			if err := col.Insert(id, vec); err != nil {
				return nil, err
			}
		}
		if kind != "" {
			if err := col.BuildIndex(IndexKind(kind), opts); err != nil {
				return nil, fmt.Errorf("vectordb: rebuilding %q index for %q: %w", kind, name, err)
			}
		}
	}
	return db, nil
}
