package vectordb

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

func newSeg(t *testing.T, threshold int) *SegmentedCollection {
	t.Helper()
	s, err := NewSegmented("patches", Schema{Dim: dim, Normalize: true},
		IndexIMI, IndexOptions{P: 4, M: 16, KeepRaw: true, Seed: 9}, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSegmentedValidation(t *testing.T) {
	if _, err := NewSegmented("x", Schema{Dim: 0}, IndexIMI, IndexOptions{}, 0); !errors.Is(err, ErrDimension) {
		t.Fatalf("zero dim: %v", err)
	}
	s := newSeg(t, 100)
	if err := s.Insert(1, mat.Vec{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("dim mismatch: %v", err)
	}
}

func TestSegmentedAutoSeal(t *testing.T) {
	s := newSeg(t, 100)
	for i := 0; i < 350; i++ {
		if err := s.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sealed, growing := s.Segments()
	if sealed != 3 || growing != 50 {
		t.Fatalf("segments = %d sealed, %d growing; want 3, 50", sealed, growing)
	}
	if s.Len() != 350 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSegmentedSearchSpansSegments(t *testing.T) {
	s := newSeg(t, 100)
	for i := 0; i < 250; i++ {
		if err := s.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Probe vectors living in a sealed segment and in the growing one.
	for _, probe := range []int{10, 140, 240} {
		res, err := s.Search(unit(uint64(probe)), 1, ann.Params{NProbe: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != int64(probe+1) {
			t.Fatalf("probe %d: got %v", probe, res)
		}
	}
}

func TestSegmentedMatchesMonolithic(t *testing.T) {
	// A segmented collection must return the same exact top-k as one
	// monolithic exact collection over the same data.
	s := newSeg(t, 64)
	db := New()
	mono, _ := db.CreateCollection("mono", Schema{Dim: dim, Normalize: true})
	for i := 0; i < 300; i++ {
		v := unit(uint64(i))
		if err := s.Insert(int64(i+1), v); err != nil {
			t.Fatal(err)
		}
		if err := mono.Insert(int64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	q := unit(777)
	segHits, err := s.Search(q, 5, ann.Params{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	monoHits, err := mono.Search(q, 5, ann.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range monoHits {
		if segHits[i].ID != monoHits[i].ID {
			t.Fatalf("rank %d: segmented %d vs monolithic %d", i, segHits[i].ID, monoHits[i].ID)
		}
	}
}

func TestSegmentedDuplicateAcrossSegments(t *testing.T) {
	s := newSeg(t, 10)
	for i := 0; i < 25; i++ {
		if err := s.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// id 3 lives in a sealed segment by now.
	if err := s.Insert(3, unit(999)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("cross-segment duplicate: %v", err)
	}
}

func TestSegmentedSealAndCompact(t *testing.T) {
	s := newSeg(t, 100)
	for i := 0; i < 230; i++ {
		_ = s.Insert(int64(i+1), unit(uint64(i)))
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	sealed, growing := s.Segments()
	if sealed != 3 || growing != 0 {
		t.Fatalf("after seal: %d sealed, %d growing", sealed, growing)
	}
	// Sealing an empty growing segment is a no-op.
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	q := unit(42)
	before, err := s.Search(q, 5, ann.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	sealed, _ = s.Segments()
	if sealed != 1 {
		t.Fatalf("after compact: %d sealed", sealed)
	}
	if s.Len() != 230 {
		t.Fatalf("compact lost vectors: %d", s.Len())
	}
	after, err := s.Search(q, 5, ann.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if before[0].ID != after[0].ID {
		t.Fatalf("top hit changed across compact: %d vs %d", before[0].ID, after[0].ID)
	}
}

func TestSegmentedStats(t *testing.T) {
	s := newSeg(t, 100)
	for i := 0; i < 150; i++ {
		_ = s.Insert(int64(i+1), unit(uint64(i)))
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Count != 150 || st.RawBytes <= 0 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	seg := s.SegmentStats()
	if !seg.Streaming || seg.Sealed != 1 || seg.Building != 0 || seg.GrowingLen != 50 {
		t.Fatalf("segment stats = %+v", seg)
	}
	if seg.SealedVectors != 100 || seg.Seals != 1 || seg.IndexBytes <= 0 {
		t.Fatalf("segment stats = %+v", seg)
	}
}

func TestSegmentedConcurrent(t *testing.T) {
	s := newSeg(t, 64)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Insert(int64(g*1000+i+1), unit(uint64(g*100+i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Search(unit(uint64(g*7+i)), 5, ann.Params{NProbe: 8}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != 400 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSegmentedNoFullRebuild(t *testing.T) {
	// The point of segmentation: inserting new footage after a seal must
	// not touch sealed segments' indexes (their identity is stable).
	s := newSeg(t, 100)
	for i := 0; i < 100; i++ {
		_ = s.Insert(int64(i+1), unit(uint64(i)))
	}
	sealedBefore, _ := s.Segments()
	if sealedBefore != 1 {
		t.Fatalf("expected 1 sealed segment, got %d", sealedBefore)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	firstSeg := s.sealed[0].col
	for i := 100; i < 150; i++ {
		_ = s.Insert(int64(i+1), unit(uint64(i)))
	}
	if s.sealed[0].col != firstSeg {
		t.Fatal("sealed segment was rebuilt by later inserts")
	}
}
