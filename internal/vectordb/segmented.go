package vectordb

import (
	"fmt"
	"sync"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/obs"
)

// SegmentedCollection implements the incremental-indexing design the paper
// lists as future work (Section IX): "leveraging segmented parallel
// processing to reduce the overhead of full rebuilds during video updates
// and enhancing the incremental indexing strategy for new insertions".
//
// Inserts land in a small mutable growing segment that is searched exactly;
// when the growing segment reaches SealThreshold it is sealed and handed to
// a background maintenance worker that builds its index off-lock — the
// sealing Insert returns immediately and queries keep answering from the
// growing segment, the not-yet-indexed sealed segments (scanned exactly)
// and the already-indexed ones throughout. A query fans out across every
// segment and merges the top-k.
//
// The maintenance worker also runs a size-tiered compaction policy: when
// CompactFanIn adjacent sealed segments share a size tier they are merged
// into one freshly indexed segment, bounding per-query fan-out under
// sustained ingest. Segment identity is the inclusive range [lo, hi] of
// seal sequence numbers a segment covers; index seeds derive from that
// identity alone, so any replica that compacts the same member set builds a
// byte-identical index regardless of when in its ingest history it
// compacted. Builds run in seal order and the policy always merges the
// leftmost qualifying run, so equal ingest histories converge to equal
// segment structures at quiesce.
type SegmentedCollection struct {
	name   string
	schema Schema
	kind   IndexKind
	opts   IndexOptions
	// sealThreshold is the growing-segment size that triggers a seal.
	sealThreshold int

	mu   sync.RWMutex
	cond *sync.Cond // broadcast on every maintenance transition
	// sealed segments have data frozen and an index built (or a recorded
	// build failure); ascending by lo, ranges contiguous.
	sealed []*segment
	// building segments have data frozen but their index build still
	// pending or in flight; searched via the exact-scan fallback.
	building []*segment
	growing  *Collection
	seq      int // seal sequence number of the current growing segment
	// compactFanIn is the tiered policy's fan-in; <= 1 disables the
	// background policy (manual Compact still works).
	compactFanIn int
	maintRunning bool
	compacting   bool
	maintErr     error
	seals        uint64
	compactions  uint64
	events       []MaintEvent

	// buildHook, when set (tests), runs at the start of every background
	// index build, off the collection lock.
	buildHook func()
}

// segment is one immutable member of the collection: its vectors plus the
// identity range of seal sequence numbers it covers.
type segment struct {
	col    *Collection
	lo, hi int
}

// DefaultCompactFanIn is the size-tiered compaction policy's default
// fan-in: a run of this many adjacent same-tier sealed segments merges.
const DefaultCompactFanIn = 4

// maintEventCap bounds the retained maintenance log.
const maintEventCap = 32

// MaintEvent records one background maintenance operation (a seal's index
// build or a compaction) with its obs span tree, for the debug tier.
type MaintEvent struct {
	// Op is "seal" or "compact".
	Op string
	// Segments is the number of member segments involved.
	Segments int
	// Vectors is the vector count of the produced segment.
	Vectors int
	// Err is the build error message, if the operation failed.
	Err string
	// Spans is the operation's exported obs span forest; Spans[0] is the
	// root and carries the wall duration.
	Spans []obs.SpanData
}

// SegmentStats is the per-state segment breakdown a streaming collection
// exposes to operators (satellite of ISSUE 10: Stats() must not hide the
// segment lifecycle).
type SegmentStats struct {
	// Streaming marks the stats as coming from a segmented collection.
	Streaming bool
	// Sealed counts segments with a built index; Building counts sealed
	// segments whose background build is still pending or in flight;
	// Growing counts mutable segments (always 1 per collection — it exists
	// so fleet-level aggregation can sum per-shard stats honestly).
	Sealed, Building, Growing int
	// GrowingLen is the vector count of the mutable growing segment;
	// SealedVectors the total across sealed+building segments.
	GrowingLen, SealedVectors int
	// RawBytes and IndexBytes mirror Stats for the respective states.
	RawBytes, IndexBytes int64
	// Seals and Compactions count maintenance operations since creation.
	Seals, Compactions uint64
}

// NewSegmented creates a segmented collection. sealThreshold <= 0 defaults
// to 4096 vectors per segment.
func NewSegmented(name string, schema Schema, kind IndexKind, opts IndexOptions, sealThreshold int) (*SegmentedCollection, error) {
	if schema.Dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrDimension, schema.Dim)
	}
	if sealThreshold <= 0 {
		sealThreshold = 4096
	}
	s := &SegmentedCollection{
		name:          name,
		schema:        schema,
		kind:          kind,
		opts:          opts,
		sealThreshold: sealThreshold,
		compactFanIn:  DefaultCompactFanIn,
	}
	s.cond = sync.NewCond(&s.mu)
	s.growing = s.newSegment()
	return s, nil
}

func (s *SegmentedCollection) newSegment() *Collection {
	s.seq++
	return &Collection{
		name:   fmt.Sprintf("%s/seg-%d", s.name, s.seq),
		schema: s.schema,
		byID:   make(map[int64]int),
	}
}

// segSeed derives the index seed for the segment covering seal sequences
// [lo, hi] from the collection's base seed and nothing else — a replica
// must arrive at the same seed for the same member set no matter when in
// its ingest history it seals or compacts (the seed must never depend on
// mutable state like the current growing-segment sequence). splitmix64
// finalizer over the mixed identity.
func segSeed(base uint64, lo, hi int) uint64 {
	x := base ^ uint64(lo)*0x9e3779b97f4a7c15 ^ uint64(hi)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Name returns the collection name.
func (s *SegmentedCollection) Name() string { return s.name }

// Len returns the total vector count across segments.
func (s *SegmentedCollection) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.growing.Len()
	for _, seg := range s.sealed {
		n += seg.col.Len()
	}
	for _, seg := range s.building {
		n += seg.col.Len()
	}
	return n
}

// Segments returns (sealed, growing) segment counts. Sealed counts every
// frozen segment, whether or not its background index build has finished.
func (s *SegmentedCollection) Segments() (sealed int, growingLen int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sealed) + len(s.building), s.growing.Len()
}

// SetCompactFanIn tunes the size-tiered background compaction policy: a
// run of n adjacent same-tier sealed segments merges. n <= 1 disables the
// policy; manual Compact is unaffected.
func (s *SegmentedCollection) SetCompactFanIn(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactFanIn = n
}

// Insert adds a vector to the growing segment, sealing it in the
// background when full — the sealing insert does not pay for the index
// build. Duplicate IDs are rejected across all segments.
func (s *SegmentedCollection) Insert(id int64, v mat.Vec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.sealed {
		if _, dup := seg.col.byID[id]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicate, id)
		}
	}
	for _, seg := range s.building {
		if _, dup := seg.col.byID[id]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicate, id)
		}
	}
	if err := s.growing.Insert(id, v); err != nil {
		return err
	}
	if s.growing.Len() >= s.sealThreshold {
		s.sealLocked()
	}
	return nil
}

// Seal force-seals the growing segment (e.g. at the end of an ingest
// batch); the index build happens in the background. A no-op when the
// growing segment is empty. Returns any error recorded by earlier
// background maintenance.
func (s *SegmentedCollection) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked()
	return s.maintErr
}

// sealLocked freezes the growing segment and queues its index build on the
// maintenance worker. Caller holds s.mu.
func (s *SegmentedCollection) sealLocked() {
	if s.growing.Len() == 0 {
		return
	}
	seg := &segment{col: s.growing, lo: s.seq, hi: s.seq}
	s.building = append(s.building, seg)
	s.seals++
	s.growing = s.newSegment()
	if !s.maintRunning {
		s.maintRunning = true
		go s.maintain()
	}
}

// maintain is the background maintenance worker: it drains queued index
// builds in seal order, then runs the compaction policy, and exits once
// there is nothing left to do. At most one runs per collection, which
// keeps build completion in seal order — the property that makes the
// compaction policy's decisions (and therefore the final segment
// structure) a pure function of ingest history.
func (s *SegmentedCollection) maintain() {
	s.mu.Lock()
	for {
		if len(s.building) > 0 {
			seg := s.building[0]
			hook := s.buildHook
			s.mu.Unlock()
			ev, err := s.buildSegment(seg, hook)
			s.mu.Lock()
			s.building = s.building[1:]
			s.insertSealedLocked(seg)
			if err != nil && s.maintErr == nil {
				s.maintErr = fmt.Errorf("vectordb: sealing segment %s: %w", seg.col.name, err)
			}
			s.pushEventLocked(ev)
			s.cond.Broadcast()
			continue
		}
		members := s.nextCompactionLocked()
		if members == nil {
			break
		}
		s.compacting = true
		s.mu.Unlock()
		merged, ev, err := s.compactMembers(members)
		s.mu.Lock()
		s.compacting = false
		if err != nil {
			if s.maintErr == nil {
				s.maintErr = err
			}
		} else {
			s.replaceMembersLocked(members, merged)
			s.compactions++
		}
		s.pushEventLocked(ev)
		s.cond.Broadcast()
	}
	s.maintRunning = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// buildSegment builds one frozen segment's index off-lock.
func (s *SegmentedCollection) buildSegment(seg *segment, hook func()) (MaintEvent, error) {
	if hook != nil {
		hook()
	}
	tr := obs.NewTrace(obs.NewID())
	root := tr.Root("maint.seal")
	opts := s.opts
	opts.Seed = segSeed(s.opts.Seed, seg.lo, seg.hi)
	sp := root.Child("index.build")
	err := seg.col.BuildIndexSealed(s.kind, opts)
	if sp.On() {
		sp.Detail(fmt.Sprintf("kind=%s vectors=%d seg=[%d,%d]", s.kind, seg.col.Len(), seg.lo, seg.hi))
	}
	sp.End()
	root.End()
	ev := MaintEvent{Op: "seal", Segments: 1, Vectors: seg.col.Len(), Spans: tr.Export()}
	if err != nil {
		ev.Err = err.Error()
	}
	return ev, err
}

// insertSealedLocked files a freshly indexed segment into the sealed list,
// keeping it ascending by lo. Caller holds s.mu.
func (s *SegmentedCollection) insertSealedLocked(seg *segment) {
	i := len(s.sealed)
	for i > 0 && s.sealed[i-1].lo > seg.lo {
		i--
	}
	s.sealed = append(s.sealed, nil)
	copy(s.sealed[i+1:], s.sealed[i:])
	s.sealed[i] = seg
}

// tier buckets a segment size for the compaction policy: tier t holds
// sizes in [threshold*F^t, threshold*F^(t+1)); undersized force-sealed
// segments land in tier 0.
func (s *SegmentedCollection) tier(n int) int {
	t := 0
	limit := s.sealThreshold * s.compactFanIn
	for limit > 0 && n >= limit {
		t++
		limit *= s.compactFanIn
	}
	return t
}

// nextCompactionLocked returns the leftmost run of compactFanIn adjacent
// sealed segments sharing a size tier, or nil when no run qualifies.
// Caller holds s.mu.
func (s *SegmentedCollection) nextCompactionLocked() []*segment {
	f := s.compactFanIn
	if f <= 1 || len(s.sealed) < f {
		return nil
	}
	start, curTier := 0, -1
	for i, seg := range s.sealed {
		t := s.tier(seg.col.Len())
		if t != curTier {
			start, curTier = i, t
		}
		if i-start+1 == f {
			return append([]*segment(nil), s.sealed[start:i+1]...)
		}
	}
	return nil
}

// compactMembers merges an ascending contiguous run of sealed segments
// into one freshly indexed segment, off-lock. The merged identity is the
// union range [members[0].lo, members[last].hi], so its seed — and hence
// its index — is byte-identical on any replica merging the same set.
func (s *SegmentedCollection) compactMembers(members []*segment) (*segment, MaintEvent, error) {
	tr := obs.NewTrace(obs.NewID())
	root := tr.Root("maint.compact")
	lo, hi := members[0].lo, members[len(members)-1].hi
	col := &Collection{
		name:   fmt.Sprintf("%s/seg-%d-%d", s.name, lo, hi),
		schema: s.schema,
		byID:   make(map[int64]int),
	}
	sp := root.Child("merge")
	// Rows are copied bit-exact — NOT re-inserted through Insert, whose
	// re-normalisation would perturb already-normalised floats by an ulp
	// and break the exact-search bit-identity contract across a compaction.
	for _, m := range members {
		m.col.Scan(func(id int64, v mat.Vec) bool {
			col.byID[id] = len(col.ids)
			col.ids = append(col.ids, id)
			col.data = append(col.data, v...)
			return true
		})
	}
	sp.End()
	ev := MaintEvent{Op: "compact", Segments: len(members), Vectors: col.Len()}
	opts := s.opts
	opts.Seed = segSeed(s.opts.Seed, lo, hi)
	sp = root.Child("index.build")
	err := col.BuildIndexSealed(s.kind, opts)
	if sp.On() {
		sp.Detail(fmt.Sprintf("kind=%s vectors=%d seg=[%d,%d]", s.kind, col.Len(), lo, hi))
	}
	sp.End()
	root.End()
	ev.Spans = tr.Export()
	if err != nil {
		ev.Err = err.Error()
		return nil, ev, fmt.Errorf("vectordb: compacting index: %w", err)
	}
	return &segment{col: col, lo: lo, hi: hi}, ev, nil
}

// replaceMembersLocked swaps a merged segment in for its members in one
// atomic list update. Caller holds s.mu.
func (s *SegmentedCollection) replaceMembersLocked(members []*segment, merged *segment) {
	isMember := make(map[*segment]bool, len(members))
	for _, m := range members {
		isMember[m] = true
	}
	out := s.sealed[:0]
	placed := false
	for _, seg := range s.sealed {
		if isMember[seg] {
			if !placed {
				out = append(out, merged)
				placed = true
			}
			continue
		}
		out = append(out, seg)
	}
	for i := len(out); i < len(s.sealed); i++ {
		s.sealed[i] = nil
	}
	s.sealed = out
}

// pushEventLocked appends to the bounded maintenance log. Caller holds
// s.mu.
func (s *SegmentedCollection) pushEventLocked(ev MaintEvent) {
	s.events = append(s.events, ev)
	if len(s.events) > maintEventCap {
		s.events = s.events[len(s.events)-maintEventCap:]
	}
}

// MaintLog returns the most recent maintenance operations (seal builds and
// compactions) with their obs span trees, newest last.
func (s *SegmentedCollection) MaintLog() []MaintEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]MaintEvent(nil), s.events...)
}

// MaintErr returns the first error recorded by background maintenance, if
// any.
func (s *SegmentedCollection) MaintErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maintErr
}

// WaitMaintenance blocks until every queued index build and compaction has
// finished, then returns the first background maintenance error, if any.
// Under sustained concurrent ingest this waits for a momentary quiesce.
func (s *SegmentedCollection) WaitMaintenance() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.maintRunning || len(s.building) > 0 || s.compacting {
		s.cond.Wait()
	}
	return s.maintErr
}

// Search fans out across all segments and merges the global top-k.
// Segments whose background build has not finished are scanned exactly, so
// a query never waits on an index build.
func (s *SegmentedCollection) Search(q mat.Vec, k int, p ann.Params) ([]mat.Scored, error) {
	if len(q) != s.schema.Dim {
		return nil, fmt.Errorf("%w: query %d != %d", ErrDimension, len(q), s.schema.Dim)
	}
	if k <= 0 {
		return nil, nil
	}
	segs := s.snapshotSegments()

	// Parallel fan-out: each segment searches independently (the
	// "segmented parallel processing" of the paper's future work).
	type result struct {
		hits []mat.Scored
		err  error
	}
	results := make([]result, len(segs))
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i int, seg *Collection) {
			defer wg.Done()
			hits, err := seg.Search(q, k, p)
			results[i] = result{hits, err}
		}(i, seg)
	}
	wg.Wait()

	top := mat.GetTopK(k)
	defer mat.PutTopK(top)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, h := range r.hits {
			top.Push(h.ID, h.Score)
		}
	}
	return top.Sorted(), nil
}

// snapshotSegments captures the current searchable segment set.
func (s *SegmentedCollection) snapshotSegments() []*Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	segs := make([]*Collection, 0, len(s.sealed)+len(s.building)+1)
	for _, seg := range s.sealed {
		segs = append(segs, seg.col)
	}
	for _, seg := range s.building {
		segs = append(segs, seg.col)
	}
	if s.growing.Len() > 0 {
		segs = append(segs, s.growing)
	}
	return segs
}

// Scan visits every stored vector in insertion order (sealed segments
// oldest first, then pending builds, then the growing segment) until fn
// returns false. The visited slice aliases segment storage — fn must not
// retain or mutate it.
func (s *SegmentedCollection) Scan(fn func(id int64, v mat.Vec) bool) {
	s.mu.RLock()
	segs := make([]*Collection, 0, len(s.sealed)+len(s.building)+1)
	for _, seg := range s.sealed {
		segs = append(segs, seg.col)
	}
	for _, seg := range s.building {
		segs = append(segs, seg.col)
	}
	segs = append(segs, s.growing)
	s.mu.RUnlock()
	stop := false
	for _, col := range segs {
		if stop {
			return
		}
		col.Scan(func(id int64, v mat.Vec) bool {
			if !fn(id, v) {
				stop = true
				return false
			}
			return true
		})
	}
}

// Compact merges every sealed segment into a single freshly indexed
// segment; an offline maintenance operation trading one big build for
// lower per-query fan-out. It first waits for queued background builds and
// compactions to drain, so the merge covers every segment sealed before
// the call. The merged segment's seed derives from the member identity
// range, so replicas compacting the same ingest prefix produce
// byte-identical indexes even if they compacted at different points in
// their history.
func (s *SegmentedCollection) Compact() error {
	s.mu.Lock()
	for s.maintRunning || len(s.building) > 0 || s.compacting {
		s.cond.Wait()
	}
	if err := s.maintErr; err != nil {
		s.mu.Unlock()
		return err
	}
	if len(s.sealed) <= 1 {
		s.mu.Unlock()
		return nil
	}
	members := append([]*segment(nil), s.sealed...)
	s.compacting = true
	s.mu.Unlock()

	merged, ev, err := s.compactMembers(members)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = false
	defer s.cond.Broadcast()
	s.pushEventLocked(ev)
	if err != nil {
		return err
	}
	s.replaceMembersLocked(members, merged)
	s.compactions++
	return nil
}

// Stats aggregates per-segment statistics.
func (s *SegmentedCollection) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := Stats{Name: s.name, Dim: s.schema.Dim, IndexKind: s.kind}
	for _, seg := range s.sealed {
		st := seg.col.Stats()
		out.Count += st.Count
		out.RawBytes += st.RawBytes
		out.IndexBytes += st.IndexBytes
	}
	for _, seg := range s.building {
		st := seg.col.Stats()
		out.Count += st.Count
		out.RawBytes += st.RawBytes
	}
	st := s.growing.Stats()
	out.Count += st.Count
	out.RawBytes += st.RawBytes
	return out
}

// SegmentStats reports the per-state segment breakdown.
func (s *SegmentedCollection) SegmentStats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := SegmentStats{
		Streaming:   true,
		Sealed:      len(s.sealed),
		Building:    len(s.building),
		Growing:     1,
		GrowingLen:  s.growing.Len(),
		Seals:       s.seals,
		Compactions: s.compactions,
	}
	for _, seg := range s.sealed {
		st := seg.col.Stats()
		out.SealedVectors += st.Count
		out.RawBytes += st.RawBytes
		out.IndexBytes += st.IndexBytes
	}
	for _, seg := range s.building {
		st := seg.col.Stats()
		out.SealedVectors += st.Count
		out.RawBytes += st.RawBytes
	}
	out.RawBytes += s.growing.Stats().RawBytes
	return out
}
