package vectordb

import (
	"fmt"
	"sync"

	"repro/internal/ann"
	"repro/internal/mat"
)

// SegmentedCollection implements the incremental-indexing design the paper
// lists as future work (Section IX): "leveraging segmented parallel
// processing to reduce the overhead of full rebuilds during video updates
// and enhancing the incremental indexing strategy for new insertions".
//
// Inserts land in a small mutable growing segment that is searched exactly;
// when the growing segment reaches SealThreshold it is sealed and an index
// is built over it in isolation — never touching previously sealed
// segments, so ingest of new footage never triggers a full rebuild. A
// query fans out across every sealed segment's index plus the growing
// segment and merges the top-k. Compact() optionally merges all sealed
// segments into one for long-term read efficiency.
type SegmentedCollection struct {
	name   string
	schema Schema
	kind   IndexKind
	opts   IndexOptions
	// SealThreshold is the growing-segment size that triggers a seal.
	sealThreshold int

	mu      sync.RWMutex
	sealed  []*Collection
	growing *Collection
	seq     int
}

// NewSegmented creates a segmented collection. sealThreshold <= 0 defaults
// to 4096 vectors per segment.
func NewSegmented(name string, schema Schema, kind IndexKind, opts IndexOptions, sealThreshold int) (*SegmentedCollection, error) {
	if schema.Dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrDimension, schema.Dim)
	}
	if sealThreshold <= 0 {
		sealThreshold = 4096
	}
	s := &SegmentedCollection{
		name:          name,
		schema:        schema,
		kind:          kind,
		opts:          opts,
		sealThreshold: sealThreshold,
	}
	s.growing = s.newSegment()
	return s, nil
}

func (s *SegmentedCollection) newSegment() *Collection {
	s.seq++
	return &Collection{
		name:   fmt.Sprintf("%s/seg-%d", s.name, s.seq),
		schema: s.schema,
		byID:   make(map[int64]int),
	}
}

// Name returns the collection name.
func (s *SegmentedCollection) Name() string { return s.name }

// Len returns the total vector count across segments.
func (s *SegmentedCollection) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.growing.Len()
	for _, seg := range s.sealed {
		n += seg.Len()
	}
	return n
}

// Segments returns (sealed, growing) segment counts.
func (s *SegmentedCollection) Segments() (sealed int, growingLen int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sealed), s.growing.Len()
}

// Insert adds a vector to the growing segment, sealing it when full.
// Duplicate IDs are rejected across all segments.
func (s *SegmentedCollection) Insert(id int64, v mat.Vec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.sealed {
		if _, dup := seg.byID[id]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicate, id)
		}
	}
	if err := s.growing.Insert(id, v); err != nil {
		return err
	}
	if s.growing.Len() >= s.sealThreshold {
		return s.sealLocked()
	}
	return nil
}

// Seal force-seals the growing segment (e.g. at the end of an ingest
// batch), building its index. A no-op when the growing segment is empty.
func (s *SegmentedCollection) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

func (s *SegmentedCollection) sealLocked() error {
	if s.growing.Len() == 0 {
		return nil
	}
	opts := s.opts
	opts.Seed ^= uint64(s.seq) * 0x9e3779b9
	if err := s.growing.BuildIndex(s.kind, opts); err != nil {
		return fmt.Errorf("vectordb: sealing segment %s: %w", s.growing.name, err)
	}
	s.sealed = append(s.sealed, s.growing)
	s.growing = s.newSegment()
	return nil
}

// Search fans out across all segments and merges the global top-k.
func (s *SegmentedCollection) Search(q mat.Vec, k int, p ann.Params) ([]mat.Scored, error) {
	if len(q) != s.schema.Dim {
		return nil, fmt.Errorf("%w: query %d != %d", ErrDimension, len(q), s.schema.Dim)
	}
	if k <= 0 {
		return nil, nil
	}
	s.mu.RLock()
	segs := make([]*Collection, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	if s.growing.Len() > 0 {
		segs = append(segs, s.growing)
	}
	s.mu.RUnlock()

	// Parallel fan-out: each segment searches independently (the
	// "segmented parallel processing" of the paper's future work).
	type result struct {
		hits []mat.Scored
		err  error
	}
	results := make([]result, len(segs))
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i int, seg *Collection) {
			defer wg.Done()
			hits, err := seg.Search(q, k, p)
			results[i] = result{hits, err}
		}(i, seg)
	}
	wg.Wait()

	top := mat.GetTopK(k)
	defer mat.PutTopK(top)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, h := range r.hits {
			top.Push(h.ID, h.Score)
		}
	}
	return top.Sorted(), nil
}

// Compact merges every sealed segment into a single freshly indexed
// segment; an offline maintenance operation trading one big build for
// lower per-query fan-out.
func (s *SegmentedCollection) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sealed) <= 1 {
		return nil
	}
	merged := s.newSegment()
	for _, seg := range s.sealed {
		for i, id := range seg.ids {
			if err := merged.Insert(id, seg.vector(i)); err != nil {
				return fmt.Errorf("vectordb: compacting: %w", err)
			}
		}
	}
	opts := s.opts
	opts.Seed ^= uint64(s.seq) * 0x9e3779b9
	if err := merged.BuildIndex(s.kind, opts); err != nil {
		return fmt.Errorf("vectordb: compacting index: %w", err)
	}
	s.sealed = []*Collection{merged}
	return nil
}

// Stats aggregates per-segment statistics.
func (s *SegmentedCollection) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := Stats{Name: s.name, Dim: s.schema.Dim, IndexKind: s.kind}
	for _, seg := range s.sealed {
		st := seg.Stats()
		out.Count += st.Count
		out.RawBytes += st.RawBytes
		out.IndexBytes += st.IndexBytes
	}
	st := s.growing.Stats()
	out.Count += st.Count
	out.RawBytes += st.RawBytes
	return out
}
