package vectordb

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

// sameHits asserts two result lists are byte-identical: same IDs in the
// same order with bitwise-equal scores.
func sameHits(t *testing.T, a, b []mat.Scored, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d hits vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float32bits(a[i].Score) != math.Float32bits(b[i].Score) {
			t.Fatalf("%s: rank %d: (%d, %x) vs (%d, %x)",
				label, i, a[i].ID, math.Float32bits(a[i].Score), b[i].ID, math.Float32bits(b[i].Score))
		}
	}
}

// TestSealDoesNotBlockQueries pins the ISSUE 10 bugfix: the Insert that
// crosses SealThreshold must return without paying for the index build,
// and queries must keep answering while a (blocked) seal is in flight.
// Before the fix both stalled on the collection write lock for the whole
// build.
func TestSealDoesNotBlockQueries(t *testing.T) {
	s := newSeg(t, 50)
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	s.buildHook = func() {
		entered <- struct{}{}
		<-release
	}
	// The 50th insert seals; it must return with the build still pending.
	for i := 0; i < 50; i++ {
		if err := s.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // the background build is now parked inside the hook

	// Queries answer from the exact-scan fallback while the seal builds.
	res, err := s.Search(unit(10), 1, ann.Params{NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 11 {
		t.Fatalf("search during seal: got %v", res)
	}
	// Inserts proceed too — the growing segment is fresh.
	if err := s.Insert(51, unit(50)); err != nil {
		t.Fatal(err)
	}
	sealed, growing := s.Segments()
	if sealed != 1 || growing != 1 {
		t.Fatalf("mid-seal segments = %d sealed, %d growing", sealed, growing)
	}
	close(release)
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	st := s.SegmentStats()
	if st.Sealed != 1 || st.Building != 0 || st.IndexBytes <= 0 {
		t.Fatalf("post-seal stats = %+v", st)
	}
	// The index the background build installed answers correctly.
	res, err = s.Search(unit(10), 1, ann.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 11 {
		t.Fatalf("search after seal: got %v", res)
	}
}

// TestCompactReplicaConvergence pins the seed-derivation bugfix: two
// equal-seeded replicas that compact at different points in their ingest
// history must end with byte-identical approximate indexes. Before the
// fix the compaction seed depended on the mutable segment sequence
// counter, so the replicas silently diverged.
func TestCompactReplicaConvergence(t *testing.T) {
	a, b := newSeg(t, 100), newSeg(t, 100)
	vecs := make([]mat.Vec, 500)
	for i := range vecs {
		vecs[i] = unit(uint64(i))
	}
	insert := func(s *SegmentedCollection, from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := s.Insert(int64(i+1), vecs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Replica A compacts mid-history, ingests more, compacts again.
	insert(a, 0, 300)
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	insert(a, 300, 500)
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	// Replica B ingests everything, then compacts once.
	insert(b, 0, 500)
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Segments(); got != 1 {
		t.Fatalf("replica A: %d sealed after compact", got)
	}
	if got, _ := b.Segments(); got != 1 {
		t.Fatalf("replica B: %d sealed after compact", got)
	}
	// Approximate answers (not just exact ones) must agree bit-for-bit.
	for probe := 0; probe < 20; probe++ {
		q := unit(uint64(1000 + probe))
		ha, err := a.Search(q, 10, ann.Params{NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.Search(q, 10, ann.Params{NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
		sameHits(t, ha, hb, "replica approximate answers")
	}
}

// TestTieredCompactionPolicy pins that Compact is no longer dead code: the
// size-tiered background policy invokes it as sealed segments accumulate,
// and the resulting structure is the deterministic fixpoint of the ingest
// history.
func TestTieredCompactionPolicy(t *testing.T) {
	s := newSeg(t, 20)
	for i := 0; i < 16*20; i++ {
		if err := s.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	st := s.SegmentStats()
	if st.Seals != 16 {
		t.Fatalf("seals = %d, want 16", st.Seals)
	}
	// 16 tier-0 seals merge 4-at-a-time into 4 tier-1 segments, which merge
	// into one tier-2 segment: 5 compactions, 1 surviving segment.
	if st.Compactions != 5 {
		t.Fatalf("compactions = %d, want 5", st.Compactions)
	}
	if st.Sealed != 1 || st.Building != 0 {
		t.Fatalf("segments = %+v, want 1 sealed", st)
	}
	if s.Len() != 320 {
		t.Fatalf("len = %d", s.Len())
	}
	// Everything is still findable through the merged index.
	for _, probe := range []int{0, 100, 319} {
		res, err := s.Search(unit(uint64(probe)), 1, ann.Params{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != int64(probe+1) {
			t.Fatalf("probe %d: got %v", probe, res)
		}
	}
	// The maintenance log recorded both kinds of operation with spans.
	var seals, compacts int
	for _, ev := range s.MaintLog() {
		switch ev.Op {
		case "seal":
			seals++
		case "compact":
			compacts++
		}
		if len(ev.Spans) == 0 || ev.Spans[0].Dur <= 0 {
			t.Fatalf("maintenance event %q has no timed root span: %+v", ev.Op, ev)
		}
	}
	if seals == 0 || compacts != 5 {
		t.Fatalf("maint log: %d seal, %d compact events", seals, compacts)
	}
	// A disabled policy stays manual-only.
	m := newSeg(t, 20)
	m.SetCompactFanIn(0)
	for i := 0; i < 16*20; i++ {
		if err := m.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	if st := m.SegmentStats(); st.Compactions != 0 || st.Sealed != 16 {
		t.Fatalf("disabled policy: %+v", st)
	}
}

// TestSegmentedChaos drives concurrent Insert/Seal/Compact/Search under
// the race detector, then pins the exact-search bit-identity contract
// against a batch-built monolith after quiesce.
func TestSegmentedChaos(t *testing.T) {
	s := newSeg(t, 64)
	const (
		writers   = 4
		perWriter = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*2+2)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Insert(int64(g*perWriter+i+1), unit(uint64(g*perWriter+i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := s.Search(unit(uint64(i)), 5, ann.Params{NProbe: 8}); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Seal(); err != nil {
				errs <- err
				return
			}
			if i%3 == 0 {
				if err := s.Compact(); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	total := writers * perWriter
	if s.Len() != total {
		t.Fatalf("len = %d, want %d", s.Len(), total)
	}

	db := New()
	mono, _ := db.CreateCollection("mono", Schema{Dim: dim, Normalize: true})
	for i := 0; i < total; i++ {
		if err := mono.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for probe := 0; probe < 25; probe++ {
		q := unit(uint64(5000 + probe))
		segHits, err := s.Search(q, 10, ann.Params{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		monoHits, err := mono.Search(q, 10, ann.Params{})
		if err != nil {
			t.Fatal(err)
		}
		sameHits(t, segHits, monoHits, "post-quiesce exact search")
	}
}

// TestSegmentedSaveLoadMidStream pins the streaming snapshot round-trip: a
// snapshot taken mid-stream (background builds possibly in flight,
// growing segment non-empty) restores a collection with the same segment
// identities — and therefore byte-identical answers, approximate included.
func TestSegmentedSaveLoadMidStream(t *testing.T) {
	s := newSeg(t, 50)
	for i := 0; i < 170; i++ {
		if err := s.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSegmented(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", loaded.Len(), s.Len())
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	gotSealed, gotGrowing := loaded.Segments()
	wantSealed, wantGrowing := s.Segments()
	if gotSealed != wantSealed || gotGrowing != wantGrowing {
		t.Fatalf("segments = (%d, %d), want (%d, %d)", gotSealed, gotGrowing, wantSealed, wantGrowing)
	}
	for probe := 0; probe < 10; probe++ {
		q := unit(uint64(2000 + probe))
		for _, p := range []ann.Params{{Exhaustive: true}, {NProbe: 4}} {
			want, err := s.Search(q, 5, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Search(q, 5, p)
			if err != nil {
				t.Fatal(err)
			}
			sameHits(t, got, want, "restored answers")
		}
	}
	// The restored collection keeps streaming: duplicates still rejected,
	// the seal sequence continues without identity collisions.
	if err := loaded.Insert(3, unit(999)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("post-load duplicate: %v", err)
	}
	for i := 170; i < 260; i++ {
		if err := loaded.Insert(int64(i+1), unit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := loaded.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 260 {
		t.Fatalf("post-load len = %d", loaded.Len())
	}
}
