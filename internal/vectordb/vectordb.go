// Package vectordb implements the embedded vector database of Section V —
// the role Milvus plays in the paper's deployment. It manages named
// collections of unit-normalised vectors, supports pluggable index builds
// (flat brute force, IVF-PQ, the inverted multi-index, HNSW), incremental
// inserts that flow into a built index, top-k inner-product search with
// per-call parameters, usage statistics, and binary snapshot persistence.
package vectordb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ann"
	"repro/internal/ann/flat"
	"repro/internal/ann/hnsw"
	"repro/internal/ann/imi"
	"repro/internal/ann/ivfpq"
	"repro/internal/mat"
)

// IndexKind names an index family.
type IndexKind string

// Supported index kinds.
const (
	IndexFlat  IndexKind = "flat"
	IndexIVFPQ IndexKind = "ivfpq"
	IndexIMI   IndexKind = "imi"
	IndexHNSW  IndexKind = "hnsw"
)

// ParseKind resolves a command-line index name to its kind; the empty
// string selects the default (IMI), and "bf" aliases the brute-force flat
// scan.
func ParseKind(name string) (IndexKind, error) {
	switch name {
	case "", "imi":
		return IndexIMI, nil
	case "ivfpq":
		return IndexIVFPQ, nil
	case "hnsw":
		return IndexHNSW, nil
	case "flat", "bf":
		return IndexFlat, nil
	default:
		return "", fmt.Errorf("unknown index %q (imi|ivfpq|hnsw|flat)", name)
	}
}

// IndexOptions is the union of per-kind build options; zero values select
// defaults.
type IndexOptions struct {
	// NList is the IVF coarse-cluster count.
	NList int
	// P and M shape the product quantizer (IVF-PQ residuals, IMI cells).
	P, M int
	// KeepRaw retains raw vectors inside quantizing indexes for exact
	// re-scoring.
	KeepRaw bool
	// M0 and EfConstruction shape the HNSW graph.
	M0, EfConstruction int
	// Seed drives training and level sampling.
	Seed uint64
}

// Schema describes a collection.
type Schema struct {
	// Dim is the vector dimensionality.
	Dim int
	// Normalize, when set, L2-normalises vectors on insert so inner
	// product equals cosine similarity (Section V-A).
	Normalize bool
}

// Errors returned by the database.
var (
	ErrNotFound   = errors.New("vectordb: not found")
	ErrExists     = errors.New("vectordb: already exists")
	ErrDuplicate  = errors.New("vectordb: duplicate id")
	ErrDimension  = errors.New("vectordb: dimension mismatch")
	ErrEmptyBuild = errors.New("vectordb: cannot build index over empty collection")
)

// Collection is a named set of (id, vector) pairs with an optional index.
type Collection struct {
	name   string
	schema Schema

	mu      sync.RWMutex
	ids     []int64
	byID    map[int64]int
	data    []float32 // row-major raw vectors
	index   ann.Index
	kind    IndexKind
	options IndexOptions
}

// DB is a set of collections.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// New returns an empty database.
func New() *DB {
	return &DB{collections: make(map[string]*Collection)}
}

// CreateCollection adds a new collection.
func (db *DB) CreateCollection(name string, schema Schema) (*Collection, error) {
	if schema.Dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrDimension, schema.Dim)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.collections[name]; ok {
		return nil, fmt.Errorf("%w: collection %q", ErrExists, name)
	}
	c := &Collection{name: name, schema: schema, byID: make(map[int64]int)}
	db.collections[name] = c
	return c, nil
}

// Collection fetches a collection by name.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[name]
	if !ok {
		return nil, fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	return c, nil
}

// Drop removes a collection.
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.collections[name]; !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	delete(db.collections, name)
	return nil
}

// Names lists collection names sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the collection's name.
func (c *Collection) Name() string { return c.name }

// Schema returns the collection's schema.
func (c *Collection) Schema() Schema { return c.schema }

// Len returns the number of stored vectors.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ids)
}

// Insert stores one vector. If an index is built, the vector also enters
// the index.
func (c *Collection) Insert(id int64, v mat.Vec) error {
	if len(v) != c.schema.Dim {
		return fmt.Errorf("%w: %d != %d", ErrDimension, len(v), c.schema.Dim)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}
	w := mat.Clone(v)
	if c.schema.Normalize {
		mat.Normalize(w)
	}
	c.byID[id] = len(c.ids)
	c.ids = append(c.ids, id)
	c.data = append(c.data, w...)
	if c.index != nil {
		if err := c.index.Add(id, w); err != nil {
			return fmt.Errorf("vectordb: index insert: %w", err)
		}
	}
	return nil
}

// InsertBatch stores aligned ids and vectors, stopping at the first error.
func (c *Collection) InsertBatch(ids []int64, vecs []mat.Vec) error {
	if len(ids) != len(vecs) {
		return errors.New("vectordb: ids/vecs length mismatch")
	}
	for i := range ids {
		if err := c.Insert(ids[i], vecs[i]); err != nil {
			return err
		}
	}
	return nil
}

// vector returns row i of the raw store (caller must hold the lock).
func (c *Collection) vector(i int) mat.Vec {
	return c.data[i*c.schema.Dim : (i+1)*c.schema.Dim]
}

// Scan visits every stored vector in insertion order until fn returns
// false. The visited slice aliases the store — fn must not retain or
// mutate it — and the collection is read-locked for the whole scan, so fn
// must not call back into the collection.
func (c *Collection) Scan(fn func(id int64, v mat.Vec) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, id := range c.ids {
		if !fn(id, c.vector(i)) {
			return
		}
	}
}

// Vector fetches a stored vector by id.
func (c *Collection) Vector(id int64) (mat.Vec, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return mat.Clone(c.vector(i)), nil
}

// constructIndex builds an index over aligned ids and row-major data
// without touching any lock — the shared core of BuildIndex and
// BuildIndexSealed.
func constructIndex(dim int, ids []int64, data []float32, kind IndexKind, opts IndexOptions) (ann.Index, error) {
	if len(ids) == 0 {
		return nil, ErrEmptyBuild
	}
	vecs := make([]mat.Vec, len(ids))
	for i := range ids {
		vecs[i] = data[i*dim : (i+1)*dim]
	}
	switch kind {
	case IndexFlat:
		fl := flat.New(dim)
		for i, id := range ids {
			if err := fl.Add(id, vecs[i]); err != nil {
				return nil, err
			}
		}
		return fl, nil
	case IndexIVFPQ:
		return ivfpq.Build(ids, vecs, ivfpq.Config{
			NList: opts.NList, P: opts.P, M: opts.M, KeepRaw: opts.KeepRaw, Seed: opts.Seed,
		})
	case IndexIMI:
		return imi.Build(ids, vecs, imi.Config{
			P: opts.P, M: opts.M, KeepRaw: opts.KeepRaw, Seed: opts.Seed,
		})
	case IndexHNSW:
		hn := hnsw.New(dim, hnsw.Config{M: opts.M0, EfConstruction: opts.EfConstruction, Seed: opts.Seed})
		for i, id := range ids {
			if err := hn.Add(id, vecs[i]); err != nil {
				return nil, err
			}
		}
		return hn, nil
	default:
		return nil, fmt.Errorf("vectordb: unknown index kind %q", kind)
	}
}

// BuildIndex constructs (or replaces) the collection's index. The
// collection is write-locked for the whole build; concurrent searches
// block until the index is installed.
func (c *Collection) BuildIndex(kind IndexKind, opts IndexOptions) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, err := constructIndex(c.schema.Dim, c.ids, c.data, kind, opts)
	if err != nil {
		return err
	}
	c.index, c.kind, c.options = ix, kind, opts
	return nil
}

// BuildIndexSealed constructs the index off-lock: the vector set is
// snapshotted under a brief read lock, the index is built with no lock
// held (searches keep answering from the exact-scan fallback throughout),
// and the finished index is installed under a brief write lock. The caller
// must guarantee no concurrent Insert — the contract a sealed, immutable
// segment satisfies by construction.
func (c *Collection) BuildIndexSealed(kind IndexKind, opts IndexOptions) error {
	c.mu.RLock()
	ids, data := c.ids, c.data
	c.mu.RUnlock()
	ix, err := constructIndex(c.schema.Dim, ids, data, kind, opts)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.index, c.kind, c.options = ix, kind, opts
	c.mu.Unlock()
	return nil
}

// IndexKind returns the built index kind, or "" when unindexed.
func (c *Collection) IndexKind() IndexKind {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.kind
}

// Search returns the k most similar stored vectors. Unindexed collections
// fall back to an exact scan over raw vectors.
func (c *Collection) Search(q mat.Vec, k int, p ann.Params) ([]mat.Scored, error) {
	if len(q) != c.schema.Dim {
		return nil, fmt.Errorf("%w: query %d != %d", ErrDimension, len(q), c.schema.Dim)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.index != nil {
		return c.index.Search(q, k, p), nil
	}
	if k <= 0 || len(c.ids) == 0 {
		return nil, nil
	}
	// Unindexed fallback: the same blocked-kernel full scan the flat index
	// runs, over the collection's contiguous raw storage.
	top := mat.GetTopK(k)
	defer mat.PutTopK(top)
	scratch := mat.GetScratch(mat.ScanBlock)
	defer scratch.Release()
	dim := c.schema.Dim
	for start := 0; start < len(c.ids); start += mat.ScanBlock {
		end := start + mat.ScanBlock
		if end > len(c.ids) {
			end = len(c.ids)
		}
		scores := mat.ScoreRows(scratch.Buf[:end-start], q, c.data[start*dim:end*dim], dim)
		for i, s := range scores {
			top.Push(c.ids[start+i], s)
		}
	}
	return top.Sorted(), nil
}

// batchSearcher is the optional index fast path SearchBatch dispatches to:
// an index that can answer many queries in one cache-blocked sweep over its
// storage (flat implements it via mat.ScoreRowsBatch). Results must be
// bit-identical to per-query Search calls.
type batchSearcher interface {
	SearchBatch(qs []mat.Vec, k int, p ann.Params) [][]mat.Scored
}

// SearchBatch answers many queries under one set of search parameters,
// results aligned with qs. When the built index implements batchSearcher the
// whole batch shares one memory sweep; otherwise (other index kinds, or the
// unindexed fallback) each query runs through the same code path Search
// uses. Either way the results are bit-identical to per-query Search calls.
func (c *Collection) SearchBatch(qs []mat.Vec, k int, p ann.Params) ([][]mat.Scored, error) {
	for i, q := range qs {
		if len(q) != c.schema.Dim {
			return nil, fmt.Errorf("%w: batch query %d: %d != %d", ErrDimension, i, len(q), c.schema.Dim)
		}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if bs, ok := c.index.(batchSearcher); ok {
		return bs.SearchBatch(qs, k, p), nil
	}
	out := make([][]mat.Scored, len(qs))
	if c.index != nil {
		for i, q := range qs {
			out[i] = c.index.Search(q, k, p)
		}
		return out, nil
	}
	if k <= 0 || len(c.ids) == 0 {
		return out, nil
	}
	// Unindexed fallback: the blocked full scan of Search, but every
	// ScanBlock chunk of rows is scored by ALL queries while cache-resident
	// (mat.ScoreRowsBatch) — one memory pass instead of len(qs).
	tops := make([]*mat.TopK, len(qs))
	for i := range qs {
		tops[i] = mat.GetTopK(k)
	}
	defer func() {
		for _, t := range tops {
			mat.PutTopK(t)
		}
	}()
	scratch := mat.GetScratch(len(qs) * mat.ScanBlock)
	defer scratch.Release()
	dim := c.schema.Dim
	dsts := make([][]float32, len(qs))
	for start := 0; start < len(c.ids); start += mat.ScanBlock {
		end := start + mat.ScanBlock
		if end > len(c.ids) {
			end = len(c.ids)
		}
		n := end - start
		for j := range dsts {
			off := j * mat.ScanBlock
			dsts[j] = scratch.Buf[off : off+n : off+mat.ScanBlock]
		}
		mat.ScoreRowsBatch(dsts, qs, c.data[start*dim:end*dim], dim)
		for j := range qs {
			for i, s := range dsts[j] {
				tops[j].Push(c.ids[start+i], s)
			}
		}
	}
	for j := range qs {
		out[j] = tops[j].Sorted()
	}
	return out, nil
}

// Stats summarises a collection for the storage experiments.
type Stats struct {
	Name      string
	Count     int
	Dim       int
	IndexKind IndexKind
	// RawBytes is the raw vector storage footprint.
	RawBytes int64
	// IndexBytes is the index's resident estimate.
	IndexBytes int64
}

// Stats returns current statistics.
func (c *Collection) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{
		Name:      c.name,
		Count:     len(c.ids),
		Dim:       c.schema.Dim,
		IndexKind: c.kind,
		RawBytes:  int64(len(c.data))*4 + int64(len(c.ids))*8,
	}
	if c.index != nil {
		s.IndexBytes = c.index.Memory()
	}
	return s
}
