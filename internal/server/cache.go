package server

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// cacheKey canonicalises (query text, resolved plan) into the cache key.
// Plan.Key covers every field that changes the answer and excludes the
// provenance fields (kind, predicted recall), so a pinned plan and an
// adaptive plan that resolved to the same knobs share one entry; request
// Workers never participates (results are identical at every width, by the
// engine's determinism contract).
func cacheKey(text string, plan core.Plan) string {
	return text + "\x00" + plan.Key()
}

// resultCache is a bounded LRU over query results, stamped with the
// backend's ingest generation: an entry computed under an older generation
// is stale — new footage may have changed the answer — and is dropped on
// lookup, which is how ingest invalidates the cache without a callback.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
	// coalesced counts misses that shared another in-flight computation
	// of the same key instead of recomputing (single-flight waiters).
	coalesced uint64
}

type cacheEntry struct {
	key string
	gen uint64
	res *core.Result
}

// newResultCache builds a cache holding at most capacity entries;
// capacity <= 0 disables caching entirely.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result for key if present and computed under the
// current generation. Results are shared pointers; callers must not mutate.
func (c *resultCache) get(key string, gen uint64) (*core.Result, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		// Stale: the corpus changed since this answer was computed.
		c.ll.Remove(el)
		delete(c.items, key)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.res, true
}

// put stores a result computed under gen, evicting the least-recently-used
// entry when full.
func (c *resultCache) put(key string, gen uint64, res *core.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen = gen
		ent.res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// noteCoalesced records one miss that waited on another caller's identical
// in-flight query instead of recomputing. Counted even when caching is
// disabled — coalescing works off the in-flight table, not the LRU.
func (c *resultCache) noteCoalesced() {
	c.mu.Lock()
	c.coalesced++
	c.mu.Unlock()
}

// CacheStats is a counters snapshot for /stats and /metrics.
type CacheStats struct {
	Capacity int    `json:"capacity"`
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Evicted  uint64 `json:"evicted"`
	// Coalesced counts misses served by sharing another request's
	// in-flight computation (single-flight waiters).
	Coalesced uint64 `json:"coalesced"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.cap,
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evicted:   c.evicted,
		Coalesced: c.coalesced,
	}
}
