package server

// Live-ingest endpoint tests: POST /ingest accepts one video.Video as JSON
// on a streaming backend, advances the ingest generation (invalidating
// cached answers), rejects malformed payloads with 400s naming the field,
// maps duplicate corpus IDs to 409, and surfaces the streaming segment
// breakdown through /stats and /metrics.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
	"repro/internal/video"
)

// bootStreaming is boot with a segmented continuous-ingest engine: small
// seal threshold so background maintenance actually runs during the test.
func bootStreaming(t *testing.T, cacheSize int) (*shard.Engine, *datasets.Dataset, *httptest.Server) {
	t.Helper()
	ds := datasets.ActivityNetQA(datasets.Config{Seed: 7, Scale: 0.04})
	eng, err := shard.New(2, core.Config{Seed: 7, Streaming: true, SegmentSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{CacheSize: cacheSize, Shards: eng.Shards()}))
	t.Cleanup(ts.Close)
	return eng, ds, ts
}

// freshVideo returns a video not present in the booted corpus, with its ID
// (and every frame's VideoID) remapped to id.
func freshVideo(t *testing.T, id int) video.Video {
	t.Helper()
	extra := datasets.Bellevue(datasets.Config{Seed: 99, Scale: 0.02})
	v := extra.Videos[0]
	v.ID = id
	for i := range v.Frames {
		v.Frames[i].VideoID = id
	}
	return v
}

func TestIngestEndpoint(t *testing.T) {
	eng, ds, ts := bootStreaming(t, 16)
	text := ds.Queries[0].Text

	// Warm the cache, remember the generation.
	_, _ = postJSON(t, ts.URL+"/query", queryRequest{Query: text})
	genBefore := eng.IngestGen()

	v := freshVideo(t, 4000)
	resp, data := postJSON(t, ts.URL+"/ingest", v)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.VideoID != 4000 || ir.Frames != len(v.Frames) {
		t.Fatalf("ingest response %+v, want video 4000 with %d frames", ir, len(v.Frames))
	}
	if ir.IngestGen <= genBefore {
		t.Fatalf("ingest generation %d did not advance past %d", ir.IngestGen, genBefore)
	}

	// The cached answer predates the ingest: the next lookup must miss.
	_, data = postJSON(t, ts.URL+"/query", queryRequest{Query: text})
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cached {
		t.Fatal("live ingest must invalidate cached answers")
	}

	// /stats reports the segment breakdown: one growing segment per shard.
	sdata := getBody(t, ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(sdata, &st); err != nil {
		t.Fatal(err)
	}
	if st.Segments == nil {
		t.Fatal("/stats must report segments for a streaming backend")
	}
	if st.Segments.Growing != eng.Shards() {
		t.Fatalf("growing segments %d, want one per shard (%d)", st.Segments.Growing, eng.Shards())
	}
	if st.Segments.Seals == 0 {
		t.Fatal("segmented boot ingest must have sealed at least one segment")
	}
	if st.Segments.IngestsTotal != 1 {
		t.Fatalf("ingests_total %d, want 1", st.Segments.IngestsTotal)
	}

	// /metrics renders the same numbers in Prometheus text format.
	metrics := string(getBody(t, ts.URL+"/metrics"))
	for _, want := range []string{
		"lovod_ingest_total 1",
		`lovod_segments{state="sealed"}`,
		`lovod_segments{state="building"}`,
		fmt.Sprintf(`lovod_segments{state="growing"} %d`, eng.Shards()),
		"lovod_seals_total",
		"lovod_compactions_total",
		"lovod_segment_growing_vectors",
		"lovod_segment_sealed_vectors",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestIngestDuplicateConflicts(t *testing.T) {
	_, _, ts := bootStreaming(t, 0)
	v := freshVideo(t, 4100)
	if resp, data := postJSON(t, ts.URL+"/ingest", v); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest status %d: %s", resp.StatusCode, data)
	}
	resp, data := postJSON(t, ts.URL+"/ingest", v)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ingest status %d, want 409: %s", resp.StatusCode, data)
	}
}

func TestIngestMethodAndAvailability(t *testing.T) {
	// GET is not an ingest.
	_, _, ts := bootStreaming(t, 0)
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status %d, want 405", resp.StatusCode)
	}

	// A backend without the Ingester surface answers 501, not a panic.
	fts := httptest.NewServer(New(&fakeBackend{}, Config{}))
	defer fts.Close()
	resp2, data := postJSON(t, fts.URL+"/ingest", freshVideo(t, 1))
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("non-ingester status %d, want 501: %s", resp2.StatusCode, data)
	}
}

func TestIngestValidation(t *testing.T) {
	_, _, ts := bootStreaming(t, 0)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", resp.StatusCode)
	}

	base := freshVideo(t, 4200)
	cases := []struct {
		name   string
		mutate func(v *video.Video)
	}{
		{"negative id", func(v *video.Video) {
			v.ID = -1
			for i := range v.Frames {
				v.Frames[i].VideoID = -1
			}
		}},
		{"id past the packed field", func(v *video.Video) {
			v.ID = core.MaxVideoID + 1
			for i := range v.Frames {
				v.Frames[i].VideoID = core.MaxVideoID + 1
			}
		}},
		{"no frames", func(v *video.Video) { v.Frames = nil }},
		{"frame index out of range", func(v *video.Video) { v.Frames[0].Index = core.MaxFrameIdx + 1 }},
		{"frame video mismatch", func(v *video.Video) { v.Frames[0].VideoID = v.ID + 1 }},
	}
	for _, tc := range cases {
		v := base
		v.Frames = append([]video.Frame(nil), base.Frames...)
		tc.mutate(&v)
		resp, data := postJSON(t, ts.URL+"/ingest", v)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
		}
	}
}

// TestStatsOmitsSegmentsForBatch pins the absence contract: a batch
// deployment must not grow segment fields in /stats or /metrics.
func TestStatsOmitsSegmentsForBatch(t *testing.T) {
	_, _, ts := boot(t, 0)
	if strings.Contains(string(getBody(t, ts.URL+"/stats")), `"segments"`) {
		t.Fatal("/stats must omit segments for a batch backend")
	}
	if strings.Contains(string(getBody(t, ts.URL+"/metrics")), "lovod_segments") {
		t.Fatal("/metrics must omit lovod_segments for a batch backend")
	}
}
