package server

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SpanJSON is one traced span on the wire: the query's span tree, as echoed
// by debug=true responses and /debug/queries entries.
type SpanJSON struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	// StartMs is the span's start offset from the trace root in
	// milliseconds; DurationMs its measured duration.
	StartMs    float64     `json:"start_ms"`
	DurationMs float64     `json:"duration_ms"`
	Children   []*SpanJSON `json:"children,omitempty"`
}

// spanTree converts an exported span slice into its JSON tree; nil when the
// trace recorded nothing.
func spanTree(spans []obs.SpanData) *SpanJSON {
	roots := obs.Tree(spans)
	if len(roots) == 0 {
		return nil
	}
	// A server trace has exactly one root ("query"); defensive wire data
	// with several roots keeps only the first — the rest would be forged.
	return toSpanJSON(roots[0])
}

func toSpanJSON(n *obs.Node) *SpanJSON {
	out := &SpanJSON{
		Name:       n.Name,
		Detail:     n.Detail,
		StartMs:    float64(n.Start.Microseconds()) / 1000,
		DurationMs: float64(n.Dur.Microseconds()) / 1000,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, toSpanJSON(c))
	}
	return out
}

// slowEntry is one retained query trace.
type slowEntry struct {
	At         time.Time `json:"at"`
	Query      string    `json:"query"`
	PlanKind   string    `json:"plan_kind"`
	Cached     bool      `json:"cached"`
	DurationMs float64   `json:"duration_ms"`
	Trace      *SpanJSON `json:"trace,omitempty"`
}

// defaultSlowLogSize is the /debug/queries retention when Config.SlowLogSize
// is zero.
const defaultSlowLogSize = 16

// slowLogWindow bounds how long an entry stays interesting: a morning's
// slow query should not crowd out this minute's incident.
const slowLogWindow = 10 * time.Minute

// slowLog retains the N slowest queries of the recent past. Admission is
// slowest-wins — a new entry evicts the current fastest once full — but
// entries past the recency window expire first, so the log converges on
// "the slowest queries lately" rather than "the slowest queries ever".
type slowLog struct {
	mu      sync.Mutex
	cap     int
	entries []slowEntry
}

// newSlowLog sizes the log: 0 selects the default, negative disables it
// (enabled() false — the server then only traces debug=true requests).
func newSlowLog(size int) *slowLog {
	if size == 0 {
		size = defaultSlowLogSize
	}
	if size < 0 {
		size = 0
	}
	return &slowLog{cap: size}
}

func (l *slowLog) enabled() bool { return l.cap > 0 }

// note offers one finished query to the log.
func (l *slowLog) note(e slowEntry) {
	if l.cap == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expire(e.At)
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	// Full: evict the fastest retained entry if this one is slower.
	fastest := 0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].DurationMs < l.entries[fastest].DurationMs {
			fastest = i
		}
	}
	if e.DurationMs > l.entries[fastest].DurationMs {
		l.entries[fastest] = e
	}
}

// expire drops entries older than the recency window; callers hold l.mu.
func (l *slowLog) expire(now time.Time) {
	kept := l.entries[:0]
	for _, e := range l.entries {
		if now.Sub(e.At) <= slowLogWindow {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = slowEntry{} // release retained traces
	}
	l.entries = kept
}

// snapshot returns the retained entries, slowest first.
func (l *slowLog) snapshot() []slowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expire(time.Now())
	out := make([]slowEntry, len(l.entries))
	copy(out, l.entries)
	sort.Slice(out, func(i, j int) bool { return out[i].DurationMs > out[j].DurationMs })
	return out
}

// debugQueriesResponse is the /debug/queries payload.
type debugQueriesResponse struct {
	Capacity int         `json:"capacity"`
	Queries  []slowEntry `json:"queries"`
}

// allowMethodQuiet is the debug-tier variant of allowMethod: the same
// uniform 405 + Allow contract, but observability traffic never counts into
// the serving error metrics (nor, anywhere on the debug tier, into the
// result cache or latency histogram).
func allowMethodQuiet(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{
			"error": method + " required",
		})
		return false
	}
	return true
}

// handleDebugQueries serves the slow-query inspector: the slowest recent
// traces, slowest first, with each trace's full span tree.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if !allowMethodQuiet(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, debugQueriesResponse{
		Capacity: s.slow.cap,
		Queries:  s.slow.snapshot(),
	})
}

// DebugHandler returns the opt-in debug listener's handler: the slow-query
// inspector plus the standard net/http/pprof surface. Serve it on a
// separate, non-public address (cmd/lovod's -debug-addr) — profiles expose
// internals the query port should not.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	// pprof's handlers answer GET; enforce that uniformly here since the
	// stock handlers accept anything.
	get := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !allowMethodQuiet(w, r, http.MethodGet) {
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("/debug/pprof/", get(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", get(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", get(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", get(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", get(pprof.Trace))
	return mux
}
