package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
)

// fakeBackend is a controllable Backend: Query can be gated to hold a
// request in flight, and both query paths record the rerank width the
// server handed them.
type fakeBackend struct {
	mu           sync.Mutex
	queryCalls   int
	queryWorkers []int
	batchWorkers []int

	entered chan struct{} // receives one token per Query entry, if set
	release chan struct{} // Query blocks until closed, if set
}

func (f *fakeBackend) Query(text string, opts core.QueryOptions) (*core.Result, error) {
	f.mu.Lock()
	f.queryCalls++
	f.queryWorkers = append(f.queryWorkers, opts.Workers)
	f.mu.Unlock()
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.release != nil {
		<-f.release
	}
	return &core.Result{CandidateFrames: 1}, nil
}

func (f *fakeBackend) QueryBatch(texts []string, opts core.QueryOptions, clients int) ([]*core.Result, error) {
	f.mu.Lock()
	f.batchWorkers = append(f.batchWorkers, opts.Workers)
	f.mu.Unlock()
	out := make([]*core.Result, len(texts))
	for i := range out {
		out[i] = &core.Result{}
	}
	return out, nil
}

func (f *fakeBackend) Stats() core.IngestStats { return core.IngestStats{} }
func (f *fakeBackend) Entities() int           { return 1 }
func (f *fakeBackend) Built() bool             { return true }
func (f *fakeBackend) IngestGen() uint64       { return 1 }

// TestBatchNarrowsRerankWidthUnderOverlap pins the fixed guard: while a
// /query holds the serving tier, an overlapping /query/batch must hand the
// backend Workers=1 — before the fix, batches never touched the in-flight
// counter and ran NumCPU-wide grounding pools per query.
func TestBatchNarrowsRerankWidthUnderOverlap(t *testing.T) {
	fb := &fakeBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 0}))
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/query", queryRequest{Query: "a red car"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked query status %d", resp.StatusCode)
		}
	}()
	<-fb.entered // the lone /query is now inside the backend

	resp, _ := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: []string{"a truck", "a person"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	close(fb.release)
	<-done

	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.batchWorkers) != 1 || fb.batchWorkers[0] != 1 {
		t.Fatalf("overlapped batch must pass Workers=1, got %v", fb.batchWorkers)
	}
	// The lone /query arrived first with nothing else in flight: full width.
	if fb.queryWorkers[0] != 0 {
		t.Fatalf("lone query must keep full rerank width, got %d", fb.queryWorkers[0])
	}
}

// TestLoneBatchKeepsFullWidth: a batch with no overlapping request must not
// be narrowed by the server (the backend's own client pool decides).
func TestLoneBatchKeepsFullWidth(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 0}))
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: []string{"a truck", "a person"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.batchWorkers) != 1 || fb.batchWorkers[0] != 0 {
		t.Fatalf("lone batch must pass Workers=0, got %v", fb.batchWorkers)
	}
}

// TestSingleFlightCoalescesDuplicateMisses fires many concurrent identical
// cold queries and checks the backend computed exactly once, every caller
// got an answer, and the coalesced waiters are surfaced in CacheStats.
func TestSingleFlightCoalescesDuplicateMisses(t *testing.T) {
	const clients = 8
	fb := &fakeBackend{entered: make(chan struct{}, clients), release: make(chan struct{})}
	srv := New(fb, Config{CacheSize: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: "a red car"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	<-fb.entered // the leader is inside the backend; everyone else must wait
	// Give the remaining requests a moment to park on the flight (any that
	// arrive after release simply hit the cache — also not a second call).
	time.Sleep(50 * time.Millisecond)
	close(fb.release)
	wg.Wait()

	fb.mu.Lock()
	calls := fb.queryCalls
	fb.mu.Unlock()
	if calls != 1 {
		t.Fatalf("backend computed %d times for %d identical queries, want 1", calls, clients)
	}
	cs := srv.cache.stats()
	if cs.Coalesced+cs.Hits != clients-1 {
		t.Fatalf("coalesced (%d) + hits (%d) must cover the %d non-leaders", cs.Coalesced, cs.Hits, clients-1)
	}
	if cs.Coalesced == 0 {
		t.Fatal("no waiter coalesced — the herd recomputed or never overlapped")
	}
}

// TestFlightPanicDoesNotWedgeKey: a leader whose computation panics must
// not leave the flight entry behind — waiters get an error, and the next
// request for the same key computes fresh instead of hanging forever.
func TestFlightPanicDoesNotWedgeKey(t *testing.T) {
	g := newFlightGroup()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate to the leader")
			}
		}()
		_, _, _ = g.do("k", func() (*core.Result, error) { panic("backend exploded") })
	}()
	done := make(chan error, 1)
	go func() {
		_, coalesced, err := g.do("k", func() (*core.Result, error) { return &core.Result{}, nil })
		if coalesced {
			err = fmt.Errorf("post-panic call wrongly coalesced onto the dead leader")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged: request after a panicked leader never completed")
	}
}

// TestUniformMethodGuards: every endpoint must reject the wrong method with
// 405 — /healthz and /metrics historically accepted anything.
func TestUniformMethodGuards(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{}))
	defer ts.Close()
	cases := []struct {
		method, path string
	}{
		{http.MethodGet, "/query"},
		{http.MethodDelete, "/query"},
		{http.MethodGet, "/query/batch"},
		{http.MethodPost, "/stats"},
		{http.MethodPost, "/healthz"},
		{http.MethodDelete, "/healthz"},
		{http.MethodPost, "/metrics"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d want 405", c.method, c.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.path)
		}
	}
}

// TestStatsAndMetricsReportReplicas mounts a replicated engine and checks
// the serving tier surfaces per-group replica health and reads.
func TestStatsAndMetricsReportReplicas(t *testing.T) {
	ds := datasets.ActivityNetQA(datasets.Config{Seed: 7, Scale: 0.04})
	eng, err := shard.NewReplicated(2, 2, core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	eng.FailReplica(1, 0)
	ts := httptest.NewServer(New(eng, Config{CacheSize: 8, Shards: eng.Shards()}))
	defer ts.Close()

	_, _ = postJSON(t, ts.URL+"/query", queryRequest{Query: ds.Queries[0].Text})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Replicas != 2 || len(st.ReplicaGroups) != 2 || len(st.ReplicaGroups[0]) != 2 {
		t.Fatalf("replica stats malformed: replicas=%d groups=%+v", st.Replicas, st.ReplicaGroups)
	}
	if st.ReplicaGroups[1][0].Healthy || !st.ReplicaGroups[1][1].Healthy {
		t.Fatalf("replica health not surfaced: %+v", st.ReplicaGroups[1])
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`lovod_replica_healthy{group="1",replica="0"} 0`,
		`lovod_replica_healthy{group="0",replica="0"} 1`,
		`lovod_replica_reads_total{group="0",replica="0"}`,
		"lovod_cache_coalesced_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentQueryAndBatchDuringIngestReplicated is the serving-tier
// acceptance race test: concurrent /query and /query/batch traffic over a
// replicated engine while ingest and a rebuild proceed, plus a replica
// kill/revive — run with -race.
func TestConcurrentQueryAndBatchDuringIngestReplicated(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 13, Scale: 0.04})
	eng, err := shard.NewReplicated(2, 2, core.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{CacheSize: 32, Shards: eng.Shards()}))
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := eng.Ingest(&ds.Videos[i]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := eng.BuildIndex(); err != nil {
			t.Error(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.FailReplica(1, 1)
		eng.ReviveReplica(1, 1)
	}()
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				text := ds.Queries[(c+i)%len(ds.Queries)].Text
				resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: text})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				texts := []string{
					ds.Queries[(c+i)%len(ds.Queries)].Text,
					ds.Queries[(c+i+1)%len(ds.Queries)].Text,
				}
				resp, data := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: texts})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.QueriesTotal != 8 || st.BatchTotal != 12 {
		t.Fatalf("queries_total = %d (want 8), batch_total = %d (want 12)", st.QueriesTotal, st.BatchTotal)
	}
	if st.Ingest.Videos != len(ds.Videos) {
		t.Fatalf("ingested %d videos want %d", st.Ingest.Videos, len(ds.Videos))
	}
}
