package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
)

// fakeBackend is a controllable Backend: QueryPlanned can be gated to hold
// a request in flight, and both query paths record the rerank width the
// server handed them.
type fakeBackend struct {
	mu           sync.Mutex
	queryCalls   int
	queryWorkers []int
	batchWorkers []int
	planOpts     []core.QueryOptions

	entered chan struct{} // receives one token per QueryPlanned entry, if set
	release chan struct{} // QueryPlanned blocks until closed, if set

	notBuilt bool  // Built() reports false, so queries answer 503
	queryErr error // QueryPlanned fails with this, if set
}

func (f *fakeBackend) PlanQueryCtx(ctx context.Context, text string, opts core.QueryOptions) (core.Plan, error) {
	if err := core.ValidateMinRecall(opts.MinRecall); err != nil {
		return core.Plan{}, err
	}
	f.mu.Lock()
	f.planOpts = append(f.planOpts, opts)
	f.mu.Unlock()
	return core.Config{}.Resolved().FixedPlan(opts), nil
}

func (f *fakeBackend) QueryPlanned(ctx context.Context, text string, plan core.Plan, workers int) (*core.Result, error) {
	f.mu.Lock()
	f.queryCalls++
	f.queryWorkers = append(f.queryWorkers, workers)
	f.mu.Unlock()
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.release != nil {
		<-f.release
	}
	if f.queryErr != nil {
		return nil, f.queryErr
	}
	return &core.Result{CandidateFrames: 1}, nil
}

func (f *fakeBackend) QueryBatchPlanned(ctx context.Context, texts []string, plans []core.Plan, workers, clients int) ([]*core.Result, error) {
	f.mu.Lock()
	f.batchWorkers = append(f.batchWorkers, workers)
	f.mu.Unlock()
	out := make([]*core.Result, len(texts))
	for i := range out {
		out[i] = &core.Result{}
	}
	return out, nil
}

func (f *fakeBackend) Stats() core.IngestStats { return core.IngestStats{} }
func (f *fakeBackend) Entities() int           { return 1 }
func (f *fakeBackend) Built() bool             { return !f.notBuilt }
func (f *fakeBackend) IngestGen() uint64       { return 1 }

// TestOptionValidationRejectsBadKnobs pins the input-validation hardening:
// negative or absurd integer knobs and a min_recall outside (0, 1] must
// answer 400 with an error naming the offending field, on both query
// endpoints, without the backend ever being consulted.
func TestOptionValidationRejectsBadKnobs(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 4}))
	defer ts.Close()
	cases := []struct {
		name  string
		opts  QueryOptionsJSON
		field string
	}{
		{"negative fast_k", QueryOptionsJSON{FastK: -1}, "fast_k"},
		{"absurd fast_k", QueryOptionsJSON{FastK: maxKnob + 1}, "fast_k"},
		{"negative top_n", QueryOptionsJSON{TopN: -3}, "top_n"},
		{"absurd top_n", QueryOptionsJSON{TopN: maxKnob + 1}, "top_n"},
		{"negative rerank_frames", QueryOptionsJSON{RerankFrames: -1}, "rerank_frames"},
		{"absurd rerank_frames", QueryOptionsJSON{RerankFrames: maxKnob + 1}, "rerank_frames"},
		{"negative min_recall", QueryOptionsJSON{MinRecall: -0.5}, "min_recall"},
		{"min_recall above one", QueryOptionsJSON{MinRecall: 1.01}, "min_recall"},
	}
	for _, c := range cases {
		for _, path := range []string{"/query", "/query/batch"} {
			var resp *http.Response
			var data []byte
			if path == "/query" {
				resp, data = postJSON(t, ts.URL+path, queryRequest{Query: "a red car", Options: c.opts})
			} else {
				resp, data = postJSON(t, ts.URL+path, batchRequest{Queries: []string{"a red car"}, Options: c.opts})
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d want 400: %s", c.name, path, resp.StatusCode, data)
				continue
			}
			var e map[string]string
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("%s %s: non-JSON error body %q", c.name, path, data)
			}
			if !strings.Contains(e["error"], c.field) {
				t.Errorf("%s %s: error %q must name field %s", c.name, path, e["error"], c.field)
			}
		}
	}
	fb.mu.Lock()
	calls := fb.queryCalls
	fb.mu.Unlock()
	if calls != 0 {
		t.Fatalf("invalid options must never reach the backend, got %d calls", calls)
	}
	// The boundary values are legal: knobs at the cap, min_recall exactly 1.
	resp, data := postJSON(t, ts.URL+"/query",
		queryRequest{Query: "a red car", Options: QueryOptionsJSON{FastK: maxKnob, MinRecall: 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("boundary options must pass, got %d: %s", resp.StatusCode, data)
	}
}

// TestDefaultMinRecallApplied: a server booted with a default accuracy
// bound applies it to requests that set no min_recall of their own, and a
// request's explicit bound always wins.
func TestDefaultMinRecallApplied(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{DefaultMinRecall: 0.9}))
	defer ts.Close()
	if resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: "a red car"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("unbounded query: %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/query",
		queryRequest{Query: "a red car", Options: QueryOptionsJSON{MinRecall: 0.5}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("bounded query: %d: %s", resp.StatusCode, data)
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.planOpts) != 2 {
		t.Fatalf("planned %d queries, want 2", len(fb.planOpts))
	}
	if fb.planOpts[0].MinRecall != 0.9 {
		t.Errorf("server default not applied: planned with MinRecall %v, want 0.9", fb.planOpts[0].MinRecall)
	}
	if fb.planOpts[1].MinRecall != 0.5 {
		t.Errorf("request bound must override the default: got %v, want 0.5", fb.planOpts[1].MinRecall)
	}
}

// TestPlanReporting: every answer echoes the resolved plan, /stats counts
// chosen plans by kind, and /metrics exports lovod_plan_chosen_total.
func TestPlanReporting(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 4}))
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: "a red car"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Plan.Kind != string(core.PlanFixed) || qr.Plan.FastK <= 0 {
		t.Fatalf("response must echo the resolved plan, got %+v", qr.Plan)
	}
	_, _ = postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: []string{"a truck"}})

	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.Plans[string(core.PlanFixed)] != 2 {
		t.Fatalf("/stats must count both chosen plans by kind, got %v", st.Plans)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(raw), `lovod_plan_chosen_total{kind="fixed"} 2`) {
		t.Fatalf("metrics missing plan counter:\n%s", raw)
	}
}

// TestBatchNarrowsRerankWidthUnderOverlap pins the fixed guard: while a
// /query holds the serving tier, an overlapping /query/batch must hand the
// backend Workers=1 — before the fix, batches never touched the in-flight
// counter and ran NumCPU-wide grounding pools per query.
func TestBatchNarrowsRerankWidthUnderOverlap(t *testing.T) {
	fb := &fakeBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 0}))
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/query", queryRequest{Query: "a red car"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked query status %d", resp.StatusCode)
		}
	}()
	<-fb.entered // the lone /query is now inside the backend

	resp, _ := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: []string{"a truck", "a person"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	close(fb.release)
	<-done

	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.batchWorkers) != 1 || fb.batchWorkers[0] != 1 {
		t.Fatalf("overlapped batch must pass Workers=1, got %v", fb.batchWorkers)
	}
	// The lone /query arrived first with nothing else in flight: full width.
	if fb.queryWorkers[0] != 0 {
		t.Fatalf("lone query must keep full rerank width, got %d", fb.queryWorkers[0])
	}
}

// TestLoneBatchKeepsFullWidth: a batch with no overlapping request must not
// be narrowed by the server (the backend's own client pool decides).
func TestLoneBatchKeepsFullWidth(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 0}))
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: []string{"a truck", "a person"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.batchWorkers) != 1 || fb.batchWorkers[0] != 0 {
		t.Fatalf("lone batch must pass Workers=0, got %v", fb.batchWorkers)
	}
}

// TestSingleFlightCoalescesDuplicateMisses fires many concurrent identical
// cold queries and checks the backend computed exactly once, every caller
// got an answer, and the coalesced waiters are surfaced in CacheStats.
func TestSingleFlightCoalescesDuplicateMisses(t *testing.T) {
	const clients = 8
	fb := &fakeBackend{entered: make(chan struct{}, clients), release: make(chan struct{})}
	srv := New(fb, Config{CacheSize: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: "a red car"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	<-fb.entered // the leader is inside the backend; everyone else must wait
	// Give the remaining requests a moment to park on the flight (any that
	// arrive after release simply hit the cache — also not a second call).
	time.Sleep(50 * time.Millisecond)
	close(fb.release)
	wg.Wait()

	fb.mu.Lock()
	calls := fb.queryCalls
	fb.mu.Unlock()
	if calls != 1 {
		t.Fatalf("backend computed %d times for %d identical queries, want 1", calls, clients)
	}
	cs := srv.cache.stats()
	if cs.Coalesced+cs.Hits != clients-1 {
		t.Fatalf("coalesced (%d) + hits (%d) must cover the %d non-leaders", cs.Coalesced, cs.Hits, clients-1)
	}
	if cs.Coalesced == 0 {
		t.Fatal("no waiter coalesced — the herd recomputed or never overlapped")
	}
}

// TestFlightPanicDoesNotWedgeKey: a leader whose computation panics must
// not leave the flight entry behind — waiters get an error, and the next
// request for the same key computes fresh instead of hanging forever.
func TestFlightPanicDoesNotWedgeKey(t *testing.T) {
	g := newFlightGroup()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate to the leader")
			}
		}()
		_, _, _ = g.do("k", func() (*core.Result, error) { panic("backend exploded") })
	}()
	done := make(chan error, 1)
	go func() {
		_, coalesced, err := g.do("k", func() (*core.Result, error) { return &core.Result{}, nil })
		if coalesced {
			err = fmt.Errorf("post-panic call wrongly coalesced onto the dead leader")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged: request after a panicked leader never completed")
	}
}

// TestUniformMethodGuards: every endpoint must reject the wrong method with
// 405 — /healthz and /metrics historically accepted anything.
func TestUniformMethodGuards(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{}))
	defer ts.Close()
	cases := []struct {
		method, path string
	}{
		{http.MethodGet, "/query"},
		{http.MethodDelete, "/query"},
		{http.MethodGet, "/query/batch"},
		{http.MethodPost, "/stats"},
		{http.MethodPost, "/healthz"},
		{http.MethodDelete, "/healthz"},
		{http.MethodPost, "/metrics"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d want 405", c.method, c.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.path)
		}
	}
}

// TestStatsAndMetricsReportReplicas mounts a replicated engine and checks
// the serving tier surfaces per-group replica health and reads.
func TestStatsAndMetricsReportReplicas(t *testing.T) {
	ds := datasets.ActivityNetQA(datasets.Config{Seed: 7, Scale: 0.04})
	eng, err := shard.NewReplicated(2, 2, core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	eng.FailReplica(1, 0)
	ts := httptest.NewServer(New(eng, Config{CacheSize: 8, Shards: eng.Shards()}))
	defer ts.Close()

	_, _ = postJSON(t, ts.URL+"/query", queryRequest{Query: ds.Queries[0].Text})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Replicas != 2 || len(st.ReplicaGroups) != 2 || len(st.ReplicaGroups[0]) != 2 {
		t.Fatalf("replica stats malformed: replicas=%d groups=%+v", st.Replicas, st.ReplicaGroups)
	}
	if st.ReplicaGroups[1][0].Healthy || !st.ReplicaGroups[1][1].Healthy {
		t.Fatalf("replica health not surfaced: %+v", st.ReplicaGroups[1])
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`lovod_replica_healthy{group="1",replica="0"} 0`,
		`lovod_replica_healthy{group="0",replica="0"} 1`,
		`lovod_replica_reads_total{group="0",replica="0"}`,
		"lovod_cache_coalesced_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentQueryAndBatchDuringIngestReplicated is the serving-tier
// acceptance race test: concurrent /query and /query/batch traffic over a
// replicated engine while ingest and a rebuild proceed, plus a replica
// kill/revive — run with -race.
func TestConcurrentQueryAndBatchDuringIngestReplicated(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 13, Scale: 0.04})
	eng, err := shard.NewReplicated(2, 2, core.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{CacheSize: 32, Shards: eng.Shards()}))
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := eng.Ingest(&ds.Videos[i]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := eng.BuildIndex(); err != nil {
			t.Error(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.FailReplica(1, 1)
		eng.ReviveReplica(1, 1)
	}()
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				text := ds.Queries[(c+i)%len(ds.Queries)].Text
				resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: text})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				texts := []string{
					ds.Queries[(c+i)%len(ds.Queries)].Text,
					ds.Queries[(c+i+1)%len(ds.Queries)].Text,
				}
				resp, data := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: texts})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.QueriesTotal != 8 || st.BatchTotal != 12 {
		t.Fatalf("queries_total = %d (want 8), batch_total = %d (want 12)", st.QueriesTotal, st.BatchTotal)
	}
	if st.Ingest.Videos != len(ds.Videos) {
		t.Fatalf("ingested %d videos want %d", st.Ingest.Videos, len(ds.Videos))
	}
}
