package server

// Serving-tier observability pins: the debug=true trace echo, the
// /debug/queries slow-query inspector (with its method enforcement and its
// exclusion from the serving metrics and cache), the per-stage latency
// histograms, the per-kind error counters, and the pprof debug handler.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postQuery(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDebugEchoesTrace pins the debug=true knob: the response carries the
// query's span tree — rooted at "query", with the serving tier's plan and
// cache spans — while a plain request carries none.
func TestDebugEchoesTrace(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 4}))
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, `{"query": "a red car", "debug": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("debug=true response has no trace")
	}
	if qr.Trace.Name != "query" {
		t.Fatalf("trace root = %q, want \"query\"", qr.Trace.Name)
	}
	names := map[string]bool{}
	for _, c := range qr.Trace.Children {
		names[c.Name] = true
	}
	if !names["plan"] || !names["cache"] {
		t.Fatalf("trace lacks serving-tier spans: children %v", qr.Trace.Children)
	}

	_, body = postQuery(t, ts.URL, `{"query": "a red car"}`)
	var plain QueryResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("undebugged response echoed a trace")
	}
}

// TestDebugQueriesInspector pins the slow log: served queries appear
// slowest-first with their traces, the endpoint enforces GET with 405 +
// Allow, and none of it touches the serving metrics, latency histogram, or
// result cache.
func TestDebugQueriesInspector(t *testing.T) {
	fb := &fakeBackend{}
	srv := New(fb, Config{CacheSize: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, q := range []string{"a", "b", "c"} {
		resp, body := postQuery(t, ts.URL, fmt.Sprintf(`{"query": %q}`, q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", q, resp.StatusCode, body)
		}
	}

	errsBefore := srv.metrics.errors.Load()
	latBefore := srv.metrics.latency.count
	cacheBefore := srv.cache.stats()

	var dq debugQueriesResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/debug/queries"), &dq); err != nil {
		t.Fatal(err)
	}
	if dq.Capacity != defaultSlowLogSize {
		t.Fatalf("capacity = %d, want %d", dq.Capacity, defaultSlowLogSize)
	}
	if len(dq.Queries) != 3 {
		t.Fatalf("slow log holds %d entries, want 3", len(dq.Queries))
	}
	for i, e := range dq.Queries {
		if e.Trace == nil || e.Trace.Name != "query" {
			t.Fatalf("entry %d has no trace: %+v", i, e)
		}
		if e.PlanKind == "" {
			t.Fatalf("entry %d has no plan kind", i)
		}
		if i > 0 && e.DurationMs > dq.Queries[i-1].DurationMs {
			t.Fatalf("slow log not sorted slowest-first: %v then %v",
				dq.Queries[i-1].DurationMs, e.DurationMs)
		}
	}

	// Method enforcement, debug-tier flavor: 405 + Allow, but no error
	// counted — observability probes must not pollute serving metrics.
	resp, err := http.Post(ts.URL+"/debug/queries", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/queries: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow = %q, want GET", allow)
	}

	if got := srv.metrics.errors.Load(); got != errsBefore {
		t.Fatalf("debug traffic counted %d errors", got-errsBefore)
	}
	if got := srv.metrics.latency.count; got != latBefore {
		t.Fatalf("debug traffic observed into the latency histogram (%d -> %d)", latBefore, got)
	}
	if got := srv.cache.stats(); got != cacheBefore {
		t.Fatalf("debug traffic touched the result cache: %+v -> %+v", cacheBefore, got)
	}
}

// TestSlowLogDisabled pins SlowLogSize < 0: no tracing for plain requests,
// an empty inspector, but debug=true still traces its own request.
func TestSlowLogDisabled(t *testing.T) {
	fb := &fakeBackend{}
	srv := New(fb, Config{CacheSize: 4, SlowLogSize: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postQuery(t, ts.URL, `{"query": "plain"}`)
	var dq debugQueriesResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/debug/queries"), &dq); err != nil {
		t.Fatal(err)
	}
	if len(dq.Queries) != 0 {
		t.Fatalf("disabled slow log retained %d entries", len(dq.Queries))
	}
	_, body := postQuery(t, ts.URL, `{"query": "debugged", "debug": true}`)
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("debug=true must trace even with the slow log disabled")
	}
}

// TestStageMetrics pins lovod_stage_seconds: plan and cache record on every
// query, stage1 and rerank only on executions (the cache hit adds none).
func TestStageMetrics(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 4}))
	defer ts.Close()

	postQuery(t, ts.URL, `{"query": "a red car"}`) // miss: executes
	postQuery(t, ts.URL, `{"query": "a red car"}`) // hit: served from cache
	metrics := string(getBody(t, ts.URL+"/metrics"))

	for _, want := range []string{
		`lovod_stage_seconds_count{stage="plan"} 2`,
		`lovod_stage_seconds_count{stage="cache"} 2`,
		`lovod_stage_seconds_count{stage="stage1"} 1`,
		`lovod_stage_seconds_count{stage="rerank"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestErrorKindCounters pins lovod_query_errors_total{kind}: every kind is
// present from the first scrape, and validation / not-ready / internal
// failures land under the right label.
func TestErrorKindCounters(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Config{CacheSize: 4}))
	defer ts.Close()

	metrics := string(getBody(t, ts.URL+"/metrics"))
	for _, kind := range errorKinds {
		if !strings.Contains(metrics, fmt.Sprintf("lovod_query_errors_total{kind=%q} 0", kind)) {
			t.Errorf("fresh /metrics lacks zero-valued kind %q", kind)
		}
	}

	postQuery(t, ts.URL, `{"query": ""}`)                             // validation
	postQuery(t, ts.URL, `{"query": "x", "options": {"fast_k": -1}}`) // validation
	fb.notBuilt = true
	postQuery(t, ts.URL, `{"query": "x"}`) // not_ready
	fb.notBuilt = false
	fb.queryErr = errors.New("disk on fire")
	postQuery(t, ts.URL, `{"query": "uncached"}`) // internal
	fb.queryErr = nil

	metrics = string(getBody(t, ts.URL+"/metrics"))
	for _, want := range []string{
		`lovod_query_errors_total{kind="validation"} 2`,
		`lovod_query_errors_total{kind="not_ready"} 1`,
		`lovod_query_errors_total{kind="internal"} 1`,
		`lovod_query_errors_total{kind="backend_down"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q\n%s", want, metrics)
		}
	}
}

// TestDebugHandlerPprof pins the opt-in debug listener: /debug/queries and
// the pprof surface answer GET, reject other methods with 405 + Allow, and
// pprof actually serves a profile.
func TestDebugHandlerPprof(t *testing.T) {
	fb := &fakeBackend{}
	srv := New(fb, Config{CacheSize: 4})
	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/queries", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		pr, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
		if pr.StatusCode != http.StatusMethodNotAllowed || pr.Header.Get("Allow") != http.MethodGet {
			t.Errorf("POST %s: status %d Allow %q, want 405 GET", path, pr.StatusCode, pr.Header.Get("Allow"))
		}
	}
}
