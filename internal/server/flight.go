package server

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// flightGroup coalesces concurrent duplicate work: while one caller (the
// leader) computes the value for a key, every other caller of the same key
// parks and shares the leader's result instead of recomputing it — the
// classic single-flight guard against a thundering herd of identical cache
// misses.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// errFlightAborted is what waiters see when the leader's computation
// panicked instead of returning: an error, not a nil result — and never a
// hang.
var errFlightAborted = errors.New("server: coalesced query aborted: leader panicked")

// do runs fn once per key at a time: the first caller executes it, later
// callers with the same key wait and share the outcome. The returned bool
// reports whether this caller coalesced onto another's call. fn must leave
// the result visible to late arrivals (e.g. by writing the cache) before
// returning, because the flight entry is removed once fn completes.
func (g *flightGroup) do(key string, fn func() (*core.Result, error)) (*core.Result, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.res, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The cleanup must run even if fn panics (the leader's HTTP handler
	// goroutine is recovered per-connection by net/http): a flight entry
	// left behind would wedge its key forever, parking every future
	// identical request on a channel nobody will close.
	completed := false
	defer func() {
		if !completed {
			c.err = errFlightAborted
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.res, c.err = fn()
	completed = true
	return c.res, false, c.err
}

// flightKey scopes a cache key to an ingest generation: waiters must only
// share a result computed against the corpus they queried.
func flightKey(key string, gen uint64) string {
	return fmt.Sprintf("%d\x00%s", gen, key)
}
