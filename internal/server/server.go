// Package server is LOVO's network serving tier: a net/http JSON API over a
// query backend — the sharded scatter-gather engine or a single core.System
// — fronted by a bounded LRU query-result cache and text-format metrics.
//
// Endpoints:
//
//	POST /query          {"query": "...", "options": {...}} -> ranked objects
//	POST /query/batch    {"queries": [...], "options": {...}} -> per-query results
//	POST /ingest         one video.Video as JSON -> live ingest (streaming fleets)
//	GET  /stats          ingest, cache, replica and latency statistics as JSON
//	GET  /healthz        liveness (always 200 once listening; reports built)
//	GET  /metrics        Prometheus text-format counters and latency histograms
//	GET  /debug/queries  the slowest recent query traces as JSON (see debug.go)
//
// Every endpoint enforces its method (405 otherwise). Concurrent identical
// cache misses coalesce onto one backend call, and overlapping /query or
// /query/batch requests narrow each query's rerank pool to one worker so
// concurrent traffic never oversubscribes the cores.
//
// Every query is planned before it executes: the backend resolves the
// request options into an explicit core.Plan (fixed, pinned, or chosen by
// the accuracy-bounded planner when "min_recall" is set), the cache keys on
// (query text, resolved plan), and the response echoes the plan that ran.
// Each entry is stamped with the backend's ingest generation, so any ingest
// or index build anywhere in the engine invalidates stale answers on their
// next lookup.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// Backend answers queries for the server: both *core.System and
// *shard.Engine satisfy it. The server always queries in two steps — plan,
// then execute — so it can key the result cache on the resolved plan and
// report which plans the backend is choosing. The query contexts carry the
// request's tracing recorder (see internal/obs); tracing never changes an
// answer.
type Backend interface {
	PlanQueryCtx(ctx context.Context, text string, opts core.QueryOptions) (core.Plan, error)
	QueryPlanned(ctx context.Context, text string, plan core.Plan, workers int) (*core.Result, error)
	QueryBatchPlanned(ctx context.Context, texts []string, plans []core.Plan, workers, clients int) ([]*core.Result, error)
	Stats() core.IngestStats
	Entities() int
	Built() bool
	IngestGen() uint64
}

// RecallReporter is the optional backend surface of a planning backend
// (*core.System and *shard.Engine both satisfy it); when present, /stats
// reports the most recent recall measured by the planner's validation loop.
type RecallReporter interface {
	LastMeasuredRecall() float64
}

// ReplicaReporter is the optional backend surface of a replicated engine
// (*shard.Engine satisfies it); when present, /stats and /metrics report
// per-group replica health and read counts.
type ReplicaReporter interface {
	Replicas() int
	ReplicaStats() [][]shard.ReplicaStat
}

// BackendReporter is the optional backend surface of a distributed engine
// (*shard.Engine satisfies it); when present, /healthz, /stats and /metrics
// report per-shard backend health — so a killed remote worker flips
// /healthz to "degraded" without waiting for a query to trip over it.
type BackendReporter interface {
	BackendStats() []shard.BackendStat
}

// Ingester is the optional backend surface of a live-ingest deployment
// (*core.System and *shard.Engine both satisfy it); when present, POST
// /ingest accepts footage while the server keeps answering queries.
type Ingester interface {
	Ingest(v *video.Video) error
}

// SegmentReporter is the optional backend surface of a streaming deployment
// (*core.System and *shard.Engine both satisfy it); when the reported stats
// carry Streaming=true, /stats and /metrics surface the segment breakdown —
// growing/building/sealed counts and the seal/compaction totals that show
// background maintenance making progress.
type SegmentReporter interface {
	SegmentStats() (vectordb.SegmentStats, bool)
}

// Config tunes the serving tier.
type Config struct {
	// CacheSize bounds the LRU query-result cache in entries; 0 disables
	// caching.
	CacheSize int
	// Shards is reported in /stats (informational; the backend hides its
	// own partitioning).
	Shards int
	// DefaultMinRecall, when in (0, 1], applies the accuracy bound to every
	// request that does not set "min_recall" itself, sending it through the
	// cost-based planner instead of the fixed default knobs. Zero keeps
	// unbounded requests on the fixed defaults. Requests that do set
	// "min_recall" (or "exhaustive") are unaffected.
	DefaultMinRecall float64
	// SlowLogSize bounds the /debug/queries ring of slowest recent traces
	// (0 selects the default of 16; negative disables the slow log and
	// with it per-request tracing for requests that don't ask for
	// debug=true).
	SlowLogSize int
}

// Server is the HTTP serving tier. It implements http.Handler.
type Server struct {
	backend Backend
	cfg     Config
	cache   *resultCache
	metrics *serverMetrics
	flight  *flightGroup
	slow    *slowLog
	mux     *http.ServeMux
	started time.Time

	// inflight counts /query and /query/batch requests currently
	// executing, to pick the per-request rerank width: any overlap means
	// per-query NumCPU-wide grounding pools would oversubscribe the cores.
	inflight atomic.Int64
}

// New constructs a server over backend.
func New(backend Backend, cfg Config) *Server {
	s := &Server{
		backend: backend,
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		metrics: newServerMetrics(),
		flight:  newFlightGroup(),
		slow:    newSlowLog(cfg.SlowLogSize),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/query/batch", s.handleBatch)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	return s
}

// ServeHTTP dispatches to the API endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryOptionsJSON is the wire form of core.QueryOptions.
type QueryOptionsJSON struct {
	FastK         int  `json:"fast_k,omitempty"`
	TopN          int  `json:"top_n,omitempty"`
	DisableRerank bool `json:"disable_rerank,omitempty"`
	Exhaustive    bool `json:"exhaustive,omitempty"`
	// Int8 pins the int8-quantized stage-1 scoring path (flat and IVF-PQ
	// indexes; recall-gated, not bit-identical — the shortlist is re-scored
	// exactly). Callers that want the planner to decide should set
	// min_recall instead. Ignored when exhaustive is set.
	Int8         bool `json:"int8,omitempty"`
	RerankFrames int  `json:"rerank_frames,omitempty"`
	// MinRecall, when set, asks the planner for the cheapest plan predicted
	// to reach this stage-1 recall (0 < min_recall <= 1) instead of the
	// fixed default knobs.
	MinRecall float64 `json:"min_recall,omitempty"`
}

func (o QueryOptionsJSON) toCore() core.QueryOptions {
	return core.QueryOptions{
		FastK:         o.FastK,
		TopN:          o.TopN,
		DisableRerank: o.DisableRerank,
		Exhaustive:    o.Exhaustive,
		Int8:          o.Int8,
		RerankFrames:  o.RerankFrames,
		MinRecall:     o.MinRecall,
	}
}

// resolveOptions converts validated wire options to core options, filling in
// the server's default accuracy bound for requests that set none.
func (s *Server) resolveOptions(o QueryOptionsJSON) core.QueryOptions {
	opts := o.toCore()
	if opts.MinRecall == 0 {
		opts.MinRecall = s.cfg.DefaultMinRecall
	}
	return opts
}

// maxKnob bounds the integer query knobs: anything past a million entries
// per knob is a typo or abuse, not a query, and would only commit the
// backend to absurd allocation.
const maxKnob = 1 << 20

// validateOptions rejects unexecutable option payloads up front, naming the
// offending field — negative or absurd knobs would otherwise surface as
// undefined backend behaviour (or an allocation) deep in the query path.
func validateOptions(o QueryOptionsJSON) error {
	switch {
	case o.FastK < 0:
		return fmt.Errorf("options.fast_k must be >= 0, got %d", o.FastK)
	case o.FastK > maxKnob:
		return fmt.Errorf("options.fast_k must be <= %d, got %d", maxKnob, o.FastK)
	case o.TopN < 0:
		return fmt.Errorf("options.top_n must be >= 0, got %d", o.TopN)
	case o.TopN > maxKnob:
		return fmt.Errorf("options.top_n must be <= %d, got %d", maxKnob, o.TopN)
	case o.RerankFrames < 0:
		return fmt.Errorf("options.rerank_frames must be >= 0, got %d", o.RerankFrames)
	case o.RerankFrames > maxKnob:
		return fmt.Errorf("options.rerank_frames must be <= %d, got %d", maxKnob, o.RerankFrames)
	}
	if err := core.ValidateMinRecall(o.MinRecall); err != nil {
		return fmt.Errorf("options.min_recall must lie in (0, 1], got %v", o.MinRecall)
	}
	return nil
}

// BoxJSON is a bounding box on the wire.
type BoxJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	W float64 `json:"w"`
	H float64 `json:"h"`
}

// ObjectJSON is one retrieved object on the wire.
type ObjectJSON struct {
	VideoID  int     `json:"video_id"`
	FrameIdx int     `json:"frame_idx"`
	Box      BoxJSON `json:"box"`
	Score    float32 `json:"score"`
	PatchID  int64   `json:"patch_id"`
}

// PlanJSON is the resolved execution plan on the wire: the exact knobs this
// query ran with, and the planner's provenance (kind, predicted recall).
type PlanJSON struct {
	Kind            string  `json:"kind"`
	Exact           bool    `json:"exact,omitempty"`
	FastK           int     `json:"fast_k"`
	ShardK          int     `json:"shard_k"`
	NProbe          int     `json:"nprobe,omitempty"`
	Ef              int     `json:"ef,omitempty"`
	RerankFrames    int     `json:"rerank_frames"`
	TopN            int     `json:"top_n"`
	SkipRerank      bool    `json:"skip_rerank,omitempty"`
	Int8            bool    `json:"int8,omitempty"`
	PredictedRecall float64 `json:"predicted_recall,omitempty"`
}

func toPlanJSON(p core.Plan) PlanJSON {
	return PlanJSON{
		Kind:            string(p.Kind),
		Exact:           p.Exact,
		FastK:           p.FastK,
		ShardK:          p.ShardK,
		NProbe:          p.NProbe,
		Ef:              p.Ef,
		RerankFrames:    p.RerankFrames,
		TopN:            p.TopN,
		SkipRerank:      p.SkipRerank,
		Int8:            p.Int8,
		PredictedRecall: p.PredictedRecall,
	}
}

// QueryResponse is the answer to one query.
type QueryResponse struct {
	Objects         []ObjectJSON `json:"objects"`
	CandidateFrames int          `json:"candidate_frames"`
	FastSearchMs    float64      `json:"fast_search_ms"`
	RerankMs        float64      `json:"rerank_ms"`
	Cached          bool         `json:"cached"`
	// Plan is the resolved plan this answer was computed under (for cache
	// hits: the plan the cached answer was computed under — identical, since
	// the cache keys on it).
	Plan PlanJSON `json:"plan"`
	// Trace is the query's span tree, echoed only when the request set
	// "debug": true. Tracing observes the execution — it never changes the
	// answer.
	Trace *SpanJSON `json:"trace,omitempty"`
}

type queryRequest struct {
	Query   string           `json:"query"`
	Options QueryOptionsJSON `json:"options"`
	// Debug asks the server to echo the query's span tree in the response.
	Debug bool `json:"debug,omitempty"`
}

type batchRequest struct {
	Queries []string         `json:"queries"`
	Options QueryOptionsJSON `json:"options"`
}

type batchResponse struct {
	Results []QueryResponse `json:"results"`
}

func toResponse(res *core.Result, plan core.Plan, cached bool) QueryResponse {
	objs := make([]ObjectJSON, len(res.Objects))
	for i, o := range res.Objects {
		objs[i] = ObjectJSON{
			VideoID:  o.VideoID,
			FrameIdx: o.FrameIdx,
			Box:      BoxJSON{X: o.Box.X, Y: o.Box.Y, W: o.Box.W, H: o.Box.H},
			Score:    o.Score,
			PatchID:  o.PatchID,
		}
	}
	return QueryResponse{
		Objects:         objs,
		CandidateFrames: res.CandidateFrames,
		FastSearchMs:    float64(res.FastSearch.Microseconds()) / 1000,
		RerankMs:        float64(res.Rerank.Microseconds()) / 1000,
		Cached:          cached,
		Plan:            toPlanJSON(plan),
	}
}

// failUnavailable answers the not-ready 503, distinguishing "the index is
// still building" from "a shard backend is unreachable" — a distributed
// engine reports Built()=false in both cases, and telling an operator to
// wait for an index that will never build wastes their incident.
func (s *Server) failUnavailable(w http.ResponseWriter) {
	if bb, ok := s.backend.(BackendReporter); ok {
		var down []string
		for _, st := range bb.BackendStats() {
			if !st.Healthy {
				name := st.Kind
				if st.Addr != "" {
					name = st.Addr
				}
				down = append(down, name)
			}
		}
		if len(down) > 0 {
			s.failKind(w, http.StatusServiceUnavailable, "backend_down",
				"%d shard backend(s) unreachable: %s", len(down), strings.Join(down, ", "))
			return
		}
	}
	s.fail(w, http.StatusServiceUnavailable, "index not built yet")
}

// allowMethod enforces one HTTP method uniformly across endpoints,
// answering 405 (with an Allow header) otherwise.
func (s *Server) allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		s.fail(w, http.StatusMethodNotAllowed, "%s required", method)
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethod(w, r, http.MethodPost) {
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.fail(w, http.StatusBadRequest, "empty query")
		return
	}
	if err := validateOptions(req.Options); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.backend.Built() {
		s.failUnavailable(w)
		return
	}
	opts := s.resolveOptions(req.Options)
	// The same guard QueryBatch applies between its clients, applied
	// between HTTP requests: a lone query gets the full parallel rerank,
	// but once requests overlap, per-query NumCPU-wide grounding pools
	// would only oversubscribe the cores. Results are identical at every
	// width.
	if s.inflight.Add(1) > 1 {
		opts.Workers = 1
	}
	defer s.inflight.Add(-1)
	// Trace the query whenever anyone could see the trace: the slow log
	// retains the slowest recent ones for /debug/queries, and debug=true
	// echoes this one in the response. Tracing records what the execution
	// did — it never steers it, so answers are byte-identical either way.
	ctx := r.Context()
	var trace *obs.Trace
	var root obs.Span
	if req.Debug || s.slow.enabled() {
		trace = obs.NewTrace(obs.NewID())
		root = trace.Root("query")
		ctx = obs.With(ctx, root)
	}
	start := time.Now()
	res, plan, cached, err := s.query(ctx, req.Query, opts)
	if err != nil {
		s.fail(w, queryErrStatus(err), "%v", err)
		return
	}
	elapsed := time.Since(start)
	s.metrics.latency.observe(elapsed)
	s.metrics.queries.Add(1)
	resp := toResponse(res, plan, cached)
	if trace != nil {
		root.End()
		tree := spanTree(trace.Export())
		s.slow.note(slowEntry{
			At:         time.Now(),
			Query:      req.Query,
			PlanKind:   string(plan.Kind),
			Cached:     cached,
			DurationMs: float64(elapsed.Microseconds()) / 1000,
			Trace:      tree,
		})
		if req.Debug {
			resp.Trace = tree
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// query plans one query, then serves the plan through the cache, coalescing
// concurrent identical misses onto one backend call: without the
// single-flight guard, a thundering herd of the same cold query would
// recompute it once per request. The reported cached flag stays false for
// coalesced waiters — the backend did run for them, just not once each.
//
// Keying on the resolved plan (rather than the raw options) means requests
// that resolve to the same execution — a pinned plan and the option knobs
// it mirrors, say — share one cache entry, and adaptive requests are cached
// per chosen plan, not per bound.
func (s *Server) query(ctx context.Context, text string, opts core.QueryOptions) (*core.Result, core.Plan, bool, error) {
	planStart := time.Now()
	pctx, psp := obs.Start(ctx, "plan")
	plan, err := s.backend.PlanQueryCtx(pctx, text, opts)
	psp.End()
	s.metrics.observeStage("plan", time.Since(planStart))
	if err != nil {
		return nil, core.Plan{}, false, err
	}
	s.metrics.notePlan(string(plan.Kind))
	cacheStart := time.Now()
	_, csp := obs.Start(ctx, "cache")
	key := cacheKey(text, plan)
	gen := s.backend.IngestGen()
	res, hit := s.cache.get(key, gen)
	if hit {
		csp.Detail("hit")
	} else {
		csp.Detail("miss")
	}
	csp.End()
	s.metrics.observeStage("cache", time.Since(cacheStart))
	if hit {
		return res, plan, true, nil
	}
	res, coalesced, err := s.flight.do(flightKey(key, gen), func() (*core.Result, error) {
		res, err := s.backend.QueryPlanned(ctx, text, plan, opts.Workers)
		if err != nil {
			return nil, err
		}
		// The leader attributes the stage timings exactly once per
		// execution — coalesced waiters rode this run, they didn't repeat
		// it.
		s.metrics.observeStage("stage1", res.FastSearch)
		s.metrics.observeStage("rerank", res.Rerank)
		// Publish before the flight entry drops, so a request arriving
		// after coalescing ends hits the cache instead of recomputing.
		s.cache.put(key, gen, res)
		return res, nil
	})
	if err != nil {
		return nil, plan, false, err
	}
	if coalesced {
		// A waiter's trace carries no stage-1/rerank spans of its own (the
		// leader's request ran them); the cache span says why.
		csp.Detail("miss coalesced")
		s.cache.noteCoalesced()
	}
	return res, plan, false, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethod(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	for _, q := range req.Queries {
		if strings.TrimSpace(q) == "" {
			s.fail(w, http.StatusBadRequest, "empty query in batch")
			return
		}
	}
	if err := validateOptions(req.Options); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.backend.Built() {
		s.failUnavailable(w)
		return
	}
	opts := s.resolveOptions(req.Options)
	// The same rerank-width guard handleQuery applies: a batch overlapping
	// any other /query or /query/batch must narrow each query's grounding
	// pool to one worker — the batch's own client pool (and the other
	// requests) already saturate the cores. Results are identical at
	// every width.
	if s.inflight.Add(1) > 1 {
		opts.Workers = 1
	}
	defer s.inflight.Add(-1)
	gen := s.backend.IngestGen()

	// Plan every query, serve what the cache can (keyed on each resolved
	// plan), and batch the rest through the backend's concurrent client
	// pool with their plans pre-resolved.
	start := time.Now()
	out := make([]QueryResponse, len(req.Queries))
	var missTexts []string
	var missPlans []core.Plan
	var missIdx []int
	for i, q := range req.Queries {
		plan, err := s.backend.PlanQueryCtx(r.Context(), q, opts)
		if err != nil {
			s.fail(w, queryErrStatus(err), "batch query %d (%q): %v", i, q, err)
			return
		}
		s.metrics.notePlan(string(plan.Kind))
		if res, ok := s.cache.get(cacheKey(q, plan), gen); ok {
			out[i] = toResponse(res, plan, true)
			continue
		}
		missTexts = append(missTexts, q)
		missPlans = append(missPlans, plan)
		missIdx = append(missIdx, i)
	}
	if len(missTexts) > 0 {
		results, err := s.backend.QueryBatchPlanned(r.Context(), missTexts, missPlans, opts.Workers, 0)
		if err != nil {
			s.fail(w, queryErrStatus(err), "%v", err)
			return
		}
		for j, res := range results {
			s.metrics.observeStage("stage1", res.FastSearch)
			s.metrics.observeStage("rerank", res.Rerank)
			s.cache.put(cacheKey(missTexts[j], missPlans[j]), gen, res)
			out[missIdx[j]] = toResponse(res, missPlans[j], false)
		}
	}
	elapsed := time.Since(start)
	// Attribute the batch wall-clock evenly: per-query percentiles from
	// batches would otherwise understate tail latency.
	per := elapsed / time.Duration(len(req.Queries))
	for range req.Queries {
		s.metrics.latency.observe(per)
	}
	s.metrics.batchQueries.Add(uint64(len(req.Queries)))
	writeJSON(w, http.StatusOK, batchResponse{Results: out})
}

// IngestResponse is the POST /ingest answer: what was accepted, and the
// generation the mutation advanced the backend to — the stamp that
// invalidates every cached answer computed before this video landed.
type IngestResponse struct {
	VideoID   int    `json:"video_id"`
	Frames    int    `json:"frames"`
	IngestGen uint64 `json:"ingest_gen"`
}

// maxIngestFrames bounds one live-ingest video. A million frames is hours
// of footage in one request body — past it the payload is abuse, not video.
const maxIngestFrames = 1 << 20

// handleIngest is the live-ingest serving path: one video.Video as JSON,
// routed to the owning shard (which fans it out to its replicas). The
// ingest generation moving invalidates stale cache entries on their next
// lookup, so queries racing the ingest never see a mix of old and new
// corpus in one answer.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethod(w, r, http.MethodPost) {
		return
	}
	ing, ok := s.backend.(Ingester)
	if !ok {
		s.fail(w, http.StatusNotImplemented, "backend does not accept live ingest")
		return
	}
	var v video.Video
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	switch {
	case v.ID < 0 || v.ID > core.MaxVideoID:
		s.fail(w, http.StatusBadRequest, "video id must lie in [0, %d], got %d", core.MaxVideoID, v.ID)
		return
	case len(v.Frames) == 0:
		s.fail(w, http.StatusBadRequest, "video %d has no frames", v.ID)
		return
	case len(v.Frames) > maxIngestFrames:
		s.fail(w, http.StatusBadRequest, "video %d has %d frames, limit %d per request", v.ID, len(v.Frames), maxIngestFrames)
		return
	}
	for i := range v.Frames {
		f := &v.Frames[i]
		if f.Index < 0 || f.Index > core.MaxFrameIdx {
			s.fail(w, http.StatusBadRequest, "frame %d: index %d outside [0, %d]", i, f.Index, core.MaxFrameIdx)
			return
		}
		if f.VideoID != v.ID {
			s.fail(w, http.StatusBadRequest, "frame %d: video_id %d != video id %d", i, f.VideoID, v.ID)
			return
		}
	}
	if err := ing.Ingest(&v); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, vectordb.ErrDuplicate) || errors.Is(err, relational.ErrDuplicateKey) {
			// The patch IDs collided: this video (or one reusing its ID) is
			// already in the corpus. Either store can notice first — the
			// relational patch table and the vector collection share the key.
			status = http.StatusConflict
		}
		s.fail(w, status, "ingest: %v", err)
		return
	}
	s.metrics.ingests.Add(1)
	writeJSON(w, http.StatusOK, IngestResponse{
		VideoID:   v.ID,
		Frames:    len(v.Frames),
		IngestGen: s.backend.IngestGen(),
	})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Ingest   core.IngestStats `json:"ingest"`
	Entities int              `json:"entities"`
	Built    bool             `json:"built"`
	Shards   int              `json:"shards"`
	Replicas int              `json:"replicas,omitempty"`
	// ReplicaGroups reports per-group replica health, read counts and
	// in-flight load when the backend is a replicated engine.
	ReplicaGroups [][]shard.ReplicaStat `json:"replica_groups,omitempty"`
	// Backends reports per-shard backend kind, address and health when the
	// backend is a distributed engine.
	Backends []shard.BackendStat `json:"backends,omitempty"`
	// Segments reports the streaming segment breakdown (summed across
	// shards) when the backend streams; absent for monolithic batch
	// deployments.
	Segments     *SegmentStatsJSON `json:"segments,omitempty"`
	IngestGen    uint64            `json:"ingest_gen"`
	Cache        CacheStats        `json:"cache"`
	QueriesTotal uint64            `json:"queries_total"`
	BatchTotal   uint64            `json:"batch_queries_total"`
	ErrorsTotal  uint64            `json:"errors_total"`
	// Plans counts resolved plans by kind ("fixed", "pinned", "adaptive",
	// "adaptive-exact") across /query and /query/batch.
	Plans map[string]uint64 `json:"plans,omitempty"`
	// LastMeasuredRecall is the stage-1 recall most recently measured by the
	// planner's validation loop; 0 until a validation probe has run.
	LastMeasuredRecall float64 `json:"last_measured_recall,omitempty"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	// KernelTier is the active float32 scoring-kernel tier ("avx2",
	// "sse2", "neon" or "purego") — every tier is bit-identical, so this
	// is provenance for perf triage, not a correctness knob.
	KernelTier    string  `json:"kernel_tier"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// SegmentStatsJSON is the streaming segment breakdown on the wire.
type SegmentStatsJSON struct {
	Sealed        int    `json:"sealed"`
	Building      int    `json:"building"`
	Growing       int    `json:"growing"`
	GrowingLen    int    `json:"growing_len"`
	SealedVectors int    `json:"sealed_vectors"`
	RawBytes      int64  `json:"raw_bytes"`
	IndexBytes    int64  `json:"index_bytes"`
	Seals         uint64 `json:"seals_total"`
	Compactions   uint64 `json:"compactions_total"`
	IngestsTotal  uint64 `json:"ingests_total"`
}

// segmentStats fetches the backend's streaming segment breakdown; nil for
// monolithic backends (or ones without the optional surface).
func (s *Server) segmentStats() *SegmentStatsJSON {
	sr, ok := s.backend.(SegmentReporter)
	if !ok {
		return nil
	}
	st, ok := sr.SegmentStats()
	if !ok || !st.Streaming {
		return nil
	}
	return &SegmentStatsJSON{
		Sealed:        st.Sealed,
		Building:      st.Building,
		Growing:       st.Growing,
		GrowingLen:    st.GrowingLen,
		SealedVectors: st.SealedVectors,
		RawBytes:      st.RawBytes,
		IndexBytes:    st.IndexBytes,
		Seals:         st.Seals,
		Compactions:   st.Compactions,
		IngestsTotal:  s.metrics.ingests.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	var replicas int
	var groups [][]shard.ReplicaStat
	if rb, ok := s.backend.(ReplicaReporter); ok {
		replicas = rb.Replicas()
		groups = rb.ReplicaStats()
	}
	var backends []shard.BackendStat
	if bb, ok := s.backend.(BackendReporter); ok {
		backends = bb.BackendStats()
	}
	var measured float64
	if rr, ok := s.backend.(RecallReporter); ok {
		measured = rr.LastMeasuredRecall()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Ingest:             s.backend.Stats(),
		Entities:           s.backend.Entities(),
		Built:              s.backend.Built(),
		Shards:             s.cfg.Shards,
		Replicas:           replicas,
		ReplicaGroups:      groups,
		Backends:           backends,
		Segments:           s.segmentStats(),
		IngestGen:          s.backend.IngestGen(),
		Cache:              s.cache.stats(),
		QueriesTotal:       s.metrics.queries.Load(),
		BatchTotal:         s.metrics.batchQueries.Load(),
		ErrorsTotal:        s.metrics.errors.Load(),
		Plans:              s.metrics.planCounts(),
		LastMeasuredRecall: measured,
		LatencyP50Ms:       s.metrics.latency.quantile(0.50) * 1000,
		LatencyP99Ms:       s.metrics.latency.quantile(0.99) * 1000,
		KernelTier:         mat.KernelTier(),
		UptimeSeconds:      time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	resp := map[string]any{
		"status":   "ok",
		"built":    s.backend.Built(),
		"entities": s.backend.Entities(),
	}
	// A distributed engine probes its shard backends: any unreachable
	// worker degrades the health report (still 200 — the serving tier
	// itself is alive; orchestrators key on the status string).
	if bb, ok := s.backend.(BackendReporter); ok {
		stats := bb.BackendStats()
		down := 0
		for _, st := range stats {
			if !st.Healthy {
				down++
			}
		}
		resp["backends"] = stats
		resp["backends_down"] = down
		if down > 0 {
			resp["status"] = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	cs := s.cache.stats()
	counter(w, "lovod_queries_total", s.metrics.queries.Load())
	counter(w, "lovod_batch_queries_total", s.metrics.batchQueries.Load())
	counter(w, "lovod_ingest_total", s.metrics.ingests.Load())
	counter(w, "lovod_errors_total", s.metrics.errors.Load())
	s.metrics.writeErrorMetrics(w)
	counter(w, "lovod_cache_hits_total", cs.Hits)
	counter(w, "lovod_cache_misses_total", cs.Misses)
	counter(w, "lovod_cache_evictions_total", cs.Evicted)
	counter(w, "lovod_cache_coalesced_total", cs.Coalesced)
	gauge(w, "lovod_cache_entries", float64(cs.Entries))
	gauge(w, "lovod_index_entities", float64(s.backend.Entities()))
	gauge(w, "lovod_ingest_generation", float64(s.backend.IngestGen()))
	writePlanMetrics(w, s.metrics.planCounts())
	if rr, ok := s.backend.(RecallReporter); ok {
		gauge(w, "lovod_planner_last_measured_recall", rr.LastMeasuredRecall())
	}
	if rb, ok := s.backend.(ReplicaReporter); ok {
		writeReplicaMetrics(w, rb.ReplicaStats())
	}
	if bb, ok := s.backend.(BackendReporter); ok {
		writeBackendMetrics(w, bb.BackendStats())
	}
	if seg := s.segmentStats(); seg != nil {
		writeSegmentMetrics(w, seg)
	}
	s.metrics.latency.writeProm(w, "lovod_query_latency_seconds")
	s.metrics.writeStageMetrics(w, "lovod_stage_seconds")
}

// writeReplicaMetrics renders per-replica health and read counters with
// group/replica labels.
func writeReplicaMetrics(w io.Writer, groups [][]shard.ReplicaStat) {
	fmt.Fprintf(w, "# TYPE lovod_replica_healthy gauge\n")
	for gi, g := range groups {
		for ri, st := range g {
			v := 0
			if st.Healthy {
				v = 1
			}
			fmt.Fprintf(w, "lovod_replica_healthy{group=\"%d\",replica=\"%d\"} %d\n", gi, ri, v)
		}
	}
	fmt.Fprintf(w, "# TYPE lovod_replica_reads_total counter\n")
	for gi, g := range groups {
		for ri, st := range g {
			fmt.Fprintf(w, "lovod_replica_reads_total{group=\"%d\",replica=\"%d\"} %d\n", gi, ri, st.Reads)
		}
	}
}

// writeSegmentMetrics renders the streaming segment breakdown: a per-state
// segment gauge plus the maintenance counters that show background seals
// and compactions making progress.
func writeSegmentMetrics(w io.Writer, seg *SegmentStatsJSON) {
	fmt.Fprintf(w, "# TYPE lovod_segments gauge\n")
	fmt.Fprintf(w, "lovod_segments{state=\"sealed\"} %d\n", seg.Sealed)
	fmt.Fprintf(w, "lovod_segments{state=\"building\"} %d\n", seg.Building)
	fmt.Fprintf(w, "lovod_segments{state=\"growing\"} %d\n", seg.Growing)
	gauge(w, "lovod_segment_growing_vectors", float64(seg.GrowingLen))
	gauge(w, "lovod_segment_sealed_vectors", float64(seg.SealedVectors))
	counter(w, "lovod_seals_total", seg.Seals)
	counter(w, "lovod_compactions_total", seg.Compactions)
}

// writeBackendMetrics renders per-shard backend health with shard/kind
// labels.
func writeBackendMetrics(w io.Writer, stats []shard.BackendStat) {
	fmt.Fprintf(w, "# TYPE lovod_backend_healthy gauge\n")
	for i, st := range stats {
		v := 0
		if st.Healthy {
			v = 1
		}
		fmt.Fprintf(w, "lovod_backend_healthy{shard=\"%d\",kind=\"%s\"} %d\n", i, st.Kind, v)
	}
}

// queryErrStatus maps a backend query error to an HTTP status: queries with
// no recognised vocabulary are the client's problem, everything else is
// ours.
func queryErrStatus(err error) int {
	if errors.Is(err, core.ErrNoRecognisedTerms) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// errKindForStatus classifies a failed request for the per-kind error
// counter: 4xx means the request was bad, 503 means the index is not ready
// (failUnavailable overrides with "backend_down" when it knows better), and
// everything else is our fault.
func errKindForStatus(status int) string {
	switch {
	case status == http.StatusServiceUnavailable:
		return "not_ready"
	case status >= 400 && status < 500:
		return "validation"
	default:
		return "internal"
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failKind(w, status, errKindForStatus(status), format, args...)
}

func (s *Server) failKind(w http.ResponseWriter, status int, kind string, format string, args ...any) {
	s.metrics.noteError(kind)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
