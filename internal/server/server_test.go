package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
)

// boot builds a 2-shard engine over a tiny Bellevue slice, fully ingested
// and indexed, plus the dataset for query texts.
func boot(t *testing.T, cacheSize int) (*shard.Engine, *datasets.Dataset, *httptest.Server) {
	t.Helper()
	ds := datasets.ActivityNetQA(datasets.Config{Seed: 7, Scale: 0.04})
	eng, err := shard.New(2, core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{CacheSize: cacheSize, Shards: eng.Shards()}))
	t.Cleanup(ts.Close)
	return eng, ds, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestQueryEndpointMatchesEngine(t *testing.T) {
	eng, ds, ts := boot(t, 16)
	text := ds.Queries[0].Text
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(text, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Objects) != len(want.Objects) {
		t.Fatalf("got %d objects, want %d", len(qr.Objects), len(want.Objects))
	}
	for i, o := range qr.Objects {
		w := want.Objects[i]
		if o.VideoID != w.VideoID || o.FrameIdx != w.FrameIdx || o.Score != w.Score || o.PatchID != w.PatchID {
			t.Fatalf("object %d: got %+v want %+v", i, o, w)
		}
	}
	if qr.Cached {
		t.Fatal("first answer must not be cached")
	}
}

func TestCacheHitAndIngestInvalidation(t *testing.T) {
	eng, ds, ts := boot(t, 16)
	text := ds.Queries[0].Text

	_, _ = postJSON(t, ts.URL+"/query", queryRequest{Query: text})
	resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cached {
		t.Fatal("repeat query must hit the cache")
	}

	// Different options key separately.
	_, data = postJSON(t, ts.URL+"/query", queryRequest{Query: text, Options: QueryOptionsJSON{TopN: 3}})
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cached {
		t.Fatal("different options must miss the cache")
	}

	// Ingest advances the generation; the cached answer is now stale.
	extra := datasets.Bellevue(datasets.Config{Seed: 99, Scale: 0.02})
	v := extra.Videos[0]
	v.ID = 200
	if err := eng.Ingest(&v); err != nil {
		t.Fatal(err)
	}
	_, data = postJSON(t, ts.URL+"/query", queryRequest{Query: text})
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cached {
		t.Fatal("ingest must invalidate the cache")
	}

	var st StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	if st.QueriesTotal != 4 {
		t.Fatalf("queries_total = %d want 4", st.QueriesTotal)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ds, ts := boot(t, 16)
	texts := []string{ds.Queries[0].Text, ds.Queries[1].Text, ds.Queries[0].Text}
	resp, data := postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: texts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d", len(br.Results))
	}
	if len(br.Results[0].Objects) == 0 || len(br.Results[1].Objects) == 0 {
		t.Fatal("batch answers must carry objects")
	}
	// Identical texts at different positions answer identically.
	if fmt.Sprint(br.Results[0].Objects) != fmt.Sprint(br.Results[2].Objects) {
		t.Fatal("duplicate queries in one batch must answer identically")
	}
	// A second batch is served fully from cache.
	_, data = postJSON(t, ts.URL+"/query/batch", batchRequest{Queries: texts})
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	for i, r := range br.Results {
		if !r.Cached {
			t.Fatalf("result %d of repeat batch not cached", i)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	_, _, ts := boot(t, 4)
	cases := []struct {
		name   string
		status int
		do     func() *http.Response
	}{
		{"empty query", http.StatusBadRequest, func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/query", queryRequest{Query: "  "})
			return r
		}},
		{"unknown terms", http.StatusBadRequest, func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/query", queryRequest{Query: "zorgon blaxt"})
			return r
		}},
		{"bad json", http.StatusBadRequest, func() *http.Response {
			r, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			return r
		}},
		{"wrong method", http.StatusMethodNotAllowed, func() *http.Response {
			r, err := http.Get(ts.URL + "/query")
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			return r
		}},
		{"empty batch", http.StatusBadRequest, func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/query/batch", batchRequest{})
			return r
		}},
	}
	for _, c := range cases {
		if got := c.do().StatusCode; got != c.status {
			t.Errorf("%s: status %d want %d", c.name, got, c.status)
		}
	}
}

func TestNotBuiltReturns503(t *testing.T) {
	eng, err := shard.New(2, core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ds := datasets.Bellevue(datasets.Config{Seed: 7, Scale: 0.03})
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{CacheSize: 4}))
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/query", queryRequest{Query: ds.Queries[0].Text})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d want 503", resp.StatusCode)
	}
	// Healthz still answers (liveness, not readiness).
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ds, ts := boot(t, 8)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" || hz["built"] != true {
		t.Fatalf("healthz: %v", hz)
	}

	_, _ = postJSON(t, ts.URL+"/query", queryRequest{Query: ds.Queries[0].Text})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"lovod_queries_total 1",
		"lovod_cache_misses_total 1",
		"# TYPE lovod_query_latency_seconds histogram",
		`lovod_query_latency_seconds_bucket{le="+Inf"} 1`,
		"lovod_query_latency_seconds_count 1",
		"lovod_index_entities",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentHTTPQueriesDuringIngest drives concurrent /query requests
// while ingest and a rebuild proceed on the engine — the acceptance race
// test for the serving tier (run with -race).
func TestConcurrentHTTPQueriesDuringIngest(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 13, Scale: 0.04})
	eng, err := shard.New(3, core.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{CacheSize: 32, Shards: 3}))
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := eng.Ingest(&ds.Videos[i]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := eng.BuildIndex(); err != nil {
			t.Error(err)
		}
	}()
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				text := ds.Queries[(c+i)%len(ds.Queries)].Text
				resp, data := postJSON(t, ts.URL+"/query", queryRequest{Query: text})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.QueriesTotal != 20 {
		t.Fatalf("queries_total = %d want 20", st.QueriesTotal)
	}
	if st.Ingest.Videos != len(ds.Videos) {
		t.Fatalf("ingested %d videos want %d", st.Ingest.Videos, len(ds.Videos))
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put("k", 1, &core.Result{})
	if _, ok := c.get("k", 1); ok {
		t.Fatal("disabled cache must never hit")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	r := &core.Result{}
	c.put("a", 1, r)
	c.put("b", 1, r)
	c.put("c", 1, r) // evicts a
	if _, ok := c.get("a", 1); ok {
		t.Fatal("a must be evicted")
	}
	if _, ok := c.get("b", 1); !ok {
		t.Fatal("b must survive")
	}
	st := c.stats()
	if st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.observe(2 * 1e6) // 2ms in ns
	}
	p50 := h.quantile(0.5)
	if p50 < 0.001 || p50 > 0.0025 {
		t.Fatalf("p50 = %v want within (1ms, 2.5ms]", p50)
	}
	if h.quantile(0.99) < p50 {
		t.Fatal("p99 < p50")
	}
}

// TestHistogramQuantileEmpty: no observations means no estimate — zero,
// not NaN and not a bucket bound.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.quantile(q); got != 0 {
			t.Fatalf("empty histogram quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestHistogramQuantileSingleObservation: every quantile of a one-sample
// histogram must land inside the sample's own bucket (3ms -> (2.5ms, 5ms]).
func TestHistogramQuantileSingleObservation(t *testing.T) {
	h := newHistogram()
	h.observe(3 * time.Millisecond)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.quantile(q)
		if got <= 0.0025 || got > 0.005 {
			t.Fatalf("quantile(%v) = %v, want within (2.5ms, 5ms]", q, got)
		}
	}
	if h.quantile(0.99) < h.quantile(0.5) {
		t.Fatal("quantiles must be monotone in q")
	}
}

// TestHistogramQuantileAllMassInInfBucket: observations beyond the largest
// finite bound land in the +Inf bucket, whose estimate extrapolates to
// twice the last bound — every quantile must stay within (10s, 20s], never
// fall back below the data.
func TestHistogramQuantileAllMassInInfBucket(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 10; i++ {
		h.observe(30 * time.Second)
	}
	top := latencyBuckets[len(latencyBuckets)-1]
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.quantile(q)
		if got <= top || got > 2*top {
			t.Fatalf("quantile(%v) = %v, want within (%v, %v]", q, got, top, 2*top)
		}
	}
	if p50, p99 := h.quantile(0.5), h.quantile(0.99); p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
}

// TestHistogramQuantileMixedTail: mass split between a finite bucket and
// +Inf — the median must come from the finite bucket, the p99 from the
// extrapolated tail.
func TestHistogramQuantileMixedTail(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 90; i++ {
		h.observe(2 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(time.Minute)
	}
	if p50 := h.quantile(0.5); p50 < 0.001 || p50 > 0.0025 {
		t.Fatalf("p50 = %v want within (1ms, 2.5ms]", p50)
	}
	top := latencyBuckets[len(latencyBuckets)-1]
	if p99 := h.quantile(0.99); p99 <= top || p99 > 2*top {
		t.Fatalf("p99 = %v want within (%v, %v]", p99, top, 2*top)
	}
}
