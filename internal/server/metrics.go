package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, exponential
// from 100µs to 10s — wide enough to cover a cache hit and a cold
// exhaustive scan on the same axis.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // counts[i] observations <= latencyBuckets[i]; one extra for +Inf
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.mu.Lock()
	h.counts[i]++
	h.sum += sec
	h.count++
	h.mu.Unlock()
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the owning bucket; 0 when empty.
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBuckets[i-1]
		}
		hi := 2 * lo // +Inf bucket: extrapolate
		if i < len(latencyBuckets) {
			hi = latencyBuckets[i]
		}
		if c == 0 {
			return lo
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// writeProm renders the histogram in Prometheus text exposition format.
func (h *histogram) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	h.writePromSeries(w, name, "")
}

// writePromSeries renders the bucket/sum/count series with an optional
// extra label (the caller owns the # TYPE header, so many labeled series
// can share one metric family).
func (h *histogram) writePromSeries(w io.Writer, name, label string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	sep := ""
	if label != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, label, sep, promFloat(ub), cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, label, sep, cum)
	if label == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(sum))
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, label, promFloat(sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, count)
	}
}

// promFloat formats a float the way Prometheus expects (no exponent for
// the magnitudes we use, trailing zeros trimmed).
func promFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%g", v)
	return s
}

// queryStages are the per-stage latency series under lovod_stage_seconds:
// plan resolution and the cache lookup are measured server-side on every
// query; stage1 (scatter + merge) and rerank come from the backend's
// Result timings, so they only record on queries that actually executed
// (cache hits have no stage-1 to attribute).
var queryStages = []string{"plan", "cache", "stage1", "rerank"}

// errorKinds are the lovod_query_errors_total label values: "validation"
// (the request itself is bad — 4xx), "not_ready" (the index is still
// building), "backend_down" (a shard backend is unreachable), "internal"
// (everything that is our fault).
var errorKinds = []string{"validation", "not_ready", "backend_down", "internal"}

// serverMetrics aggregates the serving-tier counters exposed at /metrics.
type serverMetrics struct {
	queries      atomic.Uint64 // /query requests answered (cache hits included)
	batchQueries atomic.Uint64 // individual queries served via /query/batch
	ingests      atomic.Uint64 // videos accepted via /ingest
	errors       atomic.Uint64 // requests rejected or failed
	latency      *histogram    // per-query serve latency (cache hits included)

	// stages holds one fixed histogram per query stage (see queryStages),
	// rendered as lovod_stage_seconds{stage="..."}. Debug-tier endpoints
	// never observe into these — nor into latency — so observability
	// traffic cannot pollute the serving series.
	stages map[string]*histogram

	planMu sync.Mutex
	plans  map[string]uint64 // resolved plans by kind (cache hits included)

	errMu    sync.Mutex
	errKinds map[string]uint64 // failed requests by kind (see errorKinds)
}

func newServerMetrics() *serverMetrics {
	stages := make(map[string]*histogram, len(queryStages))
	for _, st := range queryStages {
		stages[st] = newHistogram()
	}
	return &serverMetrics{
		latency:  newHistogram(),
		stages:   stages,
		plans:    make(map[string]uint64),
		errKinds: make(map[string]uint64),
	}
}

// observeStage records one stage duration into its labeled histogram.
// Unknown stages are dropped rather than grown: the label set is fixed so
// /metrics cardinality cannot creep.
func (m *serverMetrics) observeStage(stage string, d time.Duration) {
	if h, ok := m.stages[stage]; ok {
		h.observe(d)
	}
}

// noteError counts one failed request under its kind label (plus the
// untyped errors total, kept for compatibility).
func (m *serverMetrics) noteError(kind string) {
	m.errors.Add(1)
	m.errMu.Lock()
	m.errKinds[kind]++
	m.errMu.Unlock()
}

// errorCounts snapshots the per-kind error counters.
func (m *serverMetrics) errorCounts() map[string]uint64 {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	out := make(map[string]uint64, len(m.errKinds))
	for k, v := range m.errKinds {
		out[k] = v
	}
	return out
}

// writeStageMetrics renders the per-stage latency histograms as one
// labeled family, in declaration order so scrapes are byte-stable.
func (m *serverMetrics) writeStageMetrics(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, st := range queryStages {
		m.stages[st].writePromSeries(w, name, fmt.Sprintf("stage=%q", st))
	}
}

// writeErrorMetrics renders the per-kind error counter. Every kind prints
// even at zero, so dashboards see the full label set from the first
// scrape.
func (m *serverMetrics) writeErrorMetrics(w io.Writer) {
	counts := m.errorCounts()
	fmt.Fprintf(w, "# TYPE lovod_query_errors_total counter\n")
	for _, k := range errorKinds {
		fmt.Fprintf(w, "lovod_query_errors_total{kind=%q} %d\n", k, counts[k])
	}
}

// notePlan counts one resolved plan of the given kind.
func (m *serverMetrics) notePlan(kind string) {
	m.planMu.Lock()
	m.plans[kind]++
	m.planMu.Unlock()
}

// planCounts snapshots the per-kind plan counters; nil when no query has
// been planned yet (so /stats omits the field instead of showing {}).
func (m *serverMetrics) planCounts() map[string]uint64 {
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if len(m.plans) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m.plans))
	for k, v := range m.plans {
		out[k] = v
	}
	return out
}

// writePlanMetrics renders the per-kind plan counter with a kind label, in
// sorted order so scrapes are byte-stable.
func writePlanMetrics(w io.Writer, plans map[string]uint64) {
	fmt.Fprintf(w, "# TYPE lovod_plan_chosen_total counter\n")
	kinds := make([]string, 0, len(plans))
	for k := range plans {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "lovod_plan_chosen_total{kind=\"%s\"} %d\n", k, plans[k])
	}
}

func counter(w io.Writer, name string, v uint64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}

func gauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(v))
}
