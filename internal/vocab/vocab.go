// Package vocab defines the attribute vocabulary of the synthetic video
// world: object classes, colours, sizes, clothing, contexts, relations and
// behaviours.
//
// Every entity in the reproduction speaks this vocabulary. Synthetic objects
// carry term sets as ground truth, the encoders embed terms into the shared
// vision/text space, the query parser maps natural-language strings onto
// terms, and the closed-vocabulary baselines (VOCAL, MIRIS, FiGO) are
// restricted to the subset flagged as belonging to the predefined MSCOCO
// label set — which is exactly how the paper distinguishes "simple" queries
// (predefined classes) from "normal" and "complex" ones (novel classes,
// detailed descriptions, spatial relationships).
package vocab

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a vocabulary term. The query parser uses kinds to group
// terms into subject / attribute / context / relation roles, and the fast
// search encoder uses them to decide which terms enter the single query
// vector (relations are deliberately omitted, Section VI-A of the paper).
type Kind int

const (
	// KindClass names an object category ("car", "person", "suv").
	KindClass Kind = iota
	// KindColor names a colour attribute ("red", "yellow-green").
	KindColor
	// KindSize names a size attribute ("large", "small").
	KindSize
	// KindClothing names worn items or body descriptions ("black t-shirt").
	KindClothing
	// KindContext names scene or location context ("road", "intersection").
	KindContext
	// KindRelation names a spatial relationship between objects
	// ("side by side", "next to"); these need cross-modality reasoning.
	KindRelation
	// KindBehavior names what an object is doing ("walking", "driving").
	KindBehavior
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case KindClass:
		return "class"
	case KindColor:
		return "color"
	case KindSize:
		return "size"
	case KindClothing:
		return "clothing"
	case KindContext:
		return "context"
	case KindRelation:
		return "relation"
	case KindBehavior:
		return "behavior"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Term is one vocabulary entry.
type Term struct {
	// Name is the canonical lower-case term, with spaces for phrases
	// ("side by side").
	Name string
	// Kind classifies the term.
	Kind Kind
	// COCO marks terms inside the predefined MSCOCO-style detector label
	// set available to QA-index and QD-search baselines.
	COCO bool
	// Related lists weighted similarities to other terms; the embedding
	// space mixes these directions so that, e.g., "suv" is retrievable by
	// a "car" query with reduced score.
	Related []Relation
}

// Relation is a weighted link between two terms.
type Relation struct {
	Name   string
	Weight float32
}

var registry = buildRegistry()

func buildRegistry() map[string]Term {
	c := func(name string, coco bool, related ...Relation) Term {
		return Term{Name: name, Kind: KindClass, COCO: coco, Related: related}
	}
	terms := []Term{
		// --- Classes. COCO flags follow the MSCOCO label list.
		c("person", true),
		c("car", true),
		c("bus", true),
		c("truck", true, Relation{"car", 0.2}),
		c("bicycle", true),
		c("dog", true),
		c("bag", true), // MSCOCO "handbag"
		c("suv", false, Relation{"car", 0.55}),
		c("woman", false, Relation{"person", 0.65}),
		c("man", false, Relation{"person", 0.65}),

		// --- Colours.
		{Name: "red", Kind: KindColor},
		{Name: "black", Kind: KindColor, Related: []Relation{{"dark", 0.5}}},
		{Name: "white", Kind: KindColor, Related: []Relation{{"light", 0.5}}},
		{Name: "green", Kind: KindColor, Related: []Relation{{"yellow-green", 0.4}}},
		{Name: "blue", Kind: KindColor},
		{Name: "yellow", Kind: KindColor},
		{Name: "yellow-green", Kind: KindColor, Related: []Relation{{"green", 0.4}}},
		{Name: "grey", Kind: KindColor},
		{Name: "light", Kind: KindColor, Related: []Relation{{"white", 0.5}}},
		{Name: "dark", Kind: KindColor, Related: []Relation{{"black", 0.5}}},
		{Name: "red-hair", Kind: KindColor},

		// --- Sizes.
		{Name: "large", Kind: KindSize},
		{Name: "small", Kind: KindSize},

		// --- Clothing and carried items.
		{Name: "t-shirt", Kind: KindClothing},
		{Name: "jeans", Kind: KindClothing},
		{Name: "suit", Kind: KindClothing},
		{Name: "dress", Kind: KindClothing},
		{Name: "skirt", Kind: KindClothing},
		{Name: "hat", Kind: KindClothing},
		{Name: "life jacket", Kind: KindClothing},
		{Name: "clothing", Kind: KindClothing},
		{Name: "white roof", Kind: KindClothing}, // vehicle part attribute
		{Name: "cargo", Kind: KindClothing},      // carried-load attribute

		// --- Contexts.
		{Name: "road", Kind: KindContext, COCO: true, Related: []Relation{{"street", 0.6}}},
		{Name: "street", Kind: KindContext, COCO: true, Related: []Relation{{"road", 0.6}}},
		{Name: "intersection", Kind: KindContext, Related: []Relation{{"road", 0.3}}},
		{Name: "sidewalk", Kind: KindContext},
		{Name: "inside car", Kind: KindContext},
		{Name: "room", Kind: KindContext},
		{Name: "meadow", Kind: KindContext},
		{Name: "outdoors", Kind: KindContext},
		{Name: "beach", Kind: KindContext},

		// --- Relations (require reasoning over object pairs / layout).
		{Name: "side by side", Kind: KindRelation},
		{Name: "next to", Kind: KindRelation},
		{Name: "center of the road", Kind: KindRelation},
		{Name: "holding", Kind: KindRelation},
		{Name: "filled with", Kind: KindRelation},

		// --- Behaviours.
		{Name: "walking", Kind: KindBehavior},
		{Name: "driving", Kind: KindBehavior},
		{Name: "riding", Kind: KindBehavior},
		{Name: "sitting", Kind: KindBehavior},
		{Name: "smiling", Kind: KindBehavior},
		{Name: "dancing", Kind: KindBehavior},
		{Name: "parked", Kind: KindBehavior},
		{Name: "standing", Kind: KindBehavior},
	}
	m := make(map[string]Term, len(terms))
	for _, t := range terms {
		if _, dup := m[t.Name]; dup {
			panic("vocab: duplicate term " + t.Name)
		}
		m[t.Name] = t
	}
	// Validate relation targets exist.
	for _, t := range terms {
		for _, r := range t.Related {
			if _, ok := m[r.Name]; !ok {
				panic("vocab: related term missing: " + r.Name)
			}
		}
	}
	return m
}

// synonyms maps surface forms seen in queries to canonical terms.
var synonyms = map[string]string{
	"automobile":                           "car",
	"vehicle":                              "car",
	"people":                               "person",
	"gray":                                 "grey",
	"tshirt":                               "t-shirt",
	"t shirt":                              "t-shirt",
	"handbag":                              "bag",
	"light-colored":                        "light",
	"dark-colored":                         "dark",
	"red hair":                             "red-hair",
	"red-haired":                           "red-hair",
	"clothes":                              "clothing",
	"ride":                                 "riding",
	"rides":                                "riding",
	"walk":                                 "walking",
	"walks":                                "walking",
	"drive":                                "driving",
	"drives":                               "driving",
	"drove":                                "driving",
	"sit":                                  "sitting",
	"sits":                                 "sitting",
	"smile":                                "smiling",
	"smiles":                               "smiling",
	"dance":                                "dancing",
	"dances":                               "dancing",
	"park":                                 "parked",
	"parks":                                "parked",
	"parking":                              "parked",
	"beside":                               "next to",
	"inside a car":                         "inside car",
	"inside the car":                       "inside car",
	"centre of the road":                   "center of the road",
	"center of road":                       "center of the road",
	"in the center of the road":            "center of the road",
	"positioned in the center of the road": "center of the road",
}

// Lookup resolves a surface form (canonical name or synonym) to its Term.
func Lookup(name string) (Term, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	if canon, ok := synonyms[name]; ok {
		name = canon
	}
	t, ok := registry[name]
	return t, ok
}

// MustLookup is Lookup that panics on unknown terms; used by generators whose
// vocabulary is fixed at compile time.
func MustLookup(name string) Term {
	t, ok := Lookup(name)
	if !ok {
		panic("vocab: unknown term " + name)
	}
	return t
}

// Terms returns all canonical terms sorted by name.
func Terms() []Term {
	out := make([]Term, 0, len(registry))
	for _, t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Phrases returns every multi-word surface form (canonical names and
// synonyms), longest first, for greedy phrase matching in the parser.
func Phrases() []string {
	var out []string
	for name := range registry {
		if strings.Contains(name, " ") {
			out = append(out, name)
		}
	}
	for s := range synonyms {
		if strings.Contains(s, " ") {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := strings.Count(out[i], " "), strings.Count(out[j], " ")
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}

// COCOClasses returns the class terms inside the predefined detector label
// set, sorted by name. This is the whole world visible to the QA-index and
// QD-search baselines' detectors.
func COCOClasses() []string {
	var out []string
	for _, t := range registry {
		if t.Kind == KindClass && t.COCO {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ClosestCOCO maps any class term to the COCO class a predefined detector
// would report for it, or "" if the object is invisible to such detectors.
// Open-world classes degrade to their nearest predefined ancestor: an SUV is
// detected as a "car", a woman as a "person".
func ClosestCOCO(class string) string {
	t, ok := Lookup(class)
	if !ok || t.Kind != KindClass {
		return ""
	}
	if t.COCO {
		return t.Name
	}
	best, bestW := "", float32(0)
	for _, r := range t.Related {
		rt, ok := registry[r.Name]
		if ok && rt.Kind == KindClass && rt.COCO && r.Weight > bestW {
			best, bestW = rt.Name, r.Weight
		}
	}
	return best
}
