package vocab

import (
	"strings"
	"testing"
)

func TestLookupCanonical(t *testing.T) {
	tm, ok := Lookup("car")
	if !ok || tm.Kind != KindClass || !tm.COCO {
		t.Fatalf("car lookup: %+v ok=%v", tm, ok)
	}
}

func TestLookupSynonym(t *testing.T) {
	tm, ok := Lookup("automobile")
	if !ok || tm.Name != "car" {
		t.Fatalf("automobile should resolve to car, got %+v ok=%v", tm, ok)
	}
	tm, ok = Lookup("light-colored")
	if !ok || tm.Name != "light" {
		t.Fatalf("light-colored should resolve to light, got %+v", tm)
	}
}

func TestLookupCaseAndSpace(t *testing.T) {
	tm, ok := Lookup("  SUV ")
	if !ok || tm.Name != "suv" || tm.COCO {
		t.Fatalf("SUV lookup: %+v ok=%v", tm, ok)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("zeppelin"); ok {
		t.Fatal("zeppelin should be unknown")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLookup("nonexistent-term")
}

func TestTermsSortedAndUnique(t *testing.T) {
	terms := Terms()
	if len(terms) < 40 {
		t.Fatalf("expected a substantial vocabulary, got %d terms", len(terms))
	}
	seen := map[string]bool{}
	prev := ""
	for _, tm := range terms {
		if tm.Name <= prev && prev != "" {
			t.Fatalf("terms not sorted: %q after %q", tm.Name, prev)
		}
		if seen[tm.Name] {
			t.Fatalf("duplicate term %q", tm.Name)
		}
		seen[tm.Name] = true
		prev = tm.Name
	}
}

func TestPhrasesLongestFirst(t *testing.T) {
	ph := Phrases()
	if len(ph) == 0 {
		t.Fatal("expected multiword phrases")
	}
	for i := 1; i < len(ph); i++ {
		if strings.Count(ph[i], " ") > strings.Count(ph[i-1], " ") {
			t.Fatalf("phrases not longest-first: %q before %q", ph[i-1], ph[i])
		}
	}
	found := false
	for _, p := range ph {
		if p == "side by side" {
			found = true
		}
	}
	if !found {
		t.Fatal("side by side missing from phrases")
	}
}

func TestCOCOClasses(t *testing.T) {
	classes := COCOClasses()
	want := map[string]bool{"person": true, "car": true, "bus": true, "truck": true, "bicycle": true, "dog": true, "bag": true}
	if len(classes) != len(want) {
		t.Fatalf("COCO classes = %v", classes)
	}
	for _, c := range classes {
		if !want[c] {
			t.Fatalf("unexpected COCO class %q", c)
		}
	}
}

func TestClosestCOCO(t *testing.T) {
	cases := map[string]string{
		"car":    "car",    // already predefined
		"suv":    "car",    // degrades to nearest ancestor
		"woman":  "person", // degrades
		"man":    "person",
		"red":    "", // not a class
		"absent": "", // unknown
	}
	for in, want := range cases {
		if got := ClosestCOCO(in); got != want {
			t.Errorf("ClosestCOCO(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRelatedTermsResolve(t *testing.T) {
	for _, tm := range Terms() {
		for _, r := range tm.Related {
			if _, ok := Lookup(r.Name); !ok {
				t.Errorf("term %q relates to unknown %q", tm.Name, r.Name)
			}
			if r.Weight <= 0 || r.Weight >= 1 {
				t.Errorf("term %q relation weight %v out of (0,1)", tm.Name, r.Weight)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if KindClass.String() != "class" || KindRelation.String() != "relation" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
