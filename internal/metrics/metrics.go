// Package metrics implements the paper's evaluation measures: Average
// Precision over ranked object retrievals with IoU-gated matching
// (Section VII-A).
//
// Matching protocol. Ground truth is track-level (datasets.Instance): a
// physical object satisfying the query during part of its lifetime. A
// ranked result matches an instance when the instance holds a box in the
// result's frame with IoU above the threshold (0.5, the MSCOCO convention
// the paper follows). Each instance counts once as a true positive; a later
// retrieval of an already-matched instance (another genuine sighting of the
// same physical object) is ignored rather than penalised — objects really
// do appear in many frames — but every ignored sighting still consumes a
// slot of the fixed retrieval depth, so systems that "focus on one repeated
// object" lose recall of everything else, which is the diversity pressure
// the paper describes. Boxes that match no instance are false positives.
// AveP is Σ_k Precision@k · rel(k) / R over the non-ignored ranking, the
// discrete area under the precision–recall curve. Callers follow the
// paper's depth protocol by truncating the ranked list to 10× the
// ground-truth count before scoring.
package metrics

import (
	"repro/internal/datasets"
	"repro/internal/video"
)

// Retrieved is one ranked retrieval result, method-agnostic.
type Retrieved struct {
	// VideoID and FrameIdx locate the frame.
	VideoID  int
	FrameIdx int
	// Box is the predicted bounding box.
	Box video.Box
	// Score is the method's ranking score (descending order expected).
	Score float32
}

// DefaultIoU is the positive-match threshold used throughout (MSCOCO).
const DefaultIoU = 0.5

// Label values beyond instance indexes.
const (
	// LabelFP marks a false positive (no instance matched).
	LabelFP = -1
	// LabelDup marks a repeat sighting of an already-matched instance;
	// ignored by precision but still consuming retrieval depth.
	LabelDup = -2
)

// Match labels each result greedily in rank order: the matched instance
// index, LabelFP, or LabelDup.
func Match(results []Retrieved, gt []datasets.Instance, iouThresh float64) []int {
	matched := make([]bool, len(gt))
	labels := make([]int, len(results))
	for ri, r := range results {
		labels[ri] = LabelFP
		bestIoU := iouThresh
		bestInst := -1
		dup := false
		for gi := range gt {
			if gt[gi].VideoID != r.VideoID {
				continue
			}
			gbox, ok := gt[gi].Boxes[r.FrameIdx]
			if !ok {
				continue
			}
			if iou := r.Box.IoU(gbox); iou > bestIoU {
				if matched[gi] {
					dup = true
					continue
				}
				bestIoU = iou
				bestInst = gi
			}
		}
		switch {
		case bestInst >= 0:
			matched[bestInst] = true
			labels[ri] = bestInst
		case dup:
			labels[ri] = LabelDup
		}
	}
	return labels
}

// AveragePrecision computes AveP of a ranked result list against the
// instance set. An empty ground truth yields 0.
func AveragePrecision(results []Retrieved, gt []datasets.Instance, iouThresh float64) float64 {
	if len(gt) == 0 {
		return 0
	}
	labels := Match(results, gt, iouThresh)
	var ap float64
	tp, rank := 0, 0
	for _, l := range labels {
		if l == LabelDup {
			continue
		}
		rank++
		if l >= 0 {
			tp++
			ap += float64(tp) / float64(rank)
		}
	}
	return ap / float64(len(gt))
}

// RecallAtDepth returns the fraction of instances matched within the ranked
// list.
func RecallAtDepth(results []Retrieved, gt []datasets.Instance, iouThresh float64) float64 {
	if len(gt) == 0 {
		return 0
	}
	labels := Match(results, gt, iouThresh)
	tp := 0
	for _, l := range labels {
		if l >= 0 {
			tp++
		}
	}
	return float64(tp) / float64(len(gt))
}

// PrecisionAtK returns the precision of the first k non-ignored results.
func PrecisionAtK(results []Retrieved, gt []datasets.Instance, iouThresh float64, k int) float64 {
	if k <= 0 || len(results) == 0 {
		return 0
	}
	labels := Match(results, gt, iouThresh)
	tp, rank := 0, 0
	for _, l := range labels {
		if l == LabelDup {
			continue
		}
		rank++
		if rank > k {
			break
		}
		if l >= 0 {
			tp++
		}
	}
	if rank > k {
		rank = k
	}
	if rank == 0 {
		return 0
	}
	return float64(tp) / float64(rank)
}

// Depth returns the paper's retrieval depth: 10× the ground-truth count,
// with a small floor so tiny ground truths still rank a list.
func Depth(gt []datasets.Instance) int {
	d := 10 * len(gt)
	if d < 10 {
		d = 10
	}
	return d
}

// Truncate clips results to depth n.
func Truncate(results []Retrieved, n int) []Retrieved {
	if len(results) > n {
		return results[:n]
	}
	return results
}
