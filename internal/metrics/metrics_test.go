package metrics

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/video"
)

func inst(vid int, track int64, frames ...int) datasets.Instance {
	boxes := make(map[int]video.Box, len(frames))
	for _, f := range frames {
		boxes[f] = video.Box{X: 0.4, Y: 0.4, W: 0.1, H: 0.1}
	}
	return datasets.Instance{VideoID: vid, Track: track, Boxes: boxes}
}

func hit(vid, frame int) Retrieved {
	return Retrieved{VideoID: vid, FrameIdx: frame, Box: video.Box{X: 0.4, Y: 0.4, W: 0.1, H: 0.1}}
}

func miss(vid, frame int) Retrieved {
	return Retrieved{VideoID: vid, FrameIdx: frame, Box: video.Box{X: 0.0, Y: 0.0, W: 0.1, H: 0.1}}
}

func TestPerfectRanking(t *testing.T) {
	gt := []datasets.Instance{inst(1, 1, 5), inst(1, 2, 9)}
	// Distinct frames so each result matches a different instance.
	gt[1].Boxes = map[int]video.Box{9: {X: 0.7, Y: 0.7, W: 0.1, H: 0.1}}
	results := []Retrieved{
		hit(1, 5),
		{VideoID: 1, FrameIdx: 9, Box: video.Box{X: 0.7, Y: 0.7, W: 0.1, H: 0.1}},
	}
	if ap := AveragePrecision(results, gt, DefaultIoU); math.Abs(ap-1) > 1e-12 {
		t.Fatalf("perfect AP = %v", ap)
	}
}

func TestEmptyCases(t *testing.T) {
	if AveragePrecision(nil, nil, DefaultIoU) != 0 {
		t.Fatal("empty GT must be 0")
	}
	gt := []datasets.Instance{inst(1, 1, 5)}
	if AveragePrecision(nil, gt, DefaultIoU) != 0 {
		t.Fatal("no results must be 0")
	}
	if RecallAtDepth(nil, nil, DefaultIoU) != 0 {
		t.Fatal("empty recall")
	}
}

func TestDuplicateRetrievalsIgnoredNotPenalised(t *testing.T) {
	gt := []datasets.Instance{inst(1, 1, 5, 6, 7)}
	// Retrieving the same instance three times: the first is a TP, the
	// repeats are genuine sightings and are ignored (they still consume
	// depth, but they are not false positives).
	results := []Retrieved{hit(1, 5), hit(1, 6), hit(1, 7)}
	labels := Match(results, gt, DefaultIoU)
	if labels[0] != 0 || labels[1] != LabelDup || labels[2] != LabelDup {
		t.Fatalf("labels = %v", labels)
	}
	if ap := AveragePrecision(results, gt, DefaultIoU); math.Abs(ap-1) > 1e-12 {
		t.Fatalf("single-instance AP = %v (first hit at rank 1)", ap)
	}
}

func TestDuplicatesStillConsumeDepth(t *testing.T) {
	// Two instances; the ranked list spends its budget re-retrieving the
	// first, so truncation at depth loses the second — the diversity
	// pressure of the protocol.
	gt := []datasets.Instance{inst(1, 1, 5, 6), inst(1, 2, 50)}
	gt[1].Boxes = map[int]video.Box{50: {X: 0.7, Y: 0.7, W: 0.1, H: 0.1}}
	redundant := []Retrieved{hit(1, 5), hit(1, 6)} // depth-2 list wasted on one object
	if r := RecallAtDepth(Truncate(redundant, 2), gt, DefaultIoU); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall = %v want 0.5", r)
	}
}

func TestMissesDepressAP(t *testing.T) {
	gt := []datasets.Instance{inst(1, 1, 5)}
	// TP at rank 3: AP = (1/1) * (1/3).
	results := []Retrieved{miss(1, 5), miss(1, 5), hit(1, 5)}
	if ap := AveragePrecision(results, gt, DefaultIoU); math.Abs(ap-1.0/3) > 1e-12 {
		t.Fatalf("AP = %v want 1/3", ap)
	}
}

func TestIoUThresholdGatesMatch(t *testing.T) {
	gt := []datasets.Instance{inst(1, 1, 5)}
	shifted := Retrieved{VideoID: 1, FrameIdx: 5, Box: video.Box{X: 0.47, Y: 0.4, W: 0.1, H: 0.1}}
	// IoU of a 0.07-shift on a 0.1 box: inter 0.03*0.1, union 0.017 -> ~0.176
	if got := Match([]Retrieved{shifted}, gt, DefaultIoU)[0]; got != -1 {
		t.Fatalf("low-IoU box must not match: %d", got)
	}
	if got := Match([]Retrieved{shifted}, gt, 0.1)[0]; got != 0 {
		t.Fatalf("looser threshold should match: %d", got)
	}
}

func TestVideoIDSeparatesInstances(t *testing.T) {
	gt := []datasets.Instance{inst(2, 1, 5)}
	if got := Match([]Retrieved{hit(1, 5)}, gt, DefaultIoU)[0]; got != -1 {
		t.Fatal("different video must not match")
	}
}

func TestBestIoUWins(t *testing.T) {
	// Two instances in the same frame; the result overlaps both but one
	// better.
	a := datasets.Instance{VideoID: 1, Track: 1, Boxes: map[int]video.Box{5: {X: 0.40, Y: 0.4, W: 0.1, H: 0.1}}}
	b := datasets.Instance{VideoID: 1, Track: 2, Boxes: map[int]video.Box{5: {X: 0.42, Y: 0.4, W: 0.1, H: 0.1}}}
	r := Retrieved{VideoID: 1, FrameIdx: 5, Box: video.Box{X: 0.42, Y: 0.4, W: 0.1, H: 0.1}}
	labels := Match([]Retrieved{r}, []datasets.Instance{a, b}, DefaultIoU)
	if labels[0] != 1 {
		t.Fatalf("should match the better-overlapping instance, got %d", labels[0])
	}
}

func TestRecallAndPrecision(t *testing.T) {
	gt := []datasets.Instance{inst(1, 1, 5), inst(1, 2, 50)}
	gt[1].Boxes = map[int]video.Box{50: {X: 0.7, Y: 0.7, W: 0.1, H: 0.1}}
	results := []Retrieved{
		hit(1, 5),
		miss(1, 5),
		miss(1, 5),
	}
	if r := RecallAtDepth(results, gt, DefaultIoU); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if p := PrecisionAtK(results, gt, DefaultIoU, 1); math.Abs(p-1) > 1e-12 {
		t.Fatalf("p@1 = %v", p)
	}
	if p := PrecisionAtK(results, gt, DefaultIoU, 3); math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("p@3 = %v", p)
	}
	if p := PrecisionAtK(nil, gt, DefaultIoU, 3); p != 0 {
		t.Fatalf("empty p@k = %v", p)
	}
}

func TestDepthProtocol(t *testing.T) {
	if Depth(nil) != 10 {
		t.Fatal("floor")
	}
	gt := []datasets.Instance{inst(1, 1, 1), inst(1, 2, 2), inst(1, 3, 3)}
	if Depth(gt) != 30 {
		t.Fatalf("depth = %d", Depth(gt))
	}
	rs := make([]Retrieved, 50)
	if len(Truncate(rs, 30)) != 30 || len(Truncate(rs, 100)) != 50 {
		t.Fatal("truncate")
	}
}

func TestRankingOrderMatters(t *testing.T) {
	gt := []datasets.Instance{inst(1, 1, 5), inst(1, 2, 50)}
	gt[1].Boxes = map[int]video.Box{50: {X: 0.7, Y: 0.7, W: 0.1, H: 0.1}}
	hit2 := Retrieved{VideoID: 1, FrameIdx: 50, Box: video.Box{X: 0.7, Y: 0.7, W: 0.1, H: 0.1}}
	good := []Retrieved{hit(1, 5), hit2, miss(1, 5)}
	bad := []Retrieved{miss(1, 5), hit(1, 5), hit2}
	if AveragePrecision(good, gt, DefaultIoU) <= AveragePrecision(bad, gt, DefaultIoU) {
		t.Fatal("earlier hits must yield higher AP")
	}
}
