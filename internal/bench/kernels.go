package bench

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/ann/flat"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/mat"
	"repro/internal/quant"
	"repro/internal/vectordb"
)

func init() {
	register("kernels", kernelsExperiment)
}

// kernelsExperiment measures the vectorized scoring kernels against the
// seed's scalar implementations, then the end-to-end effect on query
// latency. Six sections in one table:
//
//   - microkernels: ns/op and allocs/op for Dot, ScoreRows, MatMul, the PQ
//     table build and the batch ADC scan, each against a faithful
//     re-implementation of the pre-kernel scalar code;
//   - tier sweep: mat.ScoreRows over an L1-resident block, avx2 against
//     sse2, at the system's 32d and at a compute-bound 128d — the ≥1.5x
//     avx2-over-sse2 acceptance gate reads the 128d pair, because at 32d
//     the per-row horizontal fold and loop bookkeeping cap what wider
//     lanes can buy, and beyond L1 both tiers converge on cache bandwidth;
//   - flat scan per tier: the stage-1 full scan (score every vector, keep
//     top-k) at several collection sizes, measured once per supported
//     kernel tier (avx2/sse2/neon/purego) against the seed scalar scan —
//     the acceptance gate is ≥2x for the widest tier over the seed; the
//     scan is selection-bound at 32d (top-k heap + threshold gate), so
//     tier-vs-tier gaps converge here by design;
//   - int8 scan: the same flat scan through the recall-gated int8
//     sidecar (quantized sweep + exact shortlist re-score) against the
//     float sweep at the widest tier;
//   - batched scan: ScoreRowsBatch at Q=2/4/8 queries per row pass
//     against Q independent ScoreRows sweeps — the gate is ≥1.3x at Q=8;
//   - end-to-end: p50/p99 query latency of full LOVO systems at several
//     dataset scales and index kinds, all running on the kernel layer.
//
// Reference implementations live in this file so the comparison stays
// runnable after the old code is gone.
func kernelsExperiment(o Options) (*Table, error) {
	t := &Table{
		ID:     "kernels",
		Title:  "Vectorized scoring kernels vs scalar baselines",
		Header: []string{"benchmark", "baseline", "kernels", "speedup", "allocs/op"},
	}

	// Every benchmarked row takes the fastest of `reps` runs: the kernels
	// are deterministic compute, so the minimum is the least
	// noise-contaminated observation — a single 1s run on a shared host
	// swings ±15%, the same order as some of the gaps under measurement.
	// Quick mode (the test suite) keeps one run to stay fast.
	reps := 3
	if o.Quick {
		reps = 1
	}
	bestOfN := func(reps int, fn func(b *testing.B)) (ns float64, allocs int64) {
		ns = math.Inf(1)
		for r := 0; r < reps; r++ {
			res := testing.Benchmark(fn)
			if v := float64(res.T.Nanoseconds()) / float64(res.N); v < ns {
				ns = v
				allocs = res.AllocsPerOp()
			}
		}
		return ns, allocs
	}
	bestOf := func(fn func(b *testing.B)) (ns float64, allocs int64) {
		return bestOfN(reps, fn)
	}

	micro := func(name string, base, opt func(b *testing.B)) (baseNs, optNs float64, allocs int64) {
		baseNs, _ = bestOf(base)
		optNs, allocs = bestOf(opt)
		t.Add(name,
			fmt.Sprintf("%.0fns", baseNs),
			fmt.Sprintf("%.0fns", optNs),
			fmt.Sprintf("%.2fx", baseNs/optNs),
			fmt.Sprintf("%d", allocs))
		return baseNs, optNs, allocs
	}

	// --- Microkernels ---------------------------------------------------
	const dim = 32
	rng := rand.New(rand.NewPCG(o.Seed, 0x6e5))
	randVec := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v
	}

	qv, rv := randVec(dim), randVec(dim)
	micro("dot 32d",
		func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += dotScalarRef(qv, rv)
			}
			_ = s
		},
		func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += mat.Dot(qv, rv)
			}
			_ = s
		})

	const rows = 1024
	block := randVec(dim * rows)
	dst := make([]float32, rows)
	micro(fmt.Sprintf("score %d rows 32d", rows),
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					dst[r] = dotScalarRef(qv, block[r*dim:(r+1)*dim])
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mat.ScoreRows(dst, qv, block, dim)
			}
		})

	ma := &mat.Matrix{Rows: 64, Cols: 64, Data: randVec(64 * 64)}
	mb := &mat.Matrix{Rows: 64, Cols: 64, Data: randVec(64 * 64)}
	mc := mat.NewMatrix(64, 64)
	micro("matmul 64x64",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matMulScalarRef(ma, mb)
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mat.MatMulInto(mc, ma, mb)
			}
		})

	// PQ table build + list scan against the seed's [][]float32 layout.
	pqData := make([]mat.Vec, 256)
	for i := range pqData {
		pqData[i] = mat.UnitGaussianVec(dim, o.Seed+uint64(3000+i))
	}
	pq, err := trainBenchPQ(pqData)
	if err != nil {
		return nil, err
	}
	pqQuery := mat.UnitGaussianVec(dim, o.Seed+11)
	tableBuf := make([]float32, pq.TableLen())
	micro("pq table build",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pqTableRef(pq, pqQuery)
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pq.DotTableInto(tableBuf, pqQuery)
			}
		})

	codes := make([]uint16, 0, rows*pq.P)
	for i := 0; i < rows; i++ {
		codes = append(codes, pq.Encode(pqData[i%len(pqData)])...)
	}
	table := pq.DotTableInto(tableBuf, pqQuery)
	refTable := pqTableRef(pq, pqQuery)
	scanDst := make([]float32, rows)
	micro(fmt.Sprintf("pq scan %d codes", rows),
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					var s float32
					for sp := 0; sp < pq.P; sp++ {
						s += refTable[sp][codes[r*pq.P+sp]]
					}
					scanDst[r] = 0.5 + s
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pq.ApproxDotBatch(scanDst, table, codes, 0.5)
			}
		})

	// --- Stage-1 scoring sweep, avx2 vs sse2 (the ≥1.5x gate) -----------
	// The L1-resident ScoreRows sweep isolates the kernels from top-k
	// selection AND from cache bandwidth: on L2-or-larger blocks both
	// tiers converge toward the load ports, so the lane-width gap only
	// shows whole where the rows stream from L1. 32d is the system's
	// embedding width; 128d is wide enough that the 8 lanes spend their
	// time multiplying rather than folding.
	tiers := mat.KernelTiers()
	widest := tiers[0]
	sweepAVX2OverSSE2 := make(map[int]float64)
	if widest == mat.TierAVX2 {
		for _, kd := range []int{dim, 128} {
			kRows := 32 * 1024 / (4 * kd)
			kblock := randVec(kd * kRows)
			kq := randVec(kd)
			kdst := make([]float32, kRows)
			tierNs := make(map[string]float64, 2)
			for _, tier := range []string{mat.TierSSE2, mat.TierAVX2} {
				prev, err := mat.SetKernelTier(tier)
				if err != nil {
					return nil, err
				}
				// The sweep reps are ~1s each and the tier gap under
				// measurement is the same order as host noise, so these
				// rows get triple the repetitions of the heavier sections.
				ns, _ := bestOfN(3*reps, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						mat.ScoreRows(kdst, kq, kblock, kd)
					}
				})
				if _, err := mat.SetKernelTier(prev); err != nil {
					return nil, err
				}
				tierNs[tier] = ns
			}
			sweepAVX2OverSSE2[kd] = tierNs[mat.TierSSE2] / tierNs[mat.TierAVX2]
			t.Add(fmt.Sprintf("sweep %d rows %dd avx2 vs sse2", kRows, kd),
				fmt.Sprintf("%.0fns", tierNs[mat.TierSSE2]),
				fmt.Sprintf("%.0fns", tierNs[mat.TierAVX2]),
				fmt.Sprintf("%.2fx", sweepAVX2OverSSE2[kd]),
				"0")
		}
	}

	// --- Flat-index full scan, per kernel tier (the ≥2x gate) -----------
	scanSizes := []int{5000, 20000, 80000}
	if o.Quick {
		scanSizes = []int{5000, 20000}
	}
	var scanSpeedups, int8Speedups []float64
	for _, n := range scanSizes {
		ix := flat.New(dim)
		seedIx := &seedFlat{dim: dim}
		v := make(mat.Vec, dim)
		for i := 0; i < n; i++ {
			for d := range v {
				v[d] = float32(rng.NormFloat64())
			}
			mat.Normalize(v)
			if err := ix.Add(int64(i), v); err != nil {
				return nil, err
			}
			seedIx.add(int64(i), v)
		}
		q := mat.Normalize(randVec(dim))
		const k = 100
		baseNs, _ := bestOf(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seedIx.search(q, k)
			}
		})
		tierNs := make(map[string]float64, len(tiers))
		for _, tier := range tiers {
			prev, err := mat.SetKernelTier(tier)
			if err != nil {
				return nil, err
			}
			optNs, optAllocs := bestOf(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ix.Search(q, k, ann.Params{})
				}
			})
			if _, err := mat.SetKernelTier(prev); err != nil {
				return nil, err
			}
			tierNs[tier] = optNs
			t.Add(fmt.Sprintf("flat scan n=%d k=%d [%s]", n, k, tier),
				fmt.Sprintf("%.0fns", baseNs),
				fmt.Sprintf("%.0fns", optNs),
				fmt.Sprintf("%.2fx", baseNs/optNs),
				fmt.Sprintf("%d", optAllocs))
		}
		scanSpeedups = append(scanSpeedups, baseNs/tierNs[widest])

		// int8 sidecar scan at the widest tier: quantized sweep, exact
		// shortlist re-score — recall-gated, so it is compared against the
		// float sweep rather than folded into the bit-identity gate.
		int8Ns, int8Allocs := bestOf(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Search(q, k, ann.Params{Int8: true})
			}
		})
		t.Add(fmt.Sprintf("int8 scan n=%d k=%d [%s]", n, k, widest),
			fmt.Sprintf("%.0fns", tierNs[widest]),
			fmt.Sprintf("%.0fns", int8Ns),
			fmt.Sprintf("%.2fx", tierNs[widest]/int8Ns),
			fmt.Sprintf("%d", int8Allocs))
		int8Speedups = append(int8Speedups, tierNs[widest]/int8Ns)
	}

	// --- Cross-query batched scan ---------------------------------------
	// One ScoreRowsBatch sweep over the block vs Q independent ScoreRows
	// sweeps: same rows touched, 1/Q the memory traffic per query.
	batchRows := 16384
	if o.Quick {
		batchRows = 4096
	}
	batchBlock := randVec(dim * batchRows)
	const maxQ = 8
	batchQs := make([]mat.Vec, maxQ)
	for i := range batchQs {
		batchQs[i] = mat.Normalize(randVec(dim))
	}
	batchDsts := make([][]float32, maxQ)
	for i := range batchDsts {
		batchDsts[i] = make([]float32, batchRows)
	}
	var batch8Speedup float64
	for _, qn := range []int{2, 4, 8} {
		baseNs, optNs, _ := micro(fmt.Sprintf("score batch Q=%d rows=%d [%s]", qn, batchRows, widest),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for qi := 0; qi < qn; qi++ {
						mat.ScoreRows(batchDsts[qi], batchQs[qi], batchBlock, dim)
					}
				}
			},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mat.ScoreRowsBatch(batchDsts[:qn], batchQs[:qn], batchBlock, dim)
				}
			})
		if qn == maxQ {
			batch8Speedup = baseNs / optNs
		}
	}

	// --- End-to-end query latency ---------------------------------------
	scales := []float64{0.5, 1.0}
	kinds := []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIMI}
	if o.Quick {
		scales = []float64{0.5}
	}
	for _, kind := range kinds {
		for _, rel := range scales {
			ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale * rel})
			sys, err := core.New(core.Config{Seed: o.Seed, Index: kind})
			if err != nil {
				return nil, err
			}
			for i := range ds.Videos {
				if err := sys.Ingest(&ds.Videos[i]); err != nil {
					return nil, err
				}
			}
			if err := sys.BuildIndex(); err != nil {
				return nil, err
			}
			queries := 48
			if o.Quick {
				queries = 12
			}
			// Same binary, same systems: the portable kernels stand in for
			// "before" and the SIMD kernels for "after" (both orders are
			// bit-identical, so the answers must agree exactly). One warm
			// pass first so both measured runs see hot caches.
			runOnce := func(simd bool) ([]time.Duration, []*core.Result, error) {
				prev := mat.SetVectorKernels(simd)
				defer mat.SetVectorKernels(prev)
				lat := make([]time.Duration, 0, queries)
				answers := make([]*core.Result, 0, queries)
				for i := 0; i < queries; i++ {
					text := ds.Queries[i%len(ds.Queries)].Text
					start := time.Now()
					res, err := sys.Query(text, core.QueryOptions{Workers: 1})
					if err != nil {
						return nil, nil, err
					}
					lat = append(lat, time.Since(start))
					answers = append(answers, res)
				}
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				return lat, answers, nil
			}
			if _, _, err := runOnce(true); err != nil { // warm-up
				return nil, err
			}
			baseLat, baseAns, err := runOnce(false)
			if err != nil {
				return nil, err
			}
			optLat, optAns, err := runOnce(true)
			if err != nil {
				return nil, err
			}
			for i := range baseAns {
				if len(baseAns[i].Objects) != len(optAns[i].Objects) {
					return nil, fmt.Errorf("kernels: e2e answers diverge between portable and SIMD kernels (query %d)", i)
				}
				for j := range baseAns[i].Objects {
					if baseAns[i].Objects[j] != optAns[i].Objects[j] {
						return nil, fmt.Errorf("kernels: e2e answers diverge between portable and SIMD kernels (query %d, object %d)", i, j)
					}
				}
			}
			p50b, p50o := percentile(baseLat, 0.50), percentile(optLat, 0.50)
			t.Add(fmt.Sprintf("e2e %s n=%d", kind, sys.Entities()),
				fmt.Sprintf("p50=%s p99=%s", ms(p50b), ms(percentile(baseLat, 0.99))),
				fmt.Sprintf("p50=%s p99=%s", ms(p50o), ms(percentile(optLat, 0.99))),
				fmt.Sprintf("%.2fx", float64(p50b)/float64(p50o)),
				"-")
		}
	}

	worst := scanSpeedups[0]
	for _, s := range scanSpeedups[1:] {
		if s < worst {
			worst = s
		}
	}
	t.Note("flat-scan speedup vs seed implementation at the %s tier: min %.2fx across sizes (acceptance gate: >= 2x)", widest, worst)
	if len(sweepAVX2OverSSE2) > 0 {
		t.Note("avx2 over sse2, L1-resident scoring sweep: %.2fx at %dd, %.2fx at 128d (acceptance gate, compute-bound dim: >= 1.5x); the full flat scan converges toward the tiers' shared load-port, cache-bandwidth and selection costs",
			sweepAVX2OverSSE2[dim], dim, sweepAVX2OverSSE2[128])
	}
	int8Parts := make([]string, len(scanSizes))
	for i, n := range scanSizes {
		int8Parts[i] = fmt.Sprintf("%.2fx at n=%d", int8Speedups[i], n)
	}
	t.Note("int8 sidecar scan over %s float sweep: %s — the 4x-smaller sidecar wins once the sweep outgrows cache; below that the shortlist re-score dominates (recall-gated, not bit-identical)",
		widest, strings.Join(int8Parts, ", "))
	t.Note("ScoreRowsBatch at Q=8 over 8 independent sweeps: %.2fx (acceptance gate: >= 1.3x)", batch8Speedup)
	t.Note("kernel reduction order is the canonical 4-lane order (see internal/mat/kernels.go); all query paths share it, so sharded/replicated answers stay byte-identical")
	t.Note("allocs/op column is the kernel path; scan paths allocate only their result slice (pooled scratch + pooled top-k heaps)")
	return t, nil
}

// trainBenchPQ trains the quantizer the micro-section scans.
func trainBenchPQ(data []mat.Vec) (*quant.PQ, error) {
	return quant.TrainPQ(data, 4, 64, 0x6b)
}

// pqTableRef is the seed's DotTable: a [][]float32 with one allocation per
// subspace row and per-centroid scalar dots.
func pqTableRef(pq *quant.PQ, q mat.Vec) [][]float32 {
	table := make([][]float32, pq.P)
	for sp := 0; sp < pq.P; sp++ {
		part := q[sp*pq.SubDim : (sp+1)*pq.SubDim]
		row := make([]float32, len(pq.Codebooks[sp]))
		for m, c := range pq.Codebooks[sp] {
			row[m] = dotScalarRef(part, c)
		}
		table[sp] = row
	}
	return table
}

// dotScalarRef is the seed's mat.Dot: single accumulator, strict serial
// order, as shipped before the kernel layer.
func dotScalarRef(a, b []float32) float32 {
	var s float32
	for i, av := range a {
		//lovo:kernel-ok the bench baseline IS the seed's scalar kernel; replacing it with mat.Dot would benchmark mat against itself
		s += av * b[i]
	}
	return s
}

// matMulScalarRef is the seed's MatMul: naive i-k-j loop with zero skip,
// allocating its result.
func matMulScalarRef(a, b *mat.Matrix) *mat.Matrix {
	out := mat.NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				//lovo:kernel-ok the bench baseline IS the seed's scalar kernel; replacing it with mat.MatMul would benchmark mat against itself
				orow[j] += av * bv
			}
		}
	}
	return out
}

// seedFlat is the seed's flat index: per-row subslice, scalar dot, a fresh
// heap per query.
type seedFlat struct {
	dim  int
	ids  []int64
	data []float32
}

func (ix *seedFlat) add(id int64, v mat.Vec) {
	ix.ids = append(ix.ids, id)
	ix.data = append(ix.data, v...)
}

func (ix *seedFlat) search(q mat.Vec, k int) []mat.Scored {
	top := mat.NewTopK(k)
	for i, id := range ix.ids {
		row := ix.data[i*ix.dim : (i+1)*ix.dim]
		top.Push(id, dotScalarRef(q, row))
	}
	return top.Sorted()
}
