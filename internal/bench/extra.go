package bench

import (
	"fmt"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/vectordb"
)

func init() {
	register("extra-nprobe", extraNProbe)
	register("extra-streaming", extraStreaming)
}

// extraNProbe sweeps Algorithm 1's A parameter (clusters probed per
// subspace): the recall/latency knob behind the paper's "w/o ANNS"
// ablation, measured here as fast-search recall against exhaustive search.
func extraNProbe(o Options) (*Table, error) {
	ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	sys, err := core.New(core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildIndex(); err != nil {
		return nil, err
	}
	col := sys.Collection()

	// Query vectors: a mixture of stored vectors (self-recall) under the
	// benchmark's term mixtures.
	queries := make([]mat.Vec, 0, 16)
	for i := 0; i < 16; i++ {
		queries = append(queries, mat.UnitGaussianVec(32, o.Seed*31+uint64(i)))
	}
	const k = 100
	exact := make([][]mat.Scored, len(queries))
	for i, q := range queries {
		hits, err := col.Search(q, k, ann.Params{Exhaustive: true})
		if err != nil {
			return nil, err
		}
		exact[i] = hits
	}
	t := &Table{
		ID:     "extra-nprobe",
		Title:  "Algorithm 1's A (clusters probed per subspace): recall vs fast-search latency",
		Header: []string{"A", "recall@100", "fast search"},
	}
	probes := []int{2, 4, 8, 16, 32, 64}
	if o.Quick {
		probes = []int{4, 16, 64}
	}
	for _, a := range probes {
		var recall float64
		start := time.Now()
		for i, q := range queries {
			hits, err := col.Search(q, k, ann.Params{NProbe: a})
			if err != nil {
				return nil, err
			}
			want := map[int64]bool{}
			for _, h := range exact[i] {
				want[h.ID] = true
			}
			hit := 0
			for _, h := range hits {
				if want[h.ID] {
					hit++
				}
			}
			if len(exact[i]) > 0 {
				recall += float64(hit) / float64(len(exact[i]))
			}
		}
		avg := time.Since(start) / time.Duration(len(queries))
		t.Add(fmt.Sprintf("%d", a), f3(recall/float64(len(queries))), ms(avg))
	}
	t.Note("expected shape: recall rises monotonically with A toward exhaustive; latency grows with probed volume")
	return t, nil
}

// extraStreaming compares batch indexing with segmented streaming ingest
// (the paper's Section IX future work): per-batch indexing cost must stay
// flat for streaming while accuracy holds.
func extraStreaming(o Options) (*Table, error) {
	ds := datasets.QVHighlights(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	const q = "A white dog inside a car."
	gt := datasets.GroundTruth(ds, queryTerms(q))
	depth := metrics.Depth(gt)

	t := &Table{
		ID:     "extra-streaming",
		Title:  "Batch rebuild vs segmented streaming ingest",
		Header: []string{"mode", "index ops", "total index time", "max single build", "AveP"},
	}

	run := func(label string, streaming bool) error {
		cfg := core.Config{Seed: o.Seed, Streaming: streaming, SegmentSize: 400}
		sys, err := core.New(cfg)
		if err != nil {
			return err
		}
		var totalIdx, maxIdx time.Duration
		ops := 0
		prev := time.Duration(0)
		for i := range ds.Videos {
			if err := sys.Ingest(&ds.Videos[i]); err != nil {
				return err
			}
			// Batch mode pays a full rebuild to stay queryable after
			// each arriving video; streaming just seals.
			if err := sys.BuildIndex(); err != nil {
				return err
			}
			ops++
			step := sys.Stats().Indexing - prev
			prev = sys.Stats().Indexing
			totalIdx += step
			if step > maxIdx {
				maxIdx = step
			}
		}
		res, err := sys.Query(q, core.QueryOptions{FastK: 3 * depth, TopN: 40, RerankFrames: 40})
		if err != nil {
			return err
		}
		retrieved := make([]metrics.Retrieved, 0, len(res.Objects))
		for _, obj := range res.Objects {
			retrieved = append(retrieved, metrics.Retrieved{
				VideoID: obj.VideoID, FrameIdx: obj.FrameIdx, Box: obj.Box, Score: obj.Score,
			})
		}
		ap := metrics.AveragePrecision(metrics.Truncate(retrieved, depth), gt, metrics.DefaultIoU)
		t.Add(label, fmt.Sprintf("%d", ops), secs(totalIdx), secs(maxIdx), f3(ap))
		return nil
	}
	if err := run("batch (full rebuild per arrival)", false); err != nil {
		return nil, err
	}
	if err := run("streaming (seal per arrival)", true); err != nil {
		return nil, err
	}
	t.Note("expected shape: streaming's total and per-arrival indexing cost undercut repeated full rebuilds at equal accuracy")
	return t, nil
}

var _ = vectordb.IndexIMI // keep import stable if experiments change
