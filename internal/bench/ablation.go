package bench

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/vectordb"
)

func init() {
	register("table4", table4Ablation)
	register("table5", table5ANNVariants)
	register("table7", table7ActivityNet)
}

// ablationCase is one (dataset, query) cell column of Table IV.
type ablationCase struct {
	dsName string
	qID    string
	text   string
}

// table4Ablation regenerates Table IV: accuracy and stage latency of LOVO
// with the rerank, ANNS and keyframe modules removed in turn.
func table4Ablation(o Options) (*Table, error) {
	city := datasets.Cityscapes(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	bel := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	byName := map[string]*datasets.Dataset{"cityscapes": city, "bellevue": bel}
	cases := []ablationCase{
		{"cityscapes", "Q1.1", "A person walking on the street."},
		{"cityscapes", "Q1.2", "A person in light-colored clothing walking while holding a dark bag."},
		{"bellevue", "Q2.1", "A red car driving in the center of the road."},
		{"bellevue", "Q2.2", "A red car side by side with another car, both positioned in the center of the road."},
	}
	if o.Quick {
		cases = []ablationCase{cases[0], cases[3]}
	}
	variants := []*LOVOMethod{
		{Seed: o.Seed, Label: "LOVO"},
		{Seed: o.Seed, Label: "w/o Rerank", NoRerank: true},
		{Seed: o.Seed, Label: "w/o ANNS", NoANNS: true},
		{Seed: o.Seed, Label: "w/o Keyframe", NoKeyframe: true},
	}
	t := &Table{
		ID:     "table4",
		Title:  "Ablation: AveP and stage latency",
		Header: []string{"variant", "metric"},
	}
	for _, c := range cases {
		t.Header = append(t.Header, c.qID)
	}
	type cell struct {
		ap           float64
		fast, rerank time.Duration
	}
	results := make(map[string][]cell)
	for _, v := range variants {
		// Prepare per dataset once.
		prepared := map[string]*LOVOMethod{}
		for name, ds := range byName {
			m := &LOVOMethod{Seed: v.Seed, Label: v.Label, NoRerank: v.NoRerank, NoANNS: v.NoANNS, NoKeyframe: v.NoKeyframe}
			if _, err := m.Prepare(ds); err != nil {
				return nil, err
			}
			prepared[name] = m
		}
		for _, c := range cases {
			ds := byName[c.dsName]
			m := prepared[c.dsName]
			gt := datasets.GroundTruth(ds, queryTerms(c.text))
			res, _, err := m.Query(c.text, metrics.Depth(gt))
			if err != nil {
				return nil, err
			}
			last := m.LastResult()
			results[v.Label] = append(results[v.Label], cell{
				ap:   metrics.AveragePrecision(res, gt, metrics.DefaultIoU),
				fast: last.FastSearch, rerank: last.Rerank,
			})
		}
	}
	for _, v := range variants {
		cells := results[v.Label]
		apRow := []string{v.Label, "AveP"}
		fastRow := []string{"", "fast search"}
		rerankRow := []string{"", "rerank"}
		for _, c := range cells {
			apRow = append(apRow, f3(c.ap))
			fastRow = append(fastRow, ms(c.fast))
			if v.NoRerank {
				rerankRow = append(rerankRow, "-")
			} else {
				rerankRow = append(rerankRow, ms(c.rerank))
			}
		}
		t.Add(apRow...)
		t.Add(fastRow...)
		t.Add(rerankRow...)
	}
	t.Note("expected shape: w/o rerank drops AveP most on the relation query (Q2.2); w/o ANNS inflates fast search; w/o keyframe inflates fast search and storage")
	return t, nil
}

// table5ANNVariants regenerates Table V: LOVO under brute-force, IVF-PQ and
// HNSW indexes on the Cityscapes queries.
func table5ANNVariants(o Options) (*Table, error) {
	ds := datasets.Cityscapes(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	queries := ds.Queries
	if o.Quick {
		queries = queries[:2]
	}
	variants := []*LOVOMethod{
		{Seed: o.Seed, Label: "LOVO(BF)", Index: vectordb.IndexFlat},
		{Seed: o.Seed, Label: "LOVO(IVF-PQ)", Index: vectordb.IndexIVFPQ},
		{Seed: o.Seed, Label: "LOVO(HNSW)", Index: vectordb.IndexHNSW},
	}
	t := &Table{
		ID:     "table5",
		Title:  "ANN variants: AveP / search(s) / total(s)",
		Header: []string{"variant", "metric"},
	}
	for _, q := range queries {
		t.Header = append(t.Header, q.ID)
	}
	for _, v := range variants {
		prep, err := v.Prepare(ds)
		if err != nil {
			return nil, err
		}
		apRow := []string{v.Label, "AveP"}
		searchRow := []string{"", "search"}
		totalRow := []string{"", "total"}
		for _, q := range queries {
			gt := datasets.GroundTruth(ds, queryTerms(q.Text))
			res, d, err := v.Query(q.Text, metrics.Depth(gt))
			if err != nil {
				return nil, err
			}
			apRow = append(apRow, f3(metrics.AveragePrecision(res, gt, metrics.DefaultIoU)))
			searchRow = append(searchRow, secs(d))
			totalRow = append(totalRow, secs(prep+d))
		}
		t.Add(apRow...)
		t.Add(searchRow...)
		t.Add(totalRow...)
	}
	t.Note("expected shape: BF highest accuracy / slowest search; HNSW fastest search; IVF-PQ balanced with smallest memory")
	return t, nil
}

// table7ActivityNet regenerates Table VII: LOVO on the ActivityNet-QA
// extension queries.
func table7ActivityNet(o Options) (*Table, error) {
	ds := datasets.ActivityNetQA(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	lovo := NewLOVO(o.Seed)
	prep, err := lovo.Prepare(ds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table7",
		Title:  "ActivityNet-QA extension: LOVO accuracy and latency",
		Header: []string{"metric"},
	}
	for _, q := range ds.Queries {
		t.Header = append(t.Header, q.ID)
	}
	apRow := []string{"AveP"}
	searchRow := []string{"search(s)"}
	totalRow := []string{"total(s)"}
	for _, q := range ds.Queries {
		gt := datasets.GroundTruth(ds, queryTerms(q.Text))
		res, d, err := lovo.Query(q.Text, metrics.Depth(gt))
		if err != nil {
			return nil, err
		}
		apRow = append(apRow, f3(metrics.AveragePrecision(res, gt, metrics.DefaultIoU)))
		searchRow = append(searchRow, secs(d))
		totalRow = append(totalRow, secs(prep+d))
	}
	t.Add(apRow...)
	t.Add(searchRow...)
	t.Add(totalRow...)
	t.Note("expected shape: LOVO answers question-style queries with high AveP")
	return t, nil
}
