package bench

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/ann"
	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/vectordb"
	"repro/internal/video"
	"repro/internal/xmodal"
)

func init() {
	register("fig10", fig10Scalability)
	register("fig11a", fig11aProcessing)
	register("fig11b", fig11bIndexScale)
	register("fig11c", fig11cPerEntity)
	register("fig11d", fig11dRerank)
}

// fig10Scalability regenerates Fig. 10: total execution and query search
// time versus dataset duration for VOCAL, MIRIS, FiGO and LOVO.
func fig10Scalability(o Options) (*Table, error) {
	scales := []float64{0.5, 1, 2, 4}
	if o.Quick {
		scales = []float64{0.5, 1.5}
	}
	t := &Table{
		ID:    "fig10",
		Title: "Scalability vs video duration (seconds)",
		Header: []string{"duration(s)",
			"VOCAL total", "MIRIS total", "FiGO total", "LOVO total",
			"VOCAL search", "MIRIS search", "FiGO search", "LOVO search"},
	}
	const q = "A red car driving in the center of the road."
	for _, sc := range scales {
		ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale * sc})
		methods := []baselines.Method{
			baselines.NewVOCAL(), baselines.NewMIRIS(), baselines.NewFiGO(), NewLOVO(o.Seed),
		}
		var totals, searches []string
		for _, m := range methods {
			prep, err := m.Prepare(ds)
			if err != nil {
				return nil, err
			}
			_, s, err := m.Query(q, 100)
			if err != nil {
				return nil, err
			}
			totals = append(totals, secs(prep+s))
			searches = append(searches, secs(s))
		}
		row := []string{fmt.Sprintf("%.0f", ds.Duration())}
		row = append(row, totals...)
		row = append(row, searches...)
		t.Add(row...)
	}
	t.Note("expected shape: QD-search times grow with duration; LOVO search stays near-flat")
	return t, nil
}

// fig11aProcessing regenerates Fig. 11(a): processing time versus frame
// count, expecting a linear relationship (constant per-frame cost).
func fig11aProcessing(o Options) (*Table, error) {
	scales := []float64{0.5, 1, 2, 4}
	if o.Quick {
		scales = []float64{0.5, 1.5}
	}
	t := &Table{
		ID:     "fig11a",
		Title:  "Processing time vs frame count",
		Header: []string{"frames", "processing(s)", "ms/frame"},
	}
	var perFrame []float64
	for _, sc := range scales {
		ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale * sc})
		lovo := NewLOVO(o.Seed)
		if _, err := lovo.Prepare(ds); err != nil {
			return nil, err
		}
		st := lovo.System().Stats()
		pf := st.Processing.Seconds() * 1000 / float64(st.Frames)
		perFrame = append(perFrame, pf)
		t.Add(fmt.Sprintf("%d", st.Frames), secs(st.Processing), fmt.Sprintf("%.3f", pf))
	}
	t.Note("expected shape: ms/frame roughly constant (paper: ~0.08 s/frame on GPU encoders)")
	_ = perFrame
	return t, nil
}

// fig11bIndexScale regenerates Fig. 11(b): index size and fast-search time
// versus inserted entities.
func fig11bIndexScale(o Options) (*Table, error) {
	sizes := []int{5_000, 20_000, 60_000, 120_000}
	if o.Quick {
		sizes = []int{2_000, 8_000}
	}
	t := &Table{
		ID:     "fig11b",
		Title:  "Index scale: entities vs storage and fast-search time",
		Header: []string{"entities", "data size (MB)", "search time"},
	}
	const dim = 32
	rng := rand.New(rand.NewPCG(o.Seed, 0xf11b))
	centers := make([]mat.Vec, 64)
	for i := range centers {
		centers[i] = mat.UnitGaussianVec(dim, uint64(i)+o.Seed*17)
	}
	for _, n := range sizes {
		db := vectordb.New()
		col, err := db.CreateCollection("patches", vectordb.Schema{Dim: dim, Normalize: true})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v := mat.Clone(centers[i%len(centers)])
			for d := range v {
				v[d] += float32(rng.NormFloat64() * 0.2)
			}
			if err := col.Insert(int64(i+1), v); err != nil {
				return nil, err
			}
		}
		if err := col.BuildIndex(vectordb.IndexIMI, vectordb.IndexOptions{P: 4, M: 64, KeepRaw: true, Seed: o.Seed}); err != nil {
			return nil, err
		}
		st := col.Stats()
		// Average fast-search latency over a query batch.
		const queries = 20
		start := time.Now()
		for qi := 0; qi < queries; qi++ {
			if _, err := col.Search(centers[qi%len(centers)], 100, ann.Params{NProbe: 8}); err != nil {
				return nil, err
			}
		}
		avg := time.Since(start) / queries
		mb := float64(st.RawBytes+st.IndexBytes) / (1 << 20)
		t.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", mb), ms(avg))
	}
	t.Note("expected shape: storage grows linearly; search time stays well below 1 s")
	return t, nil
}

// fig11cPerEntity regenerates Fig. 11(c): fast-search time per stored
// entity for each dataset.
func fig11cPerEntity(o Options) (*Table, error) {
	dss := datasets.All(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	t := &Table{
		ID:     "fig11c",
		Title:  "Fast-search time per entity per dataset",
		Header: []string{"dataset", "entities", "fast search", "us/entity"},
	}
	for _, ds := range dss {
		lovo := NewLOVO(o.Seed)
		if _, err := lovo.Prepare(ds); err != nil {
			return nil, err
		}
		var fast time.Duration
		n := 0
		queries := ds.Queries
		if o.Quick {
			queries = queries[:1]
		}
		for _, q := range queries {
			if _, _, err := lovo.Query(q.Text, 100); err != nil {
				return nil, err
			}
			fast += lovo.LastResult().FastSearch
			n++
		}
		avg := fast / time.Duration(n)
		entities := lovo.System().Collection().Len()
		perEntity := float64(avg.Nanoseconds()) / 1000 / float64(entities)
		t.Add(ds.Name, fmt.Sprintf("%d", entities), ms(avg), fmt.Sprintf("%.4f", perEntity))
	}
	t.Note("expected shape: per-entity time flat across datasets (paper: ~1e-4 s/object scale)")
	return t, nil
}

// fig11dRerank regenerates Fig. 11(d): cross-modality rerank time versus
// the number of objects examined.
func fig11dRerank(o Options) (*Table, error) {
	counts := []int{200, 500, 1000, 2000}
	if o.Quick {
		counts = []int{100, 300}
	}
	t := &Table{
		ID:     "fig11d",
		Title:  "Rerank time vs objects examined",
		Header: []string{"objects", "rerank time", "ms/keyframe"},
	}
	space := embed.NewSpace(64, 32, o.Seed)
	model := xmodal.New(space, xmodal.Config{Seed: o.Seed})
	text := &embed.TextEncoder{Space: space}
	toks := text.Tokens(query.Parse("A red car driving in the center of the road."))
	const objectsPerFrame = 5
	for _, n := range counts {
		frames := n / objectsPerFrame
		start := time.Now()
		for fi := 0; fi < frames; fi++ {
			f := syntheticFrame(fi, objectsPerFrame)
			model.GroundFrame(f, toks)
		}
		d := time.Since(start)
		t.Add(fmt.Sprintf("%d", n), secs(d), fmt.Sprintf("%.2f", d.Seconds()*1000/float64(frames)))
	}
	t.Note("expected shape: rerank time grows ~linearly with objects; ms/keyframe roughly constant")
	return t, nil
}

// syntheticFrame builds a deterministic frame with n objects for the rerank
// sweep.
func syntheticFrame(idx, n int) *video.Frame {
	f := &video.Frame{VideoID: 1, Index: idx, Context: []string{"road"}}
	colors := []string{"red", "black", "white", "blue", "grey"}
	for i := 0; i < n; i++ {
		f.Objects = append(f.Objects, video.Object{
			Track: int64(idx*1000 + i),
			Class: "car",
			Attrs: []string{colors[(idx+i)%len(colors)]},
			Box: video.Box{
				X: 0.05 + 0.18*float64(i%5),
				Y: 0.2 + 0.15*float64(i/5),
				W: 0.12, H: 0.08,
			},
			Behaviors: []string{"driving"},
		})
	}
	return f
}
