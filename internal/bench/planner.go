package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/server"
)

func init() {
	register("planner", plannerBench)
	register("cachesweep", cacheSweep)
}

// p50 returns the median of a latency sample.
func p50(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// plannerBench compares the fixed default knobs against accuracy-bounded
// planning: per-query p50 latency and measured stage-1 recall (against the
// exact-search ground truth) for each mode. The reproduction target is the
// tentpole's claim — at equal or better measured recall, the planner's
// chosen plans answer faster than the fixed knobs, because calibration lets
// it buy only as much index effort and rerank width as the bound needs.
func plannerBench(o Options) (*Table, error) {
	ds := datasets.QVHighlights(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	sys, err := core.New(core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildIndex(); err != nil {
		return nil, err
	}
	texts := make([]string, 0, len(ds.Queries))
	for _, q := range ds.Queries {
		texts = append(texts, q.Text)
	}
	reps := 9
	if o.Quick {
		reps = 3
	}

	t := &Table{
		ID:     "planner",
		Title:  "Fixed knobs vs accuracy-bounded planning: p50 latency at measured stage-1 recall",
		Header: []string{"mode", "plan kinds", "p50 latency", "measured recall"},
	}
	type mode struct {
		label string
		opts  core.QueryOptions
	}
	modes := []mode{
		{"fixed defaults", core.QueryOptions{}},
		{"min_recall=0.80", core.QueryOptions{MinRecall: 0.80}},
		{"min_recall=0.90", core.QueryOptions{MinRecall: 0.90}},
		{"min_recall=0.99", core.QueryOptions{MinRecall: 0.99}},
		{"exhaustive", core.QueryOptions{Exhaustive: true}},
	}
	var fixedP50 time.Duration
	var fixedRecall float64
	var bestBounded string
	for _, m := range modes {
		// Resolve plans once up front: calibration (first bounded plan) is
		// an ingest-time cost, not a per-query one, and must not pollute
		// the latency sample.
		kinds := map[string]bool{}
		var recall float64
		for _, text := range texts {
			plan, err := sys.PlanQuery(text, m.opts)
			if err != nil {
				return nil, err
			}
			kinds[string(plan.Kind)] = true
			r, err := sys.StageRecall(text, plan)
			if err != nil {
				return nil, err
			}
			recall += r
		}
		recall /= float64(len(texts))
		var lats []time.Duration
		for rep := 0; rep < reps; rep++ {
			for _, text := range texts {
				start := time.Now()
				if _, err := sys.Query(text, m.opts); err != nil {
					return nil, err
				}
				lats = append(lats, time.Since(start))
			}
		}
		kindList := make([]string, 0, len(kinds))
		for k := range kinds {
			kindList = append(kindList, k)
		}
		sort.Strings(kindList)
		med := p50(lats)
		t.Add(m.label, strings.Join(kindList, ","), ms(med), f3(recall))
		if m.label == "fixed defaults" {
			fixedP50, fixedRecall = med, recall
		} else if m.opts.MinRecall > 0 && bestBounded == "" &&
			recall >= fixedRecall && med < fixedP50 {
			bestBounded = fmt.Sprintf("%s: p50 %s vs fixed %s at recall %.3f >= %.3f",
				m.label, ms(med), ms(fixedP50), recall, fixedRecall)
		}
	}
	if bestBounded != "" {
		t.Note("bounded planning beats fixed knobs at equal-or-better measured recall — %s", bestBounded)
	} else {
		t.Note("no bounded mode beat the fixed knobs at equal measured recall on this workload")
	}
	t.Note("expected shape: lower bounds buy latency with recall; exhaustive is the recall-1 cost ceiling")
	return t, nil
}

// cacheSweep replays a Zipfian query mix against the serving tier's LRU to
// pick the default -cache size: the smallest capacity whose hit rate sits
// within two points of the largest swept cache. Distinct logical queries are
// minted by suffixing a base query with an out-of-vocabulary token ("#37"),
// which changes the cache key but not the recognised terms.
func cacheSweep(o Options) (*Table, error) {
	ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale * 0.5})
	sys, err := core.New(core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildIndex(); err != nil {
		return nil, err
	}

	// The query universe: distinct keys over a handful of base texts, ranked
	// by Zipfian popularity — the head queries dominate, the tail churns.
	const universe = 512
	queries := make([]string, universe)
	for i := range queries {
		queries[i] = fmt.Sprintf("%s #%d", ds.Queries[i%len(ds.Queries)].Text, i)
	}
	requests := 4000
	if o.Quick {
		requests = 400
	}

	t := &Table{
		ID:     "cachesweep",
		Title:  "LRU result-cache sweep under a Zipfian query mix",
		Header: []string{"cache size", "hit rate", "misses", "evictions", "total time"},
	}
	sizes := []int{0, 16, 32, 64, 128, 256, 512}
	if o.Quick {
		sizes = []int{0, 32, 128, 512}
	}
	type point struct {
		size int
		rate float64
	}
	var points []point
	for _, size := range sizes {
		srv := server.New(sys, server.Config{CacheSize: size, Shards: 1})
		// One deterministic Zipfian replay per size: same seed, same mix.
		zipf := rand.NewZipf(rand.New(rand.NewSource(int64(o.Seed)+1)), 1.07, 1, universe-1)
		start := time.Now()
		for i := 0; i < requests; i++ {
			body, _ := json.Marshal(map[string]any{"query": queries[zipf.Uint64()]})
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return nil, fmt.Errorf("cachesweep: /query status %d: %s", rec.Code, rec.Body.String())
			}
		}
		elapsed := time.Since(start)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		var st server.StatsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			return nil, err
		}
		cs := st.Cache
		rate := float64(cs.Hits) / float64(requests)
		points = append(points, point{size, rate})
		t.Add(fmt.Sprintf("%d", size), f3(rate),
			fmt.Sprintf("%d", cs.Misses), fmt.Sprintf("%d", cs.Evicted), secs(elapsed))
	}
	best := points[len(points)-1].rate
	for _, p := range points {
		if p.size > 0 && p.rate >= best-0.02 {
			t.Note("recommended default: -cache %d (hit rate %.3f, within 2 points of the %.3f ceiling)",
				p.size, p.rate, best)
			break
		}
	}
	t.Note("expected shape: hit rate climbs steeply while the cache covers the Zipf head, then flattens")
	return t, nil
}
