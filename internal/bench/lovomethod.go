package bench

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/vectordb"
)

// LOVOMethod adapts a core.System to the baselines.Method interface so the
// harness can drive every system uniformly. Variant fields select the
// ablations of Table IV and the ANN variants of Table V.
type LOVOMethod struct {
	// Label overrides the method name ("LOVO(BF)").
	Label string
	// Index selects the vector index (default IMI).
	Index vectordb.IndexKind
	// NoRerank disables stage 2.
	NoRerank bool
	// NoANNS forces exhaustive search.
	NoANNS bool
	// NoKeyframe indexes every frame.
	NoKeyframe bool
	// Seed drives the system.
	Seed uint64
	// FastK overrides the candidate depth.
	FastK int

	sys  *core.System
	last *core.Result
}

var _ baselines.Method = (*LOVOMethod)(nil)

// NewLOVO returns the standard configuration.
func NewLOVO(seed uint64) *LOVOMethod { return &LOVOMethod{Seed: seed} }

// Name implements baselines.Method.
func (l *LOVOMethod) Name() string {
	if l.Label != "" {
		return l.Label
	}
	return "LOVO"
}

// Prepare implements baselines.Method: one-time Video Summary + indexing.
func (l *LOVOMethod) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	cfg := core.Config{Seed: l.Seed, FastK: l.FastK}
	if l.Index != "" {
		cfg.Index = l.Index
	}
	if l.NoKeyframe {
		cfg.Keyframe = keyframe.All{}
	}
	sys, err := core.New(cfg)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			return 0, err
		}
	}
	if err := sys.BuildIndex(); err != nil {
		return 0, err
	}
	l.sys = sys
	return time.Since(start), nil
}

// Supports implements baselines.Method: open vocabulary.
func (l *LOVOMethod) Supports(text string) bool {
	return len(query.Parse(text).Terms) > 0
}

// Query implements baselines.Method. Retrieval budgets scale with the
// requested depth (the paper's 10×-ground-truth protocol): broader queries
// get a deeper fast search and a larger rerank window.
func (l *LOVOMethod) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	fastK := l.FastK
	if fastK == 0 {
		fastK = 3 * depth
		if fastK < 250 {
			fastK = 250
		}
		if fastK > 600 {
			fastK = 600
		}
	}
	rerankFrames := depth / 2
	if rerankFrames < 16 {
		rerankFrames = 16
	}
	if rerankFrames > 40 {
		rerankFrames = 40
	}
	res, err := l.sys.Query(text, core.QueryOptions{
		DisableRerank: l.NoRerank,
		Exhaustive:    l.NoANNS,
		FastK:         fastK,
		TopN:          rerankFrames,
		RerankFrames:  rerankFrames,
	})
	if err != nil {
		return nil, 0, err
	}
	l.last = res
	out := make([]metrics.Retrieved, 0, len(res.Objects))
	for _, o := range res.Objects {
		out = append(out, metrics.Retrieved{
			VideoID: o.VideoID, FrameIdx: o.FrameIdx, Box: o.Box, Score: o.Score,
		})
	}
	out = metrics.Truncate(out, depth)
	return out, res.Total(), nil
}

// LastResult exposes the stage timings of the most recent query.
func (l *LOVOMethod) LastResult() *core.Result { return l.last }

// System exposes the underlying system (stats).
func (l *LOVOMethod) System() *core.System { return l.sys }
