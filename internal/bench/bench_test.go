package bench

import (
	"strings"
	"testing"
)

// quickOpts shrinks every sweep for fast unit runs.
var quickOpts = Options{Seed: 7, Quick: true, Scale: 0.05}

func TestExperimentsRegistered(t *testing.T) {
	want := []string{
		"fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11a", "fig11b", "fig11c", "fig11d",
		"table3", "table4", "table5", "table7",
		"throughput", "sharding", "replication", "kernels",
		"streamingserve",
	}
	have := Experiments()
	set := map[string]bool{}
	for _, n := range have {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("experiment %q missing (have %v)", w, have)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", quickOpts); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tbl.Add("1", "2")
	tbl.Note("note %d", 7)
	out := tbl.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// The smoke tests below run each experiment at tiny scale and assert the
// structural and (where stable) directional properties the paper reports.

func TestFig2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system comparison too slow for -short")
	}
	tbl, err := Run("fig2", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// QA-index must be unsupported beyond simple; vision-based supports
	// everything.
	var qa, vision []string
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "QA-index") {
			qa = row
		}
		if strings.HasPrefix(row[0], "Vision-based") {
			vision = row
		}
	}
	if qa[2] != "unsupported" || qa[3] != "unsupported" {
		t.Errorf("QA-index should be unsupported beyond simple: %v", qa)
	}
	if qa[1] == "unsupported" {
		t.Errorf("QA-index should answer simple queries: %v", qa)
	}
	for _, c := range vision[1:] {
		if c == "unsupported" {
			t.Errorf("vision-based must support all grades: %v", vision)
		}
	}
}

func TestFig6LOVOWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full baseline sweep too slow for -short")
	}
	tbl, err := Run("fig6", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "best-or-tied") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing win-rate note")
	}
}

func TestFig8SearchOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline latency sweep too slow for -short")
	}
	tbl, err := Run("fig8", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig9Runs(t *testing.T) {
	tbl, err := Run("fig9", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || len(tbl.Header) != 4 {
		t.Fatalf("shape: %d rows, %d cols", len(tbl.Rows), len(tbl.Header))
	}
}

func TestFig11bStorageGrows(t *testing.T) {
	tbl, err := Run("fig11b", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatal("need at least two sizes")
	}
}

func TestThroughputStructure(t *testing.T) {
	// Cap the sweep at 2 workers so the smoke run stays fast everywhere.
	opts := quickOpts
	opts.Workers = 2
	tbl, err := Run("throughput", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two stages (query, ingest) × the {1, 2} worker sweep.
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[0] != "query" && row[0] != "ingest" {
			t.Fatalf("unknown stage %q", row[0])
		}
	}
	// The 1-worker baseline rows must report speedup 1.00x.
	if tbl.Rows[0][5] != "1.00x" || tbl.Rows[2][5] != "1.00x" {
		t.Fatalf("baseline speedup rows: %v / %v", tbl.Rows[0], tbl.Rows[2])
	}
}

func TestTable4AblationStructure(t *testing.T) {
	tbl, err := Run("table4", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// 4 variants × 3 metric rows.
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The w/o-rerank variant reports no rerank time.
	for i, row := range tbl.Rows {
		if row[0] == "w/o Rerank" {
			rerankRow := tbl.Rows[i+2]
			if rerankRow[2] != "-" {
				t.Fatalf("w/o Rerank must have no rerank time: %v", rerankRow)
			}
		}
	}
}

func TestTable5Structure(t *testing.T) {
	tbl, err := Run("table5", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 { // 3 variants × 3 metrics
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTable7Structure(t *testing.T) {
	tbl, err := Run("table7", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || len(tbl.Header) != 5 {
		t.Fatalf("shape: %d rows, %d cols", len(tbl.Rows), len(tbl.Header))
	}
}

func TestKernelsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("kernels experiment is slow")
	}
	tbl, err := Run("kernels", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Microkernels + flat scans + e2e rows; the exact speedups are
	// hardware- and noise-dependent, so assert structure and surface the
	// measured factors, and require the e2e verification note set.
	var scans, e2e int
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "flat scan") {
			scans++
		}
		if strings.HasPrefix(row[0], "e2e") {
			e2e++
		}
		t.Logf("%s: baseline=%s kernels=%s speedup=%s", row[0], row[1], row[2], row[3])
	}
	if scans < 2 || e2e < 1 {
		t.Fatalf("missing sections: %d flat scans, %d e2e rows", scans, e2e)
	}
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "2x") {
		t.Fatalf("missing speedup-gate note: %v", tbl.Notes)
	}
}

func TestShardingStructure(t *testing.T) {
	tbl, err := Run("sharding", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode sweeps shard counts {1, 2}.
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[1][0] != "2" {
		t.Fatalf("shard sweep: %v / %v", tbl.Rows[0], tbl.Rows[1])
	}
	// The 1-shard baseline row must report speedup 1.00x.
	if tbl.Rows[0][7] != "1.00x" {
		t.Fatalf("baseline speedup: %v", tbl.Rows[0])
	}
}

func TestReplicationStructure(t *testing.T) {
	tbl, err := Run("replication", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode sweeps replica counts {1, 2}; the experiment itself
	// verifies every row answers byte-identically to the R=1 baseline.
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[1][0] != "2" {
		t.Fatalf("replica sweep: %v / %v", tbl.Rows[0], tbl.Rows[1])
	}
	if tbl.Rows[0][7] != "1.00x" {
		t.Fatalf("baseline speedup: %v", tbl.Rows[0])
	}
}

func TestStreamingServeStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("two engines plus timed phases too slow for -short")
	}
	tbl, err := Run("streamingserve", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Four phases: streaming/batch x steady/under-ingest. The p99 ratio is
	// not asserted — it is scheduling-sensitive (see the experiment notes);
	// the no-blocking property is pinned by the vectordb regression tests.
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	wantLabels := []string{"streaming steady", "streaming under ingest", "batch steady", "batch rebuild under ingest"}
	for i, w := range wantLabels {
		if tbl.Rows[i][0] != w {
			t.Fatalf("row %d label %q, want %q", i, tbl.Rows[i][0], w)
		}
	}
	for _, i := range []int{0, 2} {
		if tbl.Rows[i][6] != "1.00x" {
			t.Fatalf("steady row %d ratio %q, want 1.00x", i, tbl.Rows[i][6])
		}
	}
}

func TestPlannerBenchStructure(t *testing.T) {
	tbl, err := Run("planner", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed, three bounds, exhaustive.
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "fixed defaults" || tbl.Rows[0][1] != "fixed" {
		t.Fatalf("fixed baseline row: %v", tbl.Rows[0])
	}
	// The exhaustive ceiling measures recall 1 by construction.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "exhaustive" || last[3] != "1.000" {
		t.Fatalf("exhaustive row: %v", last)
	}
	// Bounded rows plan adaptively, never via the fixed path.
	for _, row := range tbl.Rows[1:4] {
		if !strings.Contains(row[1], "adaptive") {
			t.Fatalf("bounded mode %q planned %q, want adaptive", row[0], row[1])
		}
	}
	if len(tbl.Notes) == 0 {
		t.Fatal("missing planner-vs-fixed note")
	}
}

func TestCacheSweepStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("cache replay too slow for -short")
	}
	tbl, err := Run("cachesweep", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Caching disabled: zero hits, by definition.
	if tbl.Rows[0][0] != "0" || tbl.Rows[0][1] != "0.000" {
		t.Fatalf("disabled-cache row: %v", tbl.Rows[0])
	}
	// The largest cache must do no worse than the smallest non-zero one.
	if tbl.Rows[len(tbl.Rows)-1][1] < tbl.Rows[1][1] {
		t.Fatalf("hit rate fell with capacity: %v vs %v", tbl.Rows[1], tbl.Rows[len(tbl.Rows)-1])
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "recommended default") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing recommended-default note: %v", tbl.Notes)
	}
}

func TestLOVOMethodContract(t *testing.T) {
	m := NewLOVO(7)
	if m.Name() != "LOVO" {
		t.Fatal("name")
	}
	if !m.Supports("red car") || m.Supports("zorgon") {
		t.Fatal("supports")
	}
	v := &LOVOMethod{Label: "LOVO(BF)"}
	if v.Name() != "LOVO(BF)" {
		t.Fatal("label override")
	}
}
