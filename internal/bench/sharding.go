package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
)

func init() {
	register("sharding", shardingExperiment)
}

// shardingExperiment measures the scatter-gather serving tier: parallel
// ingest wall-clock, query throughput (QPS) and per-query latency
// percentiles (p50/p99) versus shard count, under a fixed pool of
// concurrent clients. The workload is QVHighlights — the multi-clip corpus
// whose videos actually partition across shards; single-video corpora
// would leave all but one shard empty.
func shardingExperiment(o Options) (*Table, error) {
	ds := datasets.QVHighlights(datasets.Config{Seed: o.Seed, Scale: o.Scale})

	counts := shardSweep(o, len(ds.Videos))
	clients := core.ResolveWorkers(o.Workers)
	t := &Table{
		ID:    "sharding",
		Title: fmt.Sprintf("Scatter-gather scaling (%d clients, GOMAXPROCS=%d)", clients, runtime.GOMAXPROCS(0)),
		Header: []string{
			"shards", "ingest", "queries", "wall", "qps", "p50", "p99", "qps speedup",
		},
	}

	queriesPerRun := 64
	if o.Quick {
		queriesPerRun = 12
	}
	texts := make([]string, queriesPerRun)
	for i := range texts {
		texts[i] = ds.Queries[i%len(ds.Queries)].Text
	}

	var baseQPS float64
	for _, n := range counts {
		eng, err := shard.New(n, core.Config{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		istart := time.Now()
		if err := eng.IngestDataset(ds); err != nil {
			return nil, err
		}
		if err := eng.BuildIndex(); err != nil {
			return nil, err
		}
		ingestWall := time.Since(istart)

		// Warm the term cache so the first client doesn't pay it alone.
		if _, err := eng.Query(texts[0], core.QueryOptions{Workers: 1}); err != nil {
			return nil, err
		}

		// Drive the query mix through a concurrent client pool, timing
		// each query individually for the percentiles.
		latencies := make([]time.Duration, len(texts))
		errs := make([]error, len(texts))
		start := time.Now()
		core.ParallelFor(len(texts), clients, func(i int) {
			qstart := time.Now()
			_, errs[i] = eng.Query(texts[i], core.QueryOptions{Workers: 1})
			latencies[i] = time.Since(qstart)
		})
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		qps := float64(len(texts)) / wall.Seconds()
		if n == counts[0] {
			baseQPS = qps
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		t.Add(
			fmt.Sprintf("%d", n),
			secs(ingestWall),
			fmt.Sprintf("%d", len(texts)),
			secs(wall),
			fmt.Sprintf("%.1f", qps),
			ms(percentile(latencies, 0.50)),
			ms(percentile(latencies, 0.99)),
			speedup(qps, baseQPS),
		)
	}
	t.Note("expected shape: ingest wall drops with shards (parallel fan-out); QPS holds or improves while stage-1 scatter stays cheaper than the rerank; p99 grows slowly with shard count from merge overhead")
	t.Note("determinism: every row's answers merge to the same canonical top-k; a 1-shard engine is byte-identical to the single-system path (see internal/shard tests)")
	return t, nil
}

// shardSweep picks the shard counts to measure: powers of two up to the
// video count (more shards than videos only adds empty shards).
func shardSweep(o Options, videos int) []int {
	max := videos
	if max > 8 {
		max = 8
	}
	if o.Quick && max > 2 {
		max = 2
	}
	sweep := []int{1}
	for n := 2; n <= max; n *= 2 {
		sweep = append(sweep, n)
	}
	return sweep
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
