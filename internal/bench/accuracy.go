package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/video"
	"repro/internal/vocab"
)

func init() {
	register("fig2", fig2Motivation)
	register("fig6", fig6Accuracy)
	register("fig7", fig7Qualitative)
}

// queryTerms parses a query into canonical term names.
func queryTerms(q string) []string {
	p := query.Parse(q)
	out := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		out = append(out, t.Name)
	}
	return out
}

// qdExpressible reports whether a QD-search system can express the query
// without retraining: no spatial relations and every subject inside the
// detector vocabulary. Fig. 2(b) marks queries beyond this as unsupported
// for QD-search.
func qdExpressible(text string) bool {
	p := query.Parse(text)
	for _, r := range p.Relations {
		if r.Kind == vocab.KindRelation {
			return false
		}
	}
	for _, s := range p.Subject {
		if !s.COCO {
			return false
		}
	}
	return true
}

// fig2Motivation regenerates Fig. 2(a): execution time per query for the
// four method families across the three complexity grades, with
// unsupported combinations marked.
func fig2Motivation(o Options) (*Table, error) {
	ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	grades := []string{"simple", "normal", "complex"}
	mq := datasets.MotivationQueries()

	vocal := baselines.NewVOCAL()
	miris := baselines.NewMIRIS()
	hybrid := baselines.NewHybrid()
	visa := baselines.NewVISA()
	methods := []struct {
		family string
		m      baselines.Method
		// expressible reports whether the family can run the query.
		expressible func(q string) bool
	}{
		{"QA-index (VOCAL)", vocal, vocal.Supports},
		{"QD-search (MIRIS)", miris, qdExpressible},
		{"Hybrid", hybrid, func(string) bool { return true }},
		{"Vision-based (VISA)", visa, visa.Supports},
	}
	for _, m := range methods {
		if _, err := m.m.Prepare(ds); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:     "fig2",
		Title:  "Motivation: execution time (s) per query by complexity",
		Header: append([]string{"method"}, grades...),
	}
	for _, m := range methods {
		row := []string{m.family}
		for _, g := range grades {
			var total time.Duration
			n := 0
			unsupported := false
			for _, q := range mq[g] {
				if !m.expressible(q) {
					unsupported = true
					break
				}
				_, d, err := m.m.Query(q, 40)
				if err != nil {
					return nil, err
				}
				total += d
				n++
			}
			if unsupported || n == 0 {
				row = append(row, "unsupported")
				continue
			}
			row = append(row, secs(total/time.Duration(n)))
		}
		t.Add(row...)
	}
	t.Note("QA-index answers only predefined-class queries; QD-search stops at relations/open classes; vision-based supports everything at high cost")
	return t, nil
}

// accuracyMethods builds the Fig. 6 method set.
func accuracyMethods(seed uint64) []baselines.Method {
	return []baselines.Method{
		baselines.NewVOCAL(),
		baselines.NewZELDA(),
		baselines.NewUMT(),
		baselines.NewVISA(),
		baselines.NewMIRIS(),
		baselines.NewFiGO(),
		NewLOVO(seed),
	}
}

// fig6Accuracy regenerates Fig. 6: AveP of every method on all 16 queries.
func fig6Accuracy(o Options) (*Table, error) {
	dss := datasets.All(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	methods := accuracyMethods(o.Seed)
	t := &Table{
		ID:     "fig6",
		Title:  "Average precision per query (IoU>0.5, depth 10x ground truth)",
		Header: []string{"query"},
	}
	for _, m := range methods {
		t.Header = append(t.Header, m.Name())
	}
	wins := 0
	total := 0
	for _, ds := range dss {
		for _, m := range methods {
			if _, err := m.Prepare(ds); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.Name(), ds.Name, err)
			}
		}
		queries := ds.Queries
		if o.Quick {
			queries = queries[:2]
		}
		for _, q := range queries {
			gt := datasets.GroundTruth(ds, queryTerms(q.Text))
			depth := metrics.Depth(gt)
			row := []string{q.ID}
			var lovoAP, bestOther float64
			for _, m := range methods {
				if !m.Supports(q.Text) {
					row = append(row, "unsup")
					continue
				}
				res, _, err := m.Query(q.Text, depth)
				if err != nil {
					return nil, err
				}
				ap := metrics.AveragePrecision(res, gt, metrics.DefaultIoU)
				row = append(row, f3(ap))
				if m.Name() == "LOVO" {
					lovoAP = ap
				} else if ap > bestOther {
					bestOther = ap
				}
			}
			total++
			if lovoAP >= bestOther {
				wins++
			}
			t.Add(row...)
		}
	}
	t.Note("LOVO best-or-tied on %d/%d queries", wins, total)
	return t, nil
}

// fig7Qualitative regenerates Fig. 7: the top-1 retrieval of each method
// for Q4.2 with a diagnosis of what the retrieved object actually is.
func fig7Qualitative(o Options) (*Table, error) {
	ds := datasets.Beach(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	const q = "A green bus with the white roof driving on the road."
	qt := queryTerms(q)
	methods := []baselines.Method{
		baselines.NewMIRIS(), baselines.NewFiGO(), baselines.NewUMT(),
		baselines.NewZELDA(), baselines.NewVISA(), NewLOVO(o.Seed),
	}
	t := &Table{
		ID:     "fig7",
		Title:  "Qualitative top-1 retrieval for Q4.2 (" + q + ")",
		Header: []string{"method", "verdict", "retrieved object"},
	}
	for _, m := range methods {
		if _, err := m.Prepare(ds); err != nil {
			return nil, err
		}
		res, _, err := m.Query(q, 10)
		if err != nil {
			return nil, err
		}
		if len(res) == 0 {
			t.Add(m.Name(), "no result", "-")
			continue
		}
		verdict, desc := diagnose(ds, res[0], qt)
		t.Add(m.Name(), verdict, desc)
	}
	return t, nil
}

// diagnose identifies what a retrieved box actually covers and whether it
// satisfies the query.
func diagnose(ds *datasets.Dataset, r metrics.Retrieved, qt []string) (string, string) {
	var frame *video.Frame
	for vi := range ds.Videos {
		if ds.Videos[vi].ID != r.VideoID {
			continue
		}
		if r.FrameIdx >= 0 && r.FrameIdx < len(ds.Videos[vi].Frames) {
			frame = &ds.Videos[vi].Frames[r.FrameIdx]
		}
	}
	if frame == nil {
		return "invalid frame", "-"
	}
	best, bestIoU := -1, 0.0
	for oi := range frame.Objects {
		if iou := frame.Objects[oi].Box.IoU(r.Box); iou > bestIoU {
			best, bestIoU = oi, iou
		}
	}
	if best < 0 || bestIoU < 0.2 {
		return "background", "no object under the box"
	}
	obj := &frame.Objects[best]
	desc := obj.Class
	if len(obj.Attrs) > 0 {
		desc = strings.Join(obj.Attrs, " ") + " " + obj.Class
	}
	if bestIoU <= metrics.DefaultIoU {
		return "incomplete object", fmt.Sprintf("%s (IoU %.2f)", desc, bestIoU)
	}
	if frame.MatchesTermsRelational(best, qt) {
		return "correct", desc
	}
	return "wrong object/detail", desc
}
