package bench

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
)

func init() {
	register("replication", replicationExperiment)
}

// replicationExperiment measures the read-scaling tier: query throughput
// (QPS) and per-query latency percentiles (p50/p99) versus replicas per
// shard, under a fixed pool of concurrent clients and a fixed shard count
// — columns comparable to the sharding experiment's. Ingest wall-clock is
// reported too (it grows with R: every replica ingests the full shard
// slice). Each run's answers are checked byte-identical to the R=1
// baseline — replication must never change what a query returns.
func replicationExperiment(o Options) (*Table, error) {
	ds := datasets.QVHighlights(datasets.Config{Seed: o.Seed, Scale: o.Scale})

	const shards = 2
	sweep := []int{1, 2, 4}
	if o.Quick {
		sweep = []int{1, 2}
	}
	clients := core.ResolveWorkers(o.Workers)
	t := &Table{
		ID: "replication",
		Title: fmt.Sprintf("Per-shard replication scaling (%d shards, %d clients, GOMAXPROCS=%d)",
			shards, clients, runtime.GOMAXPROCS(0)),
		Header: []string{
			"replicas", "ingest", "queries", "wall", "qps", "p50", "p99", "qps speedup",
		},
	}

	queriesPerRun := 64
	if o.Quick {
		queriesPerRun = 12
	}
	texts := make([]string, queriesPerRun)
	for i := range texts {
		texts[i] = ds.Queries[i%len(ds.Queries)].Text
	}

	var baseQPS float64
	var baseline [][]core.ResultObject
	for _, r := range sweep {
		eng, err := shard.NewReplicated(shards, r, core.Config{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		istart := time.Now()
		if err := eng.IngestDataset(ds); err != nil {
			return nil, err
		}
		if err := eng.BuildIndex(); err != nil {
			return nil, err
		}
		ingestWall := time.Since(istart)

		// Warm the term cache so the first client doesn't pay it alone.
		if _, err := eng.Query(texts[0], core.QueryOptions{Workers: 1}); err != nil {
			return nil, err
		}

		// Drive the query mix through a concurrent client pool, timing
		// each query individually for the percentiles.
		latencies := make([]time.Duration, len(texts))
		answers := make([][]core.ResultObject, len(texts))
		errs := make([]error, len(texts))
		start := time.Now()
		core.ParallelFor(len(texts), clients, func(i int) {
			qstart := time.Now()
			var res *core.Result
			res, errs[i] = eng.Query(texts[i], core.QueryOptions{Workers: 1})
			latencies[i] = time.Since(qstart)
			if errs[i] == nil {
				answers[i] = res.Objects
			}
		})
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if baseline == nil {
			baseline = answers
		} else if !reflect.DeepEqual(answers, baseline) {
			return nil, fmt.Errorf("replication: R=%d answers diverge from R=1 baseline", r)
		}
		qps := float64(len(texts)) / wall.Seconds()
		if r == sweep[0] {
			baseQPS = qps
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		t.Add(
			fmt.Sprintf("%d", r),
			secs(ingestWall),
			fmt.Sprintf("%d", len(texts)),
			secs(wall),
			fmt.Sprintf("%.1f", qps),
			ms(percentile(latencies, 0.50)),
			ms(percentile(latencies, 0.99)),
			speedup(qps, baseQPS),
		)
	}
	t.Note("expected shape: QPS holds or improves with R once clients contend for a shard's replicas; p99 shrinks as the in-flight-aware picker routes around busy replicas; ingest wall grows with R (full fan-out)")
	t.Note("determinism: every row's answers were verified byte-identical to the R=1 baseline — replicas are interchangeable by construction")
	return t, nil
}
