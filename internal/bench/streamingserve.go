package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/shard"
	"repro/internal/video"
)

func init() {
	register("streamingserve", streamingServeExperiment)
}

// streamingServeExperiment measures the live-ingest serving path: query
// latency percentiles at steady state versus under sustained concurrent
// ingest, on a streaming (segmented) engine where seals and compactions
// run on the background maintenance goroutine — against a batch control
// where staying index-fresh means a synchronous full rebuild under the
// collection write lock. The acceptance bar is streaming p99 under ingest
// within 2x of steady state; the batch control shows what the same ingest
// rate costs when builds block the read path. On a single-core host the
// streaming ratio degrades toward CPU time-slicing with the embedding and
// build compute (there is no spare core for the maintenance goroutine) —
// the no-blocking property itself is pinned deterministically by the
// vectordb seal-concurrency regression tests, independent of core count.
func streamingServeExperiment(o Options) (*Table, error) {
	ds := datasets.QVHighlights(datasets.Config{Seed: o.Seed, Scale: o.Scale})

	const shards = 2
	// A small seal threshold so the sustained-ingest phase forces real
	// seals (and, when the phase runs long enough, compactions) instead of
	// only growing-segment appends.
	const sealThreshold = 64
	clients := core.ResolveWorkers(o.Workers)

	queriesPerRun := 64
	if o.Quick {
		queriesPerRun = 12
	}
	texts := make([]string, queriesPerRun)
	for i := range texts {
		texts[i] = ds.Queries[i%len(ds.Queries)].Text
	}

	// The live feed: short clip chunks at a paced arrival rate (a camera
	// pushing GOP-sized pieces), recycled from a second dataset under
	// fresh video IDs so every ingest is genuinely new corpus.
	const (
		arrivalGap  = 40 * time.Millisecond
		chunkFrames = 4
	)
	extra := datasets.Bellevue(datasets.Config{Seed: o.Seed + 1, Scale: 0.02})

	boot := func(cfg core.Config) (*shard.Engine, error) {
		eng, err := shard.NewReplicated(shards, 1, cfg)
		if err != nil {
			return nil, err
		}
		if err := eng.IngestDataset(ds); err != nil {
			return nil, err
		}
		if err := eng.BuildIndex(); err != nil {
			return nil, err
		}
		// Warm the term cache so the first client doesn't pay it alone.
		if _, err := eng.Query(texts[0], core.QueryOptions{Workers: 1}); err != nil {
			return nil, err
		}
		return eng, nil
	}

	// runPhase drives the query mix through a concurrent client pool and
	// returns sorted per-query latencies.
	runPhase := func(eng *shard.Engine) ([]time.Duration, time.Duration, error) {
		latencies := make([]time.Duration, len(texts))
		errs := make([]error, len(texts))
		start := time.Now()
		core.ParallelFor(len(texts), clients, func(i int) {
			qstart := time.Now()
			_, errs[i] = eng.Query(texts[i], core.QueryOptions{Workers: 1})
			latencies[i] = time.Since(qstart)
		})
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		return latencies, wall, nil
	}

	// feed streams chunks into ingest until stopped; ingest performs the
	// mode's freshness work (streaming: plain Ingest, maintenance is
	// background; batch control: Ingest plus synchronous full rebuild).
	feed := func(firstID int, ingest func(*video.Video) error) (stopFeed func() int64) {
		var (
			stop  atomic.Bool
			count atomic.Int64
			wg    sync.WaitGroup
		)
		nextID, off := firstID, 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				src := extra.Videos[int(count.Load())%len(extra.Videos)]
				if off+chunkFrames > len(src.Frames) {
					off = 0
				}
				v := video.Video{ID: nextID, Name: src.Name, FPS: src.FPS,
					Frames: append([]video.Frame(nil), src.Frames[off:off+chunkFrames]...)}
				off += chunkFrames
				for i := range v.Frames {
					v.Frames[i].VideoID = nextID
					v.Frames[i].Index = i
				}
				if nextID++; nextID > core.MaxVideoID {
					return
				}
				if err := ingest(&v); err != nil {
					return
				}
				count.Add(1)
				time.Sleep(arrivalGap)
			}
		}()
		return func() int64 {
			stop.Store(true)
			wg.Wait()
			return count.Load()
		}
	}

	t := &Table{
		ID: "streamingserve",
		Title: fmt.Sprintf("Serving under sustained live ingest (%d shards, seal threshold %d, %d clients, GOMAXPROCS=%d)",
			shards, sealThreshold, clients, runtime.GOMAXPROCS(0)),
		Header: []string{"mode / phase", "queries", "wall", "qps", "p50", "p99", "p99 vs steady", "chunks ingested"},
	}
	addRow := func(label string, lat []time.Duration, wall time.Duration, steadyP99 time.Duration, chunks int64) float64 {
		p99 := percentile(lat, 0.99)
		ratio := 1.0
		if steadyP99 > 0 {
			ratio = float64(p99) / float64(steadyP99)
		}
		t.Add(label, fmt.Sprintf("%d", len(texts)), secs(wall),
			fmt.Sprintf("%.1f", float64(len(texts))/wall.Seconds()),
			ms(percentile(lat, 0.50)), ms(p99),
			fmt.Sprintf("%.2fx", ratio), fmt.Sprintf("%d", chunks))
		return ratio
	}

	// Streaming engine: background seals/compactions.
	eng, err := boot(core.Config{Seed: o.Seed, Streaming: true, SegmentSize: sealThreshold})
	if err != nil {
		return nil, err
	}
	steady, steadyWall, err := runPhase(eng)
	if err != nil {
		return nil, err
	}
	steadyP99 := percentile(steady, 0.99)
	addRow("streaming steady", steady, steadyWall, steadyP99, 0)

	segBefore, _ := eng.SegmentStats()
	stopFeed := feed(2000, eng.Ingest)
	under, underWall, err := runPhase(eng)
	chunks := stopFeed()
	if err != nil {
		return nil, err
	}
	ratio := addRow("streaming under ingest", under, underWall, steadyP99, chunks)
	segAfter, _ := eng.SegmentStats()

	// Batch control: the pre-streaming way to stay fresh — every chunk
	// pays a full synchronous rebuild that holds the collection write
	// lock, and queries feel it.
	engB, err := boot(core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	steadyB, steadyBWall, err := runPhase(engB)
	if err != nil {
		return nil, err
	}
	steadyBP99 := percentile(steadyB, 0.99)
	addRow("batch steady", steadyB, steadyBWall, steadyBP99, 0)
	stopFeedB := feed(20000, func(v *video.Video) error {
		if err := engB.Ingest(v); err != nil {
			return err
		}
		return engB.BuildIndex()
	})
	underB, underBWall, err := runPhase(engB)
	chunksB := stopFeedB()
	if err != nil {
		return nil, err
	}
	ratioB := addRow("batch rebuild under ingest", underB, underBWall, steadyBP99, chunksB)

	t.Note("maintenance during streaming query phase: %d seals, %d compactions — all on the background goroutine",
		segAfter.Seals-segBefore.Seals, segAfter.Compactions-segBefore.Compactions)
	t.Note("acceptance bar: streaming p99 under sustained ingest <= 2.00x steady state on a multi-core host (measured %.2fx at GOMAXPROCS=%d); batch rebuild control measured %.2fx",
		ratio, runtime.GOMAXPROCS(0), ratioB)
	t.Note("expected shape: streaming holds p99 near steady state because seals index only the frozen segment off the write lock; the batch control degrades with corpus size because every chunk rebuilds everything under the lock")
	return t, nil
}
