package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
)

func init() {
	register("throughput", throughputExperiment)
}

// throughputExperiment measures the concurrent execution engine: query
// throughput (QPS) under N concurrent clients via QueryBatch, and ingest
// time with N encoding workers, each against the 1-worker serial baseline.
// Per-query rerank parallelism is pinned to 1 so the client count is the
// only concurrency knob in the QPS sweep; results are identical at every
// worker count, so the sweep measures pure scheduling speedup.
func throughputExperiment(o Options) (*Table, error) {
	ds := datasets.Bellevue(datasets.Config{Seed: o.Seed, Scale: o.Scale})

	sweep := workerSweep(o)
	t := &Table{
		ID:     "throughput",
		Title:  fmt.Sprintf("Concurrent engine scaling (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		Header: []string{"stage", "workers", "units", "wall", "rate", "speedup"},
	}

	// Query sweep: a fixed mix cycling the dataset's benchmark queries.
	queriesPerRun := 48
	if o.Quick {
		queriesPerRun = 12
	}
	texts := make([]string, queriesPerRun)
	for i := range texts {
		texts[i] = ds.Queries[i%len(ds.Queries)].Text
	}

	sys, err := core.New(core.Config{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildIndex(); err != nil {
		return nil, err
	}
	// Warm the term cache so the first client doesn't pay it alone.
	if _, err := sys.Query(texts[0], core.QueryOptions{Workers: 1}); err != nil {
		return nil, err
	}

	var baseQPS float64
	for _, w := range sweep {
		start := time.Now()
		if _, err := sys.QueryBatch(texts, core.QueryOptions{Workers: 1}, w); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		qps := float64(queriesPerRun) / wall.Seconds()
		if w == 1 {
			baseQPS = qps
		}
		t.Add("query", fmt.Sprintf("%d", w), fmt.Sprintf("%d queries", queriesPerRun),
			secs(wall), fmt.Sprintf("%.1f qps", qps), speedup(qps, baseQPS))
	}

	// Ingest sweep: encode the same dataset with N-worker keyframe
	// encoding into a fresh system each time.
	var baseRate float64
	for _, w := range sweep {
		fresh, err := core.New(core.Config{Seed: o.Seed, Workers: w})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := range ds.Videos {
			if err := fresh.Ingest(&ds.Videos[i]); err != nil {
				return nil, err
			}
		}
		wall := time.Since(start)
		kf := fresh.Stats().Keyframes
		rate := float64(kf) / wall.Seconds()
		if w == 1 {
			baseRate = rate
		}
		t.Add("ingest", fmt.Sprintf("%d", w), fmt.Sprintf("%d keyframes", kf),
			secs(wall), fmt.Sprintf("%.1f kf/s", rate), speedup(rate, baseRate))
	}

	t.Note("expected shape: near-linear QPS and ingest scaling up to the core count; flat on a single-core host")
	t.Note("determinism: every row returns byte-identical results to the 1-worker baseline (see core's determinism tests)")
	return t, nil
}

// workerSweep picks the worker counts to measure: powers of two from 1 up
// to Options.Workers (default: at least 4, covering the machine's cores).
func workerSweep(o Options) []int {
	max := o.Workers
	if max <= 0 {
		max = runtime.NumCPU()
		if max < 4 {
			max = 4
		}
	}
	sweep := []int{1}
	for w := 2; w <= max; w *= 2 {
		sweep = append(sweep, w)
	}
	if last := sweep[len(sweep)-1]; last != max {
		sweep = append(sweep, max)
	}
	return sweep
}

func speedup(rate, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", rate/base)
}
