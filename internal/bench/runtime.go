package bench

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/datasets"
)

func init() {
	register("fig8", fig8Runtime)
	register("table3", table3Emerging)
	register("fig9", fig9Distribution)
}

// avgSearch runs every benchmark query of ds through m and returns the mean
// search time.
func avgSearch(m baselines.Method, ds *datasets.Dataset, quick bool) (time.Duration, error) {
	queries := ds.Queries
	if quick {
		queries = queries[:1]
	}
	var total time.Duration
	n := 0
	for _, q := range queries {
		if !m.Supports(q.Text) {
			continue
		}
		_, d, err := m.Query(q.Text, 100)
		if err != nil {
			return 0, err
		}
		total += d
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return total / time.Duration(n), nil
}

// fig8Runtime regenerates Fig. 8: search and total execution time of MIRIS,
// FiGO and LOVO on the four datasets, with acceleration factors relative to
// the slowest method.
func fig8Runtime(o Options) (*Table, error) {
	dss := datasets.All(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	t := &Table{
		ID:    "fig8",
		Title: "Runtime vs QD-search (seconds; xN = speedup vs slowest)",
		Header: []string{"dataset",
			"MIRIS search", "FiGO search", "LOVO search",
			"MIRIS total", "FiGO total", "LOVO total"},
	}
	for _, ds := range dss {
		miris := baselines.NewMIRIS()
		figo := baselines.NewFiGO()
		lovo := NewLOVO(o.Seed)
		prep := map[string]time.Duration{}
		search := map[string]time.Duration{}
		for _, m := range []baselines.Method{miris, figo, lovo} {
			p, err := m.Prepare(ds)
			if err != nil {
				return nil, err
			}
			prep[m.Name()] = p
			s, err := avgSearch(m, ds, o.Quick)
			if err != nil {
				return nil, err
			}
			search[m.Name()] = s
		}
		total := map[string]time.Duration{}
		for _, n := range []string{"MIRIS", "FiGO", "LOVO"} {
			total[n] = prep[n] + search[n]
		}
		fmtCell := func(d, slowest time.Duration) string {
			factor := float64(slowest) / float64(max64(int64(d), 1))
			return fmt.Sprintf("%s (%.0fx)", secs(d), factor)
		}
		slowestSearch := maxDur(search["MIRIS"], search["FiGO"], search["LOVO"])
		slowestTotal := maxDur(total["MIRIS"], total["FiGO"], total["LOVO"])
		t.Add(ds.Name,
			fmtCell(search["MIRIS"], slowestSearch),
			fmtCell(search["FiGO"], slowestSearch),
			fmtCell(search["LOVO"], slowestSearch),
			fmtCell(total["MIRIS"], slowestTotal),
			fmtCell(total["FiGO"], slowestTotal),
			fmtCell(total["LOVO"], slowestTotal),
		)
		t.Note("%s: LOVO search %.0fx faster than FiGO, %.0fx than MIRIS",
			ds.Name,
			float64(search["FiGO"])/float64(max64(int64(search["LOVO"]), 1)),
			float64(search["MIRIS"])/float64(max64(int64(search["LOVO"]), 1)))
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxDur(ds ...time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// table3Emerging regenerates Table III: processing / search / total time of
// ZELDA, UMT, VISA and LOVO per dataset.
func table3Emerging(o Options) (*Table, error) {
	dss := datasets.All(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	t := &Table{
		ID:     "table3",
		Title:  "Vision-based and end-to-end methods: time (s)",
		Header: []string{"method", "phase", "cityscapes", "bellevue", "qvhighlights", "beach"},
	}
	type cells struct{ proc, search, total [4]time.Duration }
	results := map[string]*cells{}
	order := []string{"ZELDA", "UMT", "VISA", "LOVO"}
	for di, ds := range dss {
		methods := []baselines.Method{
			baselines.NewZELDA(), baselines.NewUMT(), baselines.NewVISA(), NewLOVO(o.Seed),
		}
		for _, m := range methods {
			p, err := m.Prepare(ds)
			if err != nil {
				return nil, err
			}
			s, err := avgSearch(m, ds, o.Quick)
			if err != nil {
				return nil, err
			}
			c := results[m.Name()]
			if c == nil {
				c = &cells{}
				results[m.Name()] = c
			}
			c.proc[di], c.search[di], c.total[di] = p, s, p+s
		}
	}
	for _, name := range order {
		c := results[name]
		t.Add(name, "processing", secs(c.proc[0]), secs(c.proc[1]), secs(c.proc[2]), secs(c.proc[3]))
		t.Add(name, "search", secs(c.search[0]), secs(c.search[1]), secs(c.search[2]), secs(c.search[3]))
		t.Add(name, "total", secs(c.total[0]), secs(c.total[1]), secs(c.total[2]), secs(c.total[3]))
	}
	t.Note("expected shape: VISA slowest overall; UMT search-heavy; ZELDA search < LOVO search (no rerank); LOVO total competitive")
	return t, nil
}

// fig9Distribution regenerates Fig. 9: LOVO's per-dataset time split across
// processing, rerank, and indexing+fast search.
func fig9Distribution(o Options) (*Table, error) {
	dss := datasets.All(datasets.Config{Seed: o.Seed, Scale: o.Scale})
	t := &Table{
		ID:     "fig9",
		Title:  "LOVO time distribution per dataset (s)",
		Header: []string{"dataset", "processing", "rerank", "indexing+fast search"},
	}
	for _, ds := range dss {
		lovo := NewLOVO(o.Seed)
		if _, err := lovo.Prepare(ds); err != nil {
			return nil, err
		}
		var rerank, fast time.Duration
		n := 0
		queries := ds.Queries
		if o.Quick {
			queries = queries[:1]
		}
		for _, q := range queries {
			if _, _, err := lovo.Query(q.Text, 100); err != nil {
				return nil, err
			}
			res := lovo.LastResult()
			rerank += res.Rerank
			fast += res.FastSearch
			n++
		}
		st := lovo.System().Stats()
		t.Add(ds.Name,
			secs(st.Processing),
			secs(rerank/time.Duration(n)),
			secs(st.Indexing+fast/time.Duration(n)))
	}
	t.Note("expected shape: processing > rerank >> indexing+fast search")
	return t, nil
}
