// Package bench regenerates every table and figure of the paper's
// evaluation section against the synthetic workloads. Each experiment
// returns a Table with the same rows/series the paper reports; absolute
// numbers differ from the authors' GPU testbed, but the shapes — who wins,
// by roughly what factor, where the crossovers fall — are the reproduction
// targets (see EXPERIMENTS.md for the paper-vs-measured record).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Options configure an experiment run.
type Options struct {
	// Seed drives workload generation and all systems.
	Seed uint64
	// Scale multiplies dataset durations. The default 0.15 keeps a full
	// regeneration tractable on a laptop; raise toward 1.0 for
	// paper-scale workloads.
	Scale float64
	// Quick further shrinks sweeps for use inside unit tests and smoke
	// benchmarks.
	Quick bool
	// Workers caps the worker counts the concurrency sweep measures
	// (the "throughput" experiment). Zero sweeps up to max(4, NumCPU).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Scale == 0 {
		o.Scale = 0.15
		if o.Quick {
			o.Scale = 0.06
		}
	}
	return o
}

// Table is one experiment's output.
type Table struct {
	// ID is the paper artifact ("fig6", "table4").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the cells.
	Rows [][]string
	// Notes carries free-form observations (speedup factors, shape
	// checks).
	Notes []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteJSON writes the table as a BENCH_<id>.json snapshot in dir and
// returns the path — a machine-readable perf-trajectory record (the
// kernels experiment's per-tier and per-batch-width splits especially)
// that successive runs can diff.
func (t *Table) WriteJSON(dir string) (string, error) {
	snap := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// secs formats a duration as seconds with three decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ms formats a duration as milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// runner produces one experiment table.
type runner func(Options) (*Table, error)

var registry = map[string]runner{}

func register(name string, r runner) { registry[name] = r }

// Experiments lists registered experiment names sorted.
func Experiments() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, o Options) (*Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	return r(o.withDefaults())
}

// RunAll executes every experiment in name order.
func RunAll(o Options) ([]*Table, error) {
	var out []*Table
	for _, name := range Experiments() {
		t, err := Run(name, o)
		if err != nil {
			return out, fmt.Errorf("bench: experiment %s: %w", name, err)
		}
		out = append(out, t)
	}
	return out, nil
}
