package xmodal

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/video"
)

func testModel() (*Model, *embed.TextEncoder) {
	space := embed.NewSpace(64, 32, 42)
	return New(space, Config{Seed: 11}), &embed.TextEncoder{Space: space}
}

func toks(te *embed.TextEncoder, q string) []embed.Token {
	return te.Tokens(query.Parse(q))
}

func TestMHAShapePreserved(t *testing.T) {
	m := newMHA(64, 4, 0.02, 1)
	a := mat.RandGaussian(5, 64, 1, 2)
	b := mat.RandGaussian(3, 64, 1, 3)
	ar := mat.GetArena()
	defer ar.Release()
	out := m.apply(ar, a, b)
	if out.Rows != 5 || out.Cols != 64 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
}

func TestEnhancerPreservesSignal(t *testing.T) {
	// Near-identity layers must keep token directions recognisable.
	space := embed.NewSpace(64, 32, 42)
	l := newEnhancerLayer(64, 4, 0.02, 5)
	car := space.TermVec("car")
	dog := space.TermVec("dog")
	xi := mat.FromRows([]mat.Vec{car})
	xt := mat.FromRows([]mat.Vec{mat.Clone(car)})
	ar := mat.GetArena()
	defer ar.Release()
	xi2, _ := l.apply(ar, xi, xt)
	outRow := mat.Normalized(xi2.Row(0))
	if mat.Dot(outRow, car) <= mat.Dot(outRow, dog) {
		t.Fatal("enhanced token lost its identity")
	}
}

func TestGroundFrameRanksMatchingObjectFirst(t *testing.T) {
	m, te := testModel()
	f := &video.Frame{
		VideoID: 1, Index: 0, Context: []string{"road"},
		Objects: []video.Object{
			{Track: 1, Class: "car", Attrs: []string{"red"}, Behaviors: []string{"driving"}, Box: video.Box{X: 0.44, Y: 0.4, W: 0.1, H: 0.07}},
			{Track: 2, Class: "bus", Attrs: []string{"blue"}, Behaviors: []string{"driving"}, Box: video.Box{X: 0.1, Y: 0.4, W: 0.2, H: 0.11}},
			{Track: 3, Class: "car", Attrs: []string{"black"}, Behaviors: []string{"driving"}, Box: video.Box{X: 0.7, Y: 0.6, W: 0.1, H: 0.07}},
		},
	}
	g := m.GroundFrame(f, toks(te, "a red car driving on the road"))
	if len(g) != 3 {
		t.Fatalf("groundings = %d", len(g))
	}
	if g[0].ObjectIdx != 0 {
		t.Fatalf("red car must rank first, got object %d", g[0].ObjectIdx)
	}
}

func TestGroundFrameResolvesRelations(t *testing.T) {
	// Two frames: one with a lone red car in the centre, one with a red
	// car side by side with another car. The relation query must prefer
	// the pair — this is what fast search cannot do.
	m, te := testModel()
	lone := &video.Frame{
		VideoID: 1, Index: 0, Context: []string{"road"},
		Objects: []video.Object{
			{Track: 1, Class: "car", Attrs: []string{"red"}, Behaviors: []string{"driving"}, Box: video.Box{X: 0.45, Y: 0.4, W: 0.1, H: 0.07}},
		},
	}
	pair := &video.Frame{
		VideoID: 1, Index: 1, Context: []string{"road"},
		Objects: []video.Object{
			{Track: 2, Class: "car", Attrs: []string{"red"}, Behaviors: []string{"driving"}, Box: video.Box{X: 0.38, Y: 0.4, W: 0.1, H: 0.07}},
			{Track: 3, Class: "car", Attrs: []string{"white"}, Behaviors: []string{"driving"}, Box: video.Box{X: 0.55, Y: 0.41, W: 0.1, H: 0.07}},
		},
	}
	qt := toks(te, "A red car side by side with another car, both positioned in the center of the road.")
	gLone := m.GroundFrame(lone, qt)
	gPair := m.GroundFrame(pair, qt)
	if len(gLone) == 0 || len(gPair) == 0 {
		t.Fatal("missing groundings")
	}
	if gPair[0].Score <= gLone[0].Score {
		t.Fatalf("side-by-side pair (%v) must outscore lone car (%v)", gPair[0].Score, gLone[0].Score)
	}
}

func TestGroundFrameNeighborTerms(t *testing.T) {
	// Q3.4: the dog next to a woman in black must outscore a lone dog.
	m, te := testModel()
	lone := &video.Frame{
		VideoID: 1, Index: 0,
		Objects: []video.Object{
			{Track: 1, Class: "dog", Attrs: []string{"white"}, Inside: "car", Box: video.Box{X: 0.4, Y: 0.45, W: 0.12, H: 0.12}},
		},
	}
	withWoman := &video.Frame{
		VideoID: 1, Index: 1,
		Objects: []video.Object{
			{Track: 2, Class: "dog", Attrs: []string{"white"}, Inside: "car", Box: video.Box{X: 0.4, Y: 0.45, W: 0.12, H: 0.12}},
			{Track: 3, Class: "person", Attrs: []string{"woman", "black", "clothing"}, Inside: "car", Behaviors: []string{"sitting"}, Box: video.Box{X: 0.52, Y: 0.3, W: 0.14, H: 0.3}},
		},
	}
	qt := toks(te, "A white dog inside a car, next to a woman wearing black clothes.")
	gl := m.GroundFrame(lone, qt)
	gw := m.GroundFrame(withWoman, qt)
	var dogScore float32
	for _, g := range gw {
		if g.ObjectIdx == 0 {
			dogScore = g.Score
		}
	}
	if dogScore <= gl[0].Score {
		t.Fatalf("dog-with-woman (%v) must outscore lone dog (%v)", dogScore, gl[0].Score)
	}
}

func TestGroundFrameEmptyInputs(t *testing.T) {
	m, te := testModel()
	if g := m.GroundFrame(&video.Frame{}, toks(te, "car")); g != nil {
		t.Fatal("object-free frame must ground nothing")
	}
	f := &video.Frame{Objects: []video.Object{{Track: 1, Class: "car", Box: video.Box{X: 0.4, Y: 0.4, W: 0.1, H: 0.1}}}}
	if g := m.GroundFrame(f, nil); g != nil {
		t.Fatal("empty query must ground nothing")
	}
}

func TestGroundFrameDeterministic(t *testing.T) {
	m, te := testModel()
	f := &video.Frame{
		VideoID: 1, Index: 2, Context: []string{"road"},
		Objects: []video.Object{
			{Track: 1, Class: "car", Attrs: []string{"red"}, Box: video.Box{X: 0.4, Y: 0.4, W: 0.1, H: 0.07}},
		},
	}
	qt := toks(te, "red car")
	a := m.GroundFrame(f, qt)
	b := m.GroundFrame(f, qt)
	if len(a) != len(b) || a[0].Score != b[0].Score {
		t.Fatal("grounding must be deterministic")
	}
}

func TestGroundingsSorted(t *testing.T) {
	m, te := testModel()
	f := &video.Frame{
		VideoID: 1, Index: 0, Context: []string{"road"},
		Objects: []video.Object{
			{Track: 1, Class: "bus", Attrs: []string{"green"}, Box: video.Box{X: 0.1, Y: 0.4, W: 0.2, H: 0.12}},
			{Track: 2, Class: "car", Attrs: []string{"red"}, Box: video.Box{X: 0.45, Y: 0.4, W: 0.1, H: 0.07}},
			{Track: 3, Class: "person", Box: video.Box{X: 0.7, Y: 0.3, W: 0.05, H: 0.17}},
		},
	}
	g := m.GroundFrame(f, toks(te, "green bus"))
	for i := 1; i < len(g); i++ {
		if g[i].Score > g[i-1].Score {
			t.Fatal("groundings must be sorted descending")
		}
	}
	if g[0].ObjectIdx != 0 {
		t.Fatalf("green bus must win, got %d", g[0].ObjectIdx)
	}
}

func TestTokenWorkScales(t *testing.T) {
	m, _ := testModel()
	if m.TokenWork(10, 5) >= m.TokenWork(100, 5) {
		t.Fatal("work must grow with region tokens")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Heads != 4 || c.EnhancerLayers != 1 || c.DecoderLayers != 1 {
		t.Fatalf("defaults: %+v", c)
	}
}
