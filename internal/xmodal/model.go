package xmodal

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/video"
	"repro/internal/vocab"
)

// Config shapes the cross-modality transformer.
type Config struct {
	// Heads is the attention head count; zero defaults to 4.
	Heads int
	// EnhancerLayers is the feature-enhancer depth; zero defaults to 2.
	EnhancerLayers int
	// DecoderLayers is the decoder depth; zero defaults to 1.
	DecoderLayers int
	// WeightNoise is the σ of the near-identity weight perturbation;
	// zero defaults to 0.02.
	WeightNoise float64
	// TokenNoise is the per-region-token observation noise σ; zero
	// defaults to 0.05.
	TokenNoise float64
	// RelationDropout is the probability a relation token goes
	// unobserved; zero defaults to 0.08. Rerank is strong, not perfect.
	RelationDropout float64
	// Seed drives weights and noise.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Heads == 0 {
		c.Heads = 4
	}
	if c.EnhancerLayers == 0 {
		c.EnhancerLayers = 1
	}
	if c.DecoderLayers == 0 {
		c.DecoderLayers = 1
	}
	if c.WeightNoise == 0 {
		c.WeightNoise = 0.02
	}
	if c.TokenNoise == 0 {
		c.TokenNoise = 0.05
	}
	if c.RelationDropout == 0 {
		c.RelationDropout = 0.08
	}
	return c
}

// Model is the cross-modality transformer.
type Model struct {
	space    *embed.Space
	cfg      Config
	enhancer []*enhancerLayer
	decoder  []*enhancerLayer
	posProj  *mat.Matrix // 8 -> D positional projection
}

// New builds a model over the shared embedding space.
func New(space *embed.Space, cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := &Model{space: space, cfg: cfg}
	for i := 0; i < cfg.EnhancerLayers; i++ {
		m.enhancer = append(m.enhancer, newEnhancerLayer(space.Dim, cfg.Heads, cfg.WeightNoise, cfg.Seed+uint64(i)*7919))
	}
	for i := 0; i < cfg.DecoderLayers; i++ {
		m.decoder = append(m.decoder, newEnhancerLayer(space.Dim, cfg.Heads, cfg.WeightNoise, cfg.Seed+0xdec0+uint64(i)*104729))
	}
	m.posProj = mat.RandGaussian(space.Dim, 8, 1.0/8, cfg.Seed^0x905e)
	return m
}

// Grounding is one grounded object in a reranked frame.
type Grounding struct {
	// ObjectIdx indexes the frame's object list.
	ObjectIdx int
	// Box is the grounded bounding box.
	Box video.Box
	// Score is the cross-modality alignment score; higher is better.
	Score float32
}

// posEncoding computes the box positional feature — sinusoids of the
// centre, width and height projected into the embedding dimension — into an
// arena-backed vector.
func (m *Model) posEncoding(ar *mat.Arena, b video.Box) mat.Vec {
	cx, cy := b.Center()
	raw := [8]float32{
		float32(math.Sin(2 * math.Pi * cx)), float32(math.Cos(2 * math.Pi * cx)),
		float32(math.Sin(2 * math.Pi * cy)), float32(math.Cos(2 * math.Pi * cy)),
		float32(b.W), float32(b.H),
		float32(math.Sin(4 * math.Pi * cx)), float32(math.Cos(4 * math.Pi * cy)),
	}
	return mat.MatVecInto(ar.Vec(m.posProj.Rows), m.posProj, raw[:])
}

func tokenSeed(seed uint64, track int64, frame int, term string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	put(seed)
	put(uint64(track))
	put(uint64(uint32(frame)))
	_, _ = h.Write([]byte(term))
	return h.Sum64()
}

// regionTok is one image-side token: a unit feature vector plus an evidence
// weight. Weights survive the transformer's layer norms by applying at
// scoring time: a term observed on a neighbour (weight 0.85) can never beat
// the same term observed on the object itself.
type regionTok struct {
	vec    mat.Vec
	weight float32
}

// regionTokens extracts the fine-grained token set for object i of frame f:
// one noisy token per ground-truth term (including spatial relations, which
// single-object embeddings cannot carry), neighbour terms at reduced weight
// (supporting relational queries such as Q3.4), and a box positional
// component folded into every token.
func (m *Model) regionTokens(ar *mat.Arena, f *video.Frame, i int) []regionTok {
	o := &f.Objects[i]
	pos := m.posEncoding(ar, o.Box)
	var toks []regionTok

	appendTok := func(term string, weight float32) {
		seed := tokenSeed(m.cfg.Seed, o.Track, f.Index, term)
		rng := rand.New(rand.NewPCG(seed, seed^0x70c5))
		base := m.space.TermVec(term)
		v := ar.Vec(m.space.Dim)
		mat.Axpy(v, 1, base)
		mat.Axpy(v, 0.12, pos)
		for d := range v {
			v[d] += float32(rng.NormFloat64() * m.cfg.TokenNoise)
		}
		toks = append(toks, regionTok{vec: mat.Normalize(v), weight: weight})
	}

	for _, term := range f.ObjectTerms(i) {
		if isRelationTerm(term) {
			seed := tokenSeed(m.cfg.Seed, o.Track, f.Index, "drop:"+term)
			rng := rand.New(rand.NewPCG(seed, seed^0xd20b))
			if rng.Float64() < m.cfg.RelationDropout {
				continue
			}
		}
		appendTok(term, 1)
	}
	// Neighbour context: the two nearest related objects contribute
	// their class and appearance terms at reduced weight, bounding the
	// token budget while still supporting relational queries like Q3.4.
	neighbors := f.Neighbors(i)
	if len(neighbors) > 2 {
		sort.Slice(neighbors, func(a, b int) bool {
			return o.Box.CenterDist(f.Objects[neighbors[a]].Box) < o.Box.CenterDist(f.Objects[neighbors[b]].Box)
		})
		neighbors = neighbors[:2]
	}
	seenNb := make(map[string]bool)
	for _, j := range neighbors {
		nb := &f.Objects[j]
		for _, term := range append([]string{nb.Class}, nb.Attrs...) {
			if !seenNb[term] {
				seenNb[term] = true
				appendTok(term, 0.85)
			}
		}
	}
	return toks
}

// textTokenWeight returns the importance of a query token in the MaxSim
// aggregation. Fine distinctions — attributes and spatial relations — carry
// the most discriminative power (they are what the rerank stage exists to
// recover); the primary subject anchors the grounding; scene context, which
// every candidate frame shares, carries little.
func textTokenWeight(k vocab.Kind, primary bool) float32 {
	if primary {
		return 1.6
	}
	switch k {
	case vocab.KindColor, vocab.KindSize, vocab.KindClothing:
		return 1.2
	case vocab.KindRelation:
		return 1.3
	case vocab.KindBehavior:
		return 0.8
	case vocab.KindContext:
		return 0.6
	default:
		return 1.0
	}
}

// firstClassIdx locates the query's primary subject token.
func firstClassIdx(toks []embed.Token) int {
	for i, t := range toks {
		if t.Kind == vocab.KindClass {
			return i
		}
	}
	return -1
}

func isRelationTerm(term string) bool {
	switch term {
	case "side by side", "next to", "center of the road", "holding", "filled with":
		return true
	}
	return false
}

// GroundFrame scores every object of the frame against the query tokens and
// returns groundings sorted by descending score.
//
// This is stage 2 of Algorithm 2: region and text tokens pass through the
// feature-enhancer's bidirectional cross-attention and the decoder, then
// each object scores as the mean over text tokens of its best-aligned
// region token — every query term must find visual support, so missing
// attributes or relations depress the score.
func (m *Model) GroundFrame(f *video.Frame, toks []embed.Token) []Grounding {
	if len(toks) == 0 || len(f.Objects) == 0 {
		return nil
	}
	// Every temporary of the forward pass — region tokens, layer
	// activations, attention scores, the similarity matrix — shares the
	// frame's lifetime, so one arena serves the whole grounding and the
	// steady-state rerank stops allocating.
	ar := mat.GetArena()
	defer ar.Release()

	// Assemble the frame's region-token matrix with object attribution
	// and per-token evidence weights.
	var owners []int
	var weights []float32
	var rows []mat.Vec
	for i := range f.Objects {
		rt := m.regionTokens(ar, f, i)
		for _, tok := range rt {
			owners = append(owners, i)
			weights = append(weights, tok.weight)
			rows = append(rows, tok.vec)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	xi := ar.Matrix(len(rows), m.space.Dim)
	for i, r := range rows {
		copy(xi.Row(i), r)
	}
	tweights := make([]float32, len(toks))
	primaryIdx := firstClassIdx(toks)
	xt := ar.Matrix(len(toks), m.space.Dim)
	for i, t := range toks {
		copy(xt.Row(i), t.Vec)
		tweights[i] = textTokenWeight(t.Kind, i == primaryIdx)
	}

	for _, l := range m.enhancer {
		xi, xt = l.apply(ar, xi, xt)
	}
	for _, l := range m.decoder {
		xi, xt = l.apply(ar, xi, xt)
	}

	// Per-object MaxSim aggregation over the enhanced features, on
	// cosine similarity: layer norm fixes row norms to √D, so raw dot
	// products would be dominated by shared structure.
	for i := 0; i < xi.Rows; i++ {
		mat.Normalize(xi.Row(i))
	}
	for i := 0; i < xt.Rows; i++ {
		mat.Normalize(xt.Row(i))
	}
	sim := mat.MatMulTInto(ar.Matrix(xt.Rows, xi.Rows), xt, xi) // (text tokens) × (region tokens)
	nObj := len(f.Objects)
	scores := ar.Vec(nObj)
	wsums := ar.Vec(nObj)
	primaryBest := ar.Vec(nObj)
	best := ar.Vec(nObj)
	seen := make([]bool, nObj)
	for ti := 0; ti < sim.Rows; ti++ {
		row := sim.Row(ti)
		for o := 0; o < nObj; o++ {
			best[o] = 0
			seen[o] = false
		}
		for ri, s := range row {
			s *= weights[ri]
			o := owners[ri]
			if !seen[o] || s > best[o] {
				best[o], seen[o] = s, true
			}
		}
		tw := tweights[ti]
		for o := 0; o < nObj; o++ {
			if seen[o] {
				//lovo:kernel-ok fixed-order per-object gather over terms, not a dot-product reduction; term order is the slice order, already deterministic
				scores[o] += tw * best[o]
				wsums[o] += tw
				if ti == primaryIdx {
					primaryBest[o] = best[o]
				}
			}
		}
	}
	out := make([]Grounding, 0, nObj)
	for o := 0; o < nObj; o++ {
		if wsums[o] == 0 {
			continue
		}
		score := scores[o] / wsums[o]
		// Head-noun anchoring: an object whose own evidence for the
		// query's primary subject is weak (neighbour-level at best) is
		// a poor grounding however well its other terms align — the
		// woman next to the white dog is not the dog.
		if primaryIdx >= 0 {
			if factor := primaryBest[o] / 0.85; factor < 1 {
				if factor < 0 {
					factor = 0
				}
				score *= factor
			}
		}
		out = append(out, Grounding{
			ObjectIdx: o,
			Box:       f.Objects[o].Box,
			Score:     score,
		})
	}
	// Sort descending, deterministic tie-break on object index.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Score > out[i].Score ||
				(out[j].Score == out[i].Score && out[j].ObjectIdx < out[i].ObjectIdx) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// TokenWork estimates the attention work (token-pair products) GroundFrame
// performs for a frame with n region tokens and t text tokens; used by the
// rerank-scalability experiment.
func (m *Model) TokenWork(n, t int) int {
	layers := len(m.enhancer) + len(m.decoder)
	return layers * n * t * m.space.Dim
}
