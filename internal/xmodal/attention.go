// Package xmodal implements the cross-modality transformer used by the
// rerank stage (Section VI-B, Fig. 5): a feature enhancer whose
// image-to-text and text-to-image cross-attention layers align the two
// modalities, followed by a decoder that grounds the query in candidate
// boxes.
//
// The attention arithmetic is real — multi-head projections, scaled dot
// products, softmax, residuals, layer norm — with deterministic
// residual-dominant weights (near-identity plus seeded noise), so the layers
// propagate and mix semantic signal the way a trained grounding model's do
// without requiring training. Image region tokens carry fine-grained
// features (attributes, relations, neighbour context, box position) that the
// fast-search index cannot represent; this asymmetry is exactly why rerank
// recovers the complex-query accuracy the ablation (Table IV) attributes
// to it.
package xmodal

import (
	"math"

	"repro/internal/mat"
)

// mha is one multi-head cross-attention block with output projection.
type mha struct {
	heads int
	wq    *mat.Matrix // D×D, consumed in per-head column slices
	wk    *mat.Matrix
	wv    *mat.Matrix
	wo    *mat.Matrix
}

func newMHA(dim, heads int, sigma float64, seed uint64) *mha {
	return &mha{
		heads: heads,
		wq:    mat.NearIdentity(dim, sigma, seed^0x71),
		wk:    mat.NearIdentity(dim, sigma, seed^0x72),
		wv:    mat.NearIdentity(dim, sigma, seed^0x73),
		wo:    mat.NearIdentity(dim, sigma, seed^0x74),
	}
}

// headSlice extracts the per-head column block [h*dh, (h+1)*dh) of x·W
// into an arena-backed matrix.
func headSlice(ar *mat.Arena, xw *mat.Matrix, h, dh int) *mat.Matrix {
	out := ar.Matrix(xw.Rows, dh)
	for i := 0; i < xw.Rows; i++ {
		copy(out.Row(i), xw.Row(i)[h*dh:(h+1)*dh])
	}
	return out
}

// apply computes multi-head attention with queries from a and keys/values
// from b, returning a matrix shaped like a. Every temporary — projections,
// per-head slices, attention scores, the concatenated output — lives in
// the arena, so a forward pass is allocation-free in steady state.
func (m *mha) apply(ar *mat.Arena, a, b *mat.Matrix) *mat.Matrix {
	dim := a.Cols
	dh := dim / m.heads
	aw := mat.MatMulInto(ar.Matrix(a.Rows, dim), a, m.wq)
	bk := mat.MatMulInto(ar.Matrix(b.Rows, dim), b, m.wk)
	bv := mat.MatMulInto(ar.Matrix(b.Rows, dim), b, m.wv)
	concat := ar.Matrix(a.Rows, dim)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < m.heads; h++ {
		qh := headSlice(ar, aw, h, dh)
		kh := headSlice(ar, bk, h, dh)
		vh := headSlice(ar, bv, h, dh)
		scores := mat.MatMulTInto(ar.Matrix(qh.Rows, kh.Rows), qh, kh)
		scores.ScaleInPlace(scale)
		scores.SoftmaxRows()
		oh := mat.MatMulInto(ar.Matrix(scores.Rows, vh.Cols), scores, vh)
		for i := 0; i < a.Rows; i++ {
			copy(concat.Row(i)[h*dh:(h+1)*dh], oh.Row(i))
		}
	}
	return mat.MatMulInto(ar.Matrix(concat.Rows, m.wo.Cols), concat, m.wo)
}

// ffn is a two-layer feed-forward block with GELU.
type ffn struct {
	w1, w2 *mat.Matrix
}

func newFFN(dim int, sigma float64, seed uint64) *ffn {
	return &ffn{
		w1: mat.NearIdentity(dim, sigma, seed^0x75),
		w2: mat.NearIdentity(dim, sigma, seed^0x76),
	}
}

func (f *ffn) apply(ar *mat.Arena, x *mat.Matrix) *mat.Matrix {
	h := mat.MatMulInto(ar.Matrix(x.Rows, f.w1.Cols), x, f.w1)
	for i := 0; i < h.Rows; i++ {
		mat.GELU(h.Row(i))
	}
	return mat.MatMulInto(ar.Matrix(h.Rows, f.w2.Cols), h, f.w2)
}

// enhancerLayer is one feature-enhancer layer: bidirectional cross-attention
// plus feed-forward, each with residual and layer norm.
type enhancerLayer struct {
	i2t *mha // Q=image, K/V=text
	t2i *mha // Q=text, K/V=image
	fi  *ffn
	ft  *ffn
}

func newEnhancerLayer(dim, heads int, sigma float64, seed uint64) *enhancerLayer {
	return &enhancerLayer{
		i2t: newMHA(dim, heads, sigma, seed^0xe1),
		t2i: newMHA(dim, heads, sigma, seed^0xe2),
		fi:  newFFN(dim, sigma, seed^0xe3),
		ft:  newFFN(dim, sigma, seed^0xe4),
	}
}

// attnGate scales the attended delta before the residual addition. Trained
// grounding models learn such gates; a modest fixed gate keeps the layers'
// mixing real while preventing the common-mode text mixture from swamping
// each token's own identity.
const attnGate = 0.15

// residualLN computes LayerNorm(x + gate·delta) row-wise, in place on x.
func residualLN(x, delta *mat.Matrix, gate float32) {
	delta.ScaleInPlace(gate)
	x.AddInPlace(delta)
	for i := 0; i < x.Rows; i++ {
		mat.LayerNorm(x.Row(i), nil, nil)
	}
}

// apply runs the layer, mutating arena-backed copies and returning the
// enhanced pair. The returned matrices live in the arena and stay valid
// until the arena is released.
func (l *enhancerLayer) apply(ar *mat.Arena, xi, xt *mat.Matrix) (*mat.Matrix, *mat.Matrix) {
	ci := ar.Matrix(xi.Rows, xi.Cols)
	copy(ci.Data, xi.Data)
	ct := ar.Matrix(xt.Rows, xt.Cols)
	copy(ct.Data, xt.Data)
	xi, xt = ci, ct
	residualLN(xi, l.i2t.apply(ar, xi, xt), attnGate)
	residualLN(xt, l.t2i.apply(ar, xt, xi), attnGate)
	residualLN(xi, l.fi.apply(ar, xi), attnGate)
	residualLN(xt, l.ft.apply(ar, xt), attnGate)
	return xi, xt
}
