// Package xmodal implements the cross-modality transformer used by the
// rerank stage (Section VI-B, Fig. 5): a feature enhancer whose
// image-to-text and text-to-image cross-attention layers align the two
// modalities, followed by a decoder that grounds the query in candidate
// boxes.
//
// The attention arithmetic is real — multi-head projections, scaled dot
// products, softmax, residuals, layer norm — with deterministic
// residual-dominant weights (near-identity plus seeded noise), so the layers
// propagate and mix semantic signal the way a trained grounding model's do
// without requiring training. Image region tokens carry fine-grained
// features (attributes, relations, neighbour context, box position) that the
// fast-search index cannot represent; this asymmetry is exactly why rerank
// recovers the complex-query accuracy the ablation (Table IV) attributes
// to it.
package xmodal

import (
	"math"

	"repro/internal/mat"
)

// mha is one multi-head cross-attention block with output projection.
type mha struct {
	heads int
	wq    *mat.Matrix // D×D, consumed in per-head column slices
	wk    *mat.Matrix
	wv    *mat.Matrix
	wo    *mat.Matrix
}

func newMHA(dim, heads int, sigma float64, seed uint64) *mha {
	return &mha{
		heads: heads,
		wq:    mat.NearIdentity(dim, sigma, seed^0x71),
		wk:    mat.NearIdentity(dim, sigma, seed^0x72),
		wv:    mat.NearIdentity(dim, sigma, seed^0x73),
		wo:    mat.NearIdentity(dim, sigma, seed^0x74),
	}
}

// headSlice extracts the per-head column block [h*dh, (h+1)*dh) of x·W.
func headSlice(xw *mat.Matrix, h, dh int) *mat.Matrix {
	out := mat.NewMatrix(xw.Rows, dh)
	for i := 0; i < xw.Rows; i++ {
		copy(out.Row(i), xw.Row(i)[h*dh:(h+1)*dh])
	}
	return out
}

// apply computes multi-head attention with queries from a and keys/values
// from b, returning a matrix shaped like a.
func (m *mha) apply(a, b *mat.Matrix) *mat.Matrix {
	dim := a.Cols
	dh := dim / m.heads
	aw := mat.MatMul(a, m.wq)
	bk := mat.MatMul(b, m.wk)
	bv := mat.MatMul(b, m.wv)
	concat := mat.NewMatrix(a.Rows, dim)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < m.heads; h++ {
		qh := headSlice(aw, h, dh)
		kh := headSlice(bk, h, dh)
		vh := headSlice(bv, h, dh)
		scores := mat.MatMulT(qh, kh)
		scores.ScaleInPlace(scale)
		scores.SoftmaxRows()
		oh := mat.MatMul(scores, vh)
		for i := 0; i < a.Rows; i++ {
			copy(concat.Row(i)[h*dh:(h+1)*dh], oh.Row(i))
		}
	}
	return mat.MatMul(concat, m.wo)
}

// ffn is a two-layer feed-forward block with GELU.
type ffn struct {
	w1, w2 *mat.Matrix
}

func newFFN(dim int, sigma float64, seed uint64) *ffn {
	return &ffn{
		w1: mat.NearIdentity(dim, sigma, seed^0x75),
		w2: mat.NearIdentity(dim, sigma, seed^0x76),
	}
}

func (f *ffn) apply(x *mat.Matrix) *mat.Matrix {
	h := mat.MatMul(x, f.w1)
	for i := 0; i < h.Rows; i++ {
		mat.GELU(h.Row(i))
	}
	return mat.MatMul(h, f.w2)
}

// enhancerLayer is one feature-enhancer layer: bidirectional cross-attention
// plus feed-forward, each with residual and layer norm.
type enhancerLayer struct {
	i2t *mha // Q=image, K/V=text
	t2i *mha // Q=text, K/V=image
	fi  *ffn
	ft  *ffn
}

func newEnhancerLayer(dim, heads int, sigma float64, seed uint64) *enhancerLayer {
	return &enhancerLayer{
		i2t: newMHA(dim, heads, sigma, seed^0xe1),
		t2i: newMHA(dim, heads, sigma, seed^0xe2),
		fi:  newFFN(dim, sigma, seed^0xe3),
		ft:  newFFN(dim, sigma, seed^0xe4),
	}
}

// attnGate scales the attended delta before the residual addition. Trained
// grounding models learn such gates; a modest fixed gate keeps the layers'
// mixing real while preventing the common-mode text mixture from swamping
// each token's own identity.
const attnGate = 0.15

// residualLN computes LayerNorm(x + gate·delta) row-wise, in place on x.
func residualLN(x, delta *mat.Matrix, gate float32) {
	delta.ScaleInPlace(gate)
	x.AddInPlace(delta)
	for i := 0; i < x.Rows; i++ {
		mat.LayerNorm(x.Row(i), nil, nil)
	}
}

// apply runs the layer, mutating copies and returning the enhanced pair.
func (l *enhancerLayer) apply(xi, xt *mat.Matrix) (*mat.Matrix, *mat.Matrix) {
	xi = xi.Clone()
	xt = xt.Clone()
	residualLN(xi, l.i2t.apply(xi, xt), attnGate)
	residualLN(xt, l.t2i.apply(xt, xi), attnGate)
	residualLN(xi, l.fi.apply(xi), attnGate)
	residualLN(xt, l.ft.apply(xt), attnGate)
	return xi, xt
}
