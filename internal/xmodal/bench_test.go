package xmodal

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/query"
	"repro/internal/video"
)

// BenchmarkGroundFrame measures the per-keyframe rerank cost (Fig. 11(d)'s
// unit of work).
func BenchmarkGroundFrame(b *testing.B) {
	space := embed.NewSpace(64, 32, 1)
	model := New(space, Config{Seed: 1})
	te := &embed.TextEncoder{Space: space}
	toks := te.Tokens(query.Parse("A red car side by side with another car, both positioned in the center of the road."))
	f := &video.Frame{VideoID: 1, Index: 0, Context: []string{"road"}}
	for i := 0; i < 6; i++ {
		f.Objects = append(f.Objects, video.Object{
			Track: int64(i), Class: "car", Attrs: []string{"red"},
			Box:       video.Box{X: 0.1 * float64(i), Y: 0.4, W: 0.1, H: 0.07},
			Behaviors: []string{"driving"},
		})
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		model.GroundFrame(f, toks)
	}
}
