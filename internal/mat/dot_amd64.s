//go:build amd64 && !purego

#include "textflag.h"

// SSE2 scoring kernels. Both functions implement exactly the reduction
// orders documented in kernels.go, so their results are bit-identical to
// the portable Go implementations (pinned by TestDot4RowsMatchesGeneric and
// TestAxpyKernelMatchesGeneric).

// func dot4rows(dst []float32, q, block []float32)
//
// Scores four consecutive rows of the row-major block (stride len(q))
// against q, writing the four inner products to dst[0:4]. Per row, the
// 4-aligned prefix accumulates in the four SSE lanes (element i in lane
// i%4), lanes combine as (l0+l2)+(l1+l3), and tail elements accumulate
// serially — the canonical 4-lane order of kernels.go.
TEXT ·dot4rows(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), BX
	MOVQ q_base+24(FP), SI
	MOVQ q_len+32(FP), CX
	MOVQ block_base+48(FP), DI

	// Row pointers: DI, R9 = DI+stride, R10 = DI+2*stride, R11 = DI+3*stride.
	MOVQ CX, R8
	SHLQ $2, R8           // stride in bytes
	LEAQ (DI)(R8*1), R9
	LEAQ (DI)(R8*2), R10
	LEAQ (R9)(R8*2), R11

	XORPS X0, X0          // row-0 lanes
	XORPS X1, X1          // row-1 lanes
	XORPS X2, X2          // row-2 lanes
	XORPS X3, X3          // row-3 lanes

	MOVQ CX, DX
	SHRQ $2, DX           // quad count
	JZ   combine

quad:
	MOVUPS (SI), X4       // q[i:i+4]
	MOVUPS (DI), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (R9), X6
	MULPS  X4, X6
	ADDPS  X6, X1
	MOVUPS (R10), X7
	MULPS  X4, X7
	ADDPS  X7, X2
	MOVUPS (R11), X8
	MULPS  X4, X8
	ADDPS  X8, X3
	ADDQ   $16, SI
	ADDQ   $16, DI
	ADDQ   $16, R9
	ADDQ   $16, R10
	ADDQ   $16, R11
	DECQ   DX
	JNZ    quad

combine:
	// Each accumulator [l0 l1 l2 l3] -> lane0 = (l0+l2)+(l1+l3).
	MOVAPS  X0, X4
	MOVHLPS X0, X4        // X4 low pair = [l2 l3]
	ADDPS   X4, X0        // X0 = [l0+l2, l1+l3, ...]
	PSHUFD  $0x55, X0, X4 // X4 lane0 = l1+l3
	ADDSS   X4, X0        // X0 lane0 = (l0+l2)+(l1+l3)

	MOVAPS  X1, X4
	MOVHLPS X1, X4
	ADDPS   X4, X1
	PSHUFD  $0x55, X1, X4
	ADDSS   X4, X1

	MOVAPS  X2, X4
	MOVHLPS X2, X4
	ADDPS   X4, X2
	PSHUFD  $0x55, X2, X4
	ADDSS   X4, X2

	MOVAPS  X3, X4
	MOVHLPS X3, X4
	ADDPS   X4, X3
	PSHUFD  $0x55, X3, X4
	ADDSS   X4, X3

	// Serial tail: remaining len(q)%4 elements.
	MOVQ CX, DX
	ANDQ $3, DX
	JZ   store

tail:
	MOVSS (SI), X4
	MOVSS (DI), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R9), X6
	MULSS X4, X6
	ADDSS X6, X1
	MOVSS (R10), X7
	MULSS X4, X7
	ADDSS X7, X2
	MOVSS (R11), X8
	MULSS X4, X8
	ADDSS X8, X3
	ADDQ  $4, SI
	ADDQ  $4, DI
	ADDQ  $4, R9
	ADDQ  $4, R10
	ADDQ  $4, R11
	DECQ  DX
	JNZ   tail

store:
	MOVSS X0, (BX)
	MOVSS X1, 4(BX)
	MOVSS X2, 8(BX)
	MOVSS X3, 12(BX)
	RET

// func axpyKernel(dst []float32, alpha float32, x []float32)
//
// dst[j] += alpha * x[j] for j < len(dst). Lanes hold different output
// elements, so vectorization cannot change any per-element accumulation
// order — bit-identical to the scalar loop.
TEXT ·axpyKernel(SB), NOSPLIT, $0-56
	MOVQ   dst_base+0(FP), DI
	MOVQ   dst_len+8(FP), CX
	MOVSS  alpha+24(FP), X0
	SHUFPS $0x00, X0, X0  // broadcast alpha to all lanes
	MOVQ   x_base+32(FP), SI

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   atail

aquad:
	MOVUPS (SI), X1
	MULPS  X0, X1
	MOVUPS (DI), X2
	ADDPS  X2, X1
	MOVUPS X1, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   DX
	JNZ    aquad

atail:
	ANDQ $3, CX
	JZ   adone

atailloop:
	MOVSS (SI), X1
	MULSS X0, X1
	MOVSS (DI), X2
	ADDSS X2, X1
	MOVSS X1, (DI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   atailloop

adone:
	RET
