//go:build amd64 && !purego

#include "textflag.h"

// func dot8rows(dst []float32, q, block []float32)
//
// AVX2 tier: scores EIGHT consecutive rows of the row-major block (stride
// len(q)) against q, writing the eight inner products to dst[0:8]. Each
// row still reduces in the canonical 4-lane order of kernels.go — the
// 256-bit registers hold TWO rows' 4-lane accumulators side by side (row
// pair A in the low 128 bits, B in the high 128), never eight partial
// sums of one row. The combine and tail are therefore identical per row
// to dot4rows, and results are bit-identical to dot8rowsGeneric (pinned
// by TestDot8RowsMatchesGeneric).
//
// The main loop consumes two quads (eight floats) per row per iteration
// through full 32-byte loads, repacked into [A-quad | B-quad] pair form
// with VPERM2F128; the two quads then accumulate SEQUENTIALLY (quad i
// before quad i+4), so every lane keeps its serial chain. Deliberately
// MULPS+ADDPS, not FMA: VFMADD rounds once where the contract rounds
// twice, which would break bit-identity with the SSE2/purego tiers.
TEXT ·dot8rows(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), BX
	MOVQ q_base+24(FP), SI
	MOVQ q_len+32(FP), CX
	MOVQ block_base+48(FP), DI

	// Row pointers: DI plus R9..R15 at successive strides.
	MOVQ CX, R8
	SHLQ $2, R8            // stride in bytes
	LEAQ (DI)(R8*1), R9
	LEAQ (DI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	LEAQ (R10)(R8*2), R12
	LEAQ (R11)(R8*2), R13
	LEAQ (R12)(R8*2), R14
	LEAQ (R13)(R8*2), R15

	VXORPS Y0, Y0, Y0      // rows 0/1 lanes (low/high 128)
	VXORPS Y1, Y1, Y1      // rows 2/3 lanes
	VXORPS Y2, Y2, Y2      // rows 4/5 lanes
	VXORPS Y3, Y3, Y3      // rows 6/7 lanes

	// One advancing byte index (AX) against nine fixed bases keeps loop
	// overhead at a single increment.
	XORQ AX, AX

	MOVQ CX, DX
	SHRQ $3, DX            // double-quad count
	JZ   quad8one

oct8:
	// Two quads per iteration. The query halves come in through
	// VBROADCASTF128 (a pure load µop) and the row pairs through
	// VMOVUPS + VINSERTF128-from-memory, whose blend µop is
	// port-0/1/5-flexible — the loop has no port-5-only shuffles at all,
	// which is what lets the 8-row width actually clear the SSE2 tier's
	// front-end-bound throughput.
	VBROADCASTF128 (SI)(AX*1), Y4   // [q_i   | q_i  ]
	VBROADCASTF128 16(SI)(AX*1), Y5 // [q_i+4 | q_i+4]

	// Rows 0/1: quad i, then quad i+4 — serial per-lane chains.
	VMOVUPS     (DI)(AX*1), X6
	VINSERTF128 $1, (R9)(AX*1), Y6, Y6
	VMULPS      Y4, Y6, Y6
	VADDPS      Y6, Y0, Y0
	VMOVUPS     16(DI)(AX*1), X7
	VINSERTF128 $1, 16(R9)(AX*1), Y7, Y7
	VMULPS      Y5, Y7, Y7
	VADDPS      Y7, Y0, Y0

	// Rows 2/3.
	VMOVUPS     (R10)(AX*1), X8
	VINSERTF128 $1, (R11)(AX*1), Y8, Y8
	VMULPS      Y4, Y8, Y8
	VADDPS      Y8, Y1, Y1
	VMOVUPS     16(R10)(AX*1), X9
	VINSERTF128 $1, 16(R11)(AX*1), Y9, Y9
	VMULPS      Y5, Y9, Y9
	VADDPS      Y9, Y1, Y1

	// Rows 4/5.
	VMOVUPS     (R12)(AX*1), X6
	VINSERTF128 $1, (R13)(AX*1), Y6, Y6
	VMULPS      Y4, Y6, Y6
	VADDPS      Y6, Y2, Y2
	VMOVUPS     16(R12)(AX*1), X7
	VINSERTF128 $1, 16(R13)(AX*1), Y7, Y7
	VMULPS      Y5, Y7, Y7
	VADDPS      Y7, Y2, Y2

	// Rows 6/7.
	VMOVUPS     (R14)(AX*1), X8
	VINSERTF128 $1, (R15)(AX*1), Y8, Y8
	VMULPS      Y4, Y8, Y8
	VADDPS      Y8, Y3, Y3
	VMOVUPS     16(R14)(AX*1), X9
	VINSERTF128 $1, 16(R15)(AX*1), Y9, Y9
	VMULPS      Y5, Y9, Y9
	VADDPS      Y9, Y3, Y3

	ADDQ $32, AX
	DECQ DX
	JNZ  oct8

quad8one:
	// Odd leftover quad (len(q)%8 >= 4): one 16-byte step in pair form.
	MOVQ  CX, DX
	ANDQ  $4, DX
	JZ    combine8

	VBROADCASTF128 (SI)(AX*1), Y4 // q[i:i+4] in both halves

	VMOVUPS     (DI)(AX*1), X5
	VINSERTF128 $1, (R9)(AX*1), Y5, Y5
	VMULPS      Y4, Y5, Y5
	VADDPS      Y5, Y0, Y0

	VMOVUPS     (R10)(AX*1), X6
	VINSERTF128 $1, (R11)(AX*1), Y6, Y6
	VMULPS      Y4, Y6, Y6
	VADDPS      Y6, Y1, Y1

	VMOVUPS     (R12)(AX*1), X7
	VINSERTF128 $1, (R13)(AX*1), Y7, Y7
	VMULPS      Y4, Y7, Y7
	VADDPS      Y7, Y2, Y2

	VMOVUPS     (R14)(AX*1), X8
	VINSERTF128 $1, (R15)(AX*1), Y8, Y8
	VMULPS      Y4, Y8, Y8
	VADDPS      Y8, Y3, Y3

	ADDQ $16, AX

combine8:
	// Fast path for dim%4 == 0 (all production dims): a ymm transpose
	// turns the four pair registers into packed per-row sums with ~16
	// µops instead of the 49-µop per-row scalar combine. Every addition
	// keeps the canonical operand order — (l0+l2)+(l1+l3) per row — the
	// transpose only rearranges which register holds which lane.
	MOVQ CX, DX
	ANDQ $3, DX
	JNZ  combineSlow

	// Step 1: pair lanes l0·l2 and l1·l3 for rows 0-3 (Y0/Y1) and rows
	// 4-7 (Y2/Y3). After the adds, element k of each half holds
	// row-interleaved (l0+l2) and (l1+l3) values.
	VUNPCKLPS Y1, Y0, Y4 // [r0l0 r2l0 r0l1 r2l1 | r1l0 r3l0 r1l1 r3l1]
	VUNPCKHPS Y1, Y0, Y5 // [r0l2 r2l2 r0l3 r2l3 | r1l2 r3l2 r1l3 r3l3]
	VADDPS    Y5, Y4, Y4 // [r0a r2a r0b r2b | r1a r3a r1b r3b]  a=l0+l2 b=l1+l3
	VUNPCKLPS Y3, Y2, Y6
	VUNPCKHPS Y3, Y2, Y7
	VADDPS    Y7, Y6, Y6 // [r4a r6a r4b r6b | r5a r7a r5b r7b]

	// Step 2: gather the a's and b's, one add finishes every row.
	VSHUFPS $0x44, Y6, Y4, Y8 // [r0a r2a r4a r6a | r1a r3a r5a r7a]
	VSHUFPS $0xEE, Y6, Y4, Y9 // [r0b r2b r4b r6b | r1b r3b r5b r7b]
	VADDPS  Y9, Y8, Y8        // [s0 s2 s4 s6 | s1 s3 s5 s7]

	// Step 3: interleave the halves into dst order and store.
	VEXTRACTF128 $1, Y8, X9 // [s1 s3 s5 s7]
	VUNPCKLPS    X9, X8, X4 // [s0 s1 s2 s3]
	VUNPCKHPS    X9, X8, X5 // [s4 s5 s6 s7]
	VMOVUPS      X4, (BX)
	VMOVUPS      X5, 16(BX)
	VZEROUPPER
	RET

combineSlow:
	// Split each pair register into per-row 128-bit accumulators, then
	// leave AVX before the legacy-SSE lane combine (VZEROUPPER avoids the
	// SSE/AVX transition penalty).
	VEXTRACTF128 $1, Y0, X9  // row 1 lanes
	VEXTRACTF128 $1, Y1, X10 // row 3 lanes
	VEXTRACTF128 $1, Y2, X11 // row 5 lanes
	VEXTRACTF128 $1, Y3, X12 // row 7 lanes
	VZEROUPPER

	// Per row: [l0 l1 l2 l3] -> lane0 = (l0+l2)+(l1+l3), exactly as in
	// dot4rows (PSHUFD $0x4E pairs l0·l2 and l1·l3 in one shuffle).
	PSHUFD $0x4E, X0, X4
	ADDPS  X4, X0
	PSHUFD $0x55, X0, X4
	ADDSS  X4, X0

	PSHUFD $0x4E, X9, X4
	ADDPS  X4, X9
	PSHUFD $0x55, X9, X4
	ADDSS  X4, X9

	PSHUFD $0x4E, X1, X4
	ADDPS  X4, X1
	PSHUFD $0x55, X1, X4
	ADDSS  X4, X1

	PSHUFD $0x4E, X10, X4
	ADDPS  X4, X10
	PSHUFD $0x55, X10, X4
	ADDSS  X4, X10

	PSHUFD $0x4E, X2, X4
	ADDPS  X4, X2
	PSHUFD $0x55, X2, X4
	ADDSS  X4, X2

	PSHUFD $0x4E, X11, X4
	ADDPS  X4, X11
	PSHUFD $0x55, X11, X4
	ADDSS  X4, X11

	PSHUFD $0x4E, X3, X4
	ADDPS  X4, X3
	PSHUFD $0x55, X3, X4
	ADDSS  X4, X3

	PSHUFD $0x4E, X12, X4
	ADDPS  X4, X12
	PSHUFD $0x55, X12, X4
	ADDSS  X4, X12

	// Serial tail: remaining len(q)%4 elements, per row (AX still
	// indexes all nine bases).
	MOVQ CX, DX
	ANDQ $3, DX
	JZ   store8

tail8:
	MOVSS (SI)(AX*1), X4
	MOVSS (DI)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R9)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X9
	MOVSS (R10)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X1
	MOVSS (R11)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X10
	MOVSS (R12)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X2
	MOVSS (R13)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X11
	MOVSS (R14)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X3
	MOVSS (R15)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X12
	ADDQ  $4, AX
	DECQ  DX
	JNZ   tail8

store8:
	MOVSS X0, (BX)
	MOVSS X9, 4(BX)
	MOVSS X1, 8(BX)
	MOVSS X10, 12(BX)
	MOVSS X2, 16(BX)
	MOVSS X11, 20(BX)
	MOVSS X3, 24(BX)
	MOVSS X12, 28(BX)
	RET
