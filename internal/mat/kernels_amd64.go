//go:build amd64 && !purego

package mat

// The baseline amd64 kernels in dot_amd64.s use only SSE2 instructions
// (the amd64 baseline), so they need no CPU-feature detection; the avx2
// tier in dot8_amd64.s is gated on detection (cpu_amd64.go). Build with
// the purego tag to force the portable implementations (e.g. to
// cross-check the assembly in tests or benchmarks).

// dot4rows scores four consecutive rows of a row-major block (stride
// len(q)) against q into dst[0:4], each row in the canonical 4-lane
// reduction order — bit-identical to dot4rowsGeneric.
//
//go:noescape
func dot4rows(dst []float32, q, block []float32)

// dot8rows is the AVX2 tier: eight consecutive rows per pass into
// dst[0:8], each row still in the canonical 4-lane reduction order —
// bit-identical to dot8rowsGeneric. Callers must check hasAVX2 (the tier
// dispatch in ScoreRows does).
//
//go:noescape
func dot8rows(dst []float32, q, block []float32)

// axpyKernel computes dst[j] += alpha*x[j] over len(dst) elements
// (len(x) >= len(dst)); bit-identical to axpyGeneric.
//
//go:noescape
func axpyKernel(dst []float32, alpha float32, x []float32)
