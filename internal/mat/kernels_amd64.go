//go:build amd64 && !purego

package mat

// The amd64 kernels in dot_amd64.s use only SSE2 instructions (the amd64
// baseline), so they need no CPU-feature detection. Build with the purego
// tag to force the portable implementations (e.g. to cross-check the
// assembly in tests or benchmarks).

// dot4rows scores four consecutive rows of a row-major block (stride
// len(q)) against q into dst[0:4], each row in the canonical 4-lane
// reduction order — bit-identical to dot4rowsGeneric.
//
//go:noescape
func dot4rows(dst []float32, q, block []float32)

// axpyKernel computes dst[j] += alpha*x[j] over len(dst) elements
// (len(x) >= len(dst)); bit-identical to axpyGeneric.
//
//go:noescape
func axpyKernel(dst []float32, alpha float32, x []float32)
