//go:build arm64 && !purego

package mat

// The arm64 kernels in dot_arm64.s are the NEON port of the 4-lane
// contract: 128-bit Advanced SIMD registers hold exactly the four
// accumulator lanes, and the kernels use unfused FMUL+FADD (never FMLA —
// its single rounding would break bit-identity with the amd64 and purego
// tiers). NEON is baseline on AArch64, so no feature detection is needed.
// Build with the purego tag to force the portable implementations.

// dot4rows scores four consecutive rows of a row-major block (stride
// len(q)) against q into dst[0:4], each row in the canonical 4-lane
// reduction order — bit-identical to dot4rowsGeneric.
//
//go:noescape
func dot4rows(dst []float32, q, block []float32)

// axpyKernel computes dst[j] += alpha*x[j] over len(dst) elements
// (len(x) >= len(dst)); bit-identical to axpyGeneric.
//
//go:noescape
func axpyKernel(dst []float32, alpha float32, x []float32)

// dot8rows exists on arm64 only to satisfy the tier dispatch; hasAVX2 is
// constant-false here, so it is never selected.
func dot8rows(dst []float32, q, block []float32) { dot8rowsGeneric(dst, q, block) }
