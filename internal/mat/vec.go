// Package mat provides the small dense linear-algebra kernel used across the
// repository: float32 vectors and matrices, similarity primitives, and the
// neural-network building blocks (softmax, layer normalisation, activations)
// needed by the encoders and the cross-modality transformer.
//
// Everything operates on plain slices so callers can alias into larger
// buffers; no function retains its arguments.
package mat

import (
	"fmt"
	"math"
)

// Vec is a dense float32 vector. The zero value is an empty vector.
type Vec = []float32

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Dot returns the inner product of a and b, accumulated in the canonical
// serial element order (see kernels.go). It panics if the lengths differ.
func Dot(a, b Vec) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(a), len(b)))
	}
	return dotKernel(a, b)
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v Vec) float32 {
	var s float32
	i := 0
	for ; i+4 <= len(v); i += 4 {
		x := v[i : i+4 : i+4]
		s += x[0] * x[0]
		s += x[1] * x[1]
		s += x[2] * x[2]
		s += x[3] * x[3]
	}
	for ; i < len(v); i++ {
		s += v[i] * v[i]
	}
	return float32(math.Sqrt(float64(s)))
}

// Normalize scales v in place to unit L2 norm and returns v.
// A zero vector is returned unchanged.
func Normalize(v Vec) Vec {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Normalized returns a unit-norm copy of v.
func Normalized(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return Normalize(out)
}

// Cosine returns the cosine similarity between a and b.
// If either vector is zero it returns 0.
func Cosine(a, b Vec) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// SqDist returns the squared Euclidean distance between a and b,
// accumulated in the canonical serial element order.
// It panics if the lengths differ.
func SqDist(a, b Vec) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SqDist length mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		d0 := x[0] - y[0]
		s += d0 * d0
		d1 := x[1] - y[1]
		s += d1 * d1
		d2 := x[2] - y[2]
		s += d2 * d2
		d3 := x[3] - y[3]
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Add stores a+b into dst and returns dst. dst may alias a or b.
func Add(dst, a, b Vec) Vec {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b Vec) Vec {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale multiplies v in place by s and returns v.
func Scale(v Vec, s float32) Vec {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Axpy computes dst += alpha*x element-wise and returns dst.
func Axpy(dst Vec, alpha float32, x Vec) Vec {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
	return dst
}

// Clone returns a copy of v.
func Clone(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Softmax rewrites v in place with the numerically stable softmax of its
// entries and returns v. An empty vector is returned unchanged.
func Softmax(v Vec) Vec {
	if len(v) == 0 {
		return v
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - max)))
		v[i] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// LayerNorm normalises v in place to zero mean and unit variance, then
// applies elementwise gain and bias (which may be nil for identity), and
// returns v.
func LayerNorm(v, gain, bias Vec) Vec {
	if len(v) == 0 {
		return v
	}
	var mean float32
	for _, x := range v {
		mean += x
	}
	mean /= float32(len(v))
	var varsum float32
	for _, x := range v {
		d := x - mean
		varsum += d * d
	}
	const eps = 1e-5
	inv := 1 / float32(math.Sqrt(float64(varsum/float32(len(v))+eps)))
	for i := range v {
		v[i] = (v[i] - mean) * inv
		if gain != nil {
			v[i] *= gain[i]
		}
		if bias != nil {
			v[i] += bias[i]
		}
	}
	return v
}

// ReLU applies max(0,x) in place and returns v.
func ReLU(v Vec) Vec {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
	return v
}

// GELU applies the tanh-approximated Gaussian error linear unit in place and
// returns v.
func GELU(v Vec) Vec {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, x := range v {
		x64 := float64(x)
		v[i] = float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
	}
	return v
}
