package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The kernels promise ONE canonical reduction order — the 4-lane order
// documented in kernels.go — so every test here demands bit-identical
// results (math.Float32bits equality, not tolerance) between the optimized
// kernels (including the amd64 assembly) and plain reference loops, across
// zero lengths, odd lengths and non-multiple-of-4 dimensions.

// dotRef is the reference scalar inner product, spelling out the canonical
// 4-lane reduction order naively: lane l accumulates elements i ≡ l (mod 4)
// of the 4-aligned prefix, lanes combine as (l0+l2)+(l1+l3), and tail
// elements accumulate serially. Every optimized path must match it bit for
// bit.
func dotRef(a, b []float32) float32 {
	var lanes [4]float32
	n := len(a) &^ 3
	for i := 0; i < n; i++ {
		lanes[i%4] += a[i] * b[i]
	}
	s := (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// matMulRef is the naive triple loop with the canonical per-output-element
// k order.
func matMulRef(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// matMulSkipZeroRef mirrors the pre-kernel MatMul exactly, including its
// skip of zero-valued a elements; the kernels must match it bit for bit on
// finite data (adding a zero product never changes a finite accumulator).
func matMulSkipZeroRef(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func randVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// kernelDims covers zero length, odd lengths, every residue mod 4, and
// sizes beyond one unrolled block.
var kernelDims = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16, 17, 31, 32, 33, 63, 64, 67}

func TestDotBitIdenticalToReference(t *testing.T) {
	for _, n := range kernelDims {
		for seed := uint64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(n)))
			a, b := randVec(rng, n), randVec(rng, n)
			got, want := Dot(a, b), dotRef(a, b)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("n=%d seed=%d: Dot=%x ref=%x", n, seed, math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

// TestDot4RowsMatchesGeneric cross-checks the architecture kernel (SSE
// assembly on amd64) against the portable Go implementation: same 4-lane
// reduction order, bit-identical results, across tail lengths.
func TestDot4RowsMatchesGeneric(t *testing.T) {
	for _, dim := range kernelDims {
		if dim == 0 {
			continue
		}
		rng := rand.New(rand.NewPCG(uint64(dim), 0xa5))
		q := randVec(rng, dim)
		block := randVec(rng, 4*dim)
		var got, want [4]float32
		dot4rows(got[:], q, block)
		dot4rowsGeneric(want[:], q, block)
		for r := 0; r < 4; r++ {
			if math.Float32bits(got[r]) != math.Float32bits(want[r]) {
				t.Fatalf("dim=%d row %d: asm %x generic %x", dim, r, math.Float32bits(got[r]), math.Float32bits(want[r]))
			}
		}
	}
}

// TestVectorKernelToggleBitIdentical pins that disabling the SIMD kernels
// (the benchmark toggle) changes nothing but speed.
func TestVectorKernelToggleBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0xa7))
	const dim, rows = 33, 9
	q := randVec(rng, dim)
	block := randVec(rng, rows*dim)
	a := &Matrix{Rows: 5, Cols: 7, Data: randVec(rng, 35)}
	b := &Matrix{Rows: 7, Cols: 9, Data: randVec(rng, 63)}

	simdScores := ScoreRows(nil, q, block, dim)
	simdMul := MatMul(a, b)

	prev := SetVectorKernels(false)
	genScores := ScoreRows(nil, q, block, dim)
	genMul := MatMul(a, b)
	SetVectorKernels(prev)

	if !bitsEqual(simdScores, genScores) {
		t.Fatal("ScoreRows differs between SIMD and portable kernels")
	}
	if !bitsEqual(simdMul.Data, genMul.Data) {
		t.Fatal("MatMul differs between SIMD and portable kernels")
	}
}

// TestAxpyKernelMatchesGeneric cross-checks the AXPY kernel the same way.
func TestAxpyKernelMatchesGeneric(t *testing.T) {
	for _, n := range kernelDims {
		rng := rand.New(rand.NewPCG(uint64(n), 0xa6))
		x := randVec(rng, n)
		base := randVec(rng, n)
		alpha := float32(rng.NormFloat64())
		got := append([]float32(nil), base...)
		want := append([]float32(nil), base...)
		axpyKernel(got, alpha, x)
		axpyGeneric(want, alpha, x)
		if !bitsEqual(got, want) {
			t.Fatalf("n=%d: axpy kernel diverges from generic", n)
		}
	}
}

func TestScoreRowsBitIdenticalToPerRowDot(t *testing.T) {
	for _, dim := range kernelDims {
		if dim == 0 {
			continue // ScoreRows requires dim > 0
		}
		for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 17} {
			rng := rand.New(rand.NewPCG(uint64(dim), uint64(rows)))
			q := randVec(rng, dim)
			block := randVec(rng, rows*dim)
			got := ScoreRows(nil, q, block, dim)
			if len(got) != rows {
				t.Fatalf("dim=%d rows=%d: got %d scores", dim, rows, len(got))
			}
			for r := 0; r < rows; r++ {
				want := dotRef(q, block[r*dim:(r+1)*dim])
				if math.Float32bits(got[r]) != math.Float32bits(want) {
					t.Fatalf("dim=%d row %d: got %x want %x", dim, r, math.Float32bits(got[r]), math.Float32bits(want))
				}
			}
		}
	}
}

func TestSqDistBitIdenticalToReference(t *testing.T) {
	for _, n := range kernelDims {
		rng := rand.New(rand.NewPCG(uint64(n), 77))
		a, b := randVec(rng, n), randVec(rng, n)
		var want float32
		for i := range a {
			d := a[i] - b[i]
			want += d * d
		}
		if got := SqDist(a, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("n=%d: SqDist=%x ref=%x", n, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestNormBitIdenticalToReference(t *testing.T) {
	for _, n := range kernelDims {
		rng := rand.New(rand.NewPCG(uint64(n), 78))
		v := randVec(rng, n)
		var s float32
		for _, x := range v {
			s += x * x
		}
		want := float32(math.Sqrt(float64(s)))
		if got := Norm(v); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("n=%d: Norm=%x ref=%x", n, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestMatMulBitIdenticalToReference(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{0, 0, 0}, {1, 1, 1}, {2, 3, 4}, {3, 5, 7}, {5, 4, 3},
		{7, 7, 7}, {1, 9, 2}, {4, 64, 33}, {9, 13, 300}, // wider than one column tile
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewPCG(uint64(sh.m*100+sh.k*10+sh.n), 5))
		a := &Matrix{Rows: sh.m, Cols: sh.k, Data: randVec(rng, sh.m*sh.k)}
		b := &Matrix{Rows: sh.k, Cols: sh.n, Data: randVec(rng, sh.k*sh.n)}
		// Sprinkle zeros so the skip-zero reference exercises its skip.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		got := MatMul(a, b)
		if !bitsEqual(got.Data, matMulRef(a, b).Data) {
			t.Fatalf("%dx%d·%dx%d: MatMul differs from naive reference", sh.m, sh.k, sh.k, sh.n)
		}
		if !bitsEqual(got.Data, matMulSkipZeroRef(a, b).Data) {
			t.Fatalf("%dx%d·%dx%d: MatMul differs from the seed's skip-zero loop", sh.m, sh.k, sh.k, sh.n)
		}
	}
}

func TestMatMulTBitIdenticalToPerCellDot(t *testing.T) {
	shapes := []struct{ m, n, d int }{
		{0, 0, 1}, {1, 1, 1}, {3, 4, 5}, {5, 3, 17}, {2, 9, 64}, {4, 4, 0},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewPCG(uint64(sh.m*100+sh.n*10+sh.d), 6))
		a := &Matrix{Rows: sh.m, Cols: sh.d, Data: randVec(rng, sh.m*sh.d)}
		b := &Matrix{Rows: sh.n, Cols: sh.d, Data: randVec(rng, sh.n*sh.d)}
		got := MatMulT(a, b)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want := dotRef(a.Row(i), b.Row(j))
				if math.Float32bits(got.At(i, j)) != math.Float32bits(want) {
					t.Fatalf("(%d,%d): got %x want %x", i, j, math.Float32bits(got.At(i, j)), math.Float32bits(want))
				}
			}
		}
	}
}

func TestMatVecBitIdenticalToPerRowDot(t *testing.T) {
	for _, sh := range []struct{ m, n int }{{0, 3}, {3, 0}, {1, 1}, {4, 7}, {9, 33}} {
		rng := rand.New(rand.NewPCG(uint64(sh.m*10+sh.n), 7))
		m := &Matrix{Rows: sh.m, Cols: sh.n, Data: randVec(rng, sh.m*sh.n)}
		v := randVec(rng, sh.n)
		got := MatVec(m, v)
		for i := 0; i < sh.m; i++ {
			want := dotRef(m.Row(i), v)
			if math.Float32bits(got[i]) != math.Float32bits(want) {
				t.Fatalf("row %d: got %x want %x", i, math.Float32bits(got[i]), math.Float32bits(want))
			}
		}
	}
}

func TestScratchZeroedAfterReuse(t *testing.T) {
	s := GetScratch(100)
	for i := range s.Buf {
		s.Buf[i] = 42
	}
	s.Release()
	s2 := GetScratch(100)
	defer s2.Release()
	for i, x := range s2.Buf {
		if x != 0 {
			t.Fatalf("reused scratch not zeroed at %d: %v", i, x)
		}
	}
}

func TestScratchOversizedRequests(t *testing.T) {
	s := GetScratch(1 << 23) // beyond maxClass: plain allocation
	if len(s.Buf) != 1<<23 {
		t.Fatalf("oversized scratch length %d", len(s.Buf))
	}
	s.Release() // must not panic or pollute the pools
	z := GetScratch(0)
	if len(z.Buf) != 0 {
		t.Fatalf("zero scratch length %d", len(z.Buf))
	}
	z.Release()
}

func TestArenaReuseZeroesAndRecycles(t *testing.T) {
	ar := GetArena()
	v := ar.Vec(10)
	m := ar.Matrix(3, 4)
	for i := range v {
		v[i] = 1
	}
	for i := range m.Data {
		m.Data[i] = 2
	}
	ar.Release()

	ar2 := GetArena()
	defer ar2.Release()
	v2 := ar2.Vec(10)
	m2 := ar2.Matrix(3, 4)
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("arena vec not zeroed at %d", i)
		}
	}
	if m2.Rows != 3 || m2.Cols != 4 {
		t.Fatalf("arena matrix shape %dx%d", m2.Rows, m2.Cols)
	}
	for i, x := range m2.Data {
		if x != 0 {
			t.Fatalf("arena matrix not zeroed at %d", i)
		}
	}
}

func TestTopKResetEquivalentToFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	reused := NewTopK(3)
	for round := 0; round < 5; round++ {
		k := 1 + int(rng.Uint64()%8)
		reused.Reset(k)
		fresh := NewTopK(k)
		for i := 0; i < 50; i++ {
			id := int64(rng.Uint64() % 20)
			score := float32(rng.NormFloat64())
			reused.Push(id, score)
			fresh.Push(id, score)
		}
		a, b := reused.Sorted(), fresh.Sorted()
		if len(a) != len(b) {
			t.Fatalf("round %d: %d vs %d items", round, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d item %d: %v vs %v", round, i, a[i], b[i])
			}
		}
	}
}

func TestGetTopKIsReset(t *testing.T) {
	tk := GetTopK(2)
	tk.Push(1, 1)
	tk.Push(2, 2)
	PutTopK(tk)
	tk2 := GetTopK(4)
	defer PutTopK(tk2)
	if tk2.Len() != 0 {
		t.Fatalf("pooled TopK not empty: %d", tk2.Len())
	}
	tk2.Push(7, 0.5)
	got := tk2.Sorted()
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("pooled TopK misbehaves: %v", got)
	}
}
