package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMul(t *testing.T) {
	a := FromRows([]Vec{{1, 2}, {3, 4}})
	b := FromRows([]Vec{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		approx(t, c.Data[i], w, 1e-5, "matmul")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatMulT(t *testing.T) {
	a := FromRows([]Vec{{1, 0}, {0, 1}})
	b := FromRows([]Vec{{2, 3}, {4, 5}, {6, 7}})
	c := MatMulT(a, b) // 2x3: c[i][j] = dot(a_i, b_j)
	if c.Rows != 2 || c.Cols != 3 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	approx(t, c.At(0, 0), 2, 1e-6, "c00")
	approx(t, c.At(1, 2), 7, 1e-6, "c12")
}

func TestMatVec(t *testing.T) {
	m := FromRows([]Vec{{1, 2, 3}, {4, 5, 6}})
	v := MatVec(m, Vec{1, 1, 1})
	approx(t, v[0], 6, 1e-6, "mv0")
	approx(t, v[1], 15, 1e-6, "mv1")
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected ragged panic")
		}
	}()
	FromRows([]Vec{{1, 2}, {1}})
}

func TestIdentityAndNearIdentity(t *testing.T) {
	id := Identity(3)
	v := Vec{1, 2, 3}
	out := MatVec(id, v)
	if !AlmostEqual(out, v, 1e-6) {
		t.Fatalf("identity transform changed vector: %v", out)
	}
	ni := NearIdentity(16, 0.01, 42)
	// Near-identity should approximately preserve a vector's direction.
	x := UnitGaussianVec(16, 7)
	y := Normalized(MatVec(ni, x))
	if Cosine(x, y) < 0.95 {
		t.Fatalf("near-identity distorted direction too much: cos=%v", Cosine(x, y))
	}
}

func TestRandGaussianDeterminism(t *testing.T) {
	a := RandGaussian(4, 4, 1, 99)
	b := RandGaussian(4, 4, 1, 99)
	c := RandGaussian(4, 4, 1, 100)
	if !AlmostEqual(a.Data, b.Data, 0) {
		t.Fatal("same seed must give identical matrices")
	}
	if AlmostEqual(a.Data, c.Data, 1e-9) {
		t.Fatal("different seeds must differ")
	}
}

func TestUnitGaussianVecNearOrthogonal(t *testing.T) {
	// In high dimension, independently seeded unit Gaussians are nearly
	// orthogonal; this is the property the vocabulary embedding relies on.
	const dim = 256
	a := UnitGaussianVec(dim, 1)
	b := UnitGaussianVec(dim, 2)
	if c := Cosine(a, b); math.Abs(float64(c)) > 0.25 {
		t.Fatalf("expected near-orthogonal unit Gaussians, cos=%v", c)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromRows([]Vec{{0, 0}, {1, 3}})
	m.SoftmaxRows()
	approx(t, m.At(0, 0), 0.5, 1e-5, "row0 uniform")
	if m.At(1, 1) <= m.At(1, 0) {
		t.Fatal("softmax must preserve ordering within row")
	}
}

// Property: (A·B)·v == A·(B·v) for random small matrices.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := RandGaussian(3, 4, 1, seed)
		b := RandGaussian(4, 5, 1, seed+1)
		v := GaussianVec(5, 1, seed+2)
		left := MatVec(MatMul(a, b), v)
		right := MatVec(a, MatVec(b, v))
		return AlmostEqual(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMulT(a, b) equals MatMul(a, transpose(b)).
func TestMatMulTMatchesTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := RandGaussian(3, 4, 1, seed)
		b := RandGaussian(5, 4, 1, seed+9)
		bt := NewMatrix(4, 5)
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		return AlmostEqual(MatMulT(a, b).Data, MatMul(a, bt).Data, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
