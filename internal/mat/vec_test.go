package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float32, msg string) {
	t.Helper()
	if math.Abs(float64(got-want)) > float64(tol) {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestDot(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, -5, 6}
	approx(t, Dot(a, b), 12, 1e-6, "dot")
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := Vec{3, 4}
	approx(t, Norm(v), 5, 1e-6, "norm")
	Normalize(v)
	approx(t, Norm(v), 1, 1e-6, "unit norm")
	approx(t, v[0], 0.6, 1e-6, "x")
	approx(t, v[1], 0.8, 1e-6, "y")
}

func TestNormalizeZeroVector(t *testing.T) {
	v := Vec{0, 0, 0}
	Normalize(v)
	for _, x := range v {
		if x != 0 {
			t.Fatal("zero vector must stay zero")
		}
	}
}

func TestCosineZero(t *testing.T) {
	if c := Cosine(Vec{0, 0}, Vec{1, 1}); c != 0 {
		t.Fatalf("cosine with zero vector = %v, want 0", c)
	}
}

func TestCosineSelf(t *testing.T) {
	v := Vec{0.3, -0.7, 0.1}
	approx(t, Cosine(v, v), 1, 1e-5, "self cosine")
}

func TestSqDist(t *testing.T) {
	approx(t, SqDist(Vec{1, 2}, Vec{4, 6}), 25, 1e-6, "sqdist")
}

func TestAddSubScaleAxpy(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, 5}
	dst := NewVec(2)
	Add(dst, a, b)
	approx(t, dst[0], 4, 1e-6, "add0")
	Sub(dst, b, a)
	approx(t, dst[1], 3, 1e-6, "sub1")
	Scale(dst, 2)
	approx(t, dst[0], 4, 1e-6, "scale0")
	Axpy(dst, -1, Vec{4, 6})
	approx(t, dst[0], 0, 1e-6, "axpy0")
	approx(t, dst[1], 0, 1e-6, "axpy1")
}

func TestSoftmaxSumsToOne(t *testing.T) {
	v := Vec{1, 2, 3, 4}
	Softmax(v)
	var sum float32
	for _, x := range v {
		sum += x
	}
	approx(t, sum, 1, 1e-5, "softmax sum")
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Fatal("softmax must preserve order")
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	v := Vec{1000, 1000, 1000}
	Softmax(v)
	for _, x := range v {
		approx(t, x, 1.0/3, 1e-5, "uniform softmax with large inputs")
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	if out := Softmax(Vec{}); len(out) != 0 {
		t.Fatal("empty softmax must stay empty")
	}
}

func TestLayerNorm(t *testing.T) {
	v := Vec{1, 2, 3, 4}
	LayerNorm(v, nil, nil)
	var mean float32
	for _, x := range v {
		mean += x
	}
	approx(t, mean/4, 0, 1e-5, "layernorm mean")
	var varsum float32
	for _, x := range v {
		varsum += x * x
	}
	approx(t, varsum/4, 1, 1e-3, "layernorm variance")
}

func TestLayerNormGainBias(t *testing.T) {
	v := Vec{1, 2}
	LayerNorm(v, Vec{2, 2}, Vec{1, 1})
	approx(t, v[0]+v[1], 2, 1e-4, "gain/bias symmetric sum")
}

func TestReLUAndGELU(t *testing.T) {
	v := Vec{-1, 0, 2}
	ReLU(v)
	if v[0] != 0 || v[1] != 0 || v[2] != 2 {
		t.Fatalf("relu got %v", v)
	}
	g := Vec{-10, 0, 10}
	GELU(g)
	approx(t, g[0], 0, 1e-3, "gelu(-10)")
	approx(t, g[1], 0, 1e-6, "gelu(0)")
	approx(t, g[2], 10, 1e-3, "gelu(10)")
}

// Property: normalisation is idempotent and yields unit norm.
func TestNormalizeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		v := make(Vec, 8)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		if Norm(v) == 0 {
			return true
		}
		Normalize(v)
		n1 := Norm(v)
		Normalize(v)
		n2 := Norm(v)
		return math.Abs(float64(n1-1)) < 1e-4 && math.Abs(float64(n2-1)) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz, |dot(a,b)| <= |a||b|.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		a, b := make(Vec, 6), make(Vec, 6)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		return math.Abs(float64(Dot(a, b))) <= float64(Norm(a)*Norm(b))+1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for unit vectors, SqDist = 2 - 2*dot (the identity Section V-A
// of the paper relies on).
func TestUnitDistanceIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		a, b := make(Vec, 10), make(Vec, 10)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		if Norm(a) == 0 || Norm(b) == 0 {
			return true
		}
		Normalize(a)
		Normalize(b)
		lhs := SqDist(a, b)
		rhs := 2 - 2*Dot(a, b)
		return math.Abs(float64(lhs-rhs)) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
