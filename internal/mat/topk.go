package mat

import "sort"

// Scored pairs an item identifier with a similarity score. Higher scores are
// better throughout the repository (vectors are unit-normalised so inner
// product equals cosine similarity).
type Scored struct {
	ID    int64
	Score float32
}

// TopK collects the k highest-scoring items from a stream using a bounded
// min-heap. The heap orders by the same canonical total order Sorted
// reports — descending score with ascending-ID tie-break — so the retained
// set is exactly the canonical top-k whatever the arrival order. That
// invariant is what lets a scatter-gather merge of per-shard exact top-k
// lists reproduce the monolithic exact top-k bit for bit even when distinct
// items carry equal scores (common here: the same synthetic object observed
// in two frames encodes identically). The zero value is not usable;
// construct with NewTopK.
type TopK struct {
	k    int
	heap []Scored // min-heap: worst item in canonical order at the root
}

// worse reports whether a ranks strictly below b in the canonical order
// (descending score, ascending ID).
func worse(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// NewTopK returns a collector retaining the k best items. k must be > 0.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("mat: NewTopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Scored, 0, k)}
}

// Reset empties the collector and re-arms it to retain the k best items,
// reusing the existing heap storage when it is large enough. A reset
// collector is indistinguishable from a fresh NewTopK(k); hot search paths
// pair it with GetTopK/PutTopK to avoid a heap allocation per query.
func (t *TopK) Reset(k int) {
	if k <= 0 {
		panic("mat: TopK.Reset requires k > 0")
	}
	t.k = k
	if cap(t.heap) < k {
		t.heap = make([]Scored, 0, k)
	} else {
		t.heap = t.heap[:0]
	}
}

// Len returns the number of items currently retained.
func (t *TopK) Len() int { return len(t.heap) }

// Threshold returns the lowest retained score once the collector is full,
// and negative infinity semantics (-MaxFloat32) before that. Callers can use
// it to skip work for candidates that cannot enter the result.
func (t *TopK) Threshold() float32 {
	if len(t.heap) < t.k {
		return -3.4028235e38
	}
	return t.heap[0].Score
}

// Push offers an item to the collector.
func (t *TopK) Push(id int64, score float32) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Scored{ID: id, Score: score})
		t.siftUp(len(t.heap) - 1)
		return
	}
	cand := Scored{ID: id, Score: score}
	if !worse(t.heap[0], cand) {
		return
	}
	t.heap[0] = cand
	t.siftDown(0)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r < n && worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// Sorted returns the retained items in descending score order, breaking ties
// by ascending ID for determinism. The collector remains usable afterwards.
func (t *TopK) Sorted() []Scored {
	out := make([]Scored, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SortScoredDesc sorts a slice of Scored in descending score order with
// ascending-ID tie-break, in place.
func SortScoredDesc(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
}
