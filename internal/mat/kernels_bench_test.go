package mat

import (
	"math/rand/v2"
	"testing"
)

// Microbenchmarks for the scoring kernels. Run with
//
//	go test -bench . -run '^$' -benchmem ./internal/mat/
//
// allocs/op must stay at zero for every kernel here — these are the inner
// loops of both query stages.

func benchVec(n int, seed uint64) Vec {
	rng := rand.New(rand.NewPCG(seed, seed^0xb))
	v := make(Vec, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func BenchmarkDot32(b *testing.B)  { benchmarkDot(b, 32) }
func BenchmarkDot64(b *testing.B)  { benchmarkDot(b, 64) }
func BenchmarkDot256(b *testing.B) { benchmarkDot(b, 256) }

func benchmarkDot(b *testing.B, n int) {
	x, y := benchVec(n, 1), benchVec(n, 2)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n))
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkScoreRows32x1024(b *testing.B) { benchmarkScoreRows(b, 32, 1024) }
func BenchmarkScoreRows64x1024(b *testing.B) { benchmarkScoreRows(b, 64, 1024) }

func benchmarkScoreRows(b *testing.B, dim, rows int) {
	q := benchVec(dim, 3)
	block := benchVec(dim*rows, 4)
	dst := make([]float32, rows)
	b.ReportAllocs()
	b.SetBytes(int64(4 * dim * rows))
	for i := 0; i < b.N; i++ {
		ScoreRows(dst, q, block, dim)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	x := &Matrix{Rows: 64, Cols: 64, Data: benchVec(64*64, 5)}
	y := &Matrix{Rows: 64, Cols: 64, Data: benchVec(64*64, 6)}
	dst := NewMatrix(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulT64(b *testing.B) {
	x := &Matrix{Rows: 64, Cols: 64, Data: benchVec(64*64, 7)}
	y := &Matrix{Rows: 64, Cols: 64, Data: benchVec(64*64, 8)}
	dst := NewMatrix(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTInto(dst, x, y)
	}
}

func BenchmarkSqDist32(b *testing.B) {
	x, y := benchVec(32, 9), benchVec(32, 10)
	b.ReportAllocs()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += SqDist(x, y)
	}
	_ = sink
}

func BenchmarkTopKPooled(b *testing.B) {
	scores := benchVec(1024, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		top := GetTopK(100)
		for j, s := range scores {
			top.Push(int64(j), s)
		}
		PutTopK(top)
	}
}

func BenchmarkArenaMatrixCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ar := GetArena()
		_ = ar.Matrix(16, 64)
		_ = ar.Vec(64)
		ar.Release()
	}
}
