package mat

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix whose rows are copies of the given vectors.
// All rows must share one length. An empty input yields a 0×0 matrix.
func FromRows(rows []Vec) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: FromRows ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vec {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatMul returns a*b as a new matrix. It panics if the inner dimensions
// disagree. Hot paths with reusable destinations call MatMulInto directly.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(NewMatrix(a.Rows, b.Cols), a, b)
}

// MatMulT returns a*bᵀ, i.e. out[i][j] = dot(a.Row(i), b.Row(j)), as a new
// matrix. It panics if the column counts disagree.
func MatMulT(a, b *Matrix) *Matrix {
	return MatMulTInto(NewMatrix(a.Rows, b.Rows), a, b)
}

// MatVec returns m·v as a new vector. It panics if len(v) != m.Cols.
func MatVec(m *Matrix, v Vec) Vec {
	return MatVecInto(NewVec(m.Rows), m, v)
}

// AddInPlace adds b to a element-wise. It panics on shape mismatch.
func (m *Matrix) AddInPlace(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AddInPlace shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// SoftmaxRows applies Softmax to each row in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		Softmax(m.Row(i))
	}
}

// RandGaussian fills a rows×cols matrix with N(0, sigma²) entries drawn from
// a deterministic PCG stream seeded by seed.
func RandGaussian(rows, cols int, sigma float64, seed uint64) *Matrix {
	//lovo:nondeterministic-ok PCG seeded purely from the seed argument: same seed, same matrix, on every machine
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * sigma)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// NearIdentity returns an n×n matrix equal to identity plus N(0, sigma²)
// noise; the residual-dominant initialisation used by the cross-modality
// transformer so that randomly initialised layers still propagate signal.
func NearIdentity(n int, sigma float64, seed uint64) *Matrix {
	m := RandGaussian(n, n, sigma, seed)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] += 1
	}
	return m
}

// GaussianVec returns a length-n vector of N(0, sigma²) entries drawn from a
// deterministic stream seeded by seed.
func GaussianVec(n int, sigma float64, seed uint64) Vec {
	//lovo:nondeterministic-ok PCG seeded purely from the seed argument: same seed, same vector, on every machine
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	v := NewVec(n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * sigma)
	}
	return v
}

// UnitGaussianVec returns a unit-normalised Gaussian vector; with high
// dimension these behave as near-orthogonal directions, which is how
// vocabulary terms obtain distinct embedding directions.
func UnitGaussianVec(n int, seed uint64) Vec {
	return Normalize(GaussianVec(n, 1, seed))
}

// AlmostEqual reports whether a and b agree element-wise within tol.
func AlmostEqual(a, b Vec, tol float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if float32(math.Abs(float64(a[i]-b[i]))) > tol {
			return false
		}
	}
	return true
}
