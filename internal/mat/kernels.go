// Vectorized scoring kernels.
//
// Every inner-product-style reduction in this package — Dot, ScoreRows,
// MatMulT, MatVec — uses ONE canonical reduction order, the 4-lane order:
//
//	lane[l] = Σ a[i]*b[i]  over the 4-aligned prefix, for i ≡ l (mod 4)
//	sum     = (lane0 + lane2) + (lane1 + lane3)
//	sum    += a[i]*b[i]  serially for the remaining tail elements
//
// Four independent accumulator lanes map exactly onto a 128-bit SSE
// register, so the amd64 assembly kernels (dot_amd64.s) and the portable Go
// implementations below produce bit-identical results — the property tests
// pin this across odd lengths, zero lengths and non-multiple-of-4
// dimensions. The order is a hard determinism contract: serial, parallel,
// sharded and replicated query paths all score through these kernels, and
// their answers must match bit for bit whatever the architecture.
//
// MatMul is different: its per-output-element reduction stays in plain
// increasing-k order (the AXPY formulation), which SIMD over the output
// columns cannot perturb — vector lanes there hold *different* output
// elements, never partial sums of one element.
//
// Speed comes from: SSE kernels that score four rows per pass against a
// register-resident query (amd64), bounds-check-eliminated 4-way unrolled
// loops everywhere else, cache-aware column blocking in MatMul, and
// allocation-free operation via the scratch pool (pool.go).

package mat

import "fmt"

// vectorKernels selects the architecture-specific kernels (SSE assembly on
// amd64). The portable implementations produce bit-identical results, so
// the toggle changes speed only; see SetVectorKernels.
var vectorKernels = true

// SetVectorKernels switches between the architecture-specific kernels and
// the portable Go implementations, returning the previous setting. Results
// are bit-identical either way — the toggle exists so benchmarks can
// measure the SIMD contribution end to end. It must not be called while
// other goroutines are scoring.
func SetVectorKernels(on bool) (prev bool) {
	prev = vectorKernels
	vectorKernels = on
	return prev
}

// dotKernel is the portable inner-product kernel implementing the canonical
// 4-lane reduction order. Callers guarantee len(b) >= len(a).
func dotKernel(a, b []float32) float32 {
	var l0, l1, l2, l3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		l0 += x[0] * y[0]
		l1 += x[1] * y[1]
		l2 += x[2] * y[2]
		l3 += x[3] * y[3]
	}
	s := (l0 + l2) + (l1 + l3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot4rowsGeneric scores four consecutive rows of a row-major block (stride
// len(q)) against q, writing the four products into dst[0:4]. It is the
// portable counterpart of the assembly kernel: each row reduces in the
// canonical 4-lane order, so results are bit-identical across
// architectures.
func dot4rowsGeneric(dst []float32, q, block []float32) {
	n := len(q)
	dst[0] = dotKernel(q, block[:n])
	dst[1] = dotKernel(q, block[n:2*n])
	dst[2] = dotKernel(q, block[2*n:3*n])
	dst[3] = dotKernel(q, block[3*n:4*n])
}

// dot8rowsGeneric is the portable twin of the AVX2 dot8rows kernel: eight
// consecutive rows against q into dst[0:8]. Widening to eight rows per
// pass never touches any row's reduction order — each row is still the
// canonical 4-lane dotKernel — so this is bit-identical to the assembly
// tier and to two dot4rowsGeneric calls.
func dot8rowsGeneric(dst []float32, q, block []float32) {
	n := len(q)
	dot4rowsGeneric(dst[:4:4], q, block[:4*n])
	dot4rowsGeneric(dst[4:8:8], q, block[4*n:8*n])
}

// axpyGeneric computes dst[j] += alpha*x[j]. Each output element owns its
// accumulation chain, so unrolling (or SIMD lanes) cannot change any
// reduction order.
func axpyGeneric(dst []float32, alpha float32, x []float32) {
	j := 0
	for ; j+4 <= len(dst); j += 4 {
		d := dst[j : j+4 : j+4]
		v := x[j : j+4 : j+4]
		d[0] += alpha * v[0]
		d[1] += alpha * v[1]
		d[2] += alpha * v[2]
		d[3] += alpha * v[3]
	}
	for ; j < len(dst); j++ {
		dst[j] += alpha * x[j]
	}
}

// ScanBlock is the recommended row count per ScoreRows pass for full-scan
// consumers (flat index, unindexed collections, exhaustive HNSW): large
// enough to amortise the per-block result handling, small enough that the
// score buffer stays in L1.
const ScanBlock = 256

// ScoreRows scores a query against every row of a row-major block in one
// pass: dst[r] = Dot(q, block[r*dim:(r+1)*dim]). It returns dst truncated
// to the row count. dst must have capacity for len(block)/dim scores; a nil
// dst allocates. This is the batch kernel behind the flat-index full scan,
// the IVF coarse ranking, MatVec and MatMulT; results are bit-identical to
// per-row Dot calls.
func ScoreRows(dst []float32, q Vec, block []float32, dim int) []float32 {
	if dim <= 0 || len(q) != dim {
		panic(fmt.Sprintf("mat: ScoreRows query length %d != dim %d", len(q), dim))
	}
	if len(block)%dim != 0 {
		panic(fmt.Sprintf("mat: ScoreRows block length %d not a multiple of dim %d", len(block), dim))
	}
	n := len(block) / dim
	if dst == nil {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	rows4 := dot4rows
	wide := activeTier == tidAVX2
	if !vectorKernels || activeTier == tidPurego {
		rows4 = dot4rowsGeneric
		wide = false
	}
	r := 0
	if wide {
		for ; r+8 <= n; r += 8 {
			dot8rows(dst[r:r+8:r+8], q, block[r*dim:(r+8)*dim])
		}
	}
	for ; r+4 <= n; r += 4 {
		rows4(dst[r:r+4:r+4], q, block[r*dim:(r+4)*dim])
	}
	for ; r < n; r++ {
		dst[r] = dotKernel(q, block[r*dim:(r+1)*dim])
	}
	return dst
}

// ScoreRowsBatch scores Q queries against every row of a row-major block
// in one cache-blocked sweep: dsts[j][r] = Dot(qs[j], block[r*dim:...]).
// Rows are visited in ScanBlock-sized chunks and every query scores the
// chunk while it is cache-resident, so Q queries cost ONE pass over the
// block's memory instead of Q — the win that makes /query/batch and
// coalesced cache misses cheap on scans that exceed the LLC. Each
// (query, row) score goes through the same tiered row kernels as
// ScoreRows, so results are bit-identical to Q independent ScoreRows
// calls.
//
// dsts must hold len(qs) destination slices, each nil (allocated here) or
// with capacity for the row count; it returns dsts with every slice
// truncated to the row count.
func ScoreRowsBatch(dsts [][]float32, qs []Vec, block []float32, dim int) [][]float32 {
	if len(dsts) != len(qs) {
		panic(fmt.Sprintf("mat: ScoreRowsBatch %d dsts for %d queries", len(dsts), len(qs)))
	}
	if dim <= 0 {
		panic(fmt.Sprintf("mat: ScoreRowsBatch dim %d", dim))
	}
	for j, q := range qs {
		if len(q) != dim {
			panic(fmt.Sprintf("mat: ScoreRowsBatch query %d length %d != dim %d", j, len(q), dim))
		}
	}
	if len(block)%dim != 0 {
		panic(fmt.Sprintf("mat: ScoreRowsBatch block length %d not a multiple of dim %d", len(block), dim))
	}
	n := len(block) / dim
	for j := range dsts {
		if dsts[j] == nil {
			dsts[j] = make([]float32, n)
		}
		dsts[j] = dsts[j][:n]
	}
	for r0 := 0; r0 < n; r0 += ScanBlock {
		r1 := r0 + ScanBlock
		if r1 > n {
			r1 = n
		}
		chunk := block[r0*dim : r1*dim]
		for j, q := range qs {
			ScoreRows(dsts[j][r0:r1:r1], q, chunk, dim)
		}
	}
	return dsts
}

// matMulBlock is the column-tile width of MatMulInto: output and B-row
// tiles of this width stay resident in L1/L2 across the k loop. Blocking
// partitions only the independent output columns — the k reduction order of
// every output element is untouched.
const matMulBlock = 256

// MatMulInto computes dst = a·b into a caller-supplied matrix and returns
// dst. dst must be shaped a.Rows×b.Cols and must not alias a or b; its
// previous contents are overwritten. The kernel is cache-blocked over
// output columns with a SIMD/unrolled AXPY core; every out[i][j]
// accumulates its k terms in increasing-k order, bit-identical to the
// naive triple loop.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	axpy := axpyKernel
	if !vectorKernels || activeTier == tidPurego {
		axpy = axpyGeneric
	}
	n := b.Cols
	for j0 := 0; j0 < n; j0 += matMulBlock {
		j1 := j0 + matMulBlock
		if j1 > n {
			j1 = n
		}
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)[j0:j1]
			for j := range orow {
				orow[j] = 0
			}
			for k, av := range arow {
				brow := b.Row(k)[j0:j1]
				axpy(orow, av, brow)
			}
		}
	}
	return dst
}

// MatMulTInto computes dst = a·bᵀ (dst[i][j] = Dot(a.Row(i), b.Row(j)))
// into a caller-supplied a.Rows×b.Rows matrix and returns dst. b's rows are
// contiguous, so each a-row scores against b's block through the multi-row
// ScoreRows kernel; bit-identical to per-cell Dot.
func MatMulTInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulTInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if a.Cols == 0 {
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		return dst
	}
	for i := 0; i < a.Rows; i++ {
		ScoreRows(dst.Row(i), a.Row(i), b.Data, a.Cols)
	}
	return dst
}

// MatVecInto computes dst = m·v into a caller-supplied length-m.Rows vector
// and returns it; bit-identical to per-row Dot.
func MatVecInto(dst Vec, m *Matrix, v Vec) Vec {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: MatVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MatVecInto dst length %d, want %d", len(dst), m.Rows))
	}
	if m.Cols == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	return ScoreRows(dst, v, m.Data, m.Cols)
}
