package mat

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	for i, s := range []float32{0.1, 0.9, 0.5, 0.7, 0.3} {
		tk.Push(int64(i), s)
	}
	got := tk.Sorted()
	if len(got) != 3 {
		t.Fatalf("len=%d want 3", len(got))
	}
	wantIDs := []int64{1, 3, 2} // scores 0.9, 0.7, 0.5
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Fatalf("pos %d: got id %d want %d", i, got[i].ID, w)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Push(1, 0.5)
	tk.Push(2, 0.9)
	got := tk.Sorted()
	if len(got) != 2 || got[0].ID != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2)
	if tk.Threshold() > -3e38 {
		t.Fatal("empty collector must have -inf threshold")
	}
	tk.Push(1, 0.2)
	tk.Push(2, 0.8)
	if tk.Threshold() != 0.2 {
		t.Fatalf("threshold = %v want 0.2", tk.Threshold())
	}
	tk.Push(3, 0.5)
	if tk.Threshold() != 0.5 {
		t.Fatalf("threshold after evict = %v want 0.5", tk.Threshold())
	}
}

func TestTopKTieBreakByID(t *testing.T) {
	tk := NewTopK(3)
	tk.Push(5, 0.5)
	tk.Push(2, 0.5)
	tk.Push(9, 0.5)
	got := tk.Sorted()
	if got[0].ID != 2 || got[1].ID != 5 || got[2].ID != 9 {
		t.Fatalf("tie-break order wrong: %v", got)
	}
}

func TestNewTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k<=0")
		}
	}()
	NewTopK(0)
}

// Property: TopK matches full sort + truncate on random streams.
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 1 + int(rng.Uint64()%200)
		all := make([]Scored, n)
		tk := NewTopK(k)
		for i := 0; i < n; i++ {
			s := Scored{ID: int64(i), Score: float32(rng.Float64())}
			all[i] = s
			tk.Push(s.ID, s.Score)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].ID < all[j].ID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKCanonicalUnderTies: with equal scores at the k boundary, the
// retained set must be the canonical top-k (lowest IDs win) regardless of
// arrival order — the invariant scatter-gather sharding relies on.
func TestTopKCanonicalUnderTies(t *testing.T) {
	orders := [][]int64{
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{3, 5, 1, 4, 2},
	}
	for _, order := range orders {
		tk := NewTopK(3)
		for _, id := range order {
			tk.Push(id, 0.5) // all tied
		}
		got := tk.Sorted()
		want := []int64{1, 2, 3}
		for i, s := range got {
			if s.ID != want[i] {
				t.Fatalf("order %v: retained %v, want IDs %v", order, got, want)
			}
		}
	}
}
