//go:build arm64 && !purego

package mat

// NEON (Advanced SIMD) is part of the arm64 baseline — every AArch64 CPU
// running Go has it — so like SSE2 on amd64 the 4-rows-per-pass NEON
// kernels need no feature probing. There is no avx2-equivalent wider tier
// here yet.

const baselineTierName = TierNEON

const hasBaselineASM = true

const hasAVX2 = false

var hasFMA = false
