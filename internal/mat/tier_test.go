package mat

import (
	"math"
	"math/rand/v2"
	"os"
	"testing"
)

// Cross-tier property suite: every kernel tier this host supports must
// produce byte-identical scores — and therefore byte-identical TopK
// results — on hostile inputs: odd dims, denormals, ±Inf, and row counts
// that exercise the 8-row, 4-row and scalar tails.

// specialVec mixes normal values with denormals and ±Inf. Infinities of
// both signs can meet in one reduction (Inf + -Inf → NaN); that is fine
// for bit-identity testing — on one host every tier runs the same
// hardware arithmetic, so even NaN bit patterns must agree.
func specialVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		switch rng.Uint64() % 10 {
		case 0:
			v[i] = math.Float32frombits(uint32(rng.Uint64() & 0x7FFFFF)) // +denormal
		case 1:
			v[i] = -math.Float32frombits(uint32(rng.Uint64() & 0x7FFFFF)) // -denormal
		case 2:
			v[i] = float32(math.Inf(1))
		case 3:
			v[i] = float32(math.Inf(-1))
		default:
			v[i] = float32(rng.NormFloat64())
		}
	}
	return v
}

// forEachTier runs fn under every tier the host supports, restoring the
// original tier afterwards.
func forEachTier(t *testing.T, fn func(t *testing.T, tier string)) {
	t.Helper()
	orig := KernelTier()
	defer SetKernelTier(orig)
	for _, tier := range KernelTiers() {
		if _, err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%q): %v", tier, err)
		}
		t.Run(tier, func(t *testing.T) { fn(t, tier) })
	}
}

func TestKernelTierRegistry(t *testing.T) {
	orig := KernelTier()
	defer SetKernelTier(orig)

	tiers := KernelTiers()
	if len(tiers) == 0 || tiers[len(tiers)-1] != TierPurego {
		t.Fatalf("KernelTiers() = %v, want purego last", tiers)
	}
	// auto resolves to the widest supported tier (first in detection order).
	if _, err := SetKernelTier(TierAuto); err != nil {
		t.Fatalf("SetKernelTier(auto): %v", err)
	}
	if got := KernelTier(); got != tiers[0] {
		t.Fatalf("auto resolved to %q, want widest %q", got, tiers[0])
	}
	// Every supported tier round-trips.
	for _, tier := range tiers {
		if _, err := SetKernelTier(tier); err != nil {
			t.Fatalf("SetKernelTier(%q): %v", tier, err)
		}
		if got := KernelTier(); got != tier {
			t.Fatalf("KernelTier() = %q after selecting %q", got, tier)
		}
	}
	// Unknown names and unsupported tiers fail without changing the tier.
	SetKernelTier(tiers[0])
	if _, err := SetKernelTier("sse9"); err == nil {
		t.Fatal("SetKernelTier(sse9) succeeded")
	}
	supported := map[string]bool{}
	for _, tier := range tiers {
		supported[tier] = true
	}
	for _, tier := range []string{TierAVX2, TierSSE2, TierNEON} {
		if supported[tier] {
			continue
		}
		if _, err := SetKernelTier(tier); err == nil {
			t.Fatalf("SetKernelTier(%q) succeeded on a host without it", tier)
		}
	}
	if got := KernelTier(); got != tiers[0] {
		t.Fatalf("failed SetKernelTier changed the tier to %q", got)
	}
	// The benchmark toggle overrides the reported tier.
	prev := SetVectorKernels(false)
	if got := KernelTier(); got != TierPurego {
		t.Fatalf("KernelTier() = %q with vector kernels off", got)
	}
	SetVectorKernels(prev)
}

// TestDot8RowsMatchesGeneric cross-checks the AVX2 8-row kernel against
// its portable twin under the Float32bits harness, including denormals,
// infinities and every tail residue.
func TestDot8RowsMatchesGeneric(t *testing.T) {
	for _, dim := range kernelDims {
		if dim == 0 {
			continue
		}
		for seed := uint64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewPCG(uint64(dim), 0xd8+seed))
			q := specialVec(rng, dim)
			block := specialVec(rng, 8*dim)
			var got, want [8]float32
			dot8rows(got[:], q, block)
			dot8rowsGeneric(want[:], q, block)
			for r := 0; r < 8; r++ {
				if math.Float32bits(got[r]) != math.Float32bits(want[r]) {
					t.Fatalf("dim=%d seed=%d row %d: asm %x generic %x",
						dim, seed, r, math.Float32bits(got[r]), math.Float32bits(want[r]))
				}
			}
		}
	}
}

// TestScoreRowsBitIdenticalAcrossTiers pins the tentpole contract: every
// tier produces byte-identical score vectors on hostile inputs, across
// dims of every residue mod 8 and row counts exercising all three tail
// paths (8-row groups, 4-row groups, scalar remainder).
func TestScoreRowsBitIdenticalAcrossTiers(t *testing.T) {
	dims := []int{1, 2, 3, 5, 7, 8, 9, 13, 16, 31, 32, 33, 67}
	rows := []int{1, 3, 4, 7, 8, 9, 15, 16, 17, 40}
	type cse struct {
		dim, rows int
		q, block  Vec
	}
	var cases []cse
	for _, dim := range dims {
		for _, n := range rows {
			rng := rand.New(rand.NewPCG(uint64(dim), uint64(n)^0xbeef))
			cases = append(cases, cse{dim, n, specialVec(rng, dim), specialVec(rng, n*dim)})
		}
	}
	want := make(map[int][]float32, len(cases))
	forEachTier(t, func(t *testing.T, tier string) {
		for i, c := range cases {
			got := ScoreRows(nil, c.q, c.block, c.dim)
			if prev, ok := want[i]; !ok {
				want[i] = got
			} else if !bitsEqual(got, prev) {
				t.Fatalf("dim=%d rows=%d: tier %s diverges from %s",
					c.dim, c.rows, tier, KernelTiers()[0])
			}
		}
	})
}

// TestTopKByteIdenticalAcrossTiers runs the full scan-and-select shape —
// ScoreRows feeding TopK — under every tier and demands byte-identical
// ranked results, IDs and score bits both.
func TestTopKByteIdenticalAcrossTiers(t *testing.T) {
	const dim, n, k = 33, 1000, 25
	rng := rand.New(rand.NewPCG(0x70, 0x4b))
	q := specialVec(rng, dim)
	block := specialVec(rng, n*dim)

	type ranked struct {
		ids    []int64
		scores []uint32
	}
	scan := func() ranked {
		scores := ScoreRows(nil, q, block, dim)
		top := NewTopK(k)
		for r, s := range scores {
			top.Push(int64(r), s)
		}
		var out ranked
		for _, it := range top.Sorted() {
			out.ids = append(out.ids, it.ID)
			out.scores = append(out.scores, math.Float32bits(it.Score))
		}
		return out
	}

	var ref ranked
	haveRef := false
	forEachTier(t, func(t *testing.T, tier string) {
		got := scan()
		if !haveRef {
			ref, haveRef = got, true
			return
		}
		if len(got.ids) != len(ref.ids) {
			t.Fatalf("tier %s: %d results, want %d", tier, len(got.ids), len(ref.ids))
		}
		for i := range got.ids {
			if got.ids[i] != ref.ids[i] || got.scores[i] != ref.scores[i] {
				t.Fatalf("tier %s rank %d: (%d, %x) vs (%d, %x)",
					tier, i, got.ids[i], got.scores[i], ref.ids[i], ref.scores[i])
			}
		}
	})
}

// TestScoreRowsBatchBitIdenticalToIndependent pins that the cache-blocked
// multi-query sweep equals Q independent ScoreRows calls bit for bit, for
// batch widths around and beyond the blocking boundary.
func TestScoreRowsBatchBitIdenticalToIndependent(t *testing.T) {
	for _, qn := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, ScanBlock - 1, ScanBlock, ScanBlock + 3, 3 * ScanBlock} {
			const dim = 19
			rng := rand.New(rand.NewPCG(uint64(qn), uint64(n)))
			qs := make([]Vec, qn)
			for j := range qs {
				qs[j] = specialVec(rng, dim)
			}
			block := specialVec(rng, n*dim)
			got := ScoreRowsBatch(make([][]float32, qn), qs, block, dim)
			for j, q := range qs {
				want := ScoreRows(nil, q, block, dim)
				if !bitsEqual(got[j], want) {
					t.Fatalf("Q=%d n=%d query %d: batch sweep diverges from ScoreRows", qn, n, j)
				}
			}
		}
	}
}

// TestScoreRowsBatchBeatsIndependentSweeps is CI's bench-smoke gate: one
// cache-blocked ScoreRowsBatch sweep at Q=8 must outrun 8 independent
// ScoreRows passes over the same rows. It measures, so it only runs when
// LOVO_BENCH_SMOKE=1 (a dedicated CI step on a quiet runner); the margin
// is deliberately below the ~1.9x measured steady-state, and best-of-3
// damps scheduler noise without hiding a real regression to parity.
func TestScoreRowsBatchBeatsIndependentSweeps(t *testing.T) {
	if os.Getenv("LOVO_BENCH_SMOKE") != "1" {
		t.Skip("set LOVO_BENCH_SMOKE=1 to run the bench-smoke gate")
	}
	const (
		dim    = 32
		rows   = 16384
		qn     = 8
		margin = 1.15
	)
	rng := rand.New(rand.NewPCG(9, 0x18))
	block := make(Vec, dim*rows)
	for i := range block {
		block[i] = float32(rng.NormFloat64())
	}
	qs := make([]Vec, qn)
	for j := range qs {
		qs[j] = make(Vec, dim)
		for i := range qs[j] {
			qs[j][i] = float32(rng.NormFloat64())
		}
	}
	dsts := make([][]float32, qn)
	for j := range dsts {
		dsts[j] = make([]float32, rows)
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best < margin; attempt++ {
		lone := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < qn; j++ {
					ScoreRows(dsts[j], qs[j], block, dim)
				}
			}
		})
		batch := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ScoreRowsBatch(dsts, qs, block, dim)
			}
		})
		speedup := float64(lone.T.Nanoseconds()) / float64(lone.N) /
			(float64(batch.T.Nanoseconds()) / float64(batch.N))
		t.Logf("attempt %d: batched Q=%d sweep %.2fx over independent sweeps", attempt+1, qn, speedup)
		if speedup > best {
			best = speedup
		}
	}
	if best < margin {
		t.Fatalf("batched sweep best-of-3 = %.2fx, want >= %.2fx over %d independent sweeps", best, margin, qn)
	}
}
