// Kernel tier selection.
//
// The scoring kernels come in tiers. Every tier implements the SAME
// canonical 4-lane reduction order per row (kernels.go), so switching
// tiers changes speed only — results stay bit-identical. The tiers differ
// in how many rows they score per pass and which instruction set they use:
//
//	purego  portable Go, one row at a time through dotKernel      (reference)
//	sse2    amd64 baseline assembly, 4 rows per pass              (bit-identical)
//	neon    arm64 baseline assembly, 4 rows per pass              (bit-identical)
//	avx2    amd64 AVX2 assembly, 8 rows per pass (4-lane per row) (bit-identical)
//
// Detection order is widest-first: avx2 (when the CPU and OS support it),
// then the architecture baseline (sse2 on amd64, neon on arm64), then
// purego. The avx2 tier deliberately does NOT use FMA: a fused
// multiply-add rounds once where MULPS+ADDPS round twice, which would
// break bit-identity with the SSE2/portable tiers. Width comes from
// scoring more rows per memory pass, never from changing any row's
// reduction order.
//
// The active tier can be pinned with SetKernelTier (the lovod/lovo
// -kernels flag) or the LOVO_KERNELS environment variable — deployments
// pin a tier for reproducible triage, and bit-identity investigations
// force the purego reference path.

package mat

import (
	"fmt"
	"os"
)

// Kernel tier names, as accepted by SetKernelTier and the LOVO_KERNELS
// environment variable. TierAuto is a request, not a tier: it resolves to
// the widest tier the host supports.
const (
	TierAuto   = "auto"
	TierAVX2   = "avx2"
	TierSSE2   = "sse2"
	TierNEON   = "neon"
	TierPurego = "purego"
)

// tierID orders the tiers narrow→wide so "auto" can pick the maximum
// supported one.
type tierID int

const (
	tidPurego tierID = iota
	tidBaseline
	tidAVX2
)

// activeTier is the currently selected tier. It is set once at init (from
// detection plus LOVO_KERNELS) and by SetKernelTier; like
// SetVectorKernels, changing it while other goroutines score is a race.
var activeTier tierID

// envTierErr records an invalid or unsupported LOVO_KERNELS value seen at
// init. init cannot fail, so the value is ignored there and the error
// surfaced through KernelTierEnvError for the daemons to report at boot.
var envTierErr error

func init() {
	activeTier = bestTier()
	if v := os.Getenv("LOVO_KERNELS"); v != "" {
		if _, err := SetKernelTier(v); err != nil {
			envTierErr = err
		}
	}
}

// bestTier returns the widest tier this host supports.
func bestTier() tierID {
	if hasAVX2 {
		return tidAVX2
	}
	if hasBaselineASM {
		return tidBaseline
	}
	return tidPurego
}

// tierName maps a tierID to its public name on this architecture.
func tierName(t tierID) string {
	switch t {
	case tidAVX2:
		return TierAVX2
	case tidBaseline:
		return baselineTierName
	default:
		return TierPurego
	}
}

// KernelTier reports the name of the active kernel tier: avx2, sse2, neon
// or purego. The SetVectorKernels(false) benchmark toggle overrides the
// tier with purego without changing it; KernelTier reports the effective
// tier, so it reflects that override too.
func KernelTier() string {
	if !vectorKernels {
		return TierPurego
	}
	return tierName(activeTier)
}

// HasAVX2 reports CPU+OS support for the AVX2 kernels, independent of the
// active tier. Integer kernels elsewhere (quant's widening-multiply dot)
// key off the capability rather than the tier: their arithmetic is exact,
// so implementation choice can never change a result bit, and pinning a
// narrower float tier for bit-identity triage must not slow them down.
func HasAVX2() bool { return hasAVX2 }

// KernelTiers lists the tiers this host supports, widest first — the
// detection order of TierAuto.
func KernelTiers() []string {
	var ts []string
	if hasAVX2 {
		ts = append(ts, TierAVX2)
	}
	if hasBaselineASM {
		ts = append(ts, baselineTierName)
	}
	return append(ts, TierPurego)
}

// SetKernelTier selects the kernel tier by name ("auto" resolves to the
// widest supported tier), returning the previously active tier's name. It
// fails if the named tier is unknown or is not supported by this host, so
// a deployment that pins -kernels=avx2 fails fast on a machine without
// AVX2 rather than silently degrading. Like SetVectorKernels, it must not
// be called while other goroutines are scoring.
func SetKernelTier(name string) (prev string, err error) {
	prev = tierName(activeTier)
	var want tierID
	switch name {
	case TierAuto:
		want = bestTier()
	case TierPurego:
		want = tidPurego
	case TierAVX2:
		if !hasAVX2 {
			return prev, fmt.Errorf("mat: kernel tier %q not supported by this CPU (have %v)", name, KernelTiers())
		}
		want = tidAVX2
	case TierSSE2, TierNEON:
		if !hasBaselineASM || name != baselineTierName {
			return prev, fmt.Errorf("mat: kernel tier %q not supported on this architecture (have %v)", name, KernelTiers())
		}
		want = tidBaseline
	default:
		return prev, fmt.Errorf("mat: unknown kernel tier %q (want auto|avx2|sse2|neon|purego)", name)
	}
	activeTier = want
	return prev, nil
}

// KernelTierEnvError returns the error from parsing LOVO_KERNELS at init,
// if any. The daemons report it at boot; an unset or valid variable yields
// nil.
func KernelTierEnvError() error { return envTierErr }
