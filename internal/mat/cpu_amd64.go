//go:build amd64 && !purego

package mat

// Runtime CPU feature detection for the amd64 kernel tiers. SSE2 is the
// amd64 baseline and needs no probing; AVX2 requires CPUID to report the
// feature AND the OS to have enabled AVX state saving (OSXSAVE + XCR0
// bits 1–2), otherwise executing VEX-256 instructions faults. The module
// has no dependencies, so detection is hand-rolled CPUID/XGETBV assembly
// (cpu_amd64.s) rather than x/sys/cpu.

// baselineTierName is the architecture baseline below avx2.
const baselineTierName = TierSSE2

// hasBaselineASM reports that the 4-rows-per-pass baseline assembly
// kernels exist in this build.
const hasBaselineASM = true

// hasAVX2 reports CPU+OS support for the 8-rows-per-pass AVX2 kernels.
var hasAVX2 = detectAVX2()

// hasFMA is detected alongside AVX2 for the /stats report. The kernels
// never use FMA — its single rounding would break bit-identity with the
// two-rounding MULPS+ADDPS tiers — so this only documents headroom.
var hasFMA bool

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	hasFMA = ecx1&(1<<12) != 0
	// XCR0 bits 1 (SSE state) and 2 (AVX upper-half state) must both be
	// OS-enabled before ymm registers are usable.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// cpuid executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller).
//
//go:noescape
func xgetbv() (eax, edx uint32)
