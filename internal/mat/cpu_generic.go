//go:build (!amd64 && !arm64) || purego

package mat

// No assembly kernels in this build: either the architecture has none, or
// the purego tag forced the portable reference implementations.

const baselineTierName = TierPurego

const hasBaselineASM = false

const hasAVX2 = false

var hasFMA = false
