//go:build (!amd64 && !arm64) || purego

package mat

func dot4rows(dst []float32, q, block []float32) { dot4rowsGeneric(dst, q, block) }

func dot8rows(dst []float32, q, block []float32) { dot8rowsGeneric(dst, q, block) }

func axpyKernel(dst []float32, alpha float32, x []float32) { axpyGeneric(dst, alpha, x) }
