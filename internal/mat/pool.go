// Scratch memory for the query hot paths.
//
// Steady-state queries should not allocate: the flat full scan, the
// IMI/IVF-PQ list scans and the cross-modality rerank all run per request
// on the QPS-critical serving tier, and per-query garbage is pure GC
// pressure. This file provides two reuse mechanisms:
//
//   - GetScratch/Scratch.Release: a size-classed sync.Pool of float32
//     buffers for flat scratch (score blocks, lookup tables). The pool
//     stores *Scratch handles, so checkout and return are allocation-free
//     in steady state (pooling bare slices would box the slice header on
//     every Put).
//   - Arena: a bump-style checkout that hands out vectors and matrices from
//     the same pools and returns everything with one Release — the shape
//     the rerank transformer needs, where one forward pass creates dozens
//     of temporaries with a common lifetime.
//
// Pooled memory is plain scratch: callers must not retain references past
// Release, and anything returned to a caller (search results, top-k lists)
// is always freshly copied.

package mat

import (
	"math/bits"
	"sync"
)

// Scratch buffers are pooled in power-of-two size classes from 1<<minClass
// to 1<<maxClass floats; larger requests fall through to plain make and are
// dropped on Release.
const (
	minClass = 6  // 64 floats (256 B)
	maxClass = 22 // 4M floats (16 MiB)
)

var scratchPools [maxClass - minClass + 1]sync.Pool

// Scratch is a pooled float32 buffer handle. Use Buf freely up to its
// length, then Release the handle; neither the handle nor Buf may be used
// afterwards.
type Scratch struct {
	class int // pool index, -1 when unpooled
	Buf   []float32
}

// classFor returns the pool index for a request of n floats, or -1 when the
// request is out of pooled range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minClass {
		c = minClass
	}
	if c > maxClass {
		return -1
	}
	return c - minClass
}

// GetScratch returns a pooled handle whose Buf is a zeroed float32 slice of
// length n.
func GetScratch(n int) *Scratch {
	c := classFor(n)
	if c < 0 {
		return &Scratch{class: -1, Buf: make([]float32, n)}
	}
	var s *Scratch
	if v := scratchPools[c].Get(); v != nil {
		s = v.(*Scratch)
		s.Buf = s.Buf[:n]
		for i := range s.Buf {
			s.Buf[i] = 0
		}
	} else {
		s = &Scratch{class: c, Buf: make([]float32, n, 1<<(c+minClass))}
	}
	return s
}

// Release returns the buffer to its pool.
func (s *Scratch) Release() {
	if s.class < 0 {
		return // oversized one-off; let the GC have it
	}
	s.Buf = s.Buf[:0]
	scratchPools[s.class].Put(s)
}

// Arena hands out pooled vectors and matrices that share one lifetime.
// Acquire with GetArena, allocate freely, and call Release once; every
// checked-out buffer returns to the pools. Not safe for concurrent use —
// each goroutine takes its own arena.
type Arena struct {
	held []*Scratch
	mats []*Matrix
	used int // matrix headers handed out this cycle
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns an empty arena from the pool.
func GetArena() *Arena {
	return arenaPool.Get().(*Arena)
}

// Vec returns a zeroed length-n vector valid until Release.
func (a *Arena) Vec(n int) Vec {
	s := GetScratch(n)
	a.held = append(a.held, s)
	return s.Buf
}

// Matrix returns a zeroed rows×cols matrix valid until Release.
func (a *Arena) Matrix(rows, cols int) *Matrix {
	var m *Matrix
	if a.used < len(a.mats) {
		m = a.mats[a.used]
	} else {
		m = new(Matrix)
		a.mats = append(a.mats, m)
	}
	a.used++
	m.Rows, m.Cols = rows, cols
	m.Data = a.Vec(rows * cols)
	return m
}

// Release returns every buffer to the pools and the arena itself to its
// pool. The arena and everything it handed out must not be used afterwards.
func (a *Arena) Release() {
	for i, s := range a.held {
		s.Release()
		a.held[i] = nil
	}
	a.held = a.held[:0]
	for _, m := range a.mats[:a.used] {
		m.Data = nil
	}
	a.used = 0
	arenaPool.Put(a)
}

// topkPool recycles TopK collectors across Search calls; see GetTopK.
var topkPool = sync.Pool{New: func() any { return &TopK{} }}

// GetTopK returns a pooled top-k collector reset to capacity k. Pair with
// PutTopK once the results have been copied out (TopK.Sorted copies).
func GetTopK(k int) *TopK {
	t := topkPool.Get().(*TopK)
	t.Reset(k)
	return t
}

// PutTopK returns a collector obtained from GetTopK to the pool.
func PutTopK(t *TopK) {
	topkPool.Put(t)
}
