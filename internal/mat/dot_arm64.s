//go:build arm64 && !purego

#include "textflag.h"

// NEON scoring kernels — the arm64 port of the 4-lane contract. A 128-bit
// Advanced SIMD register holds exactly the four accumulator lanes, so the
// structure mirrors dot_amd64.s one for one: quad loop, (l0+l2)+(l1+l3)
// combine, serial tail.
//
// Go's arm64 assembler has no mnemonics for UNFUSED vector FMUL/FADD
// (only the fused VFMLA, whose single rounding would break bit-identity
// with the amd64 and purego tiers), so those two instructions are emitted
// as WORD-encoded machine code. Each WORD carries the canonical
// disassembly in its comment; TestDot4RowsMatchesGeneric pins the
// behaviour against the portable kernels on arm64 CI.
//
// Encodings (single-precision, 4S arrangement):
//	FMUL Vd.4S, Vn.4S, Vm.4S = 0x6E20DC00 | m<<16 | n<<5 | d
//	FADD Vd.4S, Vn.4S, Vm.4S = 0x4E20D400 | m<<16 | n<<5 | d

// func dot4rows(dst []float32, q, block []float32)
//
// Scores four consecutive rows of the row-major block (stride len(q))
// against q, writing the four inner products to dst[0:4] in the canonical
// 4-lane order of kernels.go.
TEXT ·dot4rows(SB), NOSPLIT, $0-72
	MOVD dst_base+0(FP), R0
	MOVD q_base+24(FP), R1
	MOVD q_len+32(FP), R2
	MOVD block_base+48(FP), R3

	// Row pointers: R3, R4 = R3+stride, R5, R6.
	LSL $2, R2, R7         // stride in bytes
	ADD R7, R3, R4
	ADD R7, R4, R5
	ADD R7, R5, R6

	VEOR V0.B16, V0.B16, V0.B16 // row-0 lanes
	VEOR V1.B16, V1.B16, V1.B16 // row-1 lanes
	VEOR V2.B16, V2.B16, V2.B16 // row-2 lanes
	VEOR V3.B16, V3.B16, V3.B16 // row-3 lanes

	LSR $2, R2, R8         // quad count
	CBZ R8, combine

quad:
	VLD1.P 16(R1), [V4.S4] // q[i:i+4]
	VLD1.P 16(R3), [V5.S4]
	VLD1.P 16(R4), [V6.S4]
	VLD1.P 16(R5), [V7.S4]
	VLD1.P 16(R6), [V8.S4]
	WORD $0x6E24DCA5       // FMUL V5.4S, V5.4S, V4.4S
	WORD $0x4E25D400       // FADD V0.4S, V0.4S, V5.4S
	WORD $0x6E24DCC6       // FMUL V6.4S, V6.4S, V4.4S
	WORD $0x4E26D421       // FADD V1.4S, V1.4S, V6.4S
	WORD $0x6E24DCE7       // FMUL V7.4S, V7.4S, V4.4S
	WORD $0x4E27D442       // FADD V2.4S, V2.4S, V7.4S
	WORD $0x6E24DD08       // FMUL V8.4S, V8.4S, V4.4S
	WORD $0x4E28D463       // FADD V3.4S, V3.4S, V8.4S
	SUBS $1, R8
	BNE  quad

combine:
	// Each accumulator [l0 l1 l2 l3] -> scalar (l0+l2)+(l1+l3) in
	// V16..V19 lane 0.
	VEXT $8, V0.B16, V0.B16, V5.B16 // V5 = [l2 l3 l0 l1]
	WORD $0x4E25D410                // FADD V16.4S, V0.4S, V5.4S
	VEXT $4, V16.B16, V16.B16, V5.B16
	FADDS F5, F16, F16

	VEXT $8, V1.B16, V1.B16, V5.B16
	WORD $0x4E25D431                // FADD V17.4S, V1.4S, V5.4S
	VEXT $4, V17.B16, V17.B16, V5.B16
	FADDS F5, F17, F17

	VEXT $8, V2.B16, V2.B16, V5.B16
	WORD $0x4E25D452                // FADD V18.4S, V2.4S, V5.4S
	VEXT $4, V18.B16, V18.B16, V5.B16
	FADDS F5, F18, F18

	VEXT $8, V3.B16, V3.B16, V5.B16
	WORD $0x4E25D473                // FADD V19.4S, V3.4S, V5.4S
	VEXT $4, V19.B16, V19.B16, V5.B16
	FADDS F5, F19, F19

	// Serial tail: remaining len(q)%4 elements.
	AND $3, R2, R8
	CBZ R8, store

tail:
	FMOVS (R1), F4
	FMOVS (R3), F5
	FMULS F4, F5, F5
	FADDS F5, F16, F16
	FMOVS (R4), F6
	FMULS F4, F6, F6
	FADDS F6, F17, F17
	FMOVS (R5), F7
	FMULS F4, F7, F7
	FADDS F7, F18, F18
	FMOVS (R6), F8
	FMULS F4, F8, F8
	FADDS F8, F19, F19
	ADD   $4, R1
	ADD   $4, R3
	ADD   $4, R4
	ADD   $4, R5
	ADD   $4, R6
	SUBS  $1, R8
	BNE   tail

store:
	FMOVS F16, (R0)
	FMOVS F17, 4(R0)
	FMOVS F18, 8(R0)
	FMOVS F19, 12(R0)
	RET

// func axpyKernel(dst []float32, alpha float32, x []float32)
//
// dst[j] += alpha * x[j] for j < len(dst). Lanes hold different output
// elements, so vectorization cannot change any per-element accumulation
// order — bit-identical to the scalar loop.
TEXT ·axpyKernel(SB), NOSPLIT, $0-56
	MOVD  dst_base+0(FP), R0
	MOVD  dst_len+8(FP), R2
	FMOVS alpha+24(FP), F0
	MOVD  x_base+32(FP), R1

	VDUP V0.S[0], V1.S4    // broadcast alpha to all lanes

	LSR $2, R2, R8
	CBZ R8, atail

aquad:
	VLD1.P 16(R1), [V2.S4]
	WORD   $0x6E21DC42     // FMUL V2.4S, V2.4S, V1.4S
	VLD1   (R0), [V3.S4]
	WORD   $0x4E22D463     // FADD V3.4S, V3.4S, V2.4S
	VST1.P [V3.S4], 16(R0)
	SUBS   $1, R8
	BNE    aquad

atail:
	AND $3, R2, R8
	CBZ R8, adone

atailloop:
	FMOVS (R1), F2
	FMULS F0, F2, F2
	FMOVS (R0), F3
	FADDS F2, F3, F3
	FMOVS F3, (R0)
	ADD   $4, R1
	ADD   $4, R0
	SUBS  $1, R8
	BNE   atailloop

adone:
	RET
