// Corpus for the ctxflow analyzer: loaded by the harness under
// repro/internal/svc, library code where the caller's context (and the
// query trace riding it) must be threaded, never dropped or re-minted.
package svc

import "context"

type store struct{}

func (s *store) get(ctx context.Context, k string) (string, error) {
	_ = ctx
	return k, nil
}

// lookup mints a context in a function with none: a boundary that should
// accept one.
func lookup(s *store, k string) (string, error) {
	return s.get(context.Background(), k) // want `context.Background\(\) in library code: lookup should accept a context.Context`
}

// lookupCtx receives a context and discards it both ways: the parameter is
// never read, and the callee gets a fresh Background.
func lookupCtx(ctx context.Context, s *store, k string) (string, error) { // want `lookupCtx accepts a context.Context \(ctx\) but never uses it`
	return s.get(context.Background(), k) // want `lookupCtx receives a context.Context but calls context.Background\(\), dropping the caller's context`
}

// lookupThreaded does it right.
func lookupThreaded(ctx context.Context, s *store, k string) (string, error) {
	return s.get(ctx, k)
}

// lookupDetached drops the context visibly (_) and documents the mint.
func lookupDetached(_ context.Context, s *store, k string) (string, error) {
	//lovo:ctx-ok fire-and-forget audit write that must outlive the request
	return s.get(context.Background(), k)
}

// lookupTODO: a TODO context is still a dropped trace.
func lookupTODO(s *store, k string) (string, error) {
	return s.get(context.TODO(), k) // want `context.TODO\(\) in library code`
}

//lovo:ctx-ok interface parity with the traced variant; nothing here can block or trace
func legacy(ctx context.Context, k string) string {
	return k
}
