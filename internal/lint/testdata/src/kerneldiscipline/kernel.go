// Corpus for the kerneldiscipline analyzer: loaded by the harness once
// under repro/internal/scratch (where reductions are banned) and once
// each under repro/internal/mat and repro/internal/quant (where the same
// code must pass untouched).
package scratch

// dotBad is the forbidden shape: a serial float32 multiply-accumulate,
// bit-different from the canonical 4-lane kernel order.
func dotBad(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i] // want `hand-rolled float32 multiply-accumulate reduction outside internal/mat`
	}
	return s
}

// dotDirected is the same shape with a documented reason.
func dotDirected(a, b []float32) float32 {
	var s float32
	for i := range a {
		//lovo:kernel-ok reference implementation the property test compares against mat.Dot
		s += a[i] * b[i]
	}
	return s
}

// counting is integer accumulation: associative, allowed anywhere.
func counting(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// sums without a product are not the inner-product shape.
func plainSum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}

// perIteration accumulators declared inside the loop body never cross
// elements, so they are not reductions.
func perIteration(rows [][]float32, w []float32) []float32 {
	out := make([]float32, len(rows))
	for i, r := range rows {
		v := r[0] * w[0]
		v += r[1] * w[1]
		out[i] = v
	}
	return out
}

// dotInt8Bad is the forbidden quantized shape: a widening-multiply
// accumulation duplicating quant.DotInt8 without its overflow bound.
func dotInt8Bad(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i]) // want `hand-rolled int8 widening-multiply reduction outside internal/quant`
	}
	return s
}

// dotInt8Directed is the same shape with a documented reason.
func dotInt8Directed(a, b []int8) int32 {
	var s int32
	for i := range a {
		//lovo:kernel-ok reference implementation the property test compares against quant.DotInt8
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// byteChecksum widens but never multiplies: not the quantized-dot shape.
func byteChecksum(xs []int8) int64 {
	var s int64
	for _, x := range xs {
		s += int64(x)
	}
	return s
}

// scaledSum multiplies a widened int8 by a plain int constant — only one
// side of the product is a widening conversion, so it stays quiet.
func scaledSum(xs []int8, k int32) int32 {
	var s int32
	for _, x := range xs {
		s += int32(x) * k
	}
	return s
}
