// Corpus for the kerneldiscipline analyzer: loaded by the harness once
// under repro/internal/scratch (where reductions are banned) and once
// under repro/internal/mat (where the same code must pass untouched).
package scratch

// dotBad is the forbidden shape: a serial float32 multiply-accumulate,
// bit-different from the canonical 4-lane kernel order.
func dotBad(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i] // want `hand-rolled float32 multiply-accumulate reduction outside internal/mat`
	}
	return s
}

// dotDirected is the same shape with a documented reason.
func dotDirected(a, b []float32) float32 {
	var s float32
	for i := range a {
		//lovo:kernel-ok reference implementation the property test compares against mat.Dot
		s += a[i] * b[i]
	}
	return s
}

// counting is integer accumulation: associative, allowed anywhere.
func counting(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// sums without a product are not the inner-product shape.
func plainSum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}

// perIteration accumulators declared inside the loop body never cross
// elements, so they are not reductions.
func perIteration(rows [][]float32, w []float32) []float32 {
	out := make([]float32, len(rows))
	for i, r := range rows {
		v := r[0] * w[0]
		v += r[1] * w[1]
		out[i] = v
	}
	return out
}
