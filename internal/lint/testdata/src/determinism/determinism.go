// Corpus for the determinism analyzer: loaded by the harness under the
// query-path import path repro/internal/core. Lines carrying findings are
// annotated with `// want` regexes; unannotated idioms must stay quiet.
package core

import (
	"math/rand/v2"
	"sort"
	"time"
)

// now is an undocumented wall-clock read on a query path.
func now() time.Time {
	return time.Now() // want `wall-clock read \(time\.Now\)`
}

// nowOK documents why the clock is harmless here.
func nowOK() time.Time {
	//lovo:nondeterministic-ok latency metadata only; results never read it
	return time.Now()
}

// roll is undocumented randomness.
func roll() uint64 {
	return rand.Uint64() // want `math/rand use`
}

// rollOK is seeded from a constant and says so.
func rollOK() uint64 {
	//lovo:nondeterministic-ok PCG seeded from constants: the same stream on every replica
	return rand.New(rand.NewPCG(1, 2)).Uint64()
}

// leak appends in map iteration order and never restores an order.
func leak(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order flows into "keys" via append`
		keys = append(keys, k)
	}
	return keys
}

// collectThenSort is the sanctioned idiom: the sort erases iteration order,
// so the analyzer must stay quiet.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sum accumulates floats in map order; float addition is not associative.
func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order flows into "total" via float accumulation`
		total += v
	}
	return total
}

// counting is associative: integer accumulation over a map is order-free.
func counting(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keyed writes land per element, not in iteration order.
func keyed(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// perIteration state declared inside the loop body is not a leak.
func perIteration(m map[string][]float32) int {
	n := 0
	for _, vs := range m {
		var local []float32
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
