// Corpus for the codecsafety analyzer: loaded by the harness under the
// import path repro/internal/remote. It models the wire codec's sticky
// decoder: raw reads (u8/u32/intv) return attacker-controlled numbers,
// count is the sanctioned bounds-checked read, finish settles the sticky
// error.
package remote

import "errors"

var errTruncated = errors.New("truncated")

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) u8() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.err = errTruncated
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *dec) u32() uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v = v<<8 | uint32(d.u8())
	}
	return v
}

// count reads an element count and rejects any value whose elements cannot
// fit the remaining payload — the one sanctioned way to size a decode loop.
func (d *dec) count(elem int) int {
	n := int(d.u32())
	if rem := len(d.buf) - d.off; elem > 0 && n > rem/elem {
		d.err = errTruncated
		return 0
	}
	return n
}

func (d *dec) finish() error { return d.err }

// decodeUnbounded sizes an allocation from a raw wire value: a forged
// count allocates gigabytes before the payload length is ever consulted.
func decodeUnbounded(d *dec) []int64 {
	n := int(d.u32())
	out := make([]int64, n) // want `allocation sized by "n", a wire-decoded value with no bound check`
	for i := range out {
		out[i] = int64(d.u32())
	}
	return out
}

// decodeInline inlines the raw read straight into make.
func decodeInline(d *dec) []byte {
	return make([]byte, d.u32()) // want `allocation sized directly by an unbounded wire value`
}

// decodeBounded compares the count against a budget before allocating.
func decodeBounded(d *dec) []int64 {
	n := int(d.u32())
	if n > 1024 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.u32())
	}
	return out
}

// decodeCounted goes through count, the bounds-checked read.
func decodeCounted(d *dec) []byte {
	n := d.count(1)
	out := make([]byte, n)
	for i := range out {
		out[i] = d.u8()
	}
	return out
}

// decodeDirected documents an out-of-band bound the analyzer cannot see.
func decodeDirected(d *dec) []byte {
	n := int(d.u32())
	//lovo:codec-ok the caller has already capped the frame at maxFrame, so n is transitively bounded
	return make([]byte, n)
}

const (
	opPing byte = iota + 1
	opQuery
	opStats
)

// handle dispatches ops while holding the sticky decoder: every payload
// handler must settle it with finish.
func handle(d *dec, op byte) error {
	switch op {
	case opPing: // want `op handler opPing never calls the sticky decoder's finish`
		_ = d.u8()
		return nil
	case opQuery:
		_ = d.u32()
		return d.finish()
	//lovo:codec-ok stats carries no request payload; there is nothing to settle
	case opStats:
		return nil
	default:
		return errors.New("bad op")
	}
}

// opName maps op codes to strings with no decoder in sight: not a handler.
func opName(op byte) string {
	switch op {
	case opPing:
		return "ping"
	case opQuery:
		return "query"
	case opStats:
		return "stats"
	default:
		return "unknown"
	}
}
