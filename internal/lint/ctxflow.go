package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow keeps the tracing context threaded end to end. The query trace
// (internal/obs) rides the context.Context; a stage that mints
// context.Background() mid-path silently detaches every span beneath it —
// exactly the failure PR 7's per-stage metrics exist to rule out. In
// library code (everything but cmd/, examples/ and tests) the analyzer
// flags context.Background()/TODO(): harshly inside functions that already
// receive a ctx (the caller's context was dropped), and as a boundary
// finding elsewhere (the function should accept a ctx, or say why not
// with //lovo:ctx-ok). It also flags functions that bind a ctx parameter
// to a name but never read it — a silently severed trace; rename the
// parameter to _ (interface satisfaction) or thread it.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "flags dropped or freshly minted contexts in library code",
	Directive: "ctx-ok",
	Run:       runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if p.PathIn("cmd", "examples") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			hasCtx := funcHasCtxParam(p, fn)
			for _, obj := range droppedCtxParams(p, fn) {
				p.Reportf(fn.Pos(), "%s accepts a context.Context (%s) but never uses it: thread it into callees, or rename the parameter to _", fn.Name.Name, obj.Name())
			}
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				bg := p.PkgFunc(call.Fun, "context", "Background")
				todo := p.PkgFunc(call.Fun, "context", "TODO")
				if !bg && !todo {
					return true
				}
				name := "context.Background()"
				if todo {
					name = "context.TODO()"
				}
				if hasCtx {
					p.Reportf(call.Pos(), "%s receives a context.Context but calls %s, dropping the caller's context (and its trace)", fn.Name.Name, name)
				} else {
					p.Reportf(call.Pos(), "%s in library code: %s should accept a context.Context and thread it", name, fn.Name.Name)
				}
				return true
			})
			return true
		})
	}
}

// funcHasCtxParam reports whether fn declares a context.Context parameter.
func funcHasCtxParam(p *Pass, fn *ast.FuncDecl) bool {
	found := false
	eachCtxParam(p, fn, func(*ast.Ident) { found = true })
	return found
}

// droppedCtxParams returns the named context.Context parameters of fn that
// the body never reads. An unnamed or _-named parameter is a declared,
// visible drop (interface satisfaction) and is not returned.
func droppedCtxParams(p *Pass, fn *ast.FuncDecl) []types.Object {
	var dropped []types.Object
	eachCtxParam(p, fn, func(name *ast.Ident) {
		if name == nil || name.Name == "_" {
			return
		}
		obj := p.ObjectOf(name)
		if obj == nil {
			return
		}
		used := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
				used = true
			}
			return !used
		})
		if !used {
			dropped = append(dropped, obj)
		}
	})
	return dropped
}

// eachCtxParam calls f once per context.Context parameter binding of fn:
// once per name for named fields, once with nil for an anonymous field.
func eachCtxParam(p *Pass, fn *ast.FuncDecl, f func(name *ast.Ident)) {
	if fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() != "Context" || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			continue
		}
		if len(field.Names) == 0 {
			f(nil)
			continue
		}
		for _, name := range field.Names {
			f(name)
		}
	}
}
