// Package lint is the repo's static-analysis spine: a small analyzer
// framework (stdlib go/ast + go/types only — the environment bakes in no
// golang.org/x/tools) plus four analyzers that turn the repo's load-bearing
// runtime invariants into compile-time properties of the source:
//
//   - determinism: query-path packages must not let map iteration order,
//     math/rand, or the wall clock flow into answers (the bit-identity
//     contract: sharded ≡ replicated ≡ remote ≡ single-system).
//   - codecsafety: internal/remote must never size an allocation from a
//     wire-decoded value that hasn't passed the sticky decoder's bound
//     check, and every op* handler must settle the sticky error.
//   - kerneldiscipline: float32 inner-product reductions live in
//     internal/mat only, where the canonical 4-lane order is pinned.
//   - ctxflow: library code must thread the caller's context.Context,
//     never mint context.Background() mid-path (it drops the trace).
//
// Intentional violations carry a //lovo:<kind> <reason> directive on the
// flagged line (or the line above). A directive with no reason is itself a
// diagnostic — suppressions are audited, not free — and a directive that
// suppresses nothing is reported as stale, so deleting a load-bearing
// directive or the code it excuses always changes lovocheck's verdict.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one source-level invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Directive is the //lovo:<Directive> kind that suppresses this
	// analyzer's findings at a site.
	Directive string
	Run       func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path — analyzers scope themselves by
	// it (e.g. determinism applies only to query-path packages).
	Path string
	Pkg  *types.Package
	Info *types.Info

	diags      []Diagnostic
	directives []*directive
}

// directive is one parsed //lovo:<kind> <reason> comment.
type directive struct {
	kind   string
	reason string
	pos    token.Pos
	line   int
	file   string
	used   bool
}

// DirectivePrefix introduces a suppression comment: //lovo:<kind> <reason>.
const DirectivePrefix = "//lovo:"

// directiveKinds is the closed set of suppression kinds; an unknown kind is
// a typo that would silently suppress nothing, so the runner reports it.
var directiveKinds = map[string]bool{
	"nondeterministic-ok": true,
	"codec-ok":            true,
	"kernel-ok":           true,
	"ctx-ok":              true,
}

// parseDirectives scans a file's comments for //lovo: directives.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			kind, reason, _ := strings.Cut(rest, " ")
			posn := fset.Position(c.Pos())
			out = append(out, &directive{
				kind:   kind,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				line:   posn.Line,
				file:   posn.Filename,
			})
		}
	}
	return out
}

// Reportf records a finding unless a matching directive suppresses it: the
// analyzer's kind on the finding's line or the line immediately above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	for _, d := range p.directives {
		if d.kind != p.Analyzer.Directive || d.file != posn.Filename {
			continue
		}
		if d.line == posn.Line || d.line == posn.Line-1 {
			d.used = true
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type information is missing
// (the lenient loader swallows resolution errors for unavailable imports).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// PkgFunc reports whether e is a selector naming function name from the
// package imported as path (e.g. time.Now, context.Background). Resolution
// rides on the file's import declarations, so it works even when the
// imported package body couldn't be loaded.
func (p *Pass) PkgFunc(e ast.Expr, path, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return p.isPkgName(sel.X, path)
}

func (p *Pass) isPkgName(e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// pkgQualifier returns the import path behind a selector qualifier, or "".
func (p *Pass) pkgQualifier(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// PathIn reports whether the pass's package path matches any of the given
// path fragments ("internal/core" matches "repro/internal/core" and its
// subpackages).
func (p *Pass) PathIn(fragments ...string) bool {
	for _, f := range fragments {
		if p.Path == f || strings.Contains(p.Path, f+"/") || strings.HasSuffix(p.Path, f) {
			return true
		}
	}
	return false
}

// Run applies one analyzer to one loaded package and returns its findings,
// including directive hygiene: unknown kinds, missing reasons, and stale
// (nothing-suppressed) directives of this analyzer's kind. Hygiene for a
// kind is owned by its analyzer so each problem is reported exactly once
// when the full suite runs.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	for _, f := range pkg.Files {
		pass.directives = append(pass.directives, parseDirectives(pkg.Fset, f)...)
	}
	a.Run(pass)
	for _, d := range pass.directives {
		if d.kind != a.Directive {
			continue
		}
		if d.reason == "" {
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("%s%s directive without a reason: every suppression must say why", DirectivePrefix, d.kind),
			})
		} else if !d.used {
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("stale %s%s directive: it suppresses nothing here", DirectivePrefix, d.kind),
			})
		}
	}
	sort.SliceStable(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags
}

// RunAll applies every analyzer in the suite plus the directive-kind check.
func RunAll(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range All() {
		out = append(out, Run(a, pkg)...)
	}
	out = append(out, checkDirectiveKinds(pkg)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// checkDirectiveKinds flags //lovo: comments whose kind no analyzer owns —
// a typo'd directive must fail loudly, not silently suppress nothing.
func checkDirectiveKinds(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range parseDirectives(pkg.Fset, f) {
			if !directiveKinds[d.kind] {
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: "directive",
					Message:  fmt.Sprintf("unknown directive %s%s (known kinds: nondeterministic-ok, codec-ok, kernel-ok, ctx-ok)", DirectivePrefix, d.kind),
				})
			}
		}
	}
	return out
}

// All returns the analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, CodecSafety, KernelDiscipline, CtxFlow}
}
