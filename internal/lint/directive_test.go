package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestDirectiveWithoutReason: a suppression must say why — the bare kind
// still suppresses (so one problem is reported, not two), but is itself a
// finding.
func TestDirectiveWithoutReason(t *testing.T) {
	pkg := load(t, "repro/internal/core", `package core

import "time"

func f() time.Time {
	//lovo:nondeterministic-ok
	return time.Now()
}
`)
	diags := lint.Run(lint.Determinism, pkg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "without a reason") {
		t.Fatalf("want exactly one missing-reason finding, got %v", messages(diags))
	}
}

// TestStaleDirective: a directive that suppresses nothing is dead weight —
// usually the excused code was fixed or moved — and must be reported so
// the suppression inventory never rots.
func TestStaleDirective(t *testing.T) {
	pkg := load(t, "repro/internal/core", `package core

func g() int {
	//lovo:nondeterministic-ok nothing nondeterministic remains here
	return 1
}
`)
	diags := lint.Run(lint.Determinism, pkg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale") {
		t.Fatalf("want exactly one stale-directive finding, got %v", messages(diags))
	}
}

// TestUnknownDirectiveKind: a typo'd kind would otherwise silently
// suppress nothing while looking like a suppression.
func TestUnknownDirectiveKind(t *testing.T) {
	pkg := load(t, "repro/internal/core", `package core

func h() int {
	//lovo:determinism-ok the kind is a typo
	return 1
}
`)
	diags := lint.RunAll(pkg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown directive") {
		t.Fatalf("want exactly one unknown-kind finding, got %v", messages(diags))
	}
}

// TestBurnInDirectiveLoadBearing re-runs the suite over the real
// internal/core package twice: as shipped it must be clean, and with one
// burn-in directive deleted it must fail — deleting any suppression (or
// the code it excuses) always changes lovocheck's verdict.
func TestBurnInDirectiveLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks a full package from source")
	}
	files, err := filepath.Glob(filepath.Join("..", "core", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("locating internal/core sources: %v", err)
	}
	clean := make(map[string]string)
	for _, fn := range files {
		if strings.HasSuffix(fn, "_test.go") {
			continue
		}
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		clean[fn] = string(data)
	}

	// Clean run: the shipped package, directives intact.
	cleanPkg, err := lint.LoadSources("repro/internal/core", clean)
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunAll(cleanPkg); len(diags) != 0 {
		t.Fatalf("shipped internal/core must be lovocheck-clean, got %v", messages(diags))
	}

	// Mutated run: one directive gone, the finding it suppressed returns.
	execGo := filepath.Join("..", "core", "exec.go")
	lines := strings.Split(clean[execGo], "\n")
	stripped := false
	for i, l := range lines {
		if strings.Contains(l, lint.DirectivePrefix+"nondeterministic-ok") {
			lines = append(lines[:i], lines[i+1:]...)
			stripped = true
			break
		}
	}
	if !stripped {
		t.Fatal("exec.go carries no nondeterministic-ok directive to strip; pick another burn-in file")
	}
	sources := make(map[string]string, len(clean))
	for k, v := range clean {
		sources[k] = v
	}
	sources[execGo] = strings.Join(lines, "\n")
	mutPkg, err := lint.LoadSources("repro/internal/core", sources)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(lint.Determinism, mutPkg)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "wall-clock read") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stripping a burn-in directive must resurface its finding, got %v", messages(diags))
	}
}

func load(t *testing.T, importPath, src string) *lint.Package {
	t.Helper()
	pkg, err := lint.LoadSources(importPath, map[string]string{"src.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func messages(diags []lint.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
