package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// corpusCases pins each analyzer to its golden corpus: every `// want`
// regex must match a finding on its line, every finding must be wanted,
// and every unannotated idiom (directive suppressions, sorted-after-
// iteration map use, keyed writes, ...) must stay quiet.
var corpusCases = []struct {
	dir        string
	importPath string
	analyzer   *lint.Analyzer
}{
	{"determinism", "repro/internal/core", lint.Determinism},
	{"codecsafety", "repro/internal/remote", lint.CodecSafety},
	{"kerneldiscipline", "repro/internal/scratch", lint.KernelDiscipline},
	{"ctxflow", "repro/internal/svc", lint.CtxFlow},
}

func TestCorpus(t *testing.T) {
	for _, tc := range corpusCases {
		t.Run(tc.dir, func(t *testing.T) {
			files := corpusFiles(t, tc.dir)
			pkg, err := lint.LoadFiles(tc.importPath, files)
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			diags := lint.Run(tc.analyzer, pkg)
			checkWants(t, pkg, files, diags)
		})
	}
}

// TestKernelExempt proves the kernel corpus — violations and all — is
// legal inside internal/mat and internal/quant, where the canonical
// float32 reduction order and the vetted int8 kernel live.
func TestKernelExempt(t *testing.T) {
	for _, path := range []string{"repro/internal/mat", "repro/internal/quant"} {
		files := corpusFiles(t, "kerneldiscipline")
		pkg, err := lint.LoadFiles(path, files)
		if err != nil {
			t.Fatalf("loading corpus: %v", err)
		}
		// The corpus's kernel-ok directives suppress nothing under the
		// exemption, so expect exactly the stale-directive hygiene
		// findings — and no reduction findings.
		for _, d := range lint.Run(lint.KernelDiscipline, pkg) {
			if !strings.Contains(d.Message, "stale") {
				t.Errorf("unexpected finding under %s: %s: %s", path, pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}

func corpusFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "src", dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files for %s: %v", dir, err)
	}
	sort.Strings(files)
	return files
}

// wantRe pulls the `// want` annotation off a corpus line; each backtick-
// quoted chunk after it is one expected-finding regex.
var wantRe = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)$")

var wantChunkRe = regexp.MustCompile("`([^`]*)`")

type wantKey struct {
	file string
	line int
}

func parseWants(t *testing.T, files []string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, fn := range files {
		f, err := os.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, chunk := range wantChunkRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(chunk[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", fn, line, chunk[1], err)
				}
				wants[wantKey{fn, line}] = append(wants[wantKey{fn, line}], re)
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// checkWants matches findings against annotations 1:1 per line.
func checkWants(t *testing.T, pkg *lint.Package, files []string, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseWants(t, files)
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		key := wantKey{posn.Filename, posn.Line}
		matched := -1
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding %s: [%s] %s", posn, d.Analyzer, d.Message)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, re)
		}
	}
}
