package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path"
	"sort"
)

// Package is one parsed-and-typechecked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects what the lenient typecheck swallowed. The
	// analyzers tolerate partial type information; the driver surfaces
	// these only under -debug.
	TypeErrors []error
}

// lenientImporter resolves imports from source (the toolchain ships no
// pre-compiled export data for the stdlib, and the module has no external
// deps) and degrades to an empty stub package when resolution fails — a
// stub leaves selector types unknown, which the analyzers treat as
// "cannot prove a violation", never as a crash.
type lenientImporter struct {
	src   types.ImporterFrom
	stubs map[string]*types.Package
}

func newLenientImporter(fset *token.FileSet) *lenientImporter {
	// The source importer reads go/build's default context; with cgo on it
	// would try to run the cgo tool for packages like net. The pure-Go
	// variants typecheck identically for analysis purposes.
	build.Default.CgoEnabled = false
	imp, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &lenientImporter{src: imp, stubs: make(map[string]*types.Package)}
}

func (li *lenientImporter) Import(p string) (*types.Package, error) {
	return li.ImportFrom(p, "", 0)
}

func (li *lenientImporter) ImportFrom(p, dir string, mode types.ImportMode) (pkg *types.Package, err error) {
	if li.src != nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("lint: importing %s panicked: %v", p, r)
				}
			}()
			pkg, err = li.src.ImportFrom(p, dir, 0)
		}()
		if err == nil && pkg != nil {
			return pkg, nil
		}
	}
	if stub, ok := li.stubs[p]; ok {
		return stub, nil
	}
	stub := types.NewPackage(p, path.Base(p))
	stub.MarkComplete()
	li.stubs[p] = stub
	return stub, nil
}

// LoadFiles parses and leniently typechecks one package from explicit
// file paths, tagging it with importPath (which the analyzers scope by).
func LoadFiles(importPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheck(importPath, fset, files), nil
}

// LoadSources parses and leniently typechecks one package from in-memory
// sources (filename → source), for tests that synthesize or mutate code.
func LoadSources(importPath string, sources map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	names := make([]string, 0, len(sources))
	for fn := range sources {
		names = append(names, fn)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, fn := range names {
		f, err := parser.ParseFile(fset, fn, sources[fn], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheck(importPath, fset, files), nil
}

func typecheck(importPath string, fset *token.FileSet, files []*ast.File) *Package {
	pkg := &Package{Path: importPath, Fset: fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: newLenientImporter(fset),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}
