package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KernelDiscipline keeps every float32 inner-product reduction inside
// internal/mat, where the canonical 4-lane reduction order is pinned by
// property tests against the SIMD kernels. A hand-rolled `acc += a*b` loop
// anywhere else accumulates in serial order — bit-different from the
// kernels — and silently forks the determinism contract the moment two
// code paths score the same vectors. Such loops must call mat.Dot /
// mat.ScoreRows (or carry a //lovo:kernel-ok reason explaining why the
// reduction is not an inner product over scored data).
//
// The int8 analogue lives in internal/quant: an `acc += int32(a)*int32(b)`
// widening-multiply loop anywhere else duplicates quant.DotInt8 without
// its documented overflow bound (dim ≤ 133000 keeps the sum in int32) and
// forks the quantized scoring path the recall gate was measured against.
// Integer addition is associative, so the hazard is not lane order — it is
// an unvetted second kernel.
var KernelDiscipline = &Analyzer{
	Name:      "kerneldiscipline",
	Doc:       "flags hand-rolled float32 multiply-accumulate and int8 widening-multiply reduction loops outside internal/mat and internal/quant",
	Directive: "kernel-ok",
	Run:       runKernelDiscipline,
}

func runKernelDiscipline(p *Pass) {
	if p.PathIn("internal/mat", "internal/quant") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkReductionLoop(p, body)
			return true
		})
	}
}

// checkReductionLoop flags `acc += x*y` in a loop body where acc is
// storage declared outside the loop and x*y is either a float32 product
// (the inner-product shape) or a product of int8 values widened to a
// larger integer type (the quantized-dot shape). Nested loops are checked
// at their own visit (the walk here does not descend into them), so the
// diagnostic lands on the innermost loop actually doing the reduction.
func checkReductionLoop(p *Pass, body *ast.BlockStmt) {
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false // inner loops and closures report themselves
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhsType := p.TypeOf(as.Lhs[0])
			if lhsType == nil {
				return true
			}
			var msg string
			switch {
			case isFloat32(lhsType) && containsFloat32Product(p, as.Rhs[0]):
				msg = "hand-rolled float32 multiply-accumulate reduction outside internal/mat: call mat.Dot/mat.ScoreRows to keep the canonical 4-lane reduction order"
			case isWideInt(lhsType) && containsInt8WideningProduct(p, as.Rhs[0]):
				msg = "hand-rolled int8 widening-multiply reduction outside internal/quant: call quant.DotInt8 so every quantized scan shares the one overflow-vetted kernel"
			default:
				return true
			}
			base := baseIdent(as.Lhs[0])
			if base == nil {
				return true
			}
			obj := p.ObjectOf(base)
			if obj == nil || (obj.Pos() >= body.Pos() && obj.Pos() < body.End()) {
				return true // per-iteration local: not a cross-element reduction
			}
			p.Reportf(as.Pos(), "%s", msg)
			return true
		})
	}
}

// containsFloat32Product reports whether e contains a float32 * float32
// multiplication (possibly nested under sums or parens).
func containsFloat32Product(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			xt, yt := p.TypeOf(be.X), p.TypeOf(be.Y)
			if xt != nil && yt != nil && isFloat32(xt) && isFloat32(yt) {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsInt8WideningProduct reports whether e contains a multiplication
// whose both operands are int8 values widened by an explicit conversion to
// a larger integer type — the quantized dot-product shape
// int32(a[i]) * int32(b[i]).
func containsInt8WideningProduct(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			if isInt8Widening(p, be.X) && isInt8Widening(p, be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isInt8Widening reports whether e is a conversion of an int8 value to a
// wider integer type, e.g. int32(codes[i]).
func isInt8Widening(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	at, rt := p.TypeOf(call.Args[0]), p.TypeOf(call)
	if at == nil || rt == nil {
		return false
	}
	ab, ok := at.Underlying().(*types.Basic)
	return ok && ab.Kind() == types.Int8 && isWideInt(rt)
}

func isFloat32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}

// isWideInt reports whether t is an integer type strictly wider than one
// byte — the accumulator/operand side of a widening multiply.
func isWideInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int16, types.Int32, types.Int64, types.Int,
		types.Uint16, types.Uint32, types.Uint64, types.Uint, types.Uintptr:
		return true
	}
	return false
}
