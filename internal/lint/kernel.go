package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KernelDiscipline keeps every float32 inner-product reduction inside
// internal/mat, where the canonical 4-lane reduction order is pinned by
// property tests against the SIMD kernels. A hand-rolled `acc += a*b` loop
// anywhere else accumulates in serial order — bit-different from the
// kernels — and silently forks the determinism contract the moment two
// code paths score the same vectors. Such loops must call mat.Dot /
// mat.ScoreRows (or carry a //lovo:kernel-ok reason explaining why the
// reduction is not an inner product over scored data).
var KernelDiscipline = &Analyzer{
	Name:      "kerneldiscipline",
	Doc:       "flags hand-rolled float32 multiply-accumulate reduction loops outside internal/mat",
	Directive: "kernel-ok",
	Run:       runKernelDiscipline,
}

func runKernelDiscipline(p *Pass) {
	if p.PathIn("internal/mat") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkReductionLoop(p, body)
			return true
		})
	}
}

// checkReductionLoop flags `acc += x*y` in a loop body where acc is
// float32 storage declared outside the loop and x*y is a float32 product —
// the inner-product shape. Nested loops are checked at their own visit
// (the walk here does not descend into them), so the diagnostic lands on
// the innermost loop actually doing the reduction.
func checkReductionLoop(p *Pass, body *ast.BlockStmt) {
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false // inner loops and closures report themselves
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhsType := p.TypeOf(as.Lhs[0])
			if lhsType == nil || !isFloat32(lhsType) {
				return true
			}
			if !containsFloat32Product(p, as.Rhs[0]) {
				return true
			}
			base := baseIdent(as.Lhs[0])
			if base == nil {
				return true
			}
			obj := p.ObjectOf(base)
			if obj == nil || (obj.Pos() >= body.Pos() && obj.Pos() < body.End()) {
				return true // per-iteration local: not a cross-element reduction
			}
			p.Reportf(as.Pos(), "hand-rolled float32 multiply-accumulate reduction outside internal/mat: call mat.Dot/mat.ScoreRows to keep the canonical 4-lane reduction order")
			return true
		})
	}
}

// containsFloat32Product reports whether e contains a float32 * float32
// multiplication (possibly nested under sums or parens).
func containsFloat32Product(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			xt, yt := p.TypeOf(be.X), p.TypeOf(be.Y)
			if xt != nil && yt != nil && isFloat32(xt) && isFloat32(yt) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isFloat32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}
