package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// queryPathPackages are the packages whose answers must be bit-identical
// across serial/parallel/sharded/replicated/remote execution. Determinism
// findings apply only here; elsewhere wall clocks and RNGs are fine.
var queryPathPackages = []string{
	"internal/core",
	"internal/shard",
	"internal/remote",
	"internal/ann",
	"internal/mat",
	"internal/vectordb",
}

// Determinism guards the bit-identity contract. In query-path packages it
// flags: (1) wall-clock reads (time.Now, time.Since) — durations may be
// *recorded* as metadata, but a clock value on a result path diverges
// across deployments; (2) math/rand use — only explicitly seeded
// randomness may exist on a query path, and each seeding site must say so;
// (3) range over a map whose iteration order can leak into an answer — an
// append to an outer slice or a float accumulation inside the loop —
// unless the accumulated slice is sorted (or TopK-selected, which imposes
// the canonical total order) after the loop.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "flags wall-clock, math/rand and map-iteration-order dependence in query-path packages",
	Directive: "nondeterministic-ok",
	Run:       runDeterminism,
}

func runDeterminism(p *Pass) {
	if !p.PathIn(queryPathPackages...) {
		return
	}
	for _, f := range p.Files {
		// Coalesce per line: one diagnostic (and so one directive) covers a
		// line like rand.New(rand.NewPCG(...)) with several qualified uses.
		flagged := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if p.PkgFunc(n.Fun, "time", "Now") || p.PkgFunc(n.Fun, "time", "Since") {
					if line := p.Fset.Position(n.Pos()).Line; !flagged[line] {
						flagged[line] = true
						p.Reportf(n.Pos(), "wall-clock read (%s) in query-path package %s: results must not depend on time", exprString(n.Fun), p.Path)
					}
				}
			case *ast.SelectorExpr:
				if q := p.pkgQualifier(n.X); q == "math/rand" || q == "math/rand/v2" {
					// Naming a type (a *rand.Rand field, say) states where
					// randomness lives; only mentioning a func or value uses it.
					if _, isType := p.ObjectOf(n.Sel).(*types.TypeName); isType {
						return true
					}
					if line := p.Fset.Position(n.Pos()).Line; !flagged[line] {
						flagged[line] = true
						p.Reportf(n.Pos(), "math/rand use (%s.%s) in query-path package %s: only seeded, documented randomness is allowed", q, n.Sel.Name, p.Path)
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(p, n.Body)
				}
				return true
			}
			return true
		})
	}
}

// checkMapRanges flags map-range loops in fn whose iteration order can
// reach an answer.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range orderSinks(p, rs) {
			if sortedAfter(p, body, rs, sink.obj) {
				continue
			}
			p.Reportf(rs.Pos(), "map iteration order flows into %q via %s: sort the keys first, or sort the %s after the loop", sink.obj.Name(), sink.kind, sink.kind)
		}
		return true
	})
}

type orderSink struct {
	obj  types.Object
	kind string
}

// orderSinks finds order-sensitive accumulation inside a map-range body:
// appends to a slice declared outside the loop, and float += / -= / *=
// on storage declared outside the loop (float reduction order is not
// associative; integer counting is).
func orderSinks(p *Pass, rs *ast.RangeStmt) []orderSink {
	var sinks []orderSink
	seen := make(map[types.Object]bool)
	add := func(obj types.Object, kind string) {
		if obj == nil || seen[obj] {
			return
		}
		// Declared inside the loop body: per-iteration state, not a leak.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
			return
		}
		seen[obj] = true
		sinks = append(sinks, orderSink{obj: obj, kind: kind})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				// Only a plain variable (or field chain) accumulates in
				// iteration order; res[k] = append(res[k], ...) is keyed
				// per element and therefore order-free.
				if base := baseIdent(n.Args[0]); base != nil {
					if _, indexed := n.Args[0].(*ast.IndexExpr); !indexed {
						add(p.ObjectOf(base), "append")
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN && n.Tok != token.MUL_ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				t := p.TypeOf(lhs)
				if t == nil || !isFloat(t) {
					continue
				}
				if base := baseIdent(lhs); base != nil {
					add(p.ObjectOf(base), "float accumulation")
				}
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether obj is passed to a sorting (or canonical
// top-k selection) call after the range loop within the same block tree —
// the collect-then-sort idiom that makes map iteration order harmless.
func sortedAfter(p *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortingCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortingCall recognizes order-imposing calls: anything from package
// sort (Slice, SliceStable, Strings, ...), Sort-named functions anywhere
// (slices.Sort*, custom sortFoo helpers), and mat.TopK, whose canonical
// (score desc, id asc) tie-breaking yields the same selection for every
// input permutation.
func isSortingCall(p *Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if p.pkgQualifier(sel.X) == "sort" {
			return true
		}
	}
	name := calleeName(call)
	return strings.Contains(name, "Sort") || strings.Contains(name, "sort") || name == "TopK"
}

// calleeName returns the terminal name of a call target (Sort for
// sort.Sort and slices.Sort, TopK for mat.TopK).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// baseIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x[i].f → x).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// refersTo reports whether expression e mentions obj.
func refersTo(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func exprString(e ast.Expr) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "expr"
}
