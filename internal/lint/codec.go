package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CodecSafety guards the wire codec's forged-count contract in
// internal/remote: a length or count read off the wire must pass the
// sticky decoder's bound check (dec.count, which rejects counts whose
// elements cannot fit the remaining payload) before it may size an
// allocation, and every op* handler must settle the sticky error with
// dec.finish so trailing garbage and truncation are never silently
// accepted.
var CodecSafety = &Analyzer{
	Name:      "codecsafety",
	Doc:       "flags allocations sized by unbounded wire-decoded values and op handlers that skip the sticky decoder",
	Directive: "codec-ok",
	Run:       runCodecSafety,
}

// rawDecodeMethods are dec methods returning wire-controlled numbers with
// no bound check; count is the sanctioned, bounds-checked counterpart.
var rawDecodeMethods = map[string]bool{
	"u8": true, "u32": true, "u64": true, "i64": true, "intv": true,
}

func runCodecSafety(p *Pass) {
	if !p.PathIn("internal/remote") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkWireSizedMakes(p, fn.Body)
			checkOpHandlers(p, fn.Body)
			return true
		})
	}
}

// isRawDecodeCall reports whether e calls a raw (unbounded) decode method
// on the sticky decoder, unwrapping conversions like int(d.u32()).
func isRawDecodeCall(p *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		// Conversion wrapper: int(d.u32()), uint64(d.intv()), ...
		if len(call.Args) == 1 {
			if t := p.TypeOf(call.Fun); t != nil {
				if _, isConv := t.(*types.Basic); isConv {
					return isRawDecodeCall(p, call.Args[0])
				}
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !rawDecodeMethods[sel.Sel.Name] {
			return false
		}
		return isDecReceiver(p, sel.X)
	}
	return false
}

// isDecReceiver reports whether e's type is the sticky decoder (a named
// type called dec, possibly behind a pointer).
func isDecReceiver(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "dec"
}

// checkWireSizedMakes flags make(T, n) / make(T, l, c) where a size derives
// from a raw decode without an intervening bound: either the size expression
// is itself a raw decode call, or it is a variable assigned from one that
// never appears in a comparison or min/max call before the make.
func checkWireSizedMakes(p *Pass, body *ast.BlockStmt) {
	// tainted: variables assigned from a raw decode, at their taint pos.
	tainted := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isRawDecodeCall(p, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.ObjectOf(id); obj != nil {
					tainted[obj] = as.Pos()
				}
			}
		}
		return true
	})
	// sanitized: positions where a tainted variable meets a bound — a
	// comparison, or a min/max clamp.
	sanitizedAt := func(obj types.Object, before token.Pos) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
					if n.Pos() < before && (refersTo(p, n.X, obj) || refersTo(p, n.Y, obj)) {
						found = true
					}
				}
			case *ast.CallExpr:
				if name := calleeName(n); (name == "min" || name == "max") && n.Pos() < before {
					for _, a := range n.Args {
						if refersTo(p, a, obj) {
							found = true
						}
					}
				}
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
			return true
		}
		for _, arg := range call.Args[1:] { // skip the type argument
			arg = ast.Unparen(arg)
			if isRawDecodeCall(p, arg) {
				p.Reportf(call.Pos(), "allocation sized directly by an unbounded wire value: read the size via dec.count (bounds-checked) instead")
				continue
			}
			obj := sizeVarObject(p, arg)
			if obj == nil {
				continue
			}
			if tpos, ok := tainted[obj]; ok && tpos < call.Pos() && !sanitizedAt(obj, call.Pos()) {
				p.Reportf(call.Pos(), "allocation sized by %q, a wire-decoded value with no bound check between decode and make: use dec.count or clamp it first", obj.Name())
			}
		}
		return true
	})
}

// sizeVarObject resolves a make-size argument to the variable behind it,
// unwrapping conversions (make([]T, int(n))).
func sizeVarObject(p *Pass, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if t := p.TypeOf(call.Fun); t != nil {
			if _, isConv := t.(*types.Basic); isConv {
				return sizeVarObject(p, call.Args[0])
			}
		}
		return nil
	}
	if id, ok := e.(*ast.Ident); ok {
		return p.ObjectOf(id)
	}
	return nil
}

// checkOpHandlers enforces the handler discipline: in a switch dispatching
// on op codes (case expressions named op*), every handler must call the
// sticky decoder's finish — the single place truncation, trailing bytes
// and all accumulated decode errors surface.
func checkOpHandlers(p *Pass, body *ast.BlockStmt) {
	// Only dispatch functions that hold the sticky decoder are handlers;
	// a switch mapping op codes to names (logging, metrics) is not.
	if !bodyUsesDec(p, body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil { // skip default
				continue
			}
			opName := ""
			for _, e := range cc.List {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && strings.HasPrefix(id.Name, "op") && len(id.Name) > 2 && id.Name[2] >= 'A' && id.Name[2] <= 'Z' {
					opName = id.Name
					break
				}
			}
			if opName == "" {
				continue
			}
			if !callsFinish(cc.Body) {
				p.Reportf(cc.Pos(), "op handler %s never calls the sticky decoder's finish: truncated or trailing request bytes would be silently accepted", opName)
			}
		}
		return true
	})
}

// bodyUsesDec reports whether any expression in body has the sticky
// decoder's type.
func bodyUsesDec(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && isDecReceiver(p, id) {
			found = true
		}
		return !found
	})
	return found
}

func callsFinish(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "finish" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
