package embed

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/video"
	"repro/internal/vocab"
)

func testSpace() *Space { return NewSpace(64, 32, 42) }

func TestNewSpaceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for projDim > dim")
		}
	}()
	NewSpace(8, 16, 1)
}

func TestTermVecDeterministicAndUnit(t *testing.T) {
	s := testSpace()
	a := s.TermVec("car")
	b := s.TermVec("car")
	if !mat.AlmostEqual(a, b, 0) {
		t.Fatal("TermVec must be cached/deterministic")
	}
	if n := mat.Norm(a); n < 0.999 || n > 1.001 {
		t.Fatalf("norm = %v", n)
	}
	s2 := NewSpace(64, 32, 42)
	if !mat.AlmostEqual(a, s2.TermVec("car"), 1e-6) {
		t.Fatal("same seed spaces must agree")
	}
}

func TestRelatedTermsShareDirection(t *testing.T) {
	s := testSpace()
	suv := s.TermVec("suv")
	car := s.TermVec("car")
	bus := s.TermVec("bus")
	if mat.Dot(suv, car) <= mat.Dot(suv, bus) {
		t.Fatalf("suv·car = %v should exceed suv·bus = %v", mat.Dot(suv, car), mat.Dot(suv, bus))
	}
	if mat.Dot(suv, car) < 0.3 {
		t.Fatalf("suv·car too weak: %v", mat.Dot(suv, car))
	}
}

func TestUnrelatedTermsNearOrthogonal(t *testing.T) {
	s := testSpace()
	if d := mat.Dot(s.TermVec("red"), s.TermVec("dog")); d > 0.35 || d < -0.35 {
		t.Fatalf("red·dog = %v, expected near-orthogonal", d)
	}
}

func TestMixNormalises(t *testing.T) {
	s := testSpace()
	v := s.Mix([]Weighted{{"car", 1}, {"red", 0.8}})
	if n := mat.Norm(v); n < 0.999 || n > 1.001 {
		t.Fatalf("mix norm = %v", n)
	}
	if mat.Dot(v, s.TermVec("car")) < 0.4 {
		t.Fatal("mix must retain class direction")
	}
	zero := s.Mix(nil)
	if mat.Norm(zero) != 0 {
		t.Fatal("empty mix must be zero")
	}
}

func TestProjectPreservesSimilarityOrder(t *testing.T) {
	s := testSpace()
	car := s.TermVec("car")
	red := s.Mix([]Weighted{{"car", 1}, {"red", 0.8}})
	dog := s.TermVec("dog")
	pcar, pred, pdog := s.Project(car), s.Project(red), s.Project(dog)
	if len(pcar) != 32 {
		t.Fatalf("projected dim = %d", len(pcar))
	}
	if mat.Dot(pcar, pred) <= mat.Dot(pcar, pdog) {
		t.Fatal("projection must preserve similarity ordering (JL property)")
	}
}

func frameWith(obj video.Object, ctx ...string) *video.Frame {
	return &video.Frame{VideoID: 1, Index: 5, Context: ctx, Objects: []video.Object{obj}}
}

func TestObjectEmbeddingAlignsWithQuery(t *testing.T) {
	s := testSpace()
	ve := &VisionEncoder{Space: s}
	te := &TextEncoder{Space: s}

	redCar := frameWith(video.Object{
		Track: 1, Class: "car", Attrs: []string{"red"}, Behaviors: []string{"driving"},
		Box: video.Box{X: 0.4, Y: 0.4, W: 0.12, H: 0.08},
	}, "road")
	blueBus := frameWith(video.Object{
		Track: 2, Class: "bus", Attrs: []string{"blue"}, Behaviors: []string{"driving"},
		Box: video.Box{X: 0.4, Y: 0.4, W: 0.2, H: 0.11},
	}, "road")

	q := te.FastVec(query.Parse("red car in road"))
	simCar := mat.Dot(q, ve.ObjectEmbedding(redCar, 0))
	simBus := mat.Dot(q, ve.ObjectEmbedding(blueBus, 0))
	if simCar <= simBus {
		t.Fatalf("red car (%v) must beat blue bus (%v) for a red-car query", simCar, simBus)
	}
}

func TestObjectEmbeddingDeterministic(t *testing.T) {
	s := testSpace()
	ve := &VisionEncoder{Space: s}
	f := frameWith(video.Object{Track: 3, Class: "car", Box: video.Box{X: 0.1, Y: 0.1, W: 0.1, H: 0.1}})
	a := ve.ObjectEmbedding(f, 0)
	b := ve.ObjectEmbedding(f, 0)
	if !mat.AlmostEqual(a, b, 0) {
		t.Fatal("repeated encoding must be identical")
	}
}

func TestSmallObjectsNoisier(t *testing.T) {
	s := testSpace()
	ve := &VisionEncoder{Space: s}
	clean := s.Mix([]Weighted{{"car", 1}})
	big := frameWith(video.Object{Track: 4, Class: "car", Box: video.Box{X: 0.1, Y: 0.1, W: 0.5, H: 0.5}})
	small := frameWith(video.Object{Track: 4, Class: "car", Box: video.Box{X: 0.1, Y: 0.1, W: 0.02, H: 0.02}})
	// Average over observations to beat noise variance.
	var bigSim, smallSim float32
	const n = 20
	for i := 0; i < n; i++ {
		big.Index = i
		small.Index = i
		bigSim += mat.Dot(clean, ve.ObjectEmbedding(big, 0))
		smallSim += mat.Dot(clean, ve.ObjectEmbedding(small, 0))
	}
	if smallSim >= bigSim {
		t.Fatalf("small objects should embed noisier: big=%v small=%v", bigSim/n, smallSim/n)
	}
}

func TestFrameEmbeddingDilutesSmallObjects(t *testing.T) {
	s := testSpace()
	ve := &VisionEncoder{Space: s}
	te := &TextEncoder{Space: s}
	q := te.FastVec(query.Parse("white dog"))

	smallDog := video.Object{Track: 1, Class: "dog", Attrs: []string{"white"}, Box: video.Box{X: 0.4, Y: 0.4, W: 0.05, H: 0.05}}
	bigTruck := video.Object{Track: 2, Class: "truck", Attrs: []string{"grey"}, Box: video.Box{X: 0.1, Y: 0.2, W: 0.5, H: 0.4}}
	f := &video.Frame{VideoID: 1, Index: 0, Context: []string{"road"}, Objects: []video.Object{smallDog, bigTruck}}

	objSim := mat.Dot(q, ve.ObjectEmbedding(f, 0))
	frameSim := mat.Dot(q, ve.FrameEmbedding(f))
	if frameSim >= objSim {
		t.Fatalf("global frame embedding (%v) must dilute the small dog vs its object embedding (%v)", frameSim, objSim)
	}
}

func TestBackgroundEmbeddingContextual(t *testing.T) {
	s := testSpace()
	ve := &VisionEncoder{Space: s}
	f := &video.Frame{VideoID: 1, Index: 0, Context: []string{"road"}}
	bg := ve.BackgroundEmbedding(f, 3)
	if mat.Dot(bg, s.TermVec("road")) < 0.3 {
		t.Fatal("background must reflect scene context")
	}
	if mat.Dot(bg, s.TermVec("dog")) > 0.5 {
		t.Fatal("background must not look like an object")
	}
}

func TestFastVecOmitsRelations(t *testing.T) {
	s := testSpace()
	te := &TextEncoder{Space: s}
	with := te.FastVec(query.Parse("red car side by side with another car"))
	without := te.FastVec(query.Parse("red car"))
	if mat.Dot(with, without) < 0.95 {
		t.Fatalf("relations must not change the fast vector materially: %v", mat.Dot(with, without))
	}
}

func TestTokensIncludeRelations(t *testing.T) {
	s := testSpace()
	te := &TextEncoder{Space: s}
	toks := te.Tokens(query.Parse("red car side by side with another car"))
	found := false
	for _, tok := range toks {
		if tok.Term == "side by side" {
			found = true
			if tok.Kind != vocab.KindRelation {
				t.Fatal("side by side must be a relation token")
			}
		}
	}
	if !found {
		t.Fatal("tokens must include relations")
	}
}

func TestKindWeights(t *testing.T) {
	if KindWeight(vocab.KindRelation) != 0 {
		t.Fatal("relations must have zero weight in entity embeddings")
	}
	if KindWeight(vocab.KindClass) <= KindWeight(vocab.KindContext) {
		t.Fatal("class must outweigh context")
	}
}
