package embed

import (
	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/vocab"
)

// TextEncoder turns parsed queries into embeddings aligned with the vision
// space (the "text transformer" of Section VI-A).
type TextEncoder struct {
	// Space is the shared embedding space.
	Space *Space
}

// FastVec encodes the whole query as one vector for the fast-search stage.
// Following the paper, only the distinctive phrases enter — subject,
// attributes and context — while cross-word relationships ("side by side",
// "walking on the road") are deliberately omitted: their recovery is
// delegated to the rerank stage.
func (e *TextEncoder) FastVec(p query.Parsed) mat.Vec {
	terms := p.FastTerms()
	ws := make([]Weighted, 0, len(terms))
	for _, t := range terms {
		ws = append(ws, Weighted{t.Name, KindWeight(t.Kind)})
	}
	return e.Space.Mix(ws)
}

// Token is one query token for the cross-modality rerank: a term, its kind
// and its embedding direction.
type Token struct {
	Term string
	Kind vocab.Kind
	Vec  mat.Vec
}

// Tokens encodes the query as a token sequence for the rerank stage. Unlike
// FastVec, every term is represented — including relations and behaviours —
// each as its own token, which is what the cross-attention layers align
// against image region tokens.
func (e *TextEncoder) Tokens(p query.Parsed) []Token {
	out := make([]Token, 0, len(p.Terms))
	for _, t := range p.Terms {
		out = append(out, Token{Term: t.Name, Kind: t.Kind, Vec: e.Space.TermVec(t.Name)})
	}
	return out
}
