// Package embed implements the shared vision/text embedding space and the
// decoupled encoders of Section IV: a vision encoder that turns objects and
// patches into query-agnostic embeddings, and a text encoder that turns
// parsed queries into aligned vectors.
//
// The space substitutes for CLIP-style pre-trained encoders: every
// vocabulary term owns a deterministic near-orthogonal unit direction
// (related terms share direction mass per the vocabulary's relation table),
// and an entity's embedding is the normalised weighted mixture of its term
// directions plus observation noise. Cosine similarity between a query
// vector and an object vector therefore tracks semantic term overlap — the
// property every retrieval experiment in the paper depends on — without any
// model weights.
package embed

import (
	"hash/fnv"
	"sync"

	"repro/internal/mat"
	"repro/internal/vocab"
)

// Space is the joint embedding space.
type Space struct {
	// Dim is the encoder output dimension D (ViT patch embeddings).
	Dim int
	// ProjDim is the reduced class-embedding dimension D′ stored in the
	// vector database (Section IV-C).
	ProjDim int

	seed uint64
	proj *mat.Matrix // Dim -> ProjDim linear projection (class head)

	mu    sync.RWMutex
	terms map[string]mat.Vec
}

// NewSpace constructs a space with embedding dimension dim and projection
// dimension projDim, deterministic in seed.
func NewSpace(dim, projDim int, seed uint64) *Space {
	if dim <= 0 || projDim <= 0 || projDim > dim {
		panic("embed: invalid space dimensions")
	}
	s := &Space{
		Dim:     dim,
		ProjDim: projDim,
		seed:    seed,
		terms:   make(map[string]mat.Vec),
	}
	// A random Gaussian projection approximately preserves inner products
	// (Johnson–Lindenstrauss), which is why the paper can search in the
	// reduced D′ space.
	s.proj = mat.RandGaussian(projDim, dim, 1.0/float64(projDim), seed^0x9d2c5680)
	return s
}

// hashTerm derives a stable per-term seed.
func hashTerm(seed uint64, name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64() ^ seed
}

// TermVec returns the unit embedding direction for a canonical term,
// including its related-term mixture (so "suv" lies partway toward "car").
// Unknown terms still receive a stable direction. The result is shared;
// callers must not mutate it.
func (s *Space) TermVec(name string) mat.Vec {
	s.mu.RLock()
	v, ok := s.terms[name]
	s.mu.RUnlock()
	if ok {
		return v
	}
	v = mat.UnitGaussianVec(s.Dim, hashTerm(s.seed, name))
	if t, found := vocab.Lookup(name); found {
		for _, r := range t.Related {
			base := mat.UnitGaussianVec(s.Dim, hashTerm(s.seed, r.Name))
			mat.Axpy(v, r.Weight, base)
		}
		mat.Normalize(v)
	}
	s.mu.Lock()
	s.terms[name] = v
	s.mu.Unlock()
	return v
}

// Weighted pairs a term with its mixture weight.
type Weighted struct {
	Term   string
	Weight float32
}

// Mix returns the normalised weighted sum of term directions; the basic
// entity-embedding operation. A nil or all-zero mix returns a zero vector.
func (s *Space) Mix(ws []Weighted) mat.Vec {
	out := mat.NewVec(s.Dim)
	for _, w := range ws {
		if w.Weight == 0 {
			continue
		}
		mat.Axpy(out, w.Weight, s.TermVec(w.Term))
	}
	return mat.Normalize(out)
}

// Project maps a D-dim embedding into the D′ class-embedding space and
// normalises it; both indexed vectors and query vectors pass through the
// same projection so similarities are comparable.
func (s *Space) Project(v mat.Vec) mat.Vec {
	return mat.Normalize(mat.MatVec(s.proj, v))
}

// KindWeight returns the mixture weight the encoders assign a term of the
// given kind. Classes dominate, attributes are strong, context is weak, and
// spatial relations never enter single-entity embeddings (they are only
// observable to the cross-modality rerank).
func KindWeight(k vocab.Kind) float32 {
	switch k {
	case vocab.KindClass:
		return 1.0
	case vocab.KindColor, vocab.KindClothing:
		return 0.8
	case vocab.KindSize:
		return 0.5
	case vocab.KindContext:
		return 0.3
	case vocab.KindBehavior:
		return 0.35
	default: // KindRelation
		return 0
	}
}

// weightFor resolves a raw term name to its kind weight; unknown terms get
// attribute weight.
func weightFor(name string) float32 {
	if t, ok := vocab.Lookup(name); ok {
		return KindWeight(t.Kind)
	}
	return 0.8
}
