package embed

import (
	"hash/fnv"
	"math/rand/v2"

	"repro/internal/mat"
	"repro/internal/video"
)

// VisionEncoder turns frame objects and background regions into D-dim
// embeddings, query-agnostically (the decoupled design of Section IV-B: no
// text is consulted during video processing).
//
// The embedding of an object mixes its visually apparent term directions —
// class, attributes, behaviour pose, containment, and a weak component of
// scene context contributed by surrounding patches through the simulated
// multi-head-attention context mixing. Spatial relations between objects are
// deliberately not representable here; recovering them is exactly what the
// cross-modality rerank stage exists for.
type VisionEncoder struct {
	// Space is the shared embedding space.
	Space *Space
	// Noise is the observation noise σ (default 0.18 when zero): two
	// sightings of the same object differ, and small/distant objects are
	// noisier than large ones.
	Noise float64
	// Seed decorrelates the noise stream from other components.
	Seed uint64
}

// DefaultNoise is the observation noise used when VisionEncoder.Noise is 0.
const DefaultNoise = 0.18

func (e *VisionEncoder) noise() float64 {
	if e.Noise == 0 {
		return DefaultNoise
	}
	return e.Noise
}

// obsSeed derives a deterministic per-observation noise seed so repeated
// ingestion produces identical embeddings.
func (e *VisionEncoder) obsSeed(parts ...uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			b[i] = byte(p >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64() ^ e.Seed ^ 0x5ee0_ab1e
}

// addNoise perturbs v in place with N(0, σ²) noise from a seeded stream and
// re-normalises.
func (e *VisionEncoder) addNoise(v mat.Vec, sigma float64, seed uint64) mat.Vec {
	rng := rand.New(rand.NewPCG(seed, seed^0xc0ffee))
	for i := range v {
		v[i] += float32(rng.NormFloat64() * sigma)
	}
	return mat.Normalize(v)
}

// ObjectEmbedding returns the D-dim embedding for object i of frame f.
// Smaller objects receive proportionally more noise, reproducing the
// small-object difficulty the paper attributes to global methods — except
// that here the object still owns its own embedding, while ZELDA-style
// global pooling dilutes it (see FrameEmbedding).
func (e *VisionEncoder) ObjectEmbedding(f *video.Frame, i int) mat.Vec {
	o := &f.Objects[i]
	ws := make([]Weighted, 0, 8)
	ws = append(ws, Weighted{o.Class, weightFor(o.Class)})
	for _, a := range o.Attrs {
		ws = append(ws, Weighted{a, weightFor(a)})
	}
	for _, bh := range o.Behaviors {
		ws = append(ws, Weighted{bh, weightFor(bh)})
	}
	if o.Inside != "" {
		ws = append(ws, Weighted{"inside " + o.Inside, 0.6})
	}
	for _, c := range f.Context {
		ws = append(ws, Weighted{c, weightFor(c)})
	}
	v := e.Space.Mix(ws)
	// Small objects are harder to encode faithfully; the penalty is
	// gentle so a distant truck is retrievable, just noisier.
	area := o.Box.Area()
	sigma := e.noise() * (1 + 0.01/(area+0.02))
	return e.addNoise(v, sigma, e.obsSeed(uint64(o.Track), uint64(f.VideoID)<<32|uint64(uint32(f.Index)), uint64(i)))
}

// BackgroundEmbedding returns the embedding of an object-free patch: scene
// context plus noise. These vectors populate the non-object patches the ViT
// grid produces.
func (e *VisionEncoder) BackgroundEmbedding(f *video.Frame, patch int) mat.Vec {
	ws := make([]Weighted, 0, len(f.Context))
	for _, c := range f.Context {
		ws = append(ws, Weighted{c, 1})
	}
	v := e.Space.Mix(ws)
	if mat.Norm(v) == 0 {
		v = mat.NewVec(e.Space.Dim)
	}
	return e.addNoise(v, e.noise()*1.5, e.obsSeed(uint64(f.VideoID)<<32|uint64(uint32(f.Index)), uint64(patch), 0xba00))
}

// FrameEmbedding returns a single global embedding for the whole frame —
// the CLIP-image-token view a ZELDA-style system indexes. Every object
// contributes proportionally to its area, so small objects are diluted by
// large ones and by background context; this is the mechanism behind the
// paper's observation that global methods "struggle with small objects with
// fine-grained differences".
func (e *VisionEncoder) FrameEmbedding(f *video.Frame) mat.Vec {
	out := mat.NewVec(e.Space.Dim)
	var totalArea float64
	for i := range f.Objects {
		area := f.Objects[i].Box.Area()
		totalArea += area
		ov := e.ObjectEmbedding(f, i)
		mat.Axpy(out, float32(area), ov)
	}
	// Background context occupies the remaining area.
	bg := 1 - totalArea
	if bg < 0.2 {
		bg = 0.2
	}
	for _, c := range f.Context {
		mat.Axpy(out, float32(bg), e.Space.TermVec(c))
	}
	return e.addNoise(mat.Normalize(out), e.noise()*0.5, e.obsSeed(uint64(f.VideoID)<<32|uint64(uint32(f.Index)), 0xf0a3))
}
