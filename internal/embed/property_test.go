package embed

import (
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/query"
	"repro/internal/video"
	"repro/internal/vocab"
)

// Property: every term vector is unit-norm and stable across lookups.
func TestTermVecUnitProperty(t *testing.T) {
	s := testSpace()
	terms := vocab.Terms()
	f := func(idx uint16) bool {
		name := terms[int(idx)%len(terms)].Name
		v := s.TermVec(name)
		n := mat.Norm(v)
		return n > 0.999 && n < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a query's fast vector always correlates more with an object
// carrying its subject class than with one of a different, unrelated class.
func TestSubjectDiscriminationProperty(t *testing.T) {
	s := testSpace()
	ve := &VisionEncoder{Space: s}
	te := &TextEncoder{Space: s}
	classes := []string{"car", "bus", "truck", "person", "dog", "bicycle"}
	f := func(seed uint64) bool {
		ci := int(seed % uint64(len(classes)))
		cj := int((seed / 7) % uint64(len(classes)))
		if ci == cj {
			return true
		}
		// Average over several observations to separate signal from
		// per-sighting noise.
		var simI, simJ float32
		q := te.FastVec(query.Parse(classes[ci]))
		for k := 0; k < 8; k++ {
			fi := &video.Frame{VideoID: 1, Index: k, Objects: []video.Object{{
				Track: int64(seed), Class: classes[ci],
				Box: video.Box{X: 0.3, Y: 0.3, W: 0.2, H: 0.2},
			}}}
			fj := &video.Frame{VideoID: 2, Index: k, Objects: []video.Object{{
				Track: int64(seed) + 1, Class: classes[cj],
				Box: video.Box{X: 0.3, Y: 0.3, W: 0.2, H: 0.2},
			}}}
			simI += mat.Dot(q, ve.ObjectEmbedding(fi, 0))
			simJ += mat.Dot(q, ve.ObjectEmbedding(fj, 0))
		}
		return simI > simJ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection preserves the sign of strong similarities —
// projected similarity ordering agrees with full-space ordering for
// well-separated pairs (the Johnson–Lindenstrauss property the fast index
// relies on).
func TestProjectionOrderingProperty(t *testing.T) {
	s := testSpace()
	classes := []string{"car", "bus", "truck", "person", "dog"}
	f := func(seed uint64) bool {
		base := classes[int(seed%uint64(len(classes)))]
		other := classes[int((seed/3)%uint64(len(classes)))]
		if base == other {
			return true
		}
		bv := s.TermVec(base)
		near := s.Mix([]Weighted{{base, 1}, {"red", 0.5}})
		far := s.TermVec(other)
		fullNear, fullFar := mat.Dot(bv, near), mat.Dot(bv, far)
		if fullNear-fullFar < 0.3 {
			return true // not well-separated; JL gives no guarantee
		}
		pb, pn, pf := s.Project(bv), s.Project(near), s.Project(far)
		return mat.Dot(pb, pn) > mat.Dot(pb, pf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FastVec is invariant to relation phrases appended to a query.
func TestFastVecRelationInvarianceProperty(t *testing.T) {
	s := testSpace()
	te := &TextEncoder{Space: s}
	bases := []string{"red car", "green bus on the road", "white dog", "person in blue jeans"}
	rels := []string{" side by side with another car", " next to a person", ""}
	f := func(a, b uint8) bool {
		base := bases[int(a)%len(bases)]
		rel := rels[int(b)%len(rels)]
		v1 := te.FastVec(query.Parse(base))
		v2 := te.FastVec(query.Parse(base + rel))
		// Relation phrases may introduce new subject nouns ("another
		// car", "a person"), which legitimately change the vector;
		// only pure relation phrases must be invisible.
		if rel == " side by side with another car" && base != "red car" {
			return true
		}
		if rel == " next to a person" && base != "person in blue jeans" {
			return true
		}
		return mat.Dot(v1, v2) > 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
