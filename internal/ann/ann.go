// Package ann defines the common interface implemented by the approximate
// nearest-neighbour indexes (flat brute force, IVF-PQ, the inverted
// multi-index, HNSW) — the ANN-variant axis of the paper's Table V.
//
// Similarity is the inner product; all stored and query vectors are unit
// normalised, so inner product equals cosine similarity and higher is
// better (Section V-A).
package ann

import "repro/internal/mat"

// Params tunes a search call. Zero values select per-index defaults.
type Params struct {
	// NProbe is the number of clusters probed per (sub)space — the
	// "number of clusters queried A" of Algorithm 1. Used by IVF-PQ and
	// the inverted multi-index.
	NProbe int
	// Ef is the HNSW dynamic candidate-list size (efSearch).
	Ef int
	// Exhaustive disables cluster pruning, scanning every stored code;
	// the "w/o ANNS" ablation of Table IV. Exhaustive searches are exact
	// by contract, so they ignore Int8.
	Exhaustive bool
	// Int8 selects the int8-quantized stage-1 scoring path where the
	// index supports it (flat, IVF-PQ): candidates are scored through
	// symmetric per-vector int8 codes (quant.Int8Block) and the shortlist
	// is re-scored exactly against raw vectors when they are retained.
	// Unlike the float32 kernel tiers this path is recall-gated, not
	// bit-identical — the planner only selects it when calibration shows
	// the measured recall meets the declared bound.
	Int8 bool
}

// Index is a vector index over (id, vector) pairs.
type Index interface {
	// Kind returns the index family name ("flat", "ivfpq", "imi",
	// "hnsw").
	Kind() string
	// Len returns the number of indexed vectors.
	Len() int
	// Add inserts a vector. Quantizing indexes must be built (trained)
	// before accepting inserts.
	Add(id int64, v mat.Vec) error
	// Search returns the k most similar vectors in descending score
	// order.
	Search(q mat.Vec, k int, p Params) []mat.Scored
	// Memory returns an estimate of the index's resident bytes for the
	// storage-size experiments.
	Memory() int64
}
