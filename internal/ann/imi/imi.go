// Package imi implements the inverted multi-index of Section V-B and the
// approximate nearest-neighbour search of Algorithm 1.
//
// The class-embedding space R^D′ is split into P subspaces; each subspace
// is quantized into M centroids by product quantization. A vector's cell is
// the Cartesian tuple of its per-subspace codes; only non-empty cells are
// materialised, and per-subspace inverted lists map a centroid to the
// vectors coded onto it. A query is partitioned the same way; the Top-A
// centroids per subspace select candidate lists, candidates are scored
// through the residual lookup table (ADC), the top shortlist is re-scored
// exactly (s_exact = Σ_p [q]_p·[c′_a]_p), and ties are broken by the
// patch-ID vote of Algorithm 1 line 16 — candidates assembled from more
// agreeing subspaces rank first.
//
// Codes and raw vectors are stored packed (one contiguous []uint16 with
// stride P, one row-major []float32), addressed by a dense per-id position,
// so the ADC scan is strided loads against the flat lookup table instead of
// map-and-slice pointer chasing.
package imi

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/quant"
)

// Config shapes the multi-index.
type Config struct {
	// P is the number of subspaces; zero defaults to 4.
	P int
	// M is the number of centroids per subspace; zero defaults to 64
	// (clipped to the training-set size).
	M int
	// KeepRaw retains original vectors for the exact re-scoring stage.
	KeepRaw bool
	// Seed drives codebook training.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.P == 0 {
		c.P = 4
	}
	if c.M == 0 {
		c.M = 64
	}
	if c.M > n {
		c.M = n
	}
	return c
}

// Index is a built inverted multi-index.
type Index struct {
	dim int
	cfg Config
	pq  *quant.PQ
	// pos maps an id to its row in packed (and rawData when kept).
	pos map[int64]int32
	// packed holds every PQ code back to back with stride P.
	packed []uint16
	// lists[p][m] holds the positions of vectors whose subspace-p code is
	// m; dense positions keep the candidate scan free of map lookups.
	lists [][][]int32
	// rawData holds original vectors row-major (KeepRaw only).
	rawData []float32
	order   []int64 // position -> id, in insertion order
}

var _ ann.Index = (*Index)(nil)

// Build trains the subspace codebooks on the given vectors and indexes
// them.
func Build(ids []int64, vecs []mat.Vec, cfg Config) (*Index, error) {
	if len(ids) != len(vecs) {
		return nil, errors.New("imi: ids/vecs length mismatch")
	}
	if len(vecs) == 0 {
		return nil, quant.ErrNotEnoughData
	}
	cfg = cfg.withDefaults(len(vecs))
	dim := len(vecs[0])
	pq, err := quant.TrainPQ(vecs, cfg.P, cfg.M, cfg.Seed^0x1a11)
	if err != nil {
		return nil, fmt.Errorf("imi: training codebooks: %w", err)
	}
	ix := &Index{
		dim:   dim,
		cfg:   cfg,
		pq:    pq,
		pos:   make(map[int64]int32, len(vecs)),
		lists: make([][][]int32, cfg.P),
	}
	for p := 0; p < cfg.P; p++ {
		ix.lists[p] = make([][]int32, len(pq.Codebooks[p]))
	}
	for i, v := range vecs {
		if err := ix.Add(ids[i], v); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Kind implements ann.Index.
func (ix *Index) Kind() string { return "imi" }

// Len implements ann.Index.
func (ix *Index) Len() int { return len(ix.pos) }

// codeAt returns the packed code row at position p.
func (ix *Index) codeAt(p int32) []uint16 {
	off := int(p) * ix.pq.P
	return ix.packed[off : off+ix.pq.P : off+ix.pq.P]
}

// rawAt returns the raw vector at position p (KeepRaw only).
func (ix *Index) rawAt(p int32) mat.Vec {
	off := int(p) * ix.dim
	return ix.rawData[off : off+ix.dim : off+ix.dim]
}

// Add implements ann.Index. Vectors added after Build are coded with the
// existing codebooks.
func (ix *Index) Add(id int64, v mat.Vec) error {
	if len(v) != ix.dim {
		return fmt.Errorf("imi: vector dim %d != %d", len(v), ix.dim)
	}
	if _, dup := ix.pos[id]; dup {
		return fmt.Errorf("imi: duplicate id %d", id)
	}
	p := int32(len(ix.order))
	ix.packed = append(ix.packed, make([]uint16, ix.pq.P)...)
	ix.pq.EncodeInto(ix.codeAt(p), v)
	ix.pos[id] = p
	for sp, m := range ix.codeAt(p) {
		ix.lists[sp][m] = append(ix.lists[sp][m], p)
	}
	if ix.cfg.KeepRaw {
		ix.rawData = append(ix.rawData, v...)
	}
	ix.order = append(ix.order, id)
	return nil
}

// Search implements ann.Index following Algorithm 1.
func (ix *Index) Search(q mat.Vec, k int, p ann.Params) []mat.Scored {
	if k <= 0 || len(ix.pos) == 0 {
		return nil
	}
	tscratch := mat.GetScratch(ix.pq.TableLen())
	defer tscratch.Release()
	table := ix.pq.DotTableInto(tscratch.Buf, q) // lines 2–5: subspace centroid similarities

	// Candidate gathering. votes[pos] counts how many subspaces proposed
	// the vector — the agreement statistic behind the patch-ID vote.
	votes := make(map[int32]int)
	if p.Exhaustive {
		for pos := range ix.order {
			votes[int32(pos)] = ix.pq.P
		}
	} else {
		a := p.NProbe
		if a <= 0 {
			a = 8
		}
		for sp := 0; sp < ix.pq.P; sp++ {
			row := table.Row(sp)
			topA := mat.GetTopK(min(a, len(row)))
			for m, s := range row {
				topA.Push(int64(m), s)
			}
			for _, c := range topA.Sorted() { // line 6: S_A
				for _, pos := range ix.lists[sp][c.ID] {
					votes[pos]++
				}
			}
			mat.PutTopK(topA)
		}
	}

	// Score candidates by ADC (lines 8–11) into a shortlist. Exhaustive
	// mode with raw vectors skips the ADC funnel entirely — it is the
	// "w/o ANNS" brute-force ablation, so every candidate is scored
	// exactly. The top-k heap is keyed by id (the canonical determinism
	// order), while scoring addresses packed rows by dense position.
	shortlistK := k
	if ix.rawData != nil {
		shortlistK = k * 4
		if p.Exhaustive {
			shortlistK = len(votes)
		}
	}
	top := mat.GetTopK(shortlistK)
	defer mat.PutTopK(top)
	if p.Exhaustive && ix.rawData != nil {
		for pos := range votes {
			top.Push(ix.order[pos], mat.Dot(q, ix.rawAt(pos)))
		}
	} else {
		for pos := range votes {
			top.Push(ix.order[pos], ix.pq.ApproxDotPacked(table, ix.codeAt(pos)))
		}
	}
	short := top.Sorted()

	// Exact re-scoring (lines 13–17) with the patch-ID vote as the
	// tie-break: more subspace agreement ranks first. Votes are resolved
	// once per entry so the comparator does no map lookups.
	out := make([]mat.Scored, 0, len(short))
	outVotes := make([]int, 0, len(short))
	for _, s := range short {
		score := s.Score
		pos := ix.pos[s.ID]
		if ix.rawData != nil {
			score = mat.Dot(q, ix.rawAt(pos))
		}
		out = append(out, mat.Scored{ID: s.ID, Score: score})
		outVotes = append(outVotes, votes[pos])
	}
	sort.Sort(&byScoreVoteID{out, outVotes})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Memory implements ann.Index.
func (ix *Index) Memory() int64 {
	var b int64
	b += int64(len(ix.pos)) * int64(8+2*ix.pq.P) // codes
	for _, sub := range ix.lists {
		for _, l := range sub {
			b += int64(len(l)) * 4 // int32 positions
		}
	}
	b += int64(ix.pq.P*len(ix.pq.Codebooks[0])*ix.pq.SubDim) * 4
	if ix.rawData != nil {
		b += int64(len(ix.rawData)) * 4
	}
	return b
}

// CellCount returns the number of distinct non-empty cells (code tuples);
// exported for stats and tests.
func (ix *Index) CellCount() int {
	cells := make(map[string]struct{}, len(ix.pos))
	buf := make([]byte, 2*ix.pq.P)
	for p := range ix.order {
		for i, m := range ix.codeAt(int32(p)) {
			buf[2*i] = byte(m)
			buf[2*i+1] = byte(m >> 8)
		}
		cells[string(buf)] = struct{}{}
	}
	return len(cells)
}

// byScoreVoteID sorts shortlist entries by descending score, then
// descending subspace-agreement vote, then ascending ID; votes moves in
// lockstep with items.
type byScoreVoteID struct {
	items []mat.Scored
	votes []int
}

func (s *byScoreVoteID) Len() int { return len(s.items) }

func (s *byScoreVoteID) Less(i, j int) bool {
	if s.items[i].Score != s.items[j].Score {
		return s.items[i].Score > s.items[j].Score
	}
	if s.votes[i] != s.votes[j] {
		return s.votes[i] > s.votes[j]
	}
	return s.items[i].ID < s.items[j].ID
}

func (s *byScoreVoteID) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.votes[i], s.votes[j] = s.votes[j], s.votes[i]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
