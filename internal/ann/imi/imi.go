// Package imi implements the inverted multi-index of Section V-B and the
// approximate nearest-neighbour search of Algorithm 1.
//
// The class-embedding space R^D′ is split into P subspaces; each subspace
// is quantized into M centroids by product quantization. A vector's cell is
// the Cartesian tuple of its per-subspace codes; only non-empty cells are
// materialised, and per-subspace inverted lists map a centroid to the
// vectors coded onto it. A query is partitioned the same way; the Top-A
// centroids per subspace select candidate lists, candidates are scored
// through the residual lookup table (ADC), the top shortlist is re-scored
// exactly (s_exact = Σ_p [q]_p·[c′_a]_p), and ties are broken by the
// patch-ID vote of Algorithm 1 line 16 — candidates assembled from more
// agreeing subspaces rank first.
package imi

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/quant"
)

// Config shapes the multi-index.
type Config struct {
	// P is the number of subspaces; zero defaults to 4.
	P int
	// M is the number of centroids per subspace; zero defaults to 64
	// (clipped to the training-set size).
	M int
	// KeepRaw retains original vectors for the exact re-scoring stage.
	KeepRaw bool
	// Seed drives codebook training.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.P == 0 {
		c.P = 4
	}
	if c.M == 0 {
		c.M = 64
	}
	if c.M > n {
		c.M = n
	}
	return c
}

// Index is a built inverted multi-index.
type Index struct {
	dim   int
	cfg   Config
	pq    *quant.PQ
	codes map[int64]quant.Code
	// lists[p][m] holds the ids of vectors whose subspace-p code is m.
	lists [][][]int64
	raw   map[int64]mat.Vec
	order []int64 // insertion order, for deterministic exhaustive scans
}

var _ ann.Index = (*Index)(nil)

// Build trains the subspace codebooks on the given vectors and indexes
// them.
func Build(ids []int64, vecs []mat.Vec, cfg Config) (*Index, error) {
	if len(ids) != len(vecs) {
		return nil, errors.New("imi: ids/vecs length mismatch")
	}
	if len(vecs) == 0 {
		return nil, quant.ErrNotEnoughData
	}
	cfg = cfg.withDefaults(len(vecs))
	dim := len(vecs[0])
	pq, err := quant.TrainPQ(vecs, cfg.P, cfg.M, cfg.Seed^0x1a11)
	if err != nil {
		return nil, fmt.Errorf("imi: training codebooks: %w", err)
	}
	ix := &Index{
		dim:   dim,
		cfg:   cfg,
		pq:    pq,
		codes: make(map[int64]quant.Code, len(vecs)),
		lists: make([][][]int64, cfg.P),
	}
	for p := 0; p < cfg.P; p++ {
		ix.lists[p] = make([][]int64, len(pq.Codebooks[p]))
	}
	if cfg.KeepRaw {
		ix.raw = make(map[int64]mat.Vec, len(vecs))
	}
	for i, v := range vecs {
		if err := ix.Add(ids[i], v); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Kind implements ann.Index.
func (ix *Index) Kind() string { return "imi" }

// Len implements ann.Index.
func (ix *Index) Len() int { return len(ix.codes) }

// Add implements ann.Index. Vectors added after Build are coded with the
// existing codebooks.
func (ix *Index) Add(id int64, v mat.Vec) error {
	if len(v) != ix.dim {
		return fmt.Errorf("imi: vector dim %d != %d", len(v), ix.dim)
	}
	if _, dup := ix.codes[id]; dup {
		return fmt.Errorf("imi: duplicate id %d", id)
	}
	code := ix.pq.Encode(v)
	ix.codes[id] = code
	for p, m := range code {
		ix.lists[p][m] = append(ix.lists[p][m], id)
	}
	if ix.raw != nil {
		ix.raw[id] = mat.Clone(v)
	}
	ix.order = append(ix.order, id)
	return nil
}

// Search implements ann.Index following Algorithm 1.
func (ix *Index) Search(q mat.Vec, k int, p ann.Params) []mat.Scored {
	if k <= 0 || len(ix.codes) == 0 {
		return nil
	}
	table := ix.pq.DotTable(q) // lines 2–5: subspace centroid similarities

	// Candidate gathering. votes[id] counts how many subspaces proposed
	// the vector — the agreement statistic behind the patch-ID vote.
	votes := make(map[int64]int)
	if p.Exhaustive {
		for _, id := range ix.order {
			votes[id] = ix.pq.P
		}
	} else {
		a := p.NProbe
		if a <= 0 {
			a = 8
		}
		for sp := 0; sp < ix.pq.P; sp++ {
			row := table[sp]
			topA := mat.NewTopK(min(a, len(row)))
			for m, s := range row {
				topA.Push(int64(m), s)
			}
			for _, c := range topA.Sorted() { // line 6: S_A
				for _, id := range ix.lists[sp][c.ID] {
					votes[id]++
				}
			}
		}
	}

	// Score candidates by ADC (lines 8–11) into a shortlist. Exhaustive
	// mode with raw vectors skips the ADC funnel entirely — it is the
	// "w/o ANNS" brute-force ablation, so every candidate is scored
	// exactly.
	shortlistK := k
	if ix.raw != nil {
		shortlistK = k * 4
		if p.Exhaustive {
			shortlistK = len(votes)
		}
	}
	top := mat.NewTopK(shortlistK)
	if p.Exhaustive && ix.raw != nil {
		for id := range votes {
			top.Push(id, mat.Dot(q, ix.raw[id]))
		}
	} else {
		for id := range votes {
			top.Push(id, ix.pq.ApproxDot(table, ix.codes[id]))
		}
	}
	short := top.Sorted()

	// Exact re-scoring (lines 13–17) with the patch-ID vote as the
	// tie-break: more subspace agreement ranks first.
	out := make([]mat.Scored, 0, len(short))
	for _, s := range short {
		score := s.Score
		if ix.raw != nil {
			score = mat.Dot(q, ix.raw[s.ID])
		}
		out = append(out, mat.Scored{ID: s.ID, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if vi, vj := votes[out[i].ID], votes[out[j].ID]; vi != vj {
			return vi > vj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Memory implements ann.Index.
func (ix *Index) Memory() int64 {
	var b int64
	b += int64(len(ix.codes)) * int64(8+2*ix.pq.P) // codes
	for _, sub := range ix.lists {
		for _, l := range sub {
			b += int64(len(l)) * 8
		}
	}
	b += int64(ix.pq.P*len(ix.pq.Codebooks[0])*ix.pq.SubDim) * 4
	if ix.raw != nil {
		b += int64(len(ix.raw)) * int64(ix.dim) * 4
	}
	return b
}

// CellCount returns the number of distinct non-empty cells (code tuples);
// exported for stats and tests.
func (ix *Index) CellCount() int {
	cells := make(map[string]struct{}, len(ix.codes))
	buf := make([]byte, 2*ix.pq.P)
	for _, code := range ix.codes {
		for i, m := range code {
			buf[2*i] = byte(m)
			buf[2*i+1] = byte(m >> 8)
		}
		cells[string(buf)] = struct{}{}
	}
	return len(cells)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
