package imi

import (
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

const dim = 16

func build(t *testing.T, n int, cfg Config) *Index {
	t.Helper()
	ids := make([]int64, n)
	vecs := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i + 1)
		vecs[i] = mat.UnitGaussianVec(dim, uint64(i))
	}
	ix, err := Build(ids, vecs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestInvertedListsPartitionEverything(t *testing.T) {
	// Within each subspace, the inverted lists must partition the id set:
	// every vector appears exactly once per subspace.
	ix := build(t, 500, Config{P: 4, M: 16, Seed: 2})
	for sp := range ix.lists {
		seen := map[int64]int{}
		total := 0
		for _, l := range ix.lists[sp] {
			for _, pos := range l {
				seen[ix.order[pos]]++
				total++
			}
		}
		if total != 500 {
			t.Fatalf("subspace %d lists hold %d entries, want 500", sp, total)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("subspace %d: id %d appears %d times", sp, id, c)
			}
		}
	}
}

func TestCodesMatchListMembership(t *testing.T) {
	ix := build(t, 300, Config{P: 4, M: 16, Seed: 3})
	for id, pos := range ix.pos {
		for sp, m := range ix.codeAt(pos) {
			found := false
			for _, lpos := range ix.lists[sp][m] {
				if lpos == pos {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("id %d coded to (sp=%d,m=%d) but missing from that list", id, sp, m)
			}
		}
	}
}

func TestCellCountBounded(t *testing.T) {
	ix := build(t, 400, Config{P: 4, M: 8, Seed: 4})
	cells := ix.CellCount()
	if cells < 2 || cells > 400 {
		t.Fatalf("cells = %d", cells)
	}
}

func TestLargerAWidensCandidates(t *testing.T) {
	ix := build(t, 800, Config{P: 4, M: 32, KeepRaw: true, Seed: 5})
	q := mat.UnitGaussianVec(dim, 999)
	small := ix.Search(q, 400, ann.Params{NProbe: 1})
	large := ix.Search(q, 400, ann.Params{NProbe: 32})
	if len(large) < len(small) {
		t.Fatalf("more probes must not shrink the candidate pool: %d vs %d", len(small), len(large))
	}
}

func TestExhaustiveCoversAll(t *testing.T) {
	ix := build(t, 200, Config{P: 4, M: 8, KeepRaw: true, Seed: 6})
	q := mat.UnitGaussianVec(dim, 31)
	res := ix.Search(q, 200, ann.Params{Exhaustive: true})
	if len(res) != 200 {
		t.Fatalf("exhaustive must score everything: %d", len(res))
	}
}
