// Package ivfpq implements the inverted-file index with product-quantized
// residuals (IVF-PQ), the quantization-based variant of Table V: a coarse
// k-means quantizer routes vectors into NList inverted lists; within a list
// a vector is stored as the PQ code of its residual against the list
// centroid. Search probes the NProbe closest lists and scores candidates as
// coarse-similarity + residual ADC, optionally refining the top candidates
// against raw vectors.
//
// Lists are structure-of-arrays — parallel id and packed-code slices — so a
// probed list scans as one quant.ApproxDotBatch pass over contiguous codes;
// coarse centroids and raw vectors are likewise stored row-major for the
// blocked scoring kernels.
package ivfpq

import (
	"errors"
	"fmt"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/quant"
)

// Config shapes index construction.
type Config struct {
	// NList is the number of coarse clusters; zero defaults to
	// max(1, sqrt(n)) at build time.
	NList int
	// P and M are the residual product quantizer's subspace count and
	// per-subspace centroid count; zero defaults to 8 and 64.
	P, M int
	// KeepRaw retains original vectors for exact refinement (Algorithm 1
	// line 14 computes exact scores over the shortlist).
	KeepRaw bool
	// Seed drives codebook training.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.NList <= 0 {
		c.NList = isqrt(n)
		if c.NList < 1 {
			c.NList = 1
		}
	}
	if c.P == 0 {
		c.P = 8
	}
	if c.M == 0 {
		c.M = 64
	}
	return c
}

func isqrt(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}

// list is one inverted list in structure-of-arrays layout: ids[i] pairs
// with the packed code row codes[i*P:(i+1)*P] and the int8 sidecar row
// i8.Row(i). The sidecar quantizes the ORIGINAL vector (not the residual),
// so Params.Int8 can score q·v directly without the coarse term.
type list struct {
	ids   []int64
	codes []uint16
	i8    *quant.Int8Block
}

// Index is a built IVF-PQ index.
type Index struct {
	dim        int
	cfg        Config
	coarse     []mat.Vec // NList centroids, rows aliasing coarseFlat
	coarseFlat []float32
	lists      []list
	pq         *quant.PQ
	rawPos     map[int64]int32
	rawData    []float32 // row-major raw vectors (KeepRaw only)
	count      int
}

var _ ann.Index = (*Index)(nil)

// Build trains the coarse quantizer and residual PQ on the given vectors
// and indexes them. ids and vecs must align.
func Build(ids []int64, vecs []mat.Vec, cfg Config) (*Index, error) {
	if len(ids) != len(vecs) {
		return nil, errors.New("ivfpq: ids/vecs length mismatch")
	}
	if len(vecs) == 0 {
		return nil, quant.ErrNotEnoughData
	}
	cfg = cfg.withDefaults(len(vecs))
	dim := len(vecs[0])

	km := quant.KMeans(vecs, cfg.NList, 25, cfg.Seed^0x19f0)
	nlist := len(km.Centroids)

	// Residuals train the PQ.
	residuals := make([]mat.Vec, len(vecs))
	for i, v := range vecs {
		r := mat.NewVec(dim)
		mat.Sub(r, v, km.Centroids[km.Assign[i]])
		residuals[i] = r
	}
	m := cfg.M
	if len(vecs) < m {
		m = len(vecs)
	}
	pq, err := quant.TrainPQ(residuals, cfg.P, m, cfg.Seed^0x70f1)
	if err != nil {
		return nil, fmt.Errorf("ivfpq: training residual PQ: %w", err)
	}

	ix := &Index{
		dim:        dim,
		cfg:        cfg,
		coarse:     make([]mat.Vec, nlist),
		coarseFlat: make([]float32, nlist*dim),
		lists:      make([]list, nlist),
		pq:         pq,
	}
	for li, c := range km.Centroids {
		off := li * dim
		copy(ix.coarseFlat[off:off+dim], c)
		ix.coarse[li] = ix.coarseFlat[off : off+dim : off+dim]
		ix.lists[li].i8 = quant.NewInt8Block(dim)
	}
	if cfg.KeepRaw {
		ix.rawPos = make(map[int64]int32, len(vecs))
	}
	code := make(quant.Code, pq.P)
	for i, v := range vecs {
		li := km.Assign[i]
		pq.EncodeInto(code, residuals[i])
		ix.lists[li].ids = append(ix.lists[li].ids, ids[i])
		ix.lists[li].codes = append(ix.lists[li].codes, code...)
		ix.lists[li].i8.Append(v)
		if cfg.KeepRaw {
			ix.rawPos[ids[i]] = int32(len(ix.rawData) / dim)
			ix.rawData = append(ix.rawData, v...)
		}
		ix.count++
	}
	return ix, nil
}

// Kind implements ann.Index.
func (ix *Index) Kind() string { return "ivfpq" }

// Len implements ann.Index.
func (ix *Index) Len() int { return ix.count }

// rawAt returns the retained raw vector at position p.
func (ix *Index) rawAt(p int32) mat.Vec {
	off := int(p) * ix.dim
	return ix.rawData[off : off+ix.dim : off+ix.dim]
}

// Add implements ann.Index: the vector is routed to its nearest list and
// residual-encoded with the already-trained codebooks (the paper's future
// work discusses incremental insertion; assignment without retraining is
// the standard approach).
func (ix *Index) Add(id int64, v mat.Vec) error {
	if len(v) != ix.dim {
		return fmt.Errorf("ivfpq: vector dim %d != %d", len(v), ix.dim)
	}
	li := quant.NearestCentroid(ix.coarse, v)
	r := mat.NewVec(ix.dim)
	mat.Sub(r, v, ix.coarse[li])
	code := make(quant.Code, ix.pq.P)
	ix.pq.EncodeInto(code, r)
	ix.lists[li].ids = append(ix.lists[li].ids, id)
	ix.lists[li].codes = append(ix.lists[li].codes, code...)
	ix.lists[li].i8.Append(v)
	if ix.rawPos != nil {
		ix.rawPos[id] = int32(len(ix.rawData) / ix.dim)
		ix.rawData = append(ix.rawData, v...)
	}
	ix.count++
	return nil
}

// Search implements ann.Index.
func (ix *Index) Search(q mat.Vec, k int, p ann.Params) []mat.Scored {
	if k <= 0 || ix.count == 0 {
		return nil
	}
	nprobe := p.NProbe
	if nprobe <= 0 {
		nprobe = len(ix.coarse)/8 + 1
	}
	if p.Exhaustive || nprobe > len(ix.coarse) {
		nprobe = len(ix.coarse)
	}

	// Rank coarse lists by query similarity: one blocked kernel pass over
	// the contiguous centroid block.
	cscratch := mat.GetScratch(len(ix.coarse))
	coarseSims := mat.ScoreRows(cscratch.Buf, q, ix.coarseFlat, ix.dim)
	listTop := mat.GetTopK(nprobe)
	for li, s := range coarseSims {
		listTop.Push(int64(li), s)
	}
	cscratch.Release()

	// Params.Int8 swaps the per-candidate stage-1 scorer: instead of
	// coarse + residual ADC, score q·v directly over each probed list's
	// int8 sidecar. Exhaustive searches are exact by contract and ignore
	// the knob. The shortlist/refinement machinery downstream is shared.
	useInt8 := p.Int8 && !p.Exhaustive
	var qCode []int8
	var qScale float32
	var table quant.Table
	tscratch := mat.GetScratch(ix.pq.TableLen())
	defer tscratch.Release()
	if useInt8 {
		qCode = make([]int8, ix.dim)
		qScale = quant.QuantizeInt8Into(qCode, q)
	} else {
		table = ix.pq.DotTableInto(tscratch.Buf, q)
	}

	shortlistK := k
	if ix.rawData != nil {
		// Over-fetch for exact refinement.
		shortlistK = k * 4
		if p.Exhaustive {
			// An exhaustive search must be exact by construction (recall 1),
			// not "exact over an ADC shortlist": retain every entity for the
			// exact re-scoring pass, so a quantization near-tie at the
			// shortlist cut can never drop a true top-k item — and per-shard
			// exhaustive top-k lists merge into the monolithic answer bit
			// for bit.
			shortlistK = ix.count
		}
	}
	top := mat.GetTopK(shortlistK)
	defer mat.PutTopK(top)
	sscratch := mat.GetScratch(0)
	defer func() { sscratch.Release() }() // sscratch may be regrown below
	for _, sc := range listTop.Sorted() {
		l := &ix.lists[sc.ID]
		if len(l.ids) == 0 {
			continue
		}
		if cap(sscratch.Buf) < len(l.ids) {
			sscratch.Release()
			sscratch = mat.GetScratch(len(l.ids))
		}
		// Approximate scores, one batch pass per probed list: either
		// coarse + residual ADC (Algorithm 1, line 10) or the int8
		// sidecar's direct q·v approximation.
		var scores []float32
		if useInt8 {
			scores = l.i8.ScoreRowsInt8(sscratch.Buf[:len(l.ids)], qScale, qCode, 0, len(l.ids))
		} else {
			scores = ix.pq.ApproxDotBatch(sscratch.Buf[:len(l.ids)], table, l.codes, sc.Score)
		}
		for i, s := range scores {
			top.Push(l.ids[i], s)
		}
	}
	mat.PutTopK(listTop)
	short := top.Sorted()
	if ix.rawData == nil {
		if len(short) > k {
			short = short[:k]
		}
		return short
	}
	// Exact re-scoring of the shortlist (Algorithm 1, lines 13–17).
	out := make([]mat.Scored, 0, len(short))
	for _, s := range short {
		out = append(out, mat.Scored{ID: s.ID, Score: mat.Dot(q, ix.rawAt(ix.rawPos[s.ID]))})
	}
	mat.SortScoredDesc(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Memory implements ann.Index: centroids + codes + int8 sidecars (+ raw
// vectors if kept).
func (ix *Index) Memory() int64 {
	var b int64
	b += int64(len(ix.coarseFlat)) * 4
	for _, l := range ix.lists {
		b += int64(len(l.ids)) * int64(8+2*ix.cfg.P)
		b += int64(l.i8.Memory())
	}
	b += int64(ix.pq.P*len(ix.pq.Codebooks[0])*ix.pq.SubDim) * 4
	if ix.rawData != nil {
		b += int64(len(ix.rawData)) * 4
	}
	return b
}

// Lists returns the number of coarse lists (for tests and stats).
func (ix *Index) Lists() int { return len(ix.coarse) }
