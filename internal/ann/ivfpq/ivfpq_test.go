package ivfpq

import (
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

const dim = 16

func build(t *testing.T, n int, cfg Config) *Index {
	t.Helper()
	ids := make([]int64, n)
	vecs := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i + 1)
		vecs[i] = mat.UnitGaussianVec(dim, uint64(i))
	}
	ix, err := Build(ids, vecs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestListsPartitionVectors(t *testing.T) {
	ix := build(t, 400, Config{NList: 12, P: 4, M: 16, Seed: 2})
	if ix.Lists() != 12 {
		t.Fatalf("lists = %d", ix.Lists())
	}
	total := 0
	for _, l := range ix.lists {
		total += len(l.ids)
	}
	if total != 400 {
		t.Fatalf("list entries = %d, want 400", total)
	}
}

func TestDefaultNListSqrt(t *testing.T) {
	ix := build(t, 100, Config{P: 4, M: 16, Seed: 3})
	if ix.Lists() != 10 {
		t.Fatalf("default NList = %d, want sqrt(100)=10", ix.Lists())
	}
}

func TestResidualCodingRecovers(t *testing.T) {
	// With KeepRaw, the refined search must put the query's own vector
	// first under generous probing.
	ix := build(t, 300, Config{NList: 8, P: 4, M: 16, KeepRaw: true, Seed: 4})
	hits := 0
	for i := 0; i < 20; i++ {
		q := mat.UnitGaussianVec(dim, uint64(i*15))
		res := ix.Search(q, 1, ann.Params{NProbe: 8})
		if len(res) == 1 && res[0].ID == int64(i*15+1) {
			hits++
		}
	}
	if hits < 18 {
		t.Fatalf("self-retrieval %d/20", hits)
	}
}

func TestNProbeDefaultsApplied(t *testing.T) {
	ix := build(t, 200, Config{NList: 8, P: 4, M: 8, Seed: 5})
	res := ix.Search(mat.UnitGaussianVec(dim, 7), 5, ann.Params{})
	if len(res) == 0 {
		t.Fatal("default nprobe must return results")
	}
}
