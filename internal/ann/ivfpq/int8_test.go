package ivfpq

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ann"
	"repro/internal/ann/flat"
	"repro/internal/mat"
)

// TestInt8StageOneRecall wires Params.Int8 through a built index with raw
// refinement and checks the quantized stage-1 scorer against exact ground
// truth: recall must stay high (the int8 sidecar approximates q·v far
// tighter than residual ADC) and, with KeepRaw, every returned score must
// be the exact float32 inner product.
func TestInt8StageOneRecall(t *testing.T) {
	const n, dim, k, queries = 1500, 24, 10, 30
	rng := rand.New(rand.NewPCG(7, 0x1f8))
	ids := make([]int64, n)
	vecs := make([]mat.Vec, n)
	oracle := flat.New(dim)
	for i := range vecs {
		v := make(mat.Vec, dim)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		inv := float32(1 / math.Sqrt(norm))
		for j := range v {
			v[j] *= inv
		}
		ids[i], vecs[i] = int64(i), v
		if err := oracle.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(ids, vecs, Config{NList: 16, KeepRaw: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	raw := map[int64]mat.Vec{}
	for i, v := range vecs {
		raw[int64(i)] = v
	}

	var hit, total int
	for qi := 0; qi < queries; qi++ {
		q := make(mat.Vec, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		exact := oracle.Search(q, k, ann.Params{})
		want := map[int64]bool{}
		for _, s := range exact {
			want[s.ID] = true
		}
		got := ix.Search(q, k, ann.Params{NProbe: 8, Int8: true})
		for _, s := range got {
			if want[s.ID] {
				hit++
			}
			if exactScore := mat.Dot(q, raw[s.ID]); s.Score != exactScore {
				t.Fatalf("query %d id %d: score %v != exact %v", qi, s.ID, s.Score, exactScore)
			}
		}
		total += k
	}
	if recall := float64(hit) / float64(total); recall < 0.85 {
		t.Fatalf("int8 recall@%d = %.3f, want >= 0.85", k, recall)
	}
}

// TestInt8ExhaustiveStaysExact: Exhaustive overrides Int8 — the ablation
// contract (recall 1 over the probed set) must hold bit for bit.
func TestInt8ExhaustiveStaysExact(t *testing.T) {
	const n, dim = 200, 8
	rng := rand.New(rand.NewPCG(11, 0x1f8))
	ids := make([]int64, n)
	vecs := make([]mat.Vec, n)
	for i := range vecs {
		v := make(mat.Vec, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		ids[i], vecs[i] = int64(i), v
	}
	ix, err := Build(ids, vecs, Config{NList: 4, KeepRaw: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := make(mat.Vec, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	a := ix.Search(q, 5, ann.Params{Exhaustive: true})
	b := ix.Search(q, 5, ann.Params{Exhaustive: true, Int8: true})
	for i := range a {
		if a[i].ID != b[i].ID || math.Float32bits(a[i].Score) != math.Float32bits(b[i].Score) {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}
