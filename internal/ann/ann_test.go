package ann_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ann"
	"repro/internal/ann/flat"
	"repro/internal/ann/hnsw"
	"repro/internal/ann/imi"
	"repro/internal/ann/ivfpq"
	"repro/internal/mat"
)

const dim = 32

// corpus builds n unit vectors clustered around nClusters directions, the
// shape class embeddings actually have.
func corpus(n, nClusters int, seed uint64) ([]int64, []mat.Vec) {
	rng := rand.New(rand.NewPCG(seed, 17))
	centers := make([]mat.Vec, nClusters)
	for i := range centers {
		centers[i] = mat.UnitGaussianVec(dim, uint64(i)+seed*131)
	}
	ids := make([]int64, n)
	vecs := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		c := centers[i%nClusters]
		v := mat.Clone(c)
		for d := range v {
			v[d] += float32(rng.NormFloat64() * 0.25)
		}
		mat.Normalize(v)
		ids[i] = int64(i + 1)
		vecs[i] = v
	}
	return ids, vecs
}

// buildAll constructs every index kind over the corpus.
func buildAll(t *testing.T, ids []int64, vecs []mat.Vec) map[string]ann.Index {
	t.Helper()
	out := map[string]ann.Index{}

	fl := flat.New(dim)
	for i := range ids {
		if err := fl.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	out["flat"] = fl

	iv, err := ivfpq.Build(ids, vecs, ivfpq.Config{NList: 16, P: 8, M: 32, KeepRaw: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out["ivfpq"] = iv

	im, err := imi.Build(ids, vecs, imi.Config{P: 4, M: 32, KeepRaw: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	out["imi"] = im

	hn := hnsw.New(dim, hnsw.Config{M: 12, EfConstruction: 80, Seed: 7})
	for i := range ids {
		if err := hn.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	out["hnsw"] = hn
	return out
}

func recallAtK(exact, approx []mat.Scored) float64 {
	want := make(map[int64]bool, len(exact))
	for _, s := range exact {
		want[s.ID] = true
	}
	hit := 0
	for _, s := range approx {
		if want[s.ID] {
			hit++
		}
	}
	if len(exact) == 0 {
		return 1
	}
	return float64(hit) / float64(len(exact))
}

func TestIndexConformance(t *testing.T) {
	ids, vecs := corpus(600, 12, 1)
	indexes := buildAll(t, ids, vecs)
	q := mat.Normalized(vecs[37])
	for kind, ix := range indexes {
		t.Run(kind, func(t *testing.T) {
			if ix.Kind() != kind {
				t.Fatalf("kind = %q", ix.Kind())
			}
			if ix.Len() != len(ids) {
				t.Fatalf("len = %d want %d", ix.Len(), len(ids))
			}
			if ix.Memory() <= 0 {
				t.Fatal("memory must be positive")
			}
			res := ix.Search(q, 10, ann.Params{NProbe: 8, Ef: 64})
			if len(res) != 10 {
				t.Fatalf("got %d results", len(res))
			}
			for i := 1; i < len(res); i++ {
				if res[i].Score > res[i-1].Score {
					t.Fatal("results must be sorted descending")
				}
			}
			seen := map[int64]bool{}
			for _, r := range res {
				if seen[r.ID] {
					t.Fatalf("duplicate id %d", r.ID)
				}
				seen[r.ID] = true
			}
			// k=0 and absurd k behave sanely.
			if out := ix.Search(q, 0, ann.Params{}); out != nil {
				t.Fatal("k=0 must return nil")
			}
			if out := ix.Search(q, 10_000, ann.Params{NProbe: 1 << 20, Ef: 1 << 12}); len(out) > len(ids) {
				t.Fatal("cannot return more than stored")
			}
		})
	}
}

func TestSelfRetrieval(t *testing.T) {
	// Every index must return a stored vector as its own top match.
	ids, vecs := corpus(400, 8, 2)
	indexes := buildAll(t, ids, vecs)
	for kind, ix := range indexes {
		hits := 0
		const trials = 25
		for i := 0; i < trials; i++ {
			probe := i * 16
			res := ix.Search(vecs[probe], 1, ann.Params{NProbe: 16, Ef: 96})
			if len(res) == 1 && res[0].ID == ids[probe] {
				hits++
			}
		}
		minHits := trials
		if kind == "ivfpq" || kind == "imi" {
			minHits = trials * 8 / 10 // quantized: near-perfect on clustered data
		}
		if hits < minHits {
			t.Errorf("%s: self-retrieval %d/%d below %d", kind, hits, trials, minHits)
		}
	}
}

func TestApproximateRecallAgainstFlat(t *testing.T) {
	ids, vecs := corpus(800, 16, 3)
	indexes := buildAll(t, ids, vecs)
	fl := indexes["flat"]
	queries := make([]mat.Vec, 12)
	for i := range queries {
		q := mat.Clone(vecs[i*60])
		q[0] += 0.05
		queries[i] = mat.Normalize(q)
	}
	for _, kind := range []string{"ivfpq", "imi", "hnsw"} {
		var total float64
		for _, q := range queries {
			exact := fl.Search(q, 10, ann.Params{})
			approx := indexes[kind].Search(q, 10, ann.Params{NProbe: 12, Ef: 96})
			total += recallAtK(exact, approx)
		}
		avg := total / float64(len(queries))
		if avg < 0.7 {
			t.Errorf("%s: recall@10 = %.2f below 0.7", kind, avg)
		}
	}
}

func TestExhaustiveMatchesFlatForIMI(t *testing.T) {
	// With Exhaustive + KeepRaw, IMI must agree exactly with brute force.
	ids, vecs := corpus(300, 6, 4)
	indexes := buildAll(t, ids, vecs)
	q := mat.UnitGaussianVec(dim, 999)
	exact := indexes["flat"].Search(q, 5, ann.Params{})
	ex := indexes["imi"].Search(q, 5, ann.Params{Exhaustive: true})
	if len(exact) != len(ex) {
		t.Fatalf("lengths differ: %d vs %d", len(exact), len(ex))
	}
	for i := range exact {
		if exact[i].ID != ex[i].ID {
			t.Fatalf("rank %d: flat=%d imi-exhaustive=%d", i, exact[i].ID, ex[i].ID)
		}
	}
}

func TestNProbeTradesRecallForWork(t *testing.T) {
	ids, vecs := corpus(800, 16, 5)
	im, err := imi.Build(ids, vecs, imi.Config{P: 4, M: 32, KeepRaw: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	fl := flat.New(dim)
	for i := range ids {
		_ = fl.Add(ids[i], vecs[i])
	}
	q := mat.Normalized(vecs[100])
	exact := fl.Search(q, 10, ann.Params{})
	lo := recallAtK(exact, im.Search(q, 10, ann.Params{NProbe: 1}))
	hi := recallAtK(exact, im.Search(q, 10, ann.Params{NProbe: 32}))
	if hi < lo {
		t.Fatalf("recall must not drop with more probes: lo=%v hi=%v", lo, hi)
	}
	if hi < 0.8 {
		t.Fatalf("high-probe recall too low: %v", hi)
	}
}

func TestIncrementalAddAfterBuild(t *testing.T) {
	ids, vecs := corpus(300, 6, 6)
	im, err := imi.Build(ids, vecs, imi.Config{P: 4, M: 16, KeepRaw: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ivfpq.Build(ids, vecs, ivfpq.Config{NList: 8, P: 8, M: 16, KeepRaw: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	nv := mat.UnitGaussianVec(dim, 4242)
	for _, ix := range []ann.Index{im, iv} {
		if err := ix.Add(9999, nv); err != nil {
			t.Fatal(err)
		}
		res := ix.Search(nv, 1, ann.Params{NProbe: 16})
		if len(res) != 1 || res[0].ID != 9999 {
			t.Errorf("%s: new vector not retrievable: %v", ix.Kind(), res)
		}
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	ids, vecs := corpus(100, 4, 7)
	im, err := imi.Build(ids, vecs, imi.Config{P: 4, M: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Add(ids[0], vecs[0]); err == nil {
		t.Fatal("imi must reject duplicate ids")
	}
	hn := hnsw.New(dim, hnsw.Config{})
	if err := hn.Add(1, vecs[0]); err != nil {
		t.Fatal(err)
	}
	if err := hn.Add(1, vecs[1]); err == nil {
		t.Fatal("hnsw must reject duplicate ids")
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	fl := flat.New(dim)
	if err := fl.Add(1, mat.Vec{1, 2}); err == nil {
		t.Fatal("flat must reject wrong dims")
	}
	hn := hnsw.New(dim, hnsw.Config{})
	if err := hn.Add(1, mat.Vec{1}); err == nil {
		t.Fatal("hnsw must reject wrong dims")
	}
}

func TestIMICellCount(t *testing.T) {
	ids, vecs := corpus(500, 10, 8)
	im, err := imi.Build(ids, vecs, imi.Config{P: 4, M: 16, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	cells := im.CellCount()
	if cells <= 1 || cells > 500 {
		t.Fatalf("cells = %d", cells)
	}
}

func TestEmptyIndexSearches(t *testing.T) {
	fl := flat.New(dim)
	if res := fl.Search(mat.NewVec(dim), 5, ann.Params{}); res != nil {
		t.Fatal("empty flat search must be nil")
	}
	hn := hnsw.New(dim, hnsw.Config{})
	if res := hn.Search(mat.NewVec(dim), 5, ann.Params{}); res != nil {
		t.Fatal("empty hnsw search must be nil")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := imi.Build([]int64{1}, nil, imi.Config{}); err == nil {
		t.Fatal("mismatched build inputs must error")
	}
	if _, err := ivfpq.Build(nil, nil, ivfpq.Config{}); err == nil {
		t.Fatal("empty build must error")
	}
}
