package flat

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

// Microbenchmarks for the flat full scan. Run with
//
//	go test -bench . -run '^$' -benchmem ./internal/ann/flat/
//
// BenchmarkSearch* must report near-zero allocs/op: the scan runs on
// pooled scratch and a pooled top-k heap, allocating only the returned
// result slice. BenchmarkSearchReference* is the seed implementation —
// per-row subslice + scalar dot + a fresh heap per query — kept as the
// speedup baseline.

func benchIndex(n, dim int) (*Index, mat.Vec) {
	rng := rand.New(rand.NewPCG(42, 43))
	ix := New(dim)
	v := make(mat.Vec, dim)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		if err := ix.Add(int64(i), v); err != nil {
			panic(err)
		}
	}
	q := make(mat.Vec, dim)
	for d := range q {
		q[d] = float32(rng.NormFloat64())
	}
	return ix, q
}

// referenceSearch is the seed's scan, preserved as the speedup baseline:
// per-row subslice, serial-order scalar dot, a fresh heap per query, no
// threshold gate. Its scalar reduction order differs from the canonical
// 4-lane order at the ULP level, so it is a performance baseline, not a
// bit-identity oracle (oracleSearch below is).
func referenceSearch(ix *Index, q mat.Vec, k int) []mat.Scored {
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	top := mat.NewTopK(k)
	for i, id := range ix.ids {
		row := ix.data[i*ix.dim : (i+1)*ix.dim]
		var s float32
		for d, qv := range q {
			s += qv * row[d]
		}
		top.Push(id, s)
	}
	return top.Sorted()
}

func BenchmarkSearch32d(b *testing.B)          { benchmarkSearch(b, 32, false) }
func BenchmarkSearch64d(b *testing.B)          { benchmarkSearch(b, 64, false) }
func BenchmarkSearchReference32d(b *testing.B) { benchmarkSearch(b, 32, true) }
func BenchmarkSearchReference64d(b *testing.B) { benchmarkSearch(b, 64, true) }

func benchmarkSearch(b *testing.B, dim int, reference bool) {
	const n, k = 20000, 100
	ix, q := benchIndex(n, dim)
	b.ReportAllocs()
	b.SetBytes(int64(4 * n * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reference {
			referenceSearch(ix, q, k)
		} else {
			ix.Search(q, k, ann.Params{})
		}
	}
}

// oracleSearch is the bit-identity oracle: one mat.Dot per row (the
// canonical reduction order) into a fresh heap, with no blocking, batching
// or threshold gating. The optimized Search must reproduce it exactly.
func oracleSearch(ix *Index, q mat.Vec, k int) []mat.Scored {
	top := mat.NewTopK(k)
	for i, id := range ix.ids {
		top.Push(id, mat.Dot(q, ix.data[i*ix.dim:(i+1)*ix.dim]))
	}
	return top.Sorted()
}

func TestSearchBitIdenticalToOracle(t *testing.T) {
	ix, q := benchIndex(5000, 33) // odd dim: exercises the kernel tails
	got := ix.Search(q, 50, ann.Params{})
	want := oracleSearch(ix, q, 50)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: kernel scan %v, oracle %v", i, got[i], want[i])
		}
	}
}
