package flat

import (
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

func TestExactOrdering(t *testing.T) {
	ix := New(4)
	_ = ix.Add(1, mat.Vec{1, 0, 0, 0})
	_ = ix.Add(2, mat.Vec{0.9, 0.1, 0, 0})
	_ = ix.Add(3, mat.Vec{0, 1, 0, 0})
	res := ix.Search(mat.Vec{1, 0, 0, 0}, 3, ann.Params{})
	if res[0].ID != 1 || res[1].ID != 2 || res[2].ID != 3 {
		t.Fatalf("order = %v", res)
	}
}

func TestVectorAccessor(t *testing.T) {
	ix := New(2)
	_ = ix.Add(5, mat.Vec{0.5, 0.5})
	v := ix.Vector(0)
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Fatalf("vector = %v", v)
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
