package flat

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

func randIndex(t *testing.T, n, dim int, seed uint64) (*Index, []mat.Vec) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xf1a7))
	ix := New(dim)
	var vecs []mat.Vec
	for i := 0; i < n; i++ {
		v := make(mat.Vec, dim)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		inv := float32(1 / math.Sqrt(norm))
		for j := range v {
			v[j] *= inv
		}
		if err := ix.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
		vecs = append(vecs, v)
	}
	return ix, vecs
}

// TestSearchInt8ExactScoresAndRecall pins the two contracts of the int8
// stage-1 path: every returned score is the EXACT float32 inner product
// (only candidate selection is approximate), and recall@k against the
// exact scan stays high on unit-normalised data.
func TestSearchInt8ExactScoresAndRecall(t *testing.T) {
	const n, dim, k, queries = 2000, 32, 10, 40
	ix, _ := randIndex(t, n, dim, 1)
	rng := rand.New(rand.NewPCG(2, 0xf1a7))
	var hit, total int
	for qi := 0; qi < queries; qi++ {
		q := make(mat.Vec, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		exact := ix.Search(q, k, ann.Params{})
		approx := ix.Search(q, k, ann.Params{Int8: true})
		if len(approx) != k {
			t.Fatalf("query %d: int8 path returned %d results", qi, len(approx))
		}
		want := map[int64]bool{}
		for _, s := range exact {
			want[s.ID] = true
		}
		for _, s := range approx {
			if want[s.ID] {
				hit++
			}
			// Scores must be exact regardless of how the candidate was found.
			r := int(s.ID) // ids are positions in randIndex
			if got, exactScore := s.Score, mat.Dot(q, ix.Vector(r)); got != exactScore {
				t.Fatalf("query %d id %d: score %v != exact %v", qi, s.ID, got, exactScore)
			}
		}
		total += k
	}
	if recall := float64(hit) / float64(total); recall < 0.95 {
		t.Fatalf("int8 recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

// TestSearchInt8ExhaustiveIgnoresKnob: exhaustive scans are exact by
// contract, bit-identical to the plain path.
func TestSearchInt8ExhaustiveIgnoresKnob(t *testing.T) {
	ix, _ := randIndex(t, 300, 16, 3)
	q := make(mat.Vec, 16)
	q[0] = 1
	a := ix.Search(q, 7, ann.Params{Exhaustive: true})
	b := ix.Search(q, 7, ann.Params{Int8: true, Exhaustive: true})
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float32bits(a[i].Score) != math.Float32bits(b[i].Score) {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSearchBatchBitIdenticalToSearch: the cross-query batched sweep must
// return byte-identical results to independent Search calls, for both the
// float32 and int8 paths, across ragged row counts.
func TestSearchBatchBitIdenticalToSearch(t *testing.T) {
	for _, n := range []int{1, 5, mat.ScanBlock + 7, 1000} {
		ix, _ := randIndex(t, n, 24, uint64(n))
		rng := rand.New(rand.NewPCG(uint64(n), 0xba7c))
		qs := make([]mat.Vec, 6)
		for j := range qs {
			q := make(mat.Vec, 24)
			for i := range q {
				q[i] = float32(rng.NormFloat64())
			}
			qs[j] = q
		}
		for _, p := range []ann.Params{{}, {Int8: true}} {
			batch := ix.SearchBatch(qs, 9, p)
			for j, q := range qs {
				want := ix.Search(q, 9, p)
				got := batch[j]
				if len(got) != len(want) {
					t.Fatalf("n=%d int8=%v query %d: %d results, want %d", n, p.Int8, j, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i].ID || math.Float32bits(got[i].Score) != math.Float32bits(want[i].Score) {
						t.Fatalf("n=%d int8=%v query %d rank %d: %v vs %v", n, p.Int8, j, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSearchBatchEmpty covers the degenerate shapes.
func TestSearchBatchEmpty(t *testing.T) {
	ix := New(4)
	if got := ix.SearchBatch(nil, 5, ann.Params{}); len(got) != 0 {
		t.Fatalf("nil queries: %v", got)
	}
	q := mat.Vec{1, 0, 0, 0}
	got := ix.SearchBatch([]mat.Vec{q, q}, 5, ann.Params{})
	if len(got) != 2 || got[0] != nil || got[1] != nil {
		t.Fatalf("empty index: %v", got)
	}
}
