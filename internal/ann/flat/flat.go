// Package flat implements the exact brute-force index: every query scans
// every stored vector. It is the BF variant of Table V — highest accuracy,
// latency linear in collection size — and the recall oracle the other
// indexes are tested against.
package flat

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/mat"
)

// Index is an exact inner-product index.
type Index struct {
	dim  int
	ids  []int64
	data []float32 // row-major, len = len(ids)*dim
}

var _ ann.Index = (*Index)(nil)

// New returns an empty flat index for dim-dimensional vectors.
func New(dim int) *Index {
	if dim <= 0 {
		panic("flat: dim must be positive")
	}
	return &Index{dim: dim}
}

// Kind implements ann.Index.
func (ix *Index) Kind() string { return "flat" }

// Len implements ann.Index.
func (ix *Index) Len() int { return len(ix.ids) }

// Add implements ann.Index.
func (ix *Index) Add(id int64, v mat.Vec) error {
	if len(v) != ix.dim {
		return fmt.Errorf("flat: vector dim %d != index dim %d", len(v), ix.dim)
	}
	ix.ids = append(ix.ids, id)
	ix.data = append(ix.data, v...)
	return nil
}

// Search implements ann.Index with a full scan. The scan runs through the
// blocked mat.ScoreRows kernel over the contiguous row-major storage with a
// pooled score buffer and top-k heap, so steady-state searches allocate
// only the returned result slice.
func (ix *Index) Search(q mat.Vec, k int, _ ann.Params) []mat.Scored {
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	if len(q) != ix.dim {
		panic(fmt.Sprintf("flat: query dim %d != index dim %d", len(q), ix.dim))
	}
	top := mat.GetTopK(k)
	defer mat.PutTopK(top)
	scratch := mat.GetScratch(mat.ScanBlock)
	defer scratch.Release()
	// Threshold gate: once the heap is full, a score strictly below the
	// lowest retained score loses whatever its ID tie-break, so the Push
	// call is skipped without changing the retained set. Equal scores
	// still go through Push (the ascending-ID tie-break may admit them).
	thr := top.Threshold()
	for start := 0; start < len(ix.ids); start += mat.ScanBlock {
		end := start + mat.ScanBlock
		if end > len(ix.ids) {
			end = len(ix.ids)
		}
		scores := mat.ScoreRows(scratch.Buf[:end-start], q, ix.data[start*ix.dim:end*ix.dim], ix.dim)
		for i, s := range scores {
			if s < thr {
				continue
			}
			top.Push(ix.ids[start+i], s)
			thr = top.Threshold()
		}
	}
	return top.Sorted()
}

// Memory implements ann.Index.
func (ix *Index) Memory() int64 {
	return int64(len(ix.data))*4 + int64(len(ix.ids))*8
}

// Vector returns the stored vector at position i (aliasing internal
// storage); used by refinement stages and tests.
func (ix *Index) Vector(i int) mat.Vec {
	return ix.data[i*ix.dim : (i+1)*ix.dim]
}
