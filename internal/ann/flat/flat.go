// Package flat implements the exact brute-force index: every query scans
// every stored vector. It is the BF variant of Table V — highest accuracy,
// latency linear in collection size — and the recall oracle the other
// indexes are tested against.
//
// Two optional fast paths ride on the same storage. Params.Int8 scans the
// int8 sidecar (quant.Int8Block, dim+4 bytes per row against the 4·dim of
// float32) into an over-fetched shortlist and re-scores the shortlist
// exactly, trading a planner-gated sliver of recall for a ~4× smaller
// stage-1 memory sweep. SearchBatch answers Q queries with ONE cache-blocked
// pass over the rows (mat.ScoreRowsBatch) instead of Q passes — on scans
// that exceed the last-level cache, the memory sweep is the whole cost, so
// batching approaches a Q-fold saving.
package flat

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/mat"
	"repro/internal/quant"
)

// Index is an exact inner-product index.
type Index struct {
	dim  int
	ids  []int64
	data []float32 // row-major, len = len(ids)*dim
	i8   *quant.Int8Block
}

var _ ann.Index = (*Index)(nil)

// New returns an empty flat index for dim-dimensional vectors.
func New(dim int) *Index {
	if dim <= 0 {
		panic("flat: dim must be positive")
	}
	return &Index{dim: dim, i8: quant.NewInt8Block(dim)}
}

// Kind implements ann.Index.
func (ix *Index) Kind() string { return "flat" }

// Len implements ann.Index.
func (ix *Index) Len() int { return len(ix.ids) }

// Add implements ann.Index. The int8 sidecar is maintained eagerly so that
// snapshot reloads (which replay Add) and live inserts stay consistent
// without any rebuild step.
func (ix *Index) Add(id int64, v mat.Vec) error {
	if len(v) != ix.dim {
		return fmt.Errorf("flat: vector dim %d != index dim %d", len(v), ix.dim)
	}
	ix.ids = append(ix.ids, id)
	ix.data = append(ix.data, v...)
	ix.i8.Append(v)
	return nil
}

// int8Shortlist is the over-fetch rule for the int8 stage-1 scan: keep 2k
// candidates, at least 32, before the exact re-score. The floor protects
// small k, where quantization near-ties are proportionally most
// dangerous. 2k (rather than a wider net) matters for latency as much as
// recall: past the quantizer's ~1/254 relative error the extra
// candidates are never near the top-k boundary, while the shortlist heap
// and the exact re-score scale linearly with the over-fetch — at 4k they
// cost more than the int8 sweep saves.
func int8Shortlist(k int) int {
	if s := k * 2; s > 32 {
		return s
	}
	return 32
}

// Search implements ann.Index with a full scan. The scan runs through the
// blocked mat.ScoreRows kernel over the contiguous row-major storage with a
// pooled score buffer and top-k heap, so steady-state searches allocate
// only the returned result slice. With p.Int8 the stage-1 sweep runs over
// the int8 sidecar instead, and the shortlist is re-scored exactly — the
// returned scores are always exact float32 inner products.
func (ix *Index) Search(q mat.Vec, k int, p ann.Params) []mat.Scored {
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	if len(q) != ix.dim {
		panic(fmt.Sprintf("flat: query dim %d != index dim %d", len(q), ix.dim))
	}
	if p.Int8 && !p.Exhaustive {
		return ix.searchInt8(q, k)
	}
	top := mat.GetTopK(k)
	defer mat.PutTopK(top)
	scratch := mat.GetScratch(mat.ScanBlock)
	defer scratch.Release()
	// Threshold gate: once the heap is full, a score strictly below the
	// lowest retained score loses whatever its ID tie-break, so the Push
	// call is skipped without changing the retained set. Equal scores
	// still go through Push (the ascending-ID tie-break may admit them).
	thr := top.Threshold()
	for start := 0; start < len(ix.ids); start += mat.ScanBlock {
		end := start + mat.ScanBlock
		if end > len(ix.ids) {
			end = len(ix.ids)
		}
		scores := mat.ScoreRows(scratch.Buf[:end-start], q, ix.data[start*ix.dim:end*ix.dim], ix.dim)
		for i, s := range scores {
			if s < thr {
				continue
			}
			top.Push(ix.ids[start+i], s)
			thr = top.Threshold()
		}
	}
	return top.Sorted()
}

// searchInt8 is the quantized stage-1 scan: int8 sweep → shortlist →
// exact re-score. The shortlist heap ranks ROW positions by int8 score;
// only the final, exactly re-scored results carry entity IDs.
func (ix *Index) searchInt8(q mat.Vec, k int) []mat.Scored {
	qCode := make([]int8, ix.dim)
	qScale := quant.QuantizeInt8Into(qCode, q)
	top := mat.GetTopK(int8Shortlist(k))
	defer mat.PutTopK(top)
	scratch := mat.GetScratch(mat.ScanBlock)
	defer scratch.Release()
	thr := top.Threshold()
	for start := 0; start < len(ix.ids); start += mat.ScanBlock {
		end := start + mat.ScanBlock
		if end > len(ix.ids) {
			end = len(ix.ids)
		}
		scores := ix.i8.ScoreRowsInt8(scratch.Buf[:end-start], qScale, qCode, start, end)
		for i, s := range scores {
			if s < thr {
				continue
			}
			top.Push(int64(start+i), s)
			thr = top.Threshold()
		}
	}
	short := top.Sorted()
	out := make([]mat.Scored, 0, len(short))
	for _, s := range short {
		r := int(s.ID)
		out = append(out, mat.Scored{ID: ix.ids[r], Score: mat.Dot(q, ix.Vector(r))})
	}
	mat.SortScoredDesc(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SearchBatch answers len(qs) queries in one cache-blocked sweep over the
// stored rows via mat.ScoreRowsBatch: every ScanBlock chunk of rows is
// scored by ALL queries while cache-resident, so Q queries pay for one
// memory pass instead of Q. Results are bit-identical to calling Search
// per query (the batch kernel preserves the canonical reduction order and
// the per-query threshold gates are independent).
//
// With p.Int8 each query takes the quantized path independently — the int8
// sidecar is ~4× smaller than the float32 rows, so its sweep is rarely
// memory-bound and batching would buy little.
func (ix *Index) SearchBatch(qs []mat.Vec, k int, p ann.Params) [][]mat.Scored {
	out := make([][]mat.Scored, len(qs))
	if len(qs) == 0 || k <= 0 || len(ix.ids) == 0 {
		return out
	}
	for j, q := range qs {
		if len(q) != ix.dim {
			panic(fmt.Sprintf("flat: batch query %d dim %d != index dim %d", j, len(q), ix.dim))
		}
	}
	if p.Int8 && !p.Exhaustive {
		for j, q := range qs {
			out[j] = ix.searchInt8(q, k)
		}
		return out
	}
	tops := make([]*mat.TopK, len(qs))
	thrs := make([]float32, len(qs))
	for j := range qs {
		tops[j] = mat.GetTopK(k)
		thrs[j] = tops[j].Threshold()
	}
	defer func() {
		for _, t := range tops {
			mat.PutTopK(t)
		}
	}()
	scratch := mat.GetScratch(len(qs) * mat.ScanBlock)
	defer scratch.Release()
	dsts := make([][]float32, len(qs))
	for start := 0; start < len(ix.ids); start += mat.ScanBlock {
		end := start + mat.ScanBlock
		if end > len(ix.ids) {
			end = len(ix.ids)
		}
		n := end - start
		for j := range dsts {
			off := j * mat.ScanBlock
			dsts[j] = scratch.Buf[off : off+n : off+mat.ScanBlock]
		}
		mat.ScoreRowsBatch(dsts, qs, ix.data[start*ix.dim:end*ix.dim], ix.dim)
		for j := range qs {
			for i, s := range dsts[j] {
				if s < thrs[j] {
					continue
				}
				tops[j].Push(ix.ids[start+i], s)
				thrs[j] = tops[j].Threshold()
			}
		}
	}
	for j := range qs {
		out[j] = tops[j].Sorted()
	}
	return out
}

// Memory implements ann.Index.
func (ix *Index) Memory() int64 {
	return int64(len(ix.data))*4 + int64(len(ix.ids))*8 + int64(ix.i8.Memory())
}

// Vector returns the stored vector at position i (aliasing internal
// storage); used by refinement stages and tests.
func (ix *Index) Vector(i int) mat.Vec {
	return ix.data[i*ix.dim : (i+1)*ix.dim]
}
