package hnsw

import (
	"testing"

	"repro/internal/ann"
	"repro/internal/mat"
)

const dim = 16

func filled(t *testing.T, n int, cfg Config) *Index {
	t.Helper()
	h := New(dim, cfg)
	for i := 0; i < n; i++ {
		if err := h.Add(int64(i+1), mat.UnitGaussianVec(dim, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestLevelDistributionGeometric(t *testing.T) {
	// Levels must decay roughly geometrically: level-0 nodes dominate and
	// counts shrink by ~M per level.
	h := filled(t, 2000, Config{M: 16, Seed: 3})
	counts := map[int]int{}
	for i := range h.nodes {
		counts[h.nodes[i].level]++
	}
	if counts[0] < 1700 {
		t.Fatalf("level-0 should dominate: %v", counts)
	}
	if counts[1] == 0 {
		t.Fatalf("expected some level-1 nodes: %v", counts)
	}
	if counts[1] > counts[0]/4 {
		t.Fatalf("level-1 too populous: %v", counts)
	}
}

func TestDegreeBounds(t *testing.T) {
	h := filled(t, 800, Config{M: 8, EfConstruction: 60, Seed: 4})
	for i := range h.nodes {
		for l, links := range h.nodes[i].links {
			maxD := h.maxDegree(l)
			if len(links) > maxD {
				t.Fatalf("node %d level %d degree %d exceeds bound %d", i, l, len(links), maxD)
			}
			for _, nb := range links {
				if nb == int32(i) {
					t.Fatalf("node %d links to itself", i)
				}
			}
		}
	}
}

func TestGroundLayerReachability(t *testing.T) {
	// Every node must be reachable from the entry point on level 0 —
	// otherwise it can never be returned by a search.
	h := filled(t, 600, Config{M: 12, EfConstruction: 80, Seed: 5})
	visited := make([]bool, len(h.nodes))
	stack := []int32{h.entry}
	visited[h.entry] = true
	reached := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range h.linksAt(cur, 0) {
			if !visited[nb] {
				visited[nb] = true
				reached++
				stack = append(stack, nb)
			}
		}
	}
	// Directed reachability; allow a tiny number of stragglers.
	if reached < len(h.nodes)*98/100 {
		t.Fatalf("only %d/%d nodes reachable on the ground layer", reached, len(h.nodes))
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := filled(t, 300, Config{M: 8, Seed: 6})
	b := filled(t, 300, Config{M: 8, Seed: 6})
	q := mat.UnitGaussianVec(dim, 12345)
	ra := a.Search(q, 10, ann.Params{Ef: 64})
	rb := b.Search(q, 10, ann.Params{Ef: 64})
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("rank %d differs: %d vs %d", i, ra[i].ID, rb[i].ID)
		}
	}
}

func TestEfImprovesRecall(t *testing.T) {
	h := filled(t, 1500, Config{M: 8, EfConstruction: 40, Seed: 7})
	exact := func(q mat.Vec, k int) map[int64]bool {
		out := map[int64]bool{}
		for _, s := range h.Search(q, k, ann.Params{Exhaustive: true}) {
			out[s.ID] = true
		}
		return out
	}
	recall := func(ef int) float64 {
		var total float64
		const queries = 10
		for i := 0; i < queries; i++ {
			q := mat.UnitGaussianVec(dim, uint64(9000+i))
			want := exact(q, 10)
			hit := 0
			for _, s := range h.Search(q, 10, ann.Params{Ef: ef}) {
				if want[s.ID] {
					hit++
				}
			}
			total += float64(hit) / float64(len(want))
		}
		return total / queries
	}
	lo, hi := recall(10), recall(200)
	if hi < lo {
		t.Fatalf("recall must not degrade with ef: lo=%v hi=%v", lo, hi)
	}
	if hi < 0.9 {
		t.Fatalf("high-ef recall too low: %v", hi)
	}
}

func TestSearchAfterSingleInsert(t *testing.T) {
	h := New(dim, Config{})
	v := mat.UnitGaussianVec(dim, 1)
	if err := h.Add(7, v); err != nil {
		t.Fatal(err)
	}
	res := h.Search(v, 3, ann.Params{})
	if len(res) != 1 || res[0].ID != 7 {
		t.Fatalf("res = %v", res)
	}
}
