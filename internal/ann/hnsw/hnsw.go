// Package hnsw implements a hierarchical navigable small-world graph index,
// the graph-based variant of Table V. Construction inserts each vector at a
// geometrically sampled level, connecting it to its M best neighbours found
// by a beam search (efConstruction); queries greedily descend the hierarchy
// and run a beam search (efSearch) on the ground layer.
//
// Similarity is the inner product over unit vectors, so "nearest" means
// highest dot product throughout.
//
// Vectors live in one contiguous row-major arena (not one allocation per
// node), so neighbour expansion walks packed rows and the exhaustive
// fallback is a blocked mat.ScoreRows scan. Per-search scratch — the
// epoch-stamped visited set, the frontier, the candidate list — comes from
// a pool, so steady-state searches allocate only their result slice.
package hnsw

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/ann"
	"repro/internal/mat"
)

// Config shapes the graph.
type Config struct {
	// M is the per-node out-degree target above level 0 (level 0 allows
	// 2M). Zero defaults to 16.
	M int
	// EfConstruction is the construction beam width; zero defaults
	// to 100.
	EfConstruction int
	// Seed drives level sampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 100
	}
	return c
}

type node struct {
	id    int64
	level int
	// links[l] lists neighbour node indices at level l.
	links [][]int32
}

// Index is an HNSW graph.
type Index struct {
	dim   int
	cfg   Config
	mL    float64
	rng   *rand.Rand
	nodes []node
	vecs  []float32 // row-major vector arena, row i belongs to nodes[i]
	byID  map[int64]int32
	entry int32 // index of the top entry point, -1 when empty
	maxL  int

	ctxPool sync.Pool // *searchCtx
}

var _ ann.Index = (*Index)(nil)

// New returns an empty index for dim-dimensional vectors.
func New(dim int, cfg Config) *Index {
	if dim <= 0 {
		panic("hnsw: dim must be positive")
	}
	cfg = cfg.withDefaults()
	return &Index{
		dim: dim,
		cfg: cfg,
		mL:  1 / math.Log(float64(cfg.M)),
		//lovo:nondeterministic-ok PCG seeded purely from cfg.Seed: level draws are a deterministic function of config, identical on every replica
		rng:   rand.New(rand.NewPCG(cfg.Seed^0x4e57, cfg.Seed^0x5357)),
		byID:  make(map[int64]int32),
		entry: -1,
	}
}

// Kind implements ann.Index.
func (h *Index) Kind() string { return "hnsw" }

// Len implements ann.Index.
func (h *Index) Len() int { return len(h.nodes) }

// vecAt returns node i's vector, aliasing the arena.
func (h *Index) vecAt(i int32) mat.Vec {
	off := int(i) * h.dim
	return h.vecs[off : off+h.dim : off+h.dim]
}

func (h *Index) maxDegree(level int) int {
	if level == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// searchCtx is the reusable per-search scratch: an epoch-stamped visited
// set (one counter bump invalidates the whole array — no clearing, no
// per-search map), the exploration frontier, and the candidate buffer.
type searchCtx struct {
	visited []uint32
	epoch   uint32
	front   []cand
	cands   []cand
}

// nextEpoch invalidates the visited set by advancing the stamp; on the
// (rare) counter wrap the stale array is cleared so old stamps cannot read
// as visited.
func (c *searchCtx) nextEpoch() {
	c.epoch++
	if c.epoch == 0 {
		for i := range c.visited {
			c.visited[i] = 0
		}
		c.epoch = 1
	}
}

// getCtx checks a search context out of the pool, sized to the current
// node count.
func (h *Index) getCtx() *searchCtx {
	c, _ := h.ctxPool.Get().(*searchCtx)
	if c == nil {
		c = &searchCtx{}
	}
	if len(c.visited) < len(h.nodes) {
		c.visited = make([]uint32, len(h.nodes)+len(h.nodes)/2+8)
		c.epoch = 0
	}
	c.nextEpoch()
	return c
}

func (h *Index) putCtx(c *searchCtx) { h.ctxPool.Put(c) }

// Add implements ann.Index.
func (h *Index) Add(id int64, v mat.Vec) error {
	if len(v) != h.dim {
		return fmt.Errorf("hnsw: vector dim %d != %d", len(v), h.dim)
	}
	if _, dup := h.byID[id]; dup {
		return fmt.Errorf("hnsw: duplicate id %d", id)
	}
	level := int(math.Floor(-math.Log(1-h.rng.Float64()) * h.mL))
	n := node{id: id, level: level, links: make([][]int32, level+1)}
	idx := int32(len(h.nodes))
	h.nodes = append(h.nodes, n)
	h.vecs = append(h.vecs, v...)
	h.byID[id] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxL = level
		return nil
	}

	q := h.vecAt(idx)
	ep := h.entry
	// Greedy descent through levels above the insertion level.
	for l := h.maxL; l > level; l-- {
		ep = h.greedyClosest(q, ep, l)
	}
	// Beam search and connect on each level from min(level, maxL) down.
	startL := level
	if startL > h.maxL {
		startL = h.maxL
	}
	ctx := h.getCtx()
	for l := startL; l >= 0; l-- {
		cands := h.searchLayer(q, ep, h.cfg.EfConstruction, l, ctx)
		m := h.maxDegree(l)
		selected := h.selectNeighbors(cands, m)
		for _, s := range selected {
			h.link(idx, s, l)
			h.link(s, idx, l)
			h.prune(s, l)
		}
		if len(cands) > 0 {
			ep = cands[0].idx
		}
		ctx.nextEpoch() // next layer starts with a fresh visited set
	}
	h.putCtx(ctx)
	if level > h.maxL {
		h.maxL = level
		h.entry = idx
	}
	return nil
}

type cand struct {
	idx int32
	sim float32
}

// greedyClosest walks level l greedily toward the query.
func (h *Index) greedyClosest(q mat.Vec, ep int32, l int) int32 {
	best := ep
	bestSim := mat.Dot(q, h.vecAt(ep))
	for {
		improved := false
		for _, nb := range h.linksAt(best, l) {
			if s := mat.Dot(q, h.vecAt(nb)); s > bestSim {
				best, bestSim = nb, s
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

func (h *Index) linksAt(idx int32, l int) []int32 {
	n := &h.nodes[idx]
	if l > n.level {
		return nil
	}
	return n.links[l]
}

// searchLayer runs a beam search of width ef on level l starting from ep,
// returning candidates in descending similarity order. The returned slice
// aliases ctx and is valid until the context's next use.
func (h *Index) searchLayer(q mat.Vec, ep int32, ef, l int, ctx *searchCtx) []cand {
	ctx.visited[ep] = ctx.epoch
	epSim := mat.Dot(q, h.vecAt(ep))
	// frontier: max-first exploration queue; result: bounded best set.
	frontier := append(ctx.front[:0], cand{ep, epSim})
	result := mat.GetTopK(ef)
	defer mat.PutTopK(result)
	result.Push(int64(ep), epSim)

	for len(frontier) > 0 {
		// Pop the most similar frontier element.
		bi := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i].sim > frontier[bi].sim {
				bi = i
			}
		}
		cur := frontier[bi]
		frontier[bi] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		if cur.sim < result.Threshold() && result.Len() >= ef {
			break
		}
		for _, nb := range h.linksAt(cur.idx, l) {
			if ctx.visited[nb] == ctx.epoch {
				continue
			}
			ctx.visited[nb] = ctx.epoch
			s := mat.Dot(q, h.vecAt(nb))
			if s > result.Threshold() || result.Len() < ef {
				result.Push(int64(nb), s)
				frontier = append(frontier, cand{nb, s})
			}
		}
	}
	ctx.front = frontier[:0]
	sorted := result.Sorted()
	out := ctx.cands[:0]
	for _, s := range sorted {
		out = append(out, cand{int32(s.ID), s.Score})
	}
	ctx.cands = out
	return out
}

// selectNeighbors applies the diversity heuristic: a candidate is kept only
// if it is closer to the query point than to any already-selected
// neighbour, which keeps edges spread across directions.
func (h *Index) selectNeighbors(cands []cand, m int) []int32 {
	var selected []int32
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		ok := true
		cv := h.vecAt(c.idx)
		for _, s := range selected {
			if mat.Dot(cv, h.vecAt(s)) > c.sim {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, c.idx)
		}
	}
	// Fill remaining slots with the best rejected candidates.
	if len(selected) < m {
		chosen := make(map[int32]bool, len(selected))
		for _, s := range selected {
			chosen[s] = true
		}
		for _, c := range cands {
			if len(selected) >= m {
				break
			}
			if !chosen[c.idx] {
				selected = append(selected, c.idx)
			}
		}
	}
	return selected
}

func (h *Index) link(from, to int32, l int) {
	if from == to {
		return
	}
	n := &h.nodes[from]
	if l > n.level {
		return
	}
	for _, nb := range n.links[l] {
		if nb == to {
			return
		}
	}
	n.links[l] = append(n.links[l], to)
}

// prune trims a node's adjacency to the degree bound, keeping the most
// similar neighbours.
func (h *Index) prune(idx int32, l int) {
	n := &h.nodes[idx]
	if l > n.level {
		return
	}
	maxD := h.maxDegree(l)
	if len(n.links[l]) <= maxD {
		return
	}
	top := mat.GetTopK(maxD)
	defer mat.PutTopK(top)
	nv := h.vecAt(idx)
	for _, nb := range n.links[l] {
		top.Push(int64(nb), mat.Dot(nv, h.vecAt(nb)))
	}
	kept := top.Sorted()
	n.links[l] = n.links[l][:0]
	for _, k := range kept {
		n.links[l] = append(n.links[l], int32(k.ID))
	}
}

// Search implements ann.Index.
func (h *Index) Search(q mat.Vec, k int, p ann.Params) []mat.Scored {
	if k <= 0 || len(h.nodes) == 0 {
		return nil
	}
	if p.Exhaustive {
		top := mat.GetTopK(k)
		defer mat.PutTopK(top)
		scratch := mat.GetScratch(mat.ScanBlock)
		defer scratch.Release()
		for start := 0; start < len(h.nodes); start += mat.ScanBlock {
			end := start + mat.ScanBlock
			if end > len(h.nodes) {
				end = len(h.nodes)
			}
			scores := mat.ScoreRows(scratch.Buf[:end-start], q, h.vecs[start*h.dim:end*h.dim], h.dim)
			for i, s := range scores {
				top.Push(h.nodes[start+i].id, s)
			}
		}
		return top.Sorted()
	}
	ef := p.Ef
	if ef <= 0 {
		ef = 64
	}
	if ef < k {
		ef = k
	}
	ep := h.entry
	for l := h.maxL; l > 0; l-- {
		ep = h.greedyClosest(q, ep, l)
	}
	ctx := h.getCtx()
	defer h.putCtx(ctx)
	cands := h.searchLayer(q, ep, ef, 0, ctx)
	out := make([]mat.Scored, 0, min(k, len(cands)))
	for i := 0; i < len(cands) && i < k; i++ {
		out = append(out, mat.Scored{ID: h.nodes[cands[i].idx].id, Score: cands[i].sim})
	}
	return out
}

// Memory implements ann.Index.
func (h *Index) Memory() int64 {
	b := int64(len(h.vecs)) * 4
	for i := range h.nodes {
		b += 8
		for _, l := range h.nodes[i].links {
			b += int64(len(l)) * 4
		}
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
