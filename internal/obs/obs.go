// Package obs is the query-tracing spine: a per-query tree of timed spans
// recorded through a context-carried handle, built so the disabled path is
// free. A Span is a two-word value (trace pointer + index); when no trace
// rides the context every operation on the zero Span is a nil check and
// Start returns the context unchanged — no allocation, no time syscall, no
// lock. Layers therefore thread spans unconditionally and only pay when a
// caller opted in by attaching a Trace.
//
// Spans live in one flat, append-only slice per trace (parent links by
// index), which keeps recording to a single short critical section and
// makes the tree trivially codec-friendly: the remote worker exports its
// flat spans on the response wire and the coordinator grafts them under
// the RPC leg that issued the call, re-basing parents by offset. Span
// trees are advisory observability data — they must never influence an
// answer; the conformance pins in internal/remote run with tracing forced
// on to hold that line.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one recorded span in a trace's flat span list. Start is the
// offset from the trace's time zero and Parent indexes into the same list
// (-1 marks a root), so a slice of SpanData is self-contained: it can
// cross the RPC wire and be re-rooted on the far side with index
// arithmetic alone.
type SpanData struct {
	Name   string
	Detail string
	Parent int32
	Start  time.Duration
	Dur    time.Duration
}

// Trace collects the spans of one query. All methods are safe for
// concurrent use; scatter legs record in parallel.
type Trace struct {
	id uint64
	t0 time.Time

	mu    sync.Mutex
	spans []SpanData
}

// NewTrace starts an empty trace identified by id (use NewID on the query
// origin; remote workers reuse the coordinator's id for correlation).
func NewTrace(id uint64) *Trace {
	return &Trace{id: id, t0: time.Now()}
}

// ID returns the trace identifier.
func (t *Trace) ID() uint64 { return t.id }

// Export snapshots the recorded spans. The copy is detached: callers may
// hold it while the trace keeps recording.
func (t *Trace) Export() []SpanData {
	t.mu.Lock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// start appends an open span and returns its handle.
func (t *Trace) start(name string, parent int32) Span {
	off := time.Since(t.t0)
	t.mu.Lock()
	i := int32(len(t.spans))
	t.spans = append(t.spans, SpanData{Name: name, Parent: parent, Start: off})
	t.mu.Unlock()
	return Span{t: t, i: i}
}

// Root opens a top-level span (no parent). The typical query has exactly
// one, opened by the serving tier; sibling roots are legal.
func (t *Trace) Root(name string) Span { return t.start(name, -1) }

// Span is a handle to one span of a trace — a value, copied freely. The
// zero Span is the disabled recorder: every method no-ops.
type Span struct {
	t *Trace
	i int32
}

// On reports whether the span records anywhere. Guard any work done only
// to build a Detail string:
//
//	if sp.On() { sp.Detail(fmt.Sprintf("shard=%d", i)) }
func (s Span) On() bool { return s.t != nil }

// TraceID returns the owning trace's id, or zero for the disabled span —
// which doubles as the wire encoding: a zero trace id on a request means
// "untraced, send no spans back".
func (s Span) TraceID() uint64 {
	if s.t == nil {
		return 0
	}
	return s.t.id
}

// End closes the span, fixing its duration. Ending twice keeps the later
// duration; ending the zero Span is a no-op.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.t0)
	s.t.mu.Lock()
	sp := &s.t.spans[s.i]
	sp.Dur = now - sp.Start
	s.t.mu.Unlock()
}

// Detail attaches a free-form annotation (overwriting any previous one).
func (s Span) Detail(d string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.i].Detail = d
	s.t.mu.Unlock()
}

// Child opens a sub-span without touching a context — the scatter loops
// use it where the parent handle is already at hand.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.start(name, s.i)
}

// Graft splices an exported span forest (typically a remote worker's)
// under this span: worker roots become children of s, non-root parents
// shift by the insertion offset, and start offsets re-anchor at this
// span's start — the worker's clock is not ours, so its subtree is pinned
// to the moment the RPC leg began, which bounds it from below. Grafting
// onto the zero Span discards the spans.
func (s Span) Graft(spans []SpanData) {
	if s.t == nil || len(spans) == 0 {
		return
	}
	t := s.t
	t.mu.Lock()
	base := int32(len(t.spans))
	anchor := t.spans[s.i].Start
	for _, sp := range spans {
		if sp.Parent < 0 {
			sp.Parent = s.i
		} else {
			sp.Parent += base
		}
		sp.Start += anchor
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// spanKey carries the current Span through a context. An empty struct key
// makes the disabled-path Value lookup allocation-free.
type spanKey struct{}

// With returns a context carrying s as the current span. Attaching the
// zero Span returns ctx unchanged, so the disabled path never allocates.
func With(ctx context.Context, s Span) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the current span, or the zero Span when the context
// carries no trace.
func FromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanKey{}).(Span)
	return s
}

// Start opens a child of the context's current span and returns a context
// carrying it. With no trace in ctx it returns (ctx, Span{}) untouched —
// the hot-path contract: zero allocations, zero clock reads.
func Start(ctx context.Context, name string) (context.Context, Span) {
	cur := FromContext(ctx)
	if cur.t == nil {
		return ctx, Span{}
	}
	sp := cur.Child(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// idBase seeds trace ids from the kernel RNG once so ids from restarted
// processes don't collide; successive ids increment atomically. NewID
// never returns zero — zero is the wire's "untraced" sentinel.
var idBase = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15 // fixed odd base; ids stay unique in-process
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var idSeq atomic.Uint64

// NewID returns a fresh nonzero trace id.
func NewID() uint64 {
	for {
		id := idBase + idSeq.Add(1)
		if id != 0 {
			return id
		}
	}
}

// Node is one vertex of the nested span tree Tree assembles from a flat
// export — the shape the serving tier serialises for debug=true.
type Node struct {
	Name     string
	Detail   string
	Start    time.Duration
	Dur      time.Duration
	Children []*Node
}

// Tree nests a flat span list by parent index, preserving recording order
// among siblings. Spans with out-of-range parents are treated as roots
// rather than dropped — a defensive stance for wire-supplied data.
func Tree(spans []SpanData) []*Node {
	nodes := make([]*Node, len(spans))
	for i, sp := range spans {
		nodes[i] = &Node{Name: sp.Name, Detail: sp.Detail, Start: sp.Start, Dur: sp.Dur}
	}
	var roots []*Node
	for i, sp := range spans {
		if sp.Parent >= 0 && int(sp.Parent) < len(spans) && int(sp.Parent) != i {
			p := nodes[sp.Parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}
