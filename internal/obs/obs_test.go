package obs

import (
	"context"
	"testing"
	"time"
)

// TestTreeStructure pins the flat-slice representation: spans nest by
// parent index, siblings keep recording order, and End fixes durations.
func TestTreeStructure(t *testing.T) {
	tr := NewTrace(NewID())
	root := tr.Root("query")
	_, s1 := Start(With(context.Background(), root), "stage1")
	a := s1.Child("stage1.shard")
	a.Detail("shard=0")
	a.End()
	b := s1.Child("stage1.shard")
	b.Detail("shard=1")
	b.End()
	s1.End()
	rr := root.Child("rerank")
	rr.End()
	root.End()

	roots := Tree(tr.Export())
	if len(roots) != 1 || roots[0].Name != "query" {
		t.Fatalf("want one root 'query', got %+v", roots)
	}
	q := roots[0]
	if len(q.Children) != 2 || q.Children[0].Name != "stage1" || q.Children[1].Name != "rerank" {
		t.Fatalf("root children = %+v", q.Children)
	}
	st := q.Children[0]
	if len(st.Children) != 2 {
		t.Fatalf("stage1 children = %+v", st.Children)
	}
	if st.Children[0].Detail != "shard=0" || st.Children[1].Detail != "shard=1" {
		t.Fatalf("sibling order lost: %+v", st.Children)
	}
	if q.Dur <= 0 {
		t.Fatalf("root duration not fixed: %v", q.Dur)
	}
}

// TestGraftRebases pins the wire splice: a worker's exported forest lands
// under the leg span, with parents shifted and starts re-anchored at the
// leg's own start offset.
func TestGraftRebases(t *testing.T) {
	worker := NewTrace(42)
	wroot := worker.Root("worker.stage1")
	enc := wroot.Child("encode")
	enc.End()
	wroot.End()
	exported := worker.Export()

	coord := NewTrace(NewID())
	croot := coord.Root("query")
	time.Sleep(time.Millisecond) // leg starts measurably after the root
	leg := croot.Child("stage1.shard")
	leg.Graft(exported)
	leg.End()
	croot.End()

	roots := Tree(coord.Export())
	if len(roots) != 1 {
		t.Fatalf("want one root, got %d", len(roots))
	}
	legN := roots[0].Children[0]
	if legN.Name != "stage1.shard" || len(legN.Children) != 1 {
		t.Fatalf("leg = %+v", legN)
	}
	wn := legN.Children[0]
	if wn.Name != "worker.stage1" || len(wn.Children) != 1 || wn.Children[0].Name != "encode" {
		t.Fatalf("grafted subtree = %+v", wn)
	}
	// Re-anchoring: the worker root's offset was 0 in its own trace, so
	// after the graft it must equal the leg's start, which is > 0 here.
	if legN.Start <= 0 || wn.Start < legN.Start {
		t.Fatalf("graft not re-anchored: leg start %v, worker start %v", legN.Start, wn.Start)
	}
}

// TestTreeDefensive pins the wire-facing stance: forged parent indices
// (out of range, self-referential) become roots instead of dropping spans
// or looping.
func TestTreeDefensive(t *testing.T) {
	spans := []SpanData{
		{Name: "a", Parent: 99},
		{Name: "b", Parent: 1}, // self
		{Name: "c", Parent: -7},
	}
	roots := Tree(spans)
	if len(roots) != 3 {
		t.Fatalf("defensive roots = %d, want 3", len(roots))
	}
}

// TestDisabledPathAllocationFree is the tentpole's gate: with no trace on
// the context, the entire span surface — Start, End, Detail, Child, With,
// FromContext, Graft — must do zero allocations, so tracing can thread
// through every layer unconditionally.
func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "stage1")
		if c != ctx {
			t.Fatal("untraced Start must return ctx unchanged")
		}
		sp.Detail("never recorded")
		child := sp.Child("x")
		child.End()
		sp.Graft(nil)
		sp.End()
		_ = With(ctx, sp)
		_ = FromContext(ctx)
		if sp.On() || sp.TraceID() != 0 {
			t.Fatal("zero span must report disabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op", allocs)
	}
}

// TestNewIDNeverZero pins the wire sentinel: zero means untraced, so ids
// must never be zero.
func TestNewIDNeverZero(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if NewID() == 0 {
			t.Fatal("NewID returned the untraced sentinel")
		}
	}
}

// BenchmarkStartDisabled measures the untraced hot path the query layers
// pay on every call when tracing is off.
func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage1")
		sp.End()
	}
}

// BenchmarkStartEnabled measures the traced path for the README's overhead
// numbers: one child span recorded per op.
func BenchmarkStartEnabled(b *testing.B) {
	tr := NewTrace(1)
	root := tr.Root("query")
	ctx := With(context.Background(), root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage1")
		sp.End()
		if i%1024 == 0 { // keep the slice from growing unboundedly
			tr.mu.Lock()
			tr.spans = tr.spans[:1]
			tr.mu.Unlock()
		}
	}
}
