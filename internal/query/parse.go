// Package query parses the natural-language object queries of the paper's
// workload (Tables II and VI) into structured vocabulary terms.
//
// The parser is deliberately rule-based: lower-case tokenisation, greedy
// longest-phrase matching against the vocabulary ("side by side" before
// "side"), synonym folding, and stop-word skipping. Terms are grouped by
// role so downstream encoders can honour the paper's design: the fast-search
// text encoder keeps subject, attribute and context terms but drops
// relations (Section VI-A), while the cross-modality rerank sees every term
// as its own token.
package query

import (
	"strings"

	"repro/internal/vocab"
)

// Parsed is a structured query.
type Parsed struct {
	// Raw is the original query string.
	Raw string
	// Terms lists every matched term in first-occurrence order without
	// duplicates.
	Terms []vocab.Term
	// Subject holds class terms ("car", "suv", "woman").
	Subject []vocab.Term
	// Attrs holds colour/size/clothing modifiers of the subject.
	Attrs []vocab.Term
	// Context holds scene terms ("road", "intersection").
	Context []vocab.Term
	// Relations holds spatial-relation and behaviour terms; these demand
	// cross-modality reasoning and are excluded from the fast vector.
	Relations []vocab.Term
}

// Complexity grades a query the way the motivation experiment does
// (Fig. 2): Simple is a bare predefined class, Normal adds novel attribute
// features, Complex involves open-world classes or spatial relationships.
type Complexity int

const (
	// Simple queries name only predefined classes.
	Simple Complexity = iota
	// Normal queries add attribute or context features to known classes.
	Normal
	// Complex queries use open-world classes, relations or behaviours.
	Complex
)

// String returns the grade name.
func (c Complexity) String() string {
	switch c {
	case Simple:
		return "simple"
	case Normal:
		return "normal"
	default:
		return "complex"
	}
}

var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "in": true, "on": true, "of": true,
	"with": true, "and": true, "is": true, "at": true, "to": true,
	"another": true, "other": true, "both": true, "does": true, "do": true,
	"its": true, "it": true, "while": true, "wearing": true, "body": true,
	"colored": true, "her": true, "his": true, "positioned": true,
}

// Parse analyses a query string. Unknown tokens are ignored; an empty query
// yields an empty Parsed.
func Parse(raw string) Parsed {
	p := Parsed{Raw: raw}
	tokens := tokenize(raw)
	seen := make(map[string]bool)

	add := func(t vocab.Term) {
		if seen[t.Name] {
			return
		}
		seen[t.Name] = true
		p.Terms = append(p.Terms, t)
		switch t.Kind {
		case vocab.KindClass:
			p.Subject = append(p.Subject, t)
		case vocab.KindColor, vocab.KindSize, vocab.KindClothing:
			p.Attrs = append(p.Attrs, t)
		case vocab.KindContext:
			p.Context = append(p.Context, t)
		case vocab.KindRelation, vocab.KindBehavior:
			p.Relations = append(p.Relations, t)
		}
	}

	phrases := vocab.Phrases()
	for i := 0; i < len(tokens); {
		matched := false
		// Greedy longest-phrase match at position i. Phrases() is
		// sorted longest-first, so the first hit is maximal.
		for _, ph := range phrases {
			words := strings.Split(ph, " ")
			if i+len(words) > len(tokens) {
				continue
			}
			ok := true
			for j, w := range words {
				if tokens[i+j] != w {
					ok = false
					break
				}
			}
			if ok {
				if t, found := vocab.Lookup(ph); found {
					add(t)
					i += len(words)
					matched = true
					break
				}
			}
		}
		if matched {
			continue
		}
		if !stopwords[tokens[i]] {
			if t, found := vocab.Lookup(tokens[i]); found {
				add(t)
			}
		}
		i++
	}
	return p
}

// tokenize lower-cases the input and splits on whitespace, trimming
// punctuation but keeping in-word hyphens ("yellow-green", "t-shirt").
func tokenize(s string) []string {
	s = strings.ToLower(s)
	fields := strings.Fields(s)
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.Trim(f, ".,!?;:\"'()[]")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Grade classifies the parsed query for the motivation experiment.
func (p Parsed) Grade() Complexity {
	for _, t := range p.Subject {
		if !t.COCO {
			return Complex
		}
	}
	if len(p.Relations) > 0 {
		// Pure behaviours on known classes grade Normal; spatial
		// relations grade Complex.
		for _, t := range p.Relations {
			if t.Kind == vocab.KindRelation {
				return Complex
			}
		}
		if len(p.Attrs) > 0 || len(p.Context) > 0 {
			return Normal
		}
	}
	if len(p.Attrs) > 0 || len(p.Context) > 0 {
		return Normal
	}
	return Simple
}

// FastTerms returns the terms that enter the single fast-search embedding:
// subject, attributes and context, but never relations or behaviours —
// mirroring the paper's decision to omit "intricate relationships" from the
// preliminary retrieval vector.
func (p Parsed) FastTerms() []vocab.Term {
	out := make([]vocab.Term, 0, len(p.Subject)+len(p.Attrs)+len(p.Context))
	out = append(out, p.Subject...)
	out = append(out, p.Attrs...)
	out = append(out, p.Context...)
	return out
}

// HasTermOutside reports whether the query uses any term not in allowed;
// closed-vocabulary baselines use this to detect unsupported queries.
func (p Parsed) HasTermOutside(allowed map[string]bool) bool {
	for _, t := range p.Terms {
		if !allowed[t.Name] {
			return true
		}
	}
	return false
}
