package query

import (
	"strings"
	"testing"

	"repro/internal/vocab"
)

func names(ts []vocab.Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func hasName(ts []vocab.Term, name string) bool {
	for _, t := range ts {
		if t.Name == name {
			return true
		}
	}
	return false
}

func TestParseSimple(t *testing.T) {
	p := Parse("car")
	if len(p.Subject) != 1 || p.Subject[0].Name != "car" {
		t.Fatalf("subject = %v", names(p.Subject))
	}
	if p.Grade() != Simple {
		t.Fatalf("grade = %v want simple", p.Grade())
	}
}

func TestParseNormal(t *testing.T) {
	p := Parse("red car in road")
	if !hasName(p.Subject, "car") || !hasName(p.Attrs, "red") || !hasName(p.Context, "road") {
		t.Fatalf("parsed %+v", p)
	}
	if p.Grade() != Normal {
		t.Fatalf("grade = %v want normal", p.Grade())
	}
}

func TestParseComplexRelation(t *testing.T) {
	p := Parse("A red car side by side with another car, both positioned in the center of the road.")
	if !hasName(p.Relations, "side by side") {
		t.Fatalf("missing side by side: %v", names(p.Relations))
	}
	if !hasName(p.Relations, "center of the road") {
		t.Fatalf("missing center of the road: %v", names(p.Relations))
	}
	if p.Grade() != Complex {
		t.Fatalf("grade = %v want complex", p.Grade())
	}
}

func TestParseComplexOpenWorldClass(t *testing.T) {
	p := Parse("A black SUV driving in the intersection of the road")
	if !hasName(p.Subject, "suv") {
		t.Fatalf("missing suv: %v", names(p.Subject))
	}
	if !hasName(p.Relations, "driving") || !hasName(p.Context, "intersection") {
		t.Fatalf("parsed %+v", p)
	}
	if p.Grade() != Complex {
		t.Fatalf("grade = %v want complex (open-world class)", p.Grade())
	}
}

func TestParseAllTableIIQueries(t *testing.T) {
	queries := []string{
		"A person walking on the street.",
		"A person in light-colored clothing walking while holding a dark bag.",
		"A person riding a bicycle.",
		"A person riding a bicycle, wearing a black t-shirt and blue jeans.",
		"A red car driving in the center of the road.",
		"A red car side by side with another car, both positioned in the center of the road.",
		"A bus driving on the road.",
		"A bus driving on the road with white roof and yellow-green body.",
		"A woman smiling sitting inside car.",
		"A red-hair woman with white dress sitting inside a car.",
		"A white dog inside a car.",
		"A white dog inside a car, next to a woman wearing black clothes.",
		"A green bus driving on the road.",
		"A green bus with the white roof driving on the road.",
		"A truck driving on the road.",
		"A small white truck filled with cargo driving on the road.",
	}
	for _, q := range queries {
		p := Parse(q)
		if len(p.Subject) == 0 {
			t.Errorf("query %q parsed with no subject: %+v", q, p)
		}
		if len(p.Terms) < 2 {
			t.Errorf("query %q too sparse: %v", q, names(p.Terms))
		}
	}
}

func TestParseSpecificGroupings(t *testing.T) {
	p := Parse("A person in light-colored clothing walking while holding a dark bag.")
	if !hasName(p.Attrs, "light") || !hasName(p.Attrs, "clothing") || !hasName(p.Attrs, "dark") {
		t.Fatalf("attrs = %v", names(p.Attrs))
	}
	if !hasName(p.Subject, "bag") || !hasName(p.Subject, "person") {
		t.Fatalf("subject = %v", names(p.Subject))
	}
	if !hasName(p.Relations, "walking") || !hasName(p.Relations, "holding") {
		t.Fatalf("relations = %v", names(p.Relations))
	}
}

func TestParseDeduplicates(t *testing.T) {
	p := Parse("car car red red car")
	if len(p.Subject) != 1 || len(p.Attrs) != 1 {
		t.Fatalf("dedup failed: %+v", p)
	}
}

func TestParseEmptyAndUnknown(t *testing.T) {
	p := Parse("")
	if len(p.Terms) != 0 {
		t.Fatalf("empty parse: %v", names(p.Terms))
	}
	p = Parse("quantum flux capacitor")
	if len(p.Terms) != 0 {
		t.Fatalf("unknown words must be ignored: %v", names(p.Terms))
	}
}

func TestFastTermsExcludeRelations(t *testing.T) {
	p := Parse("a person in black suit, walking on the road")
	ft := FastNames(p)
	for _, n := range ft {
		if n == "walking" {
			t.Fatal("fast terms must not contain behaviours")
		}
	}
	want := map[string]bool{"person": true, "black": true, "suit": true, "road": true}
	if len(ft) != len(want) {
		t.Fatalf("fast terms = %v", ft)
	}
	for _, n := range ft {
		if !want[n] {
			t.Fatalf("unexpected fast term %q", n)
		}
	}
}

// FastNames is a test helper that extracts names from FastTerms.
func FastNames(p Parsed) []string { return names(p.FastTerms()) }

func TestHasTermOutside(t *testing.T) {
	p := Parse("red car")
	allowed := map[string]bool{"car": true}
	if !p.HasTermOutside(allowed) {
		t.Fatal("red is outside allowed vocab")
	}
	allowed["red"] = true
	if p.HasTermOutside(allowed) {
		t.Fatal("all terms allowed now")
	}
}

func TestGradeBehaviorWithAttrsIsNormal(t *testing.T) {
	p := Parse("A person walking on the street.")
	if p.Grade() != Normal {
		t.Fatalf("grade = %v want normal", p.Grade())
	}
}

func TestComplexityString(t *testing.T) {
	if Simple.String() != "simple" || Normal.String() != "normal" || Complex.String() != "complex" {
		t.Fatal("complexity names")
	}
}

func TestTokenizePunctuation(t *testing.T) {
	p := Parse("“car”, (bus)! truck?")
	if len(p.Subject) < 2 { // curly quotes are not trimmed ASCII, but bus/truck must parse
		t.Fatalf("subject = %v", names(p.Subject))
	}
}

func TestParseActivityNetQueries(t *testing.T) {
	cases := map[string][]string{
		"does the car park on the meadow":                   {"car", "parked", "meadow"},
		"is the person with a hat a man":                    {"person", "hat", "man"},
		"is the person in the red life jacket outdoors":     {"person", "red", "life jacket", "outdoors"},
		"is the person in a grey skirt dancing in the room": {"person", "grey", "skirt", "dancing", "room"},
	}
	for q, want := range cases {
		p := Parse(q)
		got := map[string]bool{}
		for _, tm := range p.Terms {
			got[tm.Name] = true
		}
		for _, w := range want {
			if !got[w] {
				t.Errorf("%q: missing term %q (got %v)", q, w, names(p.Terms))
			}
		}
	}
}

func TestParsePreservesFirstSubjectOrder(t *testing.T) {
	// The primary subject (first class term) drives head-noun anchoring;
	// parse order must keep it first.
	p := Parse("A white dog inside a car, next to a woman wearing black clothes.")
	if len(p.Subject) == 0 || p.Subject[0].Name != "dog" {
		t.Fatalf("first subject = %v", names(p.Subject))
	}
	p = Parse("A red car side by side with another car")
	if p.Subject[0].Name != "car" {
		t.Fatalf("first subject = %v", names(p.Subject))
	}
}

func TestGradeOpenWorldWithoutRelations(t *testing.T) {
	if Parse("a suv").Grade() != Complex {
		t.Fatal("bare open-world class is complex")
	}
	if Parse("a black suv").Grade() != Complex {
		t.Fatal("open-world class with attrs is complex")
	}
}

// --- Edge cases: degenerate and adversarial inputs ---

func TestParseEmptyVariants(t *testing.T) {
	for _, q := range []string{"", "   ", "\t\n  \n"} {
		p := Parse(q)
		if len(p.Terms) != 0 || len(p.Subject) != 0 || len(p.Relations) != 0 {
			t.Errorf("empty-ish query %q parsed to %+v", q, p)
		}
		if p.Grade() != Simple {
			t.Errorf("empty query %q grades %v", q, p.Grade())
		}
	}
}

func TestParsePunctuationOnly(t *testing.T) {
	for _, q := range []string{"?!.,;:", "... --- !!!", "()[]\"'", ", . , ."} {
		p := Parse(q)
		if len(p.Terms) != 0 {
			t.Errorf("punctuation-only query %q parsed terms %v", q, names(p.Terms))
		}
	}
}

func TestParseVeryLongSentence(t *testing.T) {
	// A sentence hundreds of tokens long must parse without blowup and
	// dedup to the same terms as one occurrence.
	unit := "A red car driving in the center of the road, side by side with another car. "
	long := strings.Repeat(unit, 200)
	p := Parse(long)
	want := Parse(unit)
	if len(p.Terms) != len(want.Terms) {
		t.Fatalf("long sentence terms %v != single occurrence %v", names(p.Terms), names(want.Terms))
	}
	for i, tm := range p.Terms {
		if tm.Name != want.Terms[i].Name {
			t.Fatalf("term %d: %q != %q", i, tm.Name, want.Terms[i].Name)
		}
	}
	if p.Grade() != want.Grade() {
		t.Fatalf("long sentence grade %v != %v", p.Grade(), want.Grade())
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	variants := []string{
		"A RED CAR DRIVING IN THE CENTER OF THE ROAD.",
		"a red car driving in the center of the road.",
		"A Red Car Driving In The Center Of The Road.",
		"a ReD cAr DrIvInG iN tHe CeNtEr Of ThE rOaD.",
	}
	want := Parse(variants[1])
	if len(want.Terms) == 0 {
		t.Fatal("baseline parse empty")
	}
	for _, q := range variants {
		p := Parse(q)
		if len(p.Terms) != len(want.Terms) {
			t.Fatalf("%q: terms %v, want %v", q, names(p.Terms), names(want.Terms))
		}
		for i, tm := range p.Terms {
			if tm.Name != want.Terms[i].Name {
				t.Fatalf("%q: term %d is %q, want %q", q, i, tm.Name, want.Terms[i].Name)
			}
		}
		if p.Grade() != want.Grade() {
			t.Fatalf("%q: grade %v, want %v", q, p.Grade(), want.Grade())
		}
	}
	// Multi-word phrases must match across cases too.
	if !hasName(Parse("SIDE BY SIDE cars").Relations, "side by side") {
		t.Fatal("upper-case phrase must match the vocabulary")
	}
}

func TestParseHyphenAndTrailingPunctuation(t *testing.T) {
	// In-word hyphens survive tokenisation; wrapping punctuation is
	// trimmed even when stacked.
	p := Parse("((a light-colored truck!!)).")
	if !hasName(p.Subject, "truck") {
		t.Fatalf("subject = %v", names(p.Subject))
	}
	if !hasName(p.Attrs, "light") {
		t.Fatalf("attrs = %v", names(p.Attrs))
	}
}
