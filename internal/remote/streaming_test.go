package remote_test

// Streaming conformance: the acceptance pin for continuous ingest. A
// sharded, replicated engine running entirely over the RPC transport in
// streaming mode — videos arriving one at a time, background seals and
// compactions in flight — must answer exact searches byte-identically to a
// monolithic batch core.System holding the same corpus. Checked BEFORE any
// maintenance has run (first videos still in the growing segment), DURING
// (mid-stream, seals/compactions racing the queries), and AFTER a full
// quiesce. Exact search scans growing, building and sealed segments
// uniformly, so segment layout must never leak into an answer.

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/vectordb"
)

func TestStreamingRemoteMatchesBatchMonolith(t *testing.T) {
	const seed = 7
	// QVHighlights generates 15 distinct clips so both shards own videos
	// and the tiny seal threshold forces several seals plus compactions.
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	streamCfg := core.Config{Seed: seed, Streaming: true, SegmentSize: 150}
	eng, _ := remoteEngine(t, 2, 2, streamCfg, remote.ClientOptions{})

	queries := ds.Queries
	if testing.Short() {
		queries = queries[:2]
	}
	// batchReference builds a fresh monolithic batch system over exactly
	// the first n videos — the ground truth for each checkpoint.
	batchReference := func(n int) *core.System {
		sys, err := core.New(core.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := sys.Ingest(&ds.Videos[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	checkpoints := []struct {
		name string
		upto int
	}{
		{"before-seals", 1}, // one video: still inside the growing segments
		{"during-maintenance", 2 * len(ds.Videos) / 3},
		{"after-quiesce", len(ds.Videos)},
	}
	ingested := 0
	for i, cp := range checkpoints {
		t.Run(cp.name, func(t *testing.T) {
			for ; ingested < cp.upto; ingested++ {
				if err := eng.Ingest(&ds.Videos[ingested]); err != nil {
					t.Fatal(err)
				}
			}
			if i == len(checkpoints)-1 {
				// The last checkpoint additionally waits for background
				// maintenance to drain, pinning the post-quiesce state.
				if err := eng.BuildIndex(); err != nil {
					t.Fatal(err)
				}
			}
			ref := batchReference(cp.upto)
			if got, want := eng.Entities(), ref.Entities(); got != want {
				t.Fatalf("streaming entities = %d, batch = %d", got, want)
			}
			for _, q := range queries {
				for _, opts := range []core.QueryOptions{
					{Exhaustive: true},
					{Exhaustive: true, FastK: 40, TopN: 5},
				} {
					want, err := ref.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s batch: %v", q.ID, err)
					}
					got, err := eng.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s streaming: %v", q.ID, err)
					}
					if !reflect.DeepEqual(got.Objects, want.Objects) {
						t.Errorf("%s opts %+v: streaming remote diverges from batch monolith\n got: %+v\nwant: %+v",
							q.ID, opts, got.Objects, want.Objects)
					}
				}
			}
		})
	}

	// The segment breakdown travels the RPC boundary: one growing segment
	// per shard (the primary replica speaks for its group), and the tiny
	// threshold must have forced seals on both shards.
	st, ok := eng.SegmentStats()
	if !ok || !st.Streaming {
		t.Fatalf("streaming remote engine must report segment stats, got ok=%v %+v", ok, st)
	}
	if st.Growing != 2 {
		t.Errorf("growing segments = %d, want one per shard (2)", st.Growing)
	}
	if st.Seals == 0 || st.SealedVectors == 0 {
		t.Errorf("threshold %d must force seals, got %+v", streamCfg.SegmentSize, st)
	}
}

// TestBatchRemoteReportsNoSegments pins the negative: a batch fleet answers
// the segment-stats RPC with Streaming=false and the engine reports ok=false.
func TestBatchRemoteReportsNoSegments(t *testing.T) {
	eng, _ := remoteEngine(t, 2, 1, core.Config{Seed: 7}, remote.ClientOptions{})
	if st, ok := eng.SegmentStats(); ok || st.Streaming {
		t.Fatalf("batch remote engine must not report segment stats, got ok=%v %+v", ok, st)
	}
}

// TestDuplicateIngestSentinelSurvivesWire: a duplicate live ingest on a
// remote worker must still satisfy errors.Is(err, vectordb.ErrDuplicate)
// on the coordinator — the serving tier maps it to 409 Conflict, which
// only works if the sentinel survives the RPC boundary.
func TestDuplicateIngestSentinelSurvivesWire(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 7, Scale: 0.04})
	eng, _ := remoteEngine(t, 2, 1, core.Config{Seed: 7, Streaming: true}, remote.ClientOptions{})
	if err := eng.Ingest(&ds.Videos[0]); err != nil {
		t.Fatal(err)
	}
	err := eng.Ingest(&ds.Videos[0])
	if err == nil {
		t.Fatal("duplicate ingest must error")
	}
	if !errors.Is(err, vectordb.ErrDuplicate) {
		t.Fatalf("duplicate ingest error lost its sentinel over the wire: %v", err)
	}
}
