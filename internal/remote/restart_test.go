package remote_test

// Restart-detection suite: workers boot empty, so a worker that crashes and
// comes back is NOT safe to serve from — it would answer every stage call
// with zero hits and the coordinator would return merges silently missing
// that shard's slice of the corpus. The engine detects the restart two
// independent ways (the server boot nonce changes; the mutation generation
// regresses to zero after recorded progress), fails Built() so the serving
// tier refuses queries, reports the backend unhealthy with a state-lost
// error, and recovers via a snapshot restore.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/shard"
)

func freshLocal(t *testing.T, cfg core.Config) *shard.Local {
	t.Helper()
	l, err := shard.NewLocal(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRestartedEmptyWorkerDetected(t *testing.T) {
	const seed = 43
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, hosts := remoteEngine(t, 3, 1, cfg, remote.ClientOptions{})
	ingestAll(t, eng, ds)

	// Learn the healthy baseline: boot nonces, generations, reference
	// answers, and a snapshot for the recovery step.
	for _, st := range eng.BackendStats() {
		if !st.Healthy {
			t.Fatalf("healthy engine reports %+v", st)
		}
	}
	genBefore := eng.IngestGen()
	if genBefore == 0 {
		t.Fatal("ingested engine must have a nonzero generation")
	}
	var snap bytes.Buffer
	if err := eng.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	queries := ds.Queries[:3]
	want := make([]*core.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	if !eng.Built() {
		t.Fatal("healthy engine must report built")
	}

	// Detector 1: the boot nonce. Restart worker 1 empty; the next health
	// probe sees a new server instance behind recorded progress.
	hosts[1].restart(freshLocal(t, cfg))
	st := eng.BackendStats()
	if st[1].Healthy {
		t.Fatal("restarted-empty worker must report unhealthy")
	}
	if !strings.Contains(st[1].Error, "state lost") {
		t.Fatalf("backend error should say state lost, got %q", st[1].Error)
	}
	if eng.Built() {
		t.Fatal("engine with a state-lost shard must not report built — serving would return partial merges")
	}

	// Detector 2: generation regression. Restart worker 2 empty; the next
	// IngestGen observes gen 0 after recorded progress — no health probe
	// needed, the per-query cache lookup path catches it.
	hosts[2].restart(freshLocal(t, cfg))
	eng.IngestGen()
	st = eng.BackendStats()
	if st[2].Healthy {
		t.Fatal("generation regression must mark the worker state-lost")
	}

	// Recovery: restart the remaining worker empty too, restore the
	// snapshot through the engine (segments travel over RPC), and the
	// marks clear — answers come back byte-identical.
	hosts[0].restart(freshLocal(t, cfg))
	if err := eng.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !eng.Built() {
		t.Fatal("restored engine must report built")
	}
	for _, st := range eng.BackendStats() {
		if !st.Healthy {
			t.Fatalf("restored engine reports %+v", st)
		}
	}
	for i, q := range queries {
		got, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want[i].Objects) {
			t.Fatalf("%s: restored engine diverges from pre-crash answers", q.ID)
		}
	}
}
