package remote

// Codec round-trip property tests: for every wire message, decode(encode(x))
// must reproduce x exactly (scores compared by bit pattern — the conformance
// guarantee is bit-identity, not approximate equality), and re-encoding the
// decoded value must reproduce the original bytes. Truncating an encoding at
// ANY byte boundary must produce an error, never a panic and never a
// silently-short value.

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// edgeFloats are the score/box extremes the fuzzers mix in: zero, negative
// zero, infinities, denormals, and the largest finite values.
var edgeFloats64 = []float64{0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1),
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64}

var edgeFloats32 = []float32{0, float32(math.Copysign(0, -1)), 1, -1,
	float32(math.Inf(1)), float32(math.Inf(-1)), math.MaxFloat32, math.SmallestNonzeroFloat32}

func randF64(rng *rand.Rand) float64 {
	if rng.Intn(4) == 0 {
		return edgeFloats64[rng.Intn(len(edgeFloats64))]
	}
	return rng.NormFloat64()
}

func randF32(rng *rand.Rand) float32 {
	if rng.Intn(4) == 0 {
		return edgeFloats32[rng.Intn(len(edgeFloats32))]
	}
	return float32(rng.NormFloat64())
}

func randObject(rng *rand.Rand) core.ResultObject {
	return core.ResultObject{
		VideoID:  rng.Intn(core.MaxVideoID + 1),
		FrameIdx: rng.Intn(core.MaxFrameIdx + 1),
		Box:      video.Box{X: randF64(rng), Y: randF64(rng), W: randF64(rng), H: randF64(rng)},
		Score:    randF32(rng),
		PatchID:  rng.Int63(),
	}
}

func randObjects(rng *rand.Rand, maxLen int) []core.ResultObject {
	n := rng.Intn(maxLen + 1)
	if n == 0 {
		return nil
	}
	objs := make([]core.ResultObject, n)
	for i := range objs {
		objs[i] = randObject(rng)
	}
	return objs
}

// roundTrip encodes with fill, decodes with read, and checks value equality
// plus byte-level re-encode equality.
func roundTrip[T any](t *testing.T, name string, v T, fill func(*enc, T), read func(*dec) T) {
	t.Helper()
	e := &enc{}
	fill(e, v)
	d := &dec{b: e.b}
	got := read(d)
	if err := d.finish(); err != nil {
		t.Fatalf("%s: decode(%+v): %v", name, v, err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("%s: round trip diverged\n got: %+v\nwant: %+v", name, got, v)
	}
	e2 := &enc{}
	fill(e2, got)
	if string(e2.b) != string(e.b) {
		t.Fatalf("%s: re-encode of decoded value produced different bytes", name)
	}
	// Every strict prefix must fail to decode — a truncated frame can
	// never pass for a whole one.
	for cut := 0; cut < len(e.b); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: decode of %d/%d-byte truncation panicked: %v", name, cut, len(e.b), r)
				}
			}()
			td := &dec{b: e.b[:cut]}
			read(td)
			if err := td.finish(); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded without error", name, cut, len(e.b))
			}
		}()
	}
}

func TestPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []core.PlanKind{"", core.PlanFixed, core.PlanPinned, core.PlanAdaptive, core.PlanAdaptiveExact}
	cases := []core.Plan{
		{}, // all zero
		{Exact: true, FastK: 1 << 30, ShardK: -1, RerankFrames: math.MaxInt32, TopN: -7,
			Kind: core.PlanAdaptiveExact, PredictedRecall: 1},
	}
	for i := 0; i < 100; i++ {
		cases = append(cases, core.Plan{
			Exact:           rng.Intn(2) == 0,
			FastK:           rng.Intn(1 << 16),
			ShardK:          rng.Intn(1 << 16),
			NProbe:          rng.Intn(1 << 8),
			Ef:              rng.Intn(1 << 10),
			RerankFrames:    rng.Intn(1 << 10),
			TopN:            rng.Intn(1 << 10),
			SkipRerank:      rng.Intn(2) == 0,
			Kind:            kinds[rng.Intn(len(kinds))],
			PredictedRecall: randF64(rng),
		})
	}
	for _, c := range cases {
		roundTrip(t, "plan", c, appendPlan, readPlan)
	}
}

func TestPlanStatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []core.PlanStats{
		{}, // empty shard: no sample, no terms, no rungs
		{Entities: math.MaxInt32, Dim: 1, SampleEvery: 1 << 20,
			Sample:     []float32{math.MaxFloat32},
			Terms:      []core.TermCount{{Name: strings.Repeat("t", 1<<10), Objects: -1, Frames: math.MaxInt32}},
			Rungs:      []core.Rung{{NProbe: 64, MinRecall: 1, MeanRecall: 1}},
			Calibrated: true, Margin: 0.25},
	}
	for i := 0; i < 60; i++ {
		st := core.PlanStats{
			Entities:    rng.Intn(1 << 24),
			Dim:         rng.Intn(64) + 1,
			SampleEvery: 1 << rng.Intn(10),
			Calibrated:  rng.Intn(2) == 0,
			Margin:      randF64(rng),
		}
		for j := rng.Intn(20); j > 0; j-- {
			st.Sample = append(st.Sample, randF32(rng))
		}
		for j := rng.Intn(6); j > 0; j-- {
			st.Terms = append(st.Terms, core.TermCount{
				Name: strings.Repeat("x", rng.Intn(12)), Objects: rng.Intn(1 << 20), Frames: rng.Intn(1 << 20)})
		}
		for j := rng.Intn(7); j > 0; j-- {
			st.Rungs = append(st.Rungs, core.Rung{
				NProbe: rng.Intn(64), Ef: rng.Intn(256), MinRecall: rng.Float64(), MeanRecall: rng.Float64()})
		}
		cases = append(cases, st)
	}
	for _, c := range cases {
		roundTrip(t, "plan-stats", c, appendPlanStats, readPlanStats)
	}
}

func TestObjectsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Zero-length and max-field-width values first, then fuzz.
	cases := [][]core.ResultObject{
		nil,
		{{}},
		{{
			VideoID:  core.MaxVideoID,
			FrameIdx: core.MaxFrameIdx,
			Box:      video.Box{X: math.MaxFloat64, Y: -math.MaxFloat64, W: math.Inf(1), H: math.SmallestNonzeroFloat64},
			Score:    math.MaxFloat32,
			PatchID:  core.PackPatchID(core.MaxVideoID, core.MaxFrameIdx, core.MaxPatch),
		}},
	}
	for i := 0; i < 100; i++ {
		cases = append(cases, randObjects(rng, 20))
	}
	for _, c := range cases {
		roundTrip(t, "objects", c, appendObjects, readObjects)
	}
}

func TestRefsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]core.FrameRef{
		nil,
		{{VideoID: core.MaxVideoID, FrameIdx: core.MaxFrameIdx, PatchID: math.MaxInt64}},
	}
	for i := 0; i < 100; i++ {
		n := rng.Intn(10)
		var refs []core.FrameRef
		for j := 0; j < n; j++ {
			refs = append(refs, core.FrameRef{
				VideoID: rng.Intn(core.MaxVideoID + 1), FrameIdx: rng.Intn(core.MaxFrameIdx + 1), PatchID: rng.Int63(),
			})
		}
		cases = append(cases, refs)
	}
	for _, c := range cases {
		roundTrip(t, "refs", c, appendRefs, readRefs)
	}
}

func TestGroundingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := [][]core.Grounding{
		nil,
		{{}}, // a grounding with no objects, Grounds=false
	}
	for i := 0; i < 60; i++ {
		n := rng.Intn(8)
		var gs []core.Grounding
		for j := 0; j < n; j++ {
			gs = append(gs, core.Grounding{
				Ref:     core.FrameRef{VideoID: rng.Intn(1 << 16), FrameIdx: rng.Intn(1 << 20), PatchID: rng.Int63()},
				Objects: randObjects(rng, 5),
				Best:    randF32(rng),
				Grounds: rng.Intn(2) == 0,
			})
		}
		cases = append(cases, gs)
	}
	for _, c := range cases {
		roundTrip(t, "groundings", c, appendGroundings, readGroundings)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []core.IngestStats{
		{},
		{Videos: math.MaxInt32, Frames: 1, Keyframes: 2, Tokens: 3,
			Processing: time.Duration(math.MaxInt64), Indexing: -1},
	}
	for i := 0; i < 50; i++ {
		cases = append(cases, core.IngestStats{
			Videos: rng.Intn(1 << 20), Frames: rng.Intn(1 << 24), Keyframes: rng.Intn(1 << 20),
			Tokens: rng.Intn(1 << 28), Processing: time.Duration(rng.Int63()), Indexing: time.Duration(rng.Int63()),
		})
	}
	for _, c := range cases {
		roundTrip(t, "stats", c, appendStats, readStats)
	}
}

func TestReplicaStatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := [][]ReplicaStat{
		nil,
		{{Healthy: true, Reads: math.MaxUint64, Inflight: math.MinInt64}},
	}
	for i := 0; i < 50; i++ {
		n := rng.Intn(6)
		var sts []ReplicaStat
		for j := 0; j < n; j++ {
			sts = append(sts, ReplicaStat{Healthy: rng.Intn(2) == 0, Reads: rng.Uint64(), Inflight: rng.Int63() - (1 << 62)})
		}
		cases = append(cases, sts)
	}
	for _, c := range cases {
		roundTrip(t, "replica-stats", c, appendReplicaStats, readReplicaStats)
	}
}

func TestConfigSummaryRoundTrip(t *testing.T) {
	cases := []ConfigSummary{
		{}, // zero, empty index string
		{Dim: 64, ProjDim: 32, Seed: math.MaxUint64, Index: "imi", FastK: 100, TopN: 10, RerankFrames: 16, Replicas: 3},
		{Index: strings.Repeat("x", 1<<12)}, // max-field-width string
		{Index: "flat", Streaming: true},    // streaming with default threshold
		{Index: "imi", Streaming: true, SegmentSize: 4096, Replicas: 2},
		{SegmentSize: math.MaxInt32}, // threshold without streaming still travels
	}
	for _, c := range cases {
		roundTrip(t, "config-summary", c, appendConfigSummary, readConfigSummary)
	}
}

func TestSegmentStatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []vectordb.SegmentStats{
		{}, // zero: a batch worker answering "not streaming"
		{Streaming: true, Sealed: 12, Building: 2, Growing: 1, GrowingLen: 511,
			SealedVectors: 49152, RawBytes: 1 << 40, IndexBytes: 1 << 38,
			Seals: math.MaxUint64, Compactions: 7},
	}
	for i := 0; i < 50; i++ {
		cases = append(cases, vectordb.SegmentStats{
			Streaming:     rng.Intn(2) == 0,
			Sealed:        rng.Intn(1 << 16),
			Building:      rng.Intn(1 << 8),
			Growing:       rng.Intn(1 << 8),
			GrowingLen:    rng.Intn(1 << 20),
			SealedVectors: rng.Intn(1 << 24),
			RawBytes:      rng.Int63(),
			IndexBytes:    rng.Int63(),
			Seals:         rng.Uint64(),
			Compactions:   rng.Uint64(),
		})
	}
	for _, c := range cases {
		roundTrip(t, "segment-stats", c, appendSegmentStats, readSegmentStats)
	}
}

// TestDecoderRejectsForgedCounts: a list count claiming more elements than
// the payload could possibly hold must fail fast without allocating a
// giant slice.
func TestDecoderRejectsForgedCounts(t *testing.T) {
	e := &enc{}
	e.u32(math.MaxUint32) // count: ~4 billion objects in a 4-byte payload
	d := &dec{b: e.b}
	if objs := readObjects(d); objs != nil {
		t.Fatalf("forged count decoded to %d objects", len(objs))
	}
	if err := d.finish(); err == nil {
		t.Fatal("forged count must error")
	}
	// Same for byte strings.
	e = &enc{}
	e.u32(1 << 30)
	d = &dec{b: e.b}
	if b := d.bytesv(); b != nil {
		t.Fatalf("forged byte length decoded to %d bytes", len(b))
	}
	if err := d.finish(); err == nil {
		t.Fatal("forged byte length must error")
	}
}

// TestDecoderRejectsTrailingGarbage: a payload with unconsumed bytes after
// a complete value is corrupt, not "close enough".
func TestDecoderRejectsTrailingGarbage(t *testing.T) {
	e := &enc{}
	appendPlan(e, core.Plan{FastK: 3})
	e.u8(0xAB)
	d := &dec{b: e.b}
	readPlan(d)
	if err := d.finish(); err == nil {
		t.Fatal("trailing bytes must error")
	}
}
