package remote_test

// Chaos suite: a seeded-RNG backend wrapper randomly delays, errors, or
// hangs each query-stage call of each worker. The invariant under test is
// all-or-nothing answering: a coordinator query under chaos either fails
// cleanly or returns the exact healthy-engine answer — never a partial
// merge (a hit list missing a shard, a grounding list missing candidates).
// Run with -race: the second test layers concurrent ingest on top.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/shard"
)

// chaosBackend wraps a ShardBackend, perturbing the two query stages with
// seeded randomness. Ingest/build/snapshot pass through untouched so the
// corpus itself stays deterministic — chaos tests the read path's
// all-or-nothing merge, not corpus divergence.
type chaosBackend struct {
	remote.ShardBackend
	mu  sync.Mutex
	rng *rand.Rand
	// pErr, pHang, pDelay are cumulative probabilities per stage call.
	pErr, pHang, pDelay float64
	hang, delay         time.Duration
	calls, errs, hangs  int
}

// The chaos mix: per stage call, 10% injected error, 6% hang past the
// client deadline, 30% small delay. Roughly half of all queries survive
// untouched or via retries — enough successes to prove answers stay exact,
// enough failures to prove they stay clean.
const (
	chaosPErr   = 0.10
	chaosPHang  = 0.06
	chaosPDelay = 0.30
)

func newChaosBackend(b remote.ShardBackend, seed int64) *chaosBackend {
	return &chaosBackend{
		ShardBackend: b,
		rng:          rand.New(rand.NewSource(seed)),
		pErr:         chaosPErr,
		pHang:        chaosPHang,
		pDelay:       chaosPDelay,
		hang:         4 * time.Second, // well past the client deadline
		delay:        2 * time.Millisecond,
	}
}

// perturb rolls the dice for one call: error, hang past the client
// deadline, small delay, or nothing.
func (c *chaosBackend) perturb() error {
	c.mu.Lock()
	r := c.rng.Float64()
	c.calls++
	var mode int
	switch {
	case r < c.pErr:
		mode = 1
		c.errs++
	case r < c.pErr+c.pHang:
		mode = 2
		c.hangs++
	case r < c.pErr+c.pHang+c.pDelay:
		mode = 3
	}
	c.mu.Unlock()
	switch mode {
	case 1:
		return fmt.Errorf("chaos: injected backend error")
	case 2:
		time.Sleep(c.hang)
	case 3:
		time.Sleep(c.delay)
	}
	return nil
}

func (c *chaosBackend) FastSearch(ctx context.Context, text string, plan core.Plan) ([]core.ResultObject, error) {
	if err := c.perturb(); err != nil {
		return nil, err
	}
	return c.ShardBackend.FastSearch(ctx, text, plan)
}

func (c *chaosBackend) GroundCandidates(ctx context.Context, text string, refs []core.FrameRef, workers int) ([]core.Grounding, error) {
	if err := c.perturb(); err != nil {
		return nil, err
	}
	return c.ShardBackend.GroundCandidates(ctx, text, refs, workers)
}

// chaosEngine builds an n-shard remote engine whose workers sit behind
// chaosBackends, over real pipes with a short client deadline so hangs
// convert into transport timeouts and retries.
func chaosEngine(t *testing.T, n int, cfg core.Config, seed int64) (*shard.Engine, []*chaosBackend) {
	t.Helper()
	hosts := make([]*pipeHost, n)
	chaos := make([]*chaosBackend, n)
	backends := make([]remote.ShardBackend, n)
	for i := range hosts {
		l, err := shard.NewLocal(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		chaos[i] = newChaosBackend(l, seed+int64(i))
		hosts[i] = newPipeHost(chaos[i])
		backends[i] = remote.NewClient(fmt.Sprintf("pipe://chaos-%d", i), remote.ClientOptions{
			Dial:    hosts[i].dial,
			Timeout: time.Second,
			Retries: 2,
		})
	}
	eng, err := shard.NewWithBackends(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, chaos
}

// calm switches chaos off (for setup/teardown phases).
func calm(chaos []*chaosBackend, on bool) {
	for _, c := range chaos {
		c.mu.Lock()
		if on {
			c.pErr, c.pHang, c.pDelay = chaosPErr, chaosPHang, chaosPDelay
		} else {
			c.pErr, c.pHang, c.pDelay = 0, 0, 0
		}
		c.mu.Unlock()
	}
}

// TestChaosQueriesMatchOrFailCleanly: against a fixed corpus, every query
// that succeeds under chaos must be byte-identical to the healthy answer;
// failures must be clean errors. The seeded RNG makes the injected fault
// schedule reproducible.
func TestChaosQueriesMatchOrFailCleanly(t *testing.T) {
	const seed = 17
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, chaos := chaosEngine(t, 3, cfg, 1000)

	calm(chaos, false)
	ingestAll(t, eng, ds)
	texts := make([]string, len(ds.Queries))
	want := make(map[string][]core.ResultObject, len(texts))
	for i, q := range ds.Queries {
		texts[i] = q.Text
		res, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[q.Text] = res.Objects
	}

	calm(chaos, true)
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	succeeded, failed := 0, 0
	for round := 0; round < rounds; round++ {
		for _, text := range texts {
			res, err := eng.Query(text, core.QueryOptions{Workers: 1})
			if err != nil {
				failed++
				continue
			}
			succeeded++
			if !reflect.DeepEqual(res.Objects, want[text]) {
				t.Fatalf("chaos produced a divergent (partial?) answer for %q\n got: %+v\nwant: %+v",
					text, res.Objects, want[text])
			}
		}
	}
	if succeeded == 0 {
		t.Fatal("no query survived chaos — retries are not doing their job")
	}
	t.Logf("chaos: %d succeeded, %d failed cleanly", succeeded, failed)
}

// TestChaosAlwaysErroringShardFailsWholeQuery pins the all-or-nothing
// contract deterministically: one shard that always errors must fail every
// query outright (the other shards' partial results are discarded, never
// merged and returned).
func TestChaosAlwaysErroringShardFailsWholeQuery(t *testing.T) {
	const seed = 19
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, chaos := chaosEngine(t, 3, cfg, 2000)
	calm(chaos, false)
	ingestAll(t, eng, ds)

	chaos[1].mu.Lock()
	chaos[1].pErr = 1.0
	chaos[1].mu.Unlock()
	for _, q := range ds.Queries[:3] {
		if _, err := eng.Query(q.Text, core.QueryOptions{}); err == nil {
			t.Fatalf("%s: query must fail when a shard always errors", q.ID)
		}
	}
}

// TestChaosUnderConcurrentIngest races chaotic queries against ongoing
// ingest across the RPC boundary (run with -race). During the race, queries
// must fail cleanly or answer consistently; once ingest quiesces and chaos
// stops, the engine must answer byte-identically to an in-process engine
// that ingested the same corpus — the chaos changed nothing durable.
func TestChaosUnderConcurrentIngest(t *testing.T) {
	const seed = 23
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, chaos := chaosEngine(t, 3, cfg, 3000)

	calm(chaos, false)
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	calm(chaos, true)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := eng.Ingest(&ds.Videos[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	texts := queryTexts(ds)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// Chaotic failures are fine; crashes, races and partial
				// merges are what -race and the post-quiesce check catch.
				eng.Query(texts[(c+i)%len(texts)], core.QueryOptions{Workers: 1})
			}
		}(c)
	}
	wg.Wait()
	calm(chaos, false)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// Reference: an in-process engine over the same corpus.
	ref, err := shard.New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ref, ds)
	for _, q := range ds.Queries[:4] {
		want, err := ref.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: post-chaos engine diverges from reference", q.ID)
		}
	}
}

func queryTexts(ds *datasets.Dataset) []string {
	texts := make([]string, len(ds.Queries))
	for i, q := range ds.Queries {
		texts[i] = q.Text
	}
	return texts
}
