package remote

// Native fuzz targets for the two wire surfaces that parse
// attacker-controlled bytes with no prior trust: the frame reader (the
// first thing any connection's bytes hit) and the trace-span sidecar
// decoder (hostile worker responses must not crash or bloat the
// coordinator through its observability channel). Seeds mirror the
// property-test corpora: valid encodings from the real encoder plus the
// known hostile shapes (forged counts, truncations, oversized headers).

import (
	"bytes"
	mrand "math/rand"
	"testing"
	"time"
)

// fuzzMaxFrame keeps the fuzz executions snappy: a 1 MiB cap exercises
// every code path (chunked reads included) without megabyte allocations
// per input.
const fuzzMaxFrame = 1 << 20

func FuzzDecodeFrame(f *testing.F) {
	// Valid frames straight from the encoder, spanning both read paths
	// (≤ frameReadChunk and the chunked copy above it).
	for _, payload := range [][]byte{
		nil,
		{0x01},
		bytes.Repeat([]byte{0xAB}, 300),
		bytes.Repeat([]byte{0xCD}, frameReadChunk+17),
	} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload, fuzzMaxFrame); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hostile shapes: truncated header, truncated body, oversized and
	// absurd declared lengths.
	f.Add([]byte{0x05, 0x00})
	f.Add([]byte{0x10, 0x00, 0x00, 0x00, 0xFF})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x01, 0x00, 0x10, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), fuzzMaxFrame)
		if err != nil {
			return
		}
		if len(payload) > fuzzMaxFrame {
			t.Fatalf("readFrame returned %d bytes past the %d cap", len(payload), fuzzMaxFrame)
		}
		if len(data) < 4+len(payload) {
			t.Fatalf("readFrame conjured %d payload bytes from a %d-byte input", len(payload), len(data))
		}
		if !bytes.Equal(payload, data[4:4+len(payload)]) {
			t.Fatal("readFrame returned bytes that differ from the wire payload")
		}
		// What was read must re-encode to the exact bytes consumed:
		// write-read-write is the identity on accepted frames.
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload, fuzzMaxFrame); err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:4+len(payload)]) {
			t.Fatal("write∘read is not the identity on an accepted frame")
		}
		reread, err := readFrame(bytes.NewReader(buf.Bytes()), fuzzMaxFrame)
		if err != nil || !bytes.Equal(reread, payload) {
			t.Fatalf("round-trip mismatch: err=%v", err)
		}
	})
}

func FuzzReadSpans(f *testing.F) {
	// Valid encodings from the real encoder, mirroring the property-test
	// corpus (randSpans mixes roots and forged parent indices already).
	rng := mrand.New(mrand.NewSource(11))
	for i := 0; i < 8; i++ {
		e := &enc{}
		appendSpans(e, randSpans(rng, 12))
		f.Add(e.b)
	}
	// The known hostile shape: a header claiming more spans than the body
	// could hold (TestSpansForgedCount's corpus).
	for _, forged := range []uint32{2, 1 << 16, 1<<32 - 1} {
		e := &enc{}
		e.u32(forged)
		e.str("worker.stage1")
		e.str("")
		e.u32(0xFFFFFFFF)
		e.i64(0)
		e.i64(int64(time.Millisecond))
		f.Add(e.b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &dec{b: data}
		spans := readSpans(d)
		if err := d.finish(); err != nil {
			return
		}
		// Accepted input: every span must be accounted for by real bytes
		// (the count bound at work) and re-encode to the same payload.
		if len(data) < len(spans)*encSpanMinSize {
			t.Fatalf("%d spans decoded from %d bytes: forged count got past d.count", len(spans), len(data))
		}
		e := &enc{}
		appendSpans(e, spans)
		if !bytes.Equal(e.b, data) {
			t.Fatal("read∘write is not the identity on an accepted span payload")
		}
	})
}
