// Package remote puts the shard-stage interface the scatter-gather engine
// composes behind an RPC boundary, so shards can run on separate hosts with
// the existing HTTP tier as the coordinator.
//
// The surface is ShardBackend: the per-shard operations internal/shard's
// Engine fans out — the two query stages (FastSearch, GroundCandidates),
// ingest and index builds, stats/health introspection, and snapshot
// save/load. shard.Local implements it in-process (a replica group of R
// equal-seeded systems); Client implements it over a length-prefixed binary
// protocol on persistent connections, and Server hosts any implementation
// behind a net.Listener. Because both sides speak the exact stage functions
// core.System.Query composes, an engine whose backends are all remote
// answers byte-identically to the single-process system — the conformance
// suite in this package pins that bit for bit over in-memory pipes.
//
// Failure semantics: read operations (both query stages, stats, pings) are
// idempotent and retried a bounded number of times on transport errors;
// mutating operations (ingest, index builds, snapshot load) are dispatched
// at most once — a transport failure after the request may have left the
// client surfaces as an error instead of risking a double apply. Worker-side
// replica failover (PR 3's replica groups) composes underneath: a worker
// hosting R replicas fails over internally and only surfaces an error when
// its whole group is down.
package remote

import (
	"context"

	"repro/internal/core"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// ReplicaStat is the observable state of one replica of one shard, surfaced
// by the serving tier's /stats and /metrics. (internal/shard aliases this
// type; it lives here so remote workers can report it over the wire without
// an import cycle.)
type ReplicaStat struct {
	Healthy  bool   `json:"healthy"`
	Reads    uint64 `json:"reads"`
	Inflight int64  `json:"inflight"`
}

// ConfigSummary is the codec-friendly digest of a shard's resolved
// core.Config — the fields that must agree between a coordinator and its
// workers for answers to be well-defined. Seeded encoders mean a worker
// booted with a different seed embeds queries into a different space; the
// coordinator checks summaries at boot and fails fast on a mismatch.
type ConfigSummary struct {
	Dim          int
	ProjDim      int
	Seed         uint64
	Index        string
	FastK        int
	TopN         int
	RerankFrames int
	// Streaming and SegmentSize describe the worker's store mode. They are
	// part of Compatible: a streaming worker seals per-segment indexes whose
	// seeds derive from segment identities, so mixing store modes (or seal
	// thresholds) across a fleet would give shards differently-built
	// approximate indexes for the same corpus slice.
	Streaming   bool
	SegmentSize int
	// Replicas is the worker's replica count — informational, and
	// deliberately excluded from Compatible: replica counts may differ
	// across workers without changing any answer.
	Replicas int
}

// Summarize digests a resolved core.Config (see core.Config.Resolved).
func Summarize(cfg core.Config, replicas int) ConfigSummary {
	return ConfigSummary{
		Dim:          cfg.Dim,
		ProjDim:      cfg.ProjDim,
		Seed:         cfg.Seed,
		Index:        string(cfg.Index),
		FastK:        cfg.FastK,
		TopN:         cfg.TopN,
		RerankFrames: cfg.RerankFrames,
		Streaming:    cfg.Streaming,
		SegmentSize:  cfg.SegmentSize,
		Replicas:     replicas,
	}
}

// Compatible reports whether two summaries describe the same query space
// and merge parameters (replica counts are free to differ).
func (s ConfigSummary) Compatible(o ConfigSummary) bool {
	return s.Dim == o.Dim && s.ProjDim == o.ProjDim && s.Seed == o.Seed &&
		s.Index == o.Index && s.FastK == o.FastK && s.TopN == o.TopN &&
		s.RerankFrames == o.RerankFrames &&
		s.Streaming == o.Streaming && s.SegmentSize == o.SegmentSize
}

// ShardBackend is one shard of a scatter-gather engine: the stage surface
// Engine composes, whether the shard lives in-process (shard.Local) or on
// another host (Client). Every method is safe for concurrent use.
type ShardBackend interface {
	// Ingest routes one video to the shard (fanning out to every replica
	// worker-side). Mutating: dispatched at most once over the wire.
	Ingest(v *video.Video) error
	// BuildIndex builds (or, in streaming mode, seals) the shard's index.
	BuildIndex() error
	// FastSearch runs stage 1 against the shard's slice of the corpus
	// under the plan's leg knobs (ShardK depth, Exact/NProbe/Ef effort),
	// returning its local top-ShardK hits in canonical order. The context
	// carries the query's tracing recorder (see internal/obs): a remote
	// backend ships the trace id over the wire and grafts the worker's
	// exported spans back into the caller's trace; tracing never changes
	// the hits.
	FastSearch(ctx context.Context, text string, plan core.Plan) ([]core.ResultObject, error)
	// GroundCandidates runs stage 2 over the candidate frames this shard
	// owns; groundings align with refs. Context as on FastSearch.
	GroundCandidates(ctx context.Context, text string, refs []core.FrameRef, workers int) ([]core.Grounding, error)
	// Stats returns the shard's ingest statistics (one replica's view).
	Stats() (core.IngestStats, error)
	// Entities returns the shard's indexed patch-vector count.
	Entities() (int, error)
	// Built reports whether every non-empty replica has built its index.
	Built() (bool, error)
	// IngestGen returns the shard's mutation generation (the minimum
	// across replicas, so a cached answer can never outlive a laggard).
	IngestGen() (uint64, error)
	// PlanStats exports the shard's planning digest — selectivity sample,
	// per-term posting statistics and calibrated effort ladder — which the
	// coordinator's planner combines across shards (calibrating the shard
	// lazily if its corpus changed since the last export).
	PlanStats() (core.PlanStats, error)
	// ReplicaStats snapshots per-replica health and read counts.
	ReplicaStats() ([]ReplicaStat, error)
	// ConfigSummary digests the shard's resolved configuration.
	ConfigSummary() (ConfigSummary, error)
	// SaveSnapshot serialises one replica's full system state.
	SaveSnapshot() ([]byte, error)
	// LoadSnapshot restores a SaveSnapshot payload into every replica of
	// this freshly-constructed shard.
	LoadSnapshot(data []byte) error
	// Ping verifies the shard is reachable and can serve (at least one
	// healthy replica behind it).
	Ping() error
	// Close releases client-side resources (no-op for in-process shards).
	Close() error
}

// BulkIngester is the optional fast path for dataset-sized ingest: a
// backend that can ingest a whole slice of videos in order (parallelising
// across its replicas) implements it; the engine falls back to per-video
// Ingest calls otherwise.
type BulkIngester interface {
	IngestVideos(vs []*video.Video) error
}

// SegmentReporter is the optional streaming-mode introspection surface: a
// backend hosting streaming systems reports its primary replica's segment
// breakdown (growing/building/sealed counts, bytes, seal and compaction
// totals). A monolithic backend either doesn't implement it or returns
// stats with Streaming=false; the serving tier's /stats and /metrics
// surface whatever is reported.
type SegmentReporter interface {
	SegmentStats() (vectordb.SegmentStats, error)
}
