package remote_test

// The conformance suite: an engine whose shards all live behind the RPC
// transport must answer byte-identically to the single-process paths. Two
// pins, in increasing strictness:
//
//  1. Remote engine vs in-process engine, same shard count, every index
//     kind, default (approximate) search: the per-shard systems are
//     byte-identical by construction, so any divergence is the transport's
//     fault — codec truncation, reordering, a dropped field.
//  2. Remote engine vs the monolithic core.System under exact search, every
//     index kind: exhaustive search makes each side's stage-1 top-fastK
//     exact, so the sharded merge must reproduce the monolithic answer bit
//     for bit — the acceptance criterion.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

// indexKinds is every index family the conformance suite pins.
var indexKinds = []vectordb.IndexKind{
	vectordb.IndexFlat,
	vectordb.IndexIMI,
	vectordb.IndexIVFPQ,
	vectordb.IndexHNSW,
}

func conformanceKinds(t *testing.T) []vectordb.IndexKind {
	if testing.Short() {
		// Short mode keeps one exact and one approximate kind so the
		// transport is still exercised end to end within the CI budget.
		return []vectordb.IndexKind{vectordb.IndexFlat, vectordb.IndexIMI}
	}
	return indexKinds
}

// TestRemoteEngineMatchesSingleSystemExact is the acceptance pin: a 4-shard
// engine running entirely over the RPC transport returns byte-identical
// results to the single-process core.System across all four index kinds
// under exact search.
func TestRemoteEngineMatchesSingleSystemExact(t *testing.T) {
	const seed = 7
	// QVHighlights generates 15 distinct clips, so all four shards own
	// videos — single-video corpora would leave three shards empty and
	// prove nothing about the merge.
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	for _, kind := range conformanceKinds(t) {
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.Config{Seed: seed, Index: kind}
			single := singleSystem(t, cfg, ds)
			eng, _ := remoteEngine(t, 4, 1, cfg, remote.ClientOptions{})
			ingestAll(t, eng, ds)

			if got, want := eng.Entities(), single.Entities(); got != want {
				t.Fatalf("remote entities = %d, single = %d", got, want)
			}
			queries := ds.Queries
			if testing.Short() {
				queries = queries[:2]
			}
			for _, q := range queries {
				for _, opts := range []core.QueryOptions{
					{Exhaustive: true},
					{Exhaustive: true, DisableRerank: true},
					{Exhaustive: true, FastK: 40, TopN: 5},
				} {
					want, err := single.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s single: %v", q.ID, err)
					}
					got, err := eng.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s remote: %v", q.ID, err)
					}
					if !reflect.DeepEqual(got.Objects, want.Objects) {
						t.Errorf("%s opts %+v: remote objects diverge\n got: %+v\nwant: %+v",
							q.ID, opts, got.Objects, want.Objects)
					}
					if got.CandidateFrames != want.CandidateFrames {
						t.Errorf("%s opts %+v: candidate frames %d != %d",
							q.ID, opts, got.CandidateFrames, want.CandidateFrames)
					}
				}
			}
		})
	}
}

// TestRemoteEngineMatchesLocalEngine pins the transport itself: an
// in-process engine and a remote engine with the same shard count and
// config hold byte-identical per-shard systems, so even under approximate
// search (where the monolithic system legitimately differs) the two engines
// must agree bit for bit — on answers, candidate counts, aggregate stats
// and the ingest generation.
func TestRemoteEngineMatchesLocalEngine(t *testing.T) {
	const seed = 11
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	kinds := conformanceKinds(t)
	if testing.Short() {
		// The exact-search test already covers flat in short mode; here
		// the approximate default index is the interesting transport pin.
		kinds = []vectordb.IndexKind{vectordb.IndexIMI}
	}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.Config{Seed: seed, Index: kind}
			local, err := shard.New(4, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ingestAll(t, local, ds)
			eng, _ := remoteEngine(t, 4, 1, cfg, remote.ClientOptions{})
			ingestAll(t, eng, ds)

			if got, want := eng.Entities(), local.Entities(); got != want {
				t.Fatalf("entities: remote %d, local %d", got, want)
			}
			if got, want := eng.IngestGen(), local.IngestGen(); got != want {
				t.Fatalf("ingest gen: remote %d, local %d", got, want)
			}
			if got, want := eng.Stats(), local.Stats(); got.Videos != want.Videos ||
				got.Keyframes != want.Keyframes || got.Tokens != want.Tokens {
				t.Fatalf("stats diverge: remote %+v, local %+v", got, want)
			}
			queries := ds.Queries
			if testing.Short() {
				queries = queries[:2]
			}
			for _, q := range queries {
				want, err := local.Query(q.Text, core.QueryOptions{})
				if err != nil {
					t.Fatalf("%s local: %v", q.ID, err)
				}
				got, err := eng.Query(q.Text, core.QueryOptions{})
				if err != nil {
					t.Fatalf("%s remote: %v", q.ID, err)
				}
				if !reflect.DeepEqual(got.Objects, want.Objects) {
					t.Errorf("%s: remote engine diverges from local engine", q.ID)
				}
				if got.CandidateFrames != want.CandidateFrames {
					t.Errorf("%s: candidate frames %d != %d", q.ID, got.CandidateFrames, want.CandidateFrames)
				}
			}
		})
	}
}

// TestRemoteReplicatedWorker runs R=2 replica groups behind the RPC
// boundary: worker-side failover (kill one replica of each worker) must be
// invisible to the coordinator — same bytes, no errors.
func TestRemoteReplicatedWorker(t *testing.T) {
	const seed = 5
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, hosts := remoteEngine(t, 2, 2, cfg, remote.ClientOptions{})
	ingestAll(t, eng, ds)

	queries := ds.Queries
	if testing.Short() {
		queries = queries[:3]
	}
	want := make([]*core.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	stats := eng.ReplicaStats()
	for gi, g := range stats {
		if len(g) != 2 {
			t.Fatalf("shard %d: %d replica stats over RPC, want 2", gi, len(g))
		}
	}
	// Kill replica 0 of every worker, worker-side — the coordinator's
	// FailReplica is in-process only; a real operator would signal the
	// worker. The pipe harness holds the worker's Local directly.
	for _, h := range hosts {
		h.local.Fail(0)
	}
	for i, q := range queries {
		got, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatalf("%s with worker-side replica down: %v", q.ID, err)
		}
		if !reflect.DeepEqual(got.Objects, want[i].Objects) {
			t.Fatalf("%s: failover changed the answer", q.ID)
		}
	}
	st := eng.ReplicaStats()
	for gi, g := range st {
		if g[0].Healthy {
			t.Fatalf("shard %d replica 0 should report unhealthy over RPC", gi)
		}
		if !g[1].Healthy {
			t.Fatalf("shard %d replica 1 should stay healthy", gi)
		}
	}
}
