package remote_test

// Backend-mixing suite: one Engine composing in-process shards (shard.Local)
// AND remote workers (remote.Client over pipes) in the same deployment —
// the topology a gradual scale-out passes through. Answers, snapshots, and
// IngestGen-driven cache invalidation must all behave identically to the
// all-local engine.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/shard"
)

// mixedEngine builds a 4-shard engine: shards 0 and 2 in-process, shards 1
// and 3 remote workers behind pipes.
func mixedEngine(t *testing.T, cfg core.Config) (*shard.Engine, []*pipeHost) {
	t.Helper()
	backends := make([]remote.ShardBackend, 4)
	var hosts []*pipeHost
	for i := range backends {
		l, err := shard.NewLocal(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			backends[i] = l
			continue
		}
		h := newPipeHost(l)
		h.local = l
		hosts = append(hosts, h)
		backends[i] = remote.NewClient(fmt.Sprintf("pipe://mixed-%d", i), remote.ClientOptions{Dial: h.dial})
	}
	eng, err := shard.NewWithBackends(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, hosts
}

// TestMixedBackendsMatchAllLocal: an engine mixing in-process and remote
// shards answers byte-identically to the all-local engine — shard placement
// is invisible to results, stats and the ingest generation.
func TestMixedBackendsMatchAllLocal(t *testing.T) {
	const seed = 29
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})

	ref, err := shard.New(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ref, ds)
	eng, _ := mixedEngine(t, cfg)
	ingestAll(t, eng, ds)

	if got, want := eng.Entities(), ref.Entities(); got != want {
		t.Fatalf("entities: mixed %d, local %d", got, want)
	}
	if got, want := eng.IngestGen(), ref.IngestGen(); got != want {
		t.Fatalf("ingest gen: mixed %d, local %d", got, want)
	}
	queries := ds.Queries
	if testing.Short() {
		queries = queries[:3]
	}
	for _, q := range queries {
		want, err := ref.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: mixed engine diverges from all-local engine", q.ID)
		}
	}
	// Health probes see both kinds.
	stats := eng.BackendStats()
	kinds := map[string]int{}
	for _, st := range stats {
		if !st.Healthy {
			t.Fatalf("healthy mixed engine reports unhealthy backend: %+v", st)
		}
		kinds[st.Kind]++
	}
	if kinds["local"] != 2 || kinds["remote"] != 2 {
		t.Fatalf("backend kinds = %v, want 2 local + 2 remote", kinds)
	}
}

// TestMixedSnapshotRoundTrip saves a snapshot through an engine whose
// shards are part-remote (segments travel over RPC) and restores it into
// (a) another mixed engine and (b) an all-local engine — the format is
// placement-agnostic, so both must answer identically to the original.
func TestMixedSnapshotRoundTrip(t *testing.T) {
	const seed = 31
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	orig, _ := mixedEngine(t, cfg)
	ingestAll(t, orig, ds)

	var buf bytes.Buffer
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restoredMixed, _ := mixedEngine(t, cfg)
	if err := restoredMixed.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restoring into mixed engine: %v", err)
	}
	restoredLocal, err := shard.New(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restoredLocal.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restoring into all-local engine: %v", err)
	}

	for _, restored := range []*shard.Engine{restoredMixed, restoredLocal} {
		if restored.Entities() != orig.Entities() || !restored.Built() {
			t.Fatalf("restored engine: %d entities (want %d), built=%t",
				restored.Entities(), orig.Entities(), restored.Built())
		}
	}
	for _, q := range ds.Queries[:3] {
		want, err := orig.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for name, restored := range map[string]*shard.Engine{"mixed": restoredMixed, "local": restoredLocal} {
			got, err := restored.Query(q.Text, core.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Objects, want.Objects) {
				t.Fatalf("%s: engine restored as %s diverges", q.ID, name)
			}
		}
	}
}

// TestIngestGenInvalidatesCacheAcrossRPC drives the serving tier over a
// mixed engine: a cached answer must be served from cache until an ingest
// into a REMOTE shard advances the generation across the RPC boundary, at
// which point the next lookup recomputes.
func TestIngestGenInvalidatesCacheAcrossRPC(t *testing.T) {
	const seed = 37
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, _ := mixedEngine(t, cfg)

	// Hold back one video owned by a remote shard (odd shard index ⇒
	// video ID odd modulo 4).
	heldVideo := -1
	for i := range ds.Videos {
		if ds.Videos[i].ID%4 == 1 {
			heldVideo = i
			break
		}
	}
	if heldVideo < 0 {
		t.Fatal("dataset has no video owned by shard 1")
	}
	for i := range ds.Videos {
		if i == heldVideo {
			continue
		}
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	srv := server.New(eng, server.Config{CacheSize: 32, Shards: 4})
	post := func() (cached bool) {
		t.Helper()
		body := fmt.Sprintf(`{"query": %q}`, ds.Queries[0].Text)
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("POST /query = %d: %s", w.Code, w.Body)
		}
		var resp struct {
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Cached
	}

	if post() {
		t.Fatal("first lookup must miss")
	}
	if !post() {
		t.Fatal("second lookup must hit the cache")
	}
	// Ingest the held-back video into the remote shard: the generation
	// advances over RPC and the cached answer dies.
	if err := eng.Ingest(&ds.Videos[heldVideo]); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if post() {
		t.Fatal("ingest into a remote shard must invalidate the cached answer")
	}
	if !post() {
		t.Fatal("recomputed answer must cache again")
	}
}

// TestServingTierReportsDeadBackend drives the HTTP tier over a mixed
// engine and kills one remote worker: /healthz must flip to "degraded"
// naming the backend, and /query must answer 503 with the unreachable
// worker in the error — not "index not built yet", and never a partial
// merge.
func TestServingTierReportsDeadBackend(t *testing.T) {
	const seed = 41
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, hosts := mixedEngine(t, cfg)
	ingestAll(t, eng, ds)
	srv := server.New(eng, server.Config{CacheSize: 0, Shards: 4})

	get := func(path string) (int, string) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy /healthz = %d %s", code, body)
	}

	hosts[0].kill()
	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz must stay 200 (the tier is alive): got %d", code)
	}
	if !strings.Contains(body, `"status":"degraded"`) || !strings.Contains(body, `"backends_down":1`) {
		t.Fatalf("/healthz must report degraded with one backend down: %s", body)
	}

	req := httptest.NewRequest("POST", "/query",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, ds.Queries[0].Text)))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != 503 {
		t.Fatalf("query with a dead shard = %d %s, want 503", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "unreachable") {
		t.Fatalf("503 must name the unreachable backend, got %s", w.Body)
	}

	// Revive: service restores with no residue.
	hosts[0].revive()
	if code, body := get("/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("revived /healthz = %d %s", code, body)
	}
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("POST", "/query",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, ds.Queries[0].Text))))
	if w.Code != 200 {
		t.Fatalf("revived query = %d %s", w.Code, w.Body)
	}
}
