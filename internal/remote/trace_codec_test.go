package remote

// Wire tests for the trace sidecar: exported span lists must round-trip
// bit-exactly, fail on every truncation, and never let a forged span count
// commit the decoder to a huge allocation — the same standards the answer
// payloads are held to, because a hostile worker response must not be able
// to take the coordinator down through its observability channel.

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func randSpans(rng *rand.Rand, maxLen int) []obs.SpanData {
	n := rng.Intn(maxLen + 1)
	if n == 0 {
		return nil
	}
	spans := make([]obs.SpanData, n)
	for i := range spans {
		spans[i] = obs.SpanData{
			Name:   strings.Repeat("n", rng.Intn(16)),
			Detail: strings.Repeat("d", rng.Intn(24)),
			Parent: int32(rng.Intn(n+2) - 1), // mix roots (-1) and forged indices
			Start:  time.Duration(rng.Int63()),
			Dur:    time.Duration(rng.Int63() - rng.Int63()),
		}
	}
	return spans
}

func TestSpansRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]obs.SpanData{
		nil, // untraced: zero spans
		{{Name: "worker.stage1", Parent: -1, Start: 0, Dur: time.Second}},
		{
			{Name: "worker.stage1", Parent: -1, Dur: 3 * time.Millisecond},
			{Name: "encode", Detail: "terms=4", Parent: 0, Start: time.Microsecond, Dur: time.Microsecond},
			{Name: "ann", Detail: "k=128 hits=96", Parent: 0, Start: 2 * time.Microsecond},
		},
	}
	for i := 0; i < 80; i++ {
		cases = append(cases, randSpans(rng, 12))
	}
	for _, c := range cases {
		roundTrip(t, "spans", c, appendSpans, readSpans)
	}
}

// TestSpansForgedCount pins the allocation guard: a header declaring more
// spans than the body could possibly hold must error out of d.count before
// any per-span allocation happens.
func TestSpansForgedCount(t *testing.T) {
	for _, forged := range []uint32{2, 1 << 16, 1<<32 - 1} {
		e := &enc{}
		e.u32(forged)
		// One valid span's worth of bytes — always fewer than forged claims.
		e.str("worker.stage1")
		e.str("")
		e.u32(uint32(0xFFFFFFFF)) // parent -1
		e.i64(0)
		e.i64(int64(time.Millisecond))
		d := &dec{b: e.b}
		spans := readSpans(d)
		if err := d.finish(); err == nil {
			t.Fatalf("forged count %d decoded without error (got %d spans)", forged, len(spans))
		}
		if len(spans) != 0 {
			t.Fatalf("forged count %d still yielded %d spans", forged, len(spans))
		}
	}
}
