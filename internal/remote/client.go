package remote

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// ClientOptions tune one shard client; zero values select defaults.
type ClientOptions struct {
	// Dial opens one connection to the worker. The default dials TCP to
	// the client's address with DialTimeout; tests substitute net.Pipe.
	Dial func() (net.Conn, error)
	// PoolSize bounds the idle persistent-connection pool (default 4).
	// More conns dial on demand under concurrency; surplus conns close on
	// release instead of pooling.
	PoolSize int
	// Timeout is the per-call deadline for read-only operations, covering
	// write + execute + read (default 30s). A call that exceeds it
	// surfaces a transport error — and a bounded retry on a fresh
	// connection.
	Timeout time.Duration
	// MutateTimeout is the per-call deadline for mutating operations
	// (ingest, index builds, snapshot load), which do corpus-sized work
	// worker-side; it defaults to the larger of Timeout and 5 minutes so
	// a serving deadline tuned for queries never aborts an ingest
	// mid-flight.
	MutateTimeout time.Duration
	// DialTimeout bounds connection establishment (default 3s) — the
	// fail-fast bound for unreachable workers at boot.
	DialTimeout time.Duration
	// Retries is the redial-and-retry budget for read-only calls after a
	// transport error (default 2). Mutating calls never consume it: once
	// a request may have left the client, retrying could double-apply.
	Retries int
	// MaxFrame bounds response payloads (DefaultMaxFrame when zero).
	MaxFrame uint32
}

func (o ClientOptions) withDefaults(addr string) ClientOptions {
	if o.PoolSize == 0 {
		o.PoolSize = 4
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MutateTimeout == 0 {
		o.MutateTimeout = 5 * time.Minute
		if o.Timeout > o.MutateTimeout {
			o.MutateTimeout = o.Timeout
		}
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Dial == nil {
		dt := o.DialTimeout
		o.Dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, dt) }
	}
	return o
}

// Client is a remote shard: it implements ShardBackend over the wire
// protocol on a pool of persistent connections. Safe for concurrent use —
// each in-flight call owns one pooled connection.
type Client struct {
	addr   string
	opts   ClientOptions
	idle   chan net.Conn
	closed atomic.Bool
}

// NewClient constructs a client for the worker at addr. No connection is
// opened until the first call (Connect pings eagerly for fail-fast boots).
func NewClient(addr string, opts ClientOptions) *Client {
	opts = opts.withDefaults(addr)
	return &Client{addr: addr, opts: opts, idle: make(chan net.Conn, opts.PoolSize)}
}

// Addr returns the worker address this client dials.
func (c *Client) Addr() string { return c.addr }

// Close drains and closes the idle pool. In-flight calls finish on their
// own connections; subsequent calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.drain()
	return nil
}

func (c *Client) drain() {
	for {
		select {
		case conn := <-c.idle:
			conn.Close()
		default:
			return
		}
	}
}

// get checks a connection out of the idle pool, dialing when empty.
// fromPool reports a reused connection — one that may have gone stale since
// its last call (a worker restart kills every pooled connection at once),
// which the retry loop treats as free to replace rather than a strike
// against the bounded retry budget.
func (c *Client) get() (conn net.Conn, fromPool bool, err error) {
	if c.closed.Load() {
		return nil, false, fmt.Errorf("remote %s: client closed", c.addr)
	}
	select {
	case conn = <-c.idle:
		return conn, true, nil
	default:
	}
	conn, err = c.opts.Dial()
	if err != nil {
		return nil, false, fmt.Errorf("remote %s: dial: %w", c.addr, err)
	}
	return conn, false, nil
}

// put returns a healthy connection to the pool (closing it when the pool is
// full or the client closed).
func (c *Client) put(conn net.Conn) {
	if c.closed.Load() {
		conn.Close()
		return
	}
	select {
	case c.idle <- conn:
		// Close may have drained the pool between our closed-check and
		// the enqueue; re-check so a connection can never be stranded
		// (and leaked) in a closed client's pool.
		if c.closed.Load() {
			c.drain()
		}
	default:
		conn.Close()
	}
}

// call performs one request/response exchange. Read-only calls retry on
// transport errors: a failure on a pooled connection is discarded for free
// (a worker restart invalidates the whole pool at once, and the pool bound
// caps how many such discards one call can see), while failures on freshly
// dialed connections consume the bounded retry budget — so a stale pool, a
// dropped packet or a worker that died mid-response costs a redial, not an
// answer. Mutating calls are at-most-once: they dial fresh (never trusting
// a possibly-stale pooled connection) and never retry after the request may
// have been sent. Application-level errors (the worker executed and said
// no) never retry on either path.
func (c *Client) call(op byte, body []byte, mutating bool) ([]byte, error) {
	//lovo:ctx-ok untraced control-plane ops (ingest, build, snapshot); the query path goes through callCtx
	return c.do(context.Background(), op, body, mutating, false)
}

// callCtx is call with the query's tracing context: under a traced context
// every transport attempt — including the retried, failed ones — records a
// sibling "rpc" span, so a flaky or slow leg is attributable from the
// coordinator trace even when the retry machinery hides it from the
// answer.
func (c *Client) callCtx(ctx context.Context, op byte, body []byte) ([]byte, error) {
	return c.do(ctx, op, body, false, false)
}

// meta performs a lightweight metadata exchange (stats, health, generation
// counters — everything the worker answers from memory). These ride the hot
// serving path — the HTTP tier consults Built and IngestGen on every
// request — so they take one fresh-dial attempt under a dial-scale deadline
// instead of the full read-retry budget: one blackholed worker costs a
// request one DialTimeout, not Retries x Timeout. Stale pooled connections
// still discard and redial for free.
func (c *Client) meta(op byte) ([]byte, error) {
	//lovo:ctx-ok sub-millisecond metadata exchange, deliberately untraced: a span per Built/IngestGen poll would dwarf the traces it decorates
	return c.do(context.Background(), op, nil, false, true)
}

func (c *Client) do(ctx context.Context, op byte, body []byte, mutating, light bool) ([]byte, error) {
	req := make([]byte, 0, 1+len(body))
	req = append(req, op)
	req = append(req, body...)

	budget := 1 + c.opts.Retries
	if light {
		budget = 1
	}
	var lastErr error
	for budget > 0 {
		var conn net.Conn
		var fromPool bool
		var err error
		if mutating {
			conn, err = c.opts.Dial()
			if err != nil {
				// Nothing was sent: a dial failure is safe to retry
				// even for mutations.
				lastErr = fmt.Errorf("remote %s: dial: %w", c.addr, err)
				budget--
				continue
			}
		} else if conn, fromPool, err = c.get(); err != nil {
			lastErr = err
			budget--
			continue
		}

		_, asp := obs.Start(ctx, "rpc")
		resp, err := c.exchange(conn, req, mutating, light)
		if asp.On() {
			if err != nil {
				asp.Detail(fmt.Sprintf("%s addr=%s err=%v", opName(op), c.addr, err))
			} else {
				asp.Detail(fmt.Sprintf("%s addr=%s", opName(op), c.addr))
			}
		}
		asp.End()
		if err == nil {
			c.put(conn)
			status := resp[0]
			if status != statusOK {
				return nil, decodeError(status, resp[1:])
			}
			return resp[1:], nil
		}
		conn.Close()
		lastErr = fmt.Errorf("remote %s: %s: %w", c.addr, opName(op), err)
		if mutating {
			// The request may have reached the worker: surface the
			// ambiguity instead of risking a double apply.
			break
		}
		if !fromPool {
			budget--
		}
	}
	return nil, lastErr
}

// exchange writes one request frame and reads one response frame under the
// per-call deadline.
func (c *Client) exchange(conn net.Conn, req []byte, mutating, light bool) ([]byte, error) {
	timeout := c.opts.Timeout
	if mutating {
		timeout = c.opts.MutateTimeout
	}
	if light {
		// Metadata answers from memory worker-side; bound it like a
		// dial, not like a query.
		timeout = c.opts.DialTimeout
	}
	//lovo:nondeterministic-ok transport deadline arithmetic; the wire payload never carries the clock value
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, req, c.opts.MaxFrame); err != nil {
		return nil, err
	}
	resp, err := readFrame(conn, c.opts.MaxFrame)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("empty response frame")
	}
	return resp, nil
}

func opName(op byte) string {
	switch op {
	case opPing:
		return "ping"
	case opIngest:
		return "ingest"
	case opBuildIndex:
		return "build-index"
	case opFastSearch:
		return "fast-search"
	case opGround:
		return "ground"
	case opStats:
		return "stats"
	case opEntities:
		return "entities"
	case opBuilt:
		return "built"
	case opIngestGen:
		return "ingest-gen"
	case opReplicaStats:
		return "replica-stats"
	case opConfigSummary:
		return "config-summary"
	case opSaveSnapshot:
		return "save-snapshot"
	case opLoadSnapshot:
		return "load-snapshot"
	case opIngestBatch:
		return "ingest-batch"
	case opPlanStats:
		return "plan-stats"
	case opSegmentStats:
		return "segment-stats"
	}
	return fmt.Sprintf("op-%d", op)
}

// --- ShardBackend implementation ---------------------------------------

// Ping verifies the worker is reachable and serving. It is the health
// probe: one dial attempt, dial-scale deadline — a blackholed worker costs
// one DialTimeout, not the full read-retry budget, so /healthz stays
// responsive while a host is down.
func (c *Client) Ping() error {
	_, err := c.BootID()
	return err
}

// BootID pings the worker and returns its server instance nonce. The
// coordinator compares successive values: a changed nonce means the worker
// process restarted — and, since workers boot empty, that its slice of the
// corpus is gone until restored.
func (c *Client) BootID() (uint64, error) {
	resp, err := c.meta(opPing)
	if err != nil {
		return 0, err
	}
	d := &dec{b: resp}
	id := d.u64()
	if err := d.finish(); err != nil {
		return 0, err
	}
	return id, nil
}

// Ingest ships one video to the worker (gob-encoded inside the frame; the
// scene-description video model is structured, not a flat hit list, so it
// rides the standard library's codec).
func (c *Client) Ingest(v *video.Video) error {
	var vb bytes.Buffer
	if err := gob.NewEncoder(&vb).Encode(v); err != nil {
		return fmt.Errorf("remote %s: encoding video: %w", c.addr, err)
	}
	e := &enc{}
	e.bytes(vb.Bytes())
	_, err := c.call(opIngest, e.b, true)
	return err
}

// ingestBatchBudget bounds one opIngestBatch frame's video payload. Chunks
// stay far under MaxFrame while still amortising the per-call dial and
// round trip across many videos.
const ingestBatchBudget = 8 << 20

// IngestVideos ships a slice of videos in order as size-bounded batch
// frames — one dial + round trip per ~8 MiB of corpus instead of per
// video. It implements BulkIngester, so Engine.IngestDataset routes whole
// dataset slices through it. Each batch is at-most-once like every
// mutation; a transport failure surfaces with the batch unfinished rather
// than risking a double apply.
func (c *Client) IngestVideos(vs []*video.Video) error {
	e := &enc{}
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		body := make([]byte, 0, 4+len(e.b))
		head := &enc{b: body}
		head.u32(uint32(n))
		head.b = append(head.b, e.b...)
		_, err := c.call(opIngestBatch, head.b, true)
		e.b = e.b[:0]
		n = 0
		return err
	}
	for i := range vs {
		var vb bytes.Buffer
		if err := gob.NewEncoder(&vb).Encode(vs[i]); err != nil {
			return fmt.Errorf("remote %s: encoding video: %w", c.addr, err)
		}
		if n > 0 && len(e.b)+vb.Len() > ingestBatchBudget {
			if err := flush(); err != nil {
				return err
			}
		}
		e.bytes(vb.Bytes())
		n++
	}
	return flush()
}

// BuildIndex builds the worker's index.
func (c *Client) BuildIndex() error {
	_, err := c.call(opBuildIndex, nil, true)
	return err
}

// FastSearch runs stage 1 on the worker under the plan's leg knobs. Under
// a traced context the request carries the trace id; the worker measures
// its own spans and ships them back after the hits, and this side grafts
// them under the current span — so the coordinator trace holds real
// worker-side stage-1 timings, not just client-observed RTT.
func (c *Client) FastSearch(ctx context.Context, text string, plan core.Plan) ([]core.ResultObject, error) {
	sp := obs.FromContext(ctx)
	tid := sp.TraceID()
	e := &enc{}
	e.str(text)
	appendPlan(e, plan)
	e.u64(tid)
	resp, err := c.callCtx(ctx, opFastSearch, e.b)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	hits := readObjects(d)
	if tid != 0 {
		sp.Graft(readSpans(d))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return hits, nil
}

// PlanStats fetches the worker's planning digest. It rides the retried
// read path (not the metadata fast path): the first fetch after a corpus
// change calibrates worker-side, and the sample payload is KB-scale.
func (c *Client) PlanStats() (core.PlanStats, error) {
	resp, err := c.call(opPlanStats, nil, false)
	if err != nil {
		return core.PlanStats{}, err
	}
	d := &dec{b: resp}
	st := readPlanStats(d)
	if err := d.finish(); err != nil {
		return core.PlanStats{}, err
	}
	return st, nil
}

// GroundCandidates runs stage 2 on the worker over the refs it owns.
// Trace propagation works as on FastSearch: the id rides the request, the
// worker's spans ride the response.
func (c *Client) GroundCandidates(ctx context.Context, text string, refs []core.FrameRef, workers int) ([]core.Grounding, error) {
	sp := obs.FromContext(ctx)
	tid := sp.TraceID()
	e := &enc{}
	e.str(text)
	appendRefs(e, refs)
	e.i64(int64(workers))
	e.u64(tid)
	resp, err := c.callCtx(ctx, opGround, e.b)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	gs := readGroundings(d)
	if tid != 0 {
		sp.Graft(readSpans(d))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return gs, nil
}

// Stats fetches the worker's ingest statistics.
func (c *Client) Stats() (core.IngestStats, error) {
	resp, err := c.meta(opStats)
	if err != nil {
		return core.IngestStats{}, err
	}
	d := &dec{b: resp}
	st := readStats(d)
	if err := d.finish(); err != nil {
		return core.IngestStats{}, err
	}
	return st, nil
}

// Entities fetches the worker's indexed vector count.
func (c *Client) Entities() (int, error) {
	resp, err := c.meta(opEntities)
	if err != nil {
		return 0, err
	}
	d := &dec{b: resp}
	n := d.intv()
	if err := d.finish(); err != nil {
		return 0, err
	}
	return n, nil
}

// Built reports whether the worker's index is built.
func (c *Client) Built() (bool, error) {
	resp, err := c.meta(opBuilt)
	if err != nil {
		return false, err
	}
	d := &dec{b: resp}
	b := d.boolean()
	if err := d.finish(); err != nil {
		return false, err
	}
	return b, nil
}

// IngestGen fetches the worker's mutation generation.
func (c *Client) IngestGen() (uint64, error) {
	resp, err := c.meta(opIngestGen)
	if err != nil {
		return 0, err
	}
	d := &dec{b: resp}
	g := d.u64()
	if err := d.finish(); err != nil {
		return 0, err
	}
	return g, nil
}

// SegmentStats fetches the worker's streaming segment breakdown — counts
// answered from memory, so it rides the metadata fast path. A monolithic
// worker reports Streaming=false.
func (c *Client) SegmentStats() (vectordb.SegmentStats, error) {
	resp, err := c.meta(opSegmentStats)
	if err != nil {
		return vectordb.SegmentStats{}, err
	}
	d := &dec{b: resp}
	st := readSegmentStats(d)
	if err := d.finish(); err != nil {
		return vectordb.SegmentStats{}, err
	}
	return st, nil
}

// ReplicaStats fetches the worker's per-replica health and read counts.
func (c *Client) ReplicaStats() ([]ReplicaStat, error) {
	resp, err := c.meta(opReplicaStats)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	sts := readReplicaStats(d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	return sts, nil
}

// ConfigSummary fetches the worker's resolved configuration digest.
func (c *Client) ConfigSummary() (ConfigSummary, error) {
	resp, err := c.meta(opConfigSummary)
	if err != nil {
		return ConfigSummary{}, err
	}
	d := &dec{b: resp}
	sum := readConfigSummary(d)
	if err := d.finish(); err != nil {
		return ConfigSummary{}, err
	}
	return sum, nil
}

// SaveSnapshot fetches one replica's serialised system state.
func (c *Client) SaveSnapshot() ([]byte, error) {
	resp, err := c.call(opSaveSnapshot, nil, false)
	if err != nil {
		return nil, err
	}
	d := &dec{b: resp}
	data := d.bytesv()
	if err := d.finish(); err != nil {
		return nil, err
	}
	// The snapshot aliases the response buffer; copy so callers own it.
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// LoadSnapshot restores a snapshot into the worker's (empty) replicas.
func (c *Client) LoadSnapshot(data []byte) error {
	e := &enc{}
	e.bytes(data)
	_, err := c.call(opLoadSnapshot, e.b, true)
	return err
}
