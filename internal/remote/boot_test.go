package remote_test

// Boot-path suite: a coordinator pointed at a dead worker must fail fast
// with a clear error naming the address — the regression that motivated
// this (lovod hanging at boot on an unreachable -shard-addrs host) is
// pinned with a genuinely closed TCP port. Config mismatches (different
// seed or index on a worker) must likewise refuse to boot.

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

// closedPort reserves a TCP port and closes it, so the address is
// guaranteed unreachable (connection refused, not a hang).
func closedPort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// serveLocal boots a real TCP worker for boot tests and returns its
// address.
func serveLocal(t *testing.T, cfg core.Config) string {
	t.Helper()
	backend, err := shard.NewLocal(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(backend)
	go srv.Serve(l)
	t.Cleanup(func() { l.Close(); srv.Close() })
	return l.Addr().String()
}

// TestConnectFailsFastOnClosedPort is the regression test for the boot
// hang: an unreachable worker address must error out within the dial
// timeout, naming the offending address.
func TestConnectFailsFastOnClosedPort(t *testing.T) {
	good := serveLocal(t, core.Config{Seed: 1})
	dead := closedPort(t)

	start := time.Now()
	_, err := remote.Connect([]string{good, dead}, remote.ClientOptions{
		DialTimeout: 2 * time.Second,
		Retries:     1,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Connect to a closed port must error")
	}
	if !strings.Contains(err.Error(), dead) {
		t.Fatalf("error must name the unreachable address %s: %v", dead, err)
	}
	// "Fail fast" means bounded by the dial timeout (plus retry), not a
	// TCP-stack hang: a refused connection errors in microseconds, so
	// even a generous bound catches a regression to hanging.
	if limit := 10 * time.Second; elapsed > limit {
		t.Fatalf("Connect took %v; must fail fast (< %v)", elapsed, limit)
	}
}

func TestConnectSucceedsAgainstLiveWorkers(t *testing.T) {
	cfg := core.Config{Seed: 3}
	addrs := []string{serveLocal(t, cfg), serveLocal(t, cfg)}
	clients, err := remote.Connect(addrs, remote.ClientOptions{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	if len(clients) != 2 {
		t.Fatalf("got %d clients, want 2", len(clients))
	}
	if err := remote.VerifyConfig(clients, remote.Summarize(cfg.Resolved(), 0)); err != nil {
		t.Fatalf("matching configs must verify: %v", err)
	}
}

// TestVerifyConfigRejectsMismatch: a worker booted with a different seed or
// index must be refused at boot, not discovered via silently-wrong answers.
func TestVerifyConfigRejectsMismatch(t *testing.T) {
	want := core.Config{Seed: 7, Index: vectordb.IndexIMI}
	cases := []core.Config{
		{Seed: 8, Index: vectordb.IndexIMI},                  // wrong seed
		{Seed: 7, Index: vectordb.IndexFlat},                 // wrong index
		{Seed: 7, Index: vectordb.IndexIMI, Streaming: true}, // streaming worker, batch coordinator
	}
	for _, workerCfg := range cases {
		addr := serveLocal(t, workerCfg)
		clients, err := remote.Connect([]string{addr}, remote.ClientOptions{DialTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		err = remote.VerifyConfig(clients, remote.Summarize(want.Resolved(), 0))
		for _, c := range clients {
			c.Close()
		}
		if err == nil {
			t.Fatalf("worker config %+v must be rejected against coordinator %+v", workerCfg, want)
		}
		if !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("error should say mismatch: %v", err)
		}
	}
}

// TestVerifyConfigRejectsSegmentSizeMismatch: two streaming fleets with
// different seal thresholds build differently-segmented approximate
// indexes, so the coordinator must refuse the worker at boot.
func TestVerifyConfigRejectsSegmentSizeMismatch(t *testing.T) {
	want := core.Config{Seed: 7, Index: vectordb.IndexIMI, Streaming: true, SegmentSize: 1024}
	addr := serveLocal(t, core.Config{Seed: 7, Index: vectordb.IndexIMI, Streaming: true, SegmentSize: 512})
	clients, err := remote.Connect([]string{addr}, remote.ClientOptions{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	if err := remote.VerifyConfig(clients, remote.Summarize(want.Resolved(), 0)); err == nil {
		t.Fatal("segment-size mismatch must be rejected")
	}
	// Matching thresholds — one explicit, one defaulted — must verify:
	// Config.Resolved canonicalizes the streaming default to 4096.
	addr2 := serveLocal(t, core.Config{Seed: 7, Index: vectordb.IndexIMI, Streaming: true, SegmentSize: 4096})
	clients2, err := remote.Connect([]string{addr2}, remote.ClientOptions{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range clients2 {
			c.Close()
		}
	}()
	defaulted := core.Config{Seed: 7, Index: vectordb.IndexIMI, Streaming: true}
	if err := remote.VerifyConfig(clients2, remote.Summarize(defaulted.Resolved(), 0)); err != nil {
		t.Fatalf("defaulted segment size must match an explicit 4096: %v", err)
	}
}

// TestConnectRejectsEmptyAddress catches the easy flag typo
// (-shard-addrs "a,,b").
func TestConnectRejectsEmptyAddress(t *testing.T) {
	if _, err := remote.Connect([]string{""}, remote.ClientOptions{}); err == nil {
		t.Fatal("empty address must error")
	}
}
