package remote_test

// Plan conformance: the planner tentpole's bit-identity guarantee. A pinned
// plan — explicit stage-1 and stage-2 knobs, carried verbatim over the wire
// — must answer byte-identically on every deployment shape: the monolithic
// core.System, the in-process engine, the replicated engine, and the fully
// remote engine. And a MinRecall-bounded query planned by a coordinator
// whose shards are all behind RPC must still meet its bound, because the
// engine plans from the same PlanStats digests the workers export.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/vectordb"
)

// pinnedPlans are the explicit plans the conformance suite replays, chosen
// to cover exact and approximate stage 1, both index-effort knobs, and the
// no-rerank path.
var pinnedPlans = []core.Plan{
	{FastK: 40, NProbe: 2, Ef: 48, TopN: 5},
	{Exact: true, RerankFrames: 10},
	{SkipRerank: true, FastK: 24, NProbe: 4, Ef: 64},
	{FastK: 64, ShardK: 32, NProbe: 8, Ef: 96, RerankFrames: 16, TopN: 8},
}

// TestPinnedPlanByteIdentityAcrossShapes pins the tentpole guarantee on
// equal shard counts: a 4-shard in-process engine, a 4-shard remote engine,
// and a 4-shard remote engine with replicated workers answer every pinned
// plan byte for byte — any divergence is the executor's or the codec's.
func TestPinnedPlanByteIdentityAcrossShapes(t *testing.T) {
	const seed = 23
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	kinds := conformanceKinds(t)
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.Config{Seed: seed, Index: kind}
			local, err := shard.New(4, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ingestAll(t, local, ds)
			rem, _ := remoteEngine(t, 4, 1, cfg, remote.ClientOptions{})
			ingestAll(t, rem, ds)
			repl, _ := remoteEngine(t, 4, 2, cfg, remote.ClientOptions{})
			ingestAll(t, repl, ds)

			queries := ds.Queries
			if testing.Short() {
				queries = queries[:2]
			}
			for _, q := range queries {
				for pi, plan := range pinnedPlans {
					p := plan
					opts := core.QueryOptions{Plan: &p}
					want, err := local.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s plan %d local: %v", q.ID, pi, err)
					}
					for name, eng := range map[string]*shard.Engine{"remote": rem, "replicated": repl} {
						got, err := eng.Query(q.Text, opts)
						if err != nil {
							t.Fatalf("%s plan %d %s: %v", q.ID, pi, name, err)
						}
						if !reflect.DeepEqual(got.Objects, want.Objects) {
							t.Errorf("%s plan %d: %s engine diverges from local\n got: %+v\nwant: %+v",
								q.ID, pi, name, got.Objects, want.Objects)
						}
						if got.CandidateFrames != want.CandidateFrames {
							t.Errorf("%s plan %d: %s candidate frames %d != %d",
								q.ID, pi, name, got.CandidateFrames, want.CandidateFrames)
						}
					}
				}
			}
		})
	}
}

// TestPinnedExactPlanMatchesMonolith extends the acceptance pin to plans:
// under an exact pinned plan, the 4-shard remote engine must reproduce the
// monolithic core.System bit for bit — exhaustive stage 1 makes the merge
// exact, so sharding cannot show through.
func TestPinnedExactPlanMatchesMonolith(t *testing.T) {
	const seed = 23
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	for _, kind := range conformanceKinds(t) {
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.Config{Seed: seed, Index: kind}
			single := singleSystem(t, cfg, ds)
			rem, _ := remoteEngine(t, 4, 1, cfg, remote.ClientOptions{})
			ingestAll(t, rem, ds)

			queries := ds.Queries
			if testing.Short() {
				queries = queries[:2]
			}
			for _, q := range queries {
				for _, plan := range []core.Plan{
					{Exact: true},
					{Exact: true, FastK: 48, TopN: 6},
					{Exact: true, SkipRerank: true, FastK: 32},
				} {
					p := plan
					opts := core.QueryOptions{Plan: &p}
					want, err := single.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s single: %v", q.ID, err)
					}
					got, err := rem.Query(q.Text, opts)
					if err != nil {
						t.Fatalf("%s remote: %v", q.ID, err)
					}
					if !reflect.DeepEqual(got.Objects, want.Objects) {
						t.Errorf("%s plan %+v: remote engine diverges from monolith", q.ID, plan)
					}
				}
			}
		})
	}
}

// TestRemoteBoundedPlanMeetsRecall: a coordinator whose shards all live
// behind RPC plans a MinRecall-bounded query from worker-exported PlanStats
// digests (the opPlanStats round-trip), and the chosen plan's measured
// stage-1 recall against the engine's exact scatter must meet the bound.
func TestRemoteBoundedPlanMeetsRecall(t *testing.T) {
	const seed, bound = 29, 0.9
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	kinds := conformanceKinds(t)
	if testing.Short() {
		kinds = []vectordb.IndexKind{vectordb.IndexIMI}
	}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.Config{Seed: seed, Index: kind}
			rem, _ := remoteEngine(t, 3, 1, cfg, remote.ClientOptions{})
			ingestAll(t, rem, ds)

			queries := ds.Queries
			if len(queries) > 4 {
				queries = queries[:4]
			}
			for _, q := range queries {
				plan, err := rem.PlanQuery(q.Text, core.QueryOptions{MinRecall: bound})
				if err != nil {
					t.Fatalf("%s: plan over RPC: %v", q.ID, err)
				}
				if plan.Kind != core.PlanAdaptive && plan.Kind != core.PlanAdaptiveExact {
					t.Fatalf("%s: bounded plan has kind %q", q.ID, plan.Kind)
				}
				rec, err := rem.StageRecall(q.Text, plan)
				if err != nil {
					t.Fatalf("%s: measuring recall over RPC: %v", q.ID, err)
				}
				if rec < bound {
					t.Errorf("%s: measured recall %v below bound %v under plan %s", q.ID, rec, bound, plan)
				}
				// The bounded query must execute cleanly end to end.
				if _, err := rem.Query(q.Text, core.QueryOptions{MinRecall: bound}); err != nil {
					t.Fatalf("%s: bounded query: %v", q.ID, err)
				}
			}
		})
	}
}
