package remote

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// The codec is a hand-rolled little-endian binary encoding: fixed-width
// integers and floats, u32-length-prefixed byte strings, u32-count-prefixed
// lists. No reflection, no field names on the wire — the op code implies the
// message layout on both sides. The decoder is sticky-error and bounds-checked
// everywhere: malformed payloads (truncated values, list counts exceeding the
// remaining bytes, trailing garbage) decode to an error, never a panic, and a
// declared length can never drive an allocation larger than the frame that
// carried it.

type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f32(v float32) { e.u32(math.Float32bits(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("remote: malformed payload: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) f32() float32  { return math.Float32frombits(d.u32()) }
func (d *dec) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *dec) boolean() bool { return d.u8() != 0 }
func (d *dec) intv() int     { return int(d.i64()) }

// count reads a list length, rejecting any count whose elements — each at
// least elemSize encoded bytes — could not possibly fit in the remaining
// payload. The pre-sized decode allocation is thereby bounded by the frame
// that carried the count: a forged count can never drive an allocation
// larger than (or even disproportionate to) the bytes actually received.
func (d *dec) count(elemSize int) int {
	n := d.u32()
	if d.err == nil && int64(n)*int64(elemSize) > int64(len(d.b)-d.off) {
		d.fail("list count %d (x%dB) exceeds %d remaining bytes", n, elemSize, len(d.b)-d.off)
		return 0
	}
	return int(n)
}

func (d *dec) bytesv() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

func (d *dec) str() string { return string(d.bytesv()) }

// finish returns the sticky decode error, treating unconsumed trailing bytes
// as corruption — every message must account for its whole payload.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("remote: malformed payload: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// --- message encodings -------------------------------------------------

// appendPlan encodes one execution plan — the stage-op payload replacing
// the old per-query options. Plan.ShardKs deliberately has no encoding:
// the coordinator resolves each leg with Plan.Leg before dispatch, so only
// the leg's own ShardK travels.
func appendPlan(e *enc, p core.Plan) {
	e.boolean(p.Exact)
	e.i64(int64(p.FastK))
	e.i64(int64(p.ShardK))
	e.i64(int64(p.NProbe))
	e.i64(int64(p.Ef))
	e.i64(int64(p.RerankFrames))
	e.i64(int64(p.TopN))
	e.boolean(p.SkipRerank)
	e.str(string(p.Kind))
	e.f64(p.PredictedRecall)
}

func readPlan(d *dec) core.Plan {
	return core.Plan{
		Exact:           d.boolean(),
		FastK:           d.intv(),
		ShardK:          d.intv(),
		NProbe:          d.intv(),
		Ef:              d.intv(),
		RerankFrames:    d.intv(),
		TopN:            d.intv(),
		SkipRerank:      d.boolean(),
		Kind:            core.PlanKind(d.str()),
		PredictedRecall: d.f64(),
	}
}

func appendPlanStats(e *enc, st core.PlanStats) {
	e.i64(int64(st.Entities))
	e.i64(int64(st.Dim))
	e.i64(int64(st.SampleEvery))
	e.u32(uint32(len(st.Sample)))
	for _, v := range st.Sample {
		e.f32(v)
	}
	e.u32(uint32(len(st.Terms)))
	for _, t := range st.Terms {
		e.str(t.Name)
		e.i64(int64(t.Objects))
		e.i64(int64(t.Frames))
	}
	e.u32(uint32(len(st.Rungs)))
	for _, r := range st.Rungs {
		e.i64(int64(r.NProbe))
		e.i64(int64(r.Ef))
		e.f64(r.MinRecall)
		e.f64(r.MeanRecall)
	}
	e.boolean(st.Calibrated)
	e.f64(st.Margin)
}

// Per-element floors for the PlanStats list counts: a sample element is one
// f32; a term is at least an empty string (u32 length) plus two i64; a rung
// is two i64 plus two f64.
const (
	encSampleElemSize = 4
	encTermMinSize    = 4 + 16
	encRungSize       = 32
)

func readPlanStats(d *dec) core.PlanStats {
	st := core.PlanStats{
		Entities:    d.intv(),
		Dim:         d.intv(),
		SampleEvery: d.intv(),
	}
	if n := d.count(encSampleElemSize); d.err == nil && n > 0 {
		st.Sample = make([]float32, 0, n)
		for i := 0; i < n; i++ {
			st.Sample = append(st.Sample, d.f32())
		}
	}
	if n := d.count(encTermMinSize); d.err == nil && n > 0 {
		st.Terms = make([]core.TermCount, 0, n)
		for i := 0; i < n; i++ {
			st.Terms = append(st.Terms, core.TermCount{Name: d.str(), Objects: d.intv(), Frames: d.intv()})
			if d.err != nil {
				return core.PlanStats{}
			}
		}
	}
	if n := d.count(encRungSize); d.err == nil && n > 0 {
		st.Rungs = make([]core.Rung, 0, n)
		for i := 0; i < n; i++ {
			st.Rungs = append(st.Rungs, core.Rung{
				NProbe: d.intv(), Ef: d.intv(),
				MinRecall: d.f64(), MeanRecall: d.f64(),
			})
		}
	}
	st.Calibrated = d.boolean()
	st.Margin = d.f64()
	if d.err != nil {
		return core.PlanStats{}
	}
	return st
}

func appendObject(e *enc, o core.ResultObject) {
	e.i64(int64(o.VideoID))
	e.i64(int64(o.FrameIdx))
	e.f64(o.Box.X)
	e.f64(o.Box.Y)
	e.f64(o.Box.W)
	e.f64(o.Box.H)
	e.f32(o.Score)
	e.i64(o.PatchID)
}

func readObject(d *dec) core.ResultObject {
	return core.ResultObject{
		VideoID:  d.intv(),
		FrameIdx: d.intv(),
		Box:      video.Box{X: d.f64(), Y: d.f64(), W: d.f64(), H: d.f64()},
		Score:    d.f32(),
		PatchID:  d.i64(),
	}
}

func appendObjects(e *enc, objs []core.ResultObject) {
	e.u32(uint32(len(objs)))
	for _, o := range objs {
		appendObject(e, o)
	}
}

// encObjectSize is one encoded ResultObject: two i64, four f64, f32, i64.
const encObjectSize = 60

func readObjects(d *dec) []core.ResultObject {
	n := d.count(encObjectSize)
	if d.err != nil || n == 0 {
		return nil
	}
	objs := make([]core.ResultObject, 0, n)
	for i := 0; i < n; i++ {
		objs = append(objs, readObject(d))
		if d.err != nil {
			return nil
		}
	}
	return objs
}

func appendRefs(e *enc, refs []core.FrameRef) {
	e.u32(uint32(len(refs)))
	for _, r := range refs {
		e.i64(int64(r.VideoID))
		e.i64(int64(r.FrameIdx))
		e.i64(r.PatchID)
	}
}

// encRefSize is one encoded FrameRef: three i64.
const encRefSize = 24

func readRefs(d *dec) []core.FrameRef {
	n := d.count(encRefSize)
	if d.err != nil || n == 0 {
		return nil
	}
	refs := make([]core.FrameRef, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, core.FrameRef{VideoID: d.intv(), FrameIdx: d.intv(), PatchID: d.i64()})
		if d.err != nil {
			return nil
		}
	}
	return refs
}

func appendGroundings(e *enc, gs []core.Grounding) {
	e.u32(uint32(len(gs)))
	for _, g := range gs {
		e.i64(int64(g.Ref.VideoID))
		e.i64(int64(g.Ref.FrameIdx))
		e.i64(g.Ref.PatchID)
		appendObjects(e, g.Objects)
		e.f32(g.Best)
		e.boolean(g.Grounds)
	}
}

// encGroundingMin is the smallest encoded Grounding: a ref, an empty
// object list, f32 best, bool.
const encGroundingMin = encRefSize + 4 + 4 + 1

func readGroundings(d *dec) []core.Grounding {
	n := d.count(encGroundingMin)
	if d.err != nil || n == 0 {
		return nil
	}
	gs := make([]core.Grounding, 0, n)
	for i := 0; i < n; i++ {
		g := core.Grounding{
			Ref:     core.FrameRef{VideoID: d.intv(), FrameIdx: d.intv(), PatchID: d.i64()},
			Objects: readObjects(d),
		}
		g.Best = d.f32()
		g.Grounds = d.boolean()
		if d.err != nil {
			return nil
		}
		gs = append(gs, g)
	}
	return gs
}

// appendSpans encodes a worker's exported trace spans — the observability
// sidecar a traced stage op rides home on the response, after the answer
// payload (mirroring how opPlanStats ships planning digests). Span.Start
// and Dur travel as ns offsets from the worker trace's time zero; Parent
// is an index into the same list (-1 = worker-side root), so the
// coordinator can graft the forest under the RPC leg span with index
// arithmetic alone.
func appendSpans(e *enc, spans []obs.SpanData) {
	e.u32(uint32(len(spans)))
	for _, sp := range spans {
		e.str(sp.Name)
		e.str(sp.Detail)
		e.u32(uint32(sp.Parent))
		e.i64(int64(sp.Start))
		e.i64(int64(sp.Dur))
	}
}

// encSpanMinSize is the smallest encoded span: two empty strings (u32
// lengths), parent u32, start and dur i64.
const encSpanMinSize = 4 + 4 + 4 + 8 + 8

func readSpans(d *dec) []obs.SpanData {
	n := d.count(encSpanMinSize)
	if d.err != nil || n == 0 {
		return nil
	}
	spans := make([]obs.SpanData, 0, n)
	for i := 0; i < n; i++ {
		sp := obs.SpanData{
			Name:   d.str(),
			Detail: d.str(),
			Parent: int32(d.u32()),
			Start:  time.Duration(d.i64()),
			Dur:    time.Duration(d.i64()),
		}
		if d.err != nil {
			return nil
		}
		spans = append(spans, sp)
	}
	return spans
}

func appendStats(e *enc, st core.IngestStats) {
	e.i64(int64(st.Videos))
	e.i64(int64(st.Frames))
	e.i64(int64(st.Keyframes))
	e.i64(int64(st.Tokens))
	e.i64(int64(st.Processing))
	e.i64(int64(st.Indexing))
}

func readStats(d *dec) core.IngestStats {
	return core.IngestStats{
		Videos:     d.intv(),
		Frames:     d.intv(),
		Keyframes:  d.intv(),
		Tokens:     d.intv(),
		Processing: time.Duration(d.i64()),
		Indexing:   time.Duration(d.i64()),
	}
}

func appendReplicaStats(e *enc, sts []ReplicaStat) {
	e.u32(uint32(len(sts)))
	for _, st := range sts {
		e.boolean(st.Healthy)
		e.u64(st.Reads)
		e.i64(st.Inflight)
	}
}

// encReplicaStatSize is one encoded ReplicaStat: bool, u64, i64.
const encReplicaStatSize = 17

func readReplicaStats(d *dec) []ReplicaStat {
	n := d.count(encReplicaStatSize)
	if d.err != nil || n == 0 {
		return nil
	}
	sts := make([]ReplicaStat, 0, n)
	for i := 0; i < n; i++ {
		sts = append(sts, ReplicaStat{Healthy: d.boolean(), Reads: d.u64(), Inflight: d.i64()})
		if d.err != nil {
			return nil
		}
	}
	return sts
}

func appendConfigSummary(e *enc, s ConfigSummary) {
	e.i64(int64(s.Dim))
	e.i64(int64(s.ProjDim))
	e.u64(s.Seed)
	e.str(s.Index)
	e.i64(int64(s.FastK))
	e.i64(int64(s.TopN))
	e.i64(int64(s.RerankFrames))
	e.boolean(s.Streaming)
	e.i64(int64(s.SegmentSize))
	e.i64(int64(s.Replicas))
}

func readConfigSummary(d *dec) ConfigSummary {
	return ConfigSummary{
		Dim:          d.intv(),
		ProjDim:      d.intv(),
		Seed:         d.u64(),
		Index:        d.str(),
		FastK:        d.intv(),
		TopN:         d.intv(),
		RerankFrames: d.intv(),
		Streaming:    d.boolean(),
		SegmentSize:  d.intv(),
		Replicas:     d.intv(),
	}
}

func appendSegmentStats(e *enc, st vectordb.SegmentStats) {
	e.boolean(st.Streaming)
	e.i64(int64(st.Sealed))
	e.i64(int64(st.Building))
	e.i64(int64(st.Growing))
	e.i64(int64(st.GrowingLen))
	e.i64(int64(st.SealedVectors))
	e.i64(st.RawBytes)
	e.i64(st.IndexBytes)
	e.u64(st.Seals)
	e.u64(st.Compactions)
}

func readSegmentStats(d *dec) vectordb.SegmentStats {
	return vectordb.SegmentStats{
		Streaming:     d.boolean(),
		Sealed:        d.intv(),
		Building:      d.intv(),
		Growing:       d.intv(),
		GrowingLen:    d.intv(),
		SealedVectors: d.intv(),
		RawBytes:      d.i64(),
		IndexBytes:    d.i64(),
		Seals:         d.u64(),
		Compactions:   d.u64(),
	}
}
