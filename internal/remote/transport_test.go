package remote_test

// Transport hardening: the server must reject oversized and truncated
// frames, garbage op codes and corrupt payloads with an error — never a
// panic, never a hang — and the client's bounded retries plus worker-side
// replica failover must make dropped, delayed and mid-stream-killed
// connections invisible to answers.

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/shard"
)

// rawExchange writes raw bytes to a fresh server connection and reads one
// response frame (or the connection closing).
func rawExchange(t *testing.T, h *pipeHost, raw []byte) ([]byte, error) {
	t.Helper()
	conn, err := h.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(raw); err != nil {
		return nil, err
	}
	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(head[:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

func bootLocal(t *testing.T) *shard.Local {
	t.Helper()
	l, err := shard.NewLocal(1, core.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestServerRejectsOversizedFrame: a declared length beyond the maximum
// must answer with an error frame and close — without allocating the
// claimed size or panicking.
func TestServerRejectsOversizedFrame(t *testing.T) {
	h := newPipeHost(bootLocal(t))
	h.srv.MaxFrame = 1 << 16

	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], 1<<30) // 1 GiB claim
	payload, err := rawExchange(t, h, head[:])
	if err != nil {
		t.Fatalf("oversized frame should get an error response, got transport error %v", err)
	}
	if len(payload) == 0 || payload[0] == 0 {
		t.Fatalf("oversized frame must answer a non-OK status, got % x", payload)
	}
	if !strings.Contains(string(payload[1:]), "exceeds maximum") {
		t.Fatalf("error should name the violation, got %q", payload[1:])
	}
	// The server must still serve fresh connections afterwards.
	if err := pingHost(t, h); err != nil {
		t.Fatalf("server dead after oversized frame: %v", err)
	}
}

// TestServerSurvivesTruncatedFrame: a connection that dies mid-frame must
// not take the server down or wedge other connections.
func TestServerSurvivesTruncatedFrame(t *testing.T) {
	h := newPipeHost(bootLocal(t))
	conn, err := h.dial()
	if err != nil {
		t.Fatal(err)
	}
	// Declare 100 bytes, send 3, hang up.
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], 100)
	conn.SetDeadline(time.Now().Add(time.Second))
	conn.Write(head[:])
	conn.Write([]byte{1, 2, 3})
	conn.Close()

	if err := pingHost(t, h); err != nil {
		t.Fatalf("server dead after truncated frame: %v", err)
	}
}

// TestServerRejectsMalformedPayloads: garbage op codes, empty frames and
// corrupt message bodies all answer an error status; none panic the worker.
func TestServerRejectsMalformedPayloads(t *testing.T) {
	h := newPipeHost(bootLocal(t))
	cases := map[string][]byte{
		"unknown op":           {0xEE, 1, 2, 3},
		"fast-search no body":  {4}, // opFastSearch with an empty body
		"ground corrupt count": append([]byte{5, 0, 0, 0, 0}, 0xFF, 0xFF, 0xFF, 0xFF),
		"ingest garbage gob":   append([]byte{2, 4, 0, 0, 0}, 0xde, 0xad, 0xbe, 0xef),
	}
	for name, payload := range cases {
		resp, err := rawExchange(t, newPipeHost(bootLocal(t)), frame(payload))
		if err != nil {
			t.Fatalf("%s: want an error response, got transport error %v", name, err)
		}
		if len(resp) == 0 || resp[0] == 0 {
			t.Fatalf("%s: malformed request must answer a non-OK status, got % x", name, resp)
		}
	}
	// Empty frame: answered with an error, then the connection closes.
	resp, err := rawExchange(t, h, frame(nil))
	if err != nil {
		t.Fatalf("empty frame: %v", err)
	}
	if len(resp) == 0 || resp[0] == 0 {
		t.Fatal("empty frame must answer a non-OK status")
	}
}

func pingHost(t *testing.T, h *pipeHost) error {
	t.Helper()
	c := remote.NewClient("pipe://ping", remote.ClientOptions{Dial: h.dial, Timeout: 2 * time.Second})
	defer c.Close()
	return c.Ping()
}

// TestClientRejectsOversizedResponse pins the symmetric bound: a server
// (or attacker) declaring a giant response frame errors client-side
// instead of allocating it.
func TestClientRejectsOversizedResponse(t *testing.T) {
	// A fake "server" that answers any frame with a 1 GiB length claim.
	dial := func() (net.Conn, error) {
		c, s := net.Pipe()
		go func() {
			defer s.Close()
			if _, err := readFrameRaw(s); err != nil {
				return
			}
			var head [4]byte
			binary.LittleEndian.PutUint32(head[:], 1<<30)
			s.Write(head[:])
		}()
		return c, nil
	}
	c := remote.NewClient("pipe://bigmouth", remote.ClientOptions{Dial: dial, Timeout: time.Second, Retries: 1})
	defer c.Close()
	err := c.Ping()
	if err == nil {
		t.Fatal("oversized response must error")
	}
	if !strings.Contains(err.Error(), "exceeds maximum") {
		t.Fatalf("error should name the violation: %v", err)
	}
}

func readFrameRaw(conn net.Conn) ([]byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return nil, err
	}
	payload := make([]byte, binary.LittleEndian.Uint32(head[:]))
	_, err := io.ReadFull(conn, payload)
	return payload, err
}

// TestNoRecognisedTermsCrossesTheWire: the request-level sentinel must stay
// errors.Is-able through the RPC boundary — the serving tier maps it to a
// 400 and replica routing must not burn health on it.
func TestNoRecognisedTermsCrossesTheWire(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 1, Scale: 0.05})
	eng, _ := remoteEngine(t, 2, 1, core.Config{Seed: 1}, remote.ClientOptions{})
	ingestAll(t, eng, ds)
	_, err := eng.Query("zorgon blaxt", core.QueryOptions{})
	if !errors.Is(err, core.ErrNoRecognisedTerms) {
		t.Fatalf("sentinel lost over RPC: %v", err)
	}
	for gi, g := range eng.ReplicaStats() {
		for ri, st := range g {
			if !st.Healthy {
				t.Fatalf("replica (%d,%d) burned health on a client error", gi, ri)
			}
		}
	}
}

// --- fault injection: dropped, delayed, mid-stream-killed ---------------

// latencyConn delays every write by d — a slow network, not a broken one.
type latencyConn struct {
	net.Conn
	d time.Duration
}

func (c *latencyConn) Write(p []byte) (int, error) {
	time.Sleep(c.d)
	return c.Conn.Write(p)
}

// killAfterConn closes the connection after budget bytes have been read
// from it — the peer dies mid-response.
type killAfterConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *killAfterConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	b := c.budget
	c.mu.Unlock()
	if b <= 0 {
		c.Close()
		return 0, errors.New("killAfterConn: injected mid-stream kill")
	}
	if len(p) > b {
		p = p[:b]
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.budget -= n
	c.mu.Unlock()
	return n, err
}

// TestFaultInjectionNeverChangesAnswers runs the same query battery under
// three injected faults — dropped dials, injected latency, connections
// killed mid-response — and requires every answer byte-identical to the
// healthy run. Failover (client retries + redials) must be invisible.
func TestFaultInjectionNeverChangesAnswers(t *testing.T) {
	const seed = 13
	cfg := core.Config{Seed: seed}
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	eng, hosts := remoteEngine(t, 3, 1, cfg, remote.ClientOptions{
		Timeout: 5 * time.Second,
		Retries: 3,
	})
	ingestAll(t, eng, ds)

	queries := ds.Queries
	if testing.Short() {
		queries = queries[:3]
	}
	want := make([]*core.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	check := func(t *testing.T) {
		for i, q := range queries {
			got, err := eng.Query(q.Text, core.QueryOptions{})
			if err != nil {
				t.Fatalf("%s under fault: %v", q.ID, err)
			}
			if !reflect.DeepEqual(got.Objects, want[i].Objects) {
				t.Fatalf("%s: fault changed the answer", q.ID)
			}
		}
	}

	t.Run("dropped dials", func(t *testing.T) {
		// Sever every pooled connection so queries must redial, and fail
		// the next dial of every host; the bounded retry budget covers
		// both the stale pool hit and the dropped dial.
		for _, h := range hosts {
			h.kill()
			h.revive()
			h.mu.Lock()
			h.failDials = 1
			h.mu.Unlock()
		}
		check(t)
	})

	t.Run("latency injected", func(t *testing.T) {
		for _, h := range hosts {
			h.mu.Lock()
			h.wrap = func(c net.Conn) net.Conn { return &latencyConn{Conn: c, d: 2 * time.Millisecond} }
			h.mu.Unlock()
		}
		defer func() {
			for _, h := range hosts {
				h.mu.Lock()
				h.wrap = nil
				h.mu.Unlock()
			}
		}()
		check(t)
	})

	t.Run("mid-stream kill", func(t *testing.T) {
		// Sever pooled connections, then make the first fresh connection
		// to every host die after 8 response bytes — mid-frame. The
		// retry's second connection is healthy.
		for _, h := range hosts {
			h.kill()
			h.revive()
			h.mu.Lock()
			first := true
			h.wrap = func(c net.Conn) net.Conn {
				if first {
					first = false
					return &killAfterConn{Conn: c, budget: 8}
				}
				return c
			}
			h.mu.Unlock()
		}
		defer func() {
			for _, h := range hosts {
				h.mu.Lock()
				h.wrap = nil
				h.mu.Unlock()
			}
		}()
		check(t)
	})

	t.Run("worker killed entirely fails cleanly", func(t *testing.T) {
		hosts[1].kill()
		defer hosts[1].revive()
		_, err := eng.Query(queries[0].Text, core.QueryOptions{})
		if err == nil {
			t.Fatal("query with a dead shard must error, not return a partial merge")
		}
		// The engine's health probe sees it too.
		stats := eng.BackendStats()
		if stats[1].Healthy {
			t.Fatal("dead worker must report unhealthy")
		}
		if stats[0].Kind != "remote" || stats[0].Addr == "" {
			t.Fatalf("backend stat should name the remote worker: %+v", stats[0])
		}
	})

	t.Run("revived worker serves identical answers", func(t *testing.T) {
		check(t)
	})
}
