package remote

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// Server hosts one ShardBackend behind the wire protocol: an accept loop
// spawns one goroutine per connection, each serving one request at a time.
// cmd/lovoshard wraps a shard.Local in one; tests serve backends over
// net.Pipe connections with ServeConn directly.
type Server struct {
	backend ShardBackend
	// nonce identifies this server instance: opPing returns it, so a
	// coordinator can tell "same worker, transient blip" from "worker
	// restarted (empty) since I last spoke to it" — the latter means the
	// shard's corpus is gone and serving on would silently drop its slice
	// from every merge.
	nonce uint64
	// MaxFrame bounds request payloads (DefaultMaxFrame when zero).
	MaxFrame uint32
	// IdleTimeout bounds how long a connection may sit between requests —
	// and how long a peer may dawdle delivering one request's bytes —
	// before the server reclaims the goroutine and fd (default 5m). The
	// client's pool absorbs the churn: a reclaimed idle connection is
	// discarded and redialed for free on its next use.
	IdleTimeout time.Duration
	// Logf, when set, receives per-connection error logs (log.Printf
	// signature). Silent otherwise — tests inject failures on purpose.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// NewServer constructs a server over backend.
func NewServer(backend ShardBackend) *Server {
	var nb [8]byte
	if _, err := crand.Read(nb[:]); err != nil {
		// A weak nonce only weakens restart detection, never correctness.
		nb = [8]byte{1}
	}
	nonce := binary.LittleEndian.Uint64(nb[:])
	if nonce == 0 {
		nonce = 1 // zero means "unknown" client-side
	}
	return &Server{backend: backend, nonce: nonce, conns: make(map[net.Conn]struct{})}
}

func (s *Server) maxFrame() uint32 {
	if s.MaxFrame == 0 {
		return DefaultMaxFrame
	}
	return s.MaxFrame
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout == 0 {
		return 5 * time.Minute
	}
	return s.IdleTimeout
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close terminates every connection the server is currently serving and
// refuses new ServeConn calls; it does not close any listener passed to
// Serve (the caller owns it).
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn serves one connection until it errors or closes. Safe to call
// from many goroutines (one per connection).
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	for {
		// The request must arrive — whole — within the idle window; the
		// deadline clears while the backend works (ingest and index
		// builds legitimately run long) and re-arms for the response
		// write.
		//lovo:nondeterministic-ok transport deadline arithmetic; the wire payload never carries the clock value
		_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout()))
		payload, err := readFrame(conn, s.maxFrame())
		if err != nil {
			// An oversized declared length is a protocol violation the
			// peer should hear about; answer once, then drop the
			// connection (the stream offset is unrecoverable).
			if errors.Is(err, errFrameTooBig) {
				st, body := encodeError(err)
				resp := append([]byte{st}, body...)
				_ = writeFrame(conn, resp, s.maxFrame())
			} else if err != io.EOF {
				s.logf("remote: reading request: %v", err)
			}
			return
		}
		if len(payload) == 0 {
			st, body := encodeError(errors.New("remote: empty request frame"))
			_ = writeFrame(conn, append([]byte{st}, body...), s.maxFrame())
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		status, body := s.handle(payload[0], payload[1:])
		//lovo:nondeterministic-ok transport deadline arithmetic; the wire payload never carries the clock value
		_ = conn.SetWriteDeadline(time.Now().Add(s.idleTimeout()))
		if err := writeFrame(conn, append([]byte{status}, body...), s.maxFrame()); err != nil {
			s.logf("remote: writing response: %v", err)
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

// workerTrace is the worker-side trace of one stage op. The zero value is
// the free disabled recorder for untraced requests.
type workerTrace struct {
	t    *obs.Trace
	root obs.Span
}

// traceRequest starts the worker-side trace for one stage op: with a zero
// trace id (untraced caller) it returns the free disabled recorder; a
// nonzero id starts a fresh worker trace under the coordinator's id whose
// spans ship back on the response for the coordinator to graft.
func traceRequest(tid uint64, rootName string) (context.Context, workerTrace) {
	if tid == 0 {
		//lovo:ctx-ok the RPC boundary is a context root: the coordinator's ctx ended at its client socket, and an untraced op needs only the free disabled recorder
		return context.Background(), workerTrace{}
	}
	t := obs.NewTrace(tid)
	root := t.Root(rootName)
	//lovo:ctx-ok the RPC boundary is a context root: the coordinator's trace rides the wire as tid and regrows here from a fresh Background
	return obs.With(context.Background(), root), workerTrace{t: t, root: root}
}

// End closes the worker's root span.
func (w workerTrace) End() { w.root.End() }

// appendTrace appends the request's worker-side spans to a stage-op
// response — only for traced requests, so untraced responses carry not a
// single extra byte and the client knows by the id it sent whether spans
// follow the answer payload.
func appendTrace(e *enc, w workerTrace) {
	if w.t == nil {
		return
	}
	appendSpans(e, w.t.Export())
}

// handle dispatches one decoded request. A panic anywhere in decode or in
// the backend converts to an error response — a malformed or hostile frame
// must never take the worker down.
func (s *Server) handle(op byte, body []byte) (status byte, resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			status, resp = encodeError(fmt.Errorf("remote: request panicked: %v", r))
		}
	}()
	d := &dec{b: body}
	e := &enc{}
	switch op {
	case opPing:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		if err := s.backend.Ping(); err != nil {
			return encodeError(err)
		}
		e.u64(s.nonce)

	case opIngest:
		raw := d.bytesv()
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		var v video.Video
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err != nil {
			return encodeError(fmt.Errorf("remote: decoding video: %w", err))
		}
		if err := s.backend.Ingest(&v); err != nil {
			return encodeError(err)
		}

	case opIngestBatch:
		n := d.count(1)
		vs := make([]*video.Video, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			raw := d.bytesv()
			if d.err != nil {
				break
			}
			var v video.Video
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err != nil {
				return encodeError(fmt.Errorf("remote: decoding video %d of %d: %w", i, n, err))
			}
			vs = append(vs, &v)
		}
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		if bi, ok := s.backend.(BulkIngester); ok {
			if err := bi.IngestVideos(vs); err != nil {
				return encodeError(err)
			}
		} else {
			for _, v := range vs {
				if err := s.backend.Ingest(v); err != nil {
					return encodeError(err)
				}
			}
		}

	case opBuildIndex:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		if err := s.backend.BuildIndex(); err != nil {
			return encodeError(err)
		}

	case opFastSearch:
		text := d.str()
		plan := readPlan(d)
		tid := d.u64()
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		ctx, root := traceRequest(tid, "worker.stage1")
		hits, err := s.backend.FastSearch(ctx, text, plan)
		root.End()
		if err != nil {
			return encodeError(err)
		}
		appendObjects(e, hits)
		appendTrace(e, root)

	case opPlanStats:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		st, err := s.backend.PlanStats()
		if err != nil {
			return encodeError(err)
		}
		appendPlanStats(e, st)

	case opGround:
		text := d.str()
		refs := readRefs(d)
		workers := d.intv()
		tid := d.u64()
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		ctx, root := traceRequest(tid, "worker.rerank")
		gs, err := s.backend.GroundCandidates(ctx, text, refs, workers)
		root.End()
		if err != nil {
			return encodeError(err)
		}
		appendGroundings(e, gs)
		appendTrace(e, root)

	case opStats:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		st, err := s.backend.Stats()
		if err != nil {
			return encodeError(err)
		}
		appendStats(e, st)

	case opEntities:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		n, err := s.backend.Entities()
		if err != nil {
			return encodeError(err)
		}
		e.i64(int64(n))

	case opBuilt:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		b, err := s.backend.Built()
		if err != nil {
			return encodeError(err)
		}
		e.boolean(b)

	case opIngestGen:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		g, err := s.backend.IngestGen()
		if err != nil {
			return encodeError(err)
		}
		e.u64(g)

	case opSegmentStats:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		// A backend without the optional surface (a monolithic store, or a
		// test fake) answers like a monolithic worker: zero stats with
		// Streaming=false.
		var st vectordb.SegmentStats
		if sr, ok := s.backend.(SegmentReporter); ok {
			var err error
			if st, err = sr.SegmentStats(); err != nil {
				return encodeError(err)
			}
		}
		appendSegmentStats(e, st)

	case opReplicaStats:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		sts, err := s.backend.ReplicaStats()
		if err != nil {
			return encodeError(err)
		}
		appendReplicaStats(e, sts)

	case opConfigSummary:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		sum, err := s.backend.ConfigSummary()
		if err != nil {
			return encodeError(err)
		}
		appendConfigSummary(e, sum)

	case opSaveSnapshot:
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		data, err := s.backend.SaveSnapshot()
		if err != nil {
			return encodeError(err)
		}
		e.bytes(data)

	case opLoadSnapshot:
		data := d.bytesv()
		if err := d.finish(); err != nil {
			return encodeError(err)
		}
		if err := s.backend.LoadSnapshot(data); err != nil {
			return encodeError(err)
		}

	default:
		return encodeError(fmt.Errorf("remote: unknown op %d", op))
	}
	return statusOK, e.b
}
