package remote

import (
	"fmt"
	"strings"
)

// Connect builds one client per worker address and health-checks each with
// an eager Ping, so a coordinator fails fast at boot — with the offending
// address named in the error — instead of hanging until the first query
// discovers a dead worker. On any failure every already-opened client is
// closed before returning.
func Connect(addrs []string, opts ClientOptions) ([]*Client, error) {
	clients := make([]*Client, 0, len(addrs))
	closeAll := func() {
		for _, c := range clients {
			c.Close()
		}
	}
	for i, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			closeAll()
			return nil, fmt.Errorf("remote: shard address %d is empty", i)
		}
		c := NewClient(addr, opts)
		if err := c.Ping(); err != nil {
			c.Close()
			closeAll()
			return nil, fmt.Errorf("remote: shard %d (%s) unreachable: %w", i, addr, err)
		}
		clients = append(clients, c)
	}
	return clients, nil
}

// VerifyConfig checks every worker's resolved configuration against the
// coordinator's: seeded encoders mean a worker booted with a different seed
// (or index, or merge parameters) would silently answer from a different
// embedding space, so a mismatch is a boot error, not a runtime surprise.
func VerifyConfig(clients []*Client, want ConfigSummary) error {
	for i, c := range clients {
		got, err := c.ConfigSummary()
		if err != nil {
			return fmt.Errorf("remote: shard %d (%s): fetching config: %w", i, c.Addr(), err)
		}
		if !got.Compatible(want) {
			return fmt.Errorf(
				"remote: shard %d (%s) config mismatch: worker %+v, coordinator %+v (boot workers and coordinator with the same -seed/-index)",
				i, c.Addr(), got, want)
		}
	}
	return nil
}
