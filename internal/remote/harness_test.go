package remote_test

// The test harness runs the full remote path hermetically inside go test:
// each "worker" is a shard.Local served by a remote.Server over net.Pipe
// connections, and the coordinator's remote.Clients dial fresh pipes on
// demand. No sockets, no ports, no sleeps — and the transport is the real
// one, byte for byte: frames, codec, deadlines, retries and failover all
// execute exactly as they would across hosts.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/remote"
	"repro/internal/shard"
)

// pipeHost is one in-memory worker: a backend behind a remote.Server whose
// connections are net.Pipe pairs. kill() refuses new dials and severs every
// live connection — the in-test equivalent of a worker process dying.
type pipeHost struct {
	srv *remote.Server
	// local is the worker's backing shard when the harness built it (nil
	// for hand-wrapped backends) — tests use it for worker-side drills.
	local *shard.Local

	mu    sync.Mutex
	conns []net.Conn
	down  bool
	// wrap, when set, wraps the client side of each new connection
	// (latency injection, mid-stream kills).
	wrap func(net.Conn) net.Conn
	// failDials makes the next n dials fail outright (dropped backend).
	failDials int
}

func newPipeHost(backend remote.ShardBackend) *pipeHost {
	return &pipeHost{srv: remote.NewServer(backend)}
}

// dial opens one client connection to the host, spawning a server loop for
// the other end of the pipe.
func (h *pipeHost) dial() (net.Conn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return nil, errors.New("pipehost: connection refused (worker down)")
	}
	if h.failDials > 0 {
		h.failDials--
		return nil, errors.New("pipehost: injected dial failure")
	}
	c, s := net.Pipe()
	h.conns = append(h.conns, s)
	go h.srv.ServeConn(s)
	if h.wrap != nil {
		c = h.wrap(c)
	}
	return c, nil
}

// kill severs the worker: live connections close mid-whatever-they-were-
// doing and new dials are refused until revive.
func (h *pipeHost) kill() {
	h.mu.Lock()
	h.down = true
	conns := h.conns
	h.conns = nil
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (h *pipeHost) revive() {
	h.mu.Lock()
	h.down = false
	h.mu.Unlock()
}

// restart simulates the worker process being killed and rebooted: live
// connections die, and a NEW server instance (fresh boot nonce) comes up
// over a fresh backend — empty, exactly as a real lovoshard boots.
func (h *pipeHost) restart(backend remote.ShardBackend) {
	h.mu.Lock()
	h.srv = remote.NewServer(backend)
	if l, ok := backend.(*shard.Local); ok {
		h.local = l
	}
	conns := h.conns
	h.conns = nil
	h.down = false
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// remoteEngine builds an n-shard engine whose every backend is a
// remote.Client speaking the wire protocol to a shard.Local over pipes.
func remoteEngine(t *testing.T, n, r int, cfg core.Config, opts remote.ClientOptions) (*shard.Engine, []*pipeHost) {
	t.Helper()
	hosts := make([]*pipeHost, n)
	backends := make([]remote.ShardBackend, n)
	for i := range hosts {
		l, err := shard.NewLocal(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = newPipeHost(l)
		hosts[i].local = l
		o := opts
		o.Dial = hosts[i].dial
		if o.Timeout == 0 {
			o.Timeout = 30 * time.Second
		}
		backends[i] = remote.NewClient("pipe://"+string(rune('a'+i)), o)
	}
	eng, err := shard.NewWithBackends(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, hosts
}

// ingestAll feeds the dataset and builds the index on any engine-like
// ingest surface.
func ingestAll(t *testing.T, eng *shard.Engine, ds *datasets.Dataset) {
	t.Helper()
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
}

// singleSystem builds the monolithic reference system over the dataset.
func singleSystem(t *testing.T, cfg core.Config, ds *datasets.Dataset) *core.System {
	t.Helper()
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := sys.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return sys
}
