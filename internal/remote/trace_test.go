package remote_test

// End-to-end tracing pins, over the same hermetic net.Pipe harness the
// conformance suite uses:
//
//  1. A traced distributed query yields a span tree with exactly one
//     worker-side stage-1 span per remote worker, each with a duration
//     measured on the worker and grafted under its RPC leg.
//  2. The conformance guarantee survives tracing: with tracing forced on,
//     answers stay byte-identical to the untraced run across index kinds —
//     tracing observes, it never steers.
//  3. Attribution under chaos: a worker with injected stage-1 latency is
//     identifiable from the coordinator trace alone (its leg span
//     dominates), while the answer stays byte-identical.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/shard"
)

// tracedQuery runs one query with a fresh trace attached and returns the
// result plus the exported spans.
func tracedQuery(t *testing.T, eng *shard.Engine, text string, opts core.QueryOptions) (*core.Result, []obs.SpanData) {
	t.Helper()
	tr := obs.NewTrace(obs.NewID())
	root := tr.Root("query")
	res, err := eng.QueryCtx(obs.With(context.Background(), root), text, opts)
	root.End()
	if err != nil {
		t.Fatalf("traced query %q: %v", text, err)
	}
	return res, tr.Export()
}

// spansNamed collects the spans with the given name.
func spansNamed(spans []obs.SpanData, name string) []obs.SpanData {
	var out []obs.SpanData
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestTracedDistributedQuery is the tentpole acceptance pin: a traced query
// against a 3-worker remote engine produces a span tree whose stage-1
// fan-out carries one worker-measured span per remote worker.
func TestTracedDistributedQuery(t *testing.T) {
	const seed = 7
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	cfg := core.Config{Seed: seed}
	eng, _ := remoteEngine(t, 3, 1, cfg, remote.ClientOptions{})
	ingestAll(t, eng, ds)

	text := ds.Queries[0].Text
	res, spans := tracedQuery(t, eng, text, core.QueryOptions{})
	if len(res.Objects) == 0 {
		t.Fatal("query returned nothing; the trace assertions would be vacuous")
	}

	legs := spansNamed(spans, "stage1.shard")
	if len(legs) != 3 {
		t.Fatalf("stage1.shard legs = %d, want one per worker (3)\nspans: %+v", len(legs), spans)
	}
	workers := spansNamed(spans, "worker.stage1")
	if len(workers) != 3 {
		t.Fatalf("worker.stage1 spans = %d, want one per worker (3)\nspans: %+v", len(workers), spans)
	}
	for _, w := range workers {
		// The duration was measured on the worker: it shipped over the wire
		// already fixed, and a zero duration would mean the worker never
		// timed its half.
		if w.Dur <= 0 {
			t.Fatalf("worker.stage1 span has no worker-measured duration: %+v", w)
		}
		// Grafted under an RPC leg, not floating at the root.
		if w.Parent < 0 || int(w.Parent) >= len(spans) || spans[w.Parent].Name != "stage1.shard" {
			t.Fatalf("worker.stage1 span not grafted under its leg: %+v", w)
		}
	}
	// The coordinator-side skeleton is present too.
	for _, name := range []string{"stage1", "merge", "rerank"} {
		if len(spansNamed(spans, name)) == 0 {
			t.Fatalf("trace lacks a %q span\nspans: %+v", name, spans)
		}
	}
	// Worker sub-spans crossed the wire: the core layers on the worker
	// record encode/ann/join under worker.stage1.
	if len(spansNamed(spans, "ann")) == 0 {
		t.Fatalf("trace lacks worker-side ann spans\nspans: %+v", spans)
	}
}

// TestConformanceWithTracingForcedOn re-runs the conformance comparison
// with tracing on: the bit-identity pin (remote engine vs monolithic system
// under exact search, and vs its own untraced run under the default plan)
// must hold span-for-span unchanged — tracing must never change an answer.
func TestConformanceWithTracingForcedOn(t *testing.T) {
	const seed = 7
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	for _, kind := range conformanceKinds(t) {
		t.Run(string(kind), func(t *testing.T) {
			cfg := core.Config{Seed: seed, Index: kind}
			single := singleSystem(t, cfg, ds)
			eng, _ := remoteEngine(t, 4, 1, cfg, remote.ClientOptions{})
			ingestAll(t, eng, ds)

			queries := ds.Queries
			if testing.Short() {
				queries = queries[:2]
			}
			for _, q := range queries {
				// Exact search: the monolithic system is the reference.
				want, err := single.Query(q.Text, core.QueryOptions{Exhaustive: true})
				if err != nil {
					t.Fatalf("%s single: %v", q.ID, err)
				}
				got, spans := tracedQuery(t, eng, q.Text, core.QueryOptions{Exhaustive: true})
				if !reflect.DeepEqual(got.Objects, want.Objects) {
					t.Errorf("%s: tracing changed the exact answer", q.ID)
				}
				if got.CandidateFrames != want.CandidateFrames {
					t.Errorf("%s: candidate frames %d != %d", q.ID, got.CandidateFrames, want.CandidateFrames)
				}
				if len(spansNamed(spans, "worker.stage1")) != 4 {
					t.Errorf("%s: traced exact query lacks its 4 worker spans", q.ID)
				}

				// Default (approximate) plan: the same engine untraced is
				// the reference.
				uw, err := eng.Query(q.Text, core.QueryOptions{})
				if err != nil {
					t.Fatalf("%s untraced: %v", q.ID, err)
				}
				tg, _ := tracedQuery(t, eng, q.Text, core.QueryOptions{})
				if !reflect.DeepEqual(tg.Objects, uw.Objects) || tg.CandidateFrames != uw.CandidateFrames {
					t.Errorf("%s: tracing changed the approximate answer", q.ID)
				}
			}
		})
	}
}

// slowBackend delays every stage-1 call by a fixed amount — the injected
// latency the coordinator trace must attribute to the right worker.
type slowBackend struct {
	remote.ShardBackend
	delay time.Duration
}

func (s *slowBackend) FastSearch(ctx context.Context, text string, plan core.Plan) ([]core.ResultObject, error) {
	time.Sleep(s.delay)
	return s.ShardBackend.FastSearch(ctx, text, plan)
}

// TestTraceAttributesInjectedLatency is the chaos pin: with one worker's
// stage-1 slowed by an injected delay, the coordinator trace alone must
// identify it — that worker's RPC leg span dominates every other leg —
// while the answer stays byte-identical to the healthy run.
func TestTraceAttributesInjectedLatency(t *testing.T) {
	const seed = 9
	const slowShard = 1
	const delay = 60 * time.Millisecond
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})
	cfg := core.Config{Seed: seed}

	hosts := make([]*pipeHost, 2)
	backends := make([]remote.ShardBackend, 2)
	var slow *slowBackend
	for i := range hosts {
		l, err := shard.NewLocal(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var backend remote.ShardBackend = l
		if i == slowShard {
			slow = &slowBackend{ShardBackend: l, delay: 0} // healthy until armed
			backend = slow
		}
		hosts[i] = newPipeHost(backend)
		backends[i] = remote.NewClient("pipe://"+string(rune('a'+i)), remote.ClientOptions{
			Dial: hosts[i].dial, Timeout: 30 * time.Second,
		})
	}
	eng, err := shard.NewWithBackends(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ingestAll(t, eng, ds)

	text := ds.Queries[0].Text
	want, err := eng.Query(text, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	slow.delay = delay
	got, spans := tracedQuery(t, eng, text, core.QueryOptions{})
	if !reflect.DeepEqual(got.Objects, want.Objects) || got.CandidateFrames != want.CandidateFrames {
		t.Fatal("injected latency changed the answer")
	}

	legs := spansNamed(spans, "stage1.shard")
	if len(legs) != 2 {
		t.Fatalf("stage1.shard legs = %d, want 2", len(legs))
	}
	var slowDur, fastDur time.Duration
	for _, leg := range legs {
		if leg.Detail == "shard=1" {
			slowDur = leg.Dur
		} else {
			fastDur = leg.Dur
		}
	}
	if slowDur < delay {
		t.Fatalf("slow worker's leg span (%v) does not cover the injected %v delay", slowDur, delay)
	}
	if slowDur < 2*fastDur {
		t.Fatalf("slow leg (%v) does not dominate the healthy leg (%v) — the trace fails to attribute the latency", slowDur, fastDur)
	}
}
