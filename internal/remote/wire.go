package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/relational"
	"repro/internal/vectordb"
)

// Wire format: every message — request or response — is one length-prefixed
// frame, a uint32 little-endian payload length followed by the payload.
//
//	request payload:  u8 op   | op-specific body
//	response payload: u8 status | body (statusOK) or error string (otherwise)
//
// One request is in flight per connection at a time; the client's connection
// pool provides concurrency. A frame longer than the configured maximum is
// rejected without allocating — the receiver answers with an error frame and
// closes the connection, so a corrupt or hostile length can neither panic
// the server nor drive an unbounded allocation.
const (
	opPing byte = iota + 1
	opIngest
	opBuildIndex
	opFastSearch
	opGround
	opStats
	opEntities
	opBuilt
	opIngestGen
	opReplicaStats
	opConfigSummary
	opSaveSnapshot
	opLoadSnapshot
	// opIngestBatch ships many videos in one frame (a list of per-video
	// gob blobs), amortising the per-call dial + round trip that
	// dataset-scale ingest would otherwise pay once per video.
	opIngestBatch
	// opPlanStats fetches the shard's planning digest (selectivity sample,
	// posting statistics, calibrated effort ladder) for the coordinator's
	// accuracy-bounded planner.
	opPlanStats
	// opSegmentStats fetches the shard's streaming segment breakdown
	// (growing/building/sealed counts, bytes, maintenance totals); a
	// monolithic worker answers with Streaming=false.
	opSegmentStats
)

const (
	statusOK byte = iota
	// statusErr carries an opaque error string.
	statusErr
	// statusNoTerms marks core.ErrNoRecognisedTerms — a request-level
	// error the coordinator must keep distinguishable (it maps to a client
	// error, and must never burn replica or backend health).
	statusNoTerms
	// statusDuplicate marks a duplicate-key ingest (vectordb.ErrDuplicate
	// or the relational store's equivalent): the serving tier maps it to
	// 409 Conflict, so the sentinel must survive the RPC boundary.
	statusDuplicate
)

// DefaultMaxFrame bounds one frame's payload. Snapshot segments are the
// largest messages; 256 MiB accommodates far beyond the bench corpora while
// still refusing pathological lengths outright.
const DefaultMaxFrame = 256 << 20

var errFrameTooBig = errors.New("remote: frame exceeds maximum size")

func writeFrame(w io.Writer, payload []byte, max uint32) error {
	if uint64(len(payload)) > uint64(max) {
		return fmt.Errorf("%w: %d > %d bytes", errFrameTooBig, len(payload), max)
	}
	n := uint32(len(payload))
	head := [4]byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. The up-front allocation is capped: a peer that
// declares a huge length but never sends the bytes pins at most
// frameReadChunk, because the buffer grows only as payload actually
// arrives — a declared length alone can never reserve frame-sized memory.
const frameReadChunk = 64 << 10

func readFrame(r io.Reader, max uint32) ([]byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	n := uint32(head[0]) | uint32(head[1])<<8 | uint32(head[2])<<16 | uint32(head[3])<<24
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d bytes", errFrameTooBig, n, max)
	}
	if n <= frameReadChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("remote: truncated frame: %w", err)
		}
		return payload, nil
	}
	var buf bytes.Buffer
	buf.Grow(frameReadChunk)
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("remote: truncated frame: %w", err)
	}
	return buf.Bytes(), nil
}

// wireError is an error reconstructed from a response frame. Unwrap keeps
// sentinel semantics (core.ErrNoRecognisedTerms) intact across the RPC
// boundary without re-stringifying the sentinel's text into the message.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeError rebuilds the application error carried by a non-OK response.
func decodeError(status byte, body []byte) error {
	msg := string(body)
	if msg == "" {
		msg = "remote: backend error"
	}
	switch status {
	case statusNoTerms:
		return &wireError{msg: msg, sentinel: core.ErrNoRecognisedTerms}
	case statusDuplicate:
		return &wireError{msg: msg, sentinel: vectordb.ErrDuplicate}
	}
	return &wireError{msg: msg}
}

// encodeError picks the wire status for an application error.
func encodeError(err error) (byte, []byte) {
	switch {
	case errors.Is(err, core.ErrNoRecognisedTerms):
		return statusNoTerms, []byte(err.Error())
	case errors.Is(err, vectordb.ErrDuplicate), errors.Is(err, relational.ErrDuplicateKey):
		// Both stores key on the packed patch ID; either can notice the
		// collision first. The wire collapses them to one sentinel — the
		// serving tier only needs "this is a duplicate, answer 409".
		return statusDuplicate, []byte(err.Error())
	}
	return statusErr, []byte(err.Error())
}
