package shard

import (
	"context"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/query"
)

// enginePlanner resolves accuracy-bounded queries into scatter plans for an
// Engine. It plans from the shards' exported PlanStats digests — it never
// needs to see into a backend, so remote shards plan the same as local ones:
//
//   - The effort rung (NProbe/Ef) is chosen so the *worst* shard still
//     clears the bound: for each candidate setting, the predicted recall is
//     the minimum across every non-empty shard's calibrated ladder, and the
//     cheapest clearing setting wins. Any non-empty shard without
//     calibration data forces exact search — never a silent recall hole.
//   - Per-shard stage-1 depth (Plan.ShardKs) comes from scoring the query
//     against every shard's weighted selectivity sample: a shard projected
//     to contribute few of the global top-FastK hits searches shallower,
//     with a 2x-plus-slack safety factor and never below what the samples
//     can actually resolve.
//
// Like the core planner, every validateEvery-th adaptive plan is validated
// against exact ground truth — here on one round-robin shard, comparing the
// shard's plan leg against its exact leg — and the safety margin adapts
// from the measurement.
type enginePlanner struct {
	mu            sync.Mutex
	enc           *core.QueryEncoder
	stats         []core.PlanStats
	statsGen      uint64
	haveStats     bool
	margin        float64
	planned       int
	validateEvery int
	validateRR    int
	lastMeasured  float64
}

func newEnginePlanner(cfg core.Config) *enginePlanner {
	return &enginePlanner{
		enc:           core.NewQueryEncoder(cfg),
		margin:        0.02,
		validateEvery: cfg.PlannerValidateEvery,
	}
}

// refreshStatsLocked re-fetches every shard's planning digest when the
// engine generation moved (which also triggers lazy calibration on each
// shard). Returns false when any shard's digest is unavailable — the
// caller falls back to exact planning rather than guessing.
func (p *enginePlanner) refreshStatsLocked(e *Engine) bool {
	gen := e.IngestGen()
	if p.haveStats && gen == p.statsGen {
		return true
	}
	stats := make([]core.PlanStats, len(e.backends))
	errs := make([]error, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		stats[i], errs[i] = e.backends[i].PlanStats()
	})
	if firstErr(errs) != nil {
		p.haveStats = false
		return false
	}
	p.stats = stats
	p.statsGen = gen
	p.haveStats = true
	return true
}

// minRecallAt returns the minimum predicted recall across all non-empty
// shards for one ladder setting (effort knobs plus the int8 stage-1 flag),
// and whether every such shard could predict it. A shard whose ladder
// stopped early at saturation (final float rung >= 0.999) extends flat for
// wider float settings: more effort cannot lose recall. Int8 settings never
// extend — they must have been measured on every shard.
func (p *enginePlanner) minRecallAt(nprobe, ef int, int8Scan bool) (float64, bool) {
	minR := 1.0
	for i := range p.stats {
		st := &p.stats[i]
		if st.Entities == 0 {
			continue
		}
		r, ok := -1.0, false
		for _, rung := range st.Rungs {
			if rung.NProbe == nprobe && rung.Ef == ef && rung.Int8 == int8Scan {
				r, ok = rung.MinRecall, true
				break
			}
		}
		if !ok && !int8Scan && len(st.Rungs) > 0 {
			last := st.Rungs[len(st.Rungs)-1]
			if !last.Int8 && last.MinRecall >= 0.999 && (nprobe > last.NProbe || ef > last.Ef) {
				r, ok = last.MinRecall, true
			}
		}
		if !ok {
			return 0, false
		}
		if r < minR {
			minR = r
		}
	}
	return minR, true
}

// ladderSettings returns the union of every non-empty shard's calibrated
// settings in ascending effort order; at equal effort knobs the int8 rung
// (the cheaper stage-1 scorer) sorts first.
func (p *enginePlanner) ladderSettings() []core.Rung {
	type setting struct {
		np, ef int
		i8     bool
	}
	seen := make(map[setting]bool)
	var out []core.Rung
	for i := range p.stats {
		if p.stats[i].Entities == 0 {
			continue
		}
		for _, rung := range p.stats[i].Rungs {
			k := setting{rung.NProbe, rung.Ef, rung.Int8}
			if !seen[k] {
				seen[k] = true
				out = append(out, core.Rung{NProbe: rung.NProbe, Ef: rung.Ef, Int8: rung.Int8})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NProbe != out[j].NProbe {
			return out[i].NProbe < out[j].NProbe
		}
		if out[i].Ef != out[j].Ef {
			return out[i].Ef < out[j].Ef
		}
		return out[i].Int8 && !out[j].Int8
	})
	return out
}

// shardDepths projects each shard's contribution to the global top-FastK
// by scoring the query against every shard's weighted selectivity sample,
// then assigns per-shard depths with a 2x-plus-slack safety factor. When
// the combined samples are too sparse to resolve FastK hits (fewer than
// 4*FastK weighted vectors), every shard keeps full depth.
func (p *enginePlanner) shardDepths(q mat.Vec, fastK int) []int {
	type scored struct {
		score  float32
		shard  int
		weight int
	}
	var all []scored
	totalWeight := 0
	for i := range p.stats {
		st := &p.stats[i]
		if st.Dim == 0 || len(st.Sample) == 0 {
			continue
		}
		w := st.SampleEvery
		if w < 1 {
			w = 1
		}
		n := len(st.Sample) / st.Dim
		for j := 0; j < n; j++ {
			v := st.Sample[j*st.Dim : (j+1)*st.Dim]
			all = append(all, scored{score: mat.Dot(q, v), shard: i, weight: w})
			totalWeight += w
		}
	}
	if totalWeight < 4*fastK {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	est := make([]int, len(p.stats))
	acc := 0
	for _, s := range all {
		if acc >= fastK {
			break
		}
		est[s.shard] += s.weight
		acc += s.weight
	}
	depths := make([]int, len(p.stats))
	for i := range depths {
		d := est[i]*2 + 32
		if d > fastK {
			d = fastK
		}
		if p.stats[i].Entities == 0 {
			d = fastK // empty shard answers instantly at any depth
		}
		depths[i] = d
	}
	return depths
}

// rarestTermFrames estimates the query's matchable keyframes corpus-wide:
// the smallest fast-term frame count, summed across shards (shards
// partition the corpus, so counts add).
func (p *enginePlanner) rarestTermFrames(text string) (int, bool) {
	parsed := query.Parse(text)
	terms := parsed.FastTerms()
	if len(terms) == 0 {
		return 0, false
	}
	totals := make(map[string]int)
	for i := range p.stats {
		for _, tc := range p.stats[i].Terms {
			totals[tc.Name] += tc.Frames
		}
	}
	m, found := 0, false
	for _, t := range terms {
		frames := totals[t.Name]
		if !found || frames < m {
			m, found = frames, true
		}
	}
	return m, found
}

// plan resolves one bounded query into a scatter plan (see the type
// comment for the strategy).
func (p *enginePlanner) plan(ctx context.Context, e *Engine, text string, opts core.QueryOptions) core.Plan {
	base := e.cfg.FixedPlan(opts)
	exact := func() core.Plan {
		x := base
		x.Exact = true
		x.Int8 = false
		x.Kind = core.PlanAdaptiveExact
		x.PredictedRecall = 1
		return x
	}
	if opts.Exhaustive {
		return exact()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.refreshStatsLocked(e) {
		return exact()
	}
	anyData := false
	for i := range p.stats {
		if p.stats[i].Entities > 0 {
			if !p.stats[i].Calibrated {
				return exact()
			}
			anyData = true
		}
	}
	if !anyData {
		return exact()
	}
	need := opts.MinRecall + p.margin
	var chosen *core.Rung
	var predicted float64
	for _, setting := range p.ladderSettings() {
		r, ok := p.minRecallAt(setting.NProbe, setting.Ef, setting.Int8)
		if ok && r >= need {
			s := setting
			chosen, predicted = &s, r
			break
		}
	}
	if chosen == nil {
		return exact()
	}
	pl := base
	pl.Kind = core.PlanAdaptive
	pl.PredictedRecall = predicted
	pl.Int8 = chosen.Int8
	if chosen.NProbe > 0 {
		pl.NProbe = chosen.NProbe
	}
	if chosen.Ef > 0 {
		pl.Ef = chosen.Ef
	}
	if q, err := p.enc.Encode(text); err == nil {
		pl.ShardKs = p.shardDepths(q, pl.FastK)
	}
	if !pl.SkipRerank {
		if m, ok := p.rarestTermFrames(text); ok {
			pl.RerankFrames = core.AdaptRerankBudget(m, base.RerankFrames, base.TopN)
		}
	}
	p.planned++
	if p.validateEvery > 0 && p.planned%p.validateEvery == 0 {
		si := p.validateRR % len(e.backends)
		p.validateRR++
		if measured, err := e.shardStageRecall(ctx, si, text, pl); err == nil {
			p.lastMeasured = measured
			if measured < opts.MinRecall {
				grow := p.margin + (opts.MinRecall - measured) + 0.01
				if grow > 0.25 {
					grow = 0.25
				}
				p.margin = grow
				return exact()
			}
			if measured-opts.MinRecall > p.margin && p.margin > 0.01 {
				p.margin *= 0.9
			}
		}
	}
	return pl
}

// shardStageRecall measures one shard's stage-1 recall for a plan leg
// against that shard's exact leg — the engine validation probe (one shard
// per validation, round-robin, instead of a full exact scatter).
func (e *Engine) shardStageRecall(ctx context.Context, i int, text string, plan core.Plan) (float64, error) {
	plan = e.cfg.NormalizePlan(plan)
	xp := plan.Leg(i)
	xp.Exact = true
	xp.ShardK = plan.FastK
	exact, err := e.backends[i].FastSearch(ctx, text, xp)
	if err != nil {
		return 0, err
	}
	if len(exact) == 0 {
		return 1, nil
	}
	hits, err := e.backends[i].FastSearch(ctx, text, plan.Leg(i))
	if err != nil {
		return 0, err
	}
	ids := make(map[int64]bool, len(hits))
	for _, h := range hits {
		ids[h.PatchID] = true
	}
	overlap := 0
	for _, h := range exact {
		if ids[h.PatchID] {
			overlap++
		}
	}
	return float64(overlap) / float64(len(exact)), nil
}

// StageRecall measures a plan's global stage-1 recall against the exact
// scatter's merged top-FastK — the bench harness's "measured recall"
// column for engine deployments.
func (e *Engine) StageRecall(text string, plan core.Plan) (float64, error) {
	plan = e.cfg.NormalizePlan(plan)
	xp := plan
	xp.Exact = true
	xp.ShardKs = nil
	xp.ShardK = plan.FastK
	target := engineTarget{e}
	//lovo:ctx-ok bench-harness measurement API with no caller context; the traced path is the inline validation probe (shardStageRecall)
	exactLists, err := target.ScatterSearch(context.Background(), text, xp)
	if err != nil {
		return 0, err
	}
	exact := core.MergeHits(exactLists, plan.FastK)
	if len(exact) == 0 {
		return 1, nil
	}
	//lovo:ctx-ok bench-harness measurement API with no caller context; the traced path is the inline validation probe (shardStageRecall)
	lists, err := target.ScatterSearch(context.Background(), text, plan)
	if err != nil {
		return 0, err
	}
	approx := core.MergeHits(lists, plan.FastK)
	ids := make(map[int64]bool, len(approx))
	for _, h := range approx {
		ids[h.PatchID] = true
	}
	overlap := 0
	for _, h := range exact {
		if ids[h.PatchID] {
			overlap++
		}
	}
	return float64(overlap) / float64(len(exact)), nil
}

// LastMeasuredRecall reports the engine planner's most recent validation
// measurement (0 until the loop has run).
func (e *Engine) LastMeasuredRecall() float64 {
	e.planner.mu.Lock()
	defer e.planner.mu.Unlock()
	return e.planner.lastMeasured
}
