// Package shard implements LOVO's horizontal scaling tier: a scatter-gather
// engine over N independent core.System shards partitioned by video ID.
//
// LOVO's one-time, query-agnostic extraction makes the corpus trivially
// partitionable — a video's keyframes, patch vectors and relational rows
// never reference another video — so each shard runs the full single-system
// pipeline over its slice of the corpus. Queries scatter both stages:
// stage-1 fast search runs on every shard and the per-shard hit lists merge
// into the global top-fastK (descending score, ascending patch ID — the
// same canonical order every index kind produces), and stage-2 rerank
// candidates route back to the shard owning each keyframe. Because the
// engine composes the exact stage functions core.System.Query composes, a
// one-shard engine answers byte-identically to the single-system path, and
// an N-shard engine under exact search differs only in index approximation,
// not in merge logic.
package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/video"
)

// Engine is a sharded LOVO deployment: N core systems behind one
// scatter-gather query path. All methods are safe for concurrent use;
// queries may run while ingest continues, exactly as on a single system.
type Engine struct {
	shards []*core.System
	cfg    core.Config // defaults resolved by the first shard
}

// New constructs an engine with n shards, each a full core.System built
// from cfg (equal seeds, so every shard encodes identically and a keyframe
// grounds to the same score regardless of which shard owns it).
func New(n int, cfg core.Config) (*Engine, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	e := &Engine{shards: make([]*core.System, n)}
	for i := range e.shards {
		s, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: creating shard %d: %w", i, err)
		}
		e.shards[i] = s
	}
	e.cfg = e.shards[0].Config()
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard exposes one underlying system (stats, experiments).
func (e *Engine) Shard(i int) *core.System { return e.shards[i] }

// owner maps a video ID to its shard: videos partition by ID modulo N.
func (e *Engine) owner(videoID int) int {
	o := videoID % len(e.shards)
	if o < 0 {
		o += len(e.shards)
	}
	return o
}

// Ingest routes one video to its owning shard.
func (e *Engine) Ingest(v *video.Video) error {
	return e.shards[e.owner(v.ID)].Ingest(v)
}

// IngestDataset fans the dataset out across shards in parallel: each shard
// ingests its own videos in dataset order on one goroutine, so per-shard
// state is byte-identical to a serial ingest of that shard's slice.
func (e *Engine) IngestDataset(ds *datasets.Dataset) error {
	byShard := make([][]*video.Video, len(e.shards))
	for i := range ds.Videos {
		v := &ds.Videos[i]
		o := e.owner(v.ID)
		byShard[o] = append(byShard[o], v)
	}
	errs := make([]error, len(e.shards))
	core.ParallelFor(len(e.shards), len(e.shards), func(i int) {
		for _, v := range byShard[i] {
			if err := e.shards[i].Ingest(v); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
		}
	})
	return firstErr(errs)
}

// BuildIndex builds every non-empty shard's index in parallel. Empty shards
// (fewer videos than shards) are skipped — they answer queries with zero
// hits either way.
func (e *Engine) BuildIndex() error {
	errs := make([]error, len(e.shards))
	core.ParallelFor(len(e.shards), len(e.shards), func(i int) {
		if e.shards[i].Entities() == 0 {
			return
		}
		if err := e.shards[i].BuildIndex(); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
		}
	})
	return firstErr(errs)
}

// Query answers a natural-language object query with both stages scattered:
// every shard fast-searches its local index, the hit lists merge into the
// deterministic global top-fastK, and each candidate frame reranks on the
// shard that owns its keyframe. The final ranking runs the same
// core.RankGroundings the single-system path runs.
func (e *Engine) Query(text string, opts core.QueryOptions) (*core.Result, error) {
	fastK := opts.FastK
	if fastK == 0 {
		fastK = e.cfg.FastK
	}
	topN := opts.TopN
	if topN == 0 {
		topN = e.cfg.TopN
	}
	res := &core.Result{}

	// Stage 1 scatter: local top-fastK per shard, merged to global top-fastK.
	lists := make([][]core.ResultObject, len(e.shards))
	errs := make([]error, len(e.shards))
	start := time.Now()
	core.ParallelFor(len(e.shards), len(e.shards), func(i int) {
		fh, err := e.shards[i].FastSearch(text, opts)
		if err != nil {
			errs[i] = err
			return
		}
		lists[i] = fh.Objects
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	merged := core.MergeHits(lists, fastK)
	refs := core.CandidateFrames(merged)
	res.CandidateFrames = len(refs)
	res.FastSearch = time.Since(start)

	if opts.DisableRerank {
		res.Objects = core.DedupHits(merged, fastK)
		return res, nil
	}

	// Stage 2 scatter: ground each candidate on its owning shard, then
	// reassemble groundings in global candidate order so the final
	// ranking sees exactly what a single system would.
	rerankFrames := opts.RerankFrames
	if rerankFrames == 0 {
		rerankFrames = e.cfg.RerankFrames
	}
	rstart := time.Now()
	refs = core.SelectForRerank(refs, rerankFrames)
	type routed struct {
		refs []core.FrameRef
		pos  []int
	}
	byShard := make([]routed, len(e.shards))
	for pos, ref := range refs {
		o := e.owner(ref.VideoID)
		byShard[o].refs = append(byShard[o].refs, ref)
		byShard[o].pos = append(byShard[o].pos, pos)
	}
	groundings := make([]core.Grounding, len(refs))
	core.ParallelFor(len(e.shards), len(e.shards), func(i int) {
		if len(byShard[i].refs) == 0 {
			return
		}
		gs := e.shards[i].GroundCandidates(text, byShard[i].refs, opts.Workers)
		for j, g := range gs {
			groundings[byShard[i].pos[j]] = g
		}
	})
	res.Objects = core.RankGroundings(groundings, topN)
	res.Rerank = time.Since(rstart)
	return res, nil
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero inherits Config.Workers, which defaults to
// runtime.NumCPU()). Results align with texts; the first failing query
// aborts the batch with its error once in-flight queries drain.
func (e *Engine) QueryBatch(texts []string, opts core.QueryOptions, clients int) ([]*core.Result, error) {
	if clients == 0 {
		clients = e.cfg.Workers
	}
	clients = core.ResolveWorkers(clients)
	// As on a single system: with many concurrent clients, per-query
	// rerank parallelism would only oversubscribe the cores.
	if opts.Workers == 0 && clients > 1 {
		opts.Workers = 1
	}
	results := make([]*core.Result, len(texts))
	errs := make([]error, len(texts))
	core.ParallelFor(len(texts), clients, func(i int) {
		results[i], errs[i] = e.Query(texts[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: batch query %d (%q): %w", i, texts[i], err)
		}
	}
	return results, nil
}

// Stats aggregates ingest statistics across shards. Counter fields sum;
// duration fields sum too, so they report aggregate shard-time, not
// wall-clock (shards ingest in parallel).
func (e *Engine) Stats() core.IngestStats {
	var agg core.IngestStats
	for _, s := range e.shards {
		st := s.Stats()
		agg.Videos += st.Videos
		agg.Frames += st.Frames
		agg.Keyframes += st.Keyframes
		agg.Tokens += st.Tokens
		agg.Processing += st.Processing
		agg.Indexing += st.Indexing
	}
	return agg
}

// Entities returns the total indexed patch vectors across shards.
func (e *Engine) Entities() int {
	n := 0
	for _, s := range e.shards {
		n += s.Entities()
	}
	return n
}

// Built reports whether every non-empty shard has built its index.
func (e *Engine) Built() bool {
	for _, s := range e.shards {
		if s.Entities() > 0 && !s.Built() {
			return false
		}
	}
	return true
}

// IngestGen sums the shard mutation generations; any ingest or index build
// anywhere advances it, which is all a result cache needs.
func (e *Engine) IngestGen() uint64 {
	var g uint64
	for _, s := range e.shards {
		g += s.IngestGen()
	}
	return g
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot format: magic, shard count, then each shard's system snapshot
// in shard order, length-prefixed (uint64) — the per-system loader reads
// through buffered decoders that may consume past their own section, so
// each shard gets a bounded segment of the stream.
const snapMagic = "LOVOSHD1\n"

// SaveSnapshot persists every shard's full state. Must not run
// concurrently with ingest or index builds.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(e.shards))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for i, s := range e.shards {
		buf.Reset()
		if err := s.SaveSnapshot(&buf); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot restores a snapshot written by SaveSnapshot into this
// freshly-constructed engine. The shard count and Config must match the
// saver's.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	head := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("shard: reading snapshot magic: %w", err)
	}
	if string(head) != snapMagic {
		return fmt.Errorf("shard: bad snapshot magic %q", head)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(e.shards) {
		return fmt.Errorf("shard: snapshot has %d shards, engine has %d", n, len(e.shards))
	}
	for i, s := range e.shards {
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return fmt.Errorf("shard %d: reading snapshot size: %w", i, err)
		}
		seg := io.LimitReader(r, int64(size))
		if err := s.LoadSnapshot(seg); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		// The shard loader's buffered readers may leave a tail unread.
		if _, err := io.Copy(io.Discard, seg); err != nil {
			return err
		}
	}
	return nil
}
