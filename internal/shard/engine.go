// Package shard implements LOVO's horizontal scaling tier: a scatter-gather
// engine over N independent shards partitioned by video ID, each shard a
// replica group of R byte-identical core.Systems.
//
// LOVO's one-time, query-agnostic extraction makes the corpus trivially
// partitionable — a video's keyframes, patch vectors and relational rows
// never reference another video — so each shard runs the full single-system
// pipeline over its slice of the corpus. Queries scatter both stages:
// stage-1 fast search runs on every shard and the per-shard hit lists merge
// into the global top-fastK (descending score, ascending patch ID — the
// same canonical order every index kind produces), and stage-2 rerank
// candidates route back to the shard owning each keyframe. Because the
// engine composes the exact stage functions core.System.Query composes, a
// one-shard engine answers byte-identically to the single-system path, and
// an N-shard engine under exact search differs only in index approximation,
// not in merge logic.
//
// Replication multiplies each shard into R equal-seeded systems: ingest
// and index builds fan out to every replica of the owning group, so the
// replicas stay byte-identical by construction, and each query leg picks
// one replica (round-robin with an in-flight-aware tiebreak). A replica
// that returns a fault is marked unhealthy and the request transparently
// retries the next healthy one — the answer is the same bytes whichever
// replica serves it, so failover is invisible to callers as long as one
// replica per group survives.
package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/video"
)

// Engine is a sharded LOVO deployment: N replica groups behind one
// scatter-gather query path. All methods are safe for concurrent use;
// queries may run while ingest continues, exactly as on a single system.
type Engine struct {
	groups []*replicaGroup
	cfg    core.Config // defaults resolved by the first system
	// faultHook, when set (tests only), may inject an error before a
	// replica call, exercising the failover path.
	faultHook func(group, replica int) error
}

// New constructs an engine with n shards of one replica each.
func New(n int, cfg core.Config) (*Engine, error) {
	return NewReplicated(n, 1, cfg)
}

// NewReplicated constructs an engine with n shards of r replicas each —
// n*r full core.Systems built from cfg. Equal seeds mean every system
// encodes identically: a keyframe grounds to the same score regardless of
// which shard owns it, and the replicas of a group answer with the same
// bytes regardless of which one is picked.
func NewReplicated(n, r int, cfg core.Config) (*Engine, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if r <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 replica per shard, got %d", r)
	}
	e := &Engine{groups: make([]*replicaGroup, n)}
	for i := range e.groups {
		g, err := newReplicaGroup(r, cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: creating shard %d: %w", i, err)
		}
		e.groups[i] = g
	}
	e.cfg = e.groups[0].replicas[0].Config()
	return e, nil
}

// Shards returns the shard (replica group) count.
func (e *Engine) Shards() int { return len(e.groups) }

// Shard exposes one group's primary replica (stats, experiments). Every
// replica of the group holds the same bytes, so the primary speaks for all.
func (e *Engine) Shard(i int) *core.System { return e.groups[i].replicas[0] }

// Replica exposes one specific replica of one group (tests, experiments).
func (e *Engine) Replica(group, replica int) *core.System {
	return e.groups[group].replicas[replica]
}

// owner maps a video ID to its shard: videos partition by ID modulo N.
func (e *Engine) owner(videoID int) int {
	o := videoID % len(e.groups)
	if o < 0 {
		o += len(e.groups)
	}
	return o
}

// Ingest routes one video to every replica of its owning group. Failed
// replicas ingest too: failure is a routing state, and a revived replica
// must hold the same corpus as its peers. Every replica is attempted even
// when one errors — aborting mid-fan-out would leave the group diverged —
// and if the error hits only some replicas (a nondeterministic fault; a
// deterministic one reproduces on all byte-identical peers), the diverged
// replicas are pulled from routing so the group keeps answering with one
// consistent corpus.
func (e *Engine) Ingest(v *video.Video) error {
	gi := e.owner(v.ID)
	g := e.groups[gi]
	errs := make([]error, len(g.replicas))
	anyOK := false
	for ri, s := range g.replicas {
		if errs[ri] = s.Ingest(v); errs[ri] == nil {
			anyOK = true
		}
	}
	var first error
	for ri, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = fmt.Errorf("shard %d replica %d: %w", gi, ri, err)
		}
		if anyOK {
			g.state[ri].failed.Store(true)
		}
	}
	return first
}

// IngestDataset fans the dataset out across all n*r replicas in parallel:
// each replica ingests its group's videos in dataset order on one
// goroutine, so per-replica state is byte-identical to a serial ingest of
// that group's slice — and therefore identical across the group.
func (e *Engine) IngestDataset(ds *datasets.Dataset) error {
	byGroup := make([][]*video.Video, len(e.groups))
	for i := range ds.Videos {
		v := &ds.Videos[i]
		o := e.owner(v.ID)
		byGroup[o] = append(byGroup[o], v)
	}
	r := e.Replicas()
	units := len(e.groups) * r
	errs := make([]error, units)
	core.ParallelFor(units, units, func(u int) {
		gi, ri := u/r, u%r
		sys := e.groups[gi].replicas[ri]
		for _, v := range byGroup[gi] {
			if err := sys.Ingest(v); err != nil {
				errs[u] = fmt.Errorf("shard %d replica %d: %w", gi, ri, err)
				return
			}
		}
	})
	// A replica that aborted while a peer completed is behind its group —
	// pull it from routing so queries only see consistent corpora (as in
	// Ingest, a deterministic fault hits every replica and marks none).
	for gi, g := range e.groups {
		anyOK, anyErr := false, false
		for ri := 0; ri < r; ri++ {
			if errs[gi*r+ri] == nil {
				anyOK = true
			} else {
				anyErr = true
			}
		}
		if anyOK && anyErr {
			for ri := 0; ri < r; ri++ {
				if errs[gi*r+ri] != nil {
					g.state[ri].failed.Store(true)
				}
			}
		}
	}
	return firstErr(errs)
}

// BuildIndex builds every non-empty replica's index in parallel. Empty
// shards (fewer videos than shards) are skipped — they answer queries with
// zero hits either way.
func (e *Engine) BuildIndex() error {
	r := e.Replicas()
	units := len(e.groups) * r
	errs := make([]error, units)
	core.ParallelFor(units, units, func(u int) {
		gi, ri := u/r, u%r
		sys := e.groups[gi].replicas[ri]
		if sys.Entities() == 0 {
			return
		}
		if err := sys.BuildIndex(); err != nil {
			errs[u] = fmt.Errorf("shard %d replica %d: %w", gi, ri, err)
		}
	})
	return firstErr(errs)
}

// Query answers a natural-language object query with both stages scattered:
// every shard fast-searches its local index on one picked replica, the hit
// lists merge into the deterministic global top-fastK, and each candidate
// frame reranks on a replica of the shard that owns its keyframe. The
// final ranking runs the same core.RankGroundings the single-system path
// runs, and the answer is independent of which replicas served.
func (e *Engine) Query(text string, opts core.QueryOptions) (*core.Result, error) {
	fastK := opts.FastK
	if fastK == 0 {
		fastK = e.cfg.FastK
	}
	topN := opts.TopN
	if topN == 0 {
		topN = e.cfg.TopN
	}
	res := &core.Result{}

	// Stage 1 scatter: local top-fastK per shard, merged to global top-fastK.
	lists := make([][]core.ResultObject, len(e.groups))
	errs := make([]error, len(e.groups))
	start := time.Now()
	core.ParallelFor(len(e.groups), len(e.groups), func(i int) {
		errs[i] = e.withReplica(i, func(sys *core.System) error {
			fh, err := sys.FastSearch(text, opts)
			if err != nil {
				return err
			}
			lists[i] = fh.Objects
			return nil
		})
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	merged := core.MergeHits(lists, fastK)
	refs := core.CandidateFrames(merged)
	res.CandidateFrames = len(refs)
	res.FastSearch = time.Since(start)

	if opts.DisableRerank {
		res.Objects = core.DedupHits(merged, fastK)
		return res, nil
	}

	// Stage 2 scatter: ground each candidate on a replica of its owning
	// shard, then reassemble groundings in global candidate order so the
	// final ranking sees exactly what a single system would.
	rerankFrames := opts.RerankFrames
	if rerankFrames == 0 {
		rerankFrames = e.cfg.RerankFrames
	}
	rstart := time.Now()
	refs = core.SelectForRerank(refs, rerankFrames)
	type routed struct {
		refs []core.FrameRef
		pos  []int
	}
	byGroup := make([]routed, len(e.groups))
	for pos, ref := range refs {
		o := e.owner(ref.VideoID)
		byGroup[o].refs = append(byGroup[o].refs, ref)
		byGroup[o].pos = append(byGroup[o].pos, pos)
	}
	groundings := make([]core.Grounding, len(refs))
	gerrs := make([]error, len(e.groups))
	core.ParallelFor(len(e.groups), len(e.groups), func(i int) {
		if len(byGroup[i].refs) == 0 {
			return
		}
		gerrs[i] = e.withReplica(i, func(sys *core.System) error {
			gs := sys.GroundCandidates(text, byGroup[i].refs, opts.Workers)
			for j, g := range gs {
				groundings[byGroup[i].pos[j]] = g
			}
			return nil
		})
	})
	if err := firstErr(gerrs); err != nil {
		return nil, err
	}
	res.Objects = core.RankGroundings(groundings, topN)
	res.Rerank = time.Since(rstart)
	return res, nil
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero inherits Config.Workers, which defaults to
// runtime.NumCPU()). Results align with texts; the first failing query
// aborts the batch with its error once in-flight queries drain.
func (e *Engine) QueryBatch(texts []string, opts core.QueryOptions, clients int) ([]*core.Result, error) {
	if clients == 0 {
		clients = e.cfg.Workers
	}
	clients = core.ResolveWorkers(clients)
	// As on a single system: with many concurrent clients, per-query
	// rerank parallelism would only oversubscribe the cores.
	if opts.Workers == 0 && clients > 1 {
		opts.Workers = 1
	}
	results := make([]*core.Result, len(texts))
	errs := make([]error, len(texts))
	core.ParallelFor(len(texts), clients, func(i int) {
		results[i], errs[i] = e.Query(texts[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: batch query %d (%q): %w", i, texts[i], err)
		}
	}
	return results, nil
}

// Stats aggregates ingest statistics across shards, counting each group's
// primary replica once — replicas hold the same corpus, so an R-replica
// engine reports the same statistics as an R=1 engine. Counter fields sum;
// duration fields sum too, so they report aggregate shard-time, not
// wall-clock (shards ingest in parallel).
func (e *Engine) Stats() core.IngestStats {
	var agg core.IngestStats
	for _, g := range e.groups {
		st := g.replicas[0].Stats()
		agg.Videos += st.Videos
		agg.Frames += st.Frames
		agg.Keyframes += st.Keyframes
		agg.Tokens += st.Tokens
		agg.Processing += st.Processing
		agg.Indexing += st.Indexing
	}
	return agg
}

// Entities returns the total indexed patch vectors across shards (one
// replica per group; copies don't multiply the corpus).
func (e *Engine) Entities() int {
	n := 0
	for _, g := range e.groups {
		n += g.replicas[0].Entities()
	}
	return n
}

// Built reports whether every non-empty replica has built its index.
func (e *Engine) Built() bool {
	for _, g := range e.groups {
		for _, s := range g.replicas {
			if s.Entities() > 0 && !s.Built() {
				return false
			}
		}
	}
	return true
}

// IngestGen sums each group's minimum replica mutation generation; any
// ingest or index build anywhere advances it once every replica has it,
// which is all a result cache needs. The minimum — not the primary's value
// — matters mid-fan-out: a query may be served by a replica that hasn't
// received the newest video yet, and stamping its answer with a generation
// the laggard hasn't reached would let that stale answer survive in a
// cache forever. Under the minimum, the engine generation only advances
// after the laggard catches up, invalidating anything computed before.
func (e *Engine) IngestGen() uint64 {
	var total uint64
	for _, grp := range e.groups {
		gen := grp.replicas[0].IngestGen()
		for _, s := range grp.replicas[1:] {
			if sg := s.IngestGen(); sg < gen {
				gen = sg
			}
		}
		total += gen
	}
	return total
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot format: magic, shard count, then one replica's system snapshot
// per group in shard order, length-prefixed (uint64) — the per-system
// loader reads through buffered decoders that may consume past their own
// section, so each shard gets a bounded segment of the stream. Replicas
// are byte-identical, so one copy per group is the whole engine; the
// replica count is deliberately absent from the format, letting any R load
// a snapshot saved under any other R.
const snapMagic = "LOVOSHD1\n"

// SaveSnapshot persists one copy of every shard's state (the primary
// replica speaks for its byte-identical group). Must not run concurrently
// with ingest or index builds.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(e.groups))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for i, g := range e.groups {
		buf.Reset()
		if err := g.replicas[0].SaveSnapshot(&buf); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot restores a snapshot written by SaveSnapshot into this
// freshly-constructed engine, fanning each group's segment out to all R
// replicas. The shard count and Config must match the saver's; the replica
// count need not.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	head := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("shard: reading snapshot magic: %w", err)
	}
	if string(head) != snapMagic {
		return fmt.Errorf("shard: bad snapshot magic %q", head)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(e.groups) {
		return fmt.Errorf("shard: snapshot has %d shards, engine has %d", n, len(e.groups))
	}
	for i, g := range e.groups {
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return fmt.Errorf("shard %d: reading snapshot size: %w", i, err)
		}
		seg := make([]byte, size)
		if _, err := io.ReadFull(r, seg); err != nil {
			return fmt.Errorf("shard %d: reading snapshot segment: %w", i, err)
		}
		for ri, s := range g.replicas {
			if err := s.LoadSnapshot(bytes.NewReader(seg)); err != nil {
				return fmt.Errorf("shard %d replica %d: %w", i, ri, err)
			}
		}
	}
	return nil
}
