// Package shard implements LOVO's horizontal scaling tier: a scatter-gather
// engine over N independent shards partitioned by video ID, each shard a
// replica group of R byte-identical core.Systems — hosted in-process
// (Local) or on another host behind the RPC boundary (remote.Client).
//
// LOVO's one-time, query-agnostic extraction makes the corpus trivially
// partitionable — a video's keyframes, patch vectors and relational rows
// never reference another video — so each shard runs the full single-system
// pipeline over its slice of the corpus. Queries scatter both stages:
// stage-1 fast search runs on every shard and the per-shard hit lists merge
// into the global top-fastK (descending score, ascending patch ID — the
// same canonical order every index kind produces), and stage-2 rerank
// candidates route back to the shard owning each keyframe. Because the
// engine composes the exact stage functions core.System.Query composes, a
// one-shard engine answers byte-identically to the single-system path, and
// an N-shard engine under exact search differs only in index approximation,
// not in merge logic. The same holds whether a shard answers from this
// process or over the wire — the conformance suite in internal/remote pins
// remote answers bit-identical to local ones.
//
// Replication multiplies each shard into R equal-seeded systems: ingest
// and index builds fan out to every replica of the owning shard, so the
// replicas stay byte-identical by construction, and each query leg picks
// one replica (round-robin with an in-flight-aware tiebreak). A replica
// that returns a fault is marked unhealthy and the request transparently
// retries the next healthy one — the answer is the same bytes whichever
// replica serves it, so failover is invisible to callers as long as one
// replica per shard survives. For remote shards this failover runs
// worker-side; the coordinator additionally retries transport faults on
// fresh connections, and a shard that stays unreachable fails the query
// cleanly — a partial merge is never returned.
package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// Engine is a sharded LOVO deployment: N shard backends behind one
// scatter-gather query path. All methods are safe for concurrent use;
// queries may run while ingest continues, exactly as on a single system.
type Engine struct {
	backends []remote.ShardBackend
	cfg      core.Config // defaults resolved
	replicas int         // R when uniform (local constructors), 0 otherwise
	// lastGen caches the last generation each backend reported, so an
	// unreachable remote shard doesn't wobble the engine generation (and
	// with it, cache validity) while it is down.
	lastGen []atomic.Uint64
	// bootID remembers each remote backend's server-instance nonce
	// (0 = not yet learned).
	bootID []atomic.Uint64
	// stateLost marks a backend whose worker restarted empty after this
	// engine recorded ingest progress on it: its generation regressed to
	// zero, or its boot nonce changed. Serving on would silently drop that
	// shard's slice from every merge, so a state-lost backend reports
	// unhealthy and fails Built() until a snapshot restore (LoadSnapshot
	// clears the mark) or a coordinator reboot.
	stateLost []atomic.Bool
	// faultHook, when set (tests only), may inject an error before a
	// replica call on a local backend, exercising the failover path.
	faultHook func(group, replica int) error
	// planner resolves accuracy-bounded queries into scatter plans from
	// the shards' exported planning digests.
	planner *enginePlanner
}

// New constructs an engine with n in-process shards of one replica each.
func New(n int, cfg core.Config) (*Engine, error) {
	return NewReplicated(n, 1, cfg)
}

// NewReplicated constructs an engine with n in-process shards of r replicas
// each — n*r full core.Systems built from cfg. Equal seeds mean every
// system encodes identically: a keyframe grounds to the same score
// regardless of which shard owns it, and the replicas of a shard answer
// with the same bytes regardless of which one is picked.
func NewReplicated(n, r int, cfg core.Config) (*Engine, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if r <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 replica per shard, got %d", r)
	}
	backends := make([]remote.ShardBackend, n)
	locals := make([]*Local, n)
	for i := range backends {
		l, err := NewLocal(r, cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: creating shard %d: %w", i, err)
		}
		locals[i] = l
		backends[i] = l
	}
	e, err := NewWithBackends(backends, cfg)
	if err != nil {
		return nil, err
	}
	e.replicas = r
	// Route the engine-level test fault hook into each local group.
	for gi, l := range locals {
		gi := gi
		l.faultHook = func(ri int) error {
			if h := e.faultHook; h != nil {
				return h(gi, ri)
			}
			return nil
		}
	}
	return e, nil
}

// NewWithBackends constructs an engine over an explicit backend set — any
// mix of in-process shards (Local) and remote workers (remote.Client). The
// backends must be freshly constructed (or all restored from the same
// snapshot) and share the coordinator's seed and index configuration; the
// serving tier verifies remote configs at boot via remote.VerifyConfig.
func NewWithBackends(backends []remote.ShardBackend, cfg core.Config) (*Engine, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: need at least 1 backend")
	}
	e := &Engine{
		backends:  backends,
		cfg:       cfg.Resolved(),
		lastGen:   make([]atomic.Uint64, len(backends)),
		bootID:    make([]atomic.Uint64, len(backends)),
		stateLost: make([]atomic.Bool, len(backends)),
	}
	e.planner = newEnginePlanner(e.cfg)
	return e, nil
}

// Shards returns the shard (backend) count.
func (e *Engine) Shards() int { return len(e.backends) }

// Backend exposes one shard backend (tests, experiments).
func (e *Engine) Backend(i int) remote.ShardBackend { return e.backends[i] }

// local asserts shard i is hosted in-process — the per-replica surface
// below (Shard, Replica, FailReplica, ReviveReplica) only exists for local
// backends; remote workers manage their own replicas.
func (e *Engine) local(i int) *Local {
	l, ok := e.backends[i].(*Local)
	if !ok {
		panic(fmt.Sprintf("shard: shard %d is remote; per-replica access is in-process only", i))
	}
	return l
}

// Shard exposes one in-process shard's primary replica (stats,
// experiments). Every replica of the shard holds the same bytes, so the
// primary speaks for all.
func (e *Engine) Shard(i int) *core.System { return e.local(i).System(0) }

// Replica exposes one specific replica of one in-process shard (tests,
// experiments).
func (e *Engine) Replica(group, replica int) *core.System {
	return e.local(group).System(replica)
}

// owner maps a video ID to its shard: videos partition by ID modulo N.
func (e *Engine) owner(videoID int) int {
	o := videoID % len(e.backends)
	if o < 0 {
		o += len(e.backends)
	}
	return o
}

// Ingest routes one video to its owning shard (which fans it out to every
// replica).
func (e *Engine) Ingest(v *video.Video) error {
	gi := e.owner(v.ID)
	if err := e.backends[gi].Ingest(v); err != nil {
		return fmt.Errorf("shard %d: %w", gi, err)
	}
	return nil
}

// IngestDataset fans the dataset out across shards in parallel: each shard
// ingests its videos in dataset order, so per-shard state is byte-identical
// to a serial ingest of that shard's slice.
func (e *Engine) IngestDataset(ds *datasets.Dataset) error {
	byShard := make([][]*video.Video, len(e.backends))
	for i := range ds.Videos {
		v := &ds.Videos[i]
		o := e.owner(v.ID)
		byShard[o] = append(byShard[o], v)
	}
	errs := make([]error, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		vs := byShard[i]
		if len(vs) == 0 {
			return
		}
		if bi, ok := e.backends[i].(remote.BulkIngester); ok {
			if err := bi.IngestVideos(vs); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
			return
		}
		for _, v := range vs {
			if err := e.backends[i].Ingest(v); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
		}
	})
	return firstErr(errs)
}

// BuildIndex builds every shard's index in parallel.
func (e *Engine) BuildIndex() error {
	errs := make([]error, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		if err := e.backends[i].BuildIndex(); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
		}
	})
	return firstErr(errs)
}

// engineTarget adapts an Engine to the shared executor's N-leg PlanTarget:
// stage 1 scatters every shard with its own plan leg, stage 2 routes each
// candidate frame to the shard owning its keyframe and reassembles
// groundings in global candidate order — so the final ranking sees exactly
// what a single system would.
type engineTarget struct{ e *Engine }

func (t engineTarget) ScatterSearch(ctx context.Context, text string, plan core.Plan) ([][]core.ResultObject, error) {
	e := t.e
	lists := make([][]core.ResultObject, len(e.backends))
	errs := make([]error, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		lctx, lsp := obs.Start(ctx, "stage1.shard")
		if lsp.On() {
			lsp.Detail(fmt.Sprintf("shard=%d", i))
		}
		hits, err := e.backends[i].FastSearch(lctx, text, plan.Leg(i))
		lsp.End()
		if err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		lists[i] = hits
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return lists, nil
}

// batchSearchBackend is the optional batched stage-1 surface a shard
// backend may implement (Local does; remote.Client does not — batched scans
// don't travel the wire, so remote legs fall back to per-query calls).
type batchSearchBackend interface {
	FastSearchBatch(ctx context.Context, texts []string, plans []core.Plan) ([][]core.ResultObject, error)
}

// ScatterSearchBatch implements core.BatchTarget: stage 1 for the WHOLE
// batch is one call per shard — an in-process shard answers every query of
// the batch from one cache-blocked sweep over its slice, a remote shard
// falls back to per-query legs. out[query][shard] holds each query's
// canonical per-leg hit lists, bit-identical to per-query ScatterSearch.
func (t engineTarget) ScatterSearchBatch(ctx context.Context, texts []string, plans []core.Plan) ([][][]core.ResultObject, error) {
	e := t.e
	// byShard[shard][query]: scatter first, transpose after the gather.
	byShard := make([][][]core.ResultObject, len(e.backends))
	errs := make([]error, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		legs := make([]core.Plan, len(plans))
		for qi := range plans {
			legs[qi] = plans[qi].Leg(i)
		}
		lctx, lsp := obs.Start(ctx, "stage1.shard")
		if lsp.On() {
			lsp.Detail(fmt.Sprintf("shard=%d queries=%d", i, len(texts)))
		}
		defer lsp.End()
		if bb, ok := e.backends[i].(batchSearchBackend); ok {
			lists, err := bb.FastSearchBatch(lctx, texts, legs)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			byShard[i] = lists
			return
		}
		lists := make([][]core.ResultObject, len(texts))
		for qi, text := range texts {
			hits, err := e.backends[i].FastSearch(lctx, text, legs[qi])
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			lists[qi] = hits
		}
		byShard[i] = lists
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := make([][][]core.ResultObject, len(texts))
	for qi := range texts {
		out[qi] = make([][]core.ResultObject, len(e.backends))
		for i := range e.backends {
			out[qi][i] = byShard[i][qi]
		}
	}
	return out, nil
}

func (t engineTarget) ScatterGround(ctx context.Context, text string, refs []core.FrameRef, workers int) ([]core.Grounding, error) {
	e := t.e
	type routed struct {
		refs []core.FrameRef
		pos  []int
	}
	byShard := make([]routed, len(e.backends))
	for pos, ref := range refs {
		o := e.owner(ref.VideoID)
		byShard[o].refs = append(byShard[o].refs, ref)
		byShard[o].pos = append(byShard[o].pos, pos)
	}
	groundings := make([]core.Grounding, len(refs))
	gerrs := make([]error, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		if len(byShard[i].refs) == 0 {
			return
		}
		lctx, lsp := obs.Start(ctx, "rerank.shard")
		if lsp.On() {
			lsp.Detail(fmt.Sprintf("shard=%d frames=%d", i, len(byShard[i].refs)))
		}
		gs, err := e.backends[i].GroundCandidates(lctx, text, byShard[i].refs, workers)
		lsp.End()
		if err != nil {
			gerrs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		if len(gs) != len(byShard[i].refs) {
			gerrs[i] = fmt.Errorf("shard %d: %d groundings for %d candidates", i, len(gs), len(byShard[i].refs))
			return
		}
		for j, g := range gs {
			groundings[byShard[i].pos[j]] = g
		}
	})
	if err := firstErr(gerrs); err != nil {
		return nil, err
	}
	return groundings, nil
}

// PlanQuery resolves the plan one query will execute: the pinned plan when
// QueryOptions.Plan is set, the engine planner's cheapest bound-satisfying
// scatter plan when MinRecall is set, and otherwise the fixed default plan.
func (e *Engine) PlanQuery(text string, opts core.QueryOptions) (core.Plan, error) {
	//lovo:ctx-ok public ctx-less wrapper mirroring Query/QueryCtx; PlanQueryCtx is the traced path
	return e.PlanQueryCtx(context.Background(), text, opts)
}

// PlanQueryCtx is PlanQuery with a caller context: the planner's inline
// validation probe fast-searches a shard, and under a traced context that
// probe records its RPC legs in the query's trace instead of vanishing.
// The context never changes which plan is chosen.
func (e *Engine) PlanQueryCtx(ctx context.Context, text string, opts core.QueryOptions) (core.Plan, error) {
	if err := core.ValidateMinRecall(opts.MinRecall); err != nil {
		return core.Plan{}, err
	}
	if opts.Plan != nil {
		return e.cfg.NormalizePlan(*opts.Plan), nil
	}
	if opts.MinRecall > 0 {
		return e.planner.plan(ctx, e, text, opts), nil
	}
	return e.cfg.FixedPlan(opts), nil
}

// QueryPlanned executes an explicit plan through the shared executor — the
// same stage composition core.System.Query runs, scattered across shards,
// so equal plans answer byte-identically on every deployment shape. The
// context carries the tracing recorder (see internal/obs); an untraced
// context runs the allocation-free disabled path.
func (e *Engine) QueryPlanned(ctx context.Context, text string, plan core.Plan, workers int) (*core.Result, error) {
	return core.ExecutePlan(ctx, engineTarget{e}, text, e.cfg.NormalizePlan(plan), workers)
}

// Query answers a natural-language object query with both stages scattered:
// every shard fast-searches its local index under its plan leg, the hit
// lists merge into the deterministic global top-fastK, and each candidate
// frame reranks on the shard that owns its keyframe. The final ranking runs
// the same core.RankGroundings the single-system path runs, and the answer
// is independent of which replicas — or hosts — served. Any shard leg that
// fails (after worker-side failover and transport retries) fails the whole
// query: a partial merge is never returned.
func (e *Engine) Query(text string, opts core.QueryOptions) (*core.Result, error) {
	//lovo:ctx-ok public ctx-less wrapper; QueryCtx is the traced path
	return e.QueryCtx(context.Background(), text, opts)
}

// QueryCtx is Query with a caller context, so a traced caller sees plan
// resolution and both scattered stages — down to per-shard legs, replica
// attempts and remote-worker spans — in its trace. Tracing never changes
// the answer.
func (e *Engine) QueryCtx(ctx context.Context, text string, opts core.QueryOptions) (*core.Result, error) {
	pctx, psp := obs.Start(ctx, "plan")
	plan, err := e.PlanQueryCtx(pctx, text, opts)
	psp.End()
	if err != nil {
		return nil, err
	}
	return e.QueryPlanned(ctx, text, plan, opts.Workers)
}

// QueryBatch answers many queries concurrently across at most clients
// goroutines (zero inherits Config.Workers, which defaults to
// runtime.NumCPU()). Results align with texts; the first failing query
// aborts the batch with its error once in-flight queries drain.
func (e *Engine) QueryBatch(texts []string, opts core.QueryOptions, clients int) ([]*core.Result, error) {
	if clients == 0 {
		clients = e.cfg.Workers
	}
	clients = core.ResolveWorkers(clients)
	// As on a single system: with many concurrent clients, per-query
	// rerank parallelism would only oversubscribe the cores.
	if opts.Workers == 0 && clients > 1 {
		opts.Workers = 1
	}
	results := make([]*core.Result, len(texts))
	errs := make([]error, len(texts))
	core.ParallelFor(len(texts), clients, func(i int) {
		results[i], errs[i] = e.Query(texts[i], opts)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: batch query %d (%q): %w", i, texts[i], err)
		}
	}
	return results, nil
}

// QueryBatchPlanned executes one pre-resolved plan per query — the serving
// tier's batch path. Stage 1 for the whole batch scatters as ONE call per
// shard (core.ExecutePlanBatch via the engine's BatchTarget surface), so an
// in-process shard amortizes one memory sweep over every query of the
// batch; stage 2 fans out per query across at most clients goroutines.
// Plans align with texts; results align with texts and are bit-identical to
// per-query QueryPlanned runs.
func (e *Engine) QueryBatchPlanned(ctx context.Context, texts []string, plans []core.Plan, workers, clients int) ([]*core.Result, error) {
	if len(plans) != len(texts) {
		return nil, fmt.Errorf("shard: batch of %d texts given %d plans", len(texts), len(plans))
	}
	if clients == 0 {
		clients = e.cfg.Workers
	}
	clients = core.ResolveWorkers(clients)
	if workers == 0 && clients > 1 {
		workers = 1
	}
	normalized := make([]core.Plan, len(plans))
	for i := range plans {
		normalized[i] = e.cfg.NormalizePlan(plans[i])
	}
	return core.ExecutePlanBatch(ctx, engineTarget{e}, texts, normalized, workers, clients)
}

// Stats aggregates ingest statistics across shards, counting each shard's
// primary replica once — replicas hold the same corpus, so an R-replica
// engine reports the same statistics as an R=1 engine. Counter fields sum;
// duration fields sum too, so they report aggregate shard-time, not
// wall-clock (shards ingest in parallel). Unreachable shards contribute
// nothing (their health shows in BackendStats).
func (e *Engine) Stats() core.IngestStats {
	stats := make([]core.IngestStats, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		st, err := e.backends[i].Stats()
		if err != nil {
			return
		}
		stats[i] = st
	})
	var agg core.IngestStats
	for _, st := range stats {
		agg.Videos += st.Videos
		agg.Frames += st.Frames
		agg.Keyframes += st.Keyframes
		agg.Tokens += st.Tokens
		agg.Processing += st.Processing
		agg.Indexing += st.Indexing
	}
	return agg
}

// Entities returns the total indexed patch vectors across reachable shards
// (one replica per shard; copies don't multiply the corpus).
func (e *Engine) Entities() int {
	counts := make([]int, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		c, err := e.backends[i].Entities()
		if err != nil {
			return
		}
		counts[i] = c
	})
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// SegmentStats aggregates the streaming segment breakdown across reachable
// shards (one replica per shard — replicas converge to identical segment
// structures). The second return is false when no shard reported streaming
// stats: a monolithic fleet, or every streaming worker unreachable.
// Counter and byte fields sum across shards; Sealed/Building/GrowingLen
// therefore report fleet-wide totals.
func (e *Engine) SegmentStats() (vectordb.SegmentStats, bool) {
	stats := make([]vectordb.SegmentStats, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		sr, ok := e.backends[i].(remote.SegmentReporter)
		if !ok {
			return
		}
		st, err := sr.SegmentStats()
		if err != nil {
			return
		}
		stats[i] = st
	})
	var agg vectordb.SegmentStats
	for _, st := range stats {
		if !st.Streaming {
			continue
		}
		agg.Streaming = true
		agg.Sealed += st.Sealed
		agg.Building += st.Building
		agg.Growing += st.Growing
		agg.GrowingLen += st.GrowingLen
		agg.SealedVectors += st.SealedVectors
		agg.RawBytes += st.RawBytes
		agg.IndexBytes += st.IndexBytes
		agg.Seals += st.Seals
		agg.Compactions += st.Compactions
	}
	return agg, agg.Streaming
}

// Built reports whether every shard has built its index. An unreachable or
// state-lost shard reports false — the engine cannot serve complete answers
// without it.
func (e *Engine) Built() bool {
	var notBuilt atomic.Bool
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		if e.stateLost[i].Load() {
			notBuilt.Store(true)
			return
		}
		built, err := e.backends[i].Built()
		if err != nil || !built {
			notBuilt.Store(true)
		}
	})
	return !notBuilt.Load()
}

// noteGen folds one backend's freshly-observed generation into the
// engine's monotonic view. A generation of zero after progress was
// recorded can only mean a new, empty system behind the same address — a
// restarted worker — since a live system's generation never decreases.
// (Benign interleavings under concurrent ingest can deliver slightly stale
// non-zero reads, which the monotonic max absorbs without false alarms.)
func (e *Engine) noteGen(i int, gen uint64) {
	for {
		last := e.lastGen[i].Load()
		if gen == 0 && last > 0 {
			e.stateLost[i].Store(true)
			return
		}
		if gen <= last {
			return
		}
		if e.lastGen[i].CompareAndSwap(last, gen) {
			return
		}
	}
}

// IngestGen sums each shard's mutation generation (itself the minimum
// across the shard's replicas); any ingest or index build anywhere advances
// it once every replica has it, which is all a result cache needs. An
// unreachable shard contributes its last reported generation, so the engine
// generation holds steady — rather than wobbling cache validity — while a
// worker is down. A shard whose generation regressed to zero (worker
// restarted empty) is marked state-lost, which fails Built() and degrades
// health until the corpus is restored.
func (e *Engine) IngestGen() uint64 {
	gens := make([]uint64, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		gen, err := e.backends[i].IngestGen()
		if err != nil {
			gens[i] = e.lastGen[i].Load()
			return
		}
		e.noteGen(i, gen)
		gens[i] = gen
	})
	var total uint64
	for _, g := range gens {
		total += g
	}
	return total
}

// Replicas returns the replica count per shard for uniformly-replicated
// local engines (New, NewReplicated); 0 for explicit backend sets, whose
// shards each manage their own replica count (see ReplicaStats).
func (e *Engine) Replicas() int {
	if e.replicas > 0 {
		return e.replicas
	}
	return 0
}

// FailReplica removes one in-process replica from query routing — the
// operational "kill" used by failover drills. The replica keeps receiving
// ingest, so ReviveReplica restores it with the same corpus as its peers.
func (e *Engine) FailReplica(group, replica int) { e.local(group).Fail(replica) }

// ReviveReplica returns a failed in-process replica to query routing.
func (e *Engine) ReviveReplica(group, replica int) { e.local(group).Revive(replica) }

// ReplicaStats snapshots per-replica health, read counts and in-flight
// load, indexed [shard][replica]. A shard whose stats are unreachable
// reports a single unhealthy placeholder entry.
func (e *Engine) ReplicaStats() [][]ReplicaStat {
	out := make([][]ReplicaStat, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		sts, err := e.backends[i].ReplicaStats()
		if err != nil {
			out[i] = []ReplicaStat{{Healthy: false}}
			return
		}
		out[i] = sts
	})
	return out
}

// BackendStat is the coordinator's view of one shard backend, surfaced by
// the serving tier's /stats, /healthz and /metrics.
type BackendStat struct {
	// Kind is "local" for in-process shards, "remote" for RPC workers.
	Kind string `json:"kind"`
	// Addr is the worker address (remote shards only).
	Addr string `json:"addr,omitempty"`
	// Healthy reports the shard answered a health probe.
	Healthy bool `json:"healthy"`
	// Error carries the probe failure when unhealthy.
	Error string `json:"error,omitempty"`
}

// bootIDer is the transport-level restart detector (remote.Client
// implements it): the worker's server instance nonce changes across
// process restarts.
type bootIDer interface {
	BootID() (uint64, error)
}

// BackendStats probes every shard backend in parallel — a remote worker
// that died since the last request shows up unhealthy here (and flips the
// serving tier's /healthz to degraded) without waiting for a query to trip
// over it. A worker that restarted empty after this engine fed it corpus
// (its boot nonce changed, or its generation regressed to zero) is
// reported unhealthy too: it would answer — with zero hits — and silently
// drop its slice from every merge.
func (e *Engine) BackendStats() []BackendStat {
	out := make([]BackendStat, len(e.backends))
	core.ParallelFor(len(e.backends), len(e.backends), func(i int) {
		st := BackendStat{Kind: "local", Healthy: true}
		if a, ok := e.backends[i].(interface{ Addr() string }); ok {
			st.Kind, st.Addr = "remote", a.Addr()
		}
		if bi, ok := e.backends[i].(bootIDer); ok {
			id, err := bi.BootID()
			if err != nil {
				st.Healthy = false
				st.Error = err.Error()
			} else if prev := e.bootID[i].Swap(id); prev != 0 && prev != id && e.lastGen[i].Load() > 0 {
				e.stateLost[i].Store(true)
			}
		} else if err := e.backends[i].Ping(); err != nil {
			st.Healthy = false
			st.Error = err.Error()
		}
		if e.stateLost[i].Load() {
			st.Healthy = false
			st.Error = "shard state lost (worker restarted empty): restore a snapshot or reboot the coordinator to re-ingest"
		}
		out[i] = st
	})
	return out
}

// Close releases every backend's resources (remote connection pools; no-op
// for in-process shards).
func (e *Engine) Close() error {
	var first error
	for _, b := range e.backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot format: magic, shard count, then one replica's system snapshot
// per shard in shard order, length-prefixed (uint64) — the per-system
// loader reads through buffered decoders that may consume past their own
// section, so each shard gets a bounded segment of the stream. Replicas
// are byte-identical, so one copy per shard is the whole engine; the
// replica count is deliberately absent from the format, letting any R load
// a snapshot saved under any other R. The format predates remote shards
// and is unchanged: segments simply travel over RPC when a shard is
// remote.
const snapMagic = "LOVOSHD1\n"

// SaveSnapshot persists one copy of every shard's state (the primary
// replica speaks for its byte-identical group). Must not run concurrently
// with ingest or index builds.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(e.backends))); err != nil {
		return err
	}
	for i, b := range e.backends {
		seg, err := b.SaveSnapshot()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(seg))); err != nil {
			return err
		}
		if _, err := w.Write(seg); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot restores a snapshot written by SaveSnapshot into this
// freshly-constructed engine, fanning each shard's segment out to all of
// its replicas. The shard count and Config must match the saver's; the
// replica count need not.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	head := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("shard: reading snapshot magic: %w", err)
	}
	if string(head) != snapMagic {
		return fmt.Errorf("shard: bad snapshot magic %q", head)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(e.backends) {
		return fmt.Errorf("shard: snapshot has %d shards, engine has %d", n, len(e.backends))
	}
	for i, b := range e.backends {
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return fmt.Errorf("shard %d: reading snapshot size: %w", i, err)
		}
		seg := make([]byte, size)
		if _, err := io.ReadFull(r, seg); err != nil {
			return fmt.Errorf("shard %d: reading snapshot segment: %w", i, err)
		}
		if err := b.LoadSnapshot(seg); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// A successful restore is the recovery path for a state-lost worker:
	// every backend now holds its slice again, so clear the marks and
	// re-learn generations and boot identities from scratch.
	for i := range e.backends {
		e.stateLost[i].Store(false)
		e.lastGen[i].Store(0)
		e.bootID[i].Store(0)
	}
	return nil
}
