package shard

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/vectordb"
)

// bootReplicated builds an ingested, indexed engine of n shards × r
// replicas over QVHighlights (the multi-clip corpus that populates every
// shard) plus the dataset for query texts.
func bootReplicated(t *testing.T, n, r int, cfg core.Config) (*Engine, *datasets.Dataset) {
	t.Helper()
	ds := datasets.QVHighlights(datasets.Config{Seed: cfg.Seed, Scale: 0.04})
	eng, err := NewReplicated(n, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return eng, ds
}

// TestReplicatedMatchesUnreplicated is the replication determinism proof:
// an R=3 engine answers byte-identically to the R=1 engine on the same
// shards, dataset and seed, whichever replica the picker routes to.
func TestReplicatedMatchesUnreplicated(t *testing.T) {
	cfg := core.Config{Seed: 7, Index: vectordb.IndexFlat}
	base, ds := bootReplicated(t, 3, 1, cfg)
	repl, _ := bootReplicated(t, 3, 3, cfg)

	if got, want := repl.Entities(), base.Entities(); got != want {
		t.Fatalf("replicated entities = %d, base = %d", got, want)
	}
	if got, want := repl.Stats(), base.Stats(); got.Videos != want.Videos || got.Keyframes != want.Keyframes || got.Tokens != want.Tokens {
		t.Fatalf("replicated stats diverge: %+v vs %+v", got, want)
	}

	queries := ds.Queries
	if testing.Short() {
		queries = queries[:2]
	}
	for _, q := range queries {
		for _, opts := range []core.QueryOptions{
			{},
			{DisableRerank: true},
			{FastK: 40, TopN: 5},
		} {
			want, err := base.Query(q.Text, opts)
			if err != nil {
				t.Fatalf("%s base: %v", q.ID, err)
			}
			// Ask repeatedly so the round-robin picker cycles through
			// every replica of every group.
			for rep := 0; rep < 3; rep++ {
				got, err := repl.Query(q.Text, opts)
				if err != nil {
					t.Fatalf("%s replicated: %v", q.ID, err)
				}
				if !reflect.DeepEqual(got.Objects, want.Objects) {
					t.Fatalf("%s opts %+v rep %d: replicated objects diverge\n got: %+v\nwant: %+v",
						q.ID, opts, rep, got.Objects, want.Objects)
				}
				if got.CandidateFrames != want.CandidateFrames {
					t.Fatalf("%s: candidate frames %d != %d", q.ID, got.CandidateFrames, want.CandidateFrames)
				}
			}
		}
	}
}

// TestFailoverWithOneReplicaPerGroupDown kills all but one replica of every
// group and checks queries still answer, byte-identically to the healthy
// engine — the acceptance failover property.
func TestFailoverWithOneReplicaPerGroupDown(t *testing.T) {
	cfg := core.Config{Seed: 9}
	eng, ds := bootReplicated(t, 2, 3, cfg)

	var want []*core.Result
	for _, q := range ds.Queries {
		res, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Leave only one healthy replica per group — a different index in
	// each group, so routing can't cheat with a fixed replica.
	for gi := 0; gi < eng.Shards(); gi++ {
		for ri := 0; ri < eng.Replicas(); ri++ {
			if ri != gi%eng.Replicas() {
				eng.FailReplica(gi, ri)
			}
		}
	}
	for i, q := range ds.Queries {
		got, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatalf("%s with failed replicas: %v", q.ID, err)
		}
		if !reflect.DeepEqual(got.Objects, want[i].Objects) {
			t.Fatalf("%s: degraded engine answers diverge", q.ID)
		}
	}

	// Kill the last replica of group 0: the engine can no longer answer.
	for ri := 0; ri < eng.Replicas(); ri++ {
		eng.FailReplica(0, ri)
	}
	if _, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{}); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("all-replicas-down query: got %v, want ErrAllReplicasDown", err)
	}

	// Revive one and service resumes with the same answer.
	eng.ReviveReplica(0, 1)
	got, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Objects, want[0].Objects) {
		t.Fatal("revived engine answers diverge")
	}
}

// TestErrorMarksReplicaUnhealthy injects a fault on one replica and checks
// the request transparently fails over, the faulty replica is removed from
// routing, and subsequent traffic never touches it.
func TestErrorMarksReplicaUnhealthy(t *testing.T) {
	eng, ds := bootReplicated(t, 2, 2, core.Config{Seed: 5})

	want, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	eng.faultHook = func(group, replica int) error {
		if group == 0 && replica == 0 {
			return fmt.Errorf("injected: replica lost")
		}
		return nil
	}
	// Drive enough queries that the picker would certainly have routed to
	// (0,0); every one must succeed via failover.
	for i := 0; i < 6; i++ {
		got, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{})
		if err != nil {
			t.Fatalf("query %d during fault: %v", i, err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("query %d: failover answer diverges", i)
		}
	}
	stats := eng.ReplicaStats()
	if stats[0][0].Healthy {
		t.Fatal("faulty replica (0,0) must be marked unhealthy")
	}
	if !stats[0][1].Healthy || !stats[1][0].Healthy || !stats[1][1].Healthy {
		t.Fatalf("healthy replicas wrongly failed: %+v", stats)
	}

	// Once marked, the dead replica stops receiving reads.
	before := eng.ReplicaStats()[0][0].Reads
	for i := 0; i < 4; i++ {
		if _, err := eng.Query(ds.Queries[1].Text, core.QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if after := eng.ReplicaStats()[0][0].Reads; after != before {
		t.Fatalf("failed replica still routed: reads %d -> %d", before, after)
	}
}

// TestGroupWideFaultDoesNotBrickGroup: a deterministic backend error
// reproduces on every byte-identical replica; it must surface per-request
// without leaving the whole group marked failed — otherwise one bad
// request converts into ErrAllReplicasDown forever.
func TestGroupWideFaultDoesNotBrickGroup(t *testing.T) {
	eng, ds := bootReplicated(t, 2, 2, core.Config{Seed: 5})
	eng.faultHook = func(group, replica int) error {
		if group == 0 {
			return fmt.Errorf("injected: deterministic fault on every replica")
		}
		return nil
	}
	if _, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{}); err == nil {
		t.Fatal("group-wide fault must surface as an error")
	}
	for ri, st := range eng.ReplicaStats()[0] {
		if !st.Healthy {
			t.Fatalf("replica (0,%d) left bricked after a group-wide fault", ri)
		}
	}
	// Clearing the fault restores normal service without any revive call.
	eng.faultHook = nil
	if _, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{}); err != nil {
		t.Fatalf("group must answer again once the fault clears: %v", err)
	}
	// Manually-failed replicas are NOT resurrected by the error path.
	eng.FailReplica(0, 0)
	eng.FailReplica(0, 1)
	if _, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{}); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("manually downed group: got %v, want ErrAllReplicasDown", err)
	}
	if st := eng.ReplicaStats()[0]; st[0].Healthy || st[1].Healthy {
		t.Fatal("manual kills must survive the per-request revive")
	}
}

// TestQueryFaultDoesNotFailover: an unanswerable query is the caller's
// problem on every replica — it must surface as an error without burning
// any replica's health.
func TestQueryFaultDoesNotFailover(t *testing.T) {
	eng, _ := bootReplicated(t, 2, 2, core.Config{Seed: 3})
	if _, err := eng.Query("zorgon blaxt", core.QueryOptions{}); !errors.Is(err, core.ErrNoRecognisedTerms) {
		t.Fatalf("unparseable query: got %v", err)
	}
	for gi, g := range eng.ReplicaStats() {
		for ri, st := range g {
			if !st.Healthy {
				t.Fatalf("replica (%d,%d) failed on a client error", gi, ri)
			}
		}
	}
}

// TestReplicaRoutingBalances: under sequential traffic the round-robin
// picker must spread reads across every replica of every group.
func TestReplicaRoutingBalances(t *testing.T) {
	eng, ds := bootReplicated(t, 2, 2, core.Config{Seed: 11})
	for i := 0; i < 8; i++ {
		if _, err := eng.Query(ds.Queries[i%len(ds.Queries)].Text, core.QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for gi, g := range eng.ReplicaStats() {
		for ri, st := range g {
			if st.Reads == 0 {
				t.Fatalf("replica (%d,%d) never served a read", gi, ri)
			}
			if st.Inflight != 0 {
				t.Fatalf("replica (%d,%d) leaked inflight count %d", gi, ri, st.Inflight)
			}
		}
	}
}

// TestReplicatedSnapshotRoundTrip: snapshots hold one copy per group, so a
// snapshot saved under R=1 restores into an R=2 engine (and vice versa)
// with every replica populated and answers unchanged.
func TestReplicatedSnapshotRoundTrip(t *testing.T) {
	cfg := core.Config{Seed: 21}
	orig, ds := bootReplicated(t, 2, 2, cfg)
	var buf bytes.Buffer
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for _, r := range []int{1, 3} {
		restored, err := NewReplicated(2, r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if restored.Entities() != orig.Entities() || !restored.Built() {
			t.Fatalf("R=%d restored engine: %d entities (want %d), built=%t",
				r, restored.Entities(), orig.Entities(), restored.Built())
		}
		for _, q := range ds.Queries[:3] {
			want, err := orig.Query(q.Text, core.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// Repeat so the picker touches every restored replica.
			for rep := 0; rep < r; rep++ {
				got, err := restored.Query(q.Text, core.QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Objects, want.Objects) {
					t.Fatalf("R=%d %s: restored answers diverge", r, q.ID)
				}
			}
		}
	}
}

func TestNewReplicatedRejectsZeroReplicas(t *testing.T) {
	if _, err := NewReplicated(2, 0, core.Config{}); err == nil {
		t.Fatal("zero replicas must error")
	}
}

// TestReplicatedConcurrentQueriesDuringIngest races queries, a replica
// kill, and ongoing ingest plus rebuilds across a replicated engine (run
// with -race).
func TestReplicatedConcurrentQueriesDuringIngest(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 9, Scale: 0.04})
	eng, err := NewReplicated(2, 2, core.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := eng.Ingest(&ds.Videos[i]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := eng.BuildIndex(); err != nil {
			t.Error(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.FailReplica(0, 0)
		eng.ReviveReplica(0, 0)
	}()
	texts := queryMix(ds)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := eng.Query(texts[(c+i)%len(texts)], core.QueryOptions{Workers: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := eng.Stats()
	if st.Videos != len(ds.Videos) {
		t.Fatalf("stats videos = %d want %d", st.Videos, len(ds.Videos))
	}
	// Every replica of every group saw the full fan-out.
	for gi := 0; gi < eng.Shards(); gi++ {
		want := eng.Replica(gi, 0).Entities()
		for ri := 1; ri < eng.Replicas(); ri++ {
			if got := eng.Replica(gi, ri).Entities(); got != want {
				t.Fatalf("group %d replica %d entities = %d, primary = %d", gi, ri, got, want)
			}
		}
	}
}
