package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/vectordb"
	"repro/internal/video"
)

// ErrAllReplicasDown marks a request that found no healthy replica in some
// shard: every copy of that slice of the corpus has been marked failed, so
// the shard cannot answer. As long as one replica survives, requests keep
// answering — byte-identically, because replicas are built from equal seeds
// and equal ingest order.
var ErrAllReplicasDown = errors.New("shard: every replica of a group is down")

// ReplicaStat is the observable state of one replica, surfaced by the
// serving tier's /stats and /metrics. It is an alias of the wire type so
// remote workers report the same shape without an import cycle.
type ReplicaStat = remote.ReplicaStat

// replicaState is the routing-side view of one replica: health, demand and
// a read counter. Failure is a routing property, not a data property — a
// failed replica still receives ingest fan-out so a later Revive serves the
// same corpus as its peers.
type replicaState struct {
	// failed removes the replica from query routing (set on the first
	// query error, or manually via Engine.FailReplica).
	failed atomic.Bool
	// inflight counts requests currently executing on the replica; the
	// picker prefers the least-loaded healthy replica.
	inflight atomic.Int64
	// reads counts requests ever routed to the replica (stage-1 and
	// stage-2 scatter legs both count).
	reads atomic.Uint64
}

// Local is one in-process shard: a replica group of R byte-identical
// core.Systems (equal seeds, equal ingest order) behind a health-aware
// picker. It implements remote.ShardBackend, so an Engine composes it
// interchangeably with remote.Client shards, and cmd/lovoshard hosts one
// behind a remote.Server. Any healthy replica answers any request for the
// shard's slice of the corpus with the exact bytes every other replica
// would produce, which is what makes failover transparent.
type Local struct {
	replicas []*core.System
	state    []replicaState
	// rr rotates the picker's scan start so replicas with equal in-flight
	// load alternate (plain round-robin when the group is idle).
	rr atomic.Uint64
	// faultHook, when set (tests only), may inject an error before a
	// replica call, exercising the failover path.
	faultHook func(replica int) error
}

// NewLocal constructs an in-process shard of r equal-seeded replicas.
func NewLocal(r int, cfg core.Config) (*Local, error) {
	if r <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 replica, got %d", r)
	}
	l := &Local{
		replicas: make([]*core.System, r),
		state:    make([]replicaState, r),
	}
	for i := range l.replicas {
		s, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		l.replicas[i] = s
	}
	return l, nil
}

// System exposes one replica's core.System (tests, experiments, stats).
func (l *Local) System(replica int) *core.System { return l.replicas[replica] }

// Replicas returns the replica count R.
func (l *Local) Replicas() int { return len(l.replicas) }

// Config returns the resolved system configuration.
func (l *Local) Config() core.Config { return l.replicas[0].Config() }

// pick chooses the serving replica: scanning from a rotating round-robin
// start, it takes the healthy replica with the fewest in-flight requests —
// so an idle group alternates replicas and a loaded group routes around
// the busy ones. Returns -1 when every replica is failed.
func (l *Local) pick() int {
	start := int(l.rr.Add(1)-1) % len(l.replicas)
	best := -1
	var bestLoad int64
	for off := range l.replicas {
		i := (start + off) % len(l.replicas)
		st := &l.state[i]
		if st.failed.Load() {
			continue
		}
		load := st.inflight.Load()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// replicaFault reports whether a request error indicts the replica that
// returned it. Errors that depend only on the request — unanswerable query
// text — would reproduce on every replica, so failing over on them would
// only burn healthy replicas.
func replicaFault(err error) bool {
	return !errors.Is(err, core.ErrNoRecognisedTerms)
}

// withReplica runs fn against one healthy replica, marking a replica that
// returns a fault unhealthy and transparently retrying the next healthy
// one. fn observes a fully-functional core.System along with a context
// carrying the attempt's span; the error fn returns decides failover (see
// replicaFault). Under a traced context every attempt — including the
// failed ones the retry loop papers over — records a sibling "replica"
// span, so a failover that silently rescued a query is visible in its
// trace.
func (l *Local) withReplica(ctx context.Context, fn func(ctx context.Context, sys *core.System) error) error {
	var lastErr error
	var marked []int
	for attempt := 0; attempt < len(l.replicas); attempt++ {
		ri := l.pick()
		if ri < 0 {
			break
		}
		st := &l.state[ri]
		st.inflight.Add(1)
		st.reads.Add(1)
		actx, asp := obs.Start(ctx, "replica")
		err := l.callReplica(actx, ri, fn)
		if asp.On() {
			if err != nil {
				asp.Detail(fmt.Sprintf("replica=%d err=%v", ri, err))
			} else {
				asp.Detail(fmt.Sprintf("replica=%d", ri))
			}
		}
		asp.End()
		st.inflight.Add(-1)
		if err == nil {
			return nil
		}
		if !replicaFault(err) {
			return err
		}
		st.failed.Store(true)
		marked = append(marked, ri)
		lastErr = err
	}
	if lastErr != nil {
		// Every replica this call reached failed the same way. Replicas
		// are byte-identical, so a deterministic fault reproduces on all
		// of them — indistinguishable from a request-level error. Leaving
		// the marks would let one bad request brick the whole group into
		// ErrAllReplicasDown forever; restore the replicas this call
		// marked (never ones failed before it) and surface the error
		// per-request instead. A genuinely broken replica still stays
		// failed whenever any peer answers.
		for _, ri := range marked {
			l.state[ri].failed.Store(false)
		}
		return lastErr
	}
	return ErrAllReplicasDown
}

// callReplica dispatches fn to one replica, routing through the test-only
// fault hook when set.
func (l *Local) callReplica(ctx context.Context, ri int, fn func(ctx context.Context, sys *core.System) error) error {
	if l.faultHook != nil {
		if err := l.faultHook(ri); err != nil {
			return err
		}
	}
	return fn(ctx, l.replicas[ri])
}

// Fail removes one replica from query routing — the operational "kill" used
// by failover drills. The replica keeps receiving ingest, so Revive
// restores it with the same corpus as its peers.
func (l *Local) Fail(replica int) { l.state[replica].failed.Store(true) }

// Revive returns a failed replica to query routing.
func (l *Local) Revive(replica int) { l.state[replica].failed.Store(false) }

// --- remote.ShardBackend implementation --------------------------------

// Ingest routes one video to every replica. Failed replicas ingest too:
// failure is a routing state, and a revived replica must hold the same
// corpus as its peers. Every replica is attempted even when one errors —
// aborting mid-fan-out would leave the group diverged — and if the error
// hits only some replicas (a nondeterministic fault; a deterministic one
// reproduces on all byte-identical peers), the diverged replicas are pulled
// from routing so the group keeps answering with one consistent corpus.
func (l *Local) Ingest(v *video.Video) error {
	errs := make([]error, len(l.replicas))
	for ri, s := range l.replicas {
		errs[ri] = s.Ingest(v)
	}
	l.markDiverged(errs)
	return firstErr(errs)
}

// IngestVideos ingests a slice of videos in order on every replica, one
// goroutine per replica, so per-replica state is byte-identical to a serial
// ingest of the slice — and therefore identical across the group.
func (l *Local) IngestVideos(vs []*video.Video) error {
	r := len(l.replicas)
	errs := make([]error, r)
	core.ParallelFor(r, r, func(ri int) {
		for _, v := range vs {
			if err := l.replicas[ri].Ingest(v); err != nil {
				errs[ri] = fmt.Errorf("replica %d: %w", ri, err)
				return
			}
		}
	})
	l.markDiverged(errs)
	return firstErr(errs)
}

// markDiverged pulls replicas whose ingest failed while a peer succeeded
// out of routing (a deterministic fault hits every replica and marks none).
func (l *Local) markDiverged(errs []error) {
	anyOK, anyErr := false, false
	for _, err := range errs {
		if err == nil {
			anyOK = true
		} else {
			anyErr = true
		}
	}
	if !anyOK || !anyErr {
		return
	}
	for ri, err := range errs {
		if err != nil {
			l.state[ri].failed.Store(true)
		}
	}
}

// BuildIndex builds every non-empty replica's index in parallel. An empty
// shard (fewer videos than shards) is skipped — it answers queries with
// zero hits either way.
func (l *Local) BuildIndex() error {
	r := len(l.replicas)
	errs := make([]error, r)
	core.ParallelFor(r, r, func(ri int) {
		sys := l.replicas[ri]
		if sys.Entities() == 0 {
			return
		}
		if err := sys.BuildIndex(); err != nil {
			errs[ri] = fmt.Errorf("replica %d: %w", ri, err)
		}
	})
	return firstErr(errs)
}

// FastSearch runs stage 1 under the plan's leg knobs on one healthy
// replica, failing over on faults.
func (l *Local) FastSearch(ctx context.Context, text string, plan core.Plan) ([]core.ResultObject, error) {
	var hits []core.ResultObject
	err := l.withReplica(ctx, func(ctx context.Context, sys *core.System) error {
		fh, err := sys.SearchPlanned(ctx, text, plan)
		if err != nil {
			return err
		}
		hits = fh.Objects
		return nil
	})
	if err != nil {
		return nil, err
	}
	return hits, nil
}

// FastSearchBatch runs the stage-1 leg for many (text, plan) pairs on ONE
// healthy replica, so queries with identical search shapes share a single
// cache-blocked sweep over the replica's stored vectors (see
// core.System.SearchPlannedBatch). Results align with texts and are
// bit-identical to per-query FastSearch calls; failover retries the whole
// batch on the next healthy replica.
func (l *Local) FastSearchBatch(ctx context.Context, texts []string, plans []core.Plan) ([][]core.ResultObject, error) {
	var lists [][]core.ResultObject
	err := l.withReplica(ctx, func(ctx context.Context, sys *core.System) error {
		fhs, err := sys.SearchPlannedBatch(ctx, texts, plans)
		if err != nil {
			return err
		}
		lists = make([][]core.ResultObject, len(fhs))
		for i, fh := range fhs {
			lists[i] = fh.Objects
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lists, nil
}

// PlanStats exports one healthy replica's planning digest — replicas are
// byte-identical and sample deterministically, so any replica speaks for
// the group.
func (l *Local) PlanStats() (core.PlanStats, error) {
	var st core.PlanStats
	//lovo:ctx-ok calibration-digest export during engine assembly, not a per-query path; withReplica only wants ctx for failover bookkeeping
	err := l.withReplica(context.Background(), func(_ context.Context, sys *core.System) error {
		st = sys.PlanStats()
		return nil
	})
	return st, err
}

// GroundCandidates runs stage 2 on one healthy replica, failing over on
// faults.
func (l *Local) GroundCandidates(ctx context.Context, text string, refs []core.FrameRef, workers int) ([]core.Grounding, error) {
	var gs []core.Grounding
	err := l.withReplica(ctx, func(ctx context.Context, sys *core.System) error {
		gs = sys.GroundCandidates(ctx, text, refs, workers)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return gs, nil
}

// Stats returns one replica's ingest statistics (copies don't multiply the
// corpus, so the primary speaks for the group).
func (l *Local) Stats() (core.IngestStats, error) { return l.replicas[0].Stats(), nil }

// Entities returns the shard's indexed patch-vector count.
func (l *Local) Entities() (int, error) { return l.replicas[0].Entities(), nil }

// Built reports whether every non-empty replica has built its index.
func (l *Local) Built() (bool, error) {
	for _, s := range l.replicas {
		if s.Entities() > 0 && !s.Built() {
			return false, nil
		}
	}
	return true, nil
}

// IngestGen returns the minimum replica mutation generation. The minimum —
// not the primary's value — matters mid-fan-out: a request may be served by
// a replica that hasn't received the newest video yet, and stamping its
// answer with a generation the laggard hasn't reached would let that stale
// answer survive in a cache forever. Under the minimum, the generation only
// advances after the laggard catches up, invalidating anything computed
// before.
func (l *Local) IngestGen() (uint64, error) {
	gen := l.replicas[0].IngestGen()
	for _, s := range l.replicas[1:] {
		if sg := s.IngestGen(); sg < gen {
			gen = sg
		}
	}
	return gen, nil
}

// ReplicaStats snapshots per-replica health, read counts and in-flight
// load.
func (l *Local) ReplicaStats() ([]ReplicaStat, error) {
	out := make([]ReplicaStat, len(l.replicas))
	for ri := range l.replicas {
		st := &l.state[ri]
		out[ri] = ReplicaStat{
			Healthy:  !st.failed.Load(),
			Reads:    st.reads.Load(),
			Inflight: st.inflight.Load(),
		}
	}
	return out, nil
}

// ConfigSummary digests the shard's resolved configuration.
func (l *Local) ConfigSummary() (remote.ConfigSummary, error) {
	return remote.Summarize(l.Config(), len(l.replicas)), nil
}

// SegmentStats reports the primary replica's streaming segment breakdown
// (replicas converge to identical segment structures, so the primary speaks
// for the group); Streaming=false in monolithic mode. Implements
// remote.SegmentReporter.
func (l *Local) SegmentStats() (vectordb.SegmentStats, error) {
	st, ok := l.replicas[0].SegmentStats()
	if !ok {
		return vectordb.SegmentStats{}, nil
	}
	return st, nil
}

// SaveSnapshot serialises one replica's full system state (the primary
// speaks for its byte-identical group). Must not run concurrently with
// ingest or index builds.
func (l *Local) SaveSnapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := l.replicas[0].SaveSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadSnapshot restores a SaveSnapshot payload into every replica of this
// freshly-constructed shard — the replica count need not match the saver's.
func (l *Local) LoadSnapshot(data []byte) error {
	for ri, s := range l.replicas {
		if err := s.LoadSnapshot(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("replica %d: %w", ri, err)
		}
	}
	return nil
}

// Ping reports whether the shard can serve: at least one healthy replica.
func (l *Local) Ping() error {
	for ri := range l.replicas {
		if !l.state[ri].failed.Load() {
			return nil
		}
	}
	return ErrAllReplicasDown
}

// Close is a no-op for an in-process shard.
func (l *Local) Close() error { return nil }
