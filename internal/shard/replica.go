package shard

import (
	"errors"
	"sync/atomic"

	"repro/internal/core"
)

// ErrAllReplicasDown marks a query that found no healthy replica in some
// group: every copy of that slice of the corpus has been marked failed, so
// the engine cannot answer. As long as one replica per group survives,
// queries keep answering — byte-identically, because replicas are built
// from equal seeds and equal ingest order.
var ErrAllReplicasDown = errors.New("shard: every replica of a group is down")

// replicaState is the routing-side view of one replica: health, demand and
// a read counter. Failure is a routing property, not a data property — a
// failed replica still receives ingest fan-out so a later Revive serves the
// same corpus as its peers.
type replicaState struct {
	// failed removes the replica from query routing (set on the first
	// query error, or manually via Engine.FailReplica).
	failed atomic.Bool
	// inflight counts queries currently executing on the replica; the
	// picker prefers the least-loaded healthy replica.
	inflight atomic.Int64
	// reads counts queries ever routed to the replica (stage-1 and
	// stage-2 scatter legs both count).
	reads atomic.Uint64
}

// replicaGroup is one shard's replica set: R byte-identical core.Systems
// (equal seeds, equal ingest order) behind a picker. Any healthy replica
// answers any request for the group's slice of the corpus with the exact
// bytes every other replica would produce, which is what makes failover
// transparent.
type replicaGroup struct {
	replicas []*core.System
	state    []replicaState
	// rr rotates the picker's scan start so replicas with equal in-flight
	// load alternate (plain round-robin when the group is idle).
	rr atomic.Uint64
}

func newReplicaGroup(r int, cfg core.Config) (*replicaGroup, error) {
	g := &replicaGroup{
		replicas: make([]*core.System, r),
		state:    make([]replicaState, r),
	}
	for i := range g.replicas {
		s, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		g.replicas[i] = s
	}
	return g, nil
}

// pick chooses the serving replica: scanning from a rotating round-robin
// start, it takes the healthy replica with the fewest in-flight requests —
// so an idle group alternates replicas and a loaded group routes around
// the busy ones. Returns -1 when every replica is failed.
func (g *replicaGroup) pick() int {
	start := int(g.rr.Add(1)-1) % len(g.replicas)
	best := -1
	var bestLoad int64
	for off := range g.replicas {
		i := (start + off) % len(g.replicas)
		st := &g.state[i]
		if st.failed.Load() {
			continue
		}
		load := st.inflight.Load()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// replicaFault reports whether a query error indicts the replica that
// returned it. Errors that depend only on the request — unanswerable query
// text — would reproduce on every replica, so failing over on them would
// only burn healthy replicas.
func replicaFault(err error) bool {
	return !errors.Is(err, core.ErrNoRecognisedTerms)
}

// withReplica runs fn against one healthy replica of group gi, marking a
// replica that returns a fault unhealthy and transparently retrying the
// next healthy one. fn observes a fully-functional core.System; the error
// it returns decides failover (see replicaFault).
func (e *Engine) withReplica(gi int, fn func(sys *core.System) error) error {
	g := e.groups[gi]
	var lastErr error
	var marked []int
	for attempt := 0; attempt < len(g.replicas); attempt++ {
		ri := g.pick()
		if ri < 0 {
			break
		}
		st := &g.state[ri]
		st.inflight.Add(1)
		st.reads.Add(1)
		err := e.callReplica(gi, ri, fn)
		st.inflight.Add(-1)
		if err == nil {
			return nil
		}
		if !replicaFault(err) {
			return err
		}
		st.failed.Store(true)
		marked = append(marked, ri)
		lastErr = err
	}
	if lastErr != nil {
		// Every replica this call reached failed the same way. Replicas
		// are byte-identical, so a deterministic fault reproduces on all
		// of them — indistinguishable from a request-level error. Leaving
		// the marks would let one bad request brick the whole group into
		// ErrAllReplicasDown forever; restore the replicas this call
		// marked (never ones failed before it) and surface the error
		// per-request instead. A genuinely broken replica still stays
		// failed whenever any peer answers.
		for _, ri := range marked {
			g.state[ri].failed.Store(false)
		}
		return lastErr
	}
	return ErrAllReplicasDown
}

// callReplica dispatches fn to one replica, routing through the test-only
// fault hook when set.
func (e *Engine) callReplica(gi, ri int, fn func(sys *core.System) error) error {
	if e.faultHook != nil {
		if err := e.faultHook(gi, ri); err != nil {
			return err
		}
	}
	return fn(e.groups[gi].replicas[ri])
}

// Replicas returns the replica count per group (R).
func (e *Engine) Replicas() int { return len(e.groups[0].replicas) }

// FailReplica removes one replica from query routing — the operational
// "kill" used by failover drills. The replica keeps receiving ingest, so
// ReviveReplica restores it with the same corpus as its peers.
func (e *Engine) FailReplica(group, replica int) {
	e.groups[group].state[replica].failed.Store(true)
}

// ReviveReplica returns a failed replica to query routing.
func (e *Engine) ReviveReplica(group, replica int) {
	e.groups[group].state[replica].failed.Store(false)
}

// ReplicaStat is the observable state of one replica, surfaced by the
// serving tier's /stats and /metrics.
type ReplicaStat struct {
	Healthy  bool   `json:"healthy"`
	Reads    uint64 `json:"reads"`
	Inflight int64  `json:"inflight"`
}

// ReplicaStats snapshots per-replica health, read counts and in-flight
// load, indexed [group][replica].
func (e *Engine) ReplicaStats() [][]ReplicaStat {
	out := make([][]ReplicaStat, len(e.groups))
	for gi, g := range e.groups {
		out[gi] = make([]ReplicaStat, len(g.replicas))
		for ri := range g.replicas {
			st := &g.state[ri]
			out[gi][ri] = ReplicaStat{
				Healthy:  !st.failed.Load(),
				Reads:    st.reads.Load(),
				Inflight: st.inflight.Load(),
			}
		}
	}
	return out
}
