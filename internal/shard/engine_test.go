package shard

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/vectordb"
)

// queryMix returns the dataset's benchmark query texts.
func queryMix(ds *datasets.Dataset) []string {
	texts := make([]string, len(ds.Queries))
	for i, q := range ds.Queries {
		texts[i] = q.Text
	}
	return texts
}

// objectsOf strips timings so results compare on content only.
func objectsOf(results []*core.Result) [][]core.ResultObject {
	out := make([][]core.ResultObject, len(results))
	for i, r := range results {
		out[i] = r.Objects
	}
	return out
}

// TestShardedQueryMatchesSingleSystem is the scatter-gather determinism
// proof: a 4-shard engine under exact search returns byte-identical top-k
// (objects, scores, boxes, patch IDs — and the candidate-frame count) to
// the monolithic single-system path on the same dataset and seed. The flat
// index makes both sides' stage-1 top-fastK exact, so the only thing under
// test is the merge and routing logic itself.
func TestShardedQueryMatchesSingleSystem(t *testing.T) {
	const seed = 7
	cfg := core.Config{Seed: seed, Index: vectordb.IndexFlat}
	// QVHighlights generates 15 distinct clips, so all four shards own
	// videos — single-video corpora would leave three shards empty and
	// prove nothing about the merge.
	ds := datasets.QVHighlights(datasets.Config{Seed: seed, Scale: 0.04})

	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := single.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := single.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	eng, err := New(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	if got, want := eng.Entities(), single.Entities(); got != want {
		t.Fatalf("sharded entities = %d, single = %d", got, want)
	}

	queries := ds.Queries
	if testing.Short() {
		queries = queries[:2]
	}
	for _, q := range queries {
		for _, opts := range []core.QueryOptions{
			{},
			{DisableRerank: true},
			{FastK: 40, TopN: 5},
		} {
			want, err := single.Query(q.Text, opts)
			if err != nil {
				t.Fatalf("%s single: %v", q.ID, err)
			}
			got, err := eng.Query(q.Text, opts)
			if err != nil {
				t.Fatalf("%s sharded: %v", q.ID, err)
			}
			if !reflect.DeepEqual(got.Objects, want.Objects) {
				t.Errorf("%s opts %+v: sharded objects diverge\n got: %+v\nwant: %+v",
					q.ID, opts, got.Objects, want.Objects)
			}
			if got.CandidateFrames != want.CandidateFrames {
				t.Errorf("%s opts %+v: candidate frames %d != %d",
					q.ID, opts, got.CandidateFrames, want.CandidateFrames)
			}
		}
	}
}

// TestOneShardMatchesSingleSystemDefaultIndex pins the N=1 guarantee on the
// default (approximate) IMI index: a one-shard engine is the single-system
// path, bit for bit, whatever the index kind.
func TestOneShardMatchesSingleSystemDefaultIndex(t *testing.T) {
	const seed = 11
	cfg := core.Config{Seed: seed}
	ds := datasets.Cityscapes(datasets.Config{Seed: seed, Scale: 0.04})

	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Videos {
		if err := single.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := single.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	queries := ds.Queries
	if testing.Short() {
		queries = queries[:2]
	}
	for _, q := range queries {
		want, err := single.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Errorf("%s: one-shard engine diverges from single system", q.ID)
		}
	}
}

// TestMoreShardsThanVideos exercises empty shards: BuildIndex must skip
// them and queries must still merge correctly.
func TestMoreShardsThanVideos(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 3, Scale: 0.05})
	n := len(ds.Videos) + 3
	eng, err := New(n, core.Config{Seed: 3, Index: vectordb.IndexFlat})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if !eng.Built() {
		t.Fatal("engine must report built")
	}
	res, err := eng.Query(ds.Queries[0].Text, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) == 0 {
		t.Fatal("no results from sparse engine")
	}
}

func TestQueryBatchMatchesLoneQueries(t *testing.T) {
	ds := datasets.ActivityNetQA(datasets.Config{Seed: 5, Scale: 0.04})
	eng, err := New(2, core.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	texts := queryMix(ds)
	batch, err := eng.QueryBatch(texts, core.QueryOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	lone := make([]*core.Result, len(texts))
	for i, q := range texts {
		lone[i], err = eng.Query(q, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(objectsOf(batch), objectsOf(lone)) {
		t.Fatal("batch results diverge from lone queries")
	}
}

// TestQueryBatchPlannedMatchesLoneQueries drives the batched scatter path
// (one ScatterSearchBatch per backend, grouped stage-1 sweeps inside each
// shard) over a flat index with a deliberately mixed plan set — default,
// wider FastK, pinned int8, exhaustive — and pins bit-identity against
// lone QueryPlanned runs of the very same plans.
func TestQueryBatchPlannedMatchesLoneQueries(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 11, Scale: 0.04})
	eng, err := New(3, core.Config{Seed: 11, Index: vectordb.IndexFlat})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	texts := queryMix(ds)
	if len(texts) > 6 {
		texts = texts[:6]
	}
	plans := make([]core.Plan, len(texts))
	for i, text := range texts {
		opts := core.QueryOptions{}
		switch i % 3 {
		case 1:
			opts.FastK = 24
		case 2:
			opts.Int8 = true
		}
		if plans[i], err = eng.PlanQuery(text, opts); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := eng.QueryBatchPlanned(t.Context(), texts, plans, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	lone := make([]*core.Result, len(texts))
	for i, text := range texts {
		if lone[i], err = eng.QueryPlanned(t.Context(), text, plans[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(objectsOf(batch), objectsOf(lone)) {
		t.Fatal("batched planned results diverge from lone queries")
	}
}

func TestUnknownTermsError(t *testing.T) {
	eng, err := New(2, core.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := datasets.Bellevue(datasets.Config{Seed: 1, Scale: 0.05})
	if err := eng.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query("zorgon blaxt", core.QueryOptions{}); err == nil {
		t.Fatal("unparseable query must error")
	}
}

// TestConcurrentQueriesDuringIngest races queries against ongoing ingest
// and rebuilds across shards (run with -race).
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	ds := datasets.QVHighlights(datasets.Config{Seed: 9, Scale: 0.04})
	eng, err := New(3, core.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	half := (len(ds.Videos) + 1) / 2
	for i := 0; i < half; i++ {
		if err := eng.Ingest(&ds.Videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	gen := eng.IngestGen()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := half; i < len(ds.Videos); i++ {
			if err := eng.Ingest(&ds.Videos[i]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := eng.BuildIndex(); err != nil {
			t.Error(err)
		}
	}()
	texts := queryMix(ds)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := eng.Query(texts[(c+i)%len(texts)], core.QueryOptions{Workers: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if eng.IngestGen() <= gen {
		t.Fatal("ingest generation must advance across ingest and rebuild")
	}
	st := eng.Stats()
	if st.Videos != len(ds.Videos) {
		t.Fatalf("stats videos = %d want %d", st.Videos, len(ds.Videos))
	}
}

func TestNewRejectsZeroShards(t *testing.T) {
	if _, err := New(0, core.Config{}); err == nil {
		t.Fatal("zero shards must error")
	}
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	cfg := core.Config{Seed: 21}
	ds := datasets.ActivityNetQA(datasets.Config{Seed: 21, Scale: 0.04})
	orig, err := New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.IngestDataset(ds); err != nil {
		t.Fatal(err)
	}
	if err := orig.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Mismatched shard count is rejected.
	mismatch, err := New(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mismatch.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shard-count mismatch must error")
	}

	restored, err := New(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Entities() != orig.Entities() || !restored.Built() {
		t.Fatalf("restored engine: %d entities (want %d), built=%t",
			restored.Entities(), orig.Entities(), restored.Built())
	}
	for _, q := range ds.Queries[:3] {
		want, err := orig.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Query(q.Text, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("%s: restored engine answers diverge", q.ID)
		}
	}
}
