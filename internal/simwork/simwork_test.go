package simwork

import (
	"testing"
	"time"
)

func TestBurnScalesWithCost(t *testing.T) {
	// Interleave the two costs so background load affects both equally.
	var small, large time.Duration
	for i := 0; i < 30; i++ {
		s := time.Now()
		Burn(1_000)
		small += time.Since(s)
		s = time.Now()
		Burn(20_000)
		large += time.Since(s)
	}
	if large < small*3 {
		t.Fatalf("20x work should take clearly longer: %v vs %v", small, large)
	}
}

func TestBurnZeroIsNoop(t *testing.T) {
	Burn(0) // must not panic or hang
}

func TestSinkObservable(t *testing.T) {
	Burn(1)
	if Sink() == 0 {
		t.Fatal("Burn must produce a nonzero accumulation")
	}
}

func TestBurnConcurrent(t *testing.T) {
	// Run under -race: concurrent Burn calls must not race on the sink.
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				Burn(100)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if Sink() == 0 {
		t.Fatal("concurrent Burn must still accumulate")
	}
}
