// Package simwork provides the simulated-compute primitive shared by every
// stand-in for GPU model inference (ViT encoders, detectors, moment
// transformers, LLM decoding). Burn performs real dense floating-point work
// so that measured latencies scale with the amount of inference each
// architecture performs — the property the paper's runtime comparisons
// depend on — while the semantic outputs come from the synthetic channels.
//
// One unit is one 64-dimensional dot product (~tens of nanoseconds); cost
// constants across the repository are expressed in these units.
package simwork

var bufA, bufB [64]float32

func init() {
	for i := range bufA {
		bufA[i] = float32(i%7) * 0.25
		bufB[i] = float32(i%5) * 0.5
	}
}

// Sink defeats dead-code elimination; exported so tests can observe it.
var Sink float32

// Burn performs cost units of work.
func Burn(cost int) {
	var acc float32
	for c := 0; c < cost; c++ {
		var s float32
		for i := 0; i < 64; i++ {
			s += bufA[i] * bufB[i]
		}
		acc += s
	}
	Sink = acc
}
