// Package simwork provides the simulated-compute primitive shared by every
// stand-in for GPU model inference (ViT encoders, detectors, moment
// transformers, LLM decoding). Burn performs real dense floating-point work
// so that measured latencies scale with the amount of inference each
// architecture performs — the property the paper's runtime comparisons
// depend on — while the semantic outputs come from the synthetic channels.
//
// One unit is one 64-dimensional dot product (~tens of nanoseconds); cost
// constants across the repository are expressed in these units.
package simwork

import (
	"math"
	"sync/atomic"
)

var bufA, bufB [64]float32

func init() {
	for i := range bufA {
		bufA[i] = float32(i%7) * 0.25
		bufB[i] = float32(i%5) * 0.5
	}
}

// sink defeats dead-code elimination. Burn runs concurrently under the
// parallel ingest/rerank engine, so the store must be atomic.
var sink atomic.Uint32

// Sink returns the last nonzero Burn accumulation; exported so tests can
// observe that Burn's work is not eliminated.
func Sink() float32 { return math.Float32frombits(sink.Load()) }

// Burn performs cost units of work. It is safe to call from many goroutines.
func Burn(cost int) {
	if cost <= 0 {
		return
	}
	var acc float32
	for c := 0; c < cost; c++ {
		var s float32
		for i := 0; i < 64; i++ {
			//lovo:kernel-ok deliberate un-optimized burn loop: the point is spending cycles the compiler cannot elide, not computing a dot product
			s += bufA[i] * bufB[i]
		}
		acc += s
	}
	sink.Store(math.Float32bits(acc))
}
