package baselines

import (
	"hash/fnv"
	"math/rand/v2"

	"repro/internal/query"
	"repro/internal/video"
	"repro/internal/vocab"
)

// Detector simulates a trained closed-vocabulary object detector: it
// reports MSCOCO classes only (an SUV is detected as a car, a woman as a
// person), observes colour/size attributes with bounded accuracy, misses
// small objects more often, and spends CostPerFrame units of real compute
// per frame — the knob that separates fast, medium and accurate ensemble
// members.
type Detector struct {
	// Name labels the ensemble member.
	Name string
	// CostPerFrame is the per-frame compute in burn units.
	CostPerFrame int
	// Recall is the base detection probability for a normal-size object.
	Recall float64
	// AttrAcc is the probability of observing a true attribute.
	AttrAcc float64
	// AttrConfuse is the probability of mis-reading a colour.
	AttrConfuse float64
	// BoxJitter is the localisation error fraction.
	BoxJitter float64
	// Seed decorrelates detectors.
	Seed uint64
}

// Stock detectors used by the QD-search baselines. Costs are calibrated so
// per-query full-dataset sweeps land in the paper's regime relative to
// LOVO's index lookup + bounded rerank (up to ~85× slower for the ensemble,
// ~9× for the tracker sweep).
var (
	fastDetector     = Detector{Name: "fast", CostPerFrame: 3_500, Recall: 0.62, AttrAcc: 0.55, AttrConfuse: 0.18, BoxJitter: 0.12, Seed: 0xfa57}
	mediumDetector   = Detector{Name: "medium", CostPerFrame: 14_000, Recall: 0.82, AttrAcc: 0.75, AttrConfuse: 0.10, BoxJitter: 0.08, Seed: 0x3ed1}
	accurateDetector = Detector{Name: "accurate", CostPerFrame: 55_000, Recall: 0.94, AttrAcc: 0.9, AttrConfuse: 0.04, BoxJitter: 0.05, Seed: 0xacc0}
)

// confusableColors is the colour label set a detector may mis-read into.
var confusableColors = []string{"red", "black", "white", "blue", "grey", "green", "yellow"}

// Detection is one detector output.
type Detection struct {
	// VideoID and FrameIdx locate the frame.
	VideoID, FrameIdx int
	// Class is the detected (COCO) class.
	Class string
	// Box is the predicted box.
	Box video.Box
	// Attrs holds the observed attribute terms.
	Attrs map[string]bool
	// Conf is the detection confidence.
	Conf float32
	// Track is the underlying ground-truth track (tracker association).
	Track int64
}

func detSeed(seed uint64, parts ...int64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	put(seed)
	for _, p := range parts {
		put(uint64(p))
	}
	return h.Sum64()
}

// Detect runs the detector on one frame.
func (d *Detector) Detect(f *video.Frame) []Detection {
	burn(d.CostPerFrame)
	var out []Detection
	for i := range f.Objects {
		o := &f.Objects[i]
		coco := vocab.ClosestCOCO(o.Class)
		if coco == "" {
			continue
		}
		seed := detSeed(d.Seed, int64(f.VideoID), int64(f.Index), o.Track)
		rng := rand.New(rand.NewPCG(seed, seed^0xdec0de))
		// Small objects are harder.
		p := d.Recall
		if o.Box.Area() < 0.004 {
			p *= 0.6
		}
		if rng.Float64() > p {
			continue
		}
		attrs := make(map[string]bool)
		observe := func(term string) {
			t, ok := vocab.Lookup(term)
			if !ok {
				return
			}
			switch t.Kind {
			case vocab.KindColor:
				// Vehicle paint reads reliably; clothing colours on
				// people are small regions a stock detector barely
				// resolves — part of why QD-search struggles with
				// the detailed person queries (Q1.2, Q1.4, Q3.2).
				acc := d.AttrAcc
				if o.Class == "person" {
					acc *= 0.4
				}
				if rng.Float64() < d.AttrConfuse {
					attrs[confusableColors[rng.IntN(len(confusableColors))]] = true
					return
				}
				if rng.Float64() < acc {
					attrs[t.Name] = true
				}
			case vocab.KindSize:
				if rng.Float64() < d.AttrAcc {
					attrs[t.Name] = true
				}
			default:
				// Clothing details, parts and open-world subtype
				// terms are below a stock detector's granularity.
			}
		}
		for _, a := range o.Attrs {
			observe(a)
		}
		for _, c := range f.Context {
			attrs[c] = true // scene context is known to the pipeline
		}
		for _, bh := range o.Behaviors {
			// Motion-derived behaviours are visible to tracking
			// pipelines, subject to the model's attribute accuracy.
			if bh == "driving" || bh == "walking" || bh == "parked" {
				if rng.Float64() < d.AttrAcc {
					attrs[bh] = true
				}
			}
		}
		jit := func(scale float64) float64 { return rng.NormFloat64() * d.BoxJitter * scale }
		box := video.Box{
			X: o.Box.X + jit(o.Box.W), Y: o.Box.Y + jit(o.Box.H),
			W: o.Box.W * (1 + jit(1)), H: o.Box.H * (1 + jit(1)),
		}.Clip()
		out = append(out, Detection{
			VideoID: f.VideoID, FrameIdx: f.Index,
			Class: coco, Box: box, Attrs: attrs,
			Conf:  float32(0.5 + 0.5*rng.Float64()),
			Track: o.Track,
		})
	}
	return out
}

// scoreDetection grades a detection against a parsed query through the
// detector channel: the subject must map to the detected class, attributes
// and context add fractional credit, and relation terms are invisible —
// the architectural ceiling of QD-search systems on complex queries.
func scoreDetection(det Detection, p query.Parsed) (float32, bool) {
	classOK := len(p.Subject) == 0
	for _, s := range p.Subject {
		if vocab.ClosestCOCO(s.Name) == det.Class {
			classOK = true
			break
		}
	}
	if !classOK {
		return 0, false
	}
	score := float32(0.5)
	extra := 0
	matched := 0
	for _, a := range p.Attrs {
		extra++
		if det.Attrs[a.Name] {
			matched++
		}
	}
	for _, c := range p.Context {
		extra++
		if det.Attrs[c.Name] {
			matched++
		}
	}
	for _, r := range p.Relations {
		if r.Kind == vocab.KindBehavior {
			extra++
			if det.Attrs[r.Name] {
				matched++
			}
		}
		// Spatial relations: unobservable; silently dropped.
	}
	if extra > 0 {
		score += 0.45 * float32(matched) / float32(extra)
	} else {
		score += 0.45
	}
	return score + det.Conf*0.05, true
}
