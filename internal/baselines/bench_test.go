package baselines

import "testing"

// BenchmarkBurnUnit calibrates the simulated-compute unit (one 64-dim dot
// product).
func BenchmarkBurnUnit(b *testing.B) {
	for n := 0; n < b.N; n++ {
		burn(1)
	}
}

// BenchmarkDetectorFrame measures one accurate-detector frame pass.
func BenchmarkDetectorFrame(b *testing.B) {
	f := frameForBench()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		accurateDetector.Detect(f)
	}
}
