package baselines

import (
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/vocab"
)

// VOCAL is the QA-index baseline: at ingest it runs a predefined-class
// detector over sampled keyframes and builds a spatio-temporal scene-graph
// index of (class, attributes, pairwise proximity) entries. Queries are
// index lookups — near-instant — but any term outside the closed vocabulary
// makes the query unsupported, which is why the paper reports it "nearly
// unable to recognize most of the queries".
type VOCAL struct {
	det     Detector
	entries []vocalEntry
	allowed map[string]bool
}

type vocalEntry struct {
	det     Detection
	nearIdx []int // scene-graph proximity edges (indices into entries of same frame)
}

// NewVOCAL returns the baseline with its stock detector.
func NewVOCAL() *VOCAL {
	allowed := map[string]bool{}
	for _, c := range vocab.COCOClasses() {
		allowed[c] = true
	}
	// The index additionally stores scene context, tracked behaviours
	// and one proximity relation — but no appearance attributes: novel
	// features like colours are exactly what the paper says QA-index
	// methods cannot express.
	for _, t := range []string{"road", "street", "intersection", "sidewalk",
		"next to", "driving", "walking", "parked"} {
		allowed[t] = true
	}
	return &VOCAL{det: mediumDetector, allowed: allowed}
}

// Name implements Method.
func (v *VOCAL) Name() string { return "VOCAL" }

// Prepare implements Method: detector pass over keyframes plus graph build.
func (v *VOCAL) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	kf := keyframe.Uniform{Interval: 5}
	v.entries = v.entries[:0]
	for vi := range ds.Videos {
		vid := &ds.Videos[vi]
		for _, fi := range kf.Select(vid) {
			f := &vid.Frames[fi]
			dets := v.det.Detect(f)
			base := len(v.entries)
			for _, d := range dets {
				v.entries = append(v.entries, vocalEntry{det: d})
			}
			// Scene-graph edges within the frame.
			for i := base; i < len(v.entries); i++ {
				for j := base; j < len(v.entries); j++ {
					if i != j && v.entries[i].det.Box.CenterDist(v.entries[j].det.Box) < 0.18 {
						v.entries[i].nearIdx = append(v.entries[i].nearIdx, j)
					}
				}
			}
		}
	}
	return time.Since(start), nil
}

// Supports implements Method: every parsed term must be in the index
// vocabulary.
func (v *VOCAL) Supports(text string) bool {
	p := query.Parse(text)
	if len(p.Terms) == 0 {
		return false
	}
	return !p.HasTermOutside(v.allowed)
}

// Query implements Method with a pure index lookup.
func (v *VOCAL) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	if !v.Supports(text) {
		// Unsupported: the system cannot express the query.
		return nil, time.Since(start), nil
	}
	p := query.Parse(text)
	var out []metrics.Retrieved
	for _, e := range v.entries {
		s, ok := scoreDetection(e.det, p)
		if !ok {
			continue
		}
		// The one relation the graph stores.
		for _, r := range p.Relations {
			if r.Name == "next to" && len(e.nearIdx) > 0 {
				s += 0.1
			}
		}
		out = append(out, metrics.Retrieved{
			VideoID: e.det.VideoID, FrameIdx: e.det.FrameIdx, Box: e.det.Box, Score: s,
		})
	}
	sortRetrieved(out)
	out = metrics.Truncate(out, depth)
	return out, time.Since(start), nil
}

// sortRetrieved orders results by descending score with deterministic
// tie-breaks.
func sortRetrieved(rs []metrics.Retrieved) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		if rs[i].VideoID != rs[j].VideoID {
			return rs[i].VideoID < rs[j].VideoID
		}
		return rs[i].FrameIdx < rs[j].FrameIdx
	})
}
