package baselines

import (
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/embed"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/video"
)

// UMT is the end-to-end moment-retrieval baseline: videos are processed
// into clip windows (mean-pooled frame features), and at query time a
// transformer cross-attends the query against every window — which is why
// its search time dwarfs its processing time in the paper's Table III. It
// retrieves moments, not objects, so its boxes come from a coarse
// moment-level proposal and it struggles with small objects; its training
// domain is everyday footage, depressing accuracy on traffic scenes.
type UMT struct {
	space   *embed.Space
	vision  *embed.VisionEncoder
	text    *embed.TextEncoder
	windows []umtWindow
}

type umtWindow struct {
	videoID  int
	firstIdx int
	midIdx   int
	emb      mat.Vec
	frames   []*video.Frame
}

// umtWindowSize is the clip-window length in sampled frames.
const umtWindowSize = 8

// NewUMT returns the baseline.
func NewUMT() *UMT {
	space := embed.NewSpace(64, 32, 0x07a7)
	return &UMT{
		space:  space,
		vision: &embed.VisionEncoder{Space: space, Seed: 0x07a7},
		text:   &embed.TextEncoder{Space: space},
	}
}

// Name implements Method.
func (u *UMT) Name() string { return "UMT" }

// Prepare implements Method: window pooling over sampled frames.
func (u *UMT) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	u.windows = u.windows[:0]
	for vi := range ds.Videos {
		v := &ds.Videos[vi]
		for base := 0; base < len(v.Frames); base += umtWindowSize {
			end := base + umtWindowSize
			if end > len(v.Frames) {
				end = len(v.Frames)
			}
			emb := mat.NewVec(u.space.Dim)
			var frames []*video.Frame
			for fi := base; fi < end; fi += 2 {
				f := &v.Frames[fi]
				mat.Axpy(emb, 1, u.vision.FrameEmbedding(f))
				fc := *f
				frames = append(frames, &fc)
			}
			mat.Normalize(emb)
			u.windows = append(u.windows, umtWindow{
				videoID:  v.ID,
				firstIdx: base,
				midIdx:   (base + end) / 2,
				emb:      emb,
				frames:   frames,
			})
		}
	}
	return time.Since(start), nil
}

// Supports implements Method: open vocabulary via its language branch.
func (u *UMT) Supports(text string) bool {
	return len(query.Parse(text).Terms) > 0
}

// umtAttendCost is the per-window query-time transformer cost.
const umtAttendCost = 40_000

// Query implements Method: query-time cross-attention over every window.
func (u *UMT) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	p := query.Parse(text)
	q := u.text.FastVec(p)
	if len(p.Terms) == 0 {
		return nil, time.Since(start), nil
	}
	type winScore struct {
		wi    int
		score float32
	}
	scores := make([]winScore, 0, len(u.windows))
	for wi := range u.windows {
		burn(umtAttendCost) // moment transformer pass per window
		scores = append(scores, winScore{wi, mat.Dot(q, u.windows[wi].emb)})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].wi < scores[j].wi
	})
	var out []metrics.Retrieved
	for _, ws := range scores {
		if len(out) >= depth {
			break
		}
		w := &u.windows[ws.wi]
		// Moment-level proposal: the dominant object of the window's
		// middle frame (small objects are below moment granularity).
		if len(w.frames) == 0 {
			continue
		}
		f := w.frames[len(w.frames)/2]
		bi := -1
		for oi := range f.Objects {
			if bi < 0 || f.Objects[oi].Box.Area() > f.Objects[bi].Box.Area() {
				bi = oi
			}
		}
		if bi < 0 {
			continue
		}
		out = append(out, metrics.Retrieved{
			VideoID: w.videoID, FrameIdx: f.Index,
			Box: f.Objects[bi].Box, Score: ws.score,
		})
	}
	return out, time.Since(start), nil
}
