package baselines

import (
	"math/rand/v2"
	"time"

	"repro/internal/datasets"
	"repro/internal/keyframe"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/video"
)

// VISA is the LLM reasoning-segmentation baseline: a large vision-language
// model reasons over each sampled frame with sequential token processing,
// producing precise segmentations when the footage resembles its everyday
// training distribution (QVHighlights-, ActivityNet-style scenes) and
// degrading on surveillance footage. Both its processing and its per-query
// search burn autoregressive-scale compute, making it by far the slowest
// system in Table III.
type VISA struct {
	ds       *datasets.Dataset
	everyday bool
	frames   []*video.Frame
}

// NewVISA returns the baseline.
func NewVISA() *VISA { return &VISA{} }

// Name implements Method.
func (v *VISA) Name() string { return "VISA" }

// Per-frame autoregressive costs (burn units). Sequential token generation
// is an order of magnitude above detector inference.
const (
	visaPrepCostPerFrame  = 90_000
	visaQueryCostPerFrame = 260_000
)

// Prepare implements Method: vision-encoder pre-pass over sampled frames.
func (v *VISA) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	v.ds = ds
	v.everyday = ds.Name == "qvhighlights" || ds.Name == "activitynet"
	v.frames = v.frames[:0]
	kf := keyframe.Uniform{Interval: 6}
	for vi := range ds.Videos {
		vid := &ds.Videos[vi]
		for _, fi := range kf.Select(vid) {
			burn(visaPrepCostPerFrame)
			fc := vid.Frames[fi]
			v.frames = append(v.frames, &fc)
		}
	}
	return time.Since(start), nil
}

// Supports implements Method: an LLM accepts any text.
func (v *VISA) Supports(text string) bool {
	return len(query.Parse(text).Terms) > 0
}

// Query implements Method: per-frame language-model reasoning.
func (v *VISA) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	p := query.Parse(text)
	if len(p.Terms) == 0 {
		return nil, time.Since(start), nil
	}
	qTerms := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		qTerms = append(qTerms, t.Name)
	}
	// Reasoning quality depends on domain match: the model was tuned on
	// everyday footage with high-quality annotations, not surveillance
	// feeds (Section VII-B's explanation for its Fig. 6 profile).
	matchProb := 0.20
	relProb := 0.28
	wrongProb := 0.5
	if v.everyday {
		matchProb = 0.92
		relProb = 0.85
		wrongProb = 0.2
	}
	var out []metrics.Retrieved
	for fi, f := range v.frames {
		burn(visaQueryCostPerFrame)
		for oi := range f.Objects {
			seed := detSeed(0x915a, int64(f.VideoID), int64(f.Index), f.Objects[oi].Track)
			rng := rand.New(rand.NewPCG(seed, seed^0x11a))
			var score float32
			if f.MatchesTermsRelational(oi, qTerms) {
				// The model recognises a true positive with
				// domain-dependent probability; off-domain its
				// confidence overlaps its hallucinations, so
				// ranking cannot cleanly separate them.
				if rng.Float64() < matchProb*relProb {
					if v.everyday {
						score = float32(0.8 + 0.2*rng.Float64())
					} else {
						score = float32(0.55 + 0.45*rng.Float64())
					}
				} else {
					score = float32(0.3 * rng.Float64())
				}
			} else if f.MatchesTerms(oi, classOnly(p)) {
				// Right class, wrong details: the LLM often
				// rationalises these as matches, and off-domain
				// its confidence for them is indistinguishable
				// from its true positives.
				if rng.Float64() < wrongProb {
					if v.everyday {
						score = float32(0.3 + 0.3*rng.Float64())
					} else {
						score = float32(0.55 + 0.45*rng.Float64())
					}
				}
			}
			if score > 0 {
				out = append(out, metrics.Retrieved{
					VideoID: f.VideoID, FrameIdx: f.Index,
					Box: f.Objects[oi].Box, Score: score,
				})
			}
		}
		_ = fi
	}
	sortRetrieved(out)
	out = metrics.Truncate(out, depth)
	return out, time.Since(start), nil
}

// classOnly strips a parsed query to its subject terms.
func classOnly(p query.Parsed) []string {
	out := make([]string, 0, len(p.Subject))
	for _, s := range p.Subject {
		out = append(out, s.Name)
	}
	return out
}
