package baselines

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/vocab"
)

// MIRIS is the QD-search object-track baseline: query execution runs a
// detector-plus-tracker sweep over the dataset with coarse-to-fine
// sampling. Its preparation cost is dominated by per-dataset detector
// training and manual plan/parameter tuning, which is why the paper
// measures it as the slowest total time; its query-time scan is cheaper
// than FiGO's ensemble but far above an index lookup.
type MIRIS struct {
	ds *datasets.Dataset
	// coarseStep is the coarse sampling stride of the plan.
	coarseStep int
}

// NewMIRIS returns the baseline.
func NewMIRIS() *MIRIS { return &MIRIS{coarseStep: 8} }

// Name implements Method.
func (m *MIRIS) Name() string { return "MIRIS" }

// mirisTrainCostPerFrame models offline detector training plus manual plan
// and parameter tuning — the preparation overhead that makes MIRIS the
// slowest method in total execution time (Fig. 8).
const mirisTrainCostPerFrame = 165_000

// Prepare implements Method: detector training over the dataset.
func (m *MIRIS) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	m.ds = ds
	burn(ds.Frames() * mirisTrainCostPerFrame)
	// Plan construction samples the dataset several times while tuning
	// thresholds.
	for pass := 0; pass < 4; pass++ {
		for vi := range ds.Videos {
			v := &ds.Videos[vi]
			for fi := 0; fi < len(v.Frames); fi += m.coarseStep * 4 {
				accurateDetector.Detect(&v.Frames[fi])
			}
		}
	}
	return time.Since(start), nil
}

// Supports implements Method: detector-backed methods attempt any query
// whose subject maps into the detector vocabulary.
func (m *MIRIS) Supports(text string) bool {
	return detectorSupports(text)
}

// Query implements Method: coarse detector sweep, track association, fine
// refinement around hits.
func (m *MIRIS) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	p := query.Parse(text)
	type trackBest struct {
		r metrics.Retrieved
	}
	best := make(map[int64]trackBest)
	for vi := range m.ds.Videos {
		v := &m.ds.Videos[vi]
		// Coarse pass.
		for fi := 0; fi < len(v.Frames); fi += m.coarseStep {
			for _, det := range accurateDetector.Detect(&v.Frames[fi]) {
				s, ok := scoreDetection(det, p)
				if !ok {
					continue
				}
				// Fine refinement around the hit (the tracker
				// follows the object to adjacent frames).
				for _, off := range []int{-2, 2} {
					if fj := fi + off; fj >= 0 && fj < len(v.Frames) {
						fastDetector.Detect(&v.Frames[fj])
					}
				}
				cur, seen := best[det.Track]
				if !seen || s > cur.r.Score {
					best[det.Track] = trackBest{r: metrics.Retrieved{
						VideoID: det.VideoID, FrameIdx: det.FrameIdx, Box: det.Box, Score: s,
					}}
				}
			}
		}
	}
	out := make([]metrics.Retrieved, 0, len(best))
	for _, tb := range best {
		out = append(out, tb.r)
	}
	sortRetrieved(out)
	out = metrics.Truncate(out, depth)
	return out, time.Since(start), nil
}

// detectorSupports reports whether a query's subject is expressible through
// the COCO detector channel.
func detectorSupports(text string) bool {
	p := query.Parse(text)
	if len(p.Terms) == 0 {
		return false
	}
	if len(p.Subject) == 0 {
		return true
	}
	for _, s := range p.Subject {
		if vocab.ClosestCOCO(s.Name) != "" {
			return true
		}
	}
	return false
}
