// Package baselines implements architectural skeletons of the six systems
// the paper compares against, plus the hybrid scheme of the motivation
// study. Each baseline observes the same synthetic ground truth as LOVO but
// through the restricted, noisy channel its architecture dictates, and each
// performs real per-frame compute so latency shapes emerge from work
// actually done:
//
//   - VOCAL:  QA-index — predefined-class scene-graph index built at ingest;
//     closed vocabulary, near-instant queries, unsupported beyond it.
//   - MIRIS:  QD-search — per-query detector+tracker sweep; heavy offline
//     detector preparation, moderate query-time scan.
//   - FiGO:   QD-search — detector-ensemble full scan per query.
//   - ZELDA:  vision-based — CLIP-style global frame embeddings, flat
//     search, saliency-biased region proposals (largest objects win).
//   - UMT:    end-to-end moment retrieval — clip windows, query-time
//     cross-attention over every window.
//   - VISA:   LLM reasoning segmentation — enormous per-frame autoregressive
//     cost, domain bias towards everyday (non-surveillance) footage.
package baselines

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/simwork"
)

// Method is the interface the experiment harness drives.
type Method interface {
	// Name returns the system name used in tables.
	Name() string
	// Prepare runs the method's query-agnostic processing over the
	// dataset and returns the processing wall time.
	Prepare(ds *datasets.Dataset) (time.Duration, error)
	// Supports reports whether the method can execute the query at all
	// (closed-vocabulary systems reject out-of-vocabulary terms).
	Supports(text string) bool
	// Query answers a query with a ranked result list of at most depth
	// entries and the search wall time.
	Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error)
}

// burn delegates to the shared simulated-compute primitive.
func burn(cost int) { simwork.Burn(cost) }
