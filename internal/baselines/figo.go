package baselines

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/query"
)

// FiGO is the QD-search ensemble baseline: a family of detection models
// spanning the throughput/accuracy trade-off, with a per-query optimizer
// that picks an ensemble plan and then scans every frame at query time.
// Minimal preprocessing, but each distinct query pays a full dataset sweep
// — the source of the up-to-85× search-latency gap the paper reports.
type FiGO struct {
	ds *datasets.Dataset
}

// NewFiGO returns the baseline.
func NewFiGO() *FiGO { return &FiGO{} }

// Name implements Method.
func (f *FiGO) Name() string { return "FiGO" }

// Prepare implements Method: QD-search performs minimal preprocessing
// (Table I), just plan metadata collection.
func (f *FiGO) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	f.ds = ds
	burn(50_000) // profile the model zoo once
	return time.Since(start), nil
}

// Supports implements Method.
func (f *FiGO) Supports(text string) bool { return detectorSupports(text) }

// plan picks the ensemble for a query: simple queries run the fast model
// with accurate verification, complex ones run the accurate model
// everywhere plus a medium second opinion.
func (f *FiGO) plan(p query.Parsed) []*Detector {
	switch p.Grade() {
	case query.Simple:
		return []*Detector{&fastDetector, &accurateDetector}
	case query.Normal:
		return []*Detector{&mediumDetector, &accurateDetector}
	default:
		return []*Detector{&accurateDetector, &mediumDetector}
	}
}

// Query implements Method: full-dataset ensemble sweep. FiGO is a per-frame
// detection system, not a tracker, so every frame's detections enter the
// ranking independently.
func (f *FiGO) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	p := query.Parse(text)
	plan := f.plan(p)
	var out []metrics.Retrieved
	for vi := range f.ds.Videos {
		v := &f.ds.Videos[vi]
		for fi := range v.Frames {
			frame := &v.Frames[fi]
			// Cascade: the cheap model proposes, the second model
			// verifies on hit frames.
			dets := plan[0].Detect(frame)
			verified := false
			for _, det := range dets {
				s, ok := scoreDetection(det, p)
				if !ok {
					continue
				}
				if !verified {
					verified = true
					for _, det2 := range plan[1].Detect(frame) {
						if s2, ok2 := scoreDetection(det2, p); ok2 && det2.Track == det.Track {
							// Verification replaces score and box.
							s = (s + s2) / 2
							det.Box = det2.Box
						}
					}
				}
				out = append(out, metrics.Retrieved{
					VideoID: det.VideoID, FrameIdx: det.FrameIdx, Box: det.Box, Score: s,
				})
			}
		}
	}
	sortRetrieved(out)
	out = metrics.Truncate(out, depth)
	return out, time.Since(start), nil
}
