package baselines

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/query"
)

var dsCfg = datasets.Config{Seed: 7, FPS: 1, Scale: 0.08}

func termsOf(q string) []string {
	p := query.Parse(q)
	out := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		out = append(out, t.Name)
	}
	return out
}

func allMethods() []Method {
	return []Method{NewVOCAL(), NewMIRIS(), NewFiGO(), NewZELDA(), NewUMT(), NewVISA(), NewHybrid()}
}

func TestMethodContract(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	for _, m := range allMethods() {
		t.Run(m.Name(), func(t *testing.T) {
			prep, err := m.Prepare(ds)
			if err != nil {
				t.Fatal(err)
			}
			if prep <= 0 {
				t.Fatal("prepare time must be positive")
			}
			res, search, err := m.Query("A bus driving on the road.", 40)
			if err != nil {
				t.Fatal(err)
			}
			if search <= 0 {
				t.Fatal("search time must be positive")
			}
			if len(res) > 40 {
				t.Fatalf("depth violated: %d", len(res))
			}
			for i := 1; i < len(res); i++ {
				if res[i].Score > res[i-1].Score {
					t.Fatal("results must be sorted descending")
				}
			}
		})
	}
}

func TestVOCALClosedVocabulary(t *testing.T) {
	v := NewVOCAL()
	if !v.Supports("car") {
		t.Fatal("predefined class must be supported")
	}
	if !v.Supports("A person walking on the street.") {
		t.Fatal("class+behaviour+context queries are indexable")
	}
	if v.Supports("red car in road") {
		t.Fatal("novel appearance features are outside the QA index")
	}
	if v.Supports("A black SUV driving in the intersection of the road.") {
		t.Fatal("suv is outside the predefined classes")
	}
	if v.Supports("A red-hair woman with white dress sitting inside a car.") {
		t.Fatal("red-hair is outside the index vocabulary")
	}
	if v.Supports("A red car side by side with another car, both positioned in the center of the road.") {
		t.Fatal("side by side is not an indexed relation")
	}
	if v.Supports("") {
		t.Fatal("empty query unsupported")
	}
	// Unsupported queries return empty, not error.
	ds := datasets.Bellevue(dsCfg)
	if _, err := v.Prepare(ds); err != nil {
		t.Fatal(err)
	}
	res, _, err := v.Query("A black SUV driving in the intersection of the road.", 40)
	if err != nil || len(res) != 0 {
		t.Fatalf("unsupported query: res=%d err=%v", len(res), err)
	}
}

func TestQDSearchSupportsNovelFeaturesNotRelations(t *testing.T) {
	// MIRIS/FiGO attempt attribute queries (normal) and even SUV queries
	// (mapped to car, with precision loss) — but their detections carry
	// no spatial relations.
	for _, m := range []Method{NewMIRIS(), NewFiGO()} {
		if !m.Supports("A red car driving in the center of the road.") {
			t.Errorf("%s must attempt attribute queries", m.Name())
		}
		if !m.Supports("A black SUV driving in the intersection of the road.") {
			t.Errorf("%s attempts SUV queries through the car detector", m.Name())
		}
	}
}

func TestDetectorChannelAccuracyOrdering(t *testing.T) {
	ds := datasets.Beach(dsCfg)
	q := "A truck driving on the road."
	gt := datasets.GroundTruth(ds, termsOf(q))
	if len(gt) == 0 {
		t.Skip("no ground truth at this scale")
	}
	depth := metrics.Depth(gt)

	figo := NewFiGO()
	if _, err := figo.Prepare(ds); err != nil {
		t.Fatal(err)
	}
	res, _, err := figo.Query(q, depth)
	if err != nil {
		t.Fatal(err)
	}
	ap := metrics.AveragePrecision(res, gt, metrics.DefaultIoU)
	if ap < 0.2 {
		t.Fatalf("FiGO should handle a simple class query reasonably, AP=%v", ap)
	}
}

func TestZELDADilutesSmallObjects(t *testing.T) {
	// ZELDA must do notably worse on a small-object query (dog) than on
	// a large-object query (bus) relative to ground truth.
	ds := datasets.QVHighlights(dsCfg)
	z := NewZELDA()
	if _, err := z.Prepare(ds); err != nil {
		t.Fatal(err)
	}
	q := "A white dog inside a car."
	gt := datasets.GroundTruth(ds, termsOf(q))
	if len(gt) == 0 {
		t.Skip("no ground truth")
	}
	res, _, err := z.Query(q, metrics.Depth(gt))
	if err != nil {
		t.Fatal(err)
	}
	apDog := metrics.AveragePrecision(res, gt, metrics.DefaultIoU)
	// The dog shares frames with a larger woman; saliency proposals
	// favour her, so precision suffers. We only assert it is imperfect
	// while the pipeline still returns something.
	if len(res) == 0 {
		t.Fatal("ZELDA returned nothing")
	}
	if apDog > 0.9 {
		t.Fatalf("ZELDA should struggle with small objects, AP=%v", apDog)
	}
}

func TestUMTReturnsMoments(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	u := NewUMT()
	if _, err := u.Prepare(ds); err != nil {
		t.Fatal(err)
	}
	res, searchTime, err := u.Query("A bus driving on the road.", 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no moments")
	}
	if searchTime <= 0 {
		t.Fatal("query-time attention must take time")
	}
}

func TestVISADomainBias(t *testing.T) {
	// VISA should beat its own traffic-scene accuracy on everyday
	// footage.
	qvh := datasets.QVHighlights(dsCfg)
	bel := datasets.Bellevue(dsCfg)

	run := func(ds *datasets.Dataset, q string) float64 {
		v := NewVISA()
		if _, err := v.Prepare(ds); err != nil {
			t.Fatal(err)
		}
		gt := datasets.GroundTruth(ds, termsOf(q))
		if len(gt) == 0 {
			return -1
		}
		res, _, err := v.Query(q, metrics.Depth(gt))
		if err != nil {
			t.Fatal(err)
		}
		return metrics.AveragePrecision(res, gt, metrics.DefaultIoU)
	}
	apQVH := run(qvh, "A woman smiling sitting inside car.")
	apBel := run(bel, "A red car driving in the center of the road.")
	if apQVH < 0 || apBel < 0 {
		t.Skip("missing ground truth at this scale")
	}
	if apQVH <= apBel {
		t.Fatalf("VISA must be better in-domain: qvh=%v bellevue=%v", apQVH, apBel)
	}
}

func TestHybridFallsBack(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	h := NewHybrid()
	if _, err := h.Prepare(ds); err != nil {
		t.Fatal(err)
	}
	// Indexable query: fast.
	_, tIdx, err := h.Query("car", 20)
	if err != nil {
		t.Fatal(err)
	}
	// Unindexable: falls back to the sweep, much slower.
	_, tSweep, err := h.Query("A black SUV driving in the intersection of the road.", 20)
	if err != nil {
		t.Fatal(err)
	}
	if tSweep < tIdx*5 {
		t.Fatalf("fallback must be far slower: idx=%v sweep=%v", tIdx, tSweep)
	}
}

func TestSearchLatencyOrdering(t *testing.T) {
	// The headline latency shape: FiGO search ≫ MIRIS search, and both
	// dwarf VOCAL's index lookup.
	ds := datasets.Bellevue(dsCfg)
	vocal, miris, figo := NewVOCAL(), NewMIRIS(), NewFiGO()
	for _, m := range []Method{vocal, miris, figo} {
		if _, err := m.Prepare(ds); err != nil {
			t.Fatal(err)
		}
	}
	q := "A red car driving in the center of the road."
	_, tv, _ := vocal.Query(q, 40)
	_, tm, _ := miris.Query(q, 40)
	_, tf, _ := figo.Query(q, 40)
	if !(tf > tm && tm > tv) {
		t.Fatalf("latency ordering violated: vocal=%v miris=%v figo=%v", tv, tm, tf)
	}
}

func TestDetectorDeterminism(t *testing.T) {
	ds := datasets.Bellevue(dsCfg)
	f := &ds.Videos[0].Frames[40]
	a := accurateDetector.Detect(f)
	b := accurateDetector.Detect(f)
	if len(a) != len(b) {
		t.Fatal("detections differ between runs")
	}
	for i := range a {
		if a[i].Track != b[i].Track || a[i].Box != b[i].Box || a[i].Conf != b[i].Conf {
			t.Fatal("detection state differs")
		}
	}
}

func TestDetectorMapsOpenWorldClasses(t *testing.T) {
	ds := datasets.Bellevue(datasets.Config{Seed: 7, FPS: 1, Scale: 0.12})
	sawSUVAsCar := false
	for _, f := range ds.Videos[0].Frames {
		for oi := range f.Objects {
			if f.Objects[oi].Class == "suv" {
				for _, det := range accurateDetector.Detect(&f) {
					if det.Track == f.Objects[oi].Track && det.Class == "car" {
						sawSUVAsCar = true
					}
				}
			}
		}
		if sawSUVAsCar {
			break
		}
	}
	if !sawSUVAsCar {
		t.Fatal("detector must report SUVs as cars")
	}
}
