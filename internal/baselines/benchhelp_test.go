package baselines

import "repro/internal/video"

func frameForBench() *video.Frame {
	f := &video.Frame{VideoID: 1, Index: 0, Context: []string{"road"}}
	for i := 0; i < 6; i++ {
		f.Objects = append(f.Objects, video.Object{
			Track: int64(i), Class: "car", Attrs: []string{"red"},
			Box:       video.Box{X: 0.1 * float64(i), Y: 0.4, W: 0.1, H: 0.07},
			Behaviors: []string{"driving"},
		})
	}
	return f
}
