package baselines

import (
	"sort"
	"time"

	"repro/internal/ann"
	"repro/internal/ann/flat"
	"repro/internal/datasets"
	"repro/internal/embed"
	"repro/internal/keyframe"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/video"
)

// ZELDA is the vision-based baseline: CLIP-style global frame embeddings
// indexed flat, queried with the whole-sentence text embedding. It handles
// open vocabulary and is fast (no rerank), but the global pooling dilutes
// small objects and it proposes regions by saliency — the largest objects
// in a retrieved frame — which is exactly the "largest but incomplete
// object" failure mode the paper's qualitative study shows.
type ZELDA struct {
	space  *embed.Space
	vision *embed.VisionEncoder
	text   *embed.TextEncoder
	index  *flat.Index
	frames map[int64]*video.Frame
	nextID int64
	ids    map[int64][2]int
}

// NewZELDA returns the baseline sharing LOVO's embedding-space parameters.
func NewZELDA() *ZELDA {
	space := embed.NewSpace(64, 32, 0x2e1da)
	return &ZELDA{
		space:  space,
		vision: &embed.VisionEncoder{Space: space, Seed: 0x2e1da},
		text:   &embed.TextEncoder{Space: space},
	}
}

// Name implements Method.
func (z *ZELDA) Name() string { return "ZELDA" }

// zeldaEncodeCostPerFrame is the CLIP image-encoder forward pass, on par
// with LOVO's per-frame ViT cost (the paper's Table III shows comparable
// processing times).
const zeldaEncodeCostPerFrame = 13_000

// Prepare implements Method: embed sampled frames globally.
func (z *ZELDA) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	z.index = flat.New(z.space.Dim)
	z.frames = make(map[int64]*video.Frame)
	z.ids = make(map[int64][2]int)
	kf := keyframe.Uniform{Interval: 4}
	for vi := range ds.Videos {
		v := &ds.Videos[vi]
		for _, fi := range kf.Select(v) {
			f := &v.Frames[fi]
			burn(zeldaEncodeCostPerFrame)
			emb := z.vision.FrameEmbedding(f)
			id := z.nextID
			z.nextID++
			if err := z.index.Add(id, emb); err != nil {
				return 0, err
			}
			fc := *f
			z.frames[id] = &fc
			z.ids[id] = [2]int{v.ID, f.Index}
		}
	}
	return time.Since(start), nil
}

// Supports implements Method: open vocabulary.
func (z *ZELDA) Supports(text string) bool {
	return len(query.Parse(text).Terms) > 0
}

// Query implements Method.
func (z *ZELDA) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	p := query.Parse(text)
	// CLIP encodes the whole sentence; ZELDA has no stage that recovers
	// relations, so the fast vector is all it has.
	q := z.text.FastVec(p)
	if len(p.Terms) == 0 {
		return nil, time.Since(start), nil
	}
	hits := z.index.Search(q, depth, ann.Params{})
	var out []metrics.Retrieved
	for _, h := range hits {
		f := z.frames[h.ID]
		loc := z.ids[h.ID]
		// Saliency proposals: the largest objects dominate the global
		// embedding, so they are what the frame-level score localises.
		idxs := make([]int, len(f.Objects))
		for i := range idxs {
			idxs[i] = i
		}
		sort.Slice(idxs, func(a, b int) bool {
			return f.Objects[idxs[a]].Box.Area() > f.Objects[idxs[b]].Box.Area()
		})
		for n, oi := range idxs {
			if n == 2 {
				break
			}
			out = append(out, metrics.Retrieved{
				VideoID: loc[0], FrameIdx: loc[1],
				Box:   f.Objects[oi].Box,
				Score: h.Score - float32(n)*0.01,
			})
		}
	}
	sortRetrieved(out)
	out = metrics.Truncate(out, depth)
	return out, time.Since(start), nil
}
