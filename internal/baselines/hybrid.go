package baselines

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/metrics"
)

// Hybrid combines the QA-index and QD-search baselines the way the
// motivation study describes: queries the static index can express are
// answered from it; anything else falls back to a full QD-search sweep.
// When the index misses, the combination inherits QD-search's full cost —
// which is why the paper excludes hybrids from the main comparison.
type Hybrid struct {
	idx    *VOCAL
	search *FiGO
}

// NewHybrid returns the baseline.
func NewHybrid() *Hybrid {
	return &Hybrid{idx: NewVOCAL(), search: NewFiGO()}
}

// Name implements Method.
func (h *Hybrid) Name() string { return "Hybrid" }

// Prepare implements Method: both components prepare.
func (h *Hybrid) Prepare(ds *datasets.Dataset) (time.Duration, error) {
	start := time.Now()
	if _, err := h.idx.Prepare(ds); err != nil {
		return 0, err
	}
	if _, err := h.search.Prepare(ds); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Supports implements Method.
func (h *Hybrid) Supports(text string) bool {
	return h.idx.Supports(text) || h.search.Supports(text)
}

// Query implements Method: index first, sweep on miss.
func (h *Hybrid) Query(text string, depth int) ([]metrics.Retrieved, time.Duration, error) {
	start := time.Now()
	if h.idx.Supports(text) {
		out, _, err := h.idx.Query(text, depth)
		return out, time.Since(start), err
	}
	out, _, err := h.search.Query(text, depth)
	return out, time.Since(start), err
}
