package datasets

import (
	"testing"

	"repro/internal/query"
	"repro/internal/video"
)

// testCfg keeps generation fast: roughly 1/10 of full duration.
var testCfg = Config{Seed: 7, FPS: 1, Scale: 0.12}

func terms(q string) []string {
	p := query.Parse(q)
	out := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		out = append(out, t.Name)
	}
	return out
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.FPS != 1 || c.Scale != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if n := (Config{FPS: 1, Scale: 1e-9}.withDefaults()).frames(100); n < 30 {
		t.Fatalf("frame floor: %d", n)
	}
}

func TestAllDatasetsGenerate(t *testing.T) {
	for _, ds := range All(testCfg) {
		if ds.Frames() == 0 {
			t.Errorf("%s: no frames", ds.Name)
		}
		if ds.Objects() == 0 {
			t.Errorf("%s: no objects", ds.Name)
		}
		if len(ds.Queries) != 4 {
			t.Errorf("%s: %d queries", ds.Name, len(ds.Queries))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Bellevue(testCfg)
	b := Bellevue(testCfg)
	if a.Frames() != b.Frames() || a.Objects() != b.Objects() {
		t.Fatal("same seed must give identical datasets")
	}
	c := Bellevue(Config{Seed: 8, FPS: 1, Scale: 0.12})
	if a.Objects() == c.Objects() {
		t.Log("warning: different seeds gave same object count (possible but unlikely)")
	}
	// Deep check on one frame.
	fa := a.Videos[0].Frames[50]
	fb := b.Videos[0].Frames[50]
	if len(fa.Objects) != len(fb.Objects) {
		t.Fatal("frame 50 differs between equal-seed runs")
	}
	for i := range fa.Objects {
		if fa.Objects[i].Track != fb.Objects[i].Track || fa.Objects[i].Box != fb.Objects[i].Box {
			t.Fatal("object state differs between equal-seed runs")
		}
	}
}

func TestEveryQueryHasGroundTruth(t *testing.T) {
	dss := All(testCfg)
	dss = append(dss, ActivityNetQA(testCfg))
	for _, ds := range dss {
		for _, q := range ds.Queries {
			gt := GroundTruth(ds, terms(q.Text))
			if len(gt) < 2 {
				t.Errorf("%s %s: only %d ground-truth instances for %q", ds.Name, q.ID, len(gt), q.Text)
			}
		}
	}
}

func TestGroundTruthSelectivity(t *testing.T) {
	// Detailed queries must be strictly more selective than their simple
	// counterparts (Q2.4 ⊂ Q2.3, Q4.2 ⊂ Q4.1, Q4.4 ⊂ Q4.3).
	cases := []struct {
		ds            *Dataset
		narrow, broad string
	}{
		{Bellevue(testCfg), "A bus driving on the road with white roof and yellow-green body.", "A bus driving on the road."},
		{Beach(testCfg), "A green bus with the white roof driving on the road.", "A green bus driving on the road."},
		{Beach(testCfg), "A small white truck filled with cargo driving on the road.", "A truck driving on the road."},
	}
	for _, c := range cases {
		n := len(GroundTruth(c.ds, terms(c.narrow)))
		b := len(GroundTruth(c.ds, terms(c.broad)))
		if n >= b {
			t.Errorf("%s: narrow query has %d instances, broad has %d — expected narrow < broad", c.ds.Name, n, b)
		}
	}
}

func TestGroundTruthInstanceShape(t *testing.T) {
	ds := Bellevue(testCfg)
	gt := GroundTruth(ds, terms("A red car driving in the center of the road."))
	if len(gt) == 0 {
		t.Fatal("no instances")
	}
	for _, inst := range gt {
		if len(inst.Boxes) == 0 {
			t.Fatal("instance without boxes")
		}
		for fi, b := range inst.Boxes {
			if fi < 0 || b.Area() <= 0 {
				t.Fatalf("bad box at frame %d: %+v", fi, b)
			}
		}
	}
	// Instances must be sorted.
	for i := 1; i < len(gt); i++ {
		if gt[i].VideoID < gt[i-1].VideoID ||
			(gt[i].VideoID == gt[i-1].VideoID && gt[i].Track <= gt[i-1].Track) {
			t.Fatal("instances not sorted by (video, track)")
		}
	}
}

func TestBellevueHasSUVs(t *testing.T) {
	ds := Bellevue(testCfg)
	gt := GroundTruth(ds, terms("A black SUV driving in the intersection of the road."))
	if len(gt) == 0 {
		t.Fatal("motivation experiment needs black SUVs in Bellevue")
	}
}

func TestQ34NeighborGroundTruth(t *testing.T) {
	ds := QVHighlights(testCfg)
	full := GroundTruth(ds, terms("A white dog inside a car, next to a woman wearing black clothes."))
	plain := GroundTruth(ds, terms("A white dog inside a car."))
	if len(full) == 0 {
		t.Fatal("Q3.4 has no ground truth")
	}
	if len(full) > len(plain) {
		t.Fatalf("Q3.4 (%d) cannot exceed Q3.3 (%d)", len(full), len(plain))
	}
}

func TestCityscapesMovingCamera(t *testing.T) {
	ds := Cityscapes(testCfg)
	if !ds.MovingCamera {
		t.Fatal("cityscapes must be flagged moving-camera")
	}
	f := ds.Videos[0].Frames[10]
	if f.CamMotion[0] == 0 {
		t.Fatal("cityscapes frames must carry camera motion")
	}
	if f.MotionEnergy() == 0 {
		t.Fatal("moving camera must yield nonzero motion energy")
	}
}

func TestQVHighlightsStructure(t *testing.T) {
	ds := QVHighlights(testCfg)
	if len(ds.Videos) != 15 {
		t.Fatalf("qvh videos = %d want 15", len(ds.Videos))
	}
	// Shots must change within a video (hand-held clips).
	v := ds.Videos[0]
	if v.Frames[0].Shot == v.Frames[len(v.Frames)-1].Shot {
		t.Fatal("expected shot changes")
	}
}

func TestActivityNetStructure(t *testing.T) {
	ds := ActivityNetQA(testCfg)
	if len(ds.Videos) != 12 {
		t.Fatalf("activitynet videos = %d want 12", len(ds.Videos))
	}
	for _, q := range ds.Queries {
		if q.ID == "" || q.Text == "" {
			t.Fatal("empty query")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cityscapes", "bellevue", "qvhighlights", "beach", "activitynet"} {
		ds, err := ByName(name, testCfg)
		if err != nil || ds == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", testCfg); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestMotivationQueries(t *testing.T) {
	mq := MotivationQueries()
	for _, grade := range []string{"simple", "normal", "complex"} {
		if len(mq[grade]) == 0 {
			t.Errorf("missing %s queries", grade)
		}
	}
	// Grades must match the parser's assessment.
	for _, q := range mq["simple"] {
		if query.Parse(q).Grade() != query.Simple {
			t.Errorf("%q should parse simple", q)
		}
	}
	for _, q := range mq["complex"] {
		if query.Parse(q).Grade() != query.Complex {
			t.Errorf("%q should parse complex", q)
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	small := Bellevue(Config{Seed: 7, FPS: 1, Scale: 0.05})
	big := Bellevue(Config{Seed: 7, FPS: 1, Scale: 0.2})
	if small.Frames() >= big.Frames() {
		t.Fatalf("scale must grow dataset: %d vs %d", small.Frames(), big.Frames())
	}
}

func TestBoxesStayInUnitFrame(t *testing.T) {
	for _, ds := range All(testCfg) {
		for _, v := range ds.Videos {
			for _, f := range v.Frames {
				for _, o := range f.Objects {
					b := o.Box
					if b.X < 0 || b.Y < 0 || b.X+b.W > 1.0001 || b.Y+b.H > 1.0001 || b.Area() <= 0 {
						t.Fatalf("%s: box out of frame: %+v", ds.Name, b)
					}
				}
			}
		}
	}
}

func TestTracksAreConsistent(t *testing.T) {
	// A track must keep its class and attrs across frames.
	ds := Bellevue(testCfg)
	type info struct {
		class string
		attrs string
	}
	seen := map[int64]info{}
	for _, f := range ds.Videos[0].Frames {
		for _, o := range f.Objects {
			key := info{o.Class, join(o.Attrs)}
			if prev, ok := seen[o.Track]; ok && prev != key {
				t.Fatalf("track %d changed identity: %+v -> %+v", o.Track, prev, key)
			}
			seen[o.Track] = key
		}
	}
	if len(seen) < 10 {
		t.Fatalf("expected many tracks, got %d", len(seen))
	}
}

func join(s []string) string {
	out := ""
	for _, x := range s {
		out += x + "|"
	}
	return out
}

var _ = video.Box{} // keep import if helpers change
