package datasets

import "repro/internal/video"

// Cityscapes generates the moving-camera urban workload standing in for the
// Cityscapes Stuttgart dash-cam sequence: a car-mounted camera driving along
// streets lined with pedestrians, cyclists and parked vehicles.
func Cityscapes(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	b := newBuilder(cfg.Seed ^ 0xc17)

	rules := []spawnRule{
		// Q1.1 targets: pedestrians walking along the street.
		{every: 41, prob: 0.05, make: func(b *builder) []actor {
			attrs := []string{pick(b, []string{"dark", "blue", "grey"}), "clothing"}
			return []actor{b.walker(attrs...)}
		}},
		// Q1.2 targets: light-dressed pedestrians carrying a dark bag
		// (composite person+bag object; "holding" derives from the attrs).
		{every: 173, phase: 11, prob: 0.010, make: func(b *builder) []actor {
			return []actor{b.walker("light", "clothing", "bag", "dark")}
		}},
		// Distractors: light-dressed without bag, dark-dressed with bag.
		{prob: 0.02, make: func(b *builder) []actor {
			if b.chance(0.5) {
				return []actor{b.walker("light", "clothing")}
			}
			return []actor{b.walker("dark", "clothing", "bag", "light")}
		}},
		// Q1.3 targets: cyclists (person riding a bicycle).
		{every: 101, phase: 7, prob: 0.015, make: func(b *builder) []actor {
			a := b.walker(pick(b, []string{"grey", "blue", "red"}), "clothing", "bicycle")
			a.obj.Behaviors = []string{"riding"}
			a.obj.Box.W, a.obj.Box.H = 0.07, 0.14
			a.obj.Vel[0] *= 3
			return []actor{a}
		}},
		// Q1.4 targets: cyclist in black t-shirt and blue jeans.
		{every: 193, phase: 29, prob: 0.006, make: func(b *builder) []actor {
			a := b.walker("black", "t-shirt", "blue", "jeans", "bicycle")
			a.obj.Behaviors = []string{"riding"}
			a.obj.Box.W, a.obj.Box.H = 0.07, 0.14
			a.obj.Vel[0] *= 3
			return []actor{a}
		}},
		// Cyclist distractor: wrong outfit.
		{prob: 0.008, make: func(b *builder) []actor {
			a := b.walker("white", "t-shirt", "black", "jeans", "bicycle")
			a.obj.Behaviors = []string{"riding"}
			a.obj.Vel[0] *= 3
			return []actor{a}
		}},
		// Parked cars lining the street (world-static; drift backwards in
		// frame because the camera moves).
		{prob: 0.12, make: func(b *builder) []actor {
			return []actor{{
				life: -1,
				obj: video.Object{
					Track:     b.track(),
					Class:     "car",
					Attrs:     []string{pick(b, vehicleColors)},
					Behaviors: []string{"parked"},
					Box:       video.Box{X: 1.05, Y: b.uniform(0.45, 0.6), W: 0.12, H: 0.08},
					Vel:       [2]float64{0, 0},
				},
			}}
		}},
		// Oncoming traffic.
		{prob: 0.04, make: func(b *builder) []actor {
			return []actor{{
				life: -1,
				obj: video.Object{
					Track:     b.track(),
					Class:     "car",
					Attrs:     []string{pick(b, vehicleColors)},
					Behaviors: []string{"driving"},
					Box:       video.Box{X: 1.05, Y: b.uniform(0.35, 0.45), W: 0.10, H: 0.07},
					Vel:       [2]float64{-0.08, 0},
				},
			}}
		}},
	}

	v := b.simulate(sceneSpec{
		id:      0,
		name:    "cityscapes-stuttgart",
		context: []string{"street", "road"},
		cam:     func(int) [2]float64 { return [2]float64{0.045, 0} },
		rules:   rules,
		frames:  cfg.frames(1800),
		fps:     cfg.FPS,
	})

	return &Dataset{
		Name:         "cityscapes",
		Videos:       []video.Video{v},
		MovingCamera: true,
		Queries: []Query{
			{ID: "Q1.1", Text: "A person walking on the street."},
			{ID: "Q1.2", Text: "A person in light-colored clothing walking while holding a dark bag."},
			{ID: "Q1.3", Text: "A person riding a bicycle."},
			{ID: "Q1.4", Text: "A person riding a bicycle, wearing a black t-shirt and blue jeans."},
		},
	}
}
