package datasets

import "repro/internal/video"

// Beach generates the fixed-camera resort-sidewalk workload standing in for
// the Beach dataset: a camera watching a road beside a beach promenade, with
// buses, trucks, cars and strolling pedestrians.
func Beach(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	b := newBuilder(cfg.Seed ^ 0xbeac4)

	rules := []spawnRule{
		// Q4.1 targets: green buses.
		{every: 113, prob: 0.010, make: func(b *builder) []actor {
			return []actor{b.crossingVehicle("bus", 0.20, 0.11, "green", "large")}
		}},
		// Q4.2 targets: green bus with a white roof.
		{every: 239, phase: 17, prob: 0.005, make: func(b *builder) []actor {
			return []actor{b.crossingVehicle("bus", 0.20, 0.11, "green", "white roof", "large")}
		}},
		// Bus distractors: white or blue buses (FiGO's classic confusion
		// for Q4.2 is a white bus).
		{prob: 0.012, make: func(b *builder) []actor {
			return []actor{b.crossingVehicle("bus", 0.20, 0.11, pick(b, []string{"white", "blue"}), "large")}
		}},
		// Q4.3 targets: trucks of any kind.
		{every: 127, phase: 41, prob: 0.012, make: func(b *builder) []actor {
			return []actor{b.crossingVehicle("truck", 0.17, 0.10, pick(b, []string{"grey", "blue", "red"}), "large")}
		}},
		// Q4.4 targets: small white trucks filled with cargo.
		{every: 251, phase: 73, prob: 0.005, make: func(b *builder) []actor {
			return []actor{b.crossingVehicle("truck", 0.11, 0.07, "white", "small", "cargo")}
		}},
		// Truck distractors: large white truck without cargo; small grey
		// truck with cargo; small white truck WITHOUT cargo (separable
		// only by the load, which detector channels cannot see).
		{prob: 0.014, make: func(b *builder) []actor {
			switch b.rng.IntN(3) {
			case 0:
				return []actor{b.crossingVehicle("truck", 0.17, 0.10, "white", "large")}
			case 1:
				return []actor{b.crossingVehicle("truck", 0.11, 0.07, "grey", "small", "cargo")}
			default:
				return []actor{b.crossingVehicle("truck", 0.11, 0.07, "white", "small")}
			}
		}},
		// Background cars.
		{prob: 0.07, make: func(b *builder) []actor {
			return []actor{b.crossingVehicle("car", b.uniform(0.08, 0.12), 0.065, pick(b, vehicleColors))}
		}},
		// Promenade pedestrians.
		{prob: 0.05, make: func(b *builder) []actor {
			return []actor{b.walker(pick(b, []string{"light", "dark"}), "clothing")}
		}},
	}

	v := b.simulate(sceneSpec{
		id:      0,
		name:    "beach-promenade",
		context: []string{"road", "sidewalk", "beach"},
		rules:   rules,
		frames:  cfg.frames(3120),
		fps:     cfg.FPS,
	})

	return &Dataset{
		Name:   "beach",
		Videos: []video.Video{v},
		Queries: []Query{
			{ID: "Q4.1", Text: "A green bus driving on the road."},
			{ID: "Q4.2", Text: "A green bus with the white roof driving on the road."},
			{ID: "Q4.3", Text: "A truck driving on the road."},
			{ID: "Q4.4", Text: "A small white truck filled with cargo driving on the road."},
		},
	}
}
