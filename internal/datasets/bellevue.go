package datasets

import "repro/internal/video"

// Bellevue generates the fixed-camera intersection workload standing in for
// the Bellevue Traffic dataset: a 60-minute surveillance view of one
// intersection with crossing cars, buses, trucks, SUVs and pedestrians.
func Bellevue(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	b := newBuilder(cfg.Seed ^ 0xbe11e)

	// pause makes a vehicle wait at the intersection signal a little over
	// half the time, so centre-of-road dwell times match an intersection
	// rather than free-flowing traffic.
	pause := func(b *builder, a actor) actor {
		if b.chance(0.55) {
			if a.obj.Vel[0] > 0 {
				a.pauseAtX = b.uniform(0.42, 0.52)
			} else {
				a.pauseAtX = b.uniform(0.48, 0.58)
			}
			a.pauseFrames = 3 + b.rng.IntN(6)
		}
		return a
	}

	rules := []spawnRule{
		// Background traffic: cars in assorted colours, some large.
		{prob: 0.10, make: func(b *builder) []actor {
			attrs := []string{pick(b, vehicleColors)}
			if b.chance(0.25) {
				attrs = append(attrs, "large")
			}
			return []actor{pause(b, b.crossingVehicle("car", b.uniform(0.08, 0.13), b.uniform(0.055, 0.08), attrs...))}
		}},
		// Q2.1 target: red cars pass through the centre of the road while
		// driving. Scripted so positives always exist.
		{every: 71, prob: 0.016, make: func(b *builder) []actor {
			return []actor{pause(b, b.crossingVehicle("car", 0.10, 0.065, "red"))}
		}},
		// Q2.2 target: a red car side by side with another car through the
		// centre. Two lanes, synchronised speed and signal timing.
		{every: 211, phase: 13, prob: 0.006, make: func(b *builder) []actor {
			red := pause(b, b.crossingVehicle("car", 0.10, 0.065, "red"))
			other := red
			other.obj.Track = b.track()
			other.obj.Attrs = []string{pick(b, []string{"black", "white", "blue", "grey"})}
			other.obj.Box.X += 0.17
			if red.obj.Vel[0] < 0 {
				other.obj.Box.X = red.obj.Box.X - 0.17
			}
			other.obj.Box.Y = red.obj.Box.Y + b.uniform(-0.02, 0.02)
			if red.pauseAtX != 0 {
				// The partner stops level with the red car.
				if red.obj.Vel[0] > 0 {
					other.pauseAtX = red.pauseAtX + 0.17
				} else {
					other.pauseAtX = red.pauseAtX - 0.17
				}
			}
			return []actor{red, other}
		}},
		// Q2.3 target: ordinary buses.
		{every: 131, phase: 31, prob: 0.010, make: func(b *builder) []actor {
			return []actor{pause(b, b.crossingVehicle("bus", 0.20, 0.11, pick(b, []string{"white", "blue", "grey"})))}
		}},
		// Q2.4 target: the yellow-green bus with a white roof.
		{every: 263, phase: 57, prob: 0.004, make: func(b *builder) []actor {
			return []actor{pause(b, b.crossingVehicle("bus", 0.20, 0.11, "yellow-green", "white roof", "large"))}
		}},
		// Motivation-experiment target: black SUVs (open-world class).
		{every: 149, phase: 71, prob: 0.008, make: func(b *builder) []actor {
			attrs := []string{"black"}
			if b.chance(0.5) {
				attrs = append(attrs, "large")
			}
			return []actor{pause(b, b.crossingVehicle("suv", 0.12, 0.075, attrs...))}
		}},
		// Distractor trucks.
		{prob: 0.02, make: func(b *builder) []actor {
			return []actor{pause(b, b.crossingVehicle("truck", 0.16, 0.10, pick(b, vehicleColors), "large"))}
		}},
		// Pedestrians on the crosswalk.
		{prob: 0.03, make: func(b *builder) []actor {
			a := b.walker(pick(b, []string{"dark", "light"}), "clothing")
			a.obj.Vel = [2]float64{0, b.uniform(0.008, 0.02)}
			a.obj.Box.Y = 0.2
			return []actor{a}
		}},
	}

	v := b.simulate(sceneSpec{
		id:      0,
		name:    "bellevue-intersection",
		context: []string{"road", "intersection"},
		rules:   rules,
		frames:  cfg.frames(3600),
		fps:     cfg.FPS,
	})

	return &Dataset{
		Name:   "bellevue",
		Videos: []video.Video{v},
		Queries: []Query{
			{ID: "Q2.1", Text: "A red car driving in the center of the road."},
			{ID: "Q2.2", Text: "A red car side by side with another car, both positioned in the center of the road."},
			{ID: "Q2.3", Text: "A bus driving on the road."},
			{ID: "Q2.4", Text: "A bus driving on the road with white roof and yellow-green body."},
		},
	}
}
