// Package datasets generates the five synthetic evaluation workloads that
// stand in for the paper's video corpora: Cityscapes (moving dash-cam,
// pedestrians and cyclists), Bellevue Traffic (fixed intersection camera),
// QVHighlights (diverse hand-held clips), Beach (fixed sidewalk camera) and
// ActivityNet-QA (question-style queries, Table VI).
//
// Each generator is deterministic in its Config.Seed and reproduces the
// salient statistics of its real counterpart: object class mix, attribute
// variety, camera model, clip structure and — crucially — scripted
// occurrences of every Table II query target embedded in a stream of partial
// distractors. Ground truth is exact: GroundTruth replays the scene
// descriptions against a query's term set and returns track-level instances.
package datasets

import (
	"fmt"
	"sort"

	"repro/internal/video"
)

// Query is one benchmark query (Table II / Table VI of the paper).
type Query struct {
	// ID is the paper's identifier ("Q2.2", "EQ1").
	ID string
	// Text is the natural-language query string.
	Text string
}

// Dataset is a generated workload: videos plus their benchmark queries.
type Dataset struct {
	// Name identifies the dataset ("bellevue").
	Name string
	// Videos holds the generated footage.
	Videos []video.Video
	// Queries holds the dataset's benchmark queries in paper order.
	Queries []Query
	// MovingCamera records whether the camera moves (Cityscapes,
	// QVHighlights) or is fixed (Bellevue, Beach).
	MovingCamera bool
}

// Frames returns the total frame count across all videos.
func (d *Dataset) Frames() int {
	n := 0
	for i := range d.Videos {
		n += len(d.Videos[i].Frames)
	}
	return n
}

// Duration returns the total footage length in seconds.
func (d *Dataset) Duration() float64 {
	s := 0.0
	for i := range d.Videos {
		s += d.Videos[i].Duration()
	}
	return s
}

// Objects returns the total number of object observations across frames.
func (d *Dataset) Objects() int {
	n := 0
	for i := range d.Videos {
		for j := range d.Videos[i].Frames {
			n += len(d.Videos[i].Frames[j].Objects)
		}
	}
	return n
}

// Config controls dataset generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed uint64
	// FPS is the sampled frame rate. Defaults to 1 frame per second —
	// the ingest-side sampling rate video analytics systems typically
	// operate at, not the 30 fps capture rate.
	FPS float64
	// Scale multiplies every video's duration; use small values in unit
	// tests and 1.0 for the full benchmark workloads. Defaults to 1.
	Scale float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FPS <= 0 {
		c.FPS = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// frames converts a nominal duration in seconds to a frame count under the
// config's FPS and Scale, with a floor to keep degenerate scales usable.
func (c Config) frames(seconds float64) int {
	n := int(seconds * c.Scale * c.FPS)
	if n < 30 {
		n = 30
	}
	return n
}

// Instance is one ground-truth positive at track granularity: a physical
// object that satisfies the query during part of its lifetime. Evaluating at
// track level mirrors the paper's protocol of counting distinct true-positive
// objects (duplicate retrievals of the same object rank as false positives,
// which is what penalises systems that "focus on one repeated object").
type Instance struct {
	// VideoID is the containing video.
	VideoID int
	// Track is the physical object's identifier.
	Track int64
	// Boxes maps frame index to the object's box in the frames where the
	// query is satisfied.
	Boxes map[int]video.Box
}

// GroundTruth computes the exact instance set for a query term set by
// replaying every frame's scene description through relational matching.
func GroundTruth(ds *Dataset, queryTerms []string) []Instance {
	type key struct {
		vid   int
		track int64
	}
	acc := make(map[key]*Instance)
	for vi := range ds.Videos {
		v := &ds.Videos[vi]
		for fi := range v.Frames {
			f := &v.Frames[fi]
			for oi := range f.Objects {
				if !f.MatchesTermsRelational(oi, queryTerms) {
					continue
				}
				k := key{v.ID, f.Objects[oi].Track}
				inst, ok := acc[k]
				if !ok {
					inst = &Instance{VideoID: v.ID, Track: k.track, Boxes: make(map[int]video.Box)}
					acc[k] = inst
				}
				inst.Boxes[f.Index] = f.Objects[oi].Box
			}
		}
	}
	out := make([]Instance, 0, len(acc))
	for _, inst := range acc {
		out = append(out, *inst)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VideoID != out[j].VideoID {
			return out[i].VideoID < out[j].VideoID
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// All generates the four main evaluation datasets in paper order.
func All(cfg Config) []*Dataset {
	return []*Dataset{Cityscapes(cfg), Bellevue(cfg), QVHighlights(cfg), Beach(cfg)}
}

// ByName generates a dataset by its lower-case name.
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "cityscapes":
		return Cityscapes(cfg), nil
	case "bellevue":
		return Bellevue(cfg), nil
	case "qvhighlights", "qvh":
		return QVHighlights(cfg), nil
	case "beach":
		return Beach(cfg), nil
	case "activitynet", "activitynet-qa":
		return ActivityNetQA(cfg), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

// MotivationQueries returns the three complexity grades of the motivation
// experiment (Fig. 2), all posed against the Bellevue-style workload.
func MotivationQueries() map[string][]string {
	return map[string][]string{
		"simple": {"car"},
		"normal": {"red car in road", "large black car on road"},
		"complex": {
			"A red car side by side with another car, both positioned in the center of the road.",
			"A black SUV driving in the intersection of the road.",
		},
	}
}
