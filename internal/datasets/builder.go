package datasets

import (
	"math/rand/v2"

	"repro/internal/video"
)

// builder runs the frame-by-frame scene simulation shared by all dataset
// generators. Spawn rules inject actors (single objects or groups moving
// together); actors advance linearly until they leave the frame or exhaust
// their lifetime.
type builder struct {
	rng       *rand.Rand
	nextTrack int64
}

func newBuilder(seed uint64) *builder {
	return &builder{rng: rand.New(rand.NewPCG(seed, seed^0xa5a5a5a55a5a5a5a))}
}

// track allocates a fresh track ID.
func (b *builder) track() int64 {
	b.nextTrack++
	return b.nextTrack
}

// pick returns a uniformly random element of options.
func pick[T any](b *builder, options []T) T {
	return options[b.rng.IntN(len(options))]
}

// chance reports true with probability p.
func (b *builder) chance(p float64) bool { return b.rng.Float64() < p }

// uniform returns a uniform sample in [lo, hi).
func (b *builder) uniform(lo, hi float64) float64 {
	return lo + b.rng.Float64()*(hi-lo)
}

// actor is a live simulated object with an optional remaining lifetime.
type actor struct {
	obj  video.Object
	life int // frames remaining; <0 means until it leaves the frame
	// pauseAtX, when non-zero, makes the actor stop for pauseFrames once
	// its centre reaches that x — vehicles waiting at the intersection
	// signal. savedVel restores motion afterwards.
	pauseAtX    float64
	pauseFrames int
	paused      bool
	pauseLeft   int
	savedVel    [2]float64
}

// spawnRule describes when and how new actors enter the scene.
type spawnRule struct {
	// every spawns deterministically each N frames (0 disables); these
	// scripted spawns guarantee each benchmark query has positives.
	every int
	// phase offsets the periodic schedule.
	phase int
	// prob additionally spawns per frame with this probability.
	prob float64
	// make constructs the actor group.
	make func(b *builder) []actor
}

// sceneSpec describes one generated video.
type sceneSpec struct {
	id      int
	name    string
	context []string
	// cam returns the camera motion for a frame index.
	cam func(frame int) [2]float64
	// shot returns the shot number for a frame index.
	shot func(frame int) int
	// rules are the spawn rules.
	rules []spawnRule
	// frames is the number of frames to simulate.
	frames int
	fps    float64
}

// simulate runs the scene and returns the video.
func (b *builder) simulate(spec sceneSpec) video.Video {
	dt := 1.0 / spec.fps
	var live []actor
	frames := make([]video.Frame, 0, spec.frames)
	for fi := 0; fi < spec.frames; fi++ {
		cam := [2]float64{0, 0}
		if spec.cam != nil {
			cam = spec.cam(fi)
		}
		shot := 0
		if spec.shot != nil {
			shot = spec.shot(fi)
		}
		// Spawn.
		for _, r := range spec.rules {
			if r.every > 0 && (fi+r.phase)%r.every == 0 {
				live = append(live, r.make(b)...)
			}
			if r.prob > 0 && b.chance(r.prob) {
				live = append(live, r.make(b)...)
			}
		}
		// Materialise the frame from live actors.
		f := video.Frame{
			VideoID:   spec.id,
			Index:     fi,
			Time:      float64(fi) * dt,
			Shot:      shot,
			Context:   spec.context,
			CamMotion: cam,
		}
		for i := range live {
			clipped := live[i].obj.Box.Clip()
			if clipped.Area() <= 0 {
				continue
			}
			o := live[i].obj
			o.Box = clipped
			f.Objects = append(f.Objects, o)
		}
		frames = append(frames, f)
		// Advance.
		var next []actor
		for i := range live {
			a := live[i]
			// Signal pauses: stop once at pauseAtX, resume after.
			if a.pauseLeft > 0 {
				a.pauseLeft--
				if a.pauseLeft == 0 {
					a.obj.Vel = a.savedVel
				}
			} else if a.pauseAtX != 0 && !a.paused {
				cx, _ := a.obj.Box.Center()
				if (a.obj.Vel[0] > 0 && cx >= a.pauseAtX) || (a.obj.Vel[0] < 0 && cx <= a.pauseAtX) {
					a.paused = true
					a.pauseLeft = a.pauseFrames
					a.savedVel = a.obj.Vel
					a.obj.Vel = [2]float64{0, 0}
				}
			}
			a.obj.Box = a.obj.Box.Translate(
				(a.obj.Vel[0]-cam[0])*dt,
				(a.obj.Vel[1]-cam[1])*dt,
			)
			if a.life > 0 {
				a.life--
				if a.life == 0 {
					continue
				}
			}
			// Drop actors that have left the visible region with margin.
			bb := a.obj.Box
			if bb.X+bb.W < -0.25 || bb.X > 1.25 || bb.Y+bb.H < -0.25 || bb.Y > 1.25 {
				continue
			}
			next = append(next, a)
		}
		live = next
	}
	return video.Video{ID: spec.id, Name: spec.name, FPS: spec.fps, Frames: frames}
}

// ---- Shared actor factories ----

// vehicleColors are the common vehicle paint colours.
var vehicleColors = []string{"black", "white", "blue", "grey", "red"}

// crossingVehicle builds a vehicle crossing the road band horizontally.
// Extra attributes are appended to the colour attribute.
func (b *builder) crossingVehicle(class string, w, h float64, attrs ...string) actor {
	fromLeft := b.chance(0.5)
	y := b.uniform(0.38, 0.58)
	speed := b.uniform(0.06, 0.16)
	x, vx := -w+0.01, speed
	if !fromLeft {
		x, vx = 0.99, -speed
	}
	return actor{
		life: -1,
		obj: video.Object{
			Track:     b.track(),
			Class:     class,
			Attrs:     attrs,
			Behaviors: []string{"driving"},
			Box:       video.Box{X: x, Y: y, W: w, H: h},
			Vel:       [2]float64{vx, 0},
		},
	}
}

// walker builds a pedestrian strolling along a sidewalk band.
func (b *builder) walker(attrs ...string) actor {
	y := b.uniform(0.55, 0.75)
	speed := b.uniform(0.01, 0.035)
	if b.chance(0.5) {
		speed = -speed
	}
	return actor{
		life: 40 + b.rng.IntN(60),
		obj: video.Object{
			Track:     b.track(),
			Class:     "person",
			Attrs:     attrs,
			Behaviors: []string{"walking"},
			Box:       video.Box{X: b.uniform(0.05, 0.85), Y: y, W: 0.045, H: 0.16},
			Vel:       [2]float64{speed, 0},
		},
	}
}
