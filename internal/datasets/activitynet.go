package datasets

import "repro/internal/video"

// ActivityNetQA generates the question-answering extension workload of
// Table VI: twelve short videos whose yes/no questions LOVO answers by
// object retrieval (videos with a "yes" answer contain the queried object).
func ActivityNetQA(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	b := newBuilder(cfg.Seed ^ 0xac711)

	stationary := func(b *builder, class string, behaviors []string, attrs ...string) actor {
		return actor{
			life: -1,
			obj: video.Object{
				Track:     b.track(),
				Class:     class,
				Attrs:     attrs,
				Behaviors: behaviors,
				Box:       video.Box{X: b.uniform(0.25, 0.55), Y: b.uniform(0.3, 0.5), W: 0.14, H: 0.22},
			},
		}
	}

	type theme struct {
		name    string
		context []string
		rules   []spawnRule
	}
	themes := []theme{
		// EQ1: does the car park on the meadow — yes-videos have a parked
		// car on a meadow.
		{name: "meadow-park", context: []string{"meadow", "outdoors"}, rules: []spawnRule{
			{every: 35, make: func(b *builder) []actor {
				a := stationary(b, "car", []string{"parked"}, pick(b, vehicleColors))
				a.obj.Box.W, a.obj.Box.H = 0.16, 0.10
				a.life = 30
				return []actor{a}
			}},
		}},
		// EQ2: is the person with a hat a man — yes-videos show a man
		// wearing a hat.
		{name: "hat-man", context: []string{"outdoors"}, rules: []spawnRule{
			{every: 30, make: func(b *builder) []actor {
				a := stationary(b, "person", []string{"standing"}, "man", "hat")
				a.life = 25
				return []actor{a}
			}},
			{prob: 0.02, make: func(b *builder) []actor {
				// Distractor: woman with a hat.
				a := stationary(b, "person", []string{"standing"}, "woman", "hat")
				a.life = 15
				return []actor{a}
			}},
		}},
		// EQ3: is the person in the red life jacket outdoors.
		{name: "life-jacket", context: []string{"outdoors", "beach"}, rules: []spawnRule{
			{every: 32, make: func(b *builder) []actor {
				a := stationary(b, "person", []string{"standing"}, "red", "life jacket")
				a.life = 26
				return []actor{a}
			}},
			{prob: 0.02, make: func(b *builder) []actor {
				a := stationary(b, "person", []string{"standing"}, "blue", "life jacket")
				a.life = 15
				return []actor{a}
			}},
		}},
		// EQ4: is the person in a grey skirt dancing in the room.
		{name: "room-dance", context: []string{"room"}, rules: []spawnRule{
			{every: 28, make: func(b *builder) []actor {
				a := stationary(b, "person", []string{"dancing"}, "woman", "grey", "skirt")
				a.life = 22
				return []actor{a}
			}},
			{prob: 0.02, make: func(b *builder) []actor {
				// Distractor: grey skirt but standing.
				a := stationary(b, "person", []string{"standing"}, "woman", "grey", "skirt")
				a.life = 12
				return []actor{a}
			}},
		}},
		// Pure distractor themes (the "no"-answer videos).
		{name: "street-misc", context: []string{"street"}, rules: []spawnRule{
			{prob: 0.05, make: func(b *builder) []actor {
				return []actor{b.crossingVehicle("car", 0.10, 0.07, pick(b, vehicleColors))}
			}},
		}},
		{name: "room-misc", context: []string{"room"}, rules: []spawnRule{
			{prob: 0.04, make: func(b *builder) []actor {
				a := stationary(b, "person", []string{"sitting"}, "man", "blue", "suit")
				a.life = 18
				return []actor{a}
			}},
		}},
	}

	const nVideos = 12
	videos := make([]video.Video, 0, nVideos)
	for i := 0; i < nVideos; i++ {
		th := themes[i%len(themes)]
		videos = append(videos, b.simulate(sceneSpec{
			id:      i,
			name:    th.name,
			context: th.context,
			shot:    func(frame int) int { return frame / 15 },
			rules:   th.rules,
			frames:  cfg.frames(120),
			fps:     cfg.FPS,
		}))
	}

	return &Dataset{
		Name:         "activitynet",
		Videos:       videos,
		MovingCamera: true,
		Queries: []Query{
			{ID: "EQ1", Text: "does the car park on the meadow"},
			{ID: "EQ2", Text: "is the person with a hat a man"},
			{ID: "EQ3", Text: "is the person in the red life jacket outdoors"},
			{ID: "EQ4", Text: "is the person in a grey skirt dancing in the room"},
		},
	}
}
