package datasets

import "repro/internal/video"

// QVHighlights generates the diverse hand-held-clip workload standing in for
// the QVHighlights evaluation subset: fifteen 150-second videos with varied
// everyday themes — people and pets inside cars, rooms, and outdoor scenes.
// Camera motion is jittery and shots change every few seconds, exercising
// the keyframe extractor's scene-change path.
func QVHighlights(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	b := newBuilder(cfg.Seed ^ 0x45633)

	// seated builds a stationary in-car or in-room subject with gentle sway.
	seated := func(b *builder, class string, inside string, behaviors []string, attrs ...string) actor {
		return actor{
			life: -1,
			obj: video.Object{
				Track:     b.track(),
				Class:     class,
				Attrs:     attrs,
				Behaviors: behaviors,
				Inside:    inside,
				Box:       video.Box{X: b.uniform(0.30, 0.55), Y: b.uniform(0.30, 0.45), W: 0.16, H: 0.30},
				Vel:       [2]float64{0, 0},
			},
		}
	}

	type theme struct {
		name    string
		context []string
		rules   []spawnRule
	}

	themes := []theme{
		// Q3.1/Q3.2 theme: women sitting inside a car; the scripted one is
		// red-haired in a white dress and smiling.
		{name: "car-interior-woman", context: nil, rules: []spawnRule{
			{every: 40, make: func(b *builder) []actor {
				a := seated(b, "person", "car", []string{"smiling", "sitting"}, "woman", "red-hair", "white", "dress")
				a.life = 30
				return []actor{a}
			}},
			{prob: 0.05, make: func(b *builder) []actor {
				// Distractor: non-smiling woman in dark dress.
				a := seated(b, "person", "car", []string{"sitting"}, "woman", "dark", "dress")
				a.life = 20
				return []actor{a}
			}},
		}},
		// Q3.3/Q3.4 theme: white dog inside a car, sometimes next to a
		// woman in black clothing.
		{name: "car-interior-dog", context: nil, rules: []spawnRule{
			{every: 25, phase: 3, make: func(b *builder) []actor {
				dog := seated(b, "dog", "car", nil, "white")
				dog.obj.Box = video.Box{X: 0.35, Y: 0.45, W: 0.12, H: 0.14}
				dog.life = 30
				woman := seated(b, "person", "car", []string{"sitting"}, "woman", "black", "clothing")
				woman.obj.Box = video.Box{X: 0.50, Y: 0.30, W: 0.14, H: 0.32}
				woman.life = 30
				return []actor{dog, woman}
			}},
			{prob: 0.04, make: func(b *builder) []actor {
				// Distractor: brown-ish (grey) dog alone.
				dog := seated(b, "dog", "car", nil, "grey")
				dog.life = 15
				return []actor{dog}
			}},
		}},
		// Distractor themes: outdoor walks, room scenes with men.
		{name: "outdoor-walk", context: []string{"outdoors"}, rules: []spawnRule{
			{prob: 0.06, make: func(b *builder) []actor {
				return []actor{b.walker(pick(b, []string{"light", "dark"}), "clothing", pick(b, []string{"man", "woman"}))}
			}},
		}},
		{name: "room-scene", context: []string{"room"}, rules: []spawnRule{
			{prob: 0.05, make: func(b *builder) []actor {
				a := seated(b, "person", "", []string{"sitting"}, "man", pick(b, []string{"grey", "blue"}), "suit")
				a.life = 25
				return []actor{a}
			}},
		}},
		{name: "street-clip", context: []string{"street"}, rules: []spawnRule{
			{prob: 0.05, make: func(b *builder) []actor {
				return []actor{b.crossingVehicle("car", 0.10, 0.07, pick(b, vehicleColors))}
			}},
		}},
	}

	const nVideos = 15
	videos := make([]video.Video, 0, nVideos)
	for i := 0; i < nVideos; i++ {
		th := themes[i%len(themes)]
		jitterSeed := uint64(i)
		videos = append(videos, b.simulate(sceneSpec{
			id:      i,
			name:    th.name,
			context: th.context,
			cam: func(frame int) [2]float64 {
				// Hand-held jitter, deterministic per video and frame.
				j := float64((frame*2654435761+int(jitterSeed)*97)%17-8) / 600.0
				return [2]float64{j, -j / 2}
			},
			shot:   func(frame int) int { return frame / 12 },
			rules:  th.rules,
			frames: cfg.frames(150),
			fps:    cfg.FPS,
		}))
	}

	return &Dataset{
		Name:         "qvhighlights",
		Videos:       videos,
		MovingCamera: true,
		Queries: []Query{
			{ID: "Q3.1", Text: "A woman smiling sitting inside car."},
			{ID: "Q3.2", Text: "A red-hair woman with white dress sitting inside a car."},
			{ID: "Q3.3", Text: "A white dog inside a car."},
			{ID: "Q3.4", Text: "A white dog inside a car, next to a woman wearing black clothes."},
		},
	}
}
