package relational

import (
	"errors"
	"sync"
	"testing"
)

func patchSchema() Schema {
	return Schema{
		Columns: []Column{
			{Name: "patch_id", Type: Int64},
			{Name: "video_id", Type: Int64},
			{Name: "frame_idx", Type: Int64},
			{Name: "box_x", Type: Float64},
			{Name: "label", Type: String},
		},
		Key: "patch_id",
	}
}

func newPatchTable(t *testing.T) *Table {
	t.Helper()
	s := NewStore()
	tbl, err := s.CreateTable("patches", patchSchema())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateTableValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable("x", Schema{}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("no columns: %v", err)
	}
	if _, err := s.CreateTable("x", Schema{
		Columns: []Column{{Name: "a", Type: String}}, Key: "a",
	}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("non-int64 key: %v", err)
	}
	if _, err := s.CreateTable("x", Schema{
		Columns: []Column{{Name: "a", Type: Int64}}, Key: "b",
	}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("missing key: %v", err)
	}
	if _, err := s.CreateTable("x", Schema{
		Columns: []Column{{Name: "a", Type: Int64}, {Name: "a", Type: Int64}}, Key: "a",
	}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("duplicate columns: %v", err)
	}
	if _, err := s.CreateTable("ok", patchSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("ok", patchSchema()); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	if _, err := s.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table: %v", err)
	}
}

func TestInsertAndGet(t *testing.T) {
	tbl := newPatchTable(t)
	row := Row{int64(100), int64(1), int64(5), 0.25, "car"}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(100)
	if err != nil {
		t.Fatal(err)
	}
	if got[4].(string) != "car" || got[3].(float64) != 0.25 {
		t.Fatalf("row = %v", got)
	}
	// Returned row is a copy.
	got[4] = "mutated"
	again, _ := tbl.Get(100)
	if again[4].(string) != "car" {
		t.Fatal("Get must return copies")
	}
	if _, err := tbl.Get(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := newPatchTable(t)
	if err := tbl.Insert(Row{int64(1)}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("arity: %v", err)
	}
	if err := tbl.Insert(Row{int64(1), int64(1), "five", 0.1, "x"}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("type: %v", err)
	}
	if err := tbl.Insert(Row{1, int64(1), int64(1), 0.1, "x"}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("untyped int: %v", err)
	}
	good := Row{int64(1), int64(1), int64(1), 0.1, "x"}
	if err := tbl.Insert(good); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(good); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestInsertCopiesRow(t *testing.T) {
	tbl := newPatchTable(t)
	row := Row{int64(7), int64(1), int64(2), 0.5, "bus"}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	row[4] = "mutated"
	got, _ := tbl.Get(7)
	if got[4].(string) != "bus" {
		t.Fatal("Insert must copy the row")
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	tbl := newPatchTable(t)
	for i := int64(0); i < 100; i++ {
		label := "car"
		if i%3 == 0 {
			label = "bus"
		}
		if err := tbl.Insert(Row{i, i % 4, i, float64(i) / 100, label}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("label"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := tbl.CreateIndex("label"); err != nil {
		t.Fatal(err)
	}
	buses, err := tbl.Lookup("label", "bus")
	if err != nil {
		t.Fatal(err)
	}
	if len(buses) != 34 {
		t.Fatalf("buses = %d", len(buses))
	}
	// Insertion order.
	for i := 1; i < len(buses); i++ {
		if buses[i][0].(int64) <= buses[i-1][0].(int64) {
			t.Fatal("lookup must preserve insertion order")
		}
	}
	// Indexed and unindexed lookups agree.
	cars, _ := tbl.Lookup("label", "car")
	carsScan := tbl.Scan(func(r Row) bool { return r[4].(string) == "car" })
	if len(cars) != len(carsScan) {
		t.Fatalf("index (%d) and scan (%d) disagree", len(cars), len(carsScan))
	}
	if _, err := tbl.Lookup("ghost", "x"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("bad column: %v", err)
	}
}

func TestIndexUpdatedByLaterInserts(t *testing.T) {
	tbl := newPatchTable(t)
	if err := tbl.CreateIndex("video_id"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(Row{i, i % 2, i, 0.0, "car"}); err != nil {
			t.Fatal(err)
		}
	}
	rows, _ := tbl.Lookup("video_id", int64(1))
	if len(rows) != 5 {
		t.Fatalf("indexed post-insert lookup = %d", len(rows))
	}
}

func TestScanAndLen(t *testing.T) {
	tbl := newPatchTable(t)
	for i := int64(0); i < 20; i++ {
		_ = tbl.Insert(Row{i, int64(0), i, float64(i), "car"})
	}
	if tbl.Len() != 20 {
		t.Fatalf("len = %d", tbl.Len())
	}
	all := tbl.Scan(nil)
	if len(all) != 20 {
		t.Fatalf("scan all = %d", len(all))
	}
	big := tbl.Scan(func(r Row) bool { return r[3].(float64) >= 15 })
	if len(big) != 5 {
		t.Fatalf("filtered scan = %d", len(big))
	}
}

func TestDelete(t *testing.T) {
	tbl := newPatchTable(t)
	_ = tbl.CreateIndex("label")
	for i := int64(0); i < 5; i++ {
		_ = tbl.Insert(Row{i, int64(0), i, 0.0, "car"})
	}
	if err := tbl.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("len after delete = %d", tbl.Len())
	}
	rows, _ := tbl.Lookup("label", "car")
	if len(rows) != 4 {
		t.Fatalf("index not maintained on delete: %d", len(rows))
	}
	if _, err := tbl.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted row still fetchable")
	}
}

func TestStoreNames(t *testing.T) {
	s := NewStore()
	_, _ = s.CreateTable("zeta", patchSchema())
	_, _ = s.CreateTable("alpha", patchSchema())
	names := s.Names()
	if len(names) != 2 || names[0] != "alpha" {
		t.Fatalf("names = %v", names)
	}
}

func TestColTypeString(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Fatal("type names")
	}
	if ColType(9).String() == "" {
		t.Fatal("unknown type should format")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tbl := newPatchTable(t)
	_ = tbl.CreateIndex("video_id")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tbl.Insert(Row{int64(g*1000 + i), int64(g), int64(i), 0.0, "car"})
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, _ = tbl.Lookup("video_id", int64(g))
				_, _ = tbl.Get(int64(g*1000 + i/2))
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 400 {
		t.Fatalf("len = %d", tbl.Len())
	}
}
