// Package relational implements the embedded relational store of
// Section V-B: supplementary metadata — key-frame identifiers, bounding-box
// coordinates, patch indexes — lives in typed tables keyed by patch ID, and
// query results from the vector database join against it to recover frame
// context.
//
// The store offers typed columns, a mandatory int64 primary key, optional
// secondary hash indexes, point lookups, predicate scans and ordered
// iteration. It is deliberately an embedded library (not a server): the
// paper links Milvus to its relational side-store through the shared patch
// ID, and this package plays that role in-process.
package relational

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ColType enumerates supported column types.
type ColType int

// Supported column types.
const (
	Int64 ColType = iota
	Float64
	String
)

// String returns the type name.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and which column is the int64
// primary key.
type Schema struct {
	Columns []Column
	// Key names the primary-key column, which must exist and be Int64.
	Key string
}

// Row is one record; values align with the table's columns.
type Row []any

// Errors returned by the store.
var (
	ErrNoTable      = errors.New("relational: no such table")
	ErrTableExists  = errors.New("relational: table exists")
	ErrNoColumn     = errors.New("relational: no such column")
	ErrBadSchema    = errors.New("relational: bad schema")
	ErrTypeMismatch = errors.New("relational: type mismatch")
	ErrDuplicateKey = errors.New("relational: duplicate primary key")
	ErrNotFound     = errors.New("relational: not found")
)

// Table is one relation.
type Table struct {
	name   string
	schema Schema
	keyIdx int

	mu        sync.RWMutex
	rows      map[int64]Row
	order     []int64                 // insertion order of primary keys
	secondary map[int]map[any][]int64 // column index -> value -> keys
}

// Store is a set of tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: make(map[string]*Table)} }

// CreateTable adds a table with the given schema.
func (s *Store) CreateTable(name string, schema Schema) (*Table, error) {
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrBadSchema)
	}
	keyIdx := -1
	seen := map[string]bool{}
	for i, c := range schema.Columns {
		if c.Name == "" || seen[c.Name] {
			return nil, fmt.Errorf("%w: bad column name %q", ErrBadSchema, c.Name)
		}
		seen[c.Name] = true
		if c.Name == schema.Key {
			if c.Type != Int64 {
				return nil, fmt.Errorf("%w: key %q must be int64", ErrBadSchema, c.Name)
			}
			keyIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("%w: key column %q missing", ErrBadSchema, schema.Key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	t := &Table{
		name:      name,
		schema:    schema,
		keyIdx:    keyIdx,
		rows:      make(map[int64]Row),
		secondary: make(map[int]map[any][]int64),
	}
	s.tables[name] = t
	return t, nil
}

// Table fetches a table by name.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Names lists table names sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// ColumnIndex resolves a column name.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, c := range t.schema.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrNoColumn, name)
}

// checkRow validates a row against the schema.
func (t *Table) checkRow(row Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrTypeMismatch, len(row), len(t.schema.Columns))
	}
	for i, c := range t.schema.Columns {
		switch c.Type {
		case Int64:
			if _, ok := row[i].(int64); !ok {
				return fmt.Errorf("%w: column %q wants int64, got %T", ErrTypeMismatch, c.Name, row[i])
			}
		case Float64:
			if _, ok := row[i].(float64); !ok {
				return fmt.Errorf("%w: column %q wants float64, got %T", ErrTypeMismatch, c.Name, row[i])
			}
		case String:
			if _, ok := row[i].(string); !ok {
				return fmt.Errorf("%w: column %q wants string, got %T", ErrTypeMismatch, c.Name, row[i])
			}
		}
	}
	return nil
}

// Insert adds a row.
func (t *Table) Insert(row Row) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	key := row[t.keyIdx].(int64)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.rows[key]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateKey, key)
	}
	stored := make(Row, len(row))
	copy(stored, row)
	t.rows[key] = stored
	t.order = append(t.order, key)
	for col, idx := range t.secondary {
		v := stored[col]
		idx[v] = append(idx[v], key)
	}
	return nil
}

// Get fetches a row by primary key. The returned row is a copy.
func (t *Table) Get(key int64) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: key %d", ErrNotFound, key)
	}
	out := make(Row, len(row))
	copy(out, row)
	return out, nil
}

// CreateIndex builds a secondary hash index on a column; existing rows are
// indexed immediately.
func (t *Table) CreateIndex(column string) error {
	ci, err := t.ColumnIndex(column)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondary[ci]; ok {
		return nil // idempotent
	}
	idx := make(map[any][]int64)
	for _, key := range t.order {
		v := t.rows[key][ci]
		idx[v] = append(idx[v], key)
	}
	t.secondary[ci] = idx
	return nil
}

// Lookup returns copies of all rows whose column equals value, using the
// secondary index when present and a scan otherwise. Rows come back in
// insertion order.
func (t *Table) Lookup(column string, value any) ([]Row, error) {
	ci, err := t.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var keys []int64
	if idx, ok := t.secondary[ci]; ok {
		keys = idx[value]
	} else {
		for _, key := range t.order {
			if t.rows[key][ci] == value {
				keys = append(keys, key)
			}
		}
	}
	out := make([]Row, 0, len(keys))
	for _, key := range keys {
		row := t.rows[key]
		cp := make(Row, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
	return out, nil
}

// Scan returns copies of all rows satisfying pred, in insertion order. A
// nil pred selects everything.
func (t *Table) Scan(pred func(Row) bool) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Row
	for _, key := range t.order {
		row := t.rows[key]
		if pred == nil || pred(row) {
			cp := make(Row, len(row))
			copy(cp, row)
			out = append(out, cp)
		}
	}
	return out
}

// Delete removes a row by primary key.
func (t *Table) Delete(key int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[key]
	if !ok {
		return fmt.Errorf("%w: key %d", ErrNotFound, key)
	}
	delete(t.rows, key)
	for i, k := range t.order {
		if k == key {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	for col, idx := range t.secondary {
		v := row[col]
		keys := idx[v]
		for i, k := range keys {
			if k == key {
				idx[v] = append(keys[:i], keys[i+1:]...)
				break
			}
		}
		if len(idx[v]) == 0 {
			delete(idx, v)
		}
	}
	return nil
}
