// Package video models the synthetic video substrate: frames of typed,
// moving objects observed by a fixed or moving camera.
//
// The paper evaluates on real corpora (Cityscapes, Bellevue, QVHighlights,
// Beach); none of its measurements depend on pixel content, only on which
// objects with which attributes appear where and when, and on the volume of
// per-frame work each system performs. This package therefore represents a
// frame as its ground-truth scene description — object classes, attribute
// term sets, bounding boxes, velocities, scene context and a macroblock
// motion field — which the encoders, detectors and keyframe extractor
// observe through restricted, noisy channels.
package video

import "math"

// Box is an axis-aligned bounding box in normalised frame coordinates:
// X, Y is the top-left corner and W, H the extent, all in [0, 1].
type Box struct {
	X, Y, W, H float64
}

// Area returns the box area (0 for degenerate boxes).
func (b Box) Area() float64 {
	if b.W <= 0 || b.H <= 0 {
		return 0
	}
	return b.W * b.H
}

// Center returns the box centre point.
func (b Box) Center() (float64, float64) {
	return b.X + b.W/2, b.Y + b.H/2
}

// IoU returns the intersection-over-union of b and o; 0 when either is
// degenerate or they do not overlap.
func (b Box) IoU(o Box) float64 {
	ix := math.Max(b.X, o.X)
	iy := math.Max(b.Y, o.Y)
	ix2 := math.Min(b.X+b.W, o.X+o.W)
	iy2 := math.Min(b.Y+b.H, o.Y+o.H)
	iw, ih := ix2-ix, iy2-iy
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := b.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Clip constrains the box to the unit frame, preserving as much of its
// extent as fits.
func (b Box) Clip() Box {
	if b.X < 0 {
		b.W += b.X
		b.X = 0
	}
	if b.Y < 0 {
		b.H += b.Y
		b.Y = 0
	}
	if b.X+b.W > 1 {
		b.W = 1 - b.X
	}
	if b.Y+b.H > 1 {
		b.H = 1 - b.Y
	}
	if b.W < 0 {
		b.W = 0
	}
	if b.H < 0 {
		b.H = 0
	}
	return b
}

// Translate returns the box moved by (dx, dy).
func (b Box) Translate(dx, dy float64) Box {
	b.X += dx
	b.Y += dy
	return b
}

// CenterDist returns the Euclidean distance between the box centres.
func (b Box) CenterDist(o Box) float64 {
	bx, by := b.Center()
	ox, oy := o.Center()
	return math.Hypot(bx-ox, by-oy)
}

// Contains reports whether the centre of o lies inside b.
func (b Box) Contains(o Box) bool {
	cx, cy := o.Center()
	return cx >= b.X && cx <= b.X+b.W && cy >= b.Y && cy <= b.Y+b.H
}
