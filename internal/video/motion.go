package video

import "math"

// MotionField computes a macroblock motion-vector field for the frame, the
// compressed-domain signal the MVmed-style keyframe extractor consumes
// (Section IV-A of the paper). The frame is divided into cols×rows blocks;
// each block's vector is the camera motion plus the velocity of whichever
// objects cover the block centre.
func (f *Frame) MotionField(cols, rows int) [][2]float64 {
	field := make([][2]float64, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cx := (float64(c) + 0.5) / float64(cols)
			cy := (float64(r) + 0.5) / float64(rows)
			v := f.CamMotion
			for i := range f.Objects {
				b := f.Objects[i].Box
				if cx >= b.X && cx <= b.X+b.W && cy >= b.Y && cy <= b.Y+b.H {
					v[0] += f.Objects[i].Vel[0]
					v[1] += f.Objects[i].Vel[1]
				}
			}
			field[r*cols+c] = v
		}
	}
	return field
}

// MotionEnergy returns the mean motion-vector magnitude over a 32×18
// macroblock grid (16-pixel blocks at 512×288 analysis resolution — fine
// enough that ordinary vehicles and pedestrians cover several block
// centres). Scene shifts and activity changes move this value, marking
// keyframe candidates.
func (f *Frame) MotionEnergy() float64 {
	const cols, rows = 32, 18
	field := f.MotionField(cols, rows)
	var sum float64
	for _, v := range field {
		sum += math.Hypot(v[0], v[1])
	}
	return sum / float64(len(field))
}

// Step advances every object of the frame by dt seconds and returns the new
// frame (a deep copy with updated boxes); generators use it to produce
// smooth trajectories. Boxes are clipped to the unit frame.
func (f *Frame) Step(dt float64) Frame {
	next := *f
	next.Index = f.Index + 1
	next.Time = f.Time + dt
	next.Objects = make([]Object, len(f.Objects))
	copy(next.Objects, f.Objects)
	for i := range next.Objects {
		o := &next.Objects[i]
		o.Box = o.Box.Translate(o.Vel[0]*dt-f.CamMotion[0]*dt, o.Vel[1]*dt-f.CamMotion[1]*dt).Clip()
	}
	return next
}
