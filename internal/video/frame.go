package video

import (
	"math"
	"sort"

	"repro/internal/vocab"
)

// Object is one physical object as observed in one frame.
type Object struct {
	// Track uniquely identifies the physical object across frames of the
	// whole dataset; every observation of the same object shares it.
	Track int64
	// Class is the object's true class term ("car", "suv", "woman"-less:
	// subtypes such as woman/man are attribute terms on a "person").
	Class string
	// Attrs lists static visual attribute terms: colours, size, clothing,
	// subtype ("woman"), part attributes ("white roof"), load ("cargo").
	// Composite objects (a cyclist, a person carrying a bag) carry the
	// secondary class as an attribute, matching how a detector would box
	// the ensemble.
	Attrs []string
	// Behaviors lists current behaviour terms ("walking"; "smiling" and
	// "sitting" may hold simultaneously); visually apparent through pose
	// and motion.
	Behaviors []string
	// Inside names a containing class ("car" when sitting inside a car),
	// or "" when unconstrained.
	Inside string
	// Box is the object's bounding box in this frame.
	Box Box
	// Vel is the normalised velocity in frame-widths per second.
	Vel [2]float64
}

// Frame is one video frame: a scene snapshot.
type Frame struct {
	// VideoID identifies the containing video within the dataset.
	VideoID int
	// Index is the frame's position within its video.
	Index int
	// Time is the capture time in seconds from the video start.
	Time float64
	// Shot increments at scene changes; the MVmed-style keyframe
	// extractor detects these through motion-vector discontinuities.
	Shot int
	// Context lists scene-level context terms ("road", "intersection").
	Context []string
	// CamMotion is the global camera motion in frame-widths per second
	// (zero for fixed surveillance cameras).
	CamMotion [2]float64
	// Objects are the visible objects.
	Objects []Object
}

// Video is an ordered frame sequence.
type Video struct {
	ID     int
	Name   string
	FPS    float64
	Frames []Frame
}

// Duration returns the video length in seconds.
func (v *Video) Duration() float64 {
	if v.FPS <= 0 {
		return 0
	}
	return float64(len(v.Frames)) / v.FPS
}

// vehicleClasses are classes that participate in road-layout relations.
var vehicleClasses = map[string]bool{"car": true, "suv": true, "bus": true, "truck": true}

// IsVehicle reports whether class is a road vehicle.
func IsVehicle(class string) bool { return vehicleClasses[class] }

// Relation-extraction thresholds, in normalised frame units.
const (
	centerBand   = 0.12 // |cx-0.5| tolerance for "center of the road"
	sideBySideDY = 0.08 // vertical alignment for "side by side"
	sideBySideDX = 0.28 // maximum horizontal separation for "side by side"
	nextToDist   = 0.18 // centre distance for "next to"
	holdingDist  = 0.10 // person-to-bag distance for "holding"
)

// ObjectTerms returns the complete ground-truth term set for object i of f:
// class, static attributes, behaviour, containment, scene context, and the
// spatial relations that hold in this frame. This is the oracle every
// perception channel in the repository derives its (restricted, noisy)
// observations from, and the set ground-truth query matching evaluates
// against.
func (f *Frame) ObjectTerms(i int) []string {
	o := &f.Objects[i]
	terms := make([]string, 0, len(o.Attrs)+len(f.Context)+6)
	terms = append(terms, o.Class)
	terms = append(terms, o.Attrs...)
	terms = append(terms, o.Behaviors...)
	if o.Inside != "" {
		terms = append(terms, "inside "+o.Inside)
	}
	terms = append(terms, f.Context...)
	terms = append(terms, f.spatialRelations(i)...)
	sort.Strings(terms)
	return dedupSorted(terms)
}

// spatialRelations derives the relation terms holding for object i.
func (f *Frame) spatialRelations(i int) []string {
	o := &f.Objects[i]
	var out []string
	if IsVehicle(o.Class) {
		cx, _ := o.Box.Center()
		if math.Abs(cx-0.5) <= centerBand {
			out = append(out, "center of the road")
		}
	}
	for j := range f.Objects {
		if j == i {
			continue
		}
		p := &f.Objects[j]
		// "side by side": two vehicles laterally aligned.
		if IsVehicle(o.Class) && IsVehicle(p.Class) {
			ocx, ocy := o.Box.Center()
			pcx, pcy := p.Box.Center()
			if math.Abs(ocy-pcy) <= sideBySideDY && math.Abs(ocx-pcx) <= sideBySideDX && o.Box.IoU(p.Box) < 0.3 {
				out = append(out, "side by side")
			}
		}
		// "next to": general proximity between distinct objects.
		if o.Box.CenterDist(p.Box) <= nextToDist {
			out = append(out, "next to")
		}
		// "holding": a person adjacent to a separate bag object.
		if o.Class == "person" && p.Class == "bag" && o.Box.CenterDist(p.Box) <= holdingDist {
			out = append(out, "holding")
		}
	}
	for _, a := range o.Attrs {
		switch a {
		case "cargo":
			// Loaded trucks expose the relation form of Q4.4.
			out = append(out, "filled with")
		case "bag":
			// Composite person+bag objects are carrying the bag.
			if o.Class == "person" {
				out = append(out, "holding")
			}
		}
	}
	return out
}

// PrimarySubject returns the first class-kind term of an ordered query term
// list — the query's grammatical subject — or "" when the query names no
// class.
func PrimarySubject(queryTerms []string) string {
	for _, t := range queryTerms {
		if term, ok := vocab.Lookup(t); ok && term.Kind == vocab.KindClass {
			return term.Name
		}
	}
	return ""
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// MatchesTerms reports whether object i of f satisfies every query term,
// i.e. whether the query's term set is a subset of the object's ground-truth
// term set.
func (f *Frame) MatchesTerms(i int, queryTerms []string) bool {
	have := f.ObjectTerms(i)
	set := make(map[string]bool, len(have))
	for _, t := range have {
		set[t] = true
	}
	for _, t := range queryTerms {
		if !set[t] {
			return false
		}
	}
	return true
}

// Neighbors returns the indices of objects related to object i through a
// proximity relation ("next to" distance or vehicle side-by-side alignment).
func (f *Frame) Neighbors(i int) []int {
	o := &f.Objects[i]
	var out []int
	for j := range f.Objects {
		if j == i {
			continue
		}
		p := &f.Objects[j]
		if o.Box.CenterDist(p.Box) <= nextToDist {
			out = append(out, j)
			continue
		}
		if IsVehicle(o.Class) && IsVehicle(p.Class) {
			ocx, ocy := o.Box.Center()
			pcx, pcy := p.Box.Center()
			if math.Abs(ocy-pcy) <= sideBySideDY && math.Abs(ocx-pcx) <= sideBySideDX {
				out = append(out, j)
			}
		}
	}
	return out
}

// MatchesTermsRelational extends MatchesTerms with neighbour completion:
// query terms not satisfied by object i itself may be satisfied by a single
// related neighbour, provided the query names a proximity relation and i
// carries it. This gives queries such as "a white dog ... next to a woman
// wearing black clothes" (Q3.4) their intended semantics — the dog is the
// subject, the woman terms describe the neighbour. The object itself must
// be the query's primary subject (its first class term): the woman in that
// scene is not a white dog, however close she sits.
func (f *Frame) MatchesTermsRelational(i int, queryTerms []string) bool {
	have := f.ObjectTerms(i)
	set := make(map[string]bool, len(have))
	for _, t := range have {
		set[t] = true
	}
	if primary := PrimarySubject(queryTerms); primary != "" && !set[primary] {
		return false
	}
	var missing []string
	for _, t := range queryTerms {
		if !set[t] {
			missing = append(missing, t)
		}
	}
	if len(missing) == 0 {
		return true
	}
	// Neighbour completion applies only to relational queries: the query
	// must name a proximity relation, and the subject must actually
	// stand in it. Without this guard, any object adjacent to a true
	// match would inherit the match ("a car next to a green bus" is not
	// itself a green bus).
	queryRelational := false
	for _, t := range queryTerms {
		if t == "next to" || t == "side by side" {
			queryRelational = true
			break
		}
	}
	if !queryRelational || (!set["next to"] && !set["side by side"]) {
		return false
	}
	for _, j := range f.Neighbors(i) {
		nb := f.ObjectTerms(j)
		nbset := make(map[string]bool, len(nb))
		for _, t := range nb {
			nbset[t] = true
		}
		all := true
		for _, t := range missing {
			if !nbset[t] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
