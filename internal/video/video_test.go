package video

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBoxArea(t *testing.T) {
	if a := (Box{0, 0, 0.5, 0.4}).Area(); math.Abs(a-0.2) > 1e-12 {
		t.Fatalf("area = %v", a)
	}
	if a := (Box{0, 0, -1, 1}).Area(); a != 0 {
		t.Fatalf("degenerate area = %v", a)
	}
}

func TestIoUIdentical(t *testing.T) {
	b := Box{0.1, 0.2, 0.3, 0.3}
	if iou := b.IoU(b); math.Abs(iou-1) > 1e-12 {
		t.Fatalf("self IoU = %v", iou)
	}
}

func TestIoUDisjoint(t *testing.T) {
	a := Box{0, 0, 0.1, 0.1}
	b := Box{0.5, 0.5, 0.1, 0.1}
	if iou := a.IoU(b); iou != 0 {
		t.Fatalf("disjoint IoU = %v", iou)
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	a := Box{0, 0, 0.2, 0.2}
	b := Box{0.1, 0, 0.2, 0.2}
	// intersection = 0.1*0.2 = 0.02; union = 0.04+0.04-0.02 = 0.06
	if iou := a.IoU(b); math.Abs(iou-1.0/3) > 1e-9 {
		t.Fatalf("IoU = %v want 1/3", iou)
	}
}

func TestClip(t *testing.T) {
	b := Box{-0.1, 0.9, 0.3, 0.3}.Clip()
	if b.X != 0 || math.Abs(b.W-0.2) > 1e-12 {
		t.Fatalf("clip X: %+v", b)
	}
	if math.Abs(b.Y-0.9) > 1e-12 || math.Abs(b.H-0.1) > 1e-9 {
		t.Fatalf("clip Y: %+v", b)
	}
}

func TestContains(t *testing.T) {
	outer := Box{0.2, 0.2, 0.6, 0.6}
	inner := Box{0.25, 0.25, 0.1, 0.1}
	if !outer.Contains(inner) {
		t.Fatal("outer should contain inner's centre")
	}
	if inner.Contains(outer) {
		t.Fatal("inner must not contain outer's centre")
	}
}

// Property: IoU is symmetric and within [0,1].
func TestIoUProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		rb := func() Box {
			return Box{rng.Float64() * 0.8, rng.Float64() * 0.8, 0.01 + rng.Float64()*0.3, 0.01 + rng.Float64()*0.3}
		}
		a, b := rb(), rb()
		x, y := a.IoU(b), b.IoU(a)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func frameWithObjects(objs ...Object) Frame {
	return Frame{VideoID: 1, Index: 0, Context: []string{"road"}, Objects: objs}
}

func TestObjectTermsBasic(t *testing.T) {
	f := frameWithObjects(Object{
		Track: 1, Class: "car", Attrs: []string{"red"}, Behaviors: []string{"driving"},
		Box: Box{0.45, 0.4, 0.1, 0.1},
	})
	terms := f.ObjectTerms(0)
	want := []string{"car", "center of the road", "driving", "red", "road"}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v", terms)
	}
	for i, w := range want {
		if terms[i] != w {
			t.Fatalf("terms = %v want %v", terms, want)
		}
	}
}

func TestCenterOfRoadOnlyForVehicles(t *testing.T) {
	f := frameWithObjects(Object{
		Track: 1, Class: "person", Box: Box{0.45, 0.4, 0.1, 0.2},
	})
	for _, tm := range f.ObjectTerms(0) {
		if tm == "center of the road" {
			t.Fatal("persons must not get center-of-road")
		}
	}
}

func TestSideBySideRelation(t *testing.T) {
	f := frameWithObjects(
		Object{Track: 1, Class: "car", Box: Box{0.30, 0.40, 0.10, 0.08}},
		Object{Track: 2, Class: "car", Box: Box{0.55, 0.41, 0.10, 0.08}},
	)
	found := false
	for _, tm := range f.ObjectTerms(0) {
		if tm == "side by side" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected side by side, got %v", f.ObjectTerms(0))
	}
}

func TestSideBySideRequiresAlignment(t *testing.T) {
	f := frameWithObjects(
		Object{Track: 1, Class: "car", Box: Box{0.30, 0.10, 0.10, 0.08}},
		Object{Track: 2, Class: "car", Box: Box{0.55, 0.70, 0.10, 0.08}},
	)
	for _, tm := range f.ObjectTerms(0) {
		if tm == "side by side" {
			t.Fatal("vertically separated cars are not side by side")
		}
	}
}

func TestNextToRelation(t *testing.T) {
	f := frameWithObjects(
		Object{Track: 1, Class: "dog", Attrs: []string{"white"}, Box: Box{0.40, 0.40, 0.10, 0.10}},
		Object{Track: 2, Class: "person", Attrs: []string{"woman"}, Box: Box{0.52, 0.40, 0.08, 0.20}},
	)
	found := false
	for _, tm := range f.ObjectTerms(0) {
		if tm == "next to" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected next to, got %v", f.ObjectTerms(0))
	}
}

func TestHoldingRelation(t *testing.T) {
	f := frameWithObjects(
		Object{Track: 1, Class: "person", Box: Box{0.40, 0.30, 0.08, 0.25}},
		Object{Track: 2, Class: "bag", Attrs: []string{"dark"}, Box: Box{0.47, 0.42, 0.05, 0.06}},
	)
	found := false
	for _, tm := range f.ObjectTerms(0) {
		if tm == "holding" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected holding, got %v", f.ObjectTerms(0))
	}
}

func TestInsideTerm(t *testing.T) {
	f := frameWithObjects(Object{
		Track: 1, Class: "person", Attrs: []string{"woman"}, Inside: "car",
		Behaviors: []string{"sitting"}, Box: Box{0.4, 0.4, 0.1, 0.15},
	})
	found := false
	for _, tm := range f.ObjectTerms(0) {
		if tm == "inside car" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected inside car, got %v", f.ObjectTerms(0))
	}
}

func TestCargoFilledWith(t *testing.T) {
	f := frameWithObjects(Object{
		Track: 1, Class: "truck", Attrs: []string{"white", "small", "cargo"},
		Box: Box{0.4, 0.4, 0.15, 0.12},
	})
	found := false
	for _, tm := range f.ObjectTerms(0) {
		if tm == "filled with" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected filled with, got %v", f.ObjectTerms(0))
	}
}

func TestMatchesTerms(t *testing.T) {
	f := frameWithObjects(Object{
		Track: 1, Class: "car", Attrs: []string{"red"}, Behaviors: []string{"driving"},
		Box: Box{0.45, 0.4, 0.1, 0.1},
	})
	if !f.MatchesTerms(0, []string{"car", "red", "center of the road"}) {
		t.Fatal("should match red car in center")
	}
	if f.MatchesTerms(0, []string{"car", "blue"}) {
		t.Fatal("should not match blue")
	}
}

func TestMotionFieldCameraAndObjects(t *testing.T) {
	f := Frame{
		CamMotion: [2]float64{0.1, 0},
		Objects: []Object{{
			Class: "car", Box: Box{0, 0, 1, 1}, Vel: [2]float64{0.2, 0},
		}},
	}
	field := f.MotionField(4, 4)
	for _, v := range field {
		if math.Abs(v[0]-0.3) > 1e-12 {
			t.Fatalf("block motion = %v want 0.3 (cam+obj)", v)
		}
	}
}

func TestMotionEnergyStaticZero(t *testing.T) {
	f := Frame{Objects: []Object{{Class: "car", Box: Box{0.4, 0.4, 0.1, 0.1}}}}
	if e := f.MotionEnergy(); e != 0 {
		t.Fatalf("static scene energy = %v", e)
	}
}

func TestMotionEnergyIncreasesWithSpeed(t *testing.T) {
	slow := Frame{Objects: []Object{{Class: "car", Box: Box{0.2, 0.2, 0.5, 0.5}, Vel: [2]float64{0.1, 0}}}}
	fast := Frame{Objects: []Object{{Class: "car", Box: Box{0.2, 0.2, 0.5, 0.5}, Vel: [2]float64{0.5, 0}}}}
	if fast.MotionEnergy() <= slow.MotionEnergy() {
		t.Fatal("faster objects must raise motion energy")
	}
}

func TestStepAdvancesObjects(t *testing.T) {
	f := Frame{
		Index: 3, Time: 0.1,
		Objects: []Object{{Class: "car", Box: Box{0.1, 0.1, 0.1, 0.1}, Vel: [2]float64{0.5, 0}}},
	}
	next := f.Step(0.2)
	if next.Index != 4 || math.Abs(next.Time-0.3) > 1e-12 {
		t.Fatalf("index/time: %d %v", next.Index, next.Time)
	}
	if math.Abs(next.Objects[0].Box.X-0.2) > 1e-12 {
		t.Fatalf("object did not advance: %+v", next.Objects[0].Box)
	}
	if f.Objects[0].Box.X != 0.1 {
		t.Fatal("Step must not mutate the original frame")
	}
}

func TestVideoDuration(t *testing.T) {
	v := Video{FPS: 10, Frames: make([]Frame, 50)}
	if d := v.Duration(); math.Abs(d-5) > 1e-12 {
		t.Fatalf("duration = %v", d)
	}
	empty := Video{}
	if empty.Duration() != 0 {
		t.Fatal("zero-fps video has zero duration")
	}
}

func TestIsVehicle(t *testing.T) {
	for _, c := range []string{"car", "suv", "bus", "truck"} {
		if !IsVehicle(c) {
			t.Errorf("%s should be vehicle", c)
		}
	}
	if IsVehicle("person") || IsVehicle("dog") {
		t.Error("person/dog are not vehicles")
	}
}

func TestNeighbors(t *testing.T) {
	f := frameWithObjects(
		Object{Track: 1, Class: "dog", Box: Box{0.40, 0.40, 0.10, 0.10}},
		Object{Track: 2, Class: "person", Box: Box{0.52, 0.40, 0.08, 0.20}},
		Object{Track: 3, Class: "car", Box: Box{0.05, 0.05, 0.10, 0.08}},
	)
	nb := f.Neighbors(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Fatalf("neighbors = %v want [1]", nb)
	}
}

func TestMatchesTermsRelationalNeighborCompletion(t *testing.T) {
	// Q3.4 shape: white dog inside a car, next to a woman wearing black
	// clothes. The woman terms live on the neighbour.
	f := Frame{
		VideoID: 1, Context: nil,
		Objects: []Object{
			{Track: 1, Class: "dog", Attrs: []string{"white"}, Inside: "car", Box: Box{0.40, 0.40, 0.10, 0.10}},
			{Track: 2, Class: "person", Attrs: []string{"woman", "black", "clothing"}, Inside: "car", Box: Box{0.52, 0.40, 0.08, 0.20}},
		},
	}
	q := []string{"white", "dog", "inside car", "next to", "woman", "black", "clothing"}
	if !f.MatchesTermsRelational(0, q) {
		t.Fatalf("dog should match via neighbour completion; own terms %v", f.ObjectTerms(0))
	}
	// Without the neighbour, the dog cannot match.
	solo := Frame{Objects: []Object{f.Objects[0]}}
	if solo.MatchesTermsRelational(0, q) {
		t.Fatal("solo dog must not match")
	}
}

func TestMatchesTermsRelationalNoFalseAttributeBleed(t *testing.T) {
	// A red car next to a black car must NOT match "black car" via
	// neighbour completion of "black" alone when the query has no
	// relation term... it still completes because next-to holds; but a
	// query with no missing terms beyond attributes that belong to the
	// subject ("black car" where subject car is red) requires "black" on
	// some neighbour that is also matched as a unit. Here the neighbour
	// does carry black+car, so completion applies only when the subject
	// stands in a relation AND the query's extra terms all sit on one
	// neighbour. The guard is that plain attribute queries without
	// relation terms still match the *right* objects first; ranking-level
	// separation is exercised in the retrieval tests.
	f := frameWithObjects(
		Object{Track: 1, Class: "car", Attrs: []string{"red"}, Box: Box{0.40, 0.40, 0.10, 0.08}},
		Object{Track: 2, Class: "car", Attrs: []string{"black"}, Box: Box{0.52, 0.40, 0.10, 0.08}},
	)
	// The black car itself matches directly.
	if !f.MatchesTermsRelational(1, []string{"car", "black"}) {
		t.Fatal("black car must match directly")
	}
}
