// Package keyframe selects representative frames from a video, implementing
// Section IV-A of the paper: a combined temporal and content-based strategy
// built on compressed-domain motion vectors in the style of MVmed.
//
// Frames whose motion-vector field changes sharply (scene shifts, spikes of
// activity, shot boundaries) become keyframe candidates; a temporal fallback
// bounds the maximum gap so static scenes remain represented; a minimum gap
// suppresses bursts. The strategy interface is one of the orthogonal knobs
// the paper calls out — "keyframe extraction algorithms ... can be
// orthogonally adapted".
package keyframe

import "repro/internal/video"

// Strategy selects keyframe indices from a video in ascending order.
type Strategy interface {
	// Select returns the indices of the chosen frames.
	Select(v *video.Video) []int
	// Name identifies the strategy in experiment output.
	Name() string
}

// MVMed is the default motion-vector-driven extractor.
type MVMed struct {
	// EnergyDelta is the motion-energy change that marks a candidate.
	// Zero uses the default 0.0004, calibrated so that a single vehicle
	// entering or leaving a surveillance view (a few macroblocks of
	// motion) registers as an event.
	EnergyDelta float64
	// MaxGap bounds the frames between consecutive keyframes (temporal
	// fallback). Zero uses the default 4, which keeps roughly a third of
	// frames on busy footage — the compression the paper reports for its
	// keyframe stage — while guaranteeing short object transits are seen.
	MaxGap int
	// MinGap suppresses candidates closer than this to the previous
	// keyframe. Zero uses the default 2.
	MinGap int
}

// Name implements Strategy.
func (MVMed) Name() string { return "mvmed" }

func (m MVMed) params() (delta float64, maxGap, minGap int) {
	delta = m.EnergyDelta
	if delta == 0 {
		delta = 0.0004
	}
	maxGap = m.MaxGap
	if maxGap == 0 {
		maxGap = 4
	}
	minGap = m.MinGap
	if minGap == 0 {
		minGap = 2
	}
	return delta, maxGap, minGap
}

// Select implements Strategy. The first frame is always a keyframe.
func (m MVMed) Select(v *video.Video) []int {
	if len(v.Frames) == 0 {
		return nil
	}
	delta, maxGap, minGap := m.params()
	keys := []int{0}
	last := 0
	prevEnergy := v.Frames[0].MotionEnergy()
	prevShot := v.Frames[0].Shot
	for i := 1; i < len(v.Frames); i++ {
		f := &v.Frames[i]
		energy := f.MotionEnergy()
		candidate := false
		if f.Shot != prevShot {
			candidate = true // scene change
		}
		if diff := energy - prevEnergy; diff > delta || diff < -delta {
			candidate = true // motion discontinuity
		}
		if i-last >= maxGap {
			candidate = true // temporal fallback
		}
		if candidate && i-last >= minGap {
			keys = append(keys, i)
			last = i
		}
		prevEnergy = energy
		prevShot = f.Shot
	}
	return keys
}

// Uniform selects every Interval-th frame; the purely temporal strategy.
type Uniform struct {
	// Interval is the sampling period; zero uses 10.
	Interval int
}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// Select implements Strategy.
func (u Uniform) Select(v *video.Video) []int {
	interval := u.Interval
	if interval <= 0 {
		interval = 10
	}
	var keys []int
	for i := 0; i < len(v.Frames); i += interval {
		keys = append(keys, i)
	}
	return keys
}

// All selects every frame; the "w/o Key frame" ablation of Table IV.
type All struct{}

// Name implements Strategy.
func (All) Name() string { return "all" }

// Select implements Strategy.
func (All) Select(v *video.Video) []int {
	keys := make([]int, len(v.Frames))
	for i := range keys {
		keys[i] = i
	}
	return keys
}

// Ratio returns the fraction of frames kept by strategy s on video v;
// the compression factor reported in the keyframe ablation.
func Ratio(s Strategy, v *video.Video) float64 {
	if len(v.Frames) == 0 {
		return 0
	}
	return float64(len(s.Select(v))) / float64(len(v.Frames))
}
