package keyframe

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/video"
)

func staticVideo(n int) *video.Video {
	v := &video.Video{ID: 1, FPS: 1}
	for i := 0; i < n; i++ {
		v.Frames = append(v.Frames, video.Frame{Index: i, Time: float64(i)})
	}
	return v
}

func TestMVMedEmptyVideo(t *testing.T) {
	if keys := (MVMed{}).Select(&video.Video{}); keys != nil {
		t.Fatalf("empty video: %v", keys)
	}
}

func TestMVMedFirstFrameAlwaysKey(t *testing.T) {
	keys := MVMed{}.Select(staticVideo(5))
	if len(keys) == 0 || keys[0] != 0 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestMVMedTemporalFallback(t *testing.T) {
	// A fully static video must still yield keyframes every MaxGap.
	keys := MVMed{MaxGap: 10}.Select(staticVideo(50))
	if len(keys) < 4 {
		t.Fatalf("temporal fallback too sparse: %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i]-keys[i-1] > 10 {
			t.Fatalf("gap exceeds MaxGap: %v", keys)
		}
	}
}

func TestMVMedDetectsMotionSpike(t *testing.T) {
	v := staticVideo(40)
	// Inject a large moving object at frame 20.
	v.Frames[20].Objects = []video.Object{{
		Class: "car", Box: video.Box{X: 0.1, Y: 0.1, W: 0.8, H: 0.8}, Vel: [2]float64{0.5, 0},
	}}
	keys := MVMed{MaxGap: 30}.Select(v)
	found20, found21 := false, false
	for _, k := range keys {
		if k == 20 {
			found20 = true
		}
		if k == 21 {
			found21 = true
		}
	}
	if !found20 {
		t.Fatalf("motion spike at 20 not detected: %v", keys)
	}
	// The energy drop back at 21 is also a discontinuity but must respect
	// MinGap (default 2), so 21 must NOT be selected.
	if found21 {
		t.Fatalf("MinGap violated: %v", keys)
	}
}

func TestMVMedDetectsShotChange(t *testing.T) {
	v := staticVideo(40)
	for i := 25; i < 40; i++ {
		v.Frames[i].Shot = 1
	}
	keys := MVMed{MaxGap: 100}.Select(v)
	found := false
	for _, k := range keys {
		if k == 25 {
			found = true
		}
	}
	if !found {
		t.Fatalf("shot change at 25 not detected: %v", keys)
	}
}

func TestUniform(t *testing.T) {
	keys := Uniform{Interval: 7}.Select(staticVideo(30))
	want := []int{0, 7, 14, 21, 28}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i, w := range want {
		if keys[i] != w {
			t.Fatalf("keys = %v want %v", keys, want)
		}
	}
}

func TestUniformDefaultInterval(t *testing.T) {
	keys := Uniform{}.Select(staticVideo(25))
	if len(keys) != 3 { // 0, 10, 20
		t.Fatalf("keys = %v", keys)
	}
}

func TestAllSelectsEverything(t *testing.T) {
	keys := All{}.Select(staticVideo(12))
	if len(keys) != 12 {
		t.Fatalf("All must keep every frame: %v", keys)
	}
}

func TestRatioOrdering(t *testing.T) {
	// On a realistic workload: All keeps 100%, MVMed keeps a fraction.
	ds := datasets.Bellevue(datasets.Config{Seed: 3, Scale: 0.1})
	v := &ds.Videos[0]
	all := Ratio(All{}, v)
	mv := Ratio(MVMed{}, v)
	if all != 1 {
		t.Fatalf("All ratio = %v", all)
	}
	if mv <= 0 || mv >= 1 {
		t.Fatalf("MVMed ratio = %v, want in (0,1)", mv)
	}
	if mv > 0.8 {
		t.Fatalf("MVMed should compress substantially, ratio = %v", mv)
	}
}

func TestKeysAscendingAndUnique(t *testing.T) {
	ds := datasets.Cityscapes(datasets.Config{Seed: 3, Scale: 0.1})
	keys := MVMed{}.Select(&ds.Videos[0])
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly ascending at %d: %v", i, keys[i-3:i+1])
		}
	}
}

func TestNames(t *testing.T) {
	if (MVMed{}).Name() != "mvmed" || (Uniform{}).Name() != "uniform" || (All{}).Name() != "all" {
		t.Fatal("strategy names")
	}
}

func TestRatioEmptyVideo(t *testing.T) {
	if Ratio(All{}, &video.Video{}) != 0 {
		t.Fatal("empty video ratio must be 0")
	}
}
