package quant

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// Tests for the flattened lookup-table path: the contiguous Table with
// stride K, packed-code scoring, and the batch ADC kernel must all be
// bit-identical to their per-element counterparts.

func trainTestPQ(t *testing.T, n, dim, p, m int) (*PQ, []mat.Vec) {
	t.Helper()
	data := make([]mat.Vec, n)
	for i := range data {
		data[i] = mat.UnitGaussianVec(dim, uint64(1000+i))
	}
	pq, err := TrainPQ(data, p, m, 99)
	if err != nil {
		t.Fatal(err)
	}
	return pq, data
}

func TestDotTableFlatBitIdenticalToPerCentroidDot(t *testing.T) {
	pq, _ := trainTestPQ(t, 60, 24, 4, 16)
	q := mat.UnitGaussianVec(24, 7)
	table := pq.DotTable(q)
	if table.K != pq.Centroids() {
		t.Fatalf("stride %d != centroid count %d", table.K, pq.Centroids())
	}
	if len(table.Vals) != pq.TableLen() {
		t.Fatalf("table length %d != %d", len(table.Vals), pq.TableLen())
	}
	for sp := 0; sp < pq.P; sp++ {
		part := q[sp*pq.SubDim : (sp+1)*pq.SubDim]
		row := table.Row(sp)
		for m, c := range pq.Codebooks[sp] {
			want := mat.Dot(part, c)
			if math.Float32bits(row[m]) != math.Float32bits(want) {
				t.Fatalf("subspace %d centroid %d: table %x dot %x",
					sp, m, math.Float32bits(row[m]), math.Float32bits(want))
			}
		}
	}
}

func TestDotTableIntoMatchesDotTable(t *testing.T) {
	pq, _ := trainTestPQ(t, 50, 16, 4, 8)
	q := mat.UnitGaussianVec(16, 8)
	a := pq.DotTable(q)
	buf := make([]float32, pq.TableLen())
	b := pq.DotTableInto(buf, q)
	if a.K != b.K {
		t.Fatalf("stride mismatch %d vs %d", a.K, b.K)
	}
	for i := range a.Vals {
		if math.Float32bits(a.Vals[i]) != math.Float32bits(b.Vals[i]) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestApproxDotPackedMatchesApproxDot(t *testing.T) {
	pq, data := trainTestPQ(t, 80, 32, 8, 16)
	q := mat.UnitGaussianVec(32, 9)
	table := pq.DotTable(q)
	for _, v := range data[:30] {
		code := pq.Encode(v)
		a := pq.ApproxDot(table, code)
		b := pq.ApproxDotPacked(table, code)
		if math.Float32bits(a) != math.Float32bits(b) {
			t.Fatalf("packed %x != code %x", math.Float32bits(b), math.Float32bits(a))
		}
	}
}

func TestApproxDotBatchMatchesPerRow(t *testing.T) {
	pq, data := trainTestPQ(t, 70, 16, 4, 16)
	q := mat.UnitGaussianVec(16, 10)
	table := pq.DotTable(q)
	for _, bias := range []float32{0, 0.25, -1.5} {
		var packed []uint16
		for _, v := range data {
			packed = append(packed, pq.Encode(v)...)
		}
		got := pq.ApproxDotBatch(nil, table, packed, bias)
		if len(got) != len(data) {
			t.Fatalf("batch length %d != %d", len(got), len(data))
		}
		for i, v := range data {
			want := bias + pq.ApproxDot(table, pq.Encode(v))
			if math.Float32bits(got[i]) != math.Float32bits(want) {
				t.Fatalf("bias %v row %d: batch %x want %x", bias, i, math.Float32bits(got[i]), math.Float32bits(want))
			}
		}
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	pq, data := trainTestPQ(t, 40, 16, 4, 8)
	dst := make([]uint16, pq.P)
	for _, v := range data {
		pq.EncodeInto(dst, v)
		code := pq.Encode(v)
		for sp := range code {
			if code[sp] != dst[sp] {
				t.Fatalf("EncodeInto diverges at subspace %d", sp)
			}
		}
	}
}

func TestCodebooksAliasContiguousStorage(t *testing.T) {
	pq, _ := trainTestPQ(t, 30, 16, 4, 8)
	// Decode must keep working through the re-pointed codebook rows.
	code := make(Code, pq.P)
	dec := pq.Decode(code)
	if len(dec) != pq.Dim() {
		t.Fatalf("decode length %d", len(dec))
	}
	for sp := 0; sp < pq.P; sp++ {
		if len(pq.Codebooks[sp]) != pq.Centroids() {
			t.Fatalf("subspace %d has %d centroids, want %d", sp, len(pq.Codebooks[sp]), pq.Centroids())
		}
	}
}
